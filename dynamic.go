package extmesh

import (
	"sync"

	"extmesh/internal/dynamic"
	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// DynamicNetwork maintains fault regions and extended safety levels
// incrementally while faults keep arriving — the paper's maintenance
// model, in which a disturbance updates only the affected nodes. Use
// it for long-running systems; call Freeze to obtain an immutable
// Network with the full API for the current fault set.
//
// Concurrency contract: a DynamicNetwork is safe for concurrent use.
// Every mutation (AddFault, RemoveFault) and every query runs under an
// internal lock, so queries never observe a half-applied update and
// always reflect every mutation that completed before the query began.
// Mutations serialize with each other; a query racing a mutation sees
// the state either before or after it, never in between. The internal
// reachability memo is version-stamped and dropped on each mutation,
// so a stale cached verdict is never served.
type DynamicNetwork struct {
	// mu guards the tracker and the reachability memo below. The
	// tracker itself is single-threaded by design; every method of
	// DynamicNetwork that touches it must hold mu.
	mu      sync.Mutex
	tracker *dynamic.Tracker
	width   int
	height  int

	// reach memoizes minimal-path reachability for the fault set at
	// version reachVersion; every successful mutation bumps version,
	// which invalidates the memo lazily.
	version      uint64
	reachVersion uint64
	reach        *wang.ReachCache
}

// NewDynamic returns a dynamic network over an initially fault-free
// width x height mesh.
func NewDynamic(width, height int) (*DynamicNetwork, error) {
	m, err := mesh.New(width, height)
	if err != nil {
		return nil, err
	}
	tr, err := dynamic.New(m)
	if err != nil {
		return nil, err
	}
	return &DynamicNetwork{tracker: tr, width: width, height: height}, nil
}

// AddFault marks c faulty and updates the fault regions and safety
// levels incrementally. It returns an error for out-of-mesh or
// duplicate faults. On success any cached reachability verdicts are
// invalidated.
func (d *DynamicNetwork) AddFault(c Coord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.tracker.AddFault(c); err != nil {
		return err
	}
	d.version++
	return nil
}

// RemoveFault repairs a faulty node, shrinking its fault region
// incrementally (only the affected component relabels and only its
// rows and columns resweep). On success any cached reachability
// verdicts are invalidated.
func (d *DynamicNetwork) RemoveFault(c Coord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.tracker.RemoveFault(c); err != nil {
		return err
	}
	d.version++
	return nil
}

// reachCache returns a reachability memo matching the current fault
// set, rebuilding it if any fault arrived since it was built. The
// returned cache is itself concurrency-safe and immutable with respect
// to the fault set it was built from.
func (d *DynamicNetwork) reachCache() *wang.ReachCache {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.reach == nil || d.reachVersion != d.version {
		m := mesh.Mesh{Width: d.width, Height: d.height}
		d.reach = wang.NewReachCache(m, d.tracker.FaultGrid(), ReachCacheCapacity)
		d.reachVersion = d.version
	}
	return d.reach
}

// HasMinimalPath reports whether a minimal path from s to dst exists
// that avoids the current faulty nodes. Repeated queries between
// mutations share memoized per-source reachability sweeps; every
// AddFault or RemoveFault invalidates the memo, so the answer always
// reflects the latest completed mutation.
func (d *DynamicNetwork) HasMinimalPath(s, dst Coord) bool {
	return d.reachCache().CanReach(s, dst)
}

// LastUpdateCost reports how local the most recent AddFault was: the
// number of nodes that joined fault regions, and the rows and columns
// whose safety levels resweeped.
func (d *DynamicNetwork) LastUpdateCost() (cascade, rows, cols int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.LastUpdateCost()
}

// Faults returns the faults added so far, in arrival order.
func (d *DynamicNetwork) Faults() []Coord {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.Faults()
}

// InRegion reports whether c currently belongs to a fault region
// (block model).
func (d *DynamicNetwork) InRegion(c Coord) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.InRegion(c)
}

// SafetyLevel returns the current extended safety level of c.
func (d *DynamicNetwork) SafetyLevel(c Coord) Level {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.Level(c)
}

// Safe evaluates the base sufficient safe condition on the current
// state.
func (d *DynamicNetwork) Safe(s, dst Coord) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.tracker.InRegion(s) || d.tracker.InRegion(dst) {
		return false
	}
	return d.tracker.Levels().SafeFor(s, dst)
}

// Freeze builds an immutable Network for the current fault set, giving
// access to the full API (MCCs, routing, conditions, serialization).
func (d *DynamicNetwork) Freeze() (*Network, error) {
	d.mu.Lock()
	faults := d.tracker.Faults()
	d.mu.Unlock()
	return New(d.width, d.height, faults)
}
