package extmesh

import (
	"fmt"
	"sync"

	"extmesh/internal/dynamic"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/wang"
)

// DynamicNetwork maintains fault regions and extended safety levels
// incrementally while faults keep arriving — the paper's maintenance
// model, in which a disturbance updates only the affected nodes. Use
// it for long-running systems; call Freeze to obtain an immutable
// Network with the full API for the current fault set.
//
// Concurrency contract: a DynamicNetwork is safe for concurrent use.
// Every mutation (AddFault, RemoveFault) and every query runs under an
// internal lock, so queries never observe a half-applied update and
// always reflect every mutation that completed before the query began.
// Mutations serialize with each other; a query racing a mutation sees
// the state either before or after it, never in between. The internal
// reachability memo is version-stamped and dropped on each mutation,
// so a stale cached verdict is never served.
type DynamicNetwork struct {
	// mu guards the tracker and the reachability memo below. The
	// tracker itself is single-threaded by design; every method of
	// DynamicNetwork that touches it must hold mu.
	mu      sync.Mutex
	tracker *dynamic.Tracker
	width   int
	height  int

	// reach memoizes minimal-path reachability for the fault set at
	// version reachVersion; every successful mutation bumps version,
	// which invalidates the memo lazily.
	version      uint64
	reachVersion uint64
	reach        *wang.ReachCache

	// snap memoizes the frozen Network for the fault set at version
	// snapVersion, so long-running services can serve full-API queries
	// (routing, conditions, MCCs) without rebuilding the derived
	// structures on every request.
	snapVersion uint64
	snap        *Network

	// views shares the routers' orientation views (boundary contours)
	// across every Network materialized for one mutation version, the
	// router-side analogue of the reach memo: a Freeze after a Snapshot
	// at the same version skips the O(mesh) boundary reconstruction.
	// Entries are generation-stamped with the mutation version, so a
	// view never outlives the fault set it was built from.
	views *route.ViewCache
}

// NewDynamic returns a dynamic network over an initially fault-free
// width x height mesh.
func NewDynamic(width, height int) (*DynamicNetwork, error) {
	m, err := mesh.New(width, height)
	if err != nil {
		return nil, err
	}
	tr, err := dynamic.New(m)
	if err != nil {
		return nil, err
	}
	return &DynamicNetwork{tracker: tr, width: width, height: height, views: route.NewViewCache()}, nil
}

// AddFault marks c faulty and updates the fault regions and safety
// levels incrementally. It returns an error for out-of-mesh or
// duplicate faults. On success any cached reachability verdicts are
// invalidated.
func (d *DynamicNetwork) AddFault(c Coord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.tracker.AddFault(c); err != nil {
		return err
	}
	d.version++
	return nil
}

// RemoveFault repairs a faulty node, shrinking its fault region
// incrementally (only the affected component relabels and only its
// rows and columns resweep). On success any cached reachability
// verdicts are invalidated.
func (d *DynamicNetwork) RemoveFault(c Coord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.tracker.RemoveFault(c); err != nil {
		return err
	}
	d.version++
	return nil
}

// reachCache returns a reachability memo matching the current fault
// set, rebuilding it if any fault arrived since it was built. The
// returned cache is itself concurrency-safe and immutable with respect
// to the fault set it was built from.
func (d *DynamicNetwork) reachCache() *wang.ReachCache {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.reach == nil || d.reachVersion != d.version {
		m := mesh.Mesh{Width: d.width, Height: d.height}
		d.reach = wang.NewReachCache(m, d.tracker.FaultGrid(), ReachCacheCapacity)
		d.reachVersion = d.version
	}
	return d.reach
}

// HasMinimalPath reports whether a minimal path from s to dst exists
// that avoids the current faulty nodes. Repeated queries between
// mutations share memoized per-source reachability sweeps; every
// AddFault or RemoveFault invalidates the memo, so the answer always
// reflects the latest completed mutation.
func (d *DynamicNetwork) HasMinimalPath(s, dst Coord) bool {
	return d.reachCache().CanReach(s, dst)
}

// LastUpdateCost reports how local the most recent AddFault was: the
// number of nodes that joined fault regions, and the rows and columns
// whose safety levels resweeped.
func (d *DynamicNetwork) LastUpdateCost() (cascade, rows, cols int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.LastUpdateCost()
}

// Faults returns the faults added so far, in arrival order.
func (d *DynamicNetwork) Faults() []Coord {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.Faults()
}

// InRegion reports whether c currently belongs to a fault region
// (block model).
func (d *DynamicNetwork) InRegion(c Coord) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.InRegion(c)
}

// SafetyLevel returns the current extended safety level of c.
func (d *DynamicNetwork) SafetyLevel(c Coord) Level {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.Level(c)
}

// Safe evaluates the base sufficient safe condition on the current
// state.
func (d *DynamicNetwork) Safe(s, dst Coord) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.tracker.InRegion(s) || d.tracker.InRegion(dst) {
		return false
	}
	return d.tracker.Levels().SafeFor(s, dst)
}

// Freeze builds an immutable Network for the current fault set, giving
// access to the full API (MCCs, routing, conditions, serialization).
func (d *DynamicNetwork) Freeze() (*Network, error) {
	d.mu.Lock()
	v := d.version
	faults := d.tracker.Faults()
	d.mu.Unlock()
	n, err := New(d.width, d.height, faults)
	if err != nil {
		return nil, err
	}
	if d.views != nil {
		n.attachViewCache(d.views, v)
	}
	return n, nil
}

// Width returns the mesh's X extent.
func (d *DynamicNetwork) Width() int { return d.width }

// Height returns the mesh's Y extent.
func (d *DynamicNetwork) Height() int { return d.height }

// Version returns the mutation counter: it increases on every
// successful AddFault/RemoveFault, so two equal Version readings
// bracket an unchanged fault set.
func (d *DynamicNetwork) Version() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.version
}

// RestoreVersion fast-forwards the mutation counter to v. It exists
// for durability layers that persist a network blob together with the
// version it carried when saved: rebuilding from the blob replays only
// the surviving faults, so the rebuilt network's counter restarts at
// the fault count, not at the pre-crash mutation total. Restoring the
// saved version keeps version-keyed state — snapshot memoization,
// journal replay, crash-recovery equivalence checks — consistent with
// the full pre-crash history. Moving the counter backwards is rejected:
// it could make stale memoized state look current again.
func (d *DynamicNetwork) RestoreVersion(v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v < d.version {
		return fmt.Errorf("extmesh: cannot restore version %d below current %d", v, d.version)
	}
	d.version = v
	return nil
}

// FaultCount returns the current number of faulty nodes.
func (d *DynamicNetwork) FaultCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.FaultCount()
}

// IsFaulty reports whether c is currently faulty.
func (d *DynamicNetwork) IsFaulty(c Coord) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tracker.IsFaulty(c)
}

// Snapshot returns an immutable Network for the current fault set,
// memoized by mutation version: while no fault arrives or recovers,
// every call returns the same frozen Network (whose own lazy caches —
// models, routers, reachability — therefore stay warm across calls).
// This is the serving hot path: a daemon answers route and condition
// queries against the snapshot and pays one rebuild per mutation, not
// per request.
//
// A Snapshot call racing a mutation returns a Network for either the
// pre- or post-mutation fault set, consistent with the DynamicNetwork
// concurrency contract.
func (d *DynamicNetwork) Snapshot() (*Network, error) {
	d.mu.Lock()
	if d.snap != nil && d.snapVersion == d.version {
		n := d.snap
		d.mu.Unlock()
		return n, nil
	}
	v := d.version
	faults := d.tracker.Faults()
	d.mu.Unlock()

	// Build outside the lock: construction is O(mesh), and queries or
	// mutations must not stall behind it.
	n, err := New(d.width, d.height, faults)
	if err != nil {
		return nil, err
	}
	if d.views != nil {
		n.attachViewCache(d.views, v)
	}
	d.mu.Lock()
	if d.version == v {
		d.snap = n
		d.snapVersion = v
	}
	d.mu.Unlock()
	// If the version moved on, n still reflects the fault set at the
	// time this call began; return it without caching.
	return n, nil
}

// Apply performs a batch of mutations: every node in fail is marked
// faulty and every node in recover is repaired, in order. Mutations
// that cannot apply — failing an already-faulty node, recovering a
// healthy one — are skipped and counted rather than fatal, matching
// the online fault-injection runtime's replay semantics, so a fault
// schedule can be replayed onto a live network idempotently. Nodes
// outside the mesh return an error and abort the batch (applied
// reports how far it got).
func (d *DynamicNetwork) Apply(fail, recover []Coord) (applied, skipped int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := mesh.Mesh{Width: d.width, Height: d.height}
	for _, c := range fail {
		if !m.Contains(c) {
			return applied, skipped, fmt.Errorf("extmesh: fail node %v outside mesh %v", c, m)
		}
		if d.tracker.IsFaulty(c) {
			skipped++
			continue
		}
		if err := d.tracker.AddFault(c); err != nil {
			return applied, skipped, err
		}
		d.version++
		applied++
	}
	for _, c := range recover {
		if !m.Contains(c) {
			return applied, skipped, fmt.Errorf("extmesh: recover node %v outside mesh %v", c, m)
		}
		if !d.tracker.IsFaulty(c) {
			skipped++
			continue
		}
		if err := d.tracker.RemoveFault(c); err != nil {
			return applied, skipped, err
		}
		d.version++
		applied++
	}
	return applied, skipped, nil
}
