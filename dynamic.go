package extmesh

import (
	"sync"

	"extmesh/internal/dynamic"
	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// DynamicNetwork maintains fault regions and extended safety levels
// incrementally while faults keep arriving — the paper's maintenance
// model, in which a disturbance updates only the affected nodes. Use
// it for long-running systems; call Freeze to obtain an immutable
// Network with the full API for the current fault set.
//
// Query results (SafetyLevel, Safe, HasMinimalPath) always reflect
// every fault added or removed so far: the internal reachability memo
// is version-stamped and dropped on each mutation, so a stale cached
// verdict is never served. Mutations and queries must not race; guard
// a DynamicNetwork shared across goroutines with your own lock.
type DynamicNetwork struct {
	tracker *dynamic.Tracker
	width   int
	height  int

	// reach memoizes minimal-path reachability for the fault set at
	// version reachVersion; every successful mutation bumps version,
	// which invalidates the memo lazily.
	mu           sync.Mutex
	version      uint64
	reachVersion uint64
	reach        *wang.ReachCache
}

// NewDynamic returns a dynamic network over an initially fault-free
// width x height mesh.
func NewDynamic(width, height int) (*DynamicNetwork, error) {
	m, err := mesh.New(width, height)
	if err != nil {
		return nil, err
	}
	tr, err := dynamic.New(m)
	if err != nil {
		return nil, err
	}
	return &DynamicNetwork{tracker: tr, width: width, height: height}, nil
}

// AddFault marks c faulty and updates the fault regions and safety
// levels incrementally. It returns an error for out-of-mesh or
// duplicate faults. On success any cached reachability verdicts are
// invalidated.
func (d *DynamicNetwork) AddFault(c Coord) error {
	if err := d.tracker.AddFault(c); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// RemoveFault repairs a faulty node, shrinking its fault region
// incrementally (only the affected component relabels and only its
// rows and columns resweep). On success any cached reachability
// verdicts are invalidated.
func (d *DynamicNetwork) RemoveFault(c Coord) error {
	if err := d.tracker.RemoveFault(c); err != nil {
		return err
	}
	d.invalidate()
	return nil
}

// invalidate version-stamps the fault set so the reachability memo is
// rebuilt on next use.
func (d *DynamicNetwork) invalidate() {
	d.mu.Lock()
	d.version++
	d.mu.Unlock()
}

// reachCache returns a reachability memo matching the current fault
// set, rebuilding it if any fault arrived since it was built.
func (d *DynamicNetwork) reachCache() *wang.ReachCache {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.reach == nil || d.reachVersion != d.version {
		m := mesh.Mesh{Width: d.width, Height: d.height}
		d.reach = wang.NewReachCache(m, d.tracker.FaultGrid(), ReachCacheCapacity)
		d.reachVersion = d.version
	}
	return d.reach
}

// HasMinimalPath reports whether a minimal path from s to dst exists
// that avoids the current faulty nodes. Repeated queries between
// mutations share memoized per-source reachability sweeps; every
// AddFault or RemoveFault invalidates the memo, so the answer always
// reflects the latest fault set.
func (d *DynamicNetwork) HasMinimalPath(s, dst Coord) bool {
	return d.reachCache().CanReach(s, dst)
}

// LastUpdateCost reports how local the most recent AddFault was: the
// number of nodes that joined fault regions, and the rows and columns
// whose safety levels resweeped.
func (d *DynamicNetwork) LastUpdateCost() (cascade, rows, cols int) {
	return d.tracker.LastUpdateCost()
}

// Faults returns the faults added so far, in arrival order.
func (d *DynamicNetwork) Faults() []Coord {
	return d.tracker.Faults()
}

// InRegion reports whether c currently belongs to a fault region
// (block model).
func (d *DynamicNetwork) InRegion(c Coord) bool {
	return d.tracker.InRegion(c)
}

// SafetyLevel returns the current extended safety level of c.
func (d *DynamicNetwork) SafetyLevel(c Coord) Level {
	return d.tracker.Level(c)
}

// Safe evaluates the base sufficient safe condition on the current
// state.
func (d *DynamicNetwork) Safe(s, dst Coord) bool {
	if d.InRegion(s) || d.InRegion(dst) {
		return false
	}
	return d.tracker.Levels().SafeFor(s, dst)
}

// Freeze builds an immutable Network for the current fault set, giving
// access to the full API (MCCs, routing, conditions, serialization).
func (d *DynamicNetwork) Freeze() (*Network, error) {
	return New(d.width, d.height, d.tracker.Faults())
}
