package extmesh

import (
	"extmesh/internal/dynamic"
	"extmesh/internal/mesh"
)

// DynamicNetwork maintains fault regions and extended safety levels
// incrementally while faults keep arriving — the paper's maintenance
// model, in which a disturbance updates only the affected nodes. Use
// it for long-running systems; call Freeze to obtain an immutable
// Network with the full API for the current fault set.
type DynamicNetwork struct {
	tracker *dynamic.Tracker
	width   int
	height  int
}

// NewDynamic returns a dynamic network over an initially fault-free
// width x height mesh.
func NewDynamic(width, height int) (*DynamicNetwork, error) {
	m, err := mesh.New(width, height)
	if err != nil {
		return nil, err
	}
	tr, err := dynamic.New(m)
	if err != nil {
		return nil, err
	}
	return &DynamicNetwork{tracker: tr, width: width, height: height}, nil
}

// AddFault marks c faulty and updates the fault regions and safety
// levels incrementally. It returns an error for out-of-mesh or
// duplicate faults.
func (d *DynamicNetwork) AddFault(c Coord) error {
	return d.tracker.AddFault(c)
}

// RemoveFault repairs a faulty node, shrinking its fault region
// incrementally (only the affected component relabels and only its
// rows and columns resweep).
func (d *DynamicNetwork) RemoveFault(c Coord) error {
	return d.tracker.RemoveFault(c)
}

// LastUpdateCost reports how local the most recent AddFault was: the
// number of nodes that joined fault regions, and the rows and columns
// whose safety levels resweeped.
func (d *DynamicNetwork) LastUpdateCost() (cascade, rows, cols int) {
	return d.tracker.LastUpdateCost()
}

// Faults returns the faults added so far, in arrival order.
func (d *DynamicNetwork) Faults() []Coord {
	return d.tracker.Faults()
}

// InRegion reports whether c currently belongs to a fault region
// (block model).
func (d *DynamicNetwork) InRegion(c Coord) bool {
	return d.tracker.InRegion(c)
}

// SafetyLevel returns the current extended safety level of c.
func (d *DynamicNetwork) SafetyLevel(c Coord) Level {
	return d.tracker.Level(c)
}

// Safe evaluates the base sufficient safe condition on the current
// state.
func (d *DynamicNetwork) Safe(s, dst Coord) bool {
	if d.InRegion(s) || d.InRegion(dst) {
		return false
	}
	return d.tracker.Levels().SafeFor(s, dst)
}

// Freeze builds an immutable Network for the current fault set, giving
// access to the full API (MCCs, routing, conditions, serialization).
func (d *DynamicNetwork) Freeze() (*Network, error) {
	return New(d.width, d.height, d.tracker.Faults())
}
