package extmesh

import (
	"encoding/json"
	"fmt"
)

// networkJSON is the serialized form of a Network: the mesh dimensions
// and the fault list fully determine everything else.
type networkJSON struct {
	Width  int     `json:"width"`
	Height int     `json:"height"`
	Faults []Coord `json:"faults"`
}

// MarshalJSON serializes the network as its defining data (dimensions
// and faults); all derived structures are rebuilt on load.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Width:  n.Width(),
		Height: n.Height(),
		Faults: n.Faults(),
	})
}

// MaxDecodeNodes caps Width*Height when decoding a serialized network,
// so untrusted input cannot make UnmarshalNetwork allocate mesh-sized
// grids for absurd dimensions. Construct larger meshes directly with
// New, which trusts its caller.
const MaxDecodeNodes = 1 << 24

// UnmarshalNetwork reconstructs a Network from MarshalJSON output.
// (Network itself has no UnmarshalJSON: a Network is immutable after
// construction, so decoding goes through the validating constructor.)
func UnmarshalNetwork(data []byte) (*Network, error) {
	nj, err := decodeNetworkJSON(data)
	if err != nil {
		return nil, err
	}
	return New(nj.Width, nj.Height, nj.Faults)
}

// MarshalJSON serializes the dynamic network's defining data — the
// mesh dimensions and the current fault list — in the same format as
// Network.MarshalJSON, so a frozen and a live network round-trip
// through the same blobs.
func (d *DynamicNetwork) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Width:  d.Width(),
		Height: d.Height(),
		Faults: d.Faults(),
	})
}

// UnmarshalDynamic reconstructs a live DynamicNetwork from a network
// blob (either MarshalJSON output above or Network.MarshalJSON's: the
// formats are identical). The faults are replayed through the
// incremental tracker in order, so the result is ready for further
// mutations. Input is validated like UnmarshalNetwork, including the
// MaxDecodeNodes dimension cap.
func UnmarshalDynamic(data []byte) (*DynamicNetwork, error) {
	nj, err := decodeNetworkJSON(data)
	if err != nil {
		return nil, err
	}
	d, err := NewDynamic(nj.Width, nj.Height)
	if err != nil {
		return nil, err
	}
	for _, c := range nj.Faults {
		if err := d.AddFault(c); err != nil {
			return nil, fmt.Errorf("extmesh: decode network: %w", err)
		}
	}
	return d, nil
}

// decodeNetworkJSON parses and validates the shared serialized form.
func decodeNetworkJSON(data []byte) (networkJSON, error) {
	var nj networkJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return nj, fmt.Errorf("extmesh: decode network: %w", err)
	}
	if nj.Width <= 0 || nj.Height <= 0 || nj.Width > MaxDecodeNodes/nj.Height {
		return nj, fmt.Errorf("extmesh: decode network: implausible dimensions %dx%d", nj.Width, nj.Height)
	}
	return nj, nil
}
