package extmesh

import (
	"encoding/json"
	"fmt"
)

// networkJSON is the serialized form of a Network: the mesh dimensions
// and the fault list fully determine everything else.
type networkJSON struct {
	Width  int     `json:"width"`
	Height int     `json:"height"`
	Faults []Coord `json:"faults"`
}

// MarshalJSON serializes the network as its defining data (dimensions
// and faults); all derived structures are rebuilt on load.
func (n *Network) MarshalJSON() ([]byte, error) {
	return json.Marshal(networkJSON{
		Width:  n.Width(),
		Height: n.Height(),
		Faults: n.Faults(),
	})
}

// MaxDecodeNodes caps Width*Height when decoding a serialized network,
// so untrusted input cannot make UnmarshalNetwork allocate mesh-sized
// grids for absurd dimensions. Construct larger meshes directly with
// New, which trusts its caller.
const MaxDecodeNodes = 1 << 24

// UnmarshalNetwork reconstructs a Network from MarshalJSON output.
// (Network itself has no UnmarshalJSON: a Network is immutable after
// construction, so decoding goes through the validating constructor.)
func UnmarshalNetwork(data []byte) (*Network, error) {
	var nj networkJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return nil, fmt.Errorf("extmesh: decode network: %w", err)
	}
	if nj.Width <= 0 || nj.Height <= 0 || nj.Width > MaxDecodeNodes/nj.Height {
		return nil, fmt.Errorf("extmesh: decode network: implausible dimensions %dx%d", nj.Width, nj.Height)
	}
	return New(nj.Width, nj.Height, nj.Faults)
}
