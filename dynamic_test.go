package extmesh

import (
	"math/rand"
	"sync"
	"testing"
)

func TestNewDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(0, 5); err == nil {
		t.Error("bad dims should fail")
	}
	if _, err := NewDynamic(8, 8); err != nil {
		t.Errorf("valid dims rejected: %v", err)
	}
}

func TestDynamicNetworkBasics(t *testing.T) {
	d, err := NewDynamic(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := Coord{X: 0, Y: 0}
	dst := Coord{X: 9, Y: 9}
	if !d.Safe(s, dst) {
		t.Error("fault-free dynamic network should be safe")
	}
	if err := d.AddFault(Coord{X: 4, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if d.Safe(s, Coord{X: 9, Y: 0}) {
		t.Error("blocked row should be unsafe")
	}
	if err := d.AddFault(Coord{X: 4, Y: 0}); err == nil {
		t.Error("duplicate fault should fail")
	}
	if err := d.AddFault(Coord{X: 10, Y: 0}); err == nil {
		t.Error("outside fault should fail")
	}
	if !d.InRegion(Coord{X: 4, Y: 0}) || d.InRegion(Coord{X: 5, Y: 5}) {
		t.Error("InRegion wrong")
	}
	if got := d.SafetyLevel(s).E; got != 4 {
		t.Errorf("E at origin = %d, want 4", got)
	}
	if len(d.Faults()) != 1 {
		t.Errorf("Faults = %v", d.Faults())
	}
	cascade, rows, cols := d.LastUpdateCost()
	if cascade != 1 || rows != 1 || cols != 1 {
		t.Errorf("LastUpdateCost = %d/%d/%d", cascade, rows, cols)
	}
}

// TestDynamicFreezeMatchesBatch verifies a frozen snapshot equals a
// Network built from scratch with the same faults, and that the
// incremental safety levels agree with the frozen ones at every step.
func TestDynamicFreezeMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	d, err := NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c := Coord{X: rng.Intn(16), Y: rng.Intn(16)}
		if d.InRegion(c) {
			continue
		}
		if err := d.AddFault(c); err != nil {
			t.Fatal(err)
		}
		frozen, err := d.Freeze()
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		batch, err := New(16, 16, d.Faults())
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if len(frozen.Blocks()) != len(batch.Blocks()) {
			t.Fatalf("step %d: frozen and batch disagree on blocks", i)
		}
		for x := 0; x < 16; x++ {
			for y := 0; y < 16; y++ {
				n := Coord{X: x, Y: y}
				if d.InRegion(n) != batch.InRegion(n, Blocks) {
					t.Fatalf("step %d: region membership differs at %v", i, n)
				}
				if d.InRegion(n) {
					continue
				}
				lvl, err := batch.SafetyLevel(n, Blocks)
				if err != nil {
					t.Fatal(err)
				}
				if d.SafetyLevel(n) != lvl {
					t.Fatalf("step %d: safety level differs at %v: %v vs %v", i, n, d.SafetyLevel(n), lvl)
				}
			}
		}
	}
}

func TestDynamicNetworkRemoveFault(t *testing.T) {
	d, err := NewDynamic(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddFault(Coord{X: 3, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if got := d.SafetyLevel(Coord{X: 0, Y: 0}).E; got != 3 {
		t.Fatalf("E = %d, want 3", got)
	}
	if err := d.RemoveFault(Coord{X: 3, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if got := d.SafetyLevel(Coord{X: 0, Y: 0}).E; got != Unbounded {
		t.Errorf("E after repair = %d, want Unbounded", got)
	}
	if err := d.RemoveFault(Coord{X: 3, Y: 0}); err == nil {
		t.Error("double repair should fail")
	}
}

// TestDynamicHasMinimalPathInvalidation checks the cache-invalidation
// contract: a reachability verdict cached before a fault arrives must
// never be served after it — every mutation version-stamps the memo.
func TestDynamicHasMinimalPathInvalidation(t *testing.T) {
	d, err := NewDynamic(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := Coord{X: 0, Y: 0}
	dst := Coord{X: 6, Y: 6}
	if !d.HasMinimalPath(s, dst) {
		t.Fatal("fault-free mesh must have a minimal path")
	}
	// Repeat so the verdict is definitely served from the memo.
	if !d.HasMinimalPath(s, dst) {
		t.Fatal("cached verdict flipped without a mutation")
	}
	// Wall off the first quadrant along the anti-diagonal x+y=6: every
	// monotone path from (0,0) to (6,6) crosses it.
	for x := 0; x <= 6; x++ {
		if err := d.AddFault(Coord{X: x, Y: 6 - x}); err != nil {
			t.Fatal(err)
		}
	}
	if d.HasMinimalPath(s, dst) {
		t.Fatal("stale cached verdict served after faults arrived")
	}
	// Repair one wall node: the verdict must flip back immediately.
	if err := d.RemoveFault(Coord{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	if !d.HasMinimalPath(s, dst) {
		t.Fatal("stale blocked verdict served after repair")
	}
	// Cross-check against the frozen exact baseline.
	n, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 7; y++ {
		for x := 0; x < 7; x++ {
			c := Coord{X: x, Y: y}
			if got, want := d.HasMinimalPath(s, c), n.HasMinimalPath(s, c); got != want {
				t.Fatalf("HasMinimalPath(%v,%v) = %v, frozen baseline %v", s, c, got, want)
			}
		}
	}
}

// TestDynamicNetworkConcurrentUse exercises the documented concurrency
// contract: mutations and queries may race freely, and queries never
// observe a half-applied update. Run with -race.
func TestDynamicNetworkConcurrentUse(t *testing.T) {
	d, err := NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	faults := []Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 10, Y: 2}, {X: 10, Y: 3},
		{X: 6, Y: 12}, {X: 7, Y: 12}, {X: 12, Y: 9}, {X: 1, Y: 14},
	}
	var wg sync.WaitGroup
	// One mutator adds and removes faults in a loop...
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for _, f := range faults {
				if err := d.AddFault(f); err != nil {
					t.Errorf("AddFault(%v): %v", f, err)
					return
				}
			}
			for _, f := range faults {
				if err := d.RemoveFault(f); err != nil {
					t.Errorf("RemoveFault(%v): %v", f, err)
					return
				}
			}
		}
	}()
	// ...while query goroutines hammer every read path.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := Coord{X: 0, Y: 0}
			for i := 0; i < 200; i++ {
				c := Coord{X: (g + i) % 16, Y: (g * i) % 16}
				_ = d.HasMinimalPath(s, c)
				_ = d.InRegion(c)
				_ = d.SafetyLevel(c)
				_ = d.Safe(s, c)
				_ = d.Faults()
				_, _, _ = d.LastUpdateCost()
			}
		}(g)
	}
	wg.Wait()
	// The mutator finished on a clean slate: every query must agree.
	if fs := d.Faults(); len(fs) != 0 {
		t.Errorf("faults remain after balanced add/remove: %v", fs)
	}
	if !d.HasMinimalPath(Coord{X: 0, Y: 0}, Coord{X: 15, Y: 15}) {
		t.Error("fault-free mesh lost a minimal path")
	}
}

func TestDynamicSnapshotMemoization(t *testing.T) {
	d, err := NewDynamic(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("unchanged fault set should return the identical snapshot")
	}
	if err := d.AddFault(Coord{X: 5, Y: 5}); err != nil {
		t.Fatal(err)
	}
	s3, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("mutation must invalidate the snapshot")
	}
	if !s3.IsFaulty(Coord{X: 5, Y: 5}) || s1.IsFaulty(Coord{X: 5, Y: 5}) {
		t.Error("snapshots must reflect their fault sets")
	}
	// The snapshot agrees with the dynamic view on every query plane.
	src, dst := Coord{X: 0, Y: 0}, Coord{X: 11, Y: 11}
	if s3.HasMinimalPath(src, dst) != d.HasMinimalPath(src, dst) {
		t.Error("snapshot and dynamic HasMinimalPath disagree")
	}
	if s3.Safe(src, dst, Blocks) != d.Safe(src, dst) {
		t.Error("snapshot and dynamic Safe disagree")
	}
}

func TestDynamicApplyBatch(t *testing.T) {
	d, err := NewDynamic(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := d.Apply([]Coord{{X: 2, Y: 2}, {X: 3, Y: 3}}, nil)
	if err != nil || applied != 2 || skipped != 0 {
		t.Fatalf("Apply = (%d, %d, %v), want (2, 0, nil)", applied, skipped, err)
	}
	if d.FaultCount() != 2 {
		t.Fatalf("FaultCount = %d, want 2", d.FaultCount())
	}
	// Re-failing a faulty node and recovering a healthy one skip.
	applied, skipped, err = d.Apply([]Coord{{X: 2, Y: 2}}, []Coord{{X: 7, Y: 7}})
	if err != nil || applied != 0 || skipped != 2 {
		t.Fatalf("idempotent Apply = (%d, %d, %v), want (0, 2, nil)", applied, skipped, err)
	}
	// Recovery really repairs.
	applied, skipped, err = d.Apply(nil, []Coord{{X: 3, Y: 3}})
	if err != nil || applied != 1 || skipped != 0 {
		t.Fatalf("recover Apply = (%d, %d, %v), want (1, 0, nil)", applied, skipped, err)
	}
	if d.IsFaulty(Coord{X: 3, Y: 3}) || !d.IsFaulty(Coord{X: 2, Y: 2}) {
		t.Error("Apply recover did not repair the right node")
	}
	// Out-of-mesh aborts with the partial count reported.
	if _, _, err := d.Apply([]Coord{{X: 99, Y: 0}}, nil); err == nil {
		t.Error("out-of-mesh fail should error")
	}
	if d.Version() == 0 {
		t.Error("mutations should bump the version")
	}
}

func TestDynamicAccessors(t *testing.T) {
	d, err := NewDynamic(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 6 || d.Height() != 9 {
		t.Fatalf("dims = %dx%d, want 6x9", d.Width(), d.Height())
	}
	v0 := d.Version()
	if err := d.AddFault(Coord{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if d.Version() != v0+1 {
		t.Errorf("Version = %d, want %d", d.Version(), v0+1)
	}
	if !d.IsFaulty(Coord{X: 1, Y: 1}) || d.IsFaulty(Coord{X: 2, Y: 2}) {
		t.Error("IsFaulty wrong")
	}
}

// TestDynamicApplyEventOrder pins Apply's event-order semantics as a
// table: the entire fail list is processed before any recover, a node
// in both lists nets out healthy with both mutations counted,
// duplicates skip, and an out-of-bounds entry aborts with the applied
// prefix retained. The durable journal replays attempted lists, so
// these semantics are a compatibility contract: changing them silently
// corrupts crash recovery.
func TestDynamicApplyEventOrder(t *testing.T) {
	for _, tc := range []struct {
		name          string
		pre           []Coord // faults before the batch
		fail, recover []Coord
		wantApplied   int
		wantSkipped   int
		wantErr       bool
		wantFaulty    []Coord
		wantHealthy   []Coord
		wantVersion   uint64 // total after pre + batch
	}{
		{
			name:        "same node in fail and recover nets healthy",
			fail:        []Coord{{X: 2, Y: 2}},
			recover:     []Coord{{X: 2, Y: 2}},
			wantApplied: 2, // fail applies first, then recover repairs it
			wantHealthy: []Coord{{X: 2, Y: 2}},
			wantVersion: 2,
		},
		{
			name:        "recover of pre-existing fault plus re-fail",
			pre:         []Coord{{X: 1, Y: 1}},
			fail:        []Coord{{X: 1, Y: 1}},
			recover:     []Coord{{X: 1, Y: 1}},
			wantApplied: 1, // fail skips (already faulty), recover repairs
			wantSkipped: 1,
			wantHealthy: []Coord{{X: 1, Y: 1}},
			wantVersion: 2,
		},
		{
			name:        "duplicate fail entries: second skips",
			fail:        []Coord{{X: 3, Y: 3}, {X: 3, Y: 3}},
			wantApplied: 1,
			wantSkipped: 1,
			wantFaulty:  []Coord{{X: 3, Y: 3}},
			wantVersion: 1,
		},
		{
			name:        "duplicate recover entries: second skips",
			pre:         []Coord{{X: 4, Y: 4}},
			recover:     []Coord{{X: 4, Y: 4}, {X: 4, Y: 4}},
			wantApplied: 1,
			wantSkipped: 1,
			wantHealthy: []Coord{{X: 4, Y: 4}},
			wantVersion: 2,
		},
		{
			name:        "out-of-bounds fail aborts, applied prefix retained",
			fail:        []Coord{{X: 2, Y: 2}, {X: 99, Y: 0}, {X: 3, Y: 3}},
			wantApplied: 1,
			wantErr:     true,
			wantFaulty:  []Coord{{X: 2, Y: 2}},
			wantHealthy: []Coord{{X: 3, Y: 3}}, // never reached
			wantVersion: 1,
		},
		{
			name:        "out-of-bounds recover aborts after all fails applied",
			fail:        []Coord{{X: 5, Y: 5}},
			recover:     []Coord{{X: 0, Y: 99}},
			wantApplied: 1,
			wantErr:     true,
			wantFaulty:  []Coord{{X: 5, Y: 5}},
			wantVersion: 1,
		},
		{
			name:        "empty batch is a no-op",
			wantVersion: 0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDynamic(8, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range tc.pre {
				if err := d.AddFault(c); err != nil {
					t.Fatal(err)
				}
			}
			applied, skipped, err := d.Apply(tc.fail, tc.recover)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if applied != tc.wantApplied || skipped != tc.wantSkipped {
				t.Errorf("applied/skipped = %d/%d, want %d/%d", applied, skipped, tc.wantApplied, tc.wantSkipped)
			}
			for _, c := range tc.wantFaulty {
				if !d.IsFaulty(c) {
					t.Errorf("%v healthy, want faulty", c)
				}
			}
			for _, c := range tc.wantHealthy {
				if d.IsFaulty(c) {
					t.Errorf("%v faulty, want healthy", c)
				}
			}
			if d.Version() != tc.wantVersion {
				t.Errorf("version = %d, want %d", d.Version(), tc.wantVersion)
			}
		})
	}
}

// TestRestoreVersion pins the snapshot-recovery fast-forward: the
// counter can only move forward, and queries observe the restored
// value.
func TestRestoreVersion(t *testing.T) {
	d, err := NewDynamic(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddFault(Coord{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.RestoreVersion(17); err != nil {
		t.Fatal(err)
	}
	if d.Version() != 17 {
		t.Fatalf("Version = %d, want 17", d.Version())
	}
	if err := d.RestoreVersion(5); err == nil {
		t.Fatal("RestoreVersion accepted a rollback")
	}
	// Mutations keep counting from the restored value.
	if err := d.AddFault(Coord{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if d.Version() != 18 {
		t.Fatalf("Version after mutation = %d, want 18", d.Version())
	}
	// Version-memoized snapshots respect the jump: a restore plus a
	// mutation must yield a fresh snapshot, not a stale memo.
	s1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddFault(Coord{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	s2, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("snapshot memo survived a post-restore mutation")
	}
}
