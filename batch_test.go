package extmesh

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// batchNetwork builds a mid-density 40x40 network for the batch tests.
func batchNetwork(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	var faults []Coord
	seen := make(map[Coord]bool)
	for len(faults) < 35 {
		c := Coord{X: rng.Intn(40), Y: rng.Intn(40)}
		if !seen[c] {
			seen[c] = true
			faults = append(faults, c)
		}
	}
	n, err := New(40, 40, faults)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// allDests returns every node of the mesh, including faulty and
// out-of-quadrant ones, so the batch APIs see every input class.
func allDests(n *Network) []Coord {
	dests := make([]Coord, 0, n.Width()*n.Height())
	for y := 0; y < n.Height(); y++ {
		for x := 0; x < n.Width(); x++ {
			dests = append(dests, Coord{X: x, Y: y})
		}
	}
	return dests
}

// TestEnsureAllMatchesEnsure checks that the batch evaluation returns
// exactly the sequential per-destination answers, in order, for both
// fault models.
func TestEnsureAllMatchesEnsure(t *testing.T) {
	n := batchNetwork(t)
	st := DefaultStrategy()
	s := Coord{X: 3, Y: 3}
	dests := allDests(n)
	for _, fm := range []FaultModel{Blocks, MCC} {
		got := n.EnsureAll(s, dests, fm, st)
		if len(got) != len(dests) {
			t.Fatalf("%v: EnsureAll returned %d results for %d dests", fm, len(got), len(dests))
		}
		for i, d := range dests {
			want := n.Ensure(s, d, fm, st)
			if got[i].Verdict != want.Verdict || len(got[i].Via()) != len(want.Via()) {
				t.Fatalf("%v: EnsureAll[%v] = %+v, want %+v", fm, d, got[i], want)
			}
			for vi := range want.Via() {
				if got[i].Via()[vi] != want.Via()[vi] {
					t.Fatalf("%v: EnsureAll[%v] via = %v, want %v", fm, d, got[i].Via(), want.Via())
				}
			}
		}
	}
	if n.EnsureAll(s, nil, Blocks, st) == nil {
		t.Fatal("EnsureAll(nil dests) should return an empty non-nil slice")
	}
}

// TestHasMinimalPathAllMatchesSingle cross-checks the batched
// existence sweep against the per-query answer.
func TestHasMinimalPathAllMatchesSingle(t *testing.T) {
	n := batchNetwork(t)
	s := Coord{X: 0, Y: 0}
	dests := append(allDests(n), Coord{X: -1, Y: 2}, Coord{X: 40, Y: 40})
	got := n.HasMinimalPathAll(s, dests)
	for i, d := range dests {
		if want := n.HasMinimalPath(s, d); got[i] != want {
			t.Fatalf("HasMinimalPathAll[%v] = %v, want %v", d, got[i], want)
		}
	}
}

// TestRouteManyMatchesRoute checks that batch routing returns the same
// paths and errors as sequential routing, in request order.
func TestRouteManyMatchesRoute(t *testing.T) {
	n := batchNetwork(t)
	rng := rand.New(rand.NewSource(4))
	var pairs []Pair
	for len(pairs) < 120 {
		p := Pair{
			Src: Coord{X: rng.Intn(40), Y: rng.Intn(40)},
			Dst: Coord{X: rng.Intn(40), Y: rng.Intn(40)},
		}
		pairs = append(pairs, p)
	}
	for _, fm := range []FaultModel{Blocks, MCC} {
		got := n.RouteMany(pairs, fm)
		for i, p := range pairs {
			wantPath, wantErr := n.Route(p.Src, p.Dst, fm)
			if (got[i].Err != nil) != (wantErr != nil) {
				t.Fatalf("%v: RouteMany[%v] err = %v, want %v", fm, p, got[i].Err, wantErr)
			}
			if len(got[i].Path) != len(wantPath) {
				t.Fatalf("%v: RouteMany[%v] path len %d, want %d", fm, p, len(got[i].Path), len(wantPath))
			}
			for j := range wantPath {
				if got[i].Path[j] != wantPath[j] {
					t.Fatalf("%v: RouteMany[%v] path %v, want %v", fm, p, got[i].Path, wantPath)
				}
			}
		}
	}
}

// TestOracleRouteManyMatchesOracle checks the batched oracle against
// the sequential one and that successes align with HasMinimalPath.
func TestOracleRouteManyMatchesOracle(t *testing.T) {
	n := batchNetwork(t)
	rng := rand.New(rand.NewSource(5))
	var pairs []Pair
	for len(pairs) < 80 {
		pairs = append(pairs, Pair{
			Src: Coord{X: rng.Intn(40), Y: rng.Intn(40)},
			Dst: Coord{X: rng.Intn(40), Y: rng.Intn(40)},
		})
	}
	got := n.OracleRouteMany(pairs)
	for i, p := range pairs {
		wantPath, wantErr := n.OracleRoute(p.Src, p.Dst)
		if (got[i].Err != nil) != (wantErr != nil) {
			t.Fatalf("OracleRouteMany[%v] err = %v, want %v", p, got[i].Err, wantErr)
		}
		if got[i].Err == nil {
			if !got[i].Path.Minimal() {
				t.Fatalf("OracleRouteMany[%v] returned non-minimal path", p)
			}
			if !n.HasMinimalPath(p.Src, p.Dst) {
				t.Fatalf("OracleRouteMany[%v] succeeded but HasMinimalPath is false", p)
			}
			_ = wantPath
		}
	}
}

// TestHasMinimalPathCachedConsistency checks that the cached existence
// answer matches a frozen reference across many sources, exercising
// LRU eviction (sources exceed nothing here, but hits and misses both
// occur) and the stats counters.
func TestHasMinimalPathCachedConsistency(t *testing.T) {
	n := batchNetwork(t)
	ref := batchNetwork(t) // identical fault set, separate cache
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		s := Coord{X: rng.Intn(40), Y: rng.Intn(40)}
		d := Coord{X: rng.Intn(40), Y: rng.Intn(40)}
		if got, want := n.HasMinimalPath(s, d), ref.HasMinimalPath(s, d); got != want {
			t.Fatalf("HasMinimalPath(%v,%v) = %v, want %v", s, d, got, want)
		}
	}
	hits, misses := n.ReachCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
}

// TestNetworkErr checks the error-surfacing satellite: a healthy
// network reports nil, an unknown fault model makes Safe/Ensure return
// deterministic zero values and surfaces the swallowed error.
func TestNetworkErr(t *testing.T) {
	n := paperNetwork(t)
	if err := n.Err(); err != nil {
		t.Fatalf("healthy network Err() = %v", err)
	}
	s := Coord{X: 0, Y: 0}
	d := Coord{X: 9, Y: 9}
	bad := FaultModel(99)
	for i := 0; i < 3; i++ { // deterministic across repeats
		if n.Safe(s, d, bad) {
			t.Fatal("Safe with unknown model should be false")
		}
		if a := n.Ensure(s, d, bad, DefaultStrategy()); a.Verdict != Unknown {
			t.Fatalf("Ensure with unknown model = %v, want Unknown", a.Verdict)
		}
		if n.AffectedRows(bad) != 0 || n.AffectedCols(bad) != 0 {
			t.Fatal("AffectedRows/Cols with unknown model should be 0")
		}
	}
	if err := n.Err(); err == nil {
		t.Fatal("Err() should surface the swallowed unknown-model error")
	}
	// Valid queries still work and do not clear the sticky error.
	if !n.Safe(Coord{X: 0, Y: 0}, Coord{X: 1, Y: 0}, Blocks) {
		t.Fatal("valid Safe query broken after model error")
	}
	if n.Err() == nil {
		t.Fatal("Err() should stay sticky")
	}
	if _, err := n.Route(s, d, FaultModel(99)); err == nil {
		t.Fatal("Route with unknown model should error")
	}
}

// TestBatchConcurrentUse hammers the batch APIs and the reach cache
// from many goroutines; run with -race.
func TestBatchConcurrentUse(t *testing.T) {
	n := batchNetwork(t)
	dests := allDests(n)[:200]
	st := DefaultStrategy()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := Coord{X: g % 3, Y: g % 5}
			_ = n.EnsureAll(s, dests, Blocks, st)
			_ = n.HasMinimalPathAll(s, dests)
			for i := 0; i < 50; i++ {
				_ = n.HasMinimalPath(s, dests[i])
			}
			if _, err := n.OracleRoute(s, Coord{X: 39, Y: 39}); err != nil {
				var stuck *StuckError
				if !errors.As(err, &stuck) {
					t.Errorf("OracleRoute: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
}
