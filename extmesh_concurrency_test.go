package extmesh

import (
	"sync"
	"testing"
)

// TestNetworkConcurrentUse exercises the documented thread-safety of
// an immutable Network: lazy caches (MCC sets, models, routers) must
// build exactly once under concurrent access. Run with -race.
func TestNetworkConcurrentUse(t *testing.T) {
	n := paperNetwork(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := Coord{X: 0, Y: 0}
			d := Coord{X: 9 - g%3, Y: 10 - g%2}
			for i := 0; i < 20; i++ {
				_ = n.Safe(s, d, Blocks)
				_ = n.Safe(s, d, MCC)
				_ = n.Ensure(s, d, MCC, DefaultStrategy())
				if _, err := n.Route(s, d, Blocks); err != nil {
					t.Errorf("Route: %v", err)
					return
				}
				if _, err := n.Route(s, d, MCC); err != nil {
					t.Errorf("Route MCC: %v", err)
					return
				}
				_ = n.HasMinimalPath(s, d)
				if _, err := n.SafetyLevel(s, MCC); err != nil {
					t.Errorf("SafetyLevel: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
