package extmesh

import (
	"math"
	"testing"
)

func TestSimulateTrafficStoreAndForward(t *testing.T) {
	n := paperNetwork(t)
	opts := DefaultTrafficOptions()
	opts.Cycles = 150
	opts.Warmup = 30
	st, err := n.SimulateTraffic(opts)
	if err != nil {
		t.Fatalf("SimulateTraffic: %v", err)
	}
	if st.Delivered == 0 || st.Injected == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.Undeliverable != 0 {
		t.Errorf("guaranteed traffic dropped %d packets", st.Undeliverable)
	}
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("stretch = %v, want 1.0", st.AvgStretch)
	}
}

func TestSimulateTrafficWormhole(t *testing.T) {
	n := paperNetwork(t)
	opts := DefaultTrafficOptions()
	opts.Wormhole = true
	opts.Cycles = 200
	opts.Warmup = 40
	opts.InjectionRate = 0.01
	st, err := n.SimulateTraffic(opts)
	if err != nil {
		t.Fatalf("SimulateTraffic: %v", err)
	}
	if st.Delivered == 0 {
		t.Fatalf("no worms delivered: %+v", st)
	}
	if st.Deadlocked {
		t.Error("class-VC wormhole should not deadlock")
	}
}

func TestSimulateTrafficRoutingKinds(t *testing.T) {
	n := paperNetwork(t)
	for _, kind := range []RoutingKind{WuProtocol, OracleRouter, XYRouter} {
		opts := DefaultTrafficOptions()
		opts.Routing = kind
		opts.Cycles = 100
		opts.Warmup = 20
		st, err := n.SimulateTraffic(opts)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if st.Delivered == 0 {
			t.Errorf("kind %d delivered nothing", kind)
		}
	}
	opts := DefaultTrafficOptions()
	opts.Routing = RoutingKind(99)
	if _, err := n.SimulateTraffic(opts); err == nil {
		t.Error("unknown routing kind should fail")
	}
}

func TestSimulateTrafficMCCModel(t *testing.T) {
	n := paperNetwork(t)
	opts := DefaultTrafficOptions()
	opts.Model = MCC
	opts.Cycles = 100
	opts.Warmup = 20
	st, err := n.SimulateTraffic(opts)
	if err != nil {
		t.Fatalf("SimulateTraffic MCC: %v", err)
	}
	if st.Delivered == 0 {
		t.Error("MCC traffic delivered nothing")
	}
	if _, err := n.SimulateTraffic(TrafficOptions{Model: FaultModel(9), Routing: WuProtocol, InjectionRate: 0.1, Cycles: 10}); err == nil {
		t.Error("bad model should fail")
	}
}
