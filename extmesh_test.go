package extmesh

import (
	"errors"
	"math/rand"
	"testing"
)

// paperNetwork builds the Figure 1 example network: eight faults
// forming the faulty block [2:6, 3:6] in a 12x12 mesh.
func paperNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := New(12, 12, []Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		w, h    int
		faults  []Coord
		wantErr bool
	}{
		{name: "ok", w: 8, h: 8, faults: []Coord{{X: 1, Y: 1}}},
		{name: "no faults", w: 8, h: 8},
		{name: "bad dims", w: 0, h: 8, wantErr: true},
		{name: "fault outside", w: 8, h: 8, faults: []Coord{{X: 8, Y: 0}}, wantErr: true},
		{name: "duplicate", w: 8, h: 8, faults: []Coord{{X: 1, Y: 1}, {X: 1, Y: 1}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.w, tt.h, tt.faults)
			if (err != nil) != tt.wantErr {
				t.Errorf("New: err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNetworkBasics(t *testing.T) {
	n := paperNetwork(t)
	if n.Width() != 12 || n.Height() != 12 {
		t.Errorf("dims = %dx%d", n.Width(), n.Height())
	}
	if !n.Contains(Coord{X: 11, Y: 11}) || n.Contains(Coord{X: 12, Y: 0}) {
		t.Error("Contains wrong")
	}
	if got := len(n.Faults()); got != 8 {
		t.Errorf("Faults() has %d entries, want 8", got)
	}
	if !n.IsFaulty(Coord{X: 3, Y: 3}) || n.IsFaulty(Coord{X: 0, Y: 0}) {
		t.Error("IsFaulty wrong")
	}
	blocks := n.Blocks()
	if len(blocks) != 1 || blocks[0] != (Rect{MinX: 2, MinY: 3, MaxX: 6, MaxY: 6}) {
		t.Errorf("Blocks() = %v", blocks)
	}
	// Mutating the returned slices must not affect the network.
	blocks[0] = Rect{}
	if n.Blocks()[0] == (Rect{}) {
		t.Error("Blocks() aliases internal state")
	}
	faults := n.Faults()
	faults[0] = Coord{X: 11, Y: 11}
	if n.Faults()[0] == (Coord{X: 11, Y: 11}) {
		t.Error("Faults() aliases internal state")
	}
}

func TestFaultModelString(t *testing.T) {
	if Blocks.String() != "blocks" || MCC.String() != "mcc" || FaultModel(0).String() != "unknown" {
		t.Error("FaultModel names wrong")
	}
}

func TestInRegion(t *testing.T) {
	n := paperNetwork(t)
	inside := Coord{X: 4, Y: 5} // disabled under both models
	nwCorner := Coord{X: 2, Y: 6}

	if !n.InRegion(inside, Blocks) || !n.InRegion(inside, MCC) {
		t.Error("interior node should be in both regions")
	}
	// The NW corner is removed by the type-one MCC but kept by the
	// block model.
	if !n.InRegion(nwCorner, Blocks) {
		t.Error("NW corner should be in the block")
	}
	if n.InRegion(nwCorner, MCC) {
		t.Error("NW corner should not be in the type-one MCC")
	}
	// Quadrant II routing uses the type-two MCC, which keeps it.
	if !n.InRegionFor(nwCorner, MCC, Coord{X: 11, Y: 0}, Coord{X: 0, Y: 11}) {
		t.Error("NW corner should be in the type-two MCC (quadrant II pair)")
	}
	if n.DisabledCount(MCC) >= n.DisabledCount(Blocks) {
		t.Errorf("MCC disabled %d should be below block disabled %d",
			n.DisabledCount(MCC), n.DisabledCount(Blocks))
	}
}

func TestSafetyLevel(t *testing.T) {
	n := paperNetwork(t)
	lvl, err := n.SafetyLevel(Coord{X: 0, Y: 3}, Blocks)
	if err != nil {
		t.Fatalf("SafetyLevel: %v", err)
	}
	if lvl.E != 2 {
		t.Errorf("E = %d, want 2 (block starts at x=2 on row 3)", lvl.E)
	}
	if lvl.W != Unbounded || lvl.S != Unbounded {
		t.Errorf("W/S should be unbounded: %v", lvl)
	}
	if _, err := n.SafetyLevel(Coord{X: -1, Y: 0}, Blocks); err == nil {
		t.Error("out-of-mesh SafetyLevel should fail")
	}
	// The MCC level can only be larger or equal (fewer blocked nodes).
	mccLvl, err := n.SafetyLevel(Coord{X: 0, Y: 3}, MCC)
	if err != nil {
		t.Fatalf("SafetyLevel MCC: %v", err)
	}
	if mccLvl.E < lvl.E {
		t.Errorf("MCC E = %d below block E = %d", mccLvl.E, lvl.E)
	}
}

func TestHasMinimalPath(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	if !n.HasMinimalPath(s, Coord{X: 11, Y: 11}) {
		t.Error("path around the block should exist")
	}
	if n.HasMinimalPath(s, Coord{X: 3, Y: 3}) {
		t.Error("faulty destination should have no path")
	}
	if n.HasMinimalPath(Coord{X: -1, Y: 0}, s) {
		t.Error("out-of-mesh source should have no path")
	}
	// Minimal paths may pass through disabled (healthy) nodes: the
	// disabled node (4,3) is usable in reality.
	if !n.HasMinimalPath(Coord{X: 4, Y: 0}, Coord{X: 4, Y: 3}) {
		t.Error("path to a disabled but healthy node should exist")
	}
}

func TestSafeAndEnsure(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	d := Coord{X: 11, Y: 11}
	if !n.Safe(s, d, Blocks) || !n.Safe(s, d, MCC) {
		t.Error("clear-axis source should be safe under both models")
	}
	// Unsafe source with a working strategy.
	s2 := Coord{X: 0, Y: 3}
	d2 := Coord{X: 9, Y: 10}
	if n.Safe(s2, d2, Blocks) {
		t.Error("source with blocked row should be unsafe")
	}
	a := n.Ensure(s2, d2, Blocks, DefaultStrategy())
	if a.Verdict == Unknown {
		t.Fatal("default strategy should find a guarantee")
	}
	// No strategy enabled means base condition only.
	if got := n.Ensure(s2, d2, Blocks, Strategy{}); got.Verdict != Unknown {
		t.Errorf("empty strategy = %v, want unknown", got.Verdict)
	}
	// Invalid model yields no guarantee.
	if got := n.Ensure(s, d, FaultModel(99), DefaultStrategy()); got.Verdict != Unknown {
		t.Errorf("bad model = %v, want unknown", got.Verdict)
	}
	if n.Safe(s, d, FaultModel(99)) {
		t.Error("bad model should not be safe")
	}
}

func TestRouteAndRouteAssured(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	d := Coord{X: 11, Y: 11}
	p, err := n.Route(s, d, Blocks)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if !p.Minimal() {
		t.Errorf("route not minimal: %d hops", p.Hops())
	}

	p2, a, err := n.RouteAssured(s, d, Blocks, DefaultStrategy())
	if err != nil {
		t.Fatalf("RouteAssured: %v", err)
	}
	if a.Verdict != Minimal || !p2.Minimal() {
		t.Errorf("RouteAssured verdict %v, hops %d", a.Verdict, p2.Hops())
	}

	// A pair with no guarantee reports an error.
	nBig, err := New(8, 8, []Coord{{X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nBig.RouteAssured(Coord{X: 0, Y: 0}, Coord{X: 7, Y: 7}, Blocks, Strategy{}); err == nil {
		t.Error("boxed-in source should fail RouteAssured")
	}

	// MCC routing works for every quadrant pair.
	quadDests := []Coord{{X: 11, Y: 11}, {X: 0, Y: 11}, {X: 11, Y: 0}}
	src := Coord{X: 8, Y: 8}
	for _, qd := range quadDests {
		if p, err := n.Route(src, qd, MCC); err != nil {
			t.Errorf("MCC route %v->%v: %v", src, qd, err)
		} else if !p.Minimal() {
			t.Errorf("MCC route %v->%v not minimal", src, qd)
		}
	}
}

func TestOracleRoute(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	p, err := n.OracleRoute(s, Coord{X: 11, Y: 11})
	if err != nil {
		t.Fatalf("OracleRoute: %v", err)
	}
	if !p.Minimal() {
		t.Error("oracle route not minimal")
	}
	_, err = n.OracleRoute(s, Coord{X: 3, Y: 3})
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Errorf("OracleRoute to fault: err = %v, want StuckError", err)
	}
}

func TestAffectedRowsCols(t *testing.T) {
	n := paperNetwork(t)
	// Block spans rows 3..6 and columns 2..6.
	if got := n.AffectedRows(Blocks); got != 4 {
		t.Errorf("AffectedRows = %d, want 4", got)
	}
	if got := n.AffectedCols(Blocks); got != 5 {
		t.Errorf("AffectedCols = %d, want 5", got)
	}
	if got := n.AffectedRows(MCC); got != 4 {
		t.Errorf("AffectedRows(MCC) = %d, want 4", got)
	}
}

// TestEndToEndRandom is the public-API integration property: over
// random networks, every assurance returned by Ensure is realized by
// RouteAssured with exactly the promised length, under both models and
// all quadrants.
func TestEndToEndRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		w := 12 + rng.Intn(16)
		h := 12 + rng.Intn(16)
		var faults []Coord
		seen := make(map[Coord]bool)
		for i := 0; i < rng.Intn(w*h/10); i++ {
			c := Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if !seen[c] {
				seen[c] = true
				faults = append(faults, c)
			}
		}
		n, err := New(w, h, faults)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		for pair := 0; pair < 40; pair++ {
			s := Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			for _, fm := range []FaultModel{Blocks, MCC} {
				if n.InRegionFor(s, fm, s, d) || n.InRegionFor(d, fm, s, d) {
					continue
				}
				a := n.Ensure(s, d, fm, DefaultStrategy())
				if a.Verdict == Unknown {
					continue
				}
				p, got, err := n.RouteAssured(s, d, fm, DefaultStrategy())
				if err != nil {
					t.Fatalf("trial %d %v: RouteAssured(%v,%v): %v (faults %v)", trial, fm, s, d, err, faults)
				}
				if got.Verdict != a.Verdict {
					t.Fatalf("trial %d: Ensure and RouteAssured disagree", trial)
				}
				want := distance(s, d)
				if a.Verdict == SubMinimal {
					want += 2
				}
				if p.Hops() != want {
					t.Fatalf("trial %d %v: %v->%v hops %d, want %d", trial, fm, s, d, p.Hops(), want)
				}
				// Every hop avoids faulty nodes.
				for _, c := range p {
					if n.IsFaulty(c) {
						t.Fatalf("trial %d: path through faulty node %v", trial, c)
					}
				}
			}
		}
	}
}

func distance(a, b Coord) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

func TestHasMinimalPathAvoidingBlocks(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	if !n.HasMinimalPathAvoidingBlocks(s, Coord{X: 11, Y: 11}, Blocks) {
		t.Error("block-avoiding path around the corner should exist")
	}
	// Destination boxed by the block model but free under MCC: the
	// disabled corner (2,6) is unusable for the block model router but
	// reachable in reality.
	if n.HasMinimalPathAvoidingBlocks(s, Coord{X: 2, Y: 6}, Blocks) {
		t.Error("destination inside a block is unreachable for the block model")
	}
	if !n.HasMinimalPathAvoidingBlocks(s, Coord{X: 2, Y: 6}, MCC) {
		t.Error("the MCC model should reach the freed corner")
	}
	if n.HasMinimalPathAvoidingBlocks(Coord{X: -1, Y: 0}, s, Blocks) {
		t.Error("outside endpoints should report false")
	}
	// Consistency: block-avoiding implies fault-avoiding.
	for x := 0; x < 12; x += 3 {
		for y := 0; y < 12; y += 3 {
			d := Coord{X: x, Y: y}
			if n.HasMinimalPathAvoidingBlocks(s, d, Blocks) && !n.HasMinimalPath(s, d) {
				t.Errorf("block-avoiding path to %v without fault-avoiding path", d)
			}
		}
	}
}

func TestDFSRoutePublic(t *testing.T) {
	n := paperNetwork(t)
	s := Coord{X: 0, Y: 0}
	d := Coord{X: 11, Y: 11}
	p, err := n.DFSRoute(s, d, Blocks)
	if err != nil {
		t.Fatalf("DFSRoute: %v", err)
	}
	if p.Hops() < 22 {
		t.Errorf("impossible DFS length %d", p.Hops())
	}
	if _, err := n.DFSRoute(s, Coord{X: 3, Y: 3}, Blocks); err == nil {
		t.Error("faulty destination should fail")
	}
	if _, err := n.DFSRoute(s, d, FaultModel(9)); err == nil {
		t.Error("bad model should fail")
	}
}

func TestSafetyGridAndErrorPaths(t *testing.T) {
	n := paperNetwork(t)
	g, err := n.SafetyGrid(Blocks)
	if err != nil {
		t.Fatalf("SafetyGrid: %v", err)
	}
	lvl, err := n.SafetyLevel(Coord{X: 0, Y: 3}, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(Coord{X: 0, Y: 3}) != lvl {
		t.Error("SafetyGrid disagrees with SafetyLevel")
	}
	if _, err := n.SafetyGrid(FaultModel(9)); err == nil {
		t.Error("bad model should fail")
	}
	if _, err := n.SafetyLevel(Coord{X: 0, Y: 0}, FaultModel(9)); err == nil {
		t.Error("bad model should fail")
	}
	if _, err := n.Route(Coord{X: 0, Y: 0}, Coord{X: 1, Y: 1}, FaultModel(9)); err == nil {
		t.Error("Route with bad model should fail")
	}
	if _, _, err := n.RouteAssured(Coord{X: 0, Y: 0}, Coord{X: 1, Y: 1}, FaultModel(9), DefaultStrategy()); err == nil {
		t.Error("RouteAssured with bad model should fail")
	}
	if got := n.AffectedRows(FaultModel(9)); got != 0 {
		t.Errorf("AffectedRows bad model = %d", got)
	}
	if got := n.AffectedCols(FaultModel(9)); got != 0 {
		t.Errorf("AffectedCols bad model = %d", got)
	}
	if got := n.AffectedCols(MCC); got != 5 {
		t.Errorf("AffectedCols(MCC) = %d, want 5", got)
	}
}

func TestDynamicSafeEndpointsInRegion(t *testing.T) {
	d, err := NewDynamic(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddFault(Coord{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	if d.Safe(Coord{X: 3, Y: 3}, Coord{X: 0, Y: 0}) {
		t.Error("faulty source should not be safe")
	}
	if d.Safe(Coord{X: 0, Y: 0}, Coord{X: 3, Y: 3}) {
		t.Error("faulty destination should not be safe")
	}
}
