GO ?= go

# Packages with lock-guarded or worker-pool concurrency that the race
# detector must cover.
RACE_PKGS = . ./internal/wang ./internal/traffic ./internal/safety ./internal/sim ./internal/wormhole ./internal/serve ./internal/metrics ./internal/journal ./internal/chaos ./meshclient ./cmd/meshserved ./cmd/meshstress

.PHONY: all build test vet fmt race bench bench-smoke smoke chaos verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

# bench regenerates BENCH_routing.json on the paper-scale 200x200 mesh,
# including the serve/* HTTP round-trip measurements.
bench:
	$(GO) run ./cmd/meshbench -out BENCH_routing.json

# bench-smoke runs every meshbench measurement — including the
# reach_bitset/* kernel comparison and the serve_binary/* wire-protocol
# rows — at a tiny benchtime on a small mesh. It gates nothing on the
# numbers; it exists so CI notices when a measured code path stops
# compiling or starts erroring.
bench-smoke:
	$(GO) run ./cmd/meshbench -w 48 -h 48 -k 20,60 -dests 64 -benchtime 5ms -out -

# smoke boots meshserved on an ephemeral port and drives a short
# meshstress run against it (the cmd tests do this in-process too).
smoke: build
	$(GO) test ./cmd/meshserved ./cmd/meshstress

# chaos is the crash-safety gate: kill -9 a journaled meshserved
# mid-mutation-sequence and require bit-identical recovery, then run
# the fault-injection e2e suite (client through a noisy transport must
# answer exactly like the library) under the race detector.
chaos: build
	$(GO) test ./cmd/meshserved -run 'TestCrashRecovery|TestRestartAfterGracefulDrain' -count=1
	$(GO) test -race ./internal/chaos ./meshclient

# verify is the gate for every change: formatting, static checks, full
# build, the whole test suite, and the race detector on the concurrent
# packages.
verify: fmt vet build test race

clean:
	$(GO) clean ./...
