GO ?= go

# Packages with lock-guarded or worker-pool concurrency that the race
# detector must cover.
RACE_PKGS = . ./internal/wang ./internal/traffic ./internal/safety ./internal/sim ./internal/wormhole

.PHONY: all build test vet race bench verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# bench regenerates BENCH_routing.json on the paper-scale 200x200 mesh.
bench:
	$(GO) run ./cmd/meshbench -out BENCH_routing.json

# verify is the gate for every change: static checks, full build, the
# whole test suite, and the race detector on the concurrent packages.
verify: vet build test race

clean:
	$(GO) clean ./...
