GO ?= go

# Packages with lock-guarded or worker-pool concurrency that the race
# detector must cover.
RACE_PKGS = . ./internal/wang ./internal/traffic ./internal/safety ./internal/sim ./internal/wormhole ./internal/serve ./internal/metrics ./internal/journal ./internal/wire ./internal/chaos ./internal/reliability ./meshclient ./cmd/meshserved ./cmd/meshstress

.PHONY: all build test vet fmt race bench bench-smoke bench-diff smoke chaos rel-smoke verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

# bench regenerates BENCH_routing.json on the paper-scale 200x200 mesh,
# including the serve/* HTTP round-trip measurements.
bench:
	$(GO) run ./cmd/meshbench -out BENCH_routing.json

# bench-smoke runs every meshbench measurement — including the
# reach_bitset/* kernel comparison, the route_kernel/* rows and the
# serve_binary/* wire-protocol rows — at a tiny benchtime on a small
# mesh, then re-runs the same workload diffed against the first pass.
# The wide tolerance means only a catastrophic slowdown (or a broken
# measured path) fails; the point is that the -baseline plumbing itself
# is exercised on every CI run, not to gate on noisy tiny-benchtime
# numbers.
bench-smoke:
	$(GO) run ./cmd/meshbench -w 48 -h 48 -k 20,60 -dests 64 -benchtime 5ms -out /tmp/bench-smoke-baseline.json
	$(GO) run ./cmd/meshbench -w 48 -h 48 -k 20,60 -dests 64 -benchtime 5ms -journal=false -out - \
		-baseline /tmp/bench-smoke-baseline.json -tolerance 90

# bench-diff reruns the full paper-scale suite and compares it against
# the committed BENCH_routing.json, failing on any measurement whose
# queries/sec dropped more than 15% — the local regression gate to run
# before committing a performance-sensitive change. (Not in CI: the
# full suite takes minutes and shared runners are too noisy for a 15%
# bar.)
bench-diff:
	$(GO) run ./cmd/meshbench -out /tmp/bench-diff-candidate.json \
		-baseline BENCH_routing.json -tolerance 15

# smoke boots meshserved on an ephemeral port and drives a short
# meshstress run against it (the cmd tests do this in-process too).
smoke: build
	$(GO) test ./cmd/meshserved ./cmd/meshstress

# chaos is the crash-safety gate: kill -9 a journaled meshserved
# mid-mutation-sequence and require bit-identical recovery, then run
# the fault-injection e2e suites under the race detector — the client
# through a noisy transport must answer exactly like the library, and
# the replicated cluster (primary killed mid-stream, replication frames
# torn/duplicated/corrupted, replicas partitioned) must converge
# byte-identically with zero wrong cluster-client answers. The failover
# suite rides in ./internal/chaos: primary hard-killed mid-write-load
# with a follower promoting into a new epoch and the old primary
# rejoining demoted, dueling primaries across a healed partition ending
# with one writable winner, and goodbye-driven fast failover — all with
# zero acknowledged-write loss. The meshstress kill-the-primary audit
# then proves the same over three real daemon processes and a real
# SIGKILL. A short fuzz run over the replication frame decoder
# (including its epoch field) rides along.
chaos: build
	$(GO) test ./cmd/meshserved -run 'TestCrashRecovery|TestRestartAfterGracefulDrain' -count=1
	$(GO) test -race ./internal/chaos ./meshclient
	$(GO) test ./cmd/meshstress -run TestFailoverSmoke -count=1
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReplicationFrames -fuzztime 5s

# rel-smoke is the reliability-engine gate: a small Monte Carlo sweep
# whose Theorem 2 analytic prediction must land inside the reported
# confidence intervals (meshrel exits nonzero otherwise). The
# configuration is the one internal/reliability's own analytic test
# pins as agreeing.
rel-smoke:
	$(GO) run ./cmd/meshrel -w 32 -h 32 -k 8 -trials 512 -pairs 4 -seed 2 -check

# verify is the gate for every change: formatting, static checks, full
# build, the whole test suite, the race detector on the concurrent
# packages, and the reliability analytic cross-check.
verify: fmt vet build test race rel-smoke

clean:
	$(GO) clean ./...
