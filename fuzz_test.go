package extmesh

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzUnmarshalNetwork feeds arbitrary bytes through the JSON decoder.
// Decoding must never panic, and any input it accepts must satisfy the
// round-trip property: marshal and decode again, and the geometry and
// fault set come back identical.
func FuzzUnmarshalNetwork(f *testing.F) {
	// Seed the corpus with real encodings across the size range...
	seeds := []struct {
		w, h   int
		faults []Coord
	}{
		{2, 2, nil},
		{4, 7, []Coord{{X: 1, Y: 1}}},
		{12, 12, []Coord{{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 10, Y: 2}}},
		{16, 3, []Coord{{X: 0, Y: 0}, {X: 15, Y: 2}}},
	}
	for _, s := range seeds {
		n, err := New(s.w, s.h, s.faults)
		if err != nil {
			f.Fatal(err)
		}
		data, err := json.Marshal(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// ...and with malformed shapes the decoder must reject cleanly.
	for _, bad := range []string{
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"width":0,"height":5}`,
		`{"width":1000000,"height":1000000}`,
		`{"width":4,"height":4,"faults":[{"x":9,"y":0}]}`,
		`{"width":4,"height":4,"faults":[{"x":1,"y":1},{"x":1,"y":1}]}`,
		`{"width":-3,"height":4,"faults":null}`,
		`{"width":4,"height":4,"faults":[{"x":"a"}]}`,
	} {
		f.Add([]byte(bad))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := UnmarshalNetwork(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		out, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("accepted network failed to marshal: %v", err)
		}
		back, err := UnmarshalNetwork(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v\nencoding: %s", err, out)
		}
		if n.Width() != back.Width() || n.Height() != back.Height() {
			t.Fatalf("geometry changed across round trip: %dx%d -> %dx%d",
				n.Width(), n.Height(), back.Width(), back.Height())
		}
		if !reflect.DeepEqual(n.Faults(), back.Faults()) {
			t.Fatalf("fault set changed across round trip: %v -> %v", n.Faults(), back.Faults())
		}
	})
}
