package extmesh

import (
	"strings"
	"testing"
)

func TestTrafficOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TrafficOptions)
		frag   string // expected error fragment; "" means valid
	}{
		{"defaults", func(o *TrafficOptions) {}, ""},
		{"negative_rate", func(o *TrafficOptions) { o.InjectionRate = -0.1 }, "injection rate"},
		{"rate_above_one", func(o *TrafficOptions) { o.InjectionRate = 1.5 }, "injection rate"},
		{"zero_cycles", func(o *TrafficOptions) { o.Cycles = 0 }, "cycles"},
		{"negative_cycles", func(o *TrafficOptions) { o.Cycles = -5 }, "cycles"},
		{"negative_warmup", func(o *TrafficOptions) { o.Warmup = -1 }, "warmup"},
		{"warmup_swallows_cycles", func(o *TrafficOptions) { o.Warmup = o.Cycles }, "no cycle is measured"},
		{"negative_capacity", func(o *TrafficOptions) { o.QueueCapacity = -2 }, "queue capacity"},
		{"negative_flits", func(o *TrafficOptions) { o.FlitsPerPacket = -1 }, "flits per packet"},
		{"negative_buffers", func(o *TrafficOptions) { o.BufferFlits = -1 }, "buffer flits"},
		{"negative_fault_rate", func(o *TrafficOptions) { o.FaultRate = -0.5 }, "fault rate"},
		{"rate_and_schedule", func(o *TrafficOptions) { o.FaultRate = 0.1; o.FaultSchedule = "none" }, "mutually exclusive"},
		{"online_needs_blocks", func(o *TrafficOptions) { o.Model = MCC; o.FaultRate = 0.1 }, "Blocks model"},
		{"bad_policy", func(o *TrafficOptions) { o.FaultRate = 0.1; o.FaultPolicy = FaultPolicy(9) }, "policy"},
	}
	for _, c := range cases {
		opts := DefaultTrafficOptions()
		c.mutate(&opts)
		err := opts.Validate()
		if c.frag == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want one naming %q", c.name, err, c.frag)
		}
	}
}

// TestSimulateTrafficOnline runs the public online fault-injection API
// end to end for every policy and both switching modes.
func TestSimulateTrafficOnline(t *testing.T) {
	n := paperNetwork(t)
	for _, wormhole := range []bool{false, true} {
		for _, p := range []FaultPolicy{RerouteFaults, DegradeFaults, DropFaults} {
			opts := DefaultTrafficOptions()
			opts.Cycles = 150
			opts.Warmup = 30
			opts.Wormhole = wormhole
			opts.FaultSchedule = "transient:rate=0.05,repair=30"
			opts.FaultPolicy = p
			st, err := n.SimulateTraffic(opts)
			if err != nil {
				t.Fatalf("wormhole=%v policy=%v: %v", wormhole, p, err)
			}
			if st.FaultEvents == 0 {
				t.Errorf("wormhole=%v policy=%v: no fault events fired", wormhole, p)
			}
			if st.Delivered == 0 {
				t.Errorf("wormhole=%v policy=%v: nothing delivered", wormhole, p)
			}
			total := 0
			for _, b := range st.StretchHist {
				total += b
			}
			if total == 0 {
				t.Errorf("wormhole=%v policy=%v: empty stretch histogram", wormhole, p)
			}
		}
	}
}

// TestSimulateTrafficOnlineZeroEventsMatchesStatic checks the public
// API's equivalence guarantee: an explicit empty schedule changes
// nothing relative to a plain static run.
func TestSimulateTrafficOnlineZeroEventsMatchesStatic(t *testing.T) {
	n := paperNetwork(t)
	opts := DefaultTrafficOptions()
	opts.Cycles = 150
	opts.Warmup = 30
	want, err := n.SimulateTraffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.FaultSchedule = "none"
	got, err := n.SimulateTraffic(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Injected != want.Injected || got.Delivered != want.Delivered ||
		got.Undeliverable != want.Undeliverable || got.AvgLatency != want.AvgLatency {
		t.Errorf("zero-event online run diverged from static:\n got: %+v\nwant: %+v", got, want)
	}
	if got.FaultEvents != 0 || got.Dropped != 0 || got.Rerouted != 0 {
		t.Errorf("zero-event run reported fault activity: %+v", got)
	}
}

func TestSimulateTrafficOnlineBadSchedule(t *testing.T) {
	n := paperNetwork(t)
	opts := DefaultTrafficOptions()
	opts.FaultSchedule = "warp:rate=0.1"
	if _, err := n.SimulateTraffic(opts); err == nil {
		t.Error("unknown schedule kind should fail")
	}
}
