// MCC refinement: shows how Wang's minimal-connected-components shrink
// Wu's rectangular faulty blocks and rescue guarantees the block model
// loses. The block model deactivates every node of the bounding
// rectangle; the MCC keeps the corner nodes that can still carry
// minimal routes, so sources next to those corners regain safety.
package main

import (
	"fmt"
	"log"

	"extmesh"
)

func main() {
	// The paper's Figure 1 pattern: block [2:6, 3:6].
	net, err := extmesh.New(12, 12, []extmesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deactivated healthy nodes: %d under the block model, %d under MCC\n\n",
		net.DisabledCount(extmesh.Blocks), net.DisabledCount(extmesh.MCC))

	// The NW corner (2,6) is disabled by the block model but is NOT a
	// type-one MCC member: entering it on a northeast route is still
	// fine, so quadrant-I routing may use it.
	corner := extmesh.Coord{X: 2, Y: 6}
	fmt.Printf("node %v: in block region %v, in type-one MCC region %v\n\n",
		corner, net.InRegion(corner, extmesh.Blocks), net.InRegion(corner, extmesh.MCC))

	// A source whose row is blocked only by disabled nodes: under the
	// block model the safe condition fails, under MCC it holds.
	src := extmesh.Coord{X: 0, Y: 6}
	dst := extmesh.Coord{X: 2, Y: 10}
	lvlB, err := net.SafetyLevel(src, extmesh.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	lvlM, err := net.SafetyLevel(src, extmesh.MCC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safety level at %v: %v (blocks) vs %v (MCC)\n", src, lvlB, lvlM)
	fmt.Printf("safe for %v: %v (blocks) vs %v (MCC)\n",
		dst, net.Safe(src, dst, extmesh.Blocks), net.Safe(src, dst, extmesh.MCC))
	fmt.Printf("a minimal path really exists: %v\n\n", net.HasMinimalPath(src, dst))

	// Routing under the MCC model may travel through nodes the block
	// model deactivates: a destination just past the freed NW corner
	// pulls the route straight through it.
	dst2 := extmesh.Coord{X: 2, Y: 7}
	path, a, err := net.RouteAssured(src, dst2, extmesh.MCC, extmesh.DefaultStrategy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCC route to %v (%v): %v\n", dst2, a.Verdict, path)
	for _, c := range path {
		if net.InRegion(c, extmesh.Blocks) && !net.InRegion(c, extmesh.MCC) {
			fmt.Printf("  hop %v uses a node the block model would have wasted\n", c)
		}
	}
}
