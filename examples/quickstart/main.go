// Quickstart: build a faulty mesh, inspect the fault regions and
// safety levels, check what the sufficient conditions guarantee, and
// route a packet with Wu's limited-information protocol.
package main

import (
	"fmt"
	"log"

	"extmesh"
)

func main() {
	// A 12x12 mesh with the paper's Figure 1 fault pattern: eight
	// faulty nodes that aggregate into the faulty block [2:6, 3:6].
	net, err := extmesh.New(12, 12, []extmesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %dx%d, faults: %d\n", net.Width(), net.Height(), len(net.Faults()))
	fmt.Printf("faulty blocks: %v\n", net.Blocks())
	fmt.Printf("healthy nodes deactivated: %d (block model), %d (MCC)\n\n",
		net.DisabledCount(extmesh.Blocks), net.DisabledCount(extmesh.MCC))

	src := extmesh.Coord{X: 0, Y: 0}
	dst := extmesh.Coord{X: 10, Y: 9}

	// The extended safety level of the source: distance to the nearest
	// fault region towards East, South, West and North.
	lvl, err := net.SafetyLevel(src, extmesh.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("safety level at %v: %v\n", src, lvl)

	// The base sufficient safe condition (Theorem 1).
	fmt.Printf("source safe for %v: %v\n", dst, net.Safe(src, dst, extmesh.Blocks))

	// The full strategy (extensions 1+2+3) and the exact baseline.
	a := net.Ensure(src, dst, extmesh.Blocks, extmesh.DefaultStrategy())
	fmt.Printf("strategy guarantee: %v\n", a.Verdict)
	fmt.Printf("minimal path exists (global information): %v\n\n", net.HasMinimalPath(src, dst))

	// Route with Wu's protocol. The path length equals the Manhattan
	// distance: the route is minimal despite the block in the way.
	path, _, err := net.RouteAssured(src, dst, extmesh.Blocks, extmesh.DefaultStrategy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %v -> %v in %d hops (distance %d)\n", src, dst, path.Hops(), 10+9)
	fmt.Printf("path: %v\n", path)
}
