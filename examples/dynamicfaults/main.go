// Dynamic faults: faults arrive one at a time while the system keeps
// routing. The paper's information model is built for this — a new
// disturbance updates only the affected nodes — and DynamicNetwork
// maintains the fault regions and safety levels incrementally. The
// example injects faults, shows how local each update is, and watches
// a fixed source/destination pair's routing guarantee degrade and the
// route adapt.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extmesh"
)

func main() {
	const side = 24
	dyn, err := extmesh.NewDynamic(side, side)
	if err != nil {
		log.Fatal(err)
	}
	src := extmesh.Coord{X: 2, Y: 2}
	dst := extmesh.Coord{X: 21, Y: 19}
	rng := rand.New(rand.NewSource(11))

	// The first faults land near the source (its row, its column, and
	// a diagonal pair that merges into a 2x2 block); the rest arrive at
	// random.
	scripted := []extmesh.Coord{
		{X: 9, Y: 2}, {X: 2, Y: 12}, {X: 14, Y: 8}, {X: 15, Y: 9},
	}
	fmt.Printf("%6s  %8s  %18s  %10s  %6s  %s\n",
		"fault", "at", "update (dead/rows/cols)", "safe", "hops", "level at source")
	for n := 1; n <= 14; n++ {
		// Draw a fault that is not the source, destination or already
		// faulty.
		var f extmesh.Coord
		if n <= len(scripted) {
			f = scripted[n-1]
		} else {
			for {
				f = extmesh.Coord{X: rng.Intn(side), Y: rng.Intn(side)}
				if f != src && f != dst && !dyn.InRegion(f) {
					break
				}
			}
		}
		if err := dyn.AddFault(f); err != nil {
			log.Fatal(err)
		}
		cascade, rows, cols := dyn.LastUpdateCost()

		// Freeze a snapshot to route with the full protocol stack.
		net, err := dyn.Freeze()
		if err != nil {
			log.Fatal(err)
		}
		hops := "-"
		if path, _, err := net.RouteAssured(src, dst, extmesh.Blocks, extmesh.DefaultStrategy()); err == nil {
			hops = fmt.Sprintf("%d", path.Hops())
		}
		fmt.Printf("%6d  %8v  %10d/%d/%d %14v  %6s  %v\n",
			n, f, cascade, rows, cols, dyn.Safe(src, dst), hops, dyn.SafetyLevel(src))
	}

	fmt.Println("\nEach update touched only the cascade's rows and columns —")
	fmt.Println("never the whole mesh — while routing guarantees stayed live.")
}
