// Faulty routing: demonstrates why boundary-line information matters.
// The destination sits in the "east shadow" of a large faulty block
// (region R6 of the paper): a greedy router that climbs early gets
// trapped against the block's west side, while Wu's protocol stays on
// the L1 boundary line and delivers a minimal path.
package main

import (
	"fmt"
	"log"
	"strings"

	"extmesh"
)

func main() {
	// A 5x5 block in the middle of a 14x14 mesh.
	var faults []extmesh.Coord
	for x := 4; x <= 8; x++ {
		for y := 5; y <= 9; y++ {
			faults = append(faults, extmesh.Coord{X: x, Y: y})
		}
	}
	net, err := extmesh.New(14, 14, faults)
	if err != nil {
		log.Fatal(err)
	}
	src := extmesh.Coord{X: 0, Y: 0}
	dst := extmesh.Coord{X: 11, Y: 7} // east shadow: same rows as the block

	// A naive greedy router: always reduce the larger offset first,
	// with no fault information beyond the adjacent links.
	greedy := func() ([]extmesh.Coord, bool) {
		u := src
		path := []extmesh.Coord{u}
		for u != dst {
			moved := false
			for _, n := range []extmesh.Coord{
				{X: u.X, Y: u.Y + sign(dst.Y-u.Y)},
				{X: u.X + sign(dst.X-u.X), Y: u.Y},
			} {
				if n == u || !net.Contains(n) || net.IsFaulty(n) || net.InRegion(n, extmesh.Blocks) {
					continue
				}
				u = n
				path = append(path, u)
				moved = true
				break
			}
			if !moved {
				return path, false
			}
		}
		return path, true
	}
	gpath, ok := greedy()
	fmt.Printf("greedy router delivered: %v (stopped at %v after %d hops)\n",
		ok, gpath[len(gpath)-1], len(gpath)-1)

	// Wu's protocol uses the block's L1 boundary line: the packet is
	// kept below the block until it has passed its east side.
	path, err := net.Route(src, dst, extmesh.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wu protocol delivered: true (%d hops, distance %d)\n\n", path.Hops(), 11+7)

	// Draw the scenario.
	onPath := make(map[extmesh.Coord]bool, len(path))
	for _, c := range path {
		onPath[c] = true
	}
	var sb strings.Builder
	for y := net.Height() - 1; y >= 0; y-- {
		for x := 0; x < net.Width(); x++ {
			c := extmesh.Coord{X: x, Y: y}
			switch {
			case c == src:
				sb.WriteByte('S')
			case c == dst:
				sb.WriteByte('D')
			case onPath[c]:
				sb.WriteByte('*')
			case net.IsFaulty(c):
				sb.WriteByte('F')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
