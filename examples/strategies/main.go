// Strategies: a miniature version of the paper's evaluation run
// through the public API. For growing fault counts it measures how
// often each condition ensures a minimal path at the source, against
// the exact existence baseline — the same quantities as Figures 9-12,
// on a smaller mesh.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extmesh"
)

const (
	side    = 64
	configs = 8
	dests   = 40
	seed    = 2024
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	src := extmesh.Coord{X: side / 2, Y: side / 2}

	strategies := []struct {
		name string
		st   extmesh.Strategy
	}{
		{"base condition ", extmesh.Strategy{}},
		{"extension 1    ", extmesh.Strategy{UseExtension1: true}},
		{"extension 2 (5)", extmesh.Strategy{UseExtension2: true, SegmentSize: 5}},
		{"extension 3 (3)", extmesh.Strategy{UseExtension3: true, PivotLevels: 3}},
		{"strategy 4     ", extmesh.DefaultStrategy()},
	}

	fmt.Printf("%dx%d mesh, source %v, %d configurations x %d destinations per point\n\n",
		side, side, src, configs, dests)
	fmt.Printf("%8s", "faults")
	for _, s := range strategies {
		fmt.Printf("  %s", s.name)
	}
	fmt.Printf("  %s\n", "existence")

	for k := 8; k <= 64; k += 8 {
		ensured := make([]int, len(strategies))
		exist := 0
		samples := 0
		for c := 0; c < configs; c++ {
			net := sampleNetwork(rng, k, src)
			for i := 0; i < dests; i++ {
				d := sampleDest(rng, net, src)
				samples++
				if net.HasMinimalPath(src, d) {
					exist++
				}
				for si, s := range strategies {
					if net.Ensure(src, d, extmesh.Blocks, s.st).Verdict == extmesh.Minimal {
						ensured[si]++
					}
				}
			}
		}
		fmt.Printf("%8d", k)
		for _, e := range ensured {
			fmt.Printf("  %15.3f", float64(e)/float64(samples))
		}
		fmt.Printf("  %9.3f\n", float64(exist)/float64(samples))
	}
}

// sampleNetwork draws k distinct random faults (never on the source)
// and retries until the source is outside every faulty block.
func sampleNetwork(rng *rand.Rand, k int, src extmesh.Coord) *extmesh.Network {
	for {
		seen := map[extmesh.Coord]bool{src: true}
		faults := make([]extmesh.Coord, 0, k)
		for len(faults) < k {
			c := extmesh.Coord{X: rng.Intn(side), Y: rng.Intn(side)}
			if !seen[c] {
				seen[c] = true
				faults = append(faults, c)
			}
		}
		net, err := extmesh.New(side, side, faults)
		if err != nil {
			log.Fatal(err)
		}
		if !net.InRegion(src, extmesh.Blocks) {
			return net
		}
	}
}

// sampleDest draws a destination from the first quadrant of the
// source, outside every faulty block.
func sampleDest(rng *rand.Rand, net *extmesh.Network, src extmesh.Coord) extmesh.Coord {
	for {
		d := extmesh.Coord{
			X: src.X + 1 + rng.Intn(side-src.X-1),
			Y: src.Y + 1 + rng.Intn(side-src.Y-1),
		}
		if !net.InRegion(d, extmesh.Blocks) {
			return d
		}
	}
}
