// Load simulation: drive a faulty mesh as a communication subsystem
// through the public API. The same network is simulated under rising
// injection rates with three per-hop routers — Wu's limited-information
// protocol, the full-information oracle, and the fault-oblivious XY
// baseline — first as store-and-forward packet switching, then as
// flit-level wormhole switching with per-quadrant virtual channels.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extmesh"
)

func main() {
	const side = 24
	rng := rand.New(rand.NewSource(31))
	var faults []extmesh.Coord
	seen := make(map[extmesh.Coord]bool)
	for len(faults) < 18 {
		c := extmesh.Coord{X: rng.Intn(side), Y: rng.Intn(side)}
		if !seen[c] {
			seen[c] = true
			faults = append(faults, c)
		}
	}
	net, err := extmesh.New(side, side, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%d mesh, %d faults, %d blocks\n\n", side, side, len(faults), len(net.Blocks()))

	routers := []struct {
		name string
		kind extmesh.RoutingKind
	}{
		{"wu", extmesh.WuProtocol},
		{"oracle", extmesh.OracleRouter},
		{"xy", extmesh.XYRouter},
	}

	for _, wormholeMode := range []bool{false, true} {
		if wormholeMode {
			fmt.Println("flit-level wormhole switching (8-flit packets, class VCs):")
		} else {
			fmt.Println("store-and-forward packet switching:")
		}
		fmt.Printf("%8s  %8s  %10s  %10s  %10s\n", "router", "rate", "delivered", "stranded", "latency")
		for _, r := range routers {
			for _, rate := range []float64{0.01, 0.05} {
				opts := extmesh.DefaultTrafficOptions()
				opts.Routing = r.kind
				opts.InjectionRate = rate
				opts.Cycles = 300
				opts.Warmup = 60
				opts.Wormhole = wormholeMode
				st, err := net.SimulateTraffic(opts)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%8s  %8.2f  %10d  %10d  %10.2f\n",
					r.name, rate, st.Delivered, st.Undeliverable, st.AvgLatency)
			}
		}
		fmt.Println()
	}
	fmt.Println("Wu's limited-information protocol strands nothing on guaranteed")
	fmt.Println("pairs and tracks the oracle's latency; XY routing loses packets.")
}
