// Package cli holds flag plumbing shared by the command-line tools:
// every binary that wants -cpuprofile/-memprofile registers the same
// pair through ProfileFlags instead of hand-rolling the pprof
// lifecycle.
package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"flag"
)

// Profile carries the -cpuprofile/-memprofile flag values of one
// command invocation.
type Profile struct {
	CPU string
	Mem string
}

// ProfileFlags registers -cpuprofile and -memprofile on fs and returns
// the destination the parsed values land in.
func ProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if requested and returns a stop function
// that ends it and writes the heap profile. The stop function is safe
// to call exactly once (typically via defer); profile-write failures
// at stop time are reported on stderr rather than lost, matching the
// previous per-command behavior.
func (p *Profile) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.Mem == "" {
			return
		}
		f, err := os.Create(p.Mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
		}
	}, nil
}
