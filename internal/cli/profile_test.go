package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "c.out", "-memprofile", "m.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPU != "c.out" || p.Mem != "m.out" {
		t.Fatalf("parsed %+v, want c.out/m.out", p)
	}
}

func TestProfileStartStopWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := &Profile{
		CPU: filepath.Join(dir, "cpu.out"),
		Mem: filepath.Join(dir, "mem.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, f := range []string{p.CPU, p.Mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile %s not written: %v", f, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

func TestProfileDisabledIsNoop(t *testing.T) {
	p := &Profile{}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop() // nothing requested, nothing written, no panic
}
