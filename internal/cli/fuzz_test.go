package cli

import (
	"strings"
	"testing"
)

// FuzzParseCoordList checks the parser never panics and that accepted
// inputs round-trip structurally: the number of parsed coordinates
// equals the number of non-empty items.
func FuzzParseCoordList(f *testing.F) {
	for _, seed := range []string{
		"", "1,2", "1,2;3,4", " 5 , 6 ;", "a,b", "1;2", "-3,-4;0,0",
		"1,2;;3,4", strings.Repeat("9,9;", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		coords, err := ParseCoordList(s)
		if err != nil {
			return
		}
		nonEmpty := 0
		for _, item := range strings.Split(s, ";") {
			if strings.TrimSpace(item) != "" {
				nonEmpty++
			}
		}
		if s == "" {
			nonEmpty = 0
		}
		if len(coords) != nonEmpty {
			t.Fatalf("parsed %d coords from %d items (%q)", len(coords), nonEmpty, s)
		}
	})
}
