package cli

import (
	"testing"

	"extmesh/internal/mesh"
)

func TestParseCoord(t *testing.T) {
	tests := []struct {
		give    string
		want    mesh.Coord
		wantErr bool
	}{
		{give: "3,4", want: mesh.Coord{X: 3, Y: 4}},
		{give: " 3 , 4 ", want: mesh.Coord{X: 3, Y: 4}},
		{give: "-1,7", want: mesh.Coord{X: -1, Y: 7}},
		{give: "0,0", want: mesh.Coord{X: 0, Y: 0}},
		{give: "3", wantErr: true},
		{give: "3,4,5", wantErr: true},
		{give: "a,4", wantErr: true},
		{give: "3,b", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseCoord(tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseCoord(%q) err = %v, wantErr %v", tt.give, err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("ParseCoord(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestParseCoordList(t *testing.T) {
	got, err := ParseCoordList("1,2;3,4; 5,6 ;")
	if err != nil {
		t.Fatalf("ParseCoordList: %v", err)
	}
	want := []mesh.Coord{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	if got, err := ParseCoordList(""); err != nil || got != nil {
		t.Errorf("empty list = %v, %v", got, err)
	}
	if _, err := ParseCoordList("1,2;bad"); err == nil {
		t.Error("bad entry should fail")
	}
}

func TestFaults(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}

	// Explicit list wins over k.
	got, err := Faults(m, "1,1;2,2", 5, 1)
	if err != nil || len(got) != 2 {
		t.Fatalf("explicit list: %v, %v", got, err)
	}

	// Random faults avoid protected nodes.
	protect := mesh.Coord{X: 5, Y: 5}
	got, err = Faults(m, "", 20, 7, protect)
	if err != nil {
		t.Fatalf("random: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("random: %d faults, want 20", len(got))
	}
	for _, c := range got {
		if c == protect {
			t.Error("protected node selected")
		}
	}

	// k <= 0 and no list yields nothing.
	if got, err := Faults(m, "", 0, 1); err != nil || got != nil {
		t.Errorf("no faults: %v, %v", got, err)
	}

	// Determinism per seed.
	a, _ := Faults(m, "", 10, 3)
	b, _ := Faults(m, "", 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different faults")
		}
	}
}
