// Package cli holds small helpers shared by the command-line tools:
// coordinate and fault-list parsing.
package cli

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

// ParseCoord parses "x,y" into a coordinate.
func ParseCoord(s string) (mesh.Coord, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return mesh.Coord{}, fmt.Errorf("cli: coordinate %q must be x,y", s)
	}
	x, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return mesh.Coord{}, fmt.Errorf("cli: coordinate %q: %v", s, err)
	}
	y, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return mesh.Coord{}, fmt.Errorf("cli: coordinate %q: %v", s, err)
	}
	return mesh.Coord{X: x, Y: y}, nil
}

// ParseCoordList parses "x1,y1;x2,y2;..." into coordinates. An empty
// string yields nil.
func ParseCoordList(s string) ([]mesh.Coord, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []mesh.Coord
	for _, item := range strings.Split(s, ";") {
		if strings.TrimSpace(item) == "" {
			continue
		}
		c, err := ParseCoord(item)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Faults resolves the fault set for a tool invocation: an explicit
// "x,y;..." list wins; otherwise k faults are drawn at random with the
// given seed, never on the listed protected nodes.
func Faults(m mesh.Mesh, list string, k int, seed int64, protect ...mesh.Coord) ([]mesh.Coord, error) {
	if strings.TrimSpace(list) != "" {
		return ParseCoordList(list)
	}
	if k <= 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	guard := make(map[mesh.Coord]bool, len(protect))
	for _, p := range protect {
		guard[p] = true
	}
	return fault.RandomFaults(m, k, rng, func(c mesh.Coord) bool { return guard[c] })
}
