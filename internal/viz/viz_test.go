package viz

import (
	"strings"
	"testing"

	"extmesh/internal/mesh"
)

func TestRenderLayout(t *testing.T) {
	m := mesh.Mesh{Width: 7, Height: 3}
	var sb strings.Builder
	cell := Overlay(
		Base(),
		MarkOne(mesh.Coord{X: 0, Y: 0}, 'S'),
		MarkOne(mesh.Coord{X: 6, Y: 2}, 'D'),
	)
	if err := Render(&sb, m, cell); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	// 3 grid rows + 2 axis rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	// Highest row first: D is on the first grid line, S on the last.
	if !strings.Contains(lines[0], "D") {
		t.Errorf("top row missing D: %q", lines[0])
	}
	if !strings.Contains(lines[2], "S") {
		t.Errorf("bottom row missing S: %q", lines[2])
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "2") {
		t.Errorf("top row should be labeled 2: %q", lines[0])
	}
	if !strings.Contains(lines[4], "0") || !strings.Contains(lines[4], "5") {
		t.Errorf("x labels missing: %q", lines[4])
	}
}

func TestOverlayPrecedence(t *testing.T) {
	c := mesh.Coord{X: 1, Y: 1}
	cell := Overlay(Base(), MarkOne(c, 'A'), MarkOne(c, 'B'), nil)
	if got := cell(c); got != 'B' {
		t.Errorf("later layer should win: got %q", got)
	}
	if got := cell(mesh.Coord{X: 0, Y: 0}); got != '.' {
		t.Errorf("base should show through: got %q", got)
	}
}

func TestMarkGrid(t *testing.T) {
	m := mesh.Mesh{Width: 3, Height: 3}
	grid := make([]bool, m.Size())
	grid[m.Index(mesh.Coord{X: 2, Y: 1})] = true
	cell := MarkGrid(m, grid, 'X')
	if cell(mesh.Coord{X: 2, Y: 1}) != 'X' {
		t.Error("marked node not drawn")
	}
	if cell(mesh.Coord{X: 0, Y: 0}) != 0 {
		t.Error("unmarked node drawn")
	}
	if cell(mesh.Coord{X: -1, Y: 0}) != 0 {
		t.Error("out-of-mesh node drawn")
	}
}

func TestMarkSet(t *testing.T) {
	coords := []mesh.Coord{{X: 0, Y: 0}, {X: 1, Y: 2}}
	cell := MarkSet(coords, '*')
	for _, c := range coords {
		if cell(c) != '*' {
			t.Errorf("set node %v not drawn", c)
		}
	}
	if cell(mesh.Coord{X: 2, Y: 2}) != 0 {
		t.Error("non-set node drawn")
	}
}

func TestLegend(t *testing.T) {
	var sb strings.Builder
	if err := Legend(&sb, "a x", "b y"); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); !strings.Contains(got, "legend: a x  b y") {
		t.Errorf("legend = %q", got)
	}
}
