// Package viz renders 2-D mesh scenarios as ASCII art: fault regions,
// boundary lines, safety information and routed paths. It is used by
// cmd/meshviz and the examples.
package viz

import (
	"fmt"
	"io"
	"strings"

	"extmesh/internal/mesh"
)

// CellFunc returns the rune drawn for a node. Precedence is decided by
// the composition helpers below: later layers override earlier ones.
type CellFunc func(c mesh.Coord) rune

// Base returns a layer drawing free nodes as '.'.
func Base() CellFunc {
	return func(mesh.Coord) rune { return '.' }
}

// Overlay stacks layers: the last layer returning a non-zero rune wins.
func Overlay(layers ...CellFunc) CellFunc {
	return func(c mesh.Coord) rune {
		r := rune(0)
		for _, l := range layers {
			if l == nil {
				continue
			}
			if v := l(c); v != 0 {
				r = v
			}
		}
		return r
	}
}

// MarkGrid draws ch on every node whose grid entry is true.
func MarkGrid(m mesh.Mesh, grid []bool, ch rune) CellFunc {
	return func(c mesh.Coord) rune {
		if m.Contains(c) && grid[m.Index(c)] {
			return ch
		}
		return 0
	}
}

// MarkSet draws ch on the listed nodes.
func MarkSet(coords []mesh.Coord, ch rune) CellFunc {
	set := make(map[mesh.Coord]bool, len(coords))
	for _, c := range coords {
		set[c] = true
	}
	return func(c mesh.Coord) rune {
		if set[c] {
			return ch
		}
		return 0
	}
}

// MarkOne draws ch on a single node.
func MarkOne(at mesh.Coord, ch rune) CellFunc {
	return func(c mesh.Coord) rune {
		if c == at {
			return ch
		}
		return 0
	}
}

// Render draws the mesh with the given cell function, highest row
// first (so North is up, matching the paper's figures), with axis
// ticks every five nodes.
func Render(w io.Writer, m mesh.Mesh, cell CellFunc) error {
	for y := m.Height - 1; y >= 0; y-- {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%4d ", y)
		for x := 0; x < m.Width; x++ {
			r := cell(mesh.Coord{X: x, Y: y})
			if r == 0 {
				r = ' '
			}
			sb.WriteRune(r)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	// X axis ticks.
	var tick strings.Builder
	tick.WriteString("     ")
	for x := 0; x < m.Width; x++ {
		if x%5 == 0 {
			tick.WriteByte('|')
		} else {
			tick.WriteByte(' ')
		}
	}
	if _, err := fmt.Fprintln(w, tick.String()); err != nil {
		return err
	}
	var lbl strings.Builder
	lbl.WriteString("     ")
	for x := 0; x < m.Width; x += 5 {
		s := fmt.Sprintf("%d", x)
		lbl.WriteString(s)
		if pad := 5 - len(s); pad > 0 {
			lbl.WriteString(strings.Repeat(" ", pad))
		} else {
			lbl.WriteByte(' ')
		}
	}
	_, err := fmt.Fprintln(w, strings.TrimRight(lbl.String(), " "))
	return err
}

// Legend writes a one-line legend for the standard symbols.
func Legend(w io.Writer, entries ...string) error {
	_, err := fmt.Fprintln(w, "legend: "+strings.Join(entries, "  "))
	return err
}
