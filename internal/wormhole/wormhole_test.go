package wormhole

import (
	"math"
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
)

func baseConfig(m mesh.Mesh) Config {
	blocked := make([]bool, m.Size())
	return Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		FlitsPerPacket: 4,
		BufferFlits:    2,
		VCs:            2,
		InjectionRate:  0.01,
		Cycles:         300,
		Warmup:         50,
		Seed:           1,
	}
}

func TestConfigValidate(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	base := baseConfig(m)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny mesh", func(c *Config) { c.M = mesh.Mesh{Width: 1, Height: 8} }},
		{"grid mismatch", func(c *Config) { c.Blocked = make([]bool, 3) }},
		{"nil route", func(c *Config) { c.Route = nil }},
		{"zero flits", func(c *Config) { c.FlitsPerPacket = 0 }},
		{"zero buffer", func(c *Config) { c.BufferFlits = 0 }},
		{"zero vcs", func(c *Config) { c.VCs = 0 }},
		{"bad rate", func(c *Config) { c.InjectionRate = 2 }},
		{"zero cycles", func(c *Config) { c.Cycles = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSingleWormTiming(t *testing.T) {
	// One preloaded worm on an empty mesh: the head pipelines one hop
	// per cycle (allocation then transmission), and the tail drains L
	// flits after it, so total latency is close to hops + flits.
	m := mesh.Mesh{Width: 10, Height: 10}
	cfg := baseConfig(m)
	cfg.InjectionRate = 0
	cfg.Warmup = 0
	cfg.FlitsPerPacket = 6
	cfg.Preload = []traffic.Flow{{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 5, Y: 3}}}

	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 {
		t.Fatalf("worm not delivered: %+v", st)
	}
	if st.AvgHops != 8 || st.AvgStretch != 1.0 {
		t.Errorf("head path not minimal: %+v", st)
	}
	// Lower bound: 8 hops for the head + 6 flits to drain; allow a few
	// cycles of pipeline slack but nothing quadratic.
	if st.AvgLatency < 13 || st.AvgLatency > 30 {
		t.Errorf("latency %v outside expected pipeline range", st.AvgLatency)
	}
}

func TestUniformLoadFaultFree(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	cfg := baseConfig(m)
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.Undeliverable != 0 {
		t.Errorf("fault-free run dropped %d worms", st.Undeliverable)
	}
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("stretch = %v, want 1.0", st.AvgStretch)
	}
	if st.Deadlocked {
		t.Error("light uniform load should not deadlock")
	}
}

func TestDeterminism(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	cfg := baseConfig(m)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// rotatingRoute prefers a different first direction per quadrant — the
// turn pattern that closes the four-channel cycle around a unit square.
func rotatingRoute(m mesh.Mesh) traffic.RoutingFunc {
	return func(u, d mesh.Coord) (mesh.Coord, error) {
		if u == d {
			return d, nil
		}
		var first, second mesh.Dir
		switch mesh.Quadrant(u, d) {
		case 1:
			first, second = mesh.East, mesh.North
		case 2:
			first, second = mesh.North, mesh.West
		case 3:
			first, second = mesh.West, mesh.South
		default:
			first, second = mesh.South, mesh.East
		}
		for _, dir := range []mesh.Dir{first, second} {
			n := u.Add(dir.Offset())
			if m.Contains(n) && mesh.Distance(n, d) < mesh.Distance(u, d) {
				return n, nil
			}
		}
		return mesh.Coord{}, &route.StuckError{At: u, To: d}
	}
}

// TestWormholeTurnCycleDeadlock reproduces the classic wormhole
// deadlock at flit granularity: four worms around the unit square with
// a single shared virtual channel per link lock up; per-quadrant
// channel classes deliver all four.
func TestWormholeTurnCycleDeadlock(t *testing.T) {
	m := mesh.Mesh{Width: 3, Height: 3}
	blocked := make([]bool, m.Size())
	base := Config{
		M:              m,
		Blocked:        blocked,
		Route:          rotatingRoute(m),
		FlitsPerPacket: 3,
		BufferFlits:    1,
		VCs:            1,
		InjectionRate:  0,
		Cycles:         100,
		Warmup:         0,
		Seed:           1,
		Preload: []traffic.Flow{
			{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 1, Y: 1}},
			{Src: mesh.Coord{X: 1, Y: 0}, Dst: mesh.Coord{X: 0, Y: 1}},
			{Src: mesh.Coord{X: 1, Y: 1}, Dst: mesh.Coord{X: 0, Y: 0}},
			{Src: mesh.Coord{X: 0, Y: 1}, Dst: mesh.Coord{X: 1, Y: 0}},
		},
	}

	st, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatalf("single-VC wormhole should deadlock: %+v", st)
	}
	if st.Delivered != 0 {
		t.Fatalf("deadlocked run delivered %d worms", st.Delivered)
	}

	vc := base
	vc.ClassVCs = true
	st, err = Run(vc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("class VCs should not deadlock: %+v", st)
	}
	if st.Delivered != 4 || st.AvgStretch != 1.0 {
		t.Fatalf("class VCs should deliver all four minimally: %+v", st)
	}
}

// TestClassVCsNeverDeadlockUnderLoad hammers a small mesh at a high
// injection rate with one-flit buffers: per-quadrant channel classes
// keep every run deadlock-free.
func TestClassVCsNeverDeadlockUnderLoad(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		m := mesh.Mesh{Width: 6, Height: 6}
		blocked := make([]bool, m.Size())
		cfg := Config{
			M:              m,
			Blocked:        blocked,
			Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
			FlitsPerPacket: 4,
			BufferFlits:    1,
			ClassVCs:       true,
			InjectionRate:  0.3,
			Cycles:         200,
			Warmup:         0,
			Seed:           seed,
		}
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("seed %d: class VCs deadlocked: %+v", seed, st)
		}
		if st.Delivered == 0 {
			t.Fatalf("seed %d: nothing delivered", seed)
		}
	}
}

func TestWormholeWithFaults(t *testing.T) {
	m := mesh.Mesh{Width: 14, Height: 14}
	rng := rand.New(rand.NewSource(7))
	faults, err := fault.RandomFaults(m, 14, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	cfg := Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		FlitsPerPacket: 4,
		BufferFlits:    2,
		ClassVCs:       true,
		InjectionRate:  0.01,
		Cycles:         400,
		Warmup:         50,
		Seed:           3,
		GuaranteedOnly: true,
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Fatal("no worms delivered among faults")
	}
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("faulty-mesh worm routes not minimal: %+v", st)
	}
	if st.Deadlocked {
		t.Error("guaranteed traffic with class VCs should not deadlock")
	}
}

func TestPreloadValidation(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	cfg := baseConfig(m)
	cfg.Preload = []traffic.Flow{{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 0, Y: 0}}}
	if _, err := Run(cfg); err == nil {
		t.Error("self flow should fail")
	}
	cfg.Preload = []traffic.Flow{{Src: mesh.Coord{X: 5, Y: 0}, Dst: mesh.Coord{X: 0, Y: 0}}}
	if _, err := Run(cfg); err == nil {
		t.Error("outside flow should fail")
	}
}

// TestSharedVCDeadlockUnderLoadExists documents that without channel
// classes, heavy adaptive traffic with tiny buffers does deadlock for
// at least one seed — the hazard class channels remove.
func TestSharedVCDeadlockUnderLoadExists(t *testing.T) {
	sawDeadlock := false
	for seed := int64(1); seed <= 10 && !sawDeadlock; seed++ {
		m := mesh.Mesh{Width: 6, Height: 6}
		blocked := make([]bool, m.Size())
		cfg := Config{
			M:              m,
			Blocked:        blocked,
			Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
			FlitsPerPacket: 4,
			BufferFlits:    1,
			VCs:            1,
			InjectionRate:  0.3,
			Cycles:         200,
			Warmup:         0,
			Seed:           seed,
		}
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Error("expected at least one deadlock across seeds with a single shared VC")
	}
}
