package wormhole

import (
	"math/rand"
	"reflect"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
)

// TestRunOnlineEmptyScheduleMatchesStatic mirrors the traffic-side
// guard: with no scheduled events the online wormhole run must
// reproduce the static goldens bit for bit under the minimal policies,
// and keep the identical injection stream under degrade.
func TestRunOnlineEmptyScheduleMatchesStatic(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	faults, err := fault.RandomFaults(m, 8, rand.New(rand.NewSource(13)), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	wu := traffic.WuRouting(route.NewRouter(m, blocked))

	configs := []struct {
		name string
		cfg  Config
	}{
		{"class_vcs", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 4, BufferFlits: 2,
			ClassVCs: true, InjectionRate: 0.04, Cycles: 150, Warmup: 30, Seed: 21, GuaranteedOnly: true}},
		{"two_vcs", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 6, BufferFlits: 1,
			VCs: 2, InjectionRate: 0.03, Cycles: 150, Warmup: 30, Seed: 22}},
		{"preload", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 3, BufferFlits: 2,
			VCs: 1, InjectionRate: 0.01, Cycles: 100, Warmup: 0, Seed: 23,
			Preload: []traffic.Flow{
				{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 11, Y: 11}},
				{Src: mesh.Coord{X: 11, Y: 0}, Dst: mesh.Coord{X: 0, Y: 11}},
			}}},
	}
	for _, c := range configs {
		want, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: static run: %v", c.name, err)
		}
		for _, p := range []traffic.Policy{traffic.PolicyReroute, traffic.PolicyDegrade, traffic.PolicyDrop} {
			got, ost, err := RunOnline(c.cfg, &traffic.Online{InitialFaults: faults, Policy: p})
			if err != nil {
				t.Fatalf("%s/%v: online run: %v", c.name, p, err)
			}
			if p == traffic.PolicyDegrade {
				// Degrade rescues worms the static run strands on the
				// initial faults, which shifts channel contention, so
				// only the injection stream is comparable. (Unlike
				// store-and-forward, rescued worms hold virtual
				// channels and can crowd out other deliveries.)
				if got.Injected != want.Injected {
					t.Errorf("%s/%v: injection stream perturbed: %d worms, static %d", c.name, p, got.Injected, want.Injected)
				}
				if got.Delivered == 0 {
					t.Errorf("%s/%v: degrade delivered nothing", c.name, p)
				}
			} else if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%v: online stats diverged from static run\n got: %+v\nwant: %+v", c.name, p, got, want)
			}
			if ost.Events != 0 || ost.Rebuilds != 0 || ost.Dropped() != 0 {
				t.Errorf("%s/%v: zero-event run reported fault activity: %+v", c.name, p, ost)
			}
			if got := ost.DeliveredTotal + ost.StuckTotal + ost.Dropped() + got.InFlight; got != ost.Spawned {
				t.Errorf("%s/%v: conservation: %d spawned, %d accounted", c.name, p, ost.Spawned, got)
			}
		}
	}
}

// TestRunOnlinePolicies drives one preloaded worm from (0,0) to (7,0)
// on a fault-free 8x8 mesh and kills (3,0) early, leaving no surviving
// minimal path (the destination shares the source's row). Reroute
// strands the worm, degrade detours it around the fault for a
// D+2k-channel chain, drop discards it by policy.
func TestRunOnlinePolicies(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 7, Y: 0}
	blocked := make([]bool, m.Size())
	base := Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		FlitsPerPacket: 4,
		BufferFlits:    2,
		VCs:            1,
		Cycles:         80,
		Seed:           1,
		Preload:        []traffic.Flow{{Src: src, Dst: dst}},
	}
	sched, err := inject.Parse(m, 80, 1, "fail@2:3,0")
	if err != nil {
		t.Fatal(err)
	}
	online := func(p traffic.Policy) *traffic.Online {
		return &traffic.Online{
			Schedule: sched,
			Policy:   p,
			Rebuild: func(b []bool) traffic.RoutingFunc {
				return traffic.WuRouting(route.NewRouter(m, b))
			},
		}
	}

	t.Run("reroute", func(t *testing.T) {
		st, ost, err := RunOnline(base, online(traffic.PolicyReroute))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 0 || ost.StuckTotal+ost.Dropped() != 1 {
			t.Errorf("reroute: delivered %d, stats %+v; want the worm stranded", st.Delivered, ost)
		}
	})
	t.Run("degrade", func(t *testing.T) {
		cfg := base
		var hops, detours int
		cfg.OnDeliver = func(s, d mesh.Coord, h, k int) {
			if s != src || d != dst {
				t.Errorf("delivered unexpected worm %v->%v", s, d)
			}
			hops, detours = h, k
		}
		st, ost, err := RunOnline(cfg, online(traffic.PolicyDegrade))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 1 || ost.Dropped() != 0 {
			t.Fatalf("degrade: delivered %d, stats %+v; want the worm delivered", st.Delivered, ost)
		}
		if detours == 0 || hops != mesh.Distance(src, dst)+2*detours {
			t.Errorf("degrade: chain of %d channels with %d detours, want D+2k", hops, detours)
		}
		if ost.Degraded != 1 || ost.DetourHops != detours {
			t.Errorf("degrade: counters %+v; want one degraded worm with %d detour hops", ost, detours)
		}
	})
	t.Run("drop", func(t *testing.T) {
		st, ost, err := RunOnline(base, online(traffic.PolicyDrop))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 0 || ost.DroppedPolicy+ost.StuckTotal != 1 {
			t.Errorf("drop: delivered %d, stats %+v; want the worm discarded", st.Delivered, ost)
		}
	})
}

// TestRunOnlineSeveredWorms kills nodes under an in-flight worm: the
// source while flits are still leaving it, and the destination. Both
// sever the worm under every policy.
func TestRunOnlineSeveredWorms(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	blocked := make([]bool, m.Size())
	base := Config{
		M:              m,
		Blocked:        blocked,
		Route:          traffic.WuRouting(route.NewRouter(m, blocked)),
		FlitsPerPacket: 6,
		BufferFlits:    1,
		VCs:            1,
		Cycles:         60,
		Seed:           1,
		Preload:        []traffic.Flow{{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 5, Y: 0}}},
	}
	rebuild := func(b []bool) traffic.RoutingFunc {
		return traffic.WuRouting(route.NewRouter(m, b))
	}

	for _, c := range []struct {
		name  string
		spec  string
		check func(t *testing.T, ost traffic.OnlineStats)
	}{
		{"source_dies", "fail@2:0,0", func(t *testing.T, ost traffic.OnlineStats) {
			if ost.DroppedNodeFailed != 1 {
				t.Errorf("stats %+v; want one node-failed drop", ost)
			}
		}},
		{"dest_dies", "fail@2:5,0", func(t *testing.T, ost traffic.OnlineStats) {
			if ost.DroppedDestFailed != 1 {
				t.Errorf("stats %+v; want one dest-failed drop", ost)
			}
		}},
	} {
		t.Run(c.name, func(t *testing.T) {
			sched, err := inject.Parse(m, 60, 1, c.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []traffic.Policy{traffic.PolicyReroute, traffic.PolicyDegrade, traffic.PolicyDrop} {
				st, ost, err := RunOnline(base, &traffic.Online{Schedule: sched, Policy: p, Rebuild: rebuild})
				if err != nil {
					t.Fatalf("%v: %v", p, err)
				}
				if st.Delivered != 0 {
					t.Errorf("%v: severed worm delivered", p)
				}
				c.check(t, ost)
			}
		})
	}
}
