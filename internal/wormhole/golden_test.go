package wormhole

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from pre-optimization golden %s\n got: %s\nwant: %s", name, got, want)
	}
}

// TestRunGolden pins the wormhole simulator's statistics for fixed
// seeds, with and without class virtual channels. The goldens predate
// active-link scheduling, so a match certifies the optimized flit
// transmission is bit-for-bit equivalent to the original full scan.
func TestRunGolden(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	faults, err := fault.RandomFaults(m, 8, rand.New(rand.NewSource(13)), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	wu := traffic.WuRouting(route.NewRouter(m, blocked))

	configs := []struct {
		name string
		cfg  Config
	}{
		{"class_vcs", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 4, BufferFlits: 2,
			ClassVCs: true, InjectionRate: 0.04, Cycles: 150, Warmup: 30, Seed: 21, GuaranteedOnly: true}},
		{"two_vcs", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 6, BufferFlits: 1,
			VCs: 2, InjectionRate: 0.03, Cycles: 150, Warmup: 30, Seed: 22}},
		{"preload", Config{M: m, Blocked: blocked, Route: wu, FlitsPerPacket: 3, BufferFlits: 2,
			VCs: 1, InjectionRate: 0.01, Cycles: 100, Warmup: 0, Seed: 23,
			Preload: []traffic.Flow{
				{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 11, Y: 11}},
				{Src: mesh.Coord{X: 11, Y: 0}, Dst: mesh.Coord{X: 0, Y: 11}},
			}}},
	}
	var sb strings.Builder
	for _, c := range configs {
		st, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fmt.Fprintf(&sb, "%s: %+v\n", c.name, st)
	}
	checkGolden(t, "run_stats.golden", sb.String())
}
