// Package wormhole is a flit-level wormhole-switching simulator for
// faulty 2-D meshes, the switching technique of the multicomputers the
// paper targets. Packets are worms of flits that snake through virtual
// channels: the head flit allocates one virtual channel per hop using
// a pluggable routing function (Wu's protocol, the oracle, ...), body
// flits follow the reserved chain one flit per physical link per
// cycle, and the tail releases each channel as it passes. Finite
// buffers plus channel allocation make deadlock a real possibility —
// the simulator detects it — and per-quadrant virtual-channel classes
// provably dissolve it for minimal routing.
package wormhole

import (
	"fmt"
	"math/rand"
	"slices"

	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/traffic"
)

// Config parameterizes one wormhole simulation.
type Config struct {
	M       mesh.Mesh
	Blocked []bool              // fault-region grid
	Route   traffic.RoutingFunc // per-hop head routing

	// FlitsPerPacket is the worm length (head + body flits).
	FlitsPerPacket int
	// BufferFlits is the per-virtual-channel input buffer depth.
	BufferFlits int
	// VCs is the number of virtual channels per physical link. With
	// ClassVCs the channel is chosen by the packet's quadrant class
	// (VCs is forced to 4); otherwise the head takes any free channel.
	VCs      int
	ClassVCs bool

	// InjectionRate is the probability per free node per cycle of
	// injecting one packet to a uniformly random free destination.
	InjectionRate float64
	Cycles        int
	Warmup        int
	Seed          int64

	// GuaranteedOnly restricts generated packets to pairs with a
	// minimal path.
	GuaranteedOnly bool

	// Preload places worms in the network before the first cycle.
	Preload []traffic.Flow

	// HopBudget bounds the channels any one worm may chain; 0 means
	// traffic.DefaultHopBudget. A static run that exceeds it aborts
	// with a *traffic.SimError (minimal routing cannot circulate);
	// online degrade runs drop the worm with a reason code instead.
	HopBudget int

	// OnDeliver, if set, observes every fully consumed worm — warmup
	// included — with its source, destination, head hop count and
	// distance-increasing (detour) hops. Analysis and test hook.
	OnDeliver func(src, dst mesh.Coord, hops, detours int)
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.M.Width <= 1 || c.M.Height <= 1 {
		return fmt.Errorf("wormhole: mesh %v too small", c.M)
	}
	if len(c.Blocked) != c.M.Size() {
		return fmt.Errorf("wormhole: blocked grid size %d != mesh size %d", len(c.Blocked), c.M.Size())
	}
	if c.Route == nil {
		return fmt.Errorf("wormhole: no routing function")
	}
	if c.FlitsPerPacket <= 0 {
		return fmt.Errorf("wormhole: packet must have at least one flit")
	}
	if c.BufferFlits <= 0 {
		return fmt.Errorf("wormhole: buffers must hold at least one flit")
	}
	if c.VCs <= 0 && !c.ClassVCs {
		return fmt.Errorf("wormhole: need at least one virtual channel")
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("wormhole: injection rate %v outside [0,1]", c.InjectionRate)
	}
	if c.Cycles <= 0 || c.Warmup < 0 {
		return fmt.Errorf("wormhole: cycles must be positive and warmup non-negative")
	}
	if c.HopBudget < 0 {
		return fmt.Errorf("wormhole: negative hop budget")
	}
	return nil
}

// Stats aggregates the outcome of a wormhole run.
type Stats struct {
	Injected      int // worms injected during measurement
	Delivered     int // worms fully consumed at their destinations
	Undeliverable int // worms dropped because the head had no move
	InFlight      int // worms still in the network at the end

	Deadlocked bool // allocation/flow reached a standstill

	AvgLatency float64 // cycles from injection to last-flit delivery
	AvgHops    float64 // links traversed by the head
	AvgStretch float64 // head hops / Manhattan distance
	Throughput float64 // delivered flits per free node per cycle
}

// worm is one in-flight packet.
type worm struct {
	src, dst mesh.Coord
	class    int
	born     int
	length   int
	detours  int // distance-increasing head hops (online runs only)

	injected  int // flits that left the source
	delivered int // flits consumed at the destination

	chain      []int32      // allocated virtual channels, in hop order
	chainNodes []mesh.Coord // downstream node of each allocated channel
	entered    []int        // flits that entered each stage
	left       []int        // flits that left each stage
	measured   bool
	done       bool
}

// headNode returns the node the head flit currently occupies (or the
// source before the first allocation).
func (w *worm) headNode() mesh.Coord {
	if len(w.chain) == 0 {
		return w.src
	}
	return w.chainNodes[len(w.chain)-1]
}

// headReady reports whether the head flit is buffered at the head node
// (and therefore able to request the next channel).
func (w *worm) headReady() bool {
	if len(w.chain) == 0 {
		return true
	}
	last := len(w.chain) - 1
	return w.entered[last] > 0 && w.left[last] == 0
}

// vcOwner records which worm holds a virtual channel and at which
// chain stage.
type vcOwner struct {
	w     *worm
	stage int
}

// Run executes the wormhole simulation.
func Run(cfg Config) (Stats, error) {
	st, _, err := run(cfg, nil)
	return st, err
}

// RunOnline executes the wormhole simulation with mid-run fault
// injection (see traffic.RunOnline for the schedule semantics). A worm
// severed by a fault — its source died before all flits left, a node
// on its reserved channel chain died, or its destination died — cannot
// be saved under any policy: its reserved channels are torn down and
// it is dropped with a reason code. Rerouting is otherwise implicit in
// wormhole switching, because the head re-routes at every channel
// allocation against the rebuilt routing function; the degrade policy
// additionally lets a stuck head take an Extension-1 spare-neighbor
// detour, and the drop policy proactively discards worms left with no
// route when the fault state changes. A nil online configuration or an
// empty schedule reproduces Run bit for bit under PolicyReroute and
// PolicyDrop; PolicyDegrade additionally rescues worms stuck on the
// initial (static) faults, which shifts channel contention.
func RunOnline(cfg Config, on *traffic.Online) (Stats, traffic.OnlineStats, error) {
	if on == nil {
		on = &traffic.Online{}
	}
	st, ost, err := run(cfg, on)
	if err == nil {
		ost.Publish()
	}
	return st, ost, err
}

func run(cfg Config, on *traffic.Online) (Stats, traffic.OnlineStats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, traffic.OnlineStats{}, err
	}
	if cfg.ClassVCs {
		cfg.VCs = 4
	}
	m := cfg.M
	rng := rand.New(rand.NewSource(cfg.Seed))

	// blocked and routeFn are swapped for rebuilt versions when online
	// events change the fault state.
	blocked := cfg.Blocked
	routeFn := cfg.Route

	var ost traffic.OnlineStats
	policy := traffic.PolicyReroute
	var rt *inject.Runtime
	if on != nil {
		if on.Policy != 0 {
			if on.Policy < traffic.PolicyReroute || on.Policy > traffic.PolicyDrop {
				return Stats{}, traffic.OnlineStats{}, fmt.Errorf("wormhole: invalid fault policy %d", on.Policy)
			}
			policy = on.Policy
		}
		if len(on.Schedule) > 0 && on.Rebuild == nil {
			return Stats{}, traffic.OnlineStats{}, fmt.Errorf("wormhole: online schedule without a Rebuild function")
		}
		var err error
		rt, err = inject.NewRuntime(m, on.InitialFaults, on.Schedule)
		if err != nil {
			return Stats{}, traffic.OnlineStats{}, err
		}
		if !slices.Equal(rt.Blocked(), blocked) {
			return Stats{}, traffic.OnlineStats{}, fmt.Errorf("wormhole: initial faults do not reproduce the blocked grid")
		}
	}
	hopBudget := cfg.HopBudget
	if hopBudget == 0 {
		hopBudget = traffic.DefaultHopBudget(m)
	}

	var guaranteed func(s, d mesh.Coord) bool
	if cfg.GuaranteedOnly {
		guaranteed = traffic.GuaranteedFilter(m, blocked)
	}

	var free []mesh.Coord
	for i := 0; i < m.Size(); i++ {
		if !blocked[i] {
			free = append(free, m.CoordOf(i))
		}
	}
	if len(free) < 2 {
		return Stats{}, traffic.OnlineStats{}, fmt.Errorf("wormhole: fewer than two usable nodes")
	}
	baseFree := len(free)

	numLinks := m.Size() * 4
	linkIndex := func(from mesh.Coord, d mesh.Dir) int {
		return m.Index(from)*4 + int(d) - 1
	}
	owners := make([]*vcOwner, numLinks*cfg.VCs)
	rr := make([]int, numLinks) // per-link round-robin pointer

	// Active-link scheduling: flit transmission only visits links with
	// at least one owned virtual channel instead of scanning all 4*Size
	// links every cycle. linkOwned counts owned channels per link; the
	// active list is compacted and sorted before each transmission
	// phase, so links are served in exactly the order of the original
	// full scan (unowned links were no-ops there) and runs stay
	// bit-for-bit reproducible.
	linkOwned := make([]int, numLinks)
	activeLinks := make([]int, 0, 64)
	inActiveLink := make([]bool, numLinks)

	var (
		st           Stats
		worms        []*worm
		totalLatency float64
		totalHops    float64
		totalStretch float64
		flitsOut     int
		fatal        *traffic.SimError
	)

	spawn := func(src, dst mesh.Coord, cycle int, measured bool) {
		w := &worm{
			src: src, dst: dst,
			class:    mesh.Quadrant(src, dst) - 1,
			born:     cycle,
			length:   cfg.FlitsPerPacket,
			measured: measured,
		}
		worms = append(worms, w)
		ost.Spawned++
		if measured {
			st.Injected++
		}
	}

	release := func(w *worm, vc int32) {
		if o := owners[vc]; o != nil && o.w == w {
			owners[vc] = nil
			linkOwned[int(vc)/cfg.VCs]--
		}
	}

	// teardown ends a worm and frees its reserved channels; callers
	// account for it in the appropriate ledger counter.
	teardown := func(w *worm) {
		w.done = true
		for _, vc := range w.chain {
			release(w, vc)
		}
	}

	finish := func(w *worm, cycle int) {
		teardown(w)
		ost.RecordDelivery(len(w.chain), mesh.Distance(w.src, w.dst))
		if cfg.OnDeliver != nil {
			cfg.OnDeliver(w.src, w.dst, len(w.chain), w.detours)
		}
		if !w.measured {
			return
		}
		st.Delivered++
		totalLatency += float64(cycle - w.born)
		totalHops += float64(len(w.chain))
		totalStretch += float64(len(w.chain)) / float64(max(1, mesh.Distance(w.src, w.dst)))
	}

	drop := func(w *worm) {
		teardown(w)
		ost.StuckTotal++
		if w.measured {
			st.Undeliverable++
		}
	}

	// sweep handles the in-flight worms after a fault-state change.
	// Severed worms die under every policy; the drop policy also
	// discards worms whose head has no surviving route.
	sweep := func() {
		for _, w := range worms {
			if w.done {
				continue
			}
			if blocked[m.Index(w.dst)] {
				teardown(w)
				ost.DroppedDestFailed++
				continue
			}
			severed := blocked[m.Index(w.src)] && w.injected < w.length
			if !severed {
				for _, n := range w.chainNodes {
					if blocked[m.Index(n)] {
						severed = true
						break
					}
				}
			}
			if severed {
				teardown(w)
				ost.DroppedNodeFailed++
				continue
			}
			if policy == traffic.PolicyDrop {
				if _, err := routeFn(w.headNode(), w.dst); err != nil && w.headNode() != w.dst {
					teardown(w)
					ost.DroppedPolicy++
				}
			}
		}
	}

	for _, fl := range cfg.Preload {
		if !m.Contains(fl.Src) || !m.Contains(fl.Dst) ||
			blocked[m.Index(fl.Src)] || blocked[m.Index(fl.Dst)] || fl.Src == fl.Dst {
			return Stats{}, traffic.OnlineStats{}, fmt.Errorf("wormhole: invalid preloaded flow %v -> %v", fl.Src, fl.Dst)
		}
		spawn(fl.Src, fl.Dst, 0, true)
	}

	totalCycles := cfg.Warmup + cfg.Cycles
	idle := 0
	for cycle := 0; cycle < totalCycles; cycle++ {
		// Fault-event phase (see traffic.run): zero-event cycles touch
		// nothing, keeping the run identical to the static simulation.
		if rt != nil && rt.Pending() > 0 {
			applied, err := rt.Step(cycle)
			if err != nil {
				return Stats{}, traffic.OnlineStats{}, err
			}
			ost.Events += applied
			if applied > 0 {
				ost.Rebuilds++
				blocked = rt.Blocked()
				routeFn = on.Rebuild(blocked)
				if cfg.GuaranteedOnly {
					guaranteed = traffic.GuaranteedFilter(m, blocked)
				}
				free = free[:0]
				for i := 0; i < m.Size(); i++ {
					if !blocked[i] {
						free = append(free, m.CoordOf(i))
					}
				}
				sweep()
			}
		}
		measuring := cycle >= cfg.Warmup

		// Injection; paused while online faults leave under two nodes.
		if len(free) >= 2 {
			for _, src := range free {
				if cfg.InjectionRate == 0 || rng.Float64() >= cfg.InjectionRate {
					continue
				}
				dst := free[rng.Intn(len(free))]
				for dst == src {
					dst = free[rng.Intn(len(free))]
				}
				if cfg.GuaranteedOnly && !guaranteed(src, dst) {
					continue
				}
				spawn(src, dst, cycle, measuring)
			}
		}

		progress := 0

		// Virtual-channel allocation: each ready head requests the
		// channel toward its next hop, in worm order (deterministic).
		for _, w := range worms {
			if w.done || !w.headReady() || w.headNode() == w.dst {
				continue
			}
			at := w.headNode()
			if len(w.chain) >= hopBudget {
				if rt != nil {
					teardown(w)
					ost.DroppedLivelock++
					progress++
					continue
				}
				if fatal == nil {
					fatal = &traffic.SimError{Sim: "wormhole", Kind: traffic.InvariantLivelock, Cycle: cycle,
						Detail: fmt.Sprintf("worm %v->%v at %v chained %d channels (budget %d)",
							w.src, w.dst, at, len(w.chain), hopBudget)}
				}
				break
			}
			next, err := routeFn(at, w.dst)
			if err != nil {
				if rt != nil && policy == traffic.PolicyDegrade {
					if n, ok := route.SpareHop(m, blocked, rt.Levels(), at, w.dst); ok {
						next = n
						err = nil
					}
				}
				if err != nil {
					drop(w)
					progress++
					continue
				}
			}
			dir, ok := mesh.DirTo(at, next)
			if !ok {
				drop(w)
				progress++
				continue
			}
			li := linkIndex(at, dir)
			chosen := -1
			if cfg.ClassVCs {
				if owners[li*cfg.VCs+w.class] == nil {
					chosen = w.class
				}
			} else {
				for v := 0; v < cfg.VCs; v++ {
					if owners[li*cfg.VCs+v] == nil {
						chosen = v
						break
					}
				}
			}
			if chosen < 0 {
				continue // all channels busy: the head stalls
			}
			vc := int32(li*cfg.VCs + chosen)
			owners[vc] = &vcOwner{w: w, stage: len(w.chain)}
			linkOwned[li]++
			if !inActiveLink[li] {
				inActiveLink[li] = true
				activeLinks = append(activeLinks, li)
			}
			if rt != nil && mesh.Distance(next, w.dst) > mesh.Distance(at, w.dst) {
				// Distance-increasing head hops count the Extension-1
				// detours: a delivered worm's chain has length
				// D(src,dst) + 2k.
				if w.detours == 0 {
					ost.Degraded++
				}
				w.detours++
				ost.DetourHops++
			}
			w.chain = append(w.chain, vc)
			w.chainNodes = append(w.chainNodes, next)
			w.entered = append(w.entered, 0)
			w.left = append(w.left, 0)
			progress++
		}
		if fatal != nil {
			return Stats{}, traffic.OnlineStats{}, fatal
		}

		// Flit transmission: one flit per physical link per cycle,
		// round-robin over its virtual channels. Ownership is fixed for
		// the phase (allocation precedes it, releases follow it), so the
		// compacted, sorted active list is exactly the set of links the
		// full scan would have moved flits on, in the same order.
		live := activeLinks[:0]
		for _, li := range activeLinks {
			if linkOwned[li] > 0 {
				live = append(live, li)
			} else {
				inActiveLink[li] = false
			}
		}
		activeLinks = live
		slices.Sort(activeLinks)
		for _, li := range activeLinks {
			for try := 0; try < cfg.VCs; try++ {
				v := (rr[li] + try) % cfg.VCs
				own := owners[li*cfg.VCs+v]
				if own == nil {
					continue
				}
				w, stage := own.w, own.stage
				// Downstream buffer space.
				if w.entered[stage]-w.left[stage] >= cfg.BufferFlits {
					continue
				}
				// Upstream flit availability.
				if stage == 0 {
					if w.injected >= w.length {
						continue
					}
					w.injected++
				} else {
					if w.entered[stage-1]-w.left[stage-1] <= 0 {
						continue
					}
					w.left[stage-1]++
				}
				w.entered[stage]++
				rr[li] = (v + 1) % cfg.VCs
				progress++
				break
			}
		}

		// Ejection: a worm whose head has reached the destination
		// consumes one flit per cycle; release channels the tail has
		// fully passed.
		for _, w := range worms {
			if w.done || len(w.chain) == 0 {
				continue
			}
			last := len(w.chain) - 1
			if w.headNode() == w.dst && w.entered[last]-w.left[last] > 0 {
				w.left[last]++
				w.delivered++
				if measuring {
					flitsOut++
				}
				progress++
				if w.delivered == w.length {
					finish(w, cycle+1)
					continue
				}
			}
			for i, vc := range w.chain {
				if w.left[i] == w.length {
					release(w, vc)
				}
			}
		}

		// Deadlock detection.
		active := 0
		for _, w := range worms {
			if !w.done {
				active++
			}
		}
		if active > 0 && progress == 0 {
			idle++
			if idle >= 3 {
				if cfg.ClassVCs && ost.Events == 0 {
					// Class virtual channels with minimal routing
					// cannot deadlock while the fault state is
					// unchanged; a stall here is a simulator bug.
					return Stats{}, traffic.OnlineStats{}, &traffic.SimError{
						Sim: "wormhole", Kind: traffic.InvariantStall, Cycle: cycle,
						Detail: fmt.Sprintf("%d worms active, no progress for 3 cycles under class VCs", active)}
				}
				st.Deadlocked = true
				break
			}
		} else {
			idle = 0
		}

		// Compact the worm list occasionally to keep iteration cheap.
		if len(worms) > 1024 {
			kept := worms[:0]
			for _, w := range worms {
				if !w.done {
					kept = append(kept, w)
				}
			}
			worms = kept
		}
	}

	for _, w := range worms {
		if !w.done {
			st.InFlight++
		}
	}
	if rt != nil {
		_, ost.Skipped, _, _ = rt.Counts()
	}
	// Packet conservation over all worms, warmup and preload included.
	if got := ost.DeliveredTotal + ost.StuckTotal + ost.Dropped() + st.InFlight; got != ost.Spawned {
		return Stats{}, traffic.OnlineStats{}, &traffic.SimError{
			Sim: "wormhole", Kind: traffic.InvariantConservation, Cycle: totalCycles,
			Detail: fmt.Sprintf("%d worms spawned but %d accounted for (%d delivered, %d stuck, %d dropped, %d in flight)",
				ost.Spawned, got, ost.DeliveredTotal, ost.StuckTotal, ost.Dropped(), st.InFlight)}
	}
	if st.Delivered > 0 {
		st.AvgLatency = totalLatency / float64(st.Delivered)
		st.AvgHops = totalHops / float64(st.Delivered)
		st.AvgStretch = totalStretch / float64(st.Delivered)
	}
	st.Throughput = float64(flitsOut) / float64(baseFree) / float64(cfg.Cycles)
	return st, ost, nil
}
