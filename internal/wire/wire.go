// Package wire is the binary query protocol shared by the meshserved
// binary listener and the meshclient binary transport: length-prefixed
// little-endian frames over a persistent pipelined connection, carrying
// the same query operations as the JSON endpoints with none of the
// per-request HTTP and JSON overhead.
//
// # Framing
//
// Every message — request or response — is one frame:
//
//	u32  body length (bytes that follow; the prefix is not counted)
//	...  body
//
// Frames flow strictly in order: the server answers request frames in
// arrival order on the same connection, so a client may pipeline many
// requests before reading the first response and match responses to
// requests positionally (the echoed request ID double-checks the
// pairing).
//
// # Request body
//
//	u32  id       echoed verbatim in the response
//	u8   op       operation selector (Op* constants)
//	u8   flags    bit 0: omit paths; bit 1: MCC fault model (else blocks)
//	u8   len(mesh), then mesh name bytes
//	...  op-specific payload
//
// Coordinates are i32 X then i32 Y (two's complement, so out-of-mesh
// negatives round-trip exactly like JSON). Counts are u16. Op payloads:
//
//	OpRoute, OpHasMinimalPath, OpSafe, OpEnsure:
//	    coord src, coord dst
//	OpRouteBatch:
//	    u16 n, then n x (coord src, coord dst)
//	OpHasMinimalPathBatch, OpEnsureBatch:
//	    coord src, u16 n, then n x coord dst
//
// # Response body
//
//	u32  id
//	u8   status   (Status* constants)
//
// A non-OK status is followed by u16 message length and the message
// bytes, nothing else. StatusOK is followed by the op-specific result:
//
//	OpRoute:               u32 hops, u32 len(path), then path coords
//	                       (len is 0 when paths were omitted)
//	OpHasMinimalPath:      u8 boolean
//	OpSafe:                u8 boolean
//	OpEnsure:              u8 verdict, u8 len(via), then via coords
//	OpRouteBatch:          u16 n, then n results: u8 ok; ok=1 is
//	                       followed by u32 hops, u32 len(path), path
//	                       coords; ok=0 by u16 len(err), err bytes
//	OpHasMinimalPathBatch: u16 n, then ceil(n/8) bytes, answer i at
//	                       bit i&7 (LSB first) of byte i>>3
//	OpEnsureBatch:         u16 n, then n x (u8 verdict, u8 len(via),
//	                       via coords)
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"extmesh/internal/mesh"
)

// Operation selectors.
const (
	OpRoute               = 1
	OpHasMinimalPath      = 2
	OpSafe                = 3
	OpEnsure              = 4
	OpRouteBatch          = 5
	OpHasMinimalPathBatch = 6
	OpEnsureBatch         = 7
)

// Request flag bits.
const (
	// FlagOmitPaths elides path bodies from route responses (hop counts
	// are still reported), the binary twin of JSON "omit_path".
	FlagOmitPaths = 1 << 0
	// FlagMCC selects the MCC fault model; unset means faulty blocks.
	FlagMCC = 1 << 1
)

// Response statuses, mirroring the JSON endpoints' HTTP statuses.
const (
	StatusOK            = 0 // 200
	StatusBadRequest    = 1 // 400
	StatusNotFound      = 2 // 404
	StatusUnprocessable = 3 // 422 (router reported no path)
	StatusInternal      = 4 // 500
	StatusSaturated     = 5 // 429 (admission shed; always safe to retry)
)

// Size limits. Request frames are small (the largest legitimate one is
// a full 4096-pair batch, under 64 KiB); response frames carry paths
// and get the same generous cap the HTTP client grants bodies.
const (
	MaxRequestFrame  = 1 << 20
	MaxResponseFrame = 32 << 20
	// MaxName bounds the mesh-name length (ValidName allows 64).
	MaxName = 64
)

// WriteFrame writes the length prefix and body. The caller batches
// writes with a bufio.Writer and decides when to flush.
func WriteFrame(w io.Writer, body []byte) error {
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame body into buf (grown as needed) and
// returns it. A length prefix beyond max is a protocol error — the
// stream cannot be resynchronized after it, so the caller must close
// the connection.
func ReadFrame(r io.Reader, max int, buf []byte) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d limit", n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// --- append-style encoders -------------------------------------------

func AppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func AppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func AppendCoord(b []byte, c mesh.Coord) []byte {
	b = AppendU32(b, uint32(int32(c.X)))
	return AppendU32(b, uint32(int32(c.Y)))
}

// --- cursor-style decoder --------------------------------------------

// errShort is the uniform truncated-body error; the decoder never
// reads past the frame, so a short frame is always the sender's fault.
var errShort = fmt.Errorf("wire: truncated frame body")

// Cursor walks a frame body. Methods return errShort-wrapped errors
// instead of panicking on truncated input, so untrusted bytes are safe
// to decode.
type Cursor struct {
	b   []byte
	off int
}

func NewCursor(b []byte) *Cursor { return &Cursor{b: b} }

// Remaining reports the unread byte count.
func (c *Cursor) Remaining() int { return len(c.b) - c.off }

func (c *Cursor) U8() (byte, error) {
	if c.Remaining() < 1 {
		return 0, errShort
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *Cursor) U16() (uint16, error) {
	if c.Remaining() < 2 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v, nil
}

func (c *Cursor) U32() (uint32, error) {
	if c.Remaining() < 4 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *Cursor) Coord() (mesh.Coord, error) {
	x, err := c.U32()
	if err != nil {
		return mesh.Coord{}, err
	}
	y, err := c.U32()
	if err != nil {
		return mesh.Coord{}, err
	}
	return mesh.Coord{X: int(int32(x)), Y: int(int32(y))}, nil
}

// Bytes returns the next n bytes, aliasing the frame buffer.
func (c *Cursor) Bytes(n int) ([]byte, error) {
	if n < 0 || c.Remaining() < n {
		return nil, errShort
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// --- requests ---------------------------------------------------------

// Request is one decoded query. Which coordinate fields are meaningful
// depends on Op: single ops use Src and Dst, OpRouteBatch uses Pairs,
// the fan ops use Src and Dests.
type Request struct {
	ID    uint32
	Op    uint8
	Flags uint8
	Mesh  string

	Src, Dst mesh.Coord
	Pairs    []mesh.Coord // src,dst interleaved: pair i at [2i], [2i+1]
	Dests    []mesh.Coord
}

// OmitPaths reports the path-eliding flag.
func (r *Request) OmitPaths() bool { return r.Flags&FlagOmitPaths != 0 }

// MCC reports the fault-model flag.
func (r *Request) MCC() bool { return r.Flags&FlagMCC != 0 }

// AppendRequest encodes r onto b (a frame body, without the prefix).
func AppendRequest(b []byte, r *Request) []byte {
	b = AppendU32(b, r.ID)
	b = append(b, r.Op, r.Flags, byte(len(r.Mesh)))
	b = append(b, r.Mesh...)
	switch r.Op {
	case OpRoute, OpHasMinimalPath, OpSafe, OpEnsure:
		b = AppendCoord(b, r.Src)
		b = AppendCoord(b, r.Dst)
	case OpRouteBatch:
		b = AppendU16(b, uint16(len(r.Pairs)/2))
		for _, c := range r.Pairs {
			b = AppendCoord(b, c)
		}
	case OpHasMinimalPathBatch, OpEnsureBatch:
		b = AppendCoord(b, r.Src)
		b = AppendU16(b, uint16(len(r.Dests)))
		for _, c := range r.Dests {
			b = AppendCoord(b, c)
		}
	}
	return b
}

// DecodeRequest parses a request frame body. Counts are validated
// against the bytes actually present before any allocation, so a
// hostile length field cannot balloon memory. Trailing bytes after the
// payload are rejected, mirroring the JSON decoder's trailing-data
// check.
func DecodeRequest(body []byte) (*Request, error) {
	cur := NewCursor(body)
	var r Request
	var err error
	if r.ID, err = cur.U32(); err != nil {
		return nil, err
	}
	if r.Op, err = cur.U8(); err != nil {
		return &r, err
	}
	if r.Flags, err = cur.U8(); err != nil {
		return &r, err
	}
	nameLen, err := cur.U8()
	if err != nil {
		return &r, err
	}
	if int(nameLen) > MaxName {
		return &r, fmt.Errorf("wire: mesh name of %d bytes exceeds the %d limit", nameLen, MaxName)
	}
	name, err := cur.Bytes(int(nameLen))
	if err != nil {
		return &r, err
	}
	r.Mesh = string(name)
	switch r.Op {
	case OpRoute, OpHasMinimalPath, OpSafe, OpEnsure:
		if r.Src, err = cur.Coord(); err != nil {
			return &r, err
		}
		if r.Dst, err = cur.Coord(); err != nil {
			return &r, err
		}
	case OpRouteBatch:
		n, err := cur.U16()
		if err != nil {
			return &r, err
		}
		if cur.Remaining() < int(n)*16 {
			return &r, errShort
		}
		r.Pairs = make([]mesh.Coord, 2*int(n))
		for i := range r.Pairs {
			if r.Pairs[i], err = cur.Coord(); err != nil {
				return &r, err
			}
		}
	case OpHasMinimalPathBatch, OpEnsureBatch:
		if r.Src, err = cur.Coord(); err != nil {
			return &r, err
		}
		n, err := cur.U16()
		if err != nil {
			return &r, err
		}
		if cur.Remaining() < int(n)*8 {
			return &r, errShort
		}
		r.Dests = make([]mesh.Coord, int(n))
		for i := range r.Dests {
			if r.Dests[i], err = cur.Coord(); err != nil {
				return &r, err
			}
		}
	default:
		return &r, fmt.Errorf("wire: unknown op %d", r.Op)
	}
	if cur.Remaining() != 0 {
		return &r, fmt.Errorf("wire: %d trailing bytes after request payload", cur.Remaining())
	}
	return &r, nil
}

// --- responses --------------------------------------------------------

// RouteResult is one pair's outcome in an OpRouteBatch response.
type RouteResult struct {
	OK   bool
	Hops int
	Path []mesh.Coord
	Err  string
}

// EnsureResult is one verdict of an OpEnsure or OpEnsureBatch response.
type EnsureResult struct {
	Verdict uint8
	Via     []mesh.Coord
}

// Response is one decoded reply. Which result fields are meaningful
// depends on the op of the request it answers (responses do not carry
// the op; the client matches positionally).
type Response struct {
	ID     uint32
	Status uint8
	Err    string // non-OK only

	Bool    bool           // OpHasMinimalPath, OpSafe
	Hops    int            // OpRoute
	Path    []mesh.Coord   // OpRoute
	Ensure  EnsureResult   // OpEnsure
	Routes  []RouteResult  // OpRouteBatch
	Bits    []bool         // OpHasMinimalPathBatch
	Ensures []EnsureResult // OpEnsureBatch
}

// AppendError encodes a non-OK response.
func AppendError(b []byte, id uint32, status uint8, msg string) []byte {
	b = AppendU32(b, id)
	b = append(b, status)
	if len(msg) > 0xffff {
		msg = msg[:0xffff]
	}
	b = AppendU16(b, uint16(len(msg)))
	return append(b, msg...)
}

// AppendOKHeader starts an OK response; the caller appends the
// op-specific result after it.
func AppendOKHeader(b []byte, id uint32) []byte {
	b = AppendU32(b, id)
	return append(b, StatusOK)
}

// AppendPath encodes u32 length plus coordinates.
func AppendPath(b []byte, p []mesh.Coord) []byte {
	b = AppendU32(b, uint32(len(p)))
	for _, c := range p {
		b = AppendCoord(b, c)
	}
	return b
}

// AppendBools packs vs LSB-first into ceil(n/8) bytes after a u16
// count — the OpHasMinimalPathBatch result body.
func AppendBools(b []byte, vs []bool) []byte {
	b = AppendU16(b, uint16(len(vs)))
	var acc byte
	for i, v := range vs {
		if v {
			acc |= 1 << (i & 7)
		}
		if i&7 == 7 {
			b = append(b, acc)
			acc = 0
		}
	}
	if len(vs)&7 != 0 {
		b = append(b, acc)
	}
	return b
}

// AppendEnsure encodes one verdict-plus-via result.
func AppendEnsure(b []byte, verdict uint8, via []mesh.Coord) []byte {
	b = append(b, verdict, byte(len(via)))
	for _, c := range via {
		b = AppendCoord(b, c)
	}
	return b
}

// DecodeResponse parses a response frame body; op is the operation of
// the request this frame answers and selects the result layout.
func DecodeResponse(body []byte, op uint8) (*Response, error) {
	cur := NewCursor(body)
	var resp Response
	var err error
	if resp.ID, err = cur.U32(); err != nil {
		return nil, err
	}
	if resp.Status, err = cur.U8(); err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		n, err := cur.U16()
		if err != nil {
			return nil, err
		}
		msg, err := cur.Bytes(int(n))
		if err != nil {
			return nil, err
		}
		resp.Err = string(msg)
		return &resp, nil
	}
	switch op {
	case OpHasMinimalPath, OpSafe:
		v, err := cur.U8()
		if err != nil {
			return nil, err
		}
		resp.Bool = v != 0
	case OpRoute:
		hops, err := cur.U32()
		if err != nil {
			return nil, err
		}
		resp.Hops = int(int32(hops))
		if resp.Path, err = decodePath(cur); err != nil {
			return nil, err
		}
	case OpEnsure:
		if resp.Ensure, err = decodeEnsure(cur); err != nil {
			return nil, err
		}
	case OpRouteBatch:
		n, err := cur.U16()
		if err != nil {
			return nil, err
		}
		resp.Routes = make([]RouteResult, int(n))
		for i := range resp.Routes {
			ok, err := cur.U8()
			if err != nil {
				return nil, err
			}
			if ok != 0 {
				hops, err := cur.U32()
				if err != nil {
					return nil, err
				}
				path, err := decodePath(cur)
				if err != nil {
					return nil, err
				}
				resp.Routes[i] = RouteResult{OK: true, Hops: int(int32(hops)), Path: path}
			} else {
				en, err := cur.U16()
				if err != nil {
					return nil, err
				}
				msg, err := cur.Bytes(int(en))
				if err != nil {
					return nil, err
				}
				resp.Routes[i] = RouteResult{Hops: -1, Err: string(msg)}
			}
		}
	case OpHasMinimalPathBatch:
		n, err := cur.U16()
		if err != nil {
			return nil, err
		}
		packed, err := cur.Bytes((int(n) + 7) / 8)
		if err != nil {
			return nil, err
		}
		resp.Bits = make([]bool, int(n))
		for i := range resp.Bits {
			resp.Bits[i] = packed[i>>3]&(1<<(i&7)) != 0
		}
	case OpEnsureBatch:
		n, err := cur.U16()
		if err != nil {
			return nil, err
		}
		resp.Ensures = make([]EnsureResult, int(n))
		for i := range resp.Ensures {
			if resp.Ensures[i], err = decodeEnsure(cur); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("wire: unknown op %d decoding response", op)
	}
	if cur.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after response payload", cur.Remaining())
	}
	return &resp, nil
}

func decodePath(cur *Cursor) ([]mesh.Coord, error) {
	n, err := cur.U32()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(cur.Remaining()) {
		return nil, errShort
	}
	if n == 0 {
		return nil, nil
	}
	p := make([]mesh.Coord, int(n))
	for i := range p {
		if p[i], err = cur.Coord(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func decodeEnsure(cur *Cursor) (EnsureResult, error) {
	var e EnsureResult
	var err error
	if e.Verdict, err = cur.U8(); err != nil {
		return e, err
	}
	n, err := cur.U8()
	if err != nil {
		return e, err
	}
	if int(n) > 0 {
		e.Via = make([]mesh.Coord, int(n))
		for i := range e.Via {
			if e.Via[i], err = cur.Coord(); err != nil {
				return e, err
			}
		}
	}
	return e, nil
}
