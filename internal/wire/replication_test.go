package wire

import (
	"bytes"
	"testing"
)

// TestRepMessageRoundTrip pins encode/decode identity for every
// message type, including empty payloads.
func TestRepMessageRoundTrip(t *testing.T) {
	msgs := []*RepMessage{
		{Type: RepSnapshot, Seq: 42, Payload: []byte(`{"meshes":{}}`)},
		{Type: RepRecord, Seq: 43, Payload: []byte(`{"seq":43,"op":"apply"}`)},
		{Type: RepHeartbeat, Seq: 99, Payload: []byte{}},
		{Type: RepAck, Seq: 77, Payload: []byte{}},
	}
	for _, m := range msgs {
		body := AppendRepMessage(nil, m)
		got, err := DecodeRepMessage(body)
		if err != nil {
			t.Fatalf("decode type %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("round trip type %d: got %+v, want %+v", m.Type, got, m)
		}
	}
}

// TestRepHello pins the handshake: magic accepted, wrong magic and
// wrong payload size rejected.
func TestRepHello(t *testing.T) {
	body := AppendRepHello(nil, 123)
	m, err := DecodeRepMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != RepHello || m.Seq != 123 {
		t.Errorf("hello = %+v, want type %d seq 123", m, RepHello)
	}

	bad := AppendRepMessage(nil, &RepMessage{Type: RepHello, Seq: 1, Payload: []byte{1, 2, 3, 4}})
	if _, err := DecodeRepMessage(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	short := AppendRepMessage(nil, &RepMessage{Type: RepHello, Seq: 1, Payload: []byte{1}})
	if _, err := DecodeRepMessage(short); err == nil {
		t.Error("short hello payload accepted")
	}
}

// TestRepMessageCorruption pins that a bit flip anywhere in the body —
// header included: a flipped seq could silently rewind a follower's
// watermark — fails the CRC or a structural check, and damage
// (truncation, bad type, length mismatch) is rejected rather than
// misread.
func TestRepMessageCorruption(t *testing.T) {
	base := AppendRepMessage(nil, &RepMessage{Type: RepRecord, Seq: 7, Payload: []byte(`{"op":"delete","name":"m"}`)})

	for i := 0; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x10
		if _, err := DecodeRepMessage(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(base); cut++ {
		if _, err := DecodeRepMessage(base[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeRepMessage(append(append([]byte(nil), base...), 0xaa)); err == nil {
		t.Error("trailing garbage accepted")
	}
	mut := append([]byte(nil), base...)
	mut[0] = 200 // unknown type
	if _, err := DecodeRepMessage(mut); err == nil {
		t.Error("unknown message type accepted")
	}
}

// FuzzReplicationFrames feeds arbitrary bytes to the replication
// message decoder. Nothing may panic, and any body the decoder accepts
// must re-encode to exactly the input — the encoding is canonical, so
// decode success implies byte-identity.
func FuzzReplicationFrames(f *testing.F) {
	f.Add(AppendRepHello(nil, 0))
	f.Add(AppendRepHello(nil, ^uint64(0)))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepSnapshot, Seq: 9, Payload: []byte(`{"meshes":{"m":{"blob":{},"version":3}}}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepRecord, Seq: 10, Payload: []byte(`{"seq":10,"op":"apply","name":"m"}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepHeartbeat, Seq: 11}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepAck, Seq: 12}))
	// Adversarial: empty, bare header, absurd payload length, zero type.
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeRepMessage(body)
		if err != nil {
			return
		}
		if re := AppendRepMessage(nil, m); !bytes.Equal(re, body) {
			t.Fatalf("accepted body is not canonical: %x re-encodes to %x", body, re)
		}
	})
}
