package wire

import (
	"bytes"
	"testing"
)

// TestRepMessageRoundTrip pins encode/decode identity for every
// message type, including empty payloads and epoch-bearing frames.
func TestRepMessageRoundTrip(t *testing.T) {
	msgs := []*RepMessage{
		{Type: RepSnapshot, Seq: 42, Epoch: 3, Payload: []byte(`{"meshes":{}}`)},
		{Type: RepRecord, Seq: 43, Epoch: 3, Payload: []byte(`{"seq":43,"op":"apply"}`)},
		{Type: RepHeartbeat, Seq: 99, Epoch: 0, Payload: []byte{}},
		{Type: RepAck, Seq: 77, Epoch: ^uint64(0), Payload: []byte{}},
		{Type: RepFence, Seq: 5, Epoch: 9, Payload: []byte(`{"node_id":"n2","role":"follower","epoch":9,"head":5}`)},
		{Type: RepGoodbye, Seq: 12, Epoch: 2, Payload: []byte{}},
		{Type: RepState, Seq: 88, Epoch: 4, Payload: []byte(`{"node_id":"n1","role":"primary","epoch":4,"head":88}`)},
	}
	for _, m := range msgs {
		body := AppendRepMessage(nil, m)
		got, err := DecodeRepMessage(body)
		if err != nil {
			t.Fatalf("decode type %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Seq != m.Seq || got.Epoch != m.Epoch || !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("round trip type %d: got %+v, want %+v", m.Type, got, m)
		}
	}
}

// TestRepHello pins the handshake: magic accepted, epoch round-trips,
// wrong magic and wrong payload size rejected. The same magic gate
// covers RepProbe.
func TestRepHello(t *testing.T) {
	body := AppendRepHello(nil, 123, 7)
	m, err := DecodeRepMessage(body)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != RepHello || m.Seq != 123 || m.Epoch != 7 {
		t.Errorf("hello = %+v, want type %d seq 123 epoch 7", m, RepHello)
	}

	probe, err := DecodeRepMessage(AppendRepProbe(nil, 9))
	if err != nil {
		t.Fatal(err)
	}
	if probe.Type != RepProbe || probe.Epoch != 9 {
		t.Errorf("probe = %+v, want type %d epoch 9", probe, RepProbe)
	}

	bad := AppendRepMessage(nil, &RepMessage{Type: RepHello, Seq: 1, Payload: []byte{1, 2, 3, 4}})
	if _, err := DecodeRepMessage(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	short := AppendRepMessage(nil, &RepMessage{Type: RepHello, Seq: 1, Payload: []byte{1}})
	if _, err := DecodeRepMessage(short); err == nil {
		t.Error("short hello payload accepted")
	}
	badProbe := AppendRepMessage(nil, &RepMessage{Type: RepProbe, Payload: []byte{9, 9, 9, 9}})
	if _, err := DecodeRepMessage(badProbe); err == nil {
		t.Error("wrong probe magic accepted")
	}
}

// TestRepMessageCorruption pins that a bit flip anywhere in the body —
// header included: a flipped seq could silently rewind a follower's
// watermark, and a flipped epoch could spuriously fence a healthy
// stream — fails the CRC or a structural check, and damage
// (truncation, bad type, length mismatch) is rejected rather than
// misread.
func TestRepMessageCorruption(t *testing.T) {
	base := AppendRepMessage(nil, &RepMessage{Type: RepRecord, Seq: 7, Epoch: 2, Payload: []byte(`{"op":"delete","name":"m"}`)})

	for i := 0; i < len(base); i++ {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x10
		if _, err := DecodeRepMessage(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	for cut := 0; cut < len(base); cut++ {
		if _, err := DecodeRepMessage(base[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeRepMessage(append(append([]byte(nil), base...), 0xaa)); err == nil {
		t.Error("trailing garbage accepted")
	}
	mut := append([]byte(nil), base...)
	mut[0] = 200 // unknown type
	if _, err := DecodeRepMessage(mut); err == nil {
		t.Error("unknown message type accepted")
	}
}

// TestNodeStateStronger pins the deterministic failover tie-break:
// higher epoch wins outright; equal epochs fall back to node ID.
func TestNodeStateStronger(t *testing.T) {
	a := &NodeState{NodeID: "a", Epoch: 2}
	b := &NodeState{NodeID: "z", Epoch: 1}
	if !a.Stronger(b) || b.Stronger(a) {
		t.Error("higher epoch must win regardless of node ID")
	}
	b.Epoch = 2
	if a.Stronger(b) || !b.Stronger(a) {
		t.Error("equal epochs must tie-break on node ID")
	}
	if a.Stronger(a) {
		t.Error("a node must not beat itself")
	}
}

// FuzzReplicationFrames feeds arbitrary bytes to the replication
// message decoder. Nothing may panic, and any body the decoder accepts
// must re-encode to exactly the input — the encoding is canonical, so
// decode success implies byte-identity. Seeds cover every epoch-bearing
// frame type, including fence/probe/state/goodbye.
func FuzzReplicationFrames(f *testing.F) {
	f.Add(AppendRepHello(nil, 0, 0))
	f.Add(AppendRepHello(nil, ^uint64(0), ^uint64(0)))
	f.Add(AppendRepProbe(nil, 3))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepSnapshot, Seq: 9, Epoch: 1, Payload: []byte(`{"meshes":{"m":{"blob":{},"version":3}}}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepRecord, Seq: 10, Epoch: 2, Payload: []byte(`{"seq":10,"op":"apply","name":"m"}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepRecord, Seq: 11, Epoch: 2, Payload: []byte(`{"seq":11,"op":"epoch","epoch":2}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepHeartbeat, Seq: 11, Epoch: 4}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepAck, Seq: 12, Epoch: 4}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepFence, Seq: 13, Epoch: 5, Payload: []byte(`{"node_id":"n2","role":"primary","epoch":5,"head":13}`)}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepGoodbye, Seq: 14, Epoch: 5}))
	f.Add(AppendRepMessage(nil, &RepMessage{Type: RepState, Seq: 15, Epoch: 6, Payload: []byte(`{"node_id":"n3","role":"follower","epoch":6,"head":15,"fenced":true}`)}))
	// Adversarial: empty, bare header, absurd payload length, zero type.
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, body []byte) {
		m, err := DecodeRepMessage(body)
		if err != nil {
			return
		}
		if re := AppendRepMessage(nil, m); !bytes.Equal(re, body) {
			t.Fatalf("accepted body is not canonical: %x re-encodes to %x", body, re)
		}
	})
}
