// Replication stream protocol.
//
// A replica dials the primary's replication listener and the two speak
// length-prefixed frames (WriteFrame/ReadFrame, like the query plane)
// whose bodies are RepMessage encodings:
//
//	u8  type
//	u64 seq
//	u64 epoch
//	u32 crc32-IEEE of type+seq+epoch+payload
//	u32 payload length
//	... payload
//
// The conversation is: replica sends RepHello carrying the last
// sequence number it applied (seq field; payload is the protocol
// magic) and the epoch it last observed. The primary answers either an
// incremental stream of RepRecord frames — one journal record each,
// seq strictly ascending — or, when the requested offset predates its
// snapshot horizon (or lies beyond its head: a rewind), or when the
// hello's epoch differs from its own (the follower may hold a
// divergent suffix written under a dead epoch), a single RepSnapshot
// carrying the full registry state at seq, followed by RepRecords from
// there. RepHeartbeat frames (empty payload, seq = primary head) flow
// during idle periods so followers can distinguish a quiet primary
// from a dead link; replicas answer with RepAck (seq = applied
// watermark) so the primary can export per-replica lag.
//
// The epoch field fences failover: every frame carries the sender's
// cluster epoch, a monotonic counter bumped on each promotion. A
// receiver that knows a newer epoch rejects the frame — so a zombie
// ex-primary's stream dies at the first frame instead of rewinding a
// follower — and a listener that is not the primary answers a hello
// with RepFence (payload: its NodeState) instead of a stream.
// RepProbe/RepState are a one-shot status exchange used by the
// failover controller to discover who is primary at which epoch;
// RepGoodbye is the primary's parting frame on graceful shutdown,
// telling followers to start their failover deadline immediately.
//
// Each frame carries a CRC over its type, sequence number, epoch and
// payload on top of the frame length prefix: a torn or bit-flipped
// frame — including a flipped seq, which unchecked could silently
// rewind or wedge a follower's watermark, or a flipped epoch, which
// could spuriously fence a healthy stream — is detected at the message
// layer, and the follower's only recovery is to drop the connection
// and re-handshake from its applied watermark — exactly the reconnect
// path it already needs for network faults, so corruption never makes
// it into Apply.
package wire

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Replication message types.
const (
	RepHello     = 1 // replica → primary: seq = resume-after offset, epoch = last observed, payload = magic
	RepSnapshot  = 2 // primary → replica: seq = snapshot horizon, payload = state JSON
	RepRecord    = 3 // primary → replica: seq = record seq, payload = journal record JSON
	RepHeartbeat = 4 // primary → replica: seq = primary head, empty payload
	RepAck       = 5 // replica → primary: seq = applied watermark, epoch = replica epoch, empty payload
	RepFence     = 6 // listener → dialer: you may not stream from me; payload = NodeState JSON
	RepGoodbye   = 7 // primary → replica: graceful shutdown, start failover deadline now
	RepProbe     = 8 // dialer → listener: one-shot status request, payload = magic
	RepState     = 9 // listener → dialer: seq = head, epoch = epoch, payload = NodeState JSON
)

// RepMagic is the RepHello/RepProbe payload ("MRP2" little-endian): a
// version gate so a query client dialing the replication port (or a
// pre-epoch peer) fails the handshake instead of desynchronizing.
//
// The MRP1→MRP2 bump is deliberate and hard: pre-epoch binaries carry
// no fencing token, so letting them stream would reopen every
// split-brain hole the epoch closes. The operational consequence is
// that replication is incompatible across the boundary — a rolling
// upgrade leaves old/new pairs unable to replicate (replicas serve
// increasingly stale reads) until every node runs the new binary, so
// upgrade all cluster nodes together. See README "Upgrading".
const RepMagic uint32 = 0x3250524D

// MaxReplicationFrame bounds replication frame bodies. Snapshots carry
// the whole registry (every mesh blob), so the ceiling is well above
// the query plane's.
const MaxReplicationFrame = 64 << 20

// repHeader is the fixed-size prefix of a RepMessage body.
const repHeader = 1 + 8 + 8 + 4 + 4

// repCRCPrefix is the number of body bytes the CRC covers before the
// payload: type + seq + epoch.
const repCRCPrefix = 1 + 8 + 8

// RepMessage is one replication stream message. Payload is opaque at
// this layer — journal record JSON, snapshot JSON, node state JSON, or
// empty — and is integrity-checked by the embedded CRC.
type RepMessage struct {
	Type    uint8
	Seq     uint64
	Epoch   uint64
	Payload []byte
}

// NodeState is the JSON payload of RepState and RepFence frames: one
// node's view of its own role in the cluster. Head is its journal
// sequence watermark; the failover controller compares (Epoch, NodeID)
// to break dueling-primary ties deterministically.
type NodeState struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role"`
	Epoch  uint64 `json:"epoch"`
	Head   uint64 `json:"head"`
	Fenced bool   `json:"fenced,omitempty"`
	// PrimaryAgeMS is the age, in milliseconds, of the node's last
	// contact with the primary it is streaming from; -1 when it is not
	// following one (it is a primary itself, or between streams). A
	// candidate that probes a peer reporting fresh primary contact
	// cedes its candidacy: the incumbent is alive and merely
	// unreachable from the candidate (an asymmetric partition), so
	// promoting past it would fork acknowledged history.
	PrimaryAgeMS int64 `json:"primary_age_ms"`
}

// DecodeNodeState parses the JSON NodeState payload of a RepState or
// RepFence frame. PrimaryAgeMS defaults to -1 (not following) when the
// sender omitted it, so its zero value never reads as fresh contact.
func DecodeNodeState(payload []byte) (*NodeState, error) {
	st := &NodeState{PrimaryAgeMS: -1}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("wire: decode node state: %w", err)
	}
	return st, nil
}

// Stronger reports whether a beats b in the deterministic failover
// tie-break: higher epoch wins; at equal epochs the greater node ID
// wins. Every node applies the same rule, so a healed
// dueling-primary pair agrees on the single winner without
// coordination.
func (a *NodeState) Stronger(b *NodeState) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	return a.NodeID > b.NodeID
}

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U64 reads a little-endian u64 off the cursor.
func (c *Cursor) U64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, errShort
	}
	v := uint64(c.b[c.off]) | uint64(c.b[c.off+1])<<8 |
		uint64(c.b[c.off+2])<<16 | uint64(c.b[c.off+3])<<24 |
		uint64(c.b[c.off+4])<<32 | uint64(c.b[c.off+5])<<40 |
		uint64(c.b[c.off+6])<<48 | uint64(c.b[c.off+7])<<56
	c.off += 8
	return v, nil
}

// AppendRepMessage encodes m onto b. The CRC chains over the type, seq
// and epoch bytes just written plus the payload, so header corruption
// is as detectable as payload corruption.
func AppendRepMessage(b []byte, m *RepMessage) []byte {
	b = append(b, m.Type)
	b = AppendU64(b, m.Seq)
	b = AppendU64(b, m.Epoch)
	crc := crc32.ChecksumIEEE(b[len(b)-repCRCPrefix:])
	crc = crc32.Update(crc, crc32.IEEETable, m.Payload)
	b = AppendU32(b, crc)
	b = AppendU32(b, uint32(len(m.Payload)))
	return append(b, m.Payload...)
}

// AppendRepHello encodes the handshake: resume after `since`, last
// observed cluster epoch `epoch`.
func AppendRepHello(b []byte, since, epoch uint64) []byte {
	magic := AppendU32(nil, RepMagic)
	return AppendRepMessage(b, &RepMessage{Type: RepHello, Seq: since, Epoch: epoch, Payload: magic})
}

// AppendRepProbe encodes a one-shot status probe from a node at
// `epoch`. The listener answers with RepState and closes.
func AppendRepProbe(b []byte, epoch uint64) []byte {
	magic := AppendU32(nil, RepMagic)
	return AppendRepMessage(b, &RepMessage{Type: RepProbe, Epoch: epoch, Payload: magic})
}

// DecodeRepMessage decodes and integrity-checks one replication
// message body. The returned Payload aliases body. Any error means the
// stream is untrustworthy past this frame; the caller must drop the
// connection and re-handshake.
func DecodeRepMessage(body []byte) (*RepMessage, error) {
	cur := NewCursor(body)
	typ, err := cur.U8()
	if err != nil {
		return nil, err
	}
	if typ < RepHello || typ > RepState {
		return nil, fmt.Errorf("wire: unknown replication message type %d", typ)
	}
	seq, err := cur.U64()
	if err != nil {
		return nil, err
	}
	epoch, err := cur.U64()
	if err != nil {
		return nil, err
	}
	crc, err := cur.U32()
	if err != nil {
		return nil, err
	}
	n, err := cur.U32()
	if err != nil {
		return nil, err
	}
	if int64(n) != int64(len(body)-repHeader) {
		return nil, fmt.Errorf("wire: replication payload length %d does not match frame (%d)", n, len(body)-repHeader)
	}
	payload, err := cur.Bytes(int(n))
	if err != nil {
		return nil, err
	}
	if got := crc32.Update(crc32.ChecksumIEEE(body[:repCRCPrefix]), crc32.IEEETable, payload); got != crc {
		return nil, fmt.Errorf("wire: replication frame crc mismatch (frame %08x, computed %08x)", crc, got)
	}
	m := &RepMessage{Type: typ, Seq: seq, Epoch: epoch, Payload: payload}
	if typ == RepHello || typ == RepProbe {
		if err := m.checkMagic(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// checkMagic validates the handshake/probe payload against the magic.
func (m *RepMessage) checkMagic() error {
	if len(m.Payload) != 4 {
		return fmt.Errorf("wire: replication handshake payload is %d bytes, want 4", len(m.Payload))
	}
	got := uint32(m.Payload[0]) | uint32(m.Payload[1])<<8 |
		uint32(m.Payload[2])<<16 | uint32(m.Payload[3])<<24
	if got != RepMagic {
		return fmt.Errorf("wire: replication handshake magic %08x, want %08x", got, RepMagic)
	}
	return nil
}
