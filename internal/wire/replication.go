// Replication stream protocol.
//
// A replica dials the primary's replication listener and the two speak
// length-prefixed frames (WriteFrame/ReadFrame, like the query plane)
// whose bodies are RepMessage encodings:
//
//	u8  type
//	u64 seq
//	u32 crc32-IEEE of type+seq+payload
//	u32 payload length
//	... payload
//
// The conversation is: replica sends RepHello carrying the last
// sequence number it applied (seq field; payload is the protocol
// magic). The primary answers either an incremental stream of
// RepRecord frames — one journal record each, seq strictly ascending —
// or, when the requested offset predates its snapshot horizon (or lies
// beyond its head: a rewind), a single RepSnapshot carrying the full
// registry state at seq, followed by RepRecords from there. RepHeartbeat
// frames (empty payload, seq = primary head) flow during idle periods so
// followers can distinguish a quiet primary from a dead link; replicas
// answer with RepAck (seq = applied watermark) so the primary can
// export per-replica lag.
//
// Each frame carries a CRC over its type, sequence number and payload
// on top of the frame length prefix: a torn or bit-flipped frame —
// including a flipped seq, which unchecked could silently rewind or
// wedge a follower's watermark — is detected at the message layer, and
// the follower's only recovery is to drop the connection and
// re-handshake from its applied watermark — exactly the reconnect path
// it already needs for network faults, so corruption never makes it
// into Apply.
package wire

import (
	"fmt"
	"hash/crc32"
)

// Replication message types.
const (
	RepHello     = 1 // replica → primary: seq = resume-after offset, payload = magic
	RepSnapshot  = 2 // primary → replica: seq = snapshot horizon, payload = state JSON
	RepRecord    = 3 // primary → replica: seq = record seq, payload = journal record JSON
	RepHeartbeat = 4 // primary → replica: seq = primary head, empty payload
	RepAck       = 5 // replica → primary: seq = applied watermark, empty payload
)

// RepMagic is the RepHello payload ("MRP1" little-endian): a version
// gate so a query client dialing the replication port (or vice versa)
// fails the handshake instead of desynchronizing.
const RepMagic uint32 = 0x3150524D

// MaxReplicationFrame bounds replication frame bodies. Snapshots carry
// the whole registry (every mesh blob), so the ceiling is well above
// the query plane's.
const MaxReplicationFrame = 64 << 20

// repHeader is the fixed-size prefix of a RepMessage body.
const repHeader = 1 + 8 + 4 + 4

// RepMessage is one replication stream message. Payload is opaque at
// this layer — journal record JSON, snapshot JSON, or empty — and is
// integrity-checked by the embedded CRC.
type RepMessage struct {
	Type    uint8
	Seq     uint64
	Payload []byte
}

// AppendU64 appends v little-endian.
func AppendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U64 reads a little-endian u64 off the cursor.
func (c *Cursor) U64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, errShort
	}
	v := uint64(c.b[c.off]) | uint64(c.b[c.off+1])<<8 |
		uint64(c.b[c.off+2])<<16 | uint64(c.b[c.off+3])<<24 |
		uint64(c.b[c.off+4])<<32 | uint64(c.b[c.off+5])<<40 |
		uint64(c.b[c.off+6])<<48 | uint64(c.b[c.off+7])<<56
	c.off += 8
	return v, nil
}

// AppendRepMessage encodes m onto b. The CRC chains over the type and
// seq bytes just written plus the payload, so header corruption is as
// detectable as payload corruption.
func AppendRepMessage(b []byte, m *RepMessage) []byte {
	b = append(b, m.Type)
	b = AppendU64(b, m.Seq)
	crc := crc32.ChecksumIEEE(b[len(b)-9:])
	crc = crc32.Update(crc, crc32.IEEETable, m.Payload)
	b = AppendU32(b, crc)
	b = AppendU32(b, uint32(len(m.Payload)))
	return append(b, m.Payload...)
}

// AppendRepHello encodes the handshake: resume after `since`.
func AppendRepHello(b []byte, since uint64) []byte {
	magic := AppendU32(nil, RepMagic)
	return AppendRepMessage(b, &RepMessage{Type: RepHello, Seq: since, Payload: magic})
}

// DecodeRepMessage decodes and integrity-checks one replication
// message body. The returned Payload aliases body. Any error means the
// stream is untrustworthy past this frame; the caller must drop the
// connection and re-handshake.
func DecodeRepMessage(body []byte) (*RepMessage, error) {
	cur := NewCursor(body)
	typ, err := cur.U8()
	if err != nil {
		return nil, err
	}
	if typ < RepHello || typ > RepAck {
		return nil, fmt.Errorf("wire: unknown replication message type %d", typ)
	}
	seq, err := cur.U64()
	if err != nil {
		return nil, err
	}
	crc, err := cur.U32()
	if err != nil {
		return nil, err
	}
	n, err := cur.U32()
	if err != nil {
		return nil, err
	}
	if int64(n) != int64(len(body)-repHeader) {
		return nil, fmt.Errorf("wire: replication payload length %d does not match frame (%d)", n, len(body)-repHeader)
	}
	payload, err := cur.Bytes(int(n))
	if err != nil {
		return nil, err
	}
	if got := crc32.Update(crc32.ChecksumIEEE(body[:9]), crc32.IEEETable, payload); got != crc {
		return nil, fmt.Errorf("wire: replication frame crc mismatch (frame %08x, computed %08x)", crc, got)
	}
	m := &RepMessage{Type: typ, Seq: seq, Payload: payload}
	if typ == RepHello {
		if err := m.checkHello(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// checkHello validates the handshake payload against the magic.
func (m *RepMessage) checkHello() error {
	if len(m.Payload) != 4 {
		return fmt.Errorf("wire: replication hello payload is %d bytes, want 4", len(m.Payload))
	}
	got := uint32(m.Payload[0]) | uint32(m.Payload[1])<<8 |
		uint32(m.Payload[2])<<16 | uint32(m.Payload[3])<<24
	if got != RepMagic {
		return fmt.Errorf("wire: replication hello magic %08x, want %08x", got, RepMagic)
	}
	return nil
}
