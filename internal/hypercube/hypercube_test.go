package hypercube

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("dimension 0 should fail")
	}
	if _, err := New(21, nil); err == nil {
		t.Error("dimension 21 should fail")
	}
	if _, err := New(3, []int{8}); err == nil {
		t.Error("fault outside cube should fail")
	}
	if _, err := New(3, []int{1, 1}); err == nil {
		t.Error("duplicate fault should fail")
	}
	c, err := New(3, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 8 || !c.IsFaulty(5) || c.IsFaulty(0) {
		t.Error("basic accessors wrong")
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		u, v, want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 7, 3}, {5, 6, 2}, {0b1010, 0b0101, 4},
	}
	for _, tt := range tests {
		if got := Distance(tt.u, tt.v); got != tt.want {
			t.Errorf("Distance(%b,%b) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestLevelsFaultFree(t *testing.T) {
	c, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < c.Size(); u++ {
		if c.Level(u) != 4 {
			t.Errorf("fault-free level at %d = %d, want 4", u, c.Level(u))
		}
	}
}

func TestLevelsSingleFault(t *testing.T) {
	// One fault in Q_3: its neighbors see sorted neighbor levels
	// (0,3,3) so they drop to level 1... actually (0,3,3) fails s_1>=1,
	// so k=1. Non-neighbors keep higher levels.
	c, err := New(3, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Level(0) != 0 {
		t.Errorf("faulty node level = %d, want 0", c.Level(0))
	}
	for _, u := range []int{1, 2, 4} { // neighbors of 0
		if c.Level(u) != 1 {
			t.Errorf("level of fault neighbor %d = %d, want 1", u, c.Level(u))
		}
	}
	// The antipode 7 has neighbors 3, 5, 6 (levels 2 each? verify >= 2).
	if c.Level(7) < 2 {
		t.Errorf("antipode level = %d, want >= 2", c.Level(7))
	}
}

// TestGuarantee is the defining property transplanted by the paper:
// whenever Level(s) >= Distance(s,d), a Hamming-distance path exists
// and safety-level-based greedy routing delivers it.
func TestGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4) // Q_4 .. Q_7
		size := 1 << n
		var faults []int
		seen := make(map[int]bool)
		for i := 0; i < rng.Intn(size/4); i++ {
			f := rng.Intn(size)
			if !seen[f] {
				seen[f] = true
				faults = append(faults, f)
			}
		}
		c, err := New(n, faults)
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 120; pair++ {
			s := rng.Intn(size)
			d := rng.Intn(size)
			if c.IsFaulty(s) || c.IsFaulty(d) {
				continue
			}
			h := Distance(s, d)
			if c.Level(s) < h {
				continue // no guarantee claimed
			}
			if !c.MinimalPathExists(s, d) {
				t.Fatalf("trial %d: level %d at %d promises distance %d to %d but no path",
					trial, c.Level(s), s, h, d)
			}
			path, err := c.Route(s, d)
			if err != nil {
				t.Fatalf("trial %d: guaranteed route %d->%d failed: %v", trial, s, d, err)
			}
			if len(path)-1 != h {
				t.Fatalf("trial %d: route length %d, want %d", trial, len(path)-1, h)
			}
			for i, u := range path {
				if c.IsFaulty(u) {
					t.Fatalf("trial %d: route through faulty node %d", trial, u)
				}
				if i > 0 && Distance(path[i-1], u) != 1 {
					t.Fatalf("trial %d: route hop %d not adjacent", trial, i)
				}
			}
		}
	}
}

// TestRouteAlwaysMinimalOrFails mirrors the mesh router contract: the
// greedy router either fails or returns a minimal fault-free path, for
// any endpoint pair.
func TestRouteAlwaysMinimalOrFails(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 5
		size := 1 << n
		var faults []int
		seen := make(map[int]bool)
		for i := 0; i < rng.Intn(10); i++ {
			f := rng.Intn(size)
			if !seen[f] {
				seen[f] = true
				faults = append(faults, f)
			}
		}
		c, err := New(n, faults)
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 60; pair++ {
			s, d := rng.Intn(size), rng.Intn(size)
			if c.IsFaulty(s) || c.IsFaulty(d) {
				continue
			}
			path, err := c.Route(s, d)
			if err != nil {
				continue
			}
			if len(path)-1 != Distance(s, d) {
				t.Fatalf("trial %d: non-minimal route %d->%d", trial, s, d)
			}
		}
	}
}

func TestRouteErrors(t *testing.T) {
	c, err := New(3, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Route(-1, 0); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, err := c.Route(0, 3); err == nil {
		t.Error("faulty destination should fail")
	}
	if _, err := c.Route(3, 0); err == nil {
		t.Error("faulty source should fail")
	}
	p, err := c.Route(1, 1)
	if err != nil || len(p) != 1 {
		t.Errorf("self route = %v, %v", p, err)
	}
}

// TestMinimalPathExistsBrute cross-checks the subcube DP against BFS
// restricted to monotone moves.
func TestMinimalPathExistsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 4
		size := 1 << n
		var faults []int
		seen := make(map[int]bool)
		for i := 0; i < rng.Intn(6); i++ {
			f := rng.Intn(size)
			if !seen[f] {
				seen[f] = true
				faults = append(faults, f)
			}
		}
		c, err := New(n, faults)
		if err != nil {
			t.Fatal(err)
		}
		var dfs func(u, d int) bool
		dfs = func(u, d int) bool {
			if c.IsFaulty(u) {
				return false
			}
			if u == d {
				return true
			}
			diff := u ^ d
			for b := 0; b < n; b++ {
				if diff&(1<<b) != 0 && dfs(u^(1<<b), d) {
					return true
				}
			}
			return false
		}
		for s := 0; s < size; s++ {
			for d := 0; d < size; d++ {
				if got, want := c.MinimalPathExists(s, d), !c.IsFaulty(s) && dfs(s, d); got != want {
					t.Fatalf("trial %d: DP %v, DFS %v for %d->%d", trial, got, want, s, d)
				}
			}
		}
	}
}

func TestMinimalPathExistsBounds(t *testing.T) {
	c, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinimalPathExists(-1, 0) || c.MinimalPathExists(0, 8) {
		t.Error("out-of-range endpoints should report false")
	}
	if !c.MinimalPathExists(2, 2) {
		t.Error("self path should exist")
	}
}
