// Package hypercube implements the ancestor of the paper's extended
// safety levels: Wu's safety levels for binary hypercubes (IEEE ToC
// 46(2), 1997), which the paper cites as the origin of limited-global-
// information routing. A node's safety level L guarantees a Hamming-
// distance (minimal) path to every destination within distance L, and
// safety-level-based greedy routing realizes it — the exact guarantee
// the extended safety level transplants to 2-D meshes.
package hypercube

import (
	"fmt"
	"math/bits"
	"sort"
)

// Cube is a binary n-cube with a set of faulty nodes.
type Cube struct {
	N      int // dimension; 2^N nodes
	faulty []bool
	levels []int
}

// New builds the cube and computes all safety levels. Node addresses
// are the integers 0..2^n-1; two nodes are adjacent iff their
// addresses differ in exactly one bit.
func New(n int, faults []int) (*Cube, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range [1,20]", n)
	}
	size := 1 << n
	c := &Cube{N: n, faulty: make([]bool, size), levels: make([]int, size)}
	for _, f := range faults {
		if f < 0 || f >= size {
			return nil, fmt.Errorf("hypercube: fault %d outside Q_%d", f, n)
		}
		if c.faulty[f] {
			return nil, fmt.Errorf("hypercube: duplicate fault %d", f)
		}
		c.faulty[f] = true
	}
	c.computeLevels()
	return c, nil
}

// Size returns the number of nodes.
func (c *Cube) Size() int {
	return 1 << c.N
}

// IsFaulty reports whether node u is faulty.
func (c *Cube) IsFaulty(u int) bool {
	return c.faulty[u]
}

// Level returns the safety level of node u: 0 for faulty nodes;
// otherwise a (conservative) L guaranteeing a Hamming-distance path
// from u to every node within Hamming distance L.
func (c *Cube) Level(u int) int {
	return c.levels[u]
}

// Distance returns the Hamming distance between two nodes.
func Distance(u, v int) int {
	return bits.OnesCount(uint(u ^ v))
}

// computeLevels iterates Wu's recursive definition to its (greatest)
// fixpoint: the level of a faulty node is 0; for a healthy node with
// ascending-sorted neighbor levels (s_1 <= ... <= s_n), the level is
// the largest k <= n with s_i >= i for all i < k. Levels only ever
// decrease from the initial all-n assignment, so the iteration
// converges in at most n rounds of full passes.
func (c *Cube) computeLevels() {
	size := c.Size()
	for u := 0; u < size; u++ {
		if c.faulty[u] {
			c.levels[u] = 0
		} else {
			c.levels[u] = c.N
		}
	}
	neigh := make([]int, c.N)
	for changed := true; changed; {
		changed = false
		for u := 0; u < size; u++ {
			if c.faulty[u] {
				continue
			}
			for d := 0; d < c.N; d++ {
				neigh[d] = c.levels[u^(1<<d)]
			}
			sort.Ints(neigh)
			k := c.N
			for i := 1; i < c.N; i++ {
				if neigh[i-1] < i {
					k = i
					break
				}
			}
			if k < c.levels[u] {
				c.levels[u] = k
				changed = true
			}
		}
	}
}

// Route performs safety-level-based greedy unicasting: at each hop the
// packet moves to a preferred neighbor (one correcting a differing
// bit) whose safety level is at least the remaining distance minus
// one. Whenever Level(s) >= Distance(s, d) the route is guaranteed to
// exist and to have exactly Hamming-distance length.
func (c *Cube) Route(s, d int) ([]int, error) {
	size := c.Size()
	if s < 0 || s >= size || d < 0 || d >= size {
		return nil, fmt.Errorf("hypercube: endpoints %d -> %d outside Q_%d", s, d, c.N)
	}
	if c.faulty[s] || c.faulty[d] {
		return nil, fmt.Errorf("hypercube: endpoints %d -> %d faulty", s, d)
	}
	path := []int{s}
	u := s
	for u != d {
		h := Distance(u, d)
		next := -1
		bestLevel := -1
		diff := u ^ d
		for diff != 0 {
			bit := diff & -diff
			diff &^= bit
			v := u ^ bit
			if c.faulty[v] {
				continue
			}
			// Prefer the highest-level neighbor; any with level >=
			// h-1 suffices for the guarantee.
			if c.levels[v] > bestLevel {
				bestLevel = c.levels[v]
				next = v
			}
		}
		if next < 0 || bestLevel < h-1 {
			return nil, fmt.Errorf("hypercube: stuck at %d heading for %d", u, d)
		}
		u = next
		path = append(path, u)
	}
	return path, nil
}

// MinimalPathExists is the exact ground truth: a DP over the subcube
// spanned by the differing bits, avoiding faulty nodes.
func (c *Cube) MinimalPathExists(s, d int) bool {
	size := c.Size()
	if s < 0 || s >= size || d < 0 || d >= size {
		return false
	}
	if c.faulty[s] || c.faulty[d] {
		return false
	}
	diff := s ^ d
	// Enumerate submasks of diff in increasing popcount order via a
	// simple DP keyed by the set of corrected bits.
	k := bits.OnesCount(uint(diff))
	if k == 0 {
		return true
	}
	var dims []int
	for b := 0; b < c.N; b++ {
		if diff&(1<<b) != 0 {
			dims = append(dims, b)
		}
	}
	reach := make([]bool, 1<<k)
	reach[0] = true
	for mask := 1; mask < 1<<k; mask++ {
		node := s
		for i, b := range dims {
			if mask&(1<<i) != 0 {
				node ^= 1 << b
			}
		}
		if c.faulty[node] {
			continue
		}
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 && reach[mask^(1<<i)] {
				reach[mask] = true
				break
			}
		}
	}
	return reach[1<<k-1]
}
