package core

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
	"extmesh/internal/wang"
)

func modelFrom(t *testing.T, m mesh.Mesh, faults []mesh.Coord) (*Model, *fault.BlockSet) {
	t.Helper()
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	bs := fault.BuildBlocks(sc)
	md, err := NewModel(m, bs.BlockedGrid())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return md, bs
}

func TestNewModelValidation(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	if _, err := NewModel(m, make([]bool, 3)); err == nil {
		t.Error("short blocked grid should fail")
	}
	if _, err := NewModel(m, make([]bool, m.Size())); err != nil {
		t.Errorf("valid model: %v", err)
	}
}

func TestVerdictString(t *testing.T) {
	tests := []struct {
		v    Verdict
		want string
	}{
		{Minimal, "minimal"},
		{SubMinimal, "sub-minimal"},
		{Unknown, "unknown"},
		{Verdict(9), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Verdict(%d).String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestSafeBasics(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	md, _ := modelFrom(t, m, []mesh.Coord{{X: 5, Y: 5}})
	s := mesh.Coord{X: 0, Y: 0}

	if !md.Safe(s, mesh.Coord{X: 11, Y: 11}) {
		t.Error("clear axes should be safe")
	}
	if md.Safe(mesh.Coord{X: 0, Y: 5}, mesh.Coord{X: 11, Y: 11}) {
		t.Error("blocked row section should be unsafe")
	}
	if md.Safe(s, mesh.Coord{X: 5, Y: 5}) {
		t.Error("blocked destination should never be safe")
	}
	if md.Safe(mesh.Coord{X: 5, Y: 5}, s) {
		t.Error("blocked source should never be safe")
	}
	if md.Safe(mesh.Coord{X: -1, Y: 0}, s) {
		t.Error("out-of-mesh source should never be safe")
	}
}

// figure3Scenario builds a configuration resembling Figure 3(a): the
// source is unsafe because a block sits on its row, but neighbors or
// on-axis nodes are safe.
func figure3Scenario(t *testing.T) (*Model, mesh.Coord) {
	m := mesh.Mesh{Width: 16, Height: 16}
	// Block [4:6, 2:3] sits on rows 2-3; source (0,2) has its east
	// section blocked for destinations past x=3.
	md, _ := modelFrom(t, m, []mesh.Coord{
		{X: 4, Y: 2}, {X: 5, Y: 2}, {X: 6, Y: 2},
		{X: 4, Y: 3}, {X: 5, Y: 3}, {X: 6, Y: 3},
	})
	return md, mesh.Coord{X: 0, Y: 2}
}

func TestExtension1(t *testing.T) {
	md, s := figure3Scenario(t)
	d := mesh.Coord{X: 8, Y: 10}

	if md.Safe(s, d) {
		t.Fatal("source should be unsafe (row blocked at x=4)")
	}
	// The north preferred neighbor (0,3) is also unsafe (its row is
	// blocked too), but (0,4)... extension 1 only looks one hop: the
	// preferred neighbors are (1,2) and (0,3). (1,2) has E=3 < 7 so it
	// is unsafe; (0,3) has E=4 < 8 so unsafe. The spare neighbor (0,1)
	// has a clear row and column: sub-minimal ensured.
	a := md.Extension1(s, d)
	if a.Verdict != SubMinimal {
		t.Fatalf("Extension1 = %v, want sub-minimal", a.Verdict)
	}
	if len(a.Via()) != 1 || mesh.Distance(s, a.Via()[0]) != 1 {
		t.Fatalf("sub-minimal witness %v should be a neighbor", a.Via())
	}

	// A destination before the block keeps the source safe.
	if a := md.Extension1(s, mesh.Coord{X: 3, Y: 10}); a.Verdict != Minimal || len(a.Via()) != 0 {
		t.Errorf("near destination: %+v, want safe-source minimal", a)
	}

	// A source just below the block: (5,1). Its column is blocked at
	// y=2. Preferred neighbor (6,1)'s column is also blocked; (5,2) is
	// inside the block; but preferred neighbor... destination (8,4):
	// east neighbor (6,1) has E clear and N blocked (y=2 at x=6).
	// Spare neighbor (4,1) column blocked, (5,0) clear column? x=5
	// blocked at y=2 as well. So go east: (6,1) unsafe, (7,1)?
	// Extension 1 cannot help here; verify it reports Unknown while a
	// minimal path does exist (via x=7).
	s2 := mesh.Coord{X: 5, Y: 1}
	d2 := mesh.Coord{X: 8, Y: 4}
	if got := md.Extension1(s2, d2); got.Verdict != Unknown {
		t.Errorf("Extension1(%v,%v) = %v, want unknown", s2, d2, got.Verdict)
	}
	if !wang.MinimalPathExists(md.M, s2, d2, md.Blocked) {
		t.Error("ground truth should still have a minimal path via x=7")
	}
}

func TestExtension2(t *testing.T) {
	md, s := figure3Scenario(t)
	// Destination in the block's north-east shadow: the source row is
	// blocked (E=4 at (0,2): first block node at x=4), so the
	// horizontal branch fails for xd >= 4; the vertical branch works:
	// the column of s is clear and the node (0,k) for k >= 2 has a
	// clear row to the east.
	d := mesh.Coord{X: 8, Y: 10}
	a := md.Extension2(s, d, 1)
	if a.Verdict != Minimal {
		t.Fatalf("Extension2 seg=1 = %v, want minimal", a.Verdict)
	}
	if len(a.Via()) != 1 {
		t.Fatalf("Extension2 witness = %v, want one waypoint", a.Via())
	}
	w := a.Via()[0]
	if w.X != s.X {
		t.Fatalf("witness %v should be on the source column", w)
	}
	if !md.Levels.SafeFor(s, w) || !md.Levels.SafeFor(w, d) {
		t.Fatal("witness legs should both be safe")
	}

	// With the max segment size the single representative is the one
	// with the best east distance, which is still fine here.
	if a := md.Extension2(s, d, 0); a.Verdict != Minimal {
		t.Errorf("Extension2 seg=max = %v, want minimal", a.Verdict)
	}

	// A same-row destination beyond the block cannot be helped by
	// extension 2 at all (both branches need the orthogonal axis).
	d2 := mesh.Coord{X: 8, Y: 2}
	if a := md.Extension2(s, d2, 1); a.Verdict != Unknown {
		t.Errorf("Extension2 same-row = %v, want unknown", a.Verdict)
	}
}

func TestExtension2HorizontalBranch(t *testing.T) {
	// Mirror of the above: block on the source column, clear row.
	m := mesh.Mesh{Width: 16, Height: 16}
	md, _ := modelFrom(t, m, []mesh.Coord{
		{X: 2, Y: 4}, {X: 2, Y: 5}, {X: 2, Y: 6},
		{X: 3, Y: 4}, {X: 3, Y: 5}, {X: 3, Y: 6},
	})
	s := mesh.Coord{X: 2, Y: 0}
	d := mesh.Coord{X: 10, Y: 8}
	if md.Safe(s, d) {
		t.Fatal("source column is blocked; should be unsafe")
	}
	a := md.Extension2(s, d, 1)
	if a.Verdict != Minimal {
		t.Fatalf("Extension2 = %v, want minimal via the row", a.Verdict)
	}
	if w := a.Via()[0]; w.Y != s.Y {
		t.Fatalf("witness %v should be on the source row", w)
	}
}

func TestExtension3(t *testing.T) {
	md, s := figure3Scenario(t)
	d := mesh.Coord{X: 8, Y: 10}

	// A hand-picked pivot above the block: (0->pivot) uses the clear
	// column, (pivot->d) has a clear row above the block.
	pivot := mesh.Coord{X: 2, Y: 6}
	a := md.Extension3(s, d, []mesh.Coord{pivot})
	if a.Verdict != Minimal || len(a.Via()) != 1 || a.Via()[0] != pivot {
		t.Fatalf("Extension3 = %+v, want minimal via %v", a, pivot)
	}

	// Pivots outside the s-d rectangle are ignored.
	outside := mesh.Coord{X: 12, Y: 12}
	if a := md.Extension3(s, d, []mesh.Coord{outside}); a.Verdict != Unknown {
		t.Errorf("outside pivot should not help: %v", a.Verdict)
	}

	// Blocked pivots are ignored.
	if a := md.Extension3(s, d, []mesh.Coord{{X: 5, Y: 2}}); a.Verdict != Unknown {
		t.Errorf("blocked pivot should not help: %v", a.Verdict)
	}

	// A pivot with an unsafe second leg does not help: (1,1) is safe
	// from s but its row/column sections towards d cross the block.
	if a := md.Extension3(s, d, []mesh.Coord{{X: 1, Y: 1}}); a.Verdict != Unknown {
		t.Errorf("pivot with unsafe leg should not help: %v", a.Verdict)
	}
}

func TestEvaluateStrategies(t *testing.T) {
	md, s := figure3Scenario(t)
	d := mesh.Coord{X: 8, Y: 10}
	region := mesh.Rect{MinX: 0, MinY: 0, MaxX: 15, MaxY: 15}
	rng := rand.New(rand.NewSource(2))

	// Strategy 1 = ext1 + ext2(5): ext2 succeeds here.
	if a := md.Evaluate(s, d, NewStrategy1()); a.Verdict != Minimal {
		t.Errorf("strategy 1 = %v, want minimal", a.Verdict)
	}
	// Strategy 4 includes everything.
	if a := md.Evaluate(s, d, NewStrategy4(region, rng)); a.Verdict != Minimal {
		t.Errorf("strategy 4 = %v, want minimal", a.Verdict)
	}
	// Zero strategy = base condition only: unsafe source stays unknown.
	if a := md.Evaluate(s, d, Strategy{}); a.Verdict != Unknown {
		t.Errorf("zero strategy = %v, want unknown", a.Verdict)
	}
	// AllowSubMinimal surfaces extension 1's detour verdict.
	st := Strategy{UseExt1: true, AllowSubMinimal: true}
	if a := md.Evaluate(s, d, st); a.Verdict != SubMinimal {
		t.Errorf("sub-minimal strategy = %v, want sub-minimal", a.Verdict)
	}
	// Blocked endpoints yield unknown regardless of strategy.
	if a := md.Evaluate(mesh.Coord{X: 5, Y: 2}, d, NewStrategy1()); a.Verdict != Unknown {
		t.Errorf("blocked source = %v, want unknown", a.Verdict)
	}
}

// TestConditionSoundness is the paper's core guarantee: whenever any
// condition ensures a minimal (sub-minimal) path, a path of length
// D(s,d) (D(s,d)+2) avoiding the fault regions actually exists, and
// the returned witness waypoints are consistent. Verified over random
// scenarios under both fault models.
func TestConditionSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		w := 10 + rng.Intn(20)
		h := 10 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}

		grids := [][]bool{
			fault.BuildBlocks(sc).BlockedGrid(),
			fault.BuildMCC(sc, fault.TypeOne).BlockedGrid(),
		}
		for gi, blocked := range grids {
			md, err := NewModel(m, blocked)
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			region := m.Bounds()
			pivots := safety.Pivots(region, 3, safety.CenterPivots, nil)
			for pair := 0; pair < 30; pair++ {
				s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if gi == 1 {
					// Type-one MCCs serve quadrant I/III pairs only.
					if (d.X-s.X)*(d.Y-s.Y) < 0 {
						s.Y, d.Y = d.Y, s.Y
					}
				}
				if md.isBlocked(s) || md.isBlocked(d) {
					continue
				}

				checkWitness := func(name string, a Assurance) {
					t.Helper()
					switch a.Verdict {
					case Unknown:
						return
					case Minimal:
						want := mesh.Distance(s, d)
						got := pathLenVia(s, d, a.Via())
						if got != want {
							t.Fatalf("trial %d %s: witness length %d != distance %d (via %v)", trial, name, got, want, a.Via())
						}
					case SubMinimal:
						want := mesh.Distance(s, d) + 2
						got := pathLenVia(s, d, a.Via())
						if got != want {
							t.Fatalf("trial %d %s: sub-minimal witness length %d != %d", trial, name, got, want)
						}
					}
					// Each leg of the witness must have a minimal path.
					prev := s
					for _, wpt := range append(append([]mesh.Coord{}, a.Via()...), d) {
						if !wang.MinimalPathExists(m, prev, wpt, blocked) {
							t.Fatalf("trial %d %s: leg %v->%v has no minimal path", trial, name, prev, wpt)
						}
						prev = wpt
					}
				}

				if md.Safe(s, d) && !wang.MinimalPathExists(m, s, d, blocked) {
					t.Fatalf("trial %d: safe source without minimal path %v->%v", trial, s, d)
				}
				checkWitness("ext1", md.Extension1(s, d))
				checkWitness("ext2(1)", md.Extension2(s, d, 1))
				checkWitness("ext2(5)", md.Extension2(s, d, 5))
				checkWitness("ext2(max)", md.Extension2(s, d, 0))
				checkWitness("ext3", md.Extension3(s, d, pivots))
			}
		}
	}
}

// pathLenVia sums the Manhattan legs of the witness route.
func pathLenVia(s, d mesh.Coord, via []mesh.Coord) int {
	total := 0
	prev := s
	for _, w := range via {
		total += mesh.Distance(prev, w)
		prev = w
	}
	return total + mesh.Distance(prev, d)
}

// TestExtensionMonotonicity verifies the containment relations between
// the conditions: every extension subsumes the base condition,
// extension 2 with segment size 1 subsumes every other segment size,
// and extension 3 grows monotonically with the partition level (center
// pivots).
func TestExtensionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		m := mesh.Mesh{Width: 20, Height: 20}
		faults, err := fault.RandomFaults(m, 10+rng.Intn(40), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		md, err := NewModel(m, fault.BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatalf("NewModel: %v", err)
		}
		region := m.Bounds()
		pv1 := safety.Pivots(region, 1, safety.CenterPivots, nil)
		pv2 := safety.Pivots(region, 2, safety.CenterPivots, nil)
		pv3 := safety.Pivots(region, 3, safety.CenterPivots, nil)

		for pair := 0; pair < 50; pair++ {
			s := mesh.Coord{X: rng.Intn(20), Y: rng.Intn(20)}
			d := mesh.Coord{X: rng.Intn(20), Y: rng.Intn(20)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			base := md.Safe(s, d)
			if base {
				if md.Extension1(s, d).Verdict != Minimal {
					t.Fatalf("ext1 must subsume base at %v->%v", s, d)
				}
				for _, seg := range []int{1, 5, 10, 0} {
					if md.Extension2(s, d, seg).Verdict != Minimal {
						t.Fatalf("ext2(%d) must subsume base at %v->%v", seg, s, d)
					}
				}
				if md.Extension3(s, d, nil).Verdict != Minimal {
					t.Fatalf("ext3 must subsume base at %v->%v", s, d)
				}
			}
			for _, seg := range []int{5, 10, 0} {
				if md.Extension2(s, d, seg).Verdict == Minimal && md.Extension2(s, d, 1).Verdict != Minimal {
					t.Fatalf("ext2(1) must subsume ext2(%d) at %v->%v", seg, s, d)
				}
			}
			l1 := md.Extension3(s, d, pv1).Verdict == Minimal
			l2 := md.Extension3(s, d, pv2).Verdict == Minimal
			l3 := md.Extension3(s, d, pv3).Verdict == Minimal
			if (l1 && !l2) || (l2 && !l3) {
				t.Fatalf("ext3 levels not monotone at %v->%v: %v %v %v", s, d, l1, l2, l3)
			}
		}
	}
}

// TestExtension2Directional verifies the four-representative variation
// agrees with the scalar one when every node is a representative
// (segment size 1) and stays sound at coarser segment sizes. (At
// coarser sizes neither variation dominates: each keeps different
// representatives, and a representative past the destination column is
// unusable.)
func TestExtension2Directional(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 30; trial++ {
		m := mesh.Mesh{Width: 24, Height: 24}
		faults, err := fault.RandomFaults(m, 10+rng.Intn(50), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		md, err := NewModel(m, fault.BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 40; pair++ {
			s := mesh.Coord{X: rng.Intn(24), Y: rng.Intn(24)}
			d := mesh.Coord{X: rng.Intn(24), Y: rng.Intn(24)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			for _, seg := range []int{1, 5, 0} {
				scalar := md.Extension2(s, d, seg)
				directional := md.Extension2Directional(s, d, seg)
				if seg == 1 && (scalar.Verdict == Minimal) != (directional.Verdict == Minimal) {
					t.Fatalf("trial %d: seg=1 variations disagree at %v->%v: scalar=%v directional=%v",
						trial, s, d, scalar.Verdict, directional.Verdict)
				}
				if directional.Verdict == Minimal {
					// Soundness: witness legs exist.
					prev := s
					for _, wpt := range append(append([]mesh.Coord{}, directional.Via()...), d) {
						if !wang.MinimalPathExists(m, prev, wpt, md.Blocked) {
							t.Fatalf("trial %d: directional witness leg %v->%v has no path", trial, prev, wpt)
						}
						prev = wpt
					}
				}
			}
		}
	}
}

// TestRadiusSafe checks the naive scalar-radius condition: sound (it
// implies existence), strictly weaker than the 4-tuple condition, and
// correct on crafted cases.
func TestRadiusSafe(t *testing.T) {
	md, s := figure3Scenario(t)
	// Block [4:6, 2:3]; source (0,2) has L1 radius 4... the nearest
	// block node from (0,2) is (4,2): distance 4. A destination at
	// distance 3 within the radius is radius-safe.
	if !md.RadiusSafe(s, mesh.Coord{X: 1, Y: 4}) {
		t.Error("destination within the clear radius should be radius-safe")
	}
	if md.RadiusSafe(s, mesh.Coord{X: 2, Y: 4}) {
		t.Error("distance-4 destination should not be radius-safe (radius 4)")
	}
	if md.RadiusSafe(mesh.Coord{X: 4, Y: 2}, s) {
		t.Error("blocked source should not be radius-safe")
	}

	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		m := mesh.Mesh{Width: 20, Height: 20}
		faults, err := fault.RandomFaults(m, 5+rng.Intn(40), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		md, err := NewModel(m, fault.BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 50; pair++ {
			a := mesh.Coord{X: rng.Intn(20), Y: rng.Intn(20)}
			b := mesh.Coord{X: rng.Intn(20), Y: rng.Intn(20)}
			if !md.RadiusSafe(a, b) {
				continue
			}
			if !md.Safe(a, b) {
				t.Fatalf("trial %d: radius-safe pair %v->%v not 4-tuple safe", trial, a, b)
			}
			if !wang.MinimalPathExists(m, a, b, md.Blocked) {
				t.Fatalf("trial %d: radius-safe pair %v->%v has no path", trial, a, b)
			}
		}
	}
}

// TestConditionReflectionInvariance: the conditions must be invariant
// under mesh reflections (the router relies on this symmetry when it
// normalizes orientations). Reflect the whole scenario across X and
// check every condition agrees.
func TestConditionReflectionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		w := 10 + rng.Intn(12)
		h := 10 + rng.Intn(12)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, 5+rng.Intn(25), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		flipX := func(c mesh.Coord) mesh.Coord { return mesh.Coord{X: w - 1 - c.X, Y: c.Y} }
		mirrored := make([]mesh.Coord, len(faults))
		for i, f := range faults {
			mirrored[i] = flipX(f)
		}
		scA, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		scB, err := fault.NewScenario(m, mirrored)
		if err != nil {
			t.Fatal(err)
		}
		mdA, err := NewModel(m, fault.BuildBlocks(scA).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		mdB, err := NewModel(m, fault.BuildBlocks(scB).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 60; pair++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if mdA.isBlocked(s) || mdA.isBlocked(d) {
				continue
			}
			ms, mdd := flipX(s), flipX(d)
			if mdA.Safe(s, d) != mdB.Safe(ms, mdd) {
				t.Fatalf("trial %d: Safe not reflection-invariant at %v->%v", trial, s, d)
			}
			if mdA.RadiusSafe(s, d) != mdB.RadiusSafe(ms, mdd) {
				t.Fatalf("trial %d: RadiusSafe not reflection-invariant at %v->%v", trial, s, d)
			}
			a1 := mdA.Extension1(s, d).Verdict
			b1 := mdB.Extension1(ms, mdd).Verdict
			if a1 != b1 {
				t.Fatalf("trial %d: Extension1 not reflection-invariant at %v->%v: %v vs %v", trial, s, d, a1, b1)
			}
			a2 := mdA.Extension2(s, d, 1).Verdict
			b2 := mdB.Extension2(ms, mdd, 1).Verdict
			if a2 != b2 {
				t.Fatalf("trial %d: Extension2 not reflection-invariant at %v->%v", trial, s, d)
			}
		}
	}
}
