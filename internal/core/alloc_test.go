package core

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

// allocModel builds a 32x32 model with a nontrivial fault pattern for
// the allocation guards.
func allocModel(t *testing.T) (*Model, mesh.Coord, []mesh.Coord) {
	t.Helper()
	m := mesh.Mesh{Width: 32, Height: 32}
	src := mesh.Coord{X: 4, Y: 4}
	faults, err := fault.RandomFaults(m, 40, rand.New(rand.NewSource(7)), func(c mesh.Coord) bool { return c == src })
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	bs := fault.BuildBlocks(sc)
	if bs.InBlock(src) {
		t.Fatal("source swallowed by a block; pick another seed")
	}
	md, err := NewModel(m, bs.BlockedGrid())
	if err != nil {
		t.Fatal(err)
	}
	var dests []mesh.Coord
	for _, d := range []mesh.Coord{{X: 30, Y: 29}, {X: 27, Y: 31}, {X: 31, Y: 20}, {X: 15, Y: 28}} {
		if !bs.InBlock(d) {
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		t.Fatal("no usable destinations; pick another seed")
	}
	return md, src, dests
}

// TestConditionsAllocationFree pins the strategy-evaluation hot path at
// zero allocations per query: the simulation evaluates millions of
// conditions per run, so any per-query allocation reappears as GC
// pressure across the whole evaluation.
func TestConditionsAllocationFree(t *testing.T) {
	md, src, dests := allocModel(t)
	st := Strategy{UseExt1: true, UseExt2: true, SegSize: StrategySegSize}

	checks := []struct {
		name string
		fn   func(d mesh.Coord)
	}{
		{"Safe", func(d mesh.Coord) { md.Safe(src, d) }},
		{"RadiusSafe", func(d mesh.Coord) { md.RadiusSafe(src, d) }},
		{"Extension1", func(d mesh.Coord) { md.Extension1(src, d) }},
		{"Extension2/seg5", func(d mesh.Coord) { md.Extension2(src, d, StrategySegSize) }},
		{"Extension2/max", func(d mesh.Coord) { md.Extension2(src, d, 0) }},
		{"Extension2Directional", func(d mesh.Coord) { md.Extension2Directional(src, d, StrategySegSize) }},
		{"Evaluate/strategy1", func(d mesh.Coord) { md.Evaluate(src, d, st) }},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				c.fn(dests[i%len(dests)])
				i++
			})
			if avg != 0 {
				t.Errorf("%s allocates %.1f times per evaluation, want 0", c.name, avg)
			}
		})
	}
}
