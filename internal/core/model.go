// Package core implements the paper's primary contribution: the
// sufficient safe condition for minimal routing in 2-D meshes with
// fault regions (Definition 3 / Theorem 1) and its three extensions
// (Theorems 1a, 1b, 1c), together with the combined routing strategies
// evaluated in the paper. Everything works uniformly over both fault
// models: the blocked grid may come from faulty blocks or from MCCs.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

// Verdict is the outcome of evaluating a condition at a source node.
type Verdict int

// Condition outcomes. Unknown means the condition cannot ensure any
// path (a minimal path may still exist; the condition is sufficient,
// not necessary).
const (
	Unknown Verdict = iota
	Minimal
	SubMinimal
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Minimal:
		return "minimal"
	case SubMinimal:
		return "sub-minimal"
	default:
		return "unknown"
	}
}

// Assurance is a positive condition result: the kind of path ensured
// and the waypoints of the witnessing two-phase route. The waypoint
// list (see Via) is empty for the base condition, holds the
// intermediate node for extensions 1-3, and for a sub-minimal
// assurance its first element is the spare neighbor that begins the
// detour. Waypoints are stored inline so that evaluating a condition
// never allocates.
type Assurance struct {
	Verdict Verdict

	via  [maxVia]mesh.Coord
	nVia uint8
}

// maxVia bounds the inline waypoint storage; every condition in the
// paper witnesses through at most one intermediate node, the spare
// slot leaves room for future two-waypoint witnesses.
const maxVia = 2

// Via returns the witnessing waypoints in visit order. The slice
// aliases the assurance's inline storage and is valid as long as the
// assurance value itself.
func (a *Assurance) Via() []mesh.Coord {
	return a.via[:a.nVia]
}

// assureVia builds an assurance witnessed by one waypoint without
// heap-allocating the waypoint list.
func assureVia(v Verdict, c mesh.Coord) Assurance {
	a := Assurance{Verdict: v}
	a.via[0] = c
	a.nVia = 1
	return a
}

// Model bundles the information one fault model exposes to the
// conditions: the fault-region membership grid and the extended safety
// levels derived from it.
type Model struct {
	M       mesh.Mesh
	Blocked []bool
	Levels  *safety.Grid

	radiusOnce sync.Once
	radius     []int32 // lazily built L1 distance transform
}

// NewModel computes the safety levels for the blocked grid and returns
// the condition evaluator. blocked is indexed by mesh.Index and is not
// copied; the caller must not mutate it while querying the model (a
// mutated grid may be re-installed with Reset).
func NewModel(m mesh.Mesh, blocked []bool) (*Model, error) {
	md := &Model{}
	if err := md.Reset(m, blocked); err != nil {
		return nil, err
	}
	return md, nil
}

// Reset points the model at a (possibly updated) blocked grid,
// recomputing the safety levels into the existing backing storage so a
// long-lived model can evaluate many fault configurations without
// reallocating its grids. blocked is retained, not copied. Reset must
// not run concurrently with any query on the same model, and results
// obtained before a Reset do not describe the model afterwards.
func (md *Model) Reset(m mesh.Mesh, blocked []bool) error {
	if len(blocked) != m.Size() {
		return fmt.Errorf("core: blocked grid has %d entries, mesh %v needs %d", len(blocked), m, m.Size())
	}
	md.M = m
	md.Blocked = blocked
	md.Levels = safety.ComputeInto(md.Levels, m, blocked)
	md.radiusOnce = sync.Once{} // lazily rebuilt against the new grid
	return nil
}

// isBlocked reports whether c is inside a fault region (nodes outside
// the mesh count as blocked: they can never carry a packet).
func (md *Model) isBlocked(c mesh.Coord) bool {
	if !md.M.Contains(c) {
		return true
	}
	return md.Blocked[md.M.Index(c)]
}

// endpointsUsable reports whether both endpoints are inside the mesh
// and outside every fault region, the standing assumption of all the
// paper's conditions.
func (md *Model) endpointsUsable(s, d mesh.Coord) bool {
	return !md.isBlocked(s) && !md.isBlocked(d)
}

// Safe is the base sufficient safe condition (Definition 3, Theorem 1):
// the source's row and column sections towards the destination are
// clear of fault regions, which guarantees a minimal path.
func (md *Model) Safe(s, d mesh.Coord) bool {
	return md.endpointsUsable(s, d) && md.Levels.SafeFor(s, d)
}

// Extension1 implements Theorem 1a. Minimal routing is ensured when
// the source is safe or one of its preferred neighbors is safe with
// respect to d; failing that, sub-minimal routing (one detour, length
// D(s,d)+2) is ensured when a spare neighbor is safe with respect to d.
// Neighbors inside fault regions cannot carry the packet and are
// skipped.
func (md *Model) Extension1(s, d mesh.Coord) Assurance {
	if !md.endpointsUsable(s, d) {
		return Assurance{}
	}
	if md.Levels.SafeFor(s, d) {
		return Assurance{Verdict: Minimal}
	}
	var dirBuf [4]mesh.Dir
	for _, dir := range mesh.AppendPreferredDirs(dirBuf[:0], s, d) {
		n := s.Add(dir.Offset())
		if !md.isBlocked(n) && md.Levels.SafeFor(n, d) {
			return assureVia(Minimal, n)
		}
	}
	for _, dir := range mesh.AppendSpareDirs(dirBuf[:0], s, d) {
		n := s.Add(dir.Offset())
		if !md.isBlocked(n) && md.Levels.SafeFor(n, d) {
			return assureVia(SubMinimal, n)
		}
	}
	return Assurance{}
}

// repScratch pools representative buffers for the extension-2 scans so
// concurrent condition evaluations stay allocation-free in steady
// state.
var repScratch = sync.Pool{New: func() any { return new([]safety.Rep) }}

// ext2Axis scans the representatives the source collects along `along`
// (ranked by score within each segment) and returns the first one that
// lies within span hops of s on that axis and is safe with respect to
// d.
func (md *Model) ext2Axis(s, d mesh.Coord, along mesh.Dir, span, segSize int, score safety.Scorer) (mesh.Coord, bool) {
	bufp := repScratch.Get().(*[]safety.Rep)
	reps := safety.AppendReps((*bufp)[:0], md.Levels, s, along, score, segSize)
	var found mesh.Coord
	ok := false
	vertical := along == mesh.North || along == mesh.South
	for _, rep := range reps {
		off := abs(rep.C.X - s.X)
		if vertical {
			off = abs(rep.C.Y - s.Y)
		}
		if off > span {
			continue // outside the region [0:xd, 0:yd]
		}
		if md.Levels.SafeFor(rep.C, d) {
			found, ok = rep.C, true
			break
		}
	}
	*bufp = reps
	repScratch.Put(bufp)
	return found, ok
}

// Extension2 implements Theorem 1b with the segment-size variation of
// the paper's Section 4. When the source's row section towards d is
// clear, the source knows one representative safety level per segment
// of the clear region; if some representative within the section is
// safe with respect to d, the two-phase route source -> representative
// -> destination is minimal. The column section is used symmetrically.
// segSize <= 0 selects the paper's "max" variant (one segment per
// region); segSize == 1 uses every node of the region.
func (md *Model) Extension2(s, d mesh.Coord, segSize int) Assurance {
	if !md.endpointsUsable(s, d) {
		return Assurance{}
	}
	if md.Levels.SafeFor(s, d) {
		return Assurance{Verdict: Minimal}
	}
	dx := abs(d.X - s.X)
	dy := abs(d.Y - s.Y)
	hDir, vDir := axisDirs(s, d)

	// Horizontal axis clear: try representatives along the row.
	if hDir.Valid() && dx < md.Levels.At(s).Dist(hDir) && vDir.Valid() {
		if c, ok := md.ext2Axis(s, d, hDir, dx, segSize, safety.ScoreMin); ok {
			return assureVia(Minimal, c)
		}
	}
	// Vertical axis clear: try representatives along the column.
	if vDir.Valid() && dy < md.Levels.At(s).Dist(vDir) && hDir.Valid() {
		if c, ok := md.ext2Axis(s, d, vDir, dy, segSize, safety.ScoreMin); ok {
			return assureVia(Minimal, c)
		}
	}
	return Assurance{}
}

// Extension3 implements Theorem 1c: minimal routing is ensured when a
// pivot node p inside the s-d rectangle satisfies both legs, i.e. s is
// safe with respect to p and p is safe with respect to d. Pivots inside
// fault regions are skipped. The pivot list typically comes from
// safety.Pivots over the destination quadrant's submesh.
func (md *Model) Extension3(s, d mesh.Coord, pivots []mesh.Coord) Assurance {
	if !md.endpointsUsable(s, d) {
		return Assurance{}
	}
	if md.Levels.SafeFor(s, d) {
		return Assurance{Verdict: Minimal}
	}
	box := mesh.Rect{
		MinX: min(s.X, d.X), MinY: min(s.Y, d.Y),
		MaxX: max(s.X, d.X), MaxY: max(s.Y, d.Y),
	}
	for _, p := range pivots {
		if !box.Contains(p) || md.isBlocked(p) {
			continue
		}
		if md.Levels.SafeFor(s, p) && md.Levels.SafeFor(p, d) {
			return assureVia(Minimal, p)
		}
	}
	return Assurance{}
}

// axisDirs returns the horizontal and vertical directions from s
// towards d; an axis with zero delta yields an invalid direction.
func axisDirs(s, d mesh.Coord) (h, v mesh.Dir) {
	switch {
	case d.X > s.X:
		h = mesh.East
	case d.X < s.X:
		h = mesh.West
	}
	switch {
	case d.Y > s.Y:
		v = mesh.North
	case d.Y < s.Y:
		v = mesh.South
	}
	return h, v
}

// Strategy is a cascaded combination of the extensions, evaluated in
// the paper's order (1, then 2, then 3). The zero value applies only
// the base sufficient safe condition.
type Strategy struct {
	UseExt1 bool
	UseExt2 bool
	SegSize int // extension 2 segment size; <= 0 means "max"
	UseExt3 bool
	Pivots  []mesh.Coord // extension 3 pivot set

	// AllowSubMinimal reports extension 1's sub-minimal verdict instead
	// of discarding it; the paper's strategy curves count minimal paths
	// only, so it defaults to false.
	AllowSubMinimal bool
}

// Strategy presets matching Figure 12 of the paper. PivotLevels is the
// partition depth used for the pivot sets of strategies 2-4.
const (
	StrategySegSize = 5
	PivotLevels     = 3
)

// NewStrategy1 returns strategy 1 (extension 1, then extension 2 with
// segment size 5).
func NewStrategy1() Strategy {
	return Strategy{UseExt1: true, UseExt2: true, SegSize: StrategySegSize}
}

// NewStrategy2 returns strategy 2 (extension 1, then extension 3 with
// partition level 3 and random pivots drawn from region using rng).
func NewStrategy2(region mesh.Rect, rng *rand.Rand) Strategy {
	return Strategy{UseExt1: true, UseExt3: true, Pivots: safety.Pivots(region, PivotLevels, safety.RandomPivots, rng)}
}

// NewStrategy3 returns strategy 3 (extension 2 with segment size 5,
// then extension 3 with partition level 3).
func NewStrategy3(region mesh.Rect, rng *rand.Rand) Strategy {
	return Strategy{UseExt2: true, SegSize: StrategySegSize, UseExt3: true, Pivots: safety.Pivots(region, PivotLevels, safety.RandomPivots, rng)}
}

// NewStrategy4 returns strategy 4 (all three extensions in order).
func NewStrategy4(region mesh.Rect, rng *rand.Rand) Strategy {
	return Strategy{UseExt1: true, UseExt2: true, SegSize: StrategySegSize, UseExt3: true, Pivots: safety.Pivots(region, PivotLevels, safety.RandomPivots, rng)}
}

// Evaluate applies the strategy's extensions in order and returns the
// first assurance obtained. The base sufficient safe condition is
// always tried first (every extension subsumes it, so this is purely an
// early exit).
func (md *Model) Evaluate(s, d mesh.Coord, st Strategy) Assurance {
	if !md.endpointsUsable(s, d) {
		return Assurance{}
	}
	if md.Levels.SafeFor(s, d) {
		return Assurance{Verdict: Minimal}
	}
	var sub Assurance
	if st.UseExt1 {
		if a := md.Extension1(s, d); a.Verdict == Minimal {
			return a
		} else if a.Verdict == SubMinimal {
			sub = a
		}
	}
	if st.UseExt2 {
		if a := md.Extension2(s, d, st.SegSize); a.Verdict == Minimal {
			return a
		}
	}
	if st.UseExt3 {
		if a := md.Extension3(s, d, st.Pivots); a.Verdict == Minimal {
			return a
		}
	}
	if st.AllowSubMinimal && sub.Verdict == SubMinimal {
		return sub
	}
	return Assurance{}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Extension2Directional is the paper's second variation of extension
// 2: instead of one representative per segment, up to four are kept —
// one per direction, each the node with the best safety level along
// that direction. For quadrant-oriented routing only the orthogonal
// direction matters, so this variation strictly dominates the scalar
// single-representative choice at the same segment size.
func (md *Model) Extension2Directional(s, d mesh.Coord, segSize int) Assurance {
	if !md.endpointsUsable(s, d) {
		return Assurance{}
	}
	if md.Levels.SafeFor(s, d) {
		return Assurance{Verdict: Minimal}
	}
	dx := abs(d.X - s.X)
	dy := abs(d.Y - s.Y)
	hDir, vDir := axisDirs(s, d)

	try := func(along mesh.Dir, span int) (mesh.Coord, bool) {
		for _, dir := range mesh.Directions() {
			if c, ok := md.ext2Axis(s, d, along, span, segSize, safety.ScoreDir(dir)); ok {
				return c, true
			}
		}
		return mesh.Coord{}, false
	}
	if hDir.Valid() && vDir.Valid() && dx < md.Levels.At(s).Dist(hDir) {
		if c, ok := try(hDir, dx); ok {
			return assureVia(Minimal, c)
		}
	}
	if hDir.Valid() && vDir.Valid() && dy < md.Levels.At(s).Dist(vDir) {
		if c, ok := try(vDir, dy); ok {
			return assureVia(Minimal, c)
		}
	}
	return Assurance{}
}

// RadiusSafe is the naive transplant of the hypercube's scalar safety
// level to meshes: it guarantees a minimal path only when the L1
// distance from the source to the nearest fault region exceeds the
// whole travel distance, so that the entire s-d rectangle is clear.
// The paper's extended 4-tuple exists precisely because this scalar
// condition is far too weak in meshes; the evaluation quantifies the
// gap.
func (md *Model) RadiusSafe(s, d mesh.Coord) bool {
	if !md.endpointsUsable(s, d) {
		return false
	}
	md.radiusOnce.Do(func() {
		md.radius = safety.DistanceTransformInto(md.radius, md.M, md.Blocked)
	})
	return int(md.radius[md.M.Index(s)]) > mesh.Distance(s, d)
}
