package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: one row per fault count, one
// column per plotted curve. It corresponds to one figure (or one panel
// of a two-panel figure) of the paper.
type Table struct {
	ID      string
	Title   string
	XLabel  string // first-column label; defaults to "faults"
	Columns []string
	Rows    []TableRow
}

// TableRow is one fault-count row of a table.
type TableRow struct {
	K      int
	Values []float64
}

// Format writes the table as fixed-width text.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	xlabel := t.XLabel
	if xlabel == "" {
		xlabel = "faults"
	}
	header := fmt.Sprintf("%10s", xlabel)
	for _, c := range t.Columns {
		header += fmt.Sprintf("  %14s", c)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range t.Rows {
		line := fmt.Sprintf("%10d", r.K)
		for _, v := range r.Values {
			line += fmt.Sprintf("  %14.4f", v)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Column returns the values of the named column in row order, or nil
// if the column does not exist.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r.Values[idx]
	}
	return out
}

// modelName labels the two fault models in table identifiers.
var modelNames = [2]string{"block model", "MCC model"}

// Figure7 extracts the affected rows/columns comparison (analytical vs
// simulated) of Figure 7.
func Figure7(ms []Metrics) *Table {
	t := &Table{
		ID:      "fig7",
		Title:   "expected fraction of affected rows (and columns): analytical model vs simulation",
		Columns: []string{"analytical", "simulated"},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{m.AffectedFracAnalytic, m.AffectedFracSim}})
	}
	return t
}

// Figure8 extracts the average number of disabled nodes per fault
// region under both models (Figure 8).
func Figure8(ms []Metrics) *Table {
	t := &Table{
		ID:      "fig8",
		Title:   "average number of disabled nodes in a fault region",
		Columns: []string{"Wu's model", "MCC"},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{m.DisabledPerBlock, m.DisabledPerMCC}})
	}
	return t
}

// Figure9 extracts the base-condition and extension-1 percentages for
// the given model index (0 = block model, Figure 9a; 1 = MCC model,
// Figure 9b).
func Figure9(ms []Metrics, model int) *Table {
	suffix := ""
	if model == mccModel {
		suffix = "a"
	}
	t := &Table{
		ID:    fmt.Sprintf("fig9%c", 'a'+model),
		Title: "minimal/sub-minimal path ensured at the source, " + modelNames[model],
		Columns: []string{
			"safe source",
			"ext1" + suffix + " (min)",
			"ext1" + suffix + " (sub-min)",
			"existence",
		},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{
			m.Safe[model], m.Ext1Min[model], m.Ext1Sub[model], m.Existence,
		}})
	}
	return t
}

// Figure10 extracts the extension-2 segment-size variations for the
// given model index (Figure 10a/10b).
func Figure10(ms []Metrics, model int) *Table {
	suffix := ""
	if model == mccModel {
		suffix = "a"
	}
	cols := []string{"safe source"}
	for _, seg := range Ext2SegSizes {
		name := fmt.Sprintf("ext2%s (%d)", suffix, seg)
		if seg == 0 {
			name = fmt.Sprintf("ext2%s (max)", suffix)
		}
		cols = append(cols, name)
	}
	cols = append(cols, "existence")
	t := &Table{
		ID:      fmt.Sprintf("fig10%c", 'a'+model),
		Title:   "minimal path ensured by extension 2 variations, " + modelNames[model],
		Columns: cols,
	}
	for _, m := range ms {
		vals := []float64{m.Safe[model]}
		vals = append(vals, m.Ext2[model][:]...)
		vals = append(vals, m.Existence)
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: vals})
	}
	return t
}

// Figure11 extracts the extension-3 partition-level variations for the
// given model index (Figure 11a/11b).
func Figure11(ms []Metrics, model int) *Table {
	suffix := ""
	if model == mccModel {
		suffix = "a"
	}
	cols := []string{"safe source"}
	for _, lvl := range Ext3Levels {
		cols = append(cols, fmt.Sprintf("ext3%s (level %d)", suffix, lvl))
	}
	cols = append(cols, "existence")
	t := &Table{
		ID:      fmt.Sprintf("fig11%c", 'a'+model),
		Title:   "minimal path ensured by extension 3 variations, " + modelNames[model],
		Columns: cols,
	}
	for _, m := range ms {
		vals := []float64{m.Safe[model]}
		vals = append(vals, m.Ext3[model][:]...)
		vals = append(vals, m.Existence)
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: vals})
	}
	return t
}

// Figure12 extracts the strategy combinations for the given model
// index (Figure 12a/12b).
func Figure12(ms []Metrics, model int) *Table {
	suffix := ""
	if model == mccModel {
		suffix = "a"
	}
	t := &Table{
		ID:    fmt.Sprintf("fig12%c", 'a'+model),
		Title: "minimal path ensured by strategy combinations, " + modelNames[model],
		Columns: []string{
			"strategy 1" + suffix + " (1+2)",
			"strategy 2" + suffix + " (1+3)",
			"strategy 3" + suffix + " (2+3)",
			"strategy 4" + suffix + " (1+2+3)",
			"existence",
		},
	}
	for _, m := range ms {
		vals := append([]float64{}, m.Strategies[model][:]...)
		vals = append(vals, m.Existence)
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: vals})
	}
	return t
}

// InfoCost extracts the extra storage-cost experiment: integers per
// node under the global fault map versus the limited information
// model, and the savings ratio.
func InfoCost(ms []Metrics) *Table {
	t := &Table{
		ID:      "info",
		Title:   "per-node storage (ints): global fault map vs limited information model",
		Columns: []string{"global/node", "limited/node", "savings ratio"},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{
			m.InfoPerNodeGlobal, m.InfoPerNodeLimited, m.InfoRatio,
		}})
	}
	return t
}

// RouterSuccess extracts the extra end-to-end routing experiment:
// the fraction of pairs Wu's protocol delivers minimally with plain
// single-phase routing, with strategy-4 assured two-phase routing, and
// the existence ceiling.
func RouterSuccess(ms []Metrics, model int) *Table {
	t := &Table{
		ID:    fmt.Sprintf("router%c", 'a'+model),
		Title: "end-to-end Wu-protocol delivery (minimal paths), " + modelNames[model],
		Columns: []string{
			"plain routing",
			"assured (strategy 4)",
			"existence",
			"dfs delivered",
			"dfs stretch",
		},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{
			m.RouterPlain[model], m.RouterAssured[model], m.Existence,
			m.DFSDelivered[model], m.DFSStretch[model],
		}})
	}
	return t
}

// Variations extracts the paper's mentioned-but-unplotted variations:
// the four-directional-representatives form of extension 2 against the
// scalar form, and extension 3 with evenly-spread Latin pivots against
// the recursive centers.
func Variations(ms []Metrics, model int) *Table {
	t := &Table{
		ID:    fmt.Sprintf("var%c", 'a'+model),
		Title: "paper-mentioned variations of extensions 2 and 3, " + modelNames[model],
		Columns: []string{
			"ext2 (5)", "ext2 dir (5)",
			"ext2 (max)", "ext2 dir (max)",
			"ext3 center L3", "ext3 latin L3",
		},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{
			m.Ext2[model][1], m.Ext2Dir[model][0],
			m.Ext2[model][3], m.Ext2Dir[model][1],
			m.Ext3[model][2], m.Ext3Latin[model][2],
		}})
	}
	return t
}

// Lineage extracts the comparison motivating the extended safety
// level: the naive scalar safety radius (the hypercube concept applied
// directly to meshes) against the 4-tuple condition and the existence
// ceiling.
func Lineage(ms []Metrics, model int) *Table {
	t := &Table{
		ID:    fmt.Sprintf("lineage%c", 'a'+model),
		Title: "scalar safety radius vs extended safety level, " + modelNames[model],
		Columns: []string{
			"radius safe (naive)",
			"safe source (4-tuple)",
			"existence",
		},
	}
	for _, m := range ms {
		t.Rows = append(t.Rows, TableRow{K: m.K, Values: []float64{
			m.RadiusSafe[model], m.Safe[model], m.Existence,
		}})
	}
	return t
}

// ExperimentIDs lists the table identifiers AllTables produces, in
// order. Experiment selectors (meshsim's -exp) match by prefix, so
// e.g. "fig9" selects fig9a and fig9b.
func ExperimentIDs() []string {
	return []string{
		"fig7", "fig8",
		"fig9a", "fig9b",
		"fig10a", "fig10b",
		"fig11a", "fig11b",
		"fig12a", "fig12b",
		"info",
		"routera", "routerb",
		"vara", "varb",
		"lineagea", "lineageb",
	}
}

// AllTables renders every figure of the paper from one evaluation run,
// plus the extra storage-cost and router experiments.
func AllTables(ms []Metrics) []*Table {
	return []*Table{
		Figure7(ms),
		Figure8(ms),
		Figure9(ms, blockModel), Figure9(ms, mccModel),
		Figure10(ms, blockModel), Figure10(ms, mccModel),
		Figure11(ms, blockModel), Figure11(ms, mccModel),
		Figure12(ms, blockModel), Figure12(ms, mccModel),
		InfoCost(ms),
		RouterSuccess(ms, blockModel), RouterSuccess(ms, mccModel),
		Variations(ms, blockModel), Variations(ms, mccModel),
		Lineage(ms, blockModel), Lineage(ms, mccModel),
	}
}

// jsonReport is the machine-readable form of an evaluation run.
type jsonReport struct {
	Tables []jsonTable `json:"tables"`
}

// jsonTable mirrors Table for encoding/json.
type jsonTable struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xLabel,omitempty"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
}

// jsonRow mirrors TableRow for encoding/json.
type jsonRow struct {
	Faults int       `json:"faults"`
	Values []float64 `json:"values"`
}

// WriteJSON renders the tables of an evaluation run as a single JSON
// document.
func WriteJSON(w io.Writer, tables []*Table) error {
	rep := jsonReport{Tables: make([]jsonTable, 0, len(tables))}
	for _, t := range tables {
		jt := jsonTable{ID: t.ID, Title: t.Title, XLabel: t.XLabel, Columns: t.Columns}
		for _, r := range t.Rows {
			jt.Rows = append(jt.Rows, jsonRow{Faults: r.K, Values: r.Values})
		}
		rep.Tables = append(rep.Tables, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
