package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named testdata file, rewriting
// the file under -update. The golden files were generated before the
// scenario-arena and active-link changes landed, so a match certifies
// the optimized paths are bit-for-bit equivalent to the original ones.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from pre-optimization golden %s\n got: %s\nwant: %s", name, got, want)
	}
}

// TestRunGolden pins the complete metric set of the Monte-Carlo harness
// for fixed seeds: every figure-7..12 curve, the router tables and the
// extra experiments must be byte-identical with and without the
// reusable scenario arena.
func TestRunGolden(t *testing.T) {
	cfg := Config{
		N:              40,
		FaultCounts:    []int{8, 16},
		Configurations: 4,
		DestsPerConfig: 10,
		Seed:           3,
	}
	ms, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "%+v\n", m)
	}
	checkGolden(t, "run_uniform.golden", sb.String())
}

// TestRunClusteredGolden pins the clustered-fault workload.
func TestRunClusteredGolden(t *testing.T) {
	cfg := Config{
		N:              40,
		FaultCounts:    []int{12},
		Configurations: 3,
		DestsPerConfig: 8,
		Seed:           5,
		Clusters:       2,
		ClusterSpread:  3,
	}
	ms, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "%+v\n", m)
	}
	checkGolden(t, "run_clustered.golden", sb.String())
}

// TestRunScalingGolden pins the scalability sweep.
func TestRunScalingGolden(t *testing.T) {
	points, err := RunScaling([]int{16, 24}, 0.01, 2, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, p := range points {
		fmt.Fprintf(&sb, "%+v\n", p)
	}
	checkGolden(t, "run_scaling.golden", sb.String())
}
