package sim

import (
	"math/rand"
	"testing"

	"extmesh/internal/core"
	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// TestArenaReuseMatchesFresh drives the arena-form constructors
// (Scenario.Reset, BuildBlocksInto, BuildMCCInto, BlockedGridInto,
// Model.Reset, ReachFromInto) through a sequence of randomized fault
// sets, reusing one set of buffers throughout, and checks every
// observable result against a from-scratch construction of the same
// fault set. Any stale state surviving a reuse shows up as a mismatch.
func TestArenaReuseMatchesFresh(t *testing.T) {
	m := mesh.Mesh{Width: 24, Height: 24}
	src := m.Center()
	rng := rand.New(rand.NewSource(29))

	// Reused across all trials.
	var (
		sc      *fault.Scenario
		bs      *fault.BlockSet
		mcc     *fault.MCCSet
		grid    []bool
		mccGrid []bool
		reach   *wang.Reach
		md      core.Model
	)

	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(50)
		faults, err := fault.RandomFaults(m, k, rng, func(c mesh.Coord) bool { return c == src })
		if err != nil {
			t.Fatal(err)
		}

		// Fresh construction.
		fsc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		fbs := fault.BuildBlocks(fsc)
		fmcc := fault.BuildMCC(fsc, fault.TypeOne)
		fgrid := fbs.BlockedGrid()
		fmccGrid := fmcc.BlockedGrid()
		fmd, err := core.NewModel(m, fgrid)
		if err != nil {
			t.Fatal(err)
		}
		freach := wang.ReachFrom(m, src, fgrid)

		// Arena-reused construction.
		if sc == nil {
			sc, err = fault.NewScenario(m, faults)
		} else {
			err = sc.Reset(faults)
		}
		if err != nil {
			t.Fatal(err)
		}
		bs = fault.BuildBlocksInto(bs, sc)
		mcc = fault.BuildMCCInto(mcc, sc, fault.TypeOne)
		grid = bs.BlockedGridInto(grid)
		mccGrid = mcc.BlockedGridInto(mccGrid)
		if err := md.Reset(m, grid); err != nil {
			t.Fatal(err)
		}
		reach = wang.ReachFromInto(reach, m, src, grid)

		if len(bs.Blocks) != len(fbs.Blocks) {
			t.Fatalf("trial %d: %d blocks reused vs %d fresh", trial, len(bs.Blocks), len(fbs.Blocks))
		}
		for i := range bs.Blocks {
			if bs.Blocks[i] != fbs.Blocks[i] {
				t.Fatalf("trial %d: block %d = %v, fresh %v", trial, i, bs.Blocks[i], fbs.Blocks[i])
			}
		}
		if len(mcc.Comps) != len(fmcc.Comps) {
			t.Fatalf("trial %d: %d MCCs reused vs %d fresh", trial, len(mcc.Comps), len(fmcc.Comps))
		}
		for i := range mcc.Comps {
			if mcc.Comps[i].Extent != fmcc.Comps[i].Extent {
				t.Fatalf("trial %d: MCC %d extent %v, fresh %v", trial, i, mcc.Comps[i].Extent, fmcc.Comps[i].Extent)
			}
			if len(mcc.Comps[i].Nodes) != len(fmcc.Comps[i].Nodes) {
				t.Fatalf("trial %d: MCC %d has %d nodes, fresh %d", trial, i, len(mcc.Comps[i].Nodes), len(fmcc.Comps[i].Nodes))
			}
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if grid[i] != fgrid[i] {
				t.Fatalf("trial %d: blocked[%v] = %v, fresh %v", trial, c, grid[i], fgrid[i])
			}
			if mccGrid[i] != fmccGrid[i] {
				t.Fatalf("trial %d: mccBlocked[%v] = %v, fresh %v", trial, c, mccGrid[i], fmccGrid[i])
			}
			if bs.Status(c) != fbs.Status(c) || bs.BlockAt(c) != fbs.BlockAt(c) {
				t.Fatalf("trial %d: status/block at %v differ from fresh", trial, c)
			}
			if mcc.InMCC(c) != fmcc.InMCC(c) || mcc.ComponentAt(c) != fmcc.ComponentAt(c) {
				t.Fatalf("trial %d: MCC labels at %v differ from fresh", trial, c)
			}
			if md.Levels.At(c) != fmd.Levels.At(c) {
				t.Fatalf("trial %d: level at %v = %v, fresh %v", trial, c, md.Levels.At(c), fmd.Levels.At(c))
			}
			if reach.CanReach(c) != freach.CanReach(c) {
				t.Fatalf("trial %d: reach at %v = %v, fresh %v", trial, c, reach.CanReach(c), freach.CanReach(c))
			}
		}
		if bs.DisabledCount() != fbs.DisabledCount() || mcc.DisabledCount() != fmcc.DisabledCount() {
			t.Fatalf("trial %d: disabled counts differ from fresh", trial)
		}
	}
}

// TestRunTimedMatchesRun checks that the timed entry point returns the
// same metrics as Run and reports nonzero stage durations.
func TestRunTimedMatchesRun(t *testing.T) {
	cfg := Config{N: 32, FaultCounts: []int{10, 20}, Configurations: 3, DestsPerConfig: 8, Seed: 7}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	timed, tm, err := RunTimed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(timed) {
		t.Fatalf("Run returned %d points, RunTimed %d", len(plain), len(timed))
	}
	for i := range plain {
		if plain[i] != timed[i] {
			t.Fatalf("point %d: RunTimed metrics diverge from Run", i)
		}
	}
	if tm.Setup <= 0 || tm.Evaluation <= 0 {
		t.Fatalf("expected positive setup/evaluation durations, got %+v", tm)
	}
}
