// Package sim is the Monte-Carlo harness that regenerates the paper's
// evaluation (Figures 7-12): a 200x200 mesh, the source at the center,
// randomly generated faults (up to 200), and destinations drawn
// uniformly from the first-quadrant 100x100 submesh, with source and
// destination outside every faulty block. For each fault count it
// reports the percentage of source/destination pairs for which each
// sufficient condition ensures a minimal (or sub-minimal) path, along
// with the exact existence baseline.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"extmesh/internal/analytic"
	"extmesh/internal/core"
	"extmesh/internal/fault"
	"extmesh/internal/infocost"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/safety"
	"extmesh/internal/wang"
)

// Ext2SegSizes are the extension-2 segment-size variants of Figure 10;
// 0 encodes the paper's "max" variant (one segment per region).
var Ext2SegSizes = [4]int{1, 5, 10, 0}

// Ext3Levels are the extension-3 partition levels of Figure 11.
var Ext3Levels = [3]int{1, 2, 3}

// Config parameterizes one simulation run.
type Config struct {
	N              int   // mesh side length (the paper uses 200)
	FaultCounts    []int // fault counts to sweep (the paper uses up to 200)
	Configurations int   // fault configurations per count
	DestsPerConfig int   // destinations sampled per configuration
	Seed           int64 // PRNG seed; runs are fully reproducible

	// Clusters switches fault injection from the paper's uniform
	// placement to clustered placement around this many centers with
	// ClusterSpread jitter, stressing large-block formation. Zero
	// keeps the paper's uniform workload.
	Clusters      int
	ClusterSpread int
}

// DefaultConfig returns the paper-scale configuration: a 200x200 mesh,
// fault counts 10..200 in steps of 10, and 20 configurations x 50
// destinations (1000 samples) per point.
func DefaultConfig() Config {
	counts := make([]int, 0, 20)
	for k := 10; k <= 200; k += 10 {
		counts = append(counts, k)
	}
	return Config{
		N:              200,
		FaultCounts:    counts,
		Configurations: 20,
		DestsPerConfig: 50,
		Seed:           1,
	}
}

// Scale returns a copy of the configuration with the mesh side and
// fault counts scaled by num/den, used by the benchmarks to exercise
// the same code paths at a fraction of the paper's size.
func (c Config) Scale(num, den int) Config {
	s := c
	s.N = c.N * num / den
	s.FaultCounts = make([]int, len(c.FaultCounts))
	for i, k := range c.FaultCounts {
		if k = k * num / den; k < 1 {
			k = 1
		}
		s.FaultCounts[i] = k
	}
	return s
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("sim: mesh side %d too small", c.N)
	}
	if len(c.FaultCounts) == 0 {
		return fmt.Errorf("sim: no fault counts")
	}
	for _, k := range c.FaultCounts {
		if k < 0 || k > c.N*c.N/4 {
			return fmt.Errorf("sim: fault count %d out of range", k)
		}
	}
	if c.Configurations <= 0 || c.DestsPerConfig <= 0 {
		return fmt.Errorf("sim: configurations and destinations must be positive")
	}
	if c.Clusters < 0 || c.ClusterSpread < 0 {
		return fmt.Errorf("sim: clusters and spread must be non-negative")
	}
	return nil
}

// Metrics aggregates all measured quantities for one fault count. All
// percentages are fractions in [0,1] over the sampled pairs.
type Metrics struct {
	K       int
	Samples int

	// Figure 7: affected rows/columns.
	AffectedFracSim      float64
	AffectedFracAnalytic float64

	// Figure 8: average disabled (non-faulty) nodes per fault region.
	DisabledPerBlock float64
	DisabledPerMCC   float64

	// Exact existence of a minimal path (Wang's condition / DP).
	Existence float64

	// Figure 9: base condition and extension 1, both models.
	Safe    [2]float64 // [block, mcc]
	Ext1Min [2]float64
	Ext1Sub [2]float64 // minimal or sub-minimal ensured

	// Figure 10: extension 2 by segment size (Ext2SegSizes order).
	Ext2 [2][4]float64

	// Figure 11: extension 3 by partition level (Ext3Levels order).
	Ext3 [2][3]float64

	// Figure 12: strategies 1-4 (and 1a-4a for the MCC model).
	Strategies [2][4]float64

	// Extra experiment: storage cost per node of the global fault map
	// versus the paper's limited information model, and their ratio.
	InfoPerNodeGlobal  float64
	InfoPerNodeLimited float64
	InfoRatio          float64

	// Extra experiment: end-to-end success of Wu's protocol (which the
	// paper does not measure): plain single-phase routing, and
	// strategy-4 two-phase routing through the condition's witness,
	// per fault model.
	RouterPlain   [2]float64
	RouterAssured [2]float64

	// DFS (header-information) baseline: delivery fraction and the
	// average stretch (hops / distance, including backtracking) of its
	// delivered packets, per fault model.
	DFSDelivered [2]float64
	DFSStretch   [2]float64

	// Extra experiment: the naive scalar "safety radius" (the direct
	// transplant of hypercube safety levels to meshes) per fault model,
	// quantifying why the paper introduces the extended 4-tuple.
	RadiusSafe [2]float64

	// Extra experiment: the paper's mentioned-but-unplotted variations.
	// Ext2Dir holds the four-directional-representatives variation of
	// extension 2 at segment sizes 5 and max; Ext3Latin holds extension
	// 3 with evenly-spread row/column-distinct pivots per level.
	Ext2Dir   [2][2]float64
	Ext3Latin [2][3]float64
}

// model indices into the two-element arrays of Metrics.
const (
	blockModel = 0
	mccModel   = 1
)

// Timing breaks a run's work into stages. Setup covers scenario
// construction (fault placement, block and MCC labeling, safety
// levels, the existence grid); Evaluation covers condition evaluation
// and routing over the sampled destinations; Aggregation covers
// merging per-configuration results. Setup and Evaluation sum the time
// spent by concurrent workers, so on a multi-core run they can exceed
// the wall clock; their ratio is what matters.
type Timing struct {
	Setup       time.Duration
	Evaluation  time.Duration
	Aggregation time.Duration
}

// stageClock accumulates stage durations (in nanoseconds) across the
// concurrent configuration workers.
type stageClock struct {
	setup int64
	eval  int64
	agg   int64
}

func (c *stageClock) timing() Timing {
	return Timing{
		Setup:       time.Duration(atomic.LoadInt64(&c.setup)),
		Evaluation:  time.Duration(atomic.LoadInt64(&c.eval)),
		Aggregation: time.Duration(atomic.LoadInt64(&c.agg)),
	}
}

// Run executes the full evaluation and returns one Metrics per fault
// count, in the order of cfg.FaultCounts.
func Run(cfg Config) ([]Metrics, error) {
	ms, _, err := RunTimed(cfg)
	return ms, err
}

// RunTimed is Run with a per-stage timing breakdown of the work done.
func RunTimed(cfg Config) ([]Metrics, Timing, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Timing{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Metrics, 0, len(cfg.FaultCounts))
	var clk stageClock
	for _, k := range cfg.FaultCounts {
		m, err := runPoint(cfg, k, rng, &clk)
		if err != nil {
			return nil, Timing{}, err
		}
		out = append(out, m)
	}
	return out, clk.timing(), nil
}

// configResult is one configuration's contribution to a point.
type configResult struct {
	affectedFrac  float64
	blockDisabled int
	blockCount    int
	mccDisabled   int
	mccCount      int
	infoGlobal    float64
	infoLimited   float64
	infoRatio     float64
	infoMeasured  int

	exist         int
	routerPlain   [2]int
	routerAssured [2]int
	ext2Dir       [2][2]int
	ext3Latin     [2][3]int
	radiusSafe    [2]int
	dfsDelivered  [2]int
	dfsStretch    [2]float64
	safe          [2]int
	ext1Min       [2]int
	ext1Sub       [2]int
	ext2          [2][4]int
	ext3          [2][3]int
	strat         [2][4]int
	nSamples      int
}

// runPoint samples cfg.Configurations fault patterns with k faults and
// aggregates all metrics. Configurations are independent, so they run
// on a worker pool; each gets its own deterministic seed drawn from
// the point's stream, and partial results merge in configuration order,
// which keeps every run bit-for-bit reproducible. Each worker owns one
// scenario arena reused across the configurations it processes, so the
// per-node grids are allocated once per point rather than once per
// configuration.
func runPoint(cfg Config, k int, rng *rand.Rand, clk *stageClock) (Metrics, error) {
	msh := mesh.Mesh{Width: cfg.N, Height: cfg.N}
	src := msh.Center()
	met := Metrics{K: k}

	seeds := make([]int64, cfg.Configurations)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	results := make([]configResult, cfg.Configurations)
	errs := make([]error, cfg.Configurations)

	// The deterministic pivot sets (extension 3's recursive centers and
	// Latin spreads) depend only on the quadrant, so they are shared by
	// every configuration of the point. The random pivot sets consume
	// each configuration's RNG stream and stay per-configuration.
	quadrant := mesh.Rect{MinX: src.X, MinY: src.Y, MaxX: cfg.N - 1, MaxY: cfg.N - 1}
	var centers, latins [3][]mesh.Coord
	for li, lvl := range Ext3Levels {
		centers[li] = safety.Pivots(quadrant, lvl, safety.CenterPivots, nil)
		latins[li] = safety.Pivots(quadrant, lvl, safety.LatinPivots, nil)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Configurations {
		workers = cfg.Configurations
	}
	var (
		wg   sync.WaitGroup
		next int64
	)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := NewArena()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= cfg.Configurations {
					return
				}
				// The storage comparison is expensive (it lays out
				// every boundary line); a few configurations per
				// point give a stable average.
				results[c], errs[c] = runConfig(cfg, msh, src, k, seeds[c], c < 3, ar, &centers, &latins, clk)
			}
		}()
	}
	wg.Wait()

	aggStart := time.Now()
	var total configResult
	for c := range results {
		if errs[c] != nil {
			return Metrics{}, errs[c]
		}
		r := &results[c]
		total.affectedFrac += r.affectedFrac
		total.blockDisabled += r.blockDisabled
		total.blockCount += r.blockCount
		total.mccDisabled += r.mccDisabled
		total.mccCount += r.mccCount
		total.infoGlobal += r.infoGlobal
		total.infoLimited += r.infoLimited
		total.infoRatio += r.infoRatio
		total.infoMeasured += r.infoMeasured
		total.exist += r.exist
		total.nSamples += r.nSamples
		for mi := 0; mi < 2; mi++ {
			total.routerPlain[mi] += r.routerPlain[mi]
			total.routerAssured[mi] += r.routerAssured[mi]
			for vi := range total.ext2Dir[mi] {
				total.ext2Dir[mi][vi] += r.ext2Dir[mi][vi]
			}
			for li := range total.ext3Latin[mi] {
				total.ext3Latin[mi][li] += r.ext3Latin[mi][li]
			}
			total.radiusSafe[mi] += r.radiusSafe[mi]
			total.dfsDelivered[mi] += r.dfsDelivered[mi]
			total.dfsStretch[mi] += r.dfsStretch[mi]
			total.safe[mi] += r.safe[mi]
			total.ext1Min[mi] += r.ext1Min[mi]
			total.ext1Sub[mi] += r.ext1Sub[mi]
			for si := range Ext2SegSizes {
				total.ext2[mi][si] += r.ext2[mi][si]
			}
			for li := range Ext3Levels {
				total.ext3[mi][li] += r.ext3[mi][li]
			}
			for si := range total.strat[mi] {
				total.strat[mi][si] += r.strat[mi][si]
			}
		}
	}

	n := float64(total.nSamples)
	met.Samples = total.nSamples
	met.AffectedFracSim = total.affectedFrac / float64(cfg.Configurations)
	met.AffectedFracAnalytic = analytic.ExpectedAffectedFraction(cfg.N, k)
	if total.blockCount > 0 {
		met.DisabledPerBlock = float64(total.blockDisabled) / float64(total.blockCount)
	}
	if total.mccCount > 0 {
		met.DisabledPerMCC = float64(total.mccDisabled) / float64(total.mccCount)
	}
	if total.infoMeasured > 0 {
		met.InfoPerNodeGlobal = total.infoGlobal / float64(total.infoMeasured)
		met.InfoPerNodeLimited = total.infoLimited / float64(total.infoMeasured)
		met.InfoRatio = total.infoRatio / float64(total.infoMeasured)
	}
	met.Existence = float64(total.exist) / n
	for mi := 0; mi < 2; mi++ {
		met.RouterPlain[mi] = float64(total.routerPlain[mi]) / n
		met.RouterAssured[mi] = float64(total.routerAssured[mi]) / n
		for vi := range met.Ext2Dir[mi] {
			met.Ext2Dir[mi][vi] = float64(total.ext2Dir[mi][vi]) / n
		}
		for li := range met.Ext3Latin[mi] {
			met.Ext3Latin[mi][li] = float64(total.ext3Latin[mi][li]) / n
		}
		met.RadiusSafe[mi] = float64(total.radiusSafe[mi]) / n
		met.DFSDelivered[mi] = float64(total.dfsDelivered[mi]) / n
		if total.dfsDelivered[mi] > 0 {
			met.DFSStretch[mi] = total.dfsStretch[mi] / float64(total.dfsDelivered[mi])
		}
		met.Safe[mi] = float64(total.safe[mi]) / n
		met.Ext1Min[mi] = float64(total.ext1Min[mi]) / n
		met.Ext1Sub[mi] = float64(total.ext1Sub[mi]) / n
		for si := range Ext2SegSizes {
			met.Ext2[mi][si] = float64(total.ext2[mi][si]) / n
		}
		for li := range Ext3Levels {
			met.Ext3[mi][li] = float64(total.ext3[mi][li]) / n
		}
		for si := range met.Strategies[mi] {
			met.Strategies[mi][si] = float64(total.strat[mi][si]) / n
		}
	}
	atomic.AddInt64(&clk.agg, int64(time.Since(aggStart)))
	return met, nil
}

// runConfig evaluates every condition on one sampled fault pattern,
// building the scenario inside the worker's arena.
func runConfig(cfg Config, msh mesh.Mesh, src mesh.Coord, k int, seed int64, measureInfo bool, w *Arena, centers, latins *[3][]mesh.Coord, clk *stageClock) (configResult, error) {
	rng := rand.New(rand.NewSource(seed))
	var res configResult

	setupStart := time.Now()
	if err := w.Load(cfg, msh, src, k, rng); err != nil {
		return configResult{}, err
	}

	// Figure 7 and 8 statistics.
	blocked := w.blockMd.Blocked
	rows := safety.AffectedRows(msh, blocked)
	cols := safety.AffectedCols(msh, blocked)
	res.affectedFrac = float64(rows+cols) / float64(2*cfg.N)
	res.blockDisabled = w.bs.DisabledCount()
	res.blockCount = len(w.bs.Blocks)
	res.mccDisabled = w.mcc.DisabledCount()
	res.mccCount = len(w.mcc.Comps)

	// Storage comparison of the two information models.
	if measureInfo {
		rep := infocost.Measure(msh, blocked, w.bs.Blocks)
		res.infoGlobal = rep.PerNodeGlobal()
		res.infoLimited = rep.PerNodeLimited()
		res.infoRatio = rep.Ratio()
		res.infoMeasured = 1
	}

	// The random pivot set consumes this configuration's RNG stream, so
	// unlike the deterministic sets it cannot be hoisted out.
	quadrant := mesh.Rect{MinX: src.X, MinY: src.Y, MaxX: cfg.N - 1, MaxY: cfg.N - 1}
	randomPivots := safety.Pivots(quadrant, core.PivotLevels, safety.RandomPivots, rng)

	strategies := [4]core.Strategy{
		{UseExt1: true, UseExt2: true, SegSize: core.StrategySegSize},
		{UseExt1: true, UseExt3: true, Pivots: randomPivots},
		{UseExt2: true, SegSize: core.StrategySegSize, UseExt3: true, Pivots: randomPivots},
		{UseExt1: true, UseExt2: true, SegSize: core.StrategySegSize, UseExt3: true, Pivots: randomPivots},
	}

	models := [2]*core.Model{&w.blockMd, &w.mccMd}
	routers := [2]*route.Router{
		route.NewRouter(msh, w.blockMd.Blocked),
		route.NewRouter(msh, w.mccMd.Blocked),
	}
	atomic.AddInt64(&clk.setup, int64(time.Since(setupStart)))
	evalStart := time.Now()
	strategy4 := strategies[3]
	var pathBuf []mesh.Coord // reused across all destinations and models
	for di := 0; di < cfg.DestsPerConfig; di++ {
		d := w.sampleDest(rng)
		res.nSamples++
		if w.reach.CanReach(d) {
			res.exist++
		}
		for mi, md := range models {
			// End-to-end router success (not measured by the paper):
			// plain single-phase, then strategy-4 two-phase through
			// the witness waypoints.
			out, err := routers[mi].RouteInto(pathBuf[:0], src, d)
			pathBuf = out
			if err == nil && route.Path(out).Minimal() {
				res.routerPlain[mi]++
			}
			if p, err := route.DFSRoute(msh, models[mi].Blocked, src, d); err == nil {
				res.dfsDelivered[mi]++
				res.dfsStretch[mi] += float64(p.Hops()) / float64(mesh.Distance(src, d))
			}
			if a := md.Evaluate(src, d, strategy4); a.Verdict == core.Minimal {
				if p, err := routers[mi].RouteVia(src, d, a.Via()...); err == nil && p.Minimal() {
					res.routerAssured[mi]++
				}
			}
			if md.Safe(src, d) {
				res.safe[mi]++
			}
			if md.RadiusSafe(src, d) {
				res.radiusSafe[mi]++
			}
			a := md.Extension1(src, d)
			if a.Verdict == core.Minimal {
				res.ext1Min[mi]++
			}
			if a.Verdict != core.Unknown {
				res.ext1Sub[mi]++
			}
			for si, seg := range Ext2SegSizes {
				if md.Extension2(src, d, seg).Verdict == core.Minimal {
					res.ext2[mi][si]++
				}
			}
			for li := range Ext3Levels {
				if md.Extension3(src, d, centers[li]).Verdict == core.Minimal {
					res.ext3[mi][li]++
				}
				if md.Extension3(src, d, latins[li]).Verdict == core.Minimal {
					res.ext3Latin[mi][li]++
				}
			}
			for vi, seg := range [2]int{core.StrategySegSize, 0} {
				if md.Extension2Directional(src, d, seg).Verdict == core.Minimal {
					res.ext2Dir[mi][vi]++
				}
			}
			for si, st := range strategies {
				if md.Evaluate(src, d, st).Verdict == core.Minimal {
					res.strat[mi][si]++
				}
			}
		}
	}
	atomic.AddInt64(&clk.eval, int64(time.Since(evalStart)))
	return res, nil
}

// Arena is a per-worker scratch area holding every grid and model one
// fault configuration needs: the scenario, both fault-model labelings,
// their blocked grids and safety-level models, and the existence grid.
// A fresh arena allocates its grids on the first Load; subsequent
// Loads rebuild everything in place, so a simulation worker that
// evaluates many configurations over the same mesh allocates the
// per-node grids exactly once. Load invalidates every result
// previously read from the arena; an arena must not be shared between
// goroutines.
type Arena struct {
	m   mesh.Mesh
	src mesh.Coord

	sc    *fault.Scenario
	bs    *fault.BlockSet
	mcc   *fault.MCCSet
	reach *wang.Reach

	blockMd core.Model
	mccMd   core.Model

	blockGrid []bool
	mccGrid   []bool
	faultGrid []bool
}

// NewArena returns an empty arena ready for Load.
func NewArena() *Arena {
	return &Arena{}
}

// Load draws fault patterns from rng until the source lies outside
// every faulty block, then rebuilds both fault models and the
// existence grid in place. It consumes exactly the same RNG stream as
// building the scenario from scratch, so results are bit-for-bit
// identical to the allocate-per-configuration path.
func (w *Arena) Load(cfg Config, m mesh.Mesh, src mesh.Coord, k int, rng *rand.Rand) error {
	for attempt := 0; attempt < 1000; attempt++ {
		var (
			faults []mesh.Coord
			err    error
		)
		notSrc := func(c mesh.Coord) bool { return c == src }
		if cfg.Clusters > 0 {
			faults, err = fault.ClusteredFaults(m, k, cfg.Clusters, cfg.ClusterSpread, rng, notSrc)
		} else {
			faults, err = fault.RandomFaults(m, k, rng, notSrc)
		}
		if err != nil {
			return err
		}
		if w.sc == nil || w.sc.M != m {
			w.sc, err = fault.NewScenario(m, faults)
		} else {
			err = w.sc.Reset(faults)
		}
		if err != nil {
			return err
		}
		w.bs = fault.BuildBlocksInto(w.bs, w.sc)
		if w.bs.InBlock(src) {
			continue // the paper assumes the source outside every block
		}
		w.m, w.src = m, src
		w.mcc = fault.BuildMCCInto(w.mcc, w.sc, fault.TypeOne)
		w.blockGrid = w.bs.BlockedGridInto(w.blockGrid)
		if err := w.blockMd.Reset(m, w.blockGrid); err != nil {
			return err
		}
		w.mccGrid = w.mcc.BlockedGridInto(w.mccGrid)
		if err := w.mccMd.Reset(m, w.mccGrid); err != nil {
			return err
		}
		if cap(w.faultGrid) < m.Size() {
			w.faultGrid = make([]bool, m.Size())
		} else {
			w.faultGrid = w.faultGrid[:m.Size()]
			clear(w.faultGrid)
		}
		for _, f := range faults {
			w.faultGrid[m.Index(f)] = true
		}
		w.reach = wang.ReachFromInto(w.reach, m, src, w.faultGrid)
		return nil
	}
	return fmt.Errorf("sim: could not place %d faults with the source outside every block", k)
}

// LoadFaults rebuilds the arena's block-model state in place for an
// explicit fault list: the scenario, fault blocks, blocked grid, the
// safety-level model, the fault grid, and the existence reach from
// src. Unlike Load it never rejects a pattern (callers decide what a
// blocked source means) and skips the MCC model, which the reliability
// engine does not consult. Warm calls over a fixed mesh are
// allocation-free.
func (w *Arena) LoadFaults(m mesh.Mesh, src mesh.Coord, faults []mesh.Coord) error {
	var err error
	if w.sc == nil || w.sc.M != m {
		w.sc, err = fault.NewScenario(m, faults)
	} else {
		err = w.sc.Reset(faults)
	}
	if err != nil {
		return err
	}
	w.m, w.src = m, src
	w.bs = fault.BuildBlocksInto(w.bs, w.sc)
	w.blockGrid = w.bs.BlockedGridInto(w.blockGrid)
	if err := w.blockMd.Reset(m, w.blockGrid); err != nil {
		return err
	}
	if cap(w.faultGrid) < m.Size() {
		w.faultGrid = make([]bool, m.Size())
	} else {
		w.faultGrid = w.faultGrid[:m.Size()]
		clear(w.faultGrid)
	}
	for _, f := range faults {
		w.faultGrid[m.Index(f)] = true
	}
	w.reach = wang.ReachFromInto(w.reach, m, src, w.faultGrid)
	return nil
}

// Blocks returns the fault blocks of the last Load/LoadFaults. The set
// is owned by the arena and invalidated by the next load.
func (w *Arena) Blocks() *fault.BlockSet { return w.bs }

// BlockModel returns the block-model safety levels of the last
// Load/LoadFaults, invalidated by the next load.
func (w *Arena) BlockModel() *core.Model { return &w.blockMd }

// Reach returns the minimal-path existence grid from the last loaded
// source over the raw fault grid, invalidated by the next load.
func (w *Arena) Reach() *wang.Reach { return w.reach }

// sampleDest draws a destination uniformly from the first-quadrant
// submesh, outside every faulty block.
func (w *Arena) sampleDest(rng *rand.Rand) mesh.Coord {
	loX, loY := w.src.X+1, w.src.Y+1
	for {
		d := mesh.Coord{
			X: loX + rng.Intn(w.m.Width-loX),
			Y: loY + rng.Intn(w.m.Height-loY),
		}
		if !w.bs.InBlock(d) {
			return d
		}
	}
}

// ScalingPoint is one row of the scalability experiment: a mesh side
// and the measured fractions at constant fault density.
type ScalingPoint struct {
	N                  int
	Safe               float64
	Strategy4          float64
	Existence          float64
	InfoRatio          float64
	InfoPerNodeLimited float64
}

// RunScaling sweeps the mesh side at a constant fault density (the
// paper's scalability motivation): conditions are evaluated exactly as
// in Run, with k = density * n^2 faults per configuration.
func RunScaling(sides []int, density float64, configurations, dests int, seed int64) ([]ScalingPoint, error) {
	if density < 0 || density > 0.25 {
		return nil, fmt.Errorf("sim: fault density %v out of range", density)
	}
	var out []ScalingPoint
	for _, n := range sides {
		k := int(density * float64(n) * float64(n))
		if k < 1 {
			k = 1
		}
		cfg := Config{
			N:              n,
			FaultCounts:    []int{k},
			Configurations: configurations,
			DestsPerConfig: dests,
			Seed:           seed,
		}
		ms, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		m := ms[0]
		out = append(out, ScalingPoint{
			N:                  n,
			Safe:               m.Safe[0],
			Strategy4:          m.Strategies[0][3],
			Existence:          m.Existence,
			InfoRatio:          m.InfoRatio,
			InfoPerNodeLimited: m.InfoPerNodeLimited,
		})
	}
	return out, nil
}

// ScalingTable formats the scalability sweep.
func ScalingTable(points []ScalingPoint, density float64) *Table {
	t := &Table{
		ID:     "scaling",
		Title:  fmt.Sprintf("scalability at %.2f%% fault density", 100*density),
		XLabel: "mesh side",
		Columns: []string{
			"safe source", "strategy 4", "existence", "limited ints/node", "savings ratio",
		},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, TableRow{K: p.N, Values: []float64{
			p.Safe, p.Strategy4, p.Existence, p.InfoPerNodeLimited, p.InfoRatio,
		}})
	}
	return t
}
