package sim

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func testConfig() Config {
	return Config{
		N:              40,
		FaultCounts:    []int{4, 10, 20, 40},
		Configurations: 6,
		DestsPerConfig: 25,
		Seed:           7,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Config) {}},
		{name: "tiny mesh", mutate: func(c *Config) { c.N = 2 }, wantErr: true},
		{name: "no counts", mutate: func(c *Config) { c.FaultCounts = nil }, wantErr: true},
		{name: "negative count", mutate: func(c *Config) { c.FaultCounts = []int{-1} }, wantErr: true},
		{name: "huge count", mutate: func(c *Config) { c.FaultCounts = []int{c.N * c.N} }, wantErr: true},
		{name: "zero configs", mutate: func(c *Config) { c.Configurations = 0 }, wantErr: true},
		{name: "zero dests", mutate: func(c *Config) { c.DestsPerConfig = 0 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.N != 200 || len(cfg.FaultCounts) != 20 {
		t.Errorf("default config not paper scale: N=%d, %d counts", cfg.N, len(cfg.FaultCounts))
	}
	if cfg.FaultCounts[0] != 10 || cfg.FaultCounts[19] != 200 {
		t.Errorf("fault counts wrong: %v", cfg.FaultCounts)
	}
}

func TestConfigScale(t *testing.T) {
	cfg := DefaultConfig().Scale(1, 4)
	if cfg.N != 50 {
		t.Errorf("scaled N = %d, want 50", cfg.N)
	}
	if cfg.FaultCounts[0] != 2 || cfg.FaultCounts[19] != 50 {
		t.Errorf("scaled counts wrong: %v", cfg.FaultCounts)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
}

// TestRunInvariants runs a reduced evaluation and checks the structural
// invariants every figure of the paper exhibits.
func TestRunInvariants(t *testing.T) {
	cfg := testConfig()
	ms, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ms) != len(cfg.FaultCounts) {
		t.Fatalf("got %d metrics, want %d", len(ms), len(cfg.FaultCounts))
	}
	inUnit := func(name string, v float64) {
		t.Helper()
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v outside [0,1]", name, v)
		}
	}
	for i, m := range ms {
		if m.K != cfg.FaultCounts[i] {
			t.Fatalf("metrics %d for k=%d, want %d", i, m.K, cfg.FaultCounts[i])
		}
		if m.Samples != cfg.Configurations*cfg.DestsPerConfig {
			t.Fatalf("k=%d: %d samples, want %d", m.K, m.Samples, cfg.Configurations*cfg.DestsPerConfig)
		}
		inUnit("existence", m.Existence)
		inUnit("affected sim", m.AffectedFracSim)
		inUnit("affected analytic", m.AffectedFracAnalytic)
		if m.DisabledPerBlock < 0 || m.DisabledPerMCC < 0 {
			t.Fatalf("k=%d: negative disabled counts", m.K)
		}
		// The MCC model never disables more nodes than the block model.
		if m.DisabledPerMCC > m.DisabledPerBlock+1e-9 {
			t.Fatalf("k=%d: MCC disables more than blocks (%v > %v)", m.K, m.DisabledPerMCC, m.DisabledPerBlock)
		}

		for mi := 0; mi < 2; mi++ {
			inUnit("safe", m.Safe[mi])
			inUnit("ext1min", m.Ext1Min[mi])
			inUnit("ext1sub", m.Ext1Sub[mi])
			// Soundness at aggregate level: no condition ensures more
			// than exist.
			for _, v := range []float64{m.Safe[mi], m.Ext1Min[mi], m.Ext2[mi][0], m.Ext3[mi][2], m.Strategies[mi][3]} {
				if v > m.Existence+1e-9 {
					t.Fatalf("k=%d model %d: ensured %v exceeds existence %v", m.K, mi, v, m.Existence)
				}
			}
			// Containment orderings.
			if m.Ext1Min[mi] < m.Safe[mi]-1e-9 {
				t.Fatalf("k=%d: ext1 below safe source", m.K)
			}
			if m.Ext1Sub[mi] < m.Ext1Min[mi]-1e-9 {
				t.Fatalf("k=%d: ext1 sub-min below ext1 min", m.K)
			}
			for si := range Ext2SegSizes {
				inUnit("ext2", m.Ext2[mi][si])
				if m.Ext2[mi][si] < m.Safe[mi]-1e-9 {
					t.Fatalf("k=%d: ext2 below safe source", m.K)
				}
				if m.Ext2[mi][si] > m.Ext2[mi][0]+1e-9 {
					t.Fatalf("k=%d: ext2 seg=%d above seg=1", m.K, Ext2SegSizes[si])
				}
			}
			for li := range Ext3Levels {
				inUnit("ext3", m.Ext3[mi][li])
				if li > 0 && m.Ext3[mi][li] < m.Ext3[mi][li-1]-1e-9 {
					t.Fatalf("k=%d: ext3 levels not monotone", m.K)
				}
			}
			// The naive radius condition is weaker than the 4-tuple.
			if m.RadiusSafe[mi] > m.Safe[mi]+1e-9 {
				t.Fatalf("k=%d: radius-safe %v above 4-tuple safe %v", m.K, m.RadiusSafe[mi], m.Safe[mi])
			}
			// Router success: plain <= assured ceiling relations.
			if m.RouterAssured[mi] > m.Existence+1e-9 {
				t.Fatalf("k=%d: assured routing %v exceeds existence %v", m.K, m.RouterAssured[mi], m.Existence)
			}
			if m.RouterAssured[mi] < m.Strategies[mi][3]-1e-9 {
				t.Fatalf("k=%d: assured routing %v below strategy-4 guarantee %v (protocol failed a promise)",
					m.K, m.RouterAssured[mi], m.Strategies[mi][3])
			}
			// Strategy 4 dominates its parts.
			s := m.Strategies[mi]
			if s[3] < s[0]-1e-9 || s[3] < math.Max(s[1], s[2])-1e-9 {
				t.Fatalf("k=%d: strategy 4 not dominant: %v", m.K, s)
			}
			for _, v := range s {
				inUnit("strategy", v)
			}
		}
	}
	// Few faults keep existence near 1.
	if ms[0].Existence < 0.95 {
		t.Errorf("existence at k=%d is %v, expected near 1", ms[0].K, ms[0].Existence)
	}
	// Analytic and simulated affected fractions stay close (Figure 7).
	for _, m := range ms {
		if math.Abs(m.AffectedFracSim-m.AffectedFracAnalytic) > 0.1 {
			t.Errorf("k=%d: affected sim %v vs analytic %v", m.K, m.AffectedFracSim, m.AffectedFracAnalytic)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.N = 1
	if _, err := Run(cfg); err == nil {
		t.Error("Run should reject invalid config")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.FaultCounts = []int{15}
	cfg.Configurations = 3
	cfg.DestsPerConfig = 10
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("same seed gave different metrics:\n%+v\n%+v", a[0], b[0])
	}
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] {
		t.Error("different seed gave identical metrics (suspicious)")
	}
}

func TestTables(t *testing.T) {
	cfg := testConfig()
	cfg.FaultCounts = []int{5, 15}
	cfg.Configurations = 3
	cfg.DestsPerConfig = 10
	ms, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tables := AllTables(ms)
	if len(tables) != 17 {
		t.Fatalf("AllTables returned %d tables, want 17", len(tables))
	}
	seen := make(map[string]bool)
	for _, tb := range tables {
		if seen[tb.ID] {
			t.Errorf("duplicate table id %q", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) != len(cfg.FaultCounts) {
			t.Errorf("table %s has %d rows, want %d", tb.ID, len(tb.Rows), len(cfg.FaultCounts))
		}
		for _, r := range tb.Rows {
			if len(r.Values) != len(tb.Columns) {
				t.Errorf("table %s row k=%d has %d values for %d columns", tb.ID, r.K, len(r.Values), len(tb.Columns))
			}
		}
		var sb strings.Builder
		if err := tb.Format(&sb); err != nil {
			t.Errorf("Format(%s): %v", tb.ID, err)
		}
		out := sb.String()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, "faults") {
			t.Errorf("table %s formatting missing header: %q", tb.ID, out[:60])
		}
	}
	// Column extraction.
	f9 := Figure9(ms, 0)
	col := f9.Column("existence")
	if len(col) != len(cfg.FaultCounts) {
		t.Errorf("Column(existence) = %v", col)
	}
	if f9.Column("nope") != nil {
		t.Error("missing column should return nil")
	}
}

func TestWriteJSON(t *testing.T) {
	cfg := testConfig()
	cfg.FaultCounts = []int{5}
	cfg.Configurations = 2
	cfg.DestsPerConfig = 5
	ms, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, AllTables(ms)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Tables []struct {
			ID      string   `json:"id"`
			Columns []string `json:"columns"`
			Rows    []struct {
				Faults int       `json:"faults"`
				Values []float64 `json:"values"`
			} `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Tables) != 17 {
		t.Fatalf("decoded %d tables, want 17", len(decoded.Tables))
	}
	for _, tb := range decoded.Tables {
		if len(tb.Rows) != 1 || tb.Rows[0].Faults != 5 {
			t.Errorf("table %s rows wrong: %+v", tb.ID, tb.Rows)
		}
		if len(tb.Rows[0].Values) != len(tb.Columns) {
			t.Errorf("table %s value/column mismatch", tb.ID)
		}
	}
}

func TestRunClusteredWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.FaultCounts = []int{30}
	cfg.Configurations = 4
	cfg.DestsPerConfig = 15
	cfg.Clusters = 3
	cfg.ClusterSpread = 3
	ms, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run clustered: %v", err)
	}
	if ms[0].Samples != 60 {
		t.Fatalf("samples = %d", ms[0].Samples)
	}
	// Clustered faults form larger regions: disabled nodes per block
	// should be clearly above the uniform workload's.
	uniform := cfg
	uniform.Clusters = 0
	um, err := Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].DisabledPerBlock <= um[0].DisabledPerBlock {
		t.Errorf("clustered disabled/block %v not above uniform %v",
			ms[0].DisabledPerBlock, um[0].DisabledPerBlock)
	}
	cfg.Clusters = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative clusters should fail")
	}
}

func TestRunScaling(t *testing.T) {
	points, err := RunScaling([]int{24, 48}, 0.005, 3, 10, 5)
	if err != nil {
		t.Fatalf("RunScaling: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Safe < 0 || p.Safe > 1 || p.Existence < p.Strategy4-1e-9 {
			t.Errorf("point %+v inconsistent", p)
		}
	}
	// The savings ratio grows with mesh size at fixed density.
	if points[1].InfoRatio <= points[0].InfoRatio {
		t.Errorf("savings ratio should grow with n: %v vs %v", points[0].InfoRatio, points[1].InfoRatio)
	}
	tb := ScalingTable(points, 0.005)
	if tb.ID != "scaling" || len(tb.Rows) != 2 {
		t.Errorf("table malformed: %+v", tb)
	}
	if _, err := RunScaling([]int{10}, 0.9, 1, 1, 1); err == nil {
		t.Error("absurd density should fail")
	}
}
