package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"extmesh"
	"extmesh/internal/metrics"
	"extmesh/internal/reliability"
)

// newSweepServer returns a reliability-focused test server with its
// own metrics registry and one registered 16x16 mesh for /stats.
func newSweepServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	s := New(opts)
	d, err := extmesh.NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Meshes().Create("m", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postSweep(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/reliability", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestReliabilityParity is the acceptance test tying the endpoint to
// the library: the HTTP response must be byte-identical to marshaling
// the library's own Sweep report for the same configuration.
func TestReliabilityParity(t *testing.T) {
	_, ts := newSweepServer(t, Options{})
	cfg := reliability.Config{
		Width: 24, Height: 24,
		Points:        []reliability.Point{{K: 6}, {P: 0.03}},
		Trials:        32,
		PairsPerTrial: 8,
		Seed:          17,
		CheckEvery:    16,
	}
	code, body := postSweep(t, ts.URL, cfg)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	rep, err := reliability.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != string(want) {
		t.Fatalf("endpoint response diverges from the library report:\n%s\nvs\n%s", got, want)
	}
}

// TestReliabilityCaps covers the structural limits and the cost
// budget.
func TestReliabilityCaps(t *testing.T) {
	_, ts := newSweepServer(t, Options{ReliabilityMaxCost: 1 << 12})
	base := func() reliability.Config {
		return reliability.Config{
			Width: 8, Height: 8,
			Points:        []reliability.Point{{K: 2}},
			Trials:        4,
			PairsPerTrial: 2,
		}
	}
	for name, tc := range map[string]struct {
		mutate func(*reliability.Config)
		status int
	}{
		"huge mesh":      {func(c *reliability.Config) { c.Width = MaxSweepDim + 1 }, http.StatusBadRequest},
		"many points":    {func(c *reliability.Config) { c.Points = make([]reliability.Point, MaxSweepPoints+1) }, http.StatusBadRequest},
		"many trials":    {func(c *reliability.Config) { c.Trials = MaxSweepTrials + 1 }, http.StatusBadRequest},
		"many pairs":     {func(c *reliability.Config) { c.PairsPerTrial = MaxBatch + 1 }, http.StatusBadRequest},
		"invalid config": {func(c *reliability.Config) { c.Points = []reliability.Point{{P: 0.99}} }, http.StatusBadRequest},
		"over budget":    {func(c *reliability.Config) { c.Trials = 1000 }, http.StatusRequestEntityTooLarge},
	} {
		cfg := base()
		tc.mutate(&cfg)
		code, body := postSweep(t, ts.URL, cfg)
		if code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", name, code, tc.status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not machine-readable: %q", name, body)
		}
	}
	// The base config itself stays accepted.
	if code, body := postSweep(t, ts.URL, base()); code != http.StatusOK {
		t.Fatalf("base config rejected: %d %s", code, body)
	}
}

// TestReliabilityShedAndStats pins the sweep gate: with every slot
// held, requests shed with 429 + Retry-After, the counters record it,
// and /stats exposes the whole block.
func TestReliabilityShedAndStats(t *testing.T) {
	s, ts := newSweepServer(t, Options{MaxSweeps: 1})
	cfg := reliability.Config{
		Width: 8, Height: 8,
		Points:        []reliability.Point{{K: 2}},
		Trials:        8,
		PairsPerTrial: 2,
		Seed:          3,
	}

	// Hold the only slot, as a long-running sweep would.
	if !s.sweeps.tryAcquire() {
		t.Fatal("fresh gate refused a slot")
	}
	data, _ := json.Marshal(cfg)
	resp, err := http.Post(ts.URL+"/v1/reliability", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with the gate full, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	s.sweeps.release()

	// With the slot free the same request succeeds and is counted.
	if code, body := postSweep(t, ts.URL, cfg); code != http.StatusOK {
		t.Fatalf("status %d after release: %s", code, body)
	}

	var stats struct {
		Reliability reliabilityStats `json:"reliability"`
	}
	r2, err := http.Get(ts.URL + "/v1/mesh/m/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	got := stats.Reliability
	if got.Sweeps != 1 {
		t.Errorf("stats sweeps = %d, want 1", got.Sweeps)
	}
	if got.Trials != uint64(cfg.Trials) {
		t.Errorf("stats trials = %d, want %d", got.Trials, cfg.Trials)
	}
	if got.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", got.Shed)
	}
	if got.InFlight != 0 {
		t.Errorf("stats in-flight = %d, want 0", got.InFlight)
	}
}
