// Package serve is the routing-as-a-service layer: an HTTP surface
// over named live meshes (extmesh.DynamicNetwork) exposing the query
// plane — single and batch route/condition/existence queries answered
// from version-memoized snapshots — plus fault-injection admin
// endpoints and production plumbing: per-endpoint metrics, request
// logging with IDs, bounded-concurrency admission control with 429
// load shedding, and graceful drain.
//
// The service is deliberately stateless per request, mirroring the
// paper's limited-global-information model: every query is answered
// from the per-mesh shared state (safety levels, reach caches,
// routers), never from per-client session state, so instances scale
// horizontally behind any load balancer.
//
// # Endpoints
//
//	GET    /healthz                              liveness
//	GET    /readyz                               readiness (503 until journal recovery completes)
//	GET    /metrics                              text exposition
//	GET    /debug/vars                           expvar (includes the "extmesh" map)
//	GET    /replication                          replication role, lag and follower status
//	POST   /v1/mesh                              create {name,width,height,faults}
//	GET    /v1/mesh                              list
//	GET    /v1/mesh/{name}                       info + fault list (export blob)
//	PUT    /v1/mesh/{name}                       create/replace from a network blob
//	DELETE /v1/mesh/{name}                       remove
//	POST   /v1/mesh/{name}/route                 Wu-protocol route
//	POST   /v1/mesh/{name}/route-assured         Ensure + two-phase route
//	POST   /v1/mesh/{name}/safe                  Theorem-1 safe condition
//	POST   /v1/mesh/{name}/ensure                strategy cascade verdict
//	POST   /v1/mesh/{name}/has-minimal-path      exact existence
//	POST   /v1/mesh/{name}/route/batch           RouteMany worker-pool batch
//	POST   /v1/mesh/{name}/ensure/batch          EnsureAll batch
//	POST   /v1/mesh/{name}/has-minimal-path/batch  one sweep, many destinations
//	POST   /v1/mesh/{name}/faults                apply fail/recover events (admin)
//	GET    /v1/mesh/{name}/stats                 reach-cache hit rates, vitals, sweep counters
//	POST   /v1/reliability                       Monte Carlo survivability sweep
package serve

import (
	"context"
	"expvar"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"extmesh/internal/journal"
	"extmesh/internal/metrics"
)

// Options configures a Server. The zero value serves with defaults.
type Options struct {
	// MaxInFlight bounds concurrently executing /v1 requests;
	// 0 selects 4*GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxInFlight; 0 selects 4*MaxInFlight. Requests beyond the queue
	// are shed immediately with 429.
	MaxQueue int
	// QueueWait bounds how long a queued request waits before being
	// shed with 429; 0 selects 100ms.
	QueueWait time.Duration
	// Log receives one access-log line per request; nil disables
	// request logging.
	Log *log.Logger
	// Metrics is the instrument registry; nil selects the process-wide
	// default (which the library hot paths already feed).
	Metrics *metrics.Registry
	// Journal, when non-nil, makes every registry mutation durable:
	// mesh creations, uploads and deletions, fault batches, and admin
	// inject schedules are appended to the store before the response
	// acknowledges them. The server starts not-ready; call Recover
	// (which replays the store into the registry) before serving.
	Journal *journal.Store
	// MaxSweeps bounds concurrently executing /v1/reliability sweeps —
	// a separate, much smaller gate than MaxInFlight, because one sweep
	// is minutes of CPU where a route query is microseconds. Requests
	// beyond it are shed with 429; 0 selects 2.
	MaxSweeps int
	// ReliabilityMaxCost caps the work of one accepted sweep, in the
	// cost units of reliability.Config.Cost (trials times per-trial
	// work). Costlier requests are rejected with 413; 0 selects 1<<28.
	ReliabilityMaxCost int64
	// NodeID names this node in cluster status and failover tie-breaks.
	// Empty is fine for standalone servers; failover-managed nodes need
	// distinct IDs (the daemon defaults it to the replication address).
	NodeID string
	// RepHeartbeat is the primary→replica heartbeat interval; 0 selects
	// 500ms. Failover tests shrink it so sub-second deadlines work.
	RepHeartbeat time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 100 * time.Millisecond
	}
	if o.Metrics == nil {
		o.Metrics = metrics.Default()
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 2
	}
	if o.ReliabilityMaxCost <= 0 {
		o.ReliabilityMaxCost = 1 << 28
	}
	if o.RepHeartbeat <= 0 {
		o.RepHeartbeat = repHeartbeatEvery
	}
	return o
}

// Cluster roles. roleAuto preserves the pre-failover behavior: the
// role is derived from whether the node streams (primary) or follows
// (replica). The failover controller pins an explicit role and flips
// it on promotion/demotion.
const (
	roleAuto int32 = iota
	rolePrimary
	roleFollower
)

// Server is the meshserved request handler: the mesh registry, the
// admission gate and the endpoint mux.
type Server struct {
	opts    Options
	meshes  *Registry
	metrics *metrics.Registry
	admit   *admission
	sweeps  *sweepGate
	persist *persister
	ready   atomic.Bool
	handler http.Handler

	// journalSeq is the last durably applied sequence number — appended
	// on a primary, replicated on a replica. Every /v1 response carries
	// it as X-Journal-Seq so cluster clients can bound read staleness.
	journalSeq atomic.Uint64
	// readOnly rejects registry mutations with 403 — the replica mode,
	// where the only legal write path is the replication stream.
	readOnly atomic.Bool
	// epoch is the cluster epoch: monotonic, bumped by serve.Promote,
	// persisted as an OpEpoch journal record, stamped on every
	// replication frame and /v1 response (X-Cluster-Epoch). Writes and
	// frames from an older epoch are fenced.
	epoch atomic.Uint64
	// role is the failover-pinned cluster role (roleAuto outside
	// failover-managed clusters).
	role atomic.Int32
	// fenced rejects writes on a primary that has lost its follower
	// lease: with no follower able to acknowledge replication, an
	// acknowledged write could be silently discarded by a later
	// promotion, so the node refuses to acknowledge at all.
	fenced atomic.Bool
	// clientNudge is the unix-nano time of the last failover nudge
	// driven by a client's X-Cluster-Epoch header. The header is
	// unauthenticated, so nudges on that evidence alone are rate
	// limited — an attacker sending inflated epochs gets 409s but
	// cannot keep the prober spinning.
	clientNudge atomic.Int64

	hub      *repHub
	replica  atomic.Pointer[Replica]
	failover atomic.Pointer[Failover]

	epochGauge   *metrics.Gauge
	fencedGauge  *metrics.Gauge
	promotions   *metrics.Counter
	fencedWrites *metrics.Counter
}

// New assembles a server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		metrics: opts.Metrics,
		meshes:  NewRegistry(opts.Metrics),
		admit:   newAdmission(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait, opts.Metrics),
		sweeps:  newSweepGate(opts.MaxSweeps, opts.Metrics),
	}
	s.epochGauge = opts.Metrics.Gauge("cluster_epoch")
	s.fencedGauge = opts.Metrics.Gauge("cluster_fenced")
	s.promotions = opts.Metrics.Counter("cluster_promotions_total")
	s.fencedWrites = opts.Metrics.Counter("cluster_fenced_writes_total")
	s.persist = &persister{
		store:   opts.Journal,
		reg:     s.meshes,
		noteSeq: s.journalSeq.Store,
		subs:    make(map[*repSub]struct{}),
	}
	s.hub = newRepHub(s)
	// A journaled server is not ready until Recover has replayed the
	// store; a memory-only server has nothing to recover.
	s.ready.Store(opts.Journal == nil)
	s.metrics.PublishExpvar()

	mux := http.NewServeMux()
	// Operational endpoints bypass admission: a saturated server must
	// still answer health checks and publish its saturation.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.metrics.WriteText(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /replication", s.handleReplicationStatus)

	// Query and admin endpoints: metrics per endpoint, one shared
	// admission gate. Innermost, every response is stamped with the
	// durable sequence number it was answered at.
	v1 := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.Handle(pattern, instrument(s.metrics, endpoint, s.admit.wrap(s.stampSeq(h))))
	}
	v1("POST /v1/mesh", "mesh_create", s.handleCreateMesh)
	v1("GET /v1/mesh", "mesh_list", s.handleListMeshes)
	v1("GET /v1/mesh/{name}", "mesh_get", s.handleGetMesh)
	v1("PUT /v1/mesh/{name}", "mesh_upload", s.handleUploadMesh)
	v1("DELETE /v1/mesh/{name}", "mesh_delete", s.handleDeleteMesh)
	v1("POST /v1/mesh/{name}/route", "route", s.handleRoute)
	v1("POST /v1/mesh/{name}/route-assured", "route_assured", s.handleRouteAssured)
	v1("POST /v1/mesh/{name}/safe", "safe", s.handleSafe)
	v1("POST /v1/mesh/{name}/ensure", "ensure", s.handleEnsure)
	v1("POST /v1/mesh/{name}/has-minimal-path", "has_minimal_path", s.handleHasMinimalPath)
	v1("POST /v1/mesh/{name}/route/batch", "route_batch", s.handleRouteBatch)
	v1("POST /v1/mesh/{name}/ensure/batch", "ensure_batch", s.handleEnsureBatch)
	v1("POST /v1/mesh/{name}/has-minimal-path/batch", "has_minimal_path_batch", s.handleHasMinimalPathBatch)
	v1("POST /v1/mesh/{name}/faults", "faults", s.handleFaults)
	v1("GET /v1/mesh/{name}/stats", "stats", s.handleStats)
	v1("POST /v1/reliability", "reliability", s.handleReliability)

	s.handler = logging(opts.Log, mux)
	return s
}

// Handler returns the fully assembled middleware chain.
func (s *Server) Handler() http.Handler { return s.handler }

// Meshes exposes the registry, so tests can seed fixtures directly.
// Meshes registered this way bypass the journal; durable registration
// goes through RegisterMesh.
func (s *Server) Meshes() *Registry { return s.meshes }

// SetReady flips the /readyz verdict. Recover calls it on completion;
// it is exported for daemons with additional boot phases.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports whether /readyz currently answers 200.
func (s *Server) Ready() bool { return s.ready.Load() }

// SetReadOnly flips replica mode: mutations answer 403 and clients are
// pointed at the primary. Queries are unaffected.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether mutations are currently rejected.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// JournalSeq returns the last durably applied sequence number — the
// value /v1 responses carry as X-Journal-Seq.
func (s *Server) JournalSeq() uint64 { return s.journalSeq.Load() }

// Epoch returns the current cluster epoch — the value /v1 responses
// carry as X-Cluster-Epoch and every replication frame is stamped with.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// setEpoch raises the cluster epoch; it never regresses.
func (s *Server) setEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur {
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			s.epochGauge.Set(int64(e))
			return
		}
	}
}

// NodeID returns this node's cluster identity.
func (s *Server) NodeID() string { return s.opts.NodeID }

// Fenced reports whether writes are currently lease-fenced.
func (s *Server) Fenced() bool { return s.fenced.Load() }

func (s *Server) setFenced(f bool) {
	if s.fenced.Swap(f) != f {
		if f {
			s.fencedGauge.Set(1)
		} else {
			s.fencedGauge.Set(0)
		}
	}
}

// roleString names the node's current cluster role: the explicit
// failover-pinned role when one is set, otherwise derived from whether
// the node follows a primary or streams to followers.
func (s *Server) roleString() string {
	switch s.role.Load() {
	case rolePrimary:
		return "primary"
	case roleFollower:
		return "replica"
	}
	if s.replica.Load() != nil {
		return "replica"
	}
	s.hub.mu.Lock()
	serving := s.hub.serving
	s.hub.mu.Unlock()
	if serving {
		return "primary"
	}
	return "single"
}

// acceptsFollowers reports whether this node may stream records to
// followers: in a failover-managed cluster only the pinned primary
// may; outside one, running ServeReplication is the primary claim.
func (s *Server) acceptsFollowers() bool {
	if s.failover.Load() != nil {
		return s.role.Load() == rolePrimary
	}
	return true
}

// seqWriter stamps X-Journal-Seq at write time (not at dispatch time),
// so a mutation's response carries the sequence number of the mutation
// it just journaled — the watermark cluster clients bound staleness by.
type seqWriter struct {
	http.ResponseWriter
	s       *Server
	stamped bool
}

func (w *seqWriter) stamp() {
	if !w.stamped {
		w.stamped = true
		w.Header().Set("X-Journal-Seq", strconv.FormatUint(w.s.journalSeq.Load(), 10))
		w.Header().Set("X-Cluster-Epoch", strconv.FormatUint(w.s.epoch.Load(), 10))
	}
}

func (w *seqWriter) WriteHeader(code int) {
	w.stamp()
	w.ResponseWriter.WriteHeader(code)
}

func (w *seqWriter) Write(p []byte) (int, error) {
	w.stamp()
	return w.ResponseWriter.Write(p)
}

func (s *Server) stampSeq(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		next(&seqWriter{ResponseWriter: w, s: s}, r)
	}
}

// Serve runs srv on l until ctx is canceled, then drains gracefully:
// the listener closes (new connections are refused), in-flight
// requests get up to drainTimeout to complete, and only then are
// stragglers cut off. It returns nil on a clean drain, the serve error
// if the listener failed first, and the shutdown error if the drain
// timed out.
func Serve(ctx context.Context, srv *http.Server, l net.Listener, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return err
	}
	<-errc // srv.Serve has returned http.ErrServerClosed
	return nil
}
