package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"extmesh"
	"extmesh/internal/inject"
	"extmesh/internal/journal"
	"extmesh/internal/mesh"
)

// Request-size limits: a decoded batch is capped like the encoding
// layer caps mesh dimensions (extmesh.MaxDecodeNodes), so untrusted
// input cannot make one request allocate unbounded result sets.
const (
	// MaxBatch bounds the pairs or destinations of one batch request.
	MaxBatch = 4096
	// MaxRequestBytes bounds a request body; the largest legitimate
	// body is an uploaded network blob (dimensions plus fault list).
	MaxRequestBytes = 8 << 20
)

// errorResponse is the uniform error body. Code is a stable
// machine-readable discriminator ("read_only", "fenced", "stale_epoch",
// "replication_unconfirmed") so cluster clients can branch on the
// failure class without parsing prose; plain errors omit it.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) // write errors mean a gone client; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeMutationError maps a persister failure to a status: a journal
// write failure is the server's fault (500, the mutation applied in
// memory but is not crash-safe); anything else is the caller's, at the
// given status.
func writeMutationError(w http.ResponseWriter, err error, callerStatus int) {
	var je *journalError
	if errors.As(err, &je) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeError(w, callerStatus, "%v", err)
}

// decodeBody parses the JSON request body into v, enforcing the size
// cap and rejecting trailing garbage.
func decodeBody(r *http.Request, v any) error {
	body := http.MaxBytesReader(nil, r.Body, MaxRequestBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", int64(MaxRequestBytes))
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data after JSON value")
	}
	return nil
}

// parseModel resolves the optional "model" request field.
func parseModel(s string) (extmesh.FaultModel, error) {
	switch s {
	case "", "blocks":
		return extmesh.Blocks, nil
	case "mcc":
		return extmesh.MCC, nil
	default:
		return 0, fmt.Errorf("unknown fault model %q (want blocks or mcc)", s)
	}
}

// meshFor resolves the {name} path wildcard to a live mesh, writing
// the 404 itself when absent.
func (s *Server) meshFor(w http.ResponseWriter, r *http.Request) (string, *extmesh.DynamicNetwork) {
	name := r.PathValue("name")
	d := s.meshes.Get(name)
	if d == nil {
		writeError(w, http.StatusNotFound, "mesh %q not registered", name)
	}
	return name, d
}

// snapshotFor resolves the mesh and its frozen query snapshot.
func (s *Server) snapshotFor(w http.ResponseWriter, r *http.Request) (string, *extmesh.DynamicNetwork, *extmesh.Network) {
	name, d := s.meshFor(w, r)
	if d == nil {
		return name, nil, nil
	}
	n, err := d.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot failed: %v", err)
		return name, nil, nil
	}
	return name, d, n
}

// meshInfo is the summary the listing and info endpoints share.
type meshInfo struct {
	Name    string `json:"name"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Faults  int    `json:"faults"`
	Version uint64 `json:"version"`
}

func infoOf(name string, d *extmesh.DynamicNetwork) meshInfo {
	return meshInfo{
		Name:    name,
		Width:   d.Width(),
		Height:  d.Height(),
		Faults:  d.FaultCount(),
		Version: d.Version(),
	}
}

// --- mesh lifecycle -------------------------------------------------

// createRequest is the POST /v1/mesh body: a named mesh specification.
type createRequest struct {
	Name   string          `json:"name"`
	Width  int             `json:"width"`
	Height int             `json:"height"`
	Faults []extmesh.Coord `json:"faults"`
}

// denyWrite is the mutation gate, checked before any state changes.
// Three refusals, in precedence order:
//
//   - stale_epoch (409): the client has observed a newer cluster epoch
//     than this node knows — a promotion happened past us, so this node
//     must not accept the write even if it still believes it is
//     primary. The failover controller is nudged to re-probe, but only
//     at a bounded rate: the header is unauthenticated client input,
//     and a fabricated epoch the node can never corroborate must not
//     become a lever for keeping the prober spinning. The refusal
//     itself stays per-request and carries no trust — it never alters
//     node state.
//   - read_only (403): the node is a replica; the replication stream
//     is its only legal write path.
//   - fenced (503 + Retry-After): the node is primary by role but has
//     lost its lease (no replica confirms it); accepting writes here
//     risks acknowledged-write loss if a promotion is under way.
func (s *Server) denyWrite(w http.ResponseWriter, r *http.Request) bool {
	if eh := r.Header.Get("X-Cluster-Epoch"); eh != "" {
		if e, perr := strconv.ParseUint(eh, 10, 64); perr == nil && e > s.Epoch() {
			s.fencedWrites.Inc()
			if now, last := time.Now().UnixNano(), s.clientNudge.Load(); now-last >= int64(clientNudgeMinGap) &&
				s.clientNudge.CompareAndSwap(last, now) {
				s.nudgeFailover()
			}
			writeErrorCode(w, http.StatusConflict, "stale_epoch",
				"node epoch %d is behind client-observed epoch %d: a newer primary exists", s.Epoch(), e)
			return true
		}
	}
	if s.readOnly.Load() {
		writeErrorCode(w, http.StatusForbidden, "read_only",
			"node is a read-only replica: route mutations to the primary")
		return true
	}
	if s.fenced.Load() {
		s.fencedWrites.Inc()
		w.Header().Set("Retry-After", "1")
		writeErrorCode(w, http.StatusServiceUnavailable, "fenced",
			"primary lease lost: no replica is confirming writes; retry shortly")
		return true
	}
	return false
}

// confirmWrite gates a mutation acknowledgment on replication in
// failover-managed clusters: the response is held until one follower
// acks the record, because a promotion only preserves writes the new
// primary had applied. On timeout the client gets a 503 — the write
// applied locally but MUST NOT be treated as cluster-durable (it may
// vanish if a failover intervenes). Outside managed clusters this is a
// no-op, preserving single-primary availability semantics.
func (s *Server) confirmWrite(w http.ResponseWriter) bool {
	if s.failover.Load() == nil || s.persist.store == nil {
		return true
	}
	if err := s.hub.waitAcked(s.journalSeq.Load(), repAckWait); err != nil {
		writeErrorCode(w, http.StatusServiceUnavailable, "replication_unconfirmed",
			"write applied locally but not confirmed by any replica: %v", err)
		return false
	}
	return true
}

func (s *Server) handleCreateMesh(w http.ResponseWriter, r *http.Request) {
	if s.denyWrite(w, r) {
		return
	}
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !ValidName(req.Name) {
		writeError(w, http.StatusBadRequest, "invalid mesh name %q (want 1-64 of [A-Za-z0-9._-])", req.Name)
		return
	}
	// Round-trip through the validated decoder so dimension caps and
	// fault validation are identical to the encoding layer's.
	blob, err := json.Marshal(map[string]any{
		"width": req.Width, "height": req.Height, "faults": req.Faults,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	d, err := extmesh.UnmarshalDynamic(blob)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.persist.create(req.Name, d); err != nil {
		writeMutationError(w, err, http.StatusConflict)
		return
	}
	if !s.confirmWrite(w) {
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(req.Name, d))
}

// handleUploadMesh is PUT /v1/mesh/{name}: create or replace from a
// serialized network blob (Network.MarshalJSON format).
func (s *Server) handleUploadMesh(w http.ResponseWriter, r *http.Request) {
	if s.denyWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	if !ValidName(name) {
		writeError(w, http.StatusBadRequest, "invalid mesh name %q", name)
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, MaxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	d, err := extmesh.UnmarshalDynamic(blob)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	replaced := s.meshes.Get(name) != nil
	if err := s.persist.put(name, d); err != nil {
		writeMutationError(w, err, http.StatusBadRequest)
		return
	}
	if !s.confirmWrite(w) {
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, infoOf(name, d))
}

func (s *Server) handleListMeshes(w http.ResponseWriter, r *http.Request) {
	names := s.meshes.Names()
	out := make([]meshInfo, 0, len(names))
	for _, name := range names {
		if d := s.meshes.Get(name); d != nil {
			out = append(out, infoOf(name, d))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"meshes": out})
}

// handleGetMesh is GET /v1/mesh/{name}: the info plus the full fault
// list — the blob form, so the endpoint doubles as export.
func (s *Server) handleGetMesh(w http.ResponseWriter, r *http.Request) {
	name, d := s.meshFor(w, r)
	if d == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"name":    name,
		"width":   d.Width(),
		"height":  d.Height(),
		"faults":  d.Faults(),
		"version": d.Version(),
	})
}

func (s *Server) handleDeleteMesh(w http.ResponseWriter, r *http.Request) {
	if s.denyWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	existed, err := s.persist.delete(name)
	if err != nil {
		writeMutationError(w, err, http.StatusInternalServerError)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, "mesh %q not registered", name)
		return
	}
	if !s.confirmWrite(w) {
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- single queries -------------------------------------------------

// queryRequest is the shared body of the single-pair query endpoints.
type queryRequest struct {
	Src      extmesh.Coord     `json:"src"`
	Dst      extmesh.Coord     `json:"dst"`
	Model    string            `json:"model"`     // "blocks" (default) or "mcc"
	Strategy *extmesh.Strategy `json:"strategy"`  // nil = DefaultStrategy
	OmitPath bool              `json:"omit_path"` // respond with hop count only
}

func (q *queryRequest) strategy() extmesh.Strategy {
	if q.Strategy != nil {
		return *q.Strategy
	}
	return extmesh.DefaultStrategy()
}

// routeResponse carries one routing outcome. Hops is len(path)-1; the
// path itself is omitted when the client asked for counts only.
type routeResponse struct {
	Hops int          `json:"hops"`
	Path extmesh.Path `json:"path,omitempty"`
}

func routeResponseOf(p extmesh.Path, omit bool) routeResponse {
	resp := routeResponse{Hops: len(p) - 1}
	if !omit {
		resp.Path = p
	}
	return resp
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	sc := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(sc)
	p, err := n.RouteInto(sc.path[:0], req.Src, req.Dst, fm)
	sc.path = p
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, routeResponseOf(p, req.OmitPath))
}

// assuredResponse pairs a route with the condition that guaranteed it.
type assuredResponse struct {
	Verdict string          `json:"verdict"`
	Via     []extmesh.Coord `json:"via,omitempty"`
	Hops    int             `json:"hops"`
	Path    extmesh.Path    `json:"path,omitempty"`
}

func (s *Server) handleRouteAssured(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	p, a, err := n.RouteAssured(req.Src, req.Dst, fm, req.strategy())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := assuredResponse{Verdict: a.Verdict.String(), Via: a.Via(), Hops: len(p) - 1}
	if !req.OmitPath {
		resp.Path = p
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSafe(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"safe": n.Safe(req.Src, req.Dst, fm)})
}

func (s *Server) handleEnsure(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	a := n.Ensure(req.Src, req.Dst, fm, req.strategy())
	writeJSON(w, http.StatusOK, assuredResponse{Verdict: a.Verdict.String(), Via: a.Via(), Hops: -1})
}

func (s *Server) handleHasMinimalPath(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"exists": n.HasMinimalPath(req.Src, req.Dst)})
}

// --- batch queries --------------------------------------------------

// pairJSON is one source/destination pair of a batch request.
type pairJSON struct {
	Src extmesh.Coord `json:"src"`
	Dst extmesh.Coord `json:"dst"`
}

// routeBatchRequest is the POST .../route/batch body; the batch is
// served by extmesh.RouteMany's worker pool.
type routeBatchRequest struct {
	Pairs     []pairJSON `json:"pairs"`
	Model     string     `json:"model"`
	OmitPaths bool       `json:"omit_paths"`
}

// routeBatchResult is one pair's outcome; exactly one of Error or the
// route fields is meaningful.
type routeBatchResult struct {
	Hops  int          `json:"hops"`
	Path  extmesh.Path `json:"path,omitempty"`
	Error string       `json:"error,omitempty"`
}

func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	var req routeBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Pairs) > MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d pairs exceeds the %d limit", len(req.Pairs), MaxBatch)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	sc := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(sc)
	pairs := sc.pairs[:0]
	for _, p := range req.Pairs {
		pairs = append(pairs, extmesh.Pair{Src: p.Src, Dst: p.Dst})
	}
	sc.pairs = pairs
	results := n.RouteManyInto(&sc.arena, pairs, fm)
	out := sc.out[:0]
	for _, res := range results {
		item := routeBatchResult{Hops: len(res.Path) - 1}
		switch {
		case res.Err != nil:
			item = routeBatchResult{Hops: -1, Error: res.Err.Error()}
		case !req.OmitPaths:
			item.Path = res.Path
		}
		out = append(out, item)
	}
	sc.out = out
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// fanRequest is the shared one-source/many-destination batch body.
type fanRequest struct {
	Src      extmesh.Coord     `json:"src"`
	Dests    []extmesh.Coord   `json:"dests"`
	Model    string            `json:"model"`
	Strategy *extmesh.Strategy `json:"strategy"`
}

func (f *fanRequest) strategy() extmesh.Strategy {
	if f.Strategy != nil {
		return *f.Strategy
	}
	return extmesh.DefaultStrategy()
}

func (f *fanRequest) validate() error {
	if len(f.Dests) == 0 {
		return fmt.Errorf("empty batch")
	}
	if len(f.Dests) > MaxBatch {
		return fmt.Errorf("batch of %d destinations exceeds the %d limit", len(f.Dests), MaxBatch)
	}
	return nil
}

// handleHasMinimalPathBatch serves one source against many
// destinations from a single reachability sweep (HasMinimalPathAll).
func (s *Server) handleHasMinimalPathBatch(w http.ResponseWriter, r *http.Request) {
	var req fanRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	sc := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(sc)
	sc.bools = n.HasMinimalPathAllInto(sc.bools, req.Src, req.Dests)
	writeJSON(w, http.StatusOK, map[string]any{"results": sc.bools})
}

func (s *Server) handleEnsureBatch(w http.ResponseWriter, r *http.Request) {
	var req fanRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fm, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, _, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	assurances := n.EnsureAll(req.Src, req.Dests, fm, req.strategy())
	out := make([]assuredResponse, len(assurances))
	for i := range assurances {
		out[i] = assuredResponse{Verdict: assurances[i].Verdict.String(), Via: assurances[i].Via(), Hops: -1}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// --- admin ----------------------------------------------------------

// faultsRequest is the POST .../faults body: either explicit fail and
// recover lists, or an inject schedule spec ("random:rate=0.01",
// "bursts:count=2,size=6", "fail@0:3,4;recover@9:3,4", ...) whose
// events are applied immediately, in schedule order.
type faultsRequest struct {
	Fail    []extmesh.Coord `json:"fail"`
	Recover []extmesh.Coord `json:"recover"`
	Spec    string          `json:"spec"`
	Cycles  int             `json:"cycles"` // spec horizon (default 1000)
	Seed    int64           `json:"seed"`   // spec generator seed
}

// faultsResponse reports what the batch changed.
type faultsResponse struct {
	Applied int    `json:"applied"`
	Skipped int    `json:"skipped"`
	Faults  int    `json:"faults"`
	Version uint64 `json:"version"`
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	if s.denyWrite(w, r) {
		return
	}
	var req faultsRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name, d := s.meshFor(w, r)
	if d == nil {
		return
	}
	var applied, skipped int
	if req.Spec != "" {
		if len(req.Fail) > 0 || len(req.Recover) > 0 {
			writeError(w, http.StatusBadRequest, "spec and explicit fail/recover lists are mutually exclusive")
			return
		}
		cycles := req.Cycles
		if cycles <= 0 {
			cycles = 1000
		}
		m := mesh.Mesh{Width: d.Width(), Height: d.Height()}
		sched, err := inject.Parse(m, cycles, req.Seed, req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Apply event by event: schedule order interleaves fails and
		// recoveries (a transient fault recovers before the next one
		// arrives), which a two-list batch cannot express.
		events := make([]journal.FaultEvent, len(sched))
		for i, ev := range sched {
			events[i] = journal.FaultEvent{Op: ev.Op.String(), Node: ev.Node}
		}
		applied, skipped, err = s.persist.applyEvents(name, d, events, req.Spec)
		if err != nil {
			writeMutationError(w, err, http.StatusBadRequest)
			return
		}
	} else {
		if len(req.Fail)+len(req.Recover) == 0 {
			writeError(w, http.StatusBadRequest, "nothing to apply: need fail, recover or spec")
			return
		}
		if len(req.Fail)+len(req.Recover) > MaxBatch {
			writeError(w, http.StatusBadRequest, "batch of %d events exceeds the %d limit",
				len(req.Fail)+len(req.Recover), MaxBatch)
			return
		}
		var err error
		applied, skipped, err = s.persist.apply(name, d, req.Fail, req.Recover)
		if err != nil {
			writeMutationError(w, err, http.StatusBadRequest)
			return
		}
	}
	if applied > 0 && !s.confirmWrite(w) {
		return
	}
	writeJSON(w, http.StatusOK, faultsResponse{
		Applied: applied,
		Skipped: skipped,
		Faults:  d.FaultCount(),
		Version: d.Version(),
	})
}

// statsResponse is the per-mesh observability view: the reach-cache
// effectiveness of the current snapshot, the mesh vitals, and the
// server-wide reliability sweep counters.
type statsResponse struct {
	meshInfo
	ReachHits    uint64           `json:"reach_hits"`
	ReachMisses  uint64           `json:"reach_misses"`
	ReachHitRate float64          `json:"reach_hit_rate"`
	Reliability  reliabilityStats `json:"reliability"`
	Epoch        uint64           `json:"epoch"`
	Promotions   uint64           `json:"promotions"`
	FencedWrites uint64           `json:"fenced_writes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name, d, n := s.snapshotFor(w, r)
	if n == nil {
		return
	}
	hits, misses := n.ReachCacheStats()
	resp := statsResponse{meshInfo: infoOf(name, d), ReachHits: hits, ReachMisses: misses,
		Reliability: s.reliabilityStats(),
		Epoch:       s.Epoch(), Promotions: s.promotions.Value(), FencedWrites: s.fencedWrites.Value()}
	if total := hits + misses; total > 0 {
		resp.ReachHitRate = float64(hits) / float64(total)
	}
	writeJSON(w, http.StatusOK, resp)
}
