package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"extmesh"
	"extmesh/internal/metrics"
	"extmesh/internal/wire"
)

// binaryServer serves the wire protocol (internal/wire) over persistent
// TCP connections: one goroutine per connection reads length-prefixed
// request frames, answers them strictly in order through the same
// registry, snapshots and admission gate as the JSON endpoints, and
// batches response writes — the flush is deferred while more pipelined
// requests are already buffered, so a deep pipeline pays one syscall
// per burst instead of one per query.
type binaryServer struct {
	s *Server

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	drained bool

	wg sync.WaitGroup

	connsGauge *metrics.Gauge
	requests   *metrics.Counter
	errors     *metrics.Counter
	latency    *metrics.Histogram
}

func newBinaryServer(s *Server) *binaryServer {
	m := s.metrics
	return &binaryServer{
		s:          s,
		conns:      make(map[net.Conn]struct{}),
		connsGauge: m.Gauge("binary_conns"),
		requests:   m.Counter("binary_requests_total"),
		errors:     m.Counter("binary_errors_total"),
		latency:    m.Histogram("binary_latency"),
	}
}

// ServeBinary runs the binary query listener until ctx is canceled,
// then drains: the listener closes, every connection's pending
// responses are flushed and its reads are unblocked, and connections
// still busy after drainTimeout are cut off. The query surface and
// answers are identical to the JSON endpoints; mutating admin
// operations stay HTTP-only.
func (s *Server) ServeBinary(ctx context.Context, l net.Listener, drainTimeout time.Duration) error {
	b := newBinaryServer(s)
	errc := make(chan error, 1)
	go func() { errc <- b.acceptLoop(l) }()
	select {
	case err := <-errc:
		// Listener failed before shutdown was requested. Connections
		// accepted earlier are still being served — without a drain they
		// would outlive this call, so cut them off before returning.
		b.beginDrain()
		b.closeAll()
		b.wg.Wait()
		return err
	case <-ctx.Done():
	}
	l.Close()
	<-errc
	b.beginDrain()
	done := make(chan struct{})
	go func() { b.wg.Wait(); close(done) }()
	t := time.NewTimer(drainTimeout)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
		b.closeAll()
		<-done
		return nil
	}
}

func (b *binaryServer) acceptLoop(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !b.track(conn) {
			conn.Close() // raced shutdown
			return nil
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer b.untrack(conn)
			b.serveConn(conn)
		}()
	}
}

func (b *binaryServer) track(conn net.Conn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.drained {
		return false
	}
	b.conns[conn] = struct{}{}
	b.connsGauge.Set(int64(len(b.conns)))
	return true
}

func (b *binaryServer) untrack(conn net.Conn) {
	conn.Close()
	b.mu.Lock()
	delete(b.conns, conn)
	b.connsGauge.Set(int64(len(b.conns)))
	b.mu.Unlock()
}

// beginDrain unblocks every connection's pending read with an expired
// deadline; handlers mid-request finish and flush before their next
// read observes it.
func (b *binaryServer) beginDrain() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.drained = true
	past := time.Unix(1, 0)
	for conn := range b.conns {
		conn.SetReadDeadline(past)
	}
}

func (b *binaryServer) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for conn := range b.conns {
		conn.Close()
	}
}

// serveConn is one connection's request loop. Frames are answered in
// arrival order; the response writer is flushed only when no further
// request is already buffered, so pipelined bursts coalesce.
func (b *binaryServer) serveConn(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	var reqBuf, respBuf []byte
	for {
		body, err := wire.ReadFrame(r, wire.MaxRequestFrame, reqBuf)
		if err != nil {
			// EOF, deadline (drain), or an oversized length prefix — the
			// stream cannot be trusted past any of them.
			w.Flush()
			return
		}
		reqBuf = body[:0]
		start := time.Now()
		b.requests.Inc()
		respBuf = b.handleFrame(respBuf[:0], body)
		b.latency.Observe(time.Since(start))
		if err := wire.WriteFrame(w, respBuf); err != nil {
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// handleFrame answers one request frame, appending the response body
// onto buf. Every outcome — including malformed requests — produces a
// response frame, so a pipelined client never desynchronizes.
func (b *binaryServer) handleFrame(buf, body []byte) []byte {
	req, err := wire.DecodeRequest(body)
	if err != nil {
		var id uint32
		if req != nil {
			id = req.ID
		}
		b.errors.Inc()
		return wire.AppendError(buf, id, wire.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
	}
	if err := b.s.admit.acquire(context.Background()); err != nil {
		b.errors.Inc()
		return wire.AppendError(buf, req.ID, wire.StatusSaturated, err.Error())
	}
	defer b.s.admit.release()

	d := b.s.meshes.Get(req.Mesh)
	if d == nil {
		b.errors.Inc()
		return wire.AppendError(buf, req.ID, wire.StatusNotFound, fmt.Sprintf("mesh %q not registered", req.Mesh))
	}
	n, err := d.Snapshot()
	if err != nil {
		b.errors.Inc()
		return wire.AppendError(buf, req.ID, wire.StatusInternal, fmt.Sprintf("snapshot failed: %v", err))
	}
	fm := extmesh.Blocks
	if req.MCC() {
		fm = extmesh.MCC
	}
	sc := scratchPool.Get().(*reqScratch)
	defer scratchPool.Put(sc)

	switch req.Op {
	case wire.OpRoute:
		p, err := n.RouteInto(sc.path[:0], req.Src, req.Dst, fm)
		sc.path = p
		if err != nil {
			b.errors.Inc()
			return wire.AppendError(buf, req.ID, wire.StatusUnprocessable, err.Error())
		}
		buf = wire.AppendOKHeader(buf, req.ID)
		buf = wire.AppendU32(buf, uint32(int32(len(p)-1)))
		if req.OmitPaths() {
			return wire.AppendU32(buf, 0)
		}
		return wire.AppendPath(buf, p)

	case wire.OpHasMinimalPath:
		buf = wire.AppendOKHeader(buf, req.ID)
		return append(buf, boolByte(n.HasMinimalPath(req.Src, req.Dst)))

	case wire.OpSafe:
		buf = wire.AppendOKHeader(buf, req.ID)
		return append(buf, boolByte(n.Safe(req.Src, req.Dst, fm)))

	case wire.OpEnsure:
		a := n.Ensure(req.Src, req.Dst, fm, extmesh.DefaultStrategy())
		buf = wire.AppendOKHeader(buf, req.ID)
		return wire.AppendEnsure(buf, uint8(a.Verdict), a.Via())

	case wire.OpRouteBatch:
		pairs := len(req.Pairs) / 2
		if msg, ok := checkBatch(pairs, "pairs"); !ok {
			b.errors.Inc()
			return wire.AppendError(buf, req.ID, wire.StatusBadRequest, msg)
		}
		ps := sc.pairs[:0]
		for i := 0; i < pairs; i++ {
			ps = append(ps, extmesh.Pair{Src: req.Pairs[2*i], Dst: req.Pairs[2*i+1]})
		}
		sc.pairs = ps
		results := n.RouteManyInto(&sc.arena, ps, fm)
		buf = wire.AppendOKHeader(buf, req.ID)
		buf = wire.AppendU16(buf, uint16(len(results)))
		for _, res := range results {
			if res.Err != nil {
				buf = append(buf, 0)
				msg := res.Err.Error()
				if len(msg) > 0xffff {
					msg = msg[:0xffff]
				}
				buf = wire.AppendU16(buf, uint16(len(msg)))
				buf = append(buf, msg...)
				continue
			}
			buf = append(buf, 1)
			buf = wire.AppendU32(buf, uint32(int32(len(res.Path)-1)))
			if req.OmitPaths() {
				buf = wire.AppendU32(buf, 0)
			} else {
				buf = wire.AppendPath(buf, res.Path)
			}
		}
		return buf

	case wire.OpHasMinimalPathBatch:
		if msg, ok := checkBatch(len(req.Dests), "destinations"); !ok {
			b.errors.Inc()
			return wire.AppendError(buf, req.ID, wire.StatusBadRequest, msg)
		}
		buf = wire.AppendOKHeader(buf, req.ID)
		sc.bools = n.HasMinimalPathAllInto(sc.bools, req.Src, req.Dests)
		return wire.AppendBools(buf, sc.bools)

	case wire.OpEnsureBatch:
		if msg, ok := checkBatch(len(req.Dests), "destinations"); !ok {
			b.errors.Inc()
			return wire.AppendError(buf, req.ID, wire.StatusBadRequest, msg)
		}
		assurances := n.EnsureAll(req.Src, req.Dests, fm, extmesh.DefaultStrategy())
		buf = wire.AppendOKHeader(buf, req.ID)
		buf = wire.AppendU16(buf, uint16(len(assurances)))
		for i := range assurances {
			buf = wire.AppendEnsure(buf, uint8(assurances[i].Verdict), assurances[i].Via())
		}
		return buf
	}
	// DecodeRequest already rejected unknown ops; defensive fallthrough.
	b.errors.Inc()
	return wire.AppendError(buf, req.ID, wire.StatusBadRequest, fmt.Sprintf("unknown op %d", req.Op))
}

// checkBatch enforces the shared batch bounds with the same messages
// the JSON endpoints produce.
func checkBatch(n int, noun string) (string, bool) {
	if n == 0 {
		return "empty batch", false
	}
	if n > MaxBatch {
		return fmt.Sprintf("batch of %d %s exceeds the %d limit", n, noun, MaxBatch), false
	}
	return "", true
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
