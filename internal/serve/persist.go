package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"extmesh"
	"extmesh/internal/journal"
)

// journalError marks a mutation that applied in memory but failed to
// reach the journal — the one case where the server's durable and live
// states can diverge. Handlers surface it as a 500 so clients know the
// acknowledgment is not crash-safe.
type journalError struct{ err error }

func (e *journalError) Error() string { return "journal append failed: " + e.err.Error() }
func (e *journalError) Unwrap() error { return e.err }

// persister serializes registry mutations with their journal appends,
// so the journal's record order always matches the order mutations
// were applied in — the property replay correctness rests on. With a
// nil store it degrades to plain (memory-only) mutations. Queries
// never pass through here; only mutations serialize.
type persister struct {
	mu    sync.Mutex
	store *journal.Store // nil: memory-only
	reg   *Registry
	// noteSeq observes every durably applied sequence number (appends
	// on a primary, replicated records on a replica); nil-safe.
	noteSeq func(uint64)
	// subs are live replication followers; each journaled record is
	// fanned out to them in append order, under p.mu, so every follower
	// observes mutations in exactly the order they were applied.
	subs map[*repSub]struct{}
}

func (p *persister) note(seq uint64) {
	if p.noteSeq != nil {
		p.noteSeq(seq)
	}
}

// broadcast fans a freshly journaled record out to the replication
// followers. A follower whose buffer is full is cut off (its channel
// closes) rather than allowed to stall mutations; it reconnects and
// resumes from its applied offset. Callers hold p.mu.
func (p *persister) broadcast(r journal.Record) {
	for sub := range p.subs {
		select {
		case sub.ch <- r:
		default:
			delete(p.subs, sub)
			close(sub.ch)
		}
	}
}

// append journals the record and, when the log generation has grown
// past the configured threshold, folds the registry into a fresh
// snapshot. Callers hold p.mu.
func (p *persister) append(r journal.Record) error {
	if p.store == nil {
		return nil
	}
	seq, err := p.store.Append(r)
	if err != nil {
		return &journalError{err}
	}
	r.Seq = seq
	p.note(seq)
	p.broadcast(r)
	if p.store.NeedsCompaction() {
		if err := p.compactLocked(); err != nil {
			return &journalError{err}
		}
	}
	return nil
}

// bumpEpoch journals an epoch-bump record — the durable half of a
// promotion. The record rides the ordinary append path, so connected
// followers learn the new epoch through the stream in sequence order,
// and crash recovery replays it like any other mutation.
func (p *persister) bumpEpoch(epoch uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.append(journal.Record{Op: journal.OpEpoch, Epoch: epoch})
}

// putRecord builds the OpPut record for a mesh's current state.
func putRecord(name string, d *extmesh.DynamicNetwork) (journal.Record, error) {
	blob, err := d.MarshalJSON()
	if err != nil {
		return journal.Record{}, err
	}
	return journal.Record{Op: journal.OpPut, Name: name, Blob: blob, Version: d.Version()}, nil
}

// create registers a new mesh and journals it; a name conflict returns
// the registry's error unwrapped (handlers map it to 409).
func (p *persister) create(name string, d *extmesh.DynamicNetwork) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, err := putRecord(name, d)
	if err != nil {
		return err
	}
	if err := p.reg.Create(name, d); err != nil {
		return err
	}
	return p.append(r)
}

// put registers or replaces a mesh and journals it.
func (p *persister) put(name string, d *extmesh.DynamicNetwork) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, err := putRecord(name, d)
	if err != nil {
		return err
	}
	if err := p.reg.Put(name, d); err != nil {
		return err
	}
	return p.append(r)
}

// delete removes a mesh, journaling only when something was removed.
func (p *persister) delete(name string) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.reg.Delete(name) {
		return false, nil
	}
	return true, p.append(journal.Record{Op: journal.OpDelete, Name: name})
}

// apply runs a fail/recover batch on d and journals the attempted
// lists whenever state changed. Journaling intent rather than outcome
// is safe because Apply is deterministic: replaying the same lists
// against the same prior state reproduces the same applied/skipped
// split — and the same partial prefix if the batch errors midway.
func (p *persister) apply(name string, d *extmesh.DynamicNetwork, fail, recover []extmesh.Coord) (applied, skipped int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	applied, skipped, err = d.Apply(fail, recover)
	if applied > 0 {
		if jerr := p.append(journal.Record{Op: journal.OpApply, Name: name, Fail: fail, Recover: recover}); err == nil {
			err = jerr
		}
	}
	return applied, skipped, err
}

// applyEvents runs an ordered event sequence one event at a time —
// the inject-schedule admin path, which interleaves failures and
// recoveries — and journals the attempted sequence with its spec for
// provenance. On a midway error only the attempted prefix is recorded.
func (p *persister) applyEvents(name string, d *extmesh.DynamicNetwork, events []journal.FaultEvent, spec string) (applied, skipped int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	done := 0
	for _, ev := range events {
		var a, sk int
		if ev.Op == "fail" {
			a, sk, err = d.Apply([]extmesh.Coord{ev.Node}, nil)
		} else {
			a, sk, err = d.Apply(nil, []extmesh.Coord{ev.Node})
		}
		applied, skipped = applied+a, skipped+sk
		if err != nil {
			break
		}
		done++
	}
	if applied > 0 {
		if jerr := p.append(journal.Record{Op: journal.OpEvents, Name: name, Events: events[:done], Spec: spec}); err == nil {
			err = jerr
		}
	}
	return applied, skipped, err
}

// snapshotState collects the registry's durable state under p.mu, so
// the snapshot is a consistent point between mutations.
func (p *persister) snapshotState() (map[string]journal.SnapshotMesh, error) {
	state := make(map[string]journal.SnapshotMesh)
	for _, name := range p.reg.Names() {
		d := p.reg.Get(name)
		if d == nil {
			continue
		}
		blob, err := d.MarshalJSON()
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot mesh %q: %w", name, err)
		}
		state[name] = journal.SnapshotMesh{Blob: blob, Version: d.Version()}
	}
	return state, nil
}

func (p *persister) compactLocked() error {
	state, err := p.snapshotState()
	if err != nil {
		return err
	}
	return p.store.Compact(state)
}

// checkpoint folds the current registry into a fresh snapshot
// generation — the graceful-drain and post-recovery entry point.
func (p *persister) checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil {
		return nil
	}
	return p.compactLocked()
}

// restoreMesh rebuilds one mesh from its durable form: the blob
// replays the surviving faults, then the saved version is restored so
// version continuity survives the round trip.
func restoreMesh(name string, blob json.RawMessage, version uint64) (*extmesh.DynamicNetwork, error) {
	d, err := extmesh.UnmarshalDynamic(blob)
	if err != nil {
		return nil, fmt.Errorf("serve: recover mesh %q: %w", name, err)
	}
	if err := d.RestoreVersion(version); err != nil {
		return nil, fmt.Errorf("serve: recover mesh %q: %w", name, err)
	}
	return d, nil
}

// Recover replays the journal into the registry: the snapshot's meshes
// first, then every logged mutation in order. It finishes by folding
// the recovered state into a fresh snapshot generation (so the next
// recovery starts from one file) and marking the server ready. It must
// be called before serving when the server has a journal; without one
// it is a no-op.
//
// Records referencing meshes that no longer exist (a mutation raced a
// delete before the crash) are skipped, mirroring how the live server
// would have answered 404 after the delete.
func (s *Server) Recover() error {
	if s.persist.store == nil {
		s.SetReady(true)
		return nil
	}
	rec, err := s.persist.store.Recover()
	if err != nil {
		return err
	}
	for name, sm := range rec.Meshes {
		d, err := restoreMesh(name, sm.Blob, sm.Version)
		if err != nil {
			return err
		}
		if err := s.meshes.Put(name, d); err != nil {
			return err
		}
	}
	for _, r := range rec.Records {
		if err := s.applyRecord(r); err != nil {
			return err
		}
	}
	if err := s.persist.checkpoint(); err != nil {
		return err
	}
	s.journalSeq.Store(s.persist.store.Seq())
	s.setEpoch(s.persist.store.Epoch())
	s.SetReady(true)
	return nil
}

// applyRecord applies one journal record to the registry without
// journaling it — the shared replay path of crash recovery and
// replication streaming. Both callers feed it the same deterministic
// record stream, which is what makes a replica's state bit-identical
// to its primary's.
func (s *Server) applyRecord(r journal.Record) error {
	switch r.Op {
	case journal.OpPut:
		d, err := restoreMesh(r.Name, r.Blob, r.Version)
		if err != nil {
			return err
		}
		return s.meshes.Put(r.Name, d)
	case journal.OpDelete:
		s.meshes.Delete(r.Name)
	case journal.OpApply:
		d := s.meshes.Get(r.Name)
		if d == nil {
			return nil
		}
		// Replay re-executes the attempted batch; a partial batch
		// errors at the same point it originally did, which is the
		// recorded (and correct) final state, so the error only
		// matters if it happens earlier — impossible for a
		// deterministic mutation on identical state.
		d.Apply(r.Fail, r.Recover)
	case journal.OpEvents:
		d := s.meshes.Get(r.Name)
		if d == nil {
			return nil
		}
		for _, ev := range r.Events {
			if ev.Op == "fail" {
				d.Apply([]extmesh.Coord{ev.Node}, nil)
			} else {
				d.Apply(nil, []extmesh.Coord{ev.Node})
			}
		}
	case journal.OpEpoch:
		// No mesh state changes; the record's whole job is raising the
		// cluster epoch durably — on the promoting primary, on every
		// follower that streams it, and on crash recovery.
		s.setEpoch(r.Epoch)
	default:
		return fmt.Errorf("serve: journal record %d has unknown op %q", r.Seq, r.Op)
	}
	return nil
}

// Checkpoint folds the live registry into a fresh snapshot generation;
// the daemon calls it after a graceful drain so restart recovery is a
// single snapshot load. A no-op without a journal.
func (s *Server) Checkpoint() error { return s.persist.checkpoint() }

// ExportState marshals the registry's full durable state (every mesh
// blob plus version; map keys are emitted sorted by encoding/json)
// under the mutation lock. Two nodes that applied the same record
// stream produce byte-identical exports — the convergence check the
// cluster chaos suite asserts on.
func (s *Server) ExportState() ([]byte, error) {
	s.persist.mu.Lock()
	defer s.persist.mu.Unlock()
	state, err := s.persist.snapshotState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(state)
}

// RegisterMesh registers a mesh through the durable path — preloads
// from daemon flags journal exactly like API creations.
func (s *Server) RegisterMesh(name string, d *extmesh.DynamicNetwork) error {
	return s.persist.create(name, d)
}
