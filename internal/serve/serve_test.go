package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"extmesh"
)

// testFaults is a fixed fault set with interesting structure on a
// 16x16 mesh.
var testFaults = []extmesh.Coord{
	{X: 5, Y: 5}, {X: 5, Y: 6}, {X: 6, Y: 5}, {X: 10, Y: 2}, {X: 3, Y: 12},
}

// newTestServer returns a server preloaded with one 16x16 mesh named
// "m" plus a matching direct Network for parity checks.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *extmesh.Network) {
	t.Helper()
	s := New(Options{})
	d, err := extmesh.NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testFaults {
		if err := d.AddFault(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Meshes().Create("m", d); err != nil {
		t.Fatal(err)
	}
	direct, err := extmesh.New(16, 16, testFaults)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, direct
}

// post sends a JSON body and decodes the JSON response into out.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func TestMeshLifecycle(t *testing.T) {
	_, ts, _ := newTestServer(t)

	// Create a second mesh from a spec.
	var info meshInfo
	code := post(t, ts.URL+"/v1/mesh", createRequest{
		Name: "grid", Width: 8, Height: 8, Faults: []extmesh.Coord{{X: 2, Y: 2}},
	}, &info)
	if code != http.StatusCreated || info.Width != 8 || info.Faults != 1 {
		t.Fatalf("create = %d %+v", code, info)
	}
	// Duplicate name conflicts.
	if code := post(t, ts.URL+"/v1/mesh", createRequest{Name: "grid", Width: 4, Height: 4}, nil); code != http.StatusConflict {
		t.Errorf("duplicate create = %d, want 409", code)
	}
	// Invalid name and dimensions are rejected.
	if code := post(t, ts.URL+"/v1/mesh", createRequest{Name: "../etc", Width: 4, Height: 4}, nil); code != http.StatusBadRequest {
		t.Errorf("bad name = %d, want 400", code)
	}
	if code := post(t, ts.URL+"/v1/mesh", createRequest{Name: "big", Width: 1 << 20, Height: 1 << 20}, nil); code != http.StatusBadRequest {
		t.Errorf("absurd dims = %d, want 400", code)
	}

	// List shows both meshes sorted.
	var list struct {
		Meshes []meshInfo `json:"meshes"`
	}
	if code := get(t, ts.URL+"/v1/mesh", &list); code != http.StatusOK || len(list.Meshes) != 2 {
		t.Fatalf("list = %d %+v", code, list)
	}
	if list.Meshes[0].Name != "grid" || list.Meshes[1].Name != "m" {
		t.Errorf("list order = %+v", list.Meshes)
	}

	// Get exports the blob; it round-trips through UnmarshalNetwork.
	resp, err := http.Get(ts.URL + "/v1/mesh/m")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	back, err := extmesh.UnmarshalNetwork(blob)
	if err != nil {
		t.Fatalf("exported blob does not decode: %v\n%s", err, blob)
	}
	if len(back.Faults()) != len(testFaults) {
		t.Errorf("export lost faults: %v", back.Faults())
	}

	// Upload replaces: PUT the exported blob under a new name.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/mesh/copy", bytes.NewReader(blob))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusCreated {
		t.Fatalf("upload = %d, want 201", r2.StatusCode)
	}
	// Re-upload over the same name reports 200.
	req2, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/mesh/copy", bytes.NewReader(blob))
	r3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("re-upload = %d, want 200", r3.StatusCode)
	}

	// Delete, then 404.
	req3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/mesh/copy", nil)
	r4, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", r4.StatusCode)
	}
	if code := get(t, ts.URL+"/v1/mesh/copy", nil); code != http.StatusNotFound {
		t.Errorf("get deleted = %d, want 404", code)
	}
}

// TestQueryParity locks the serving layer to the library: every
// endpoint's answer must be identical to the direct Network call on
// the same mesh.
func TestQueryParity(t *testing.T) {
	_, ts, direct := newTestServer(t)
	st := extmesh.DefaultStrategy()

	pairs := []struct{ s, d extmesh.Coord }{
		{extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 15, Y: 15}},
		{extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 7, Y: 7}},
		{extmesh.Coord{X: 2, Y: 9}, extmesh.Coord{X: 14, Y: 1}},
		{extmesh.Coord{X: 15, Y: 0}, extmesh.Coord{X: 0, Y: 15}},
	}
	for _, model := range []string{"blocks", "mcc"} {
		fm := extmesh.Blocks
		if model == "mcc" {
			fm = extmesh.MCC
		}
		for _, pr := range pairs {
			// route
			var rr routeResponse
			code := post(t, ts.URL+"/v1/mesh/m/route",
				queryRequest{Src: pr.s, Dst: pr.d, Model: model}, &rr)
			wantPath, wantErr := direct.Route(pr.s, pr.d, fm)
			if wantErr != nil {
				if code != http.StatusUnprocessableEntity {
					t.Errorf("%v->%v %s: route = %d, want 422 (%v)", pr.s, pr.d, model, code, wantErr)
				}
			} else if code != http.StatusOK || !reflect.DeepEqual(rr.Path, wantPath) {
				t.Errorf("%v->%v %s: served path %v != direct %v", pr.s, pr.d, model, rr.Path, wantPath)
			}

			// safe
			var sr struct {
				Safe bool `json:"safe"`
			}
			post(t, ts.URL+"/v1/mesh/m/safe", queryRequest{Src: pr.s, Dst: pr.d, Model: model}, &sr)
			if sr.Safe != direct.Safe(pr.s, pr.d, fm) {
				t.Errorf("%v->%v %s: safe mismatch", pr.s, pr.d, model)
			}

			// ensure
			var er assuredResponse
			post(t, ts.URL+"/v1/mesh/m/ensure", queryRequest{Src: pr.s, Dst: pr.d, Model: model}, &er)
			wantA := direct.Ensure(pr.s, pr.d, fm, st)
			if er.Verdict != wantA.Verdict.String() {
				t.Errorf("%v->%v %s: ensure verdict %q != %q", pr.s, pr.d, model, er.Verdict, wantA.Verdict)
			}

			// route-assured
			var ar assuredResponse
			code = post(t, ts.URL+"/v1/mesh/m/route-assured",
				queryRequest{Src: pr.s, Dst: pr.d, Model: model}, &ar)
			wp, wa, werr := direct.RouteAssured(pr.s, pr.d, fm, st)
			if werr != nil {
				if code != http.StatusUnprocessableEntity {
					t.Errorf("%v->%v %s: route-assured = %d, want 422", pr.s, pr.d, model, code)
				}
			} else if !reflect.DeepEqual(ar.Path, wp) || ar.Verdict != wa.Verdict.String() {
				t.Errorf("%v->%v %s: assured mismatch %v/%s vs %v/%s",
					pr.s, pr.d, model, ar.Path, ar.Verdict, wp, wa.Verdict)
			}

			// has-minimal-path
			var hr struct {
				Exists bool `json:"exists"`
			}
			post(t, ts.URL+"/v1/mesh/m/has-minimal-path", queryRequest{Src: pr.s, Dst: pr.d}, &hr)
			if hr.Exists != direct.HasMinimalPath(pr.s, pr.d) {
				t.Errorf("%v->%v: existence mismatch", pr.s, pr.d)
			}
		}
	}
}

func TestBatchParity(t *testing.T) {
	_, ts, direct := newTestServer(t)
	src := extmesh.Coord{X: 0, Y: 0}
	var dests []extmesh.Coord
	var reqPairs []pairJSON
	for y := 0; y < 16; y += 3 {
		for x := 1; x < 16; x += 4 {
			d := extmesh.Coord{X: x, Y: y}
			dests = append(dests, d)
			reqPairs = append(reqPairs, pairJSON{Src: src, Dst: d})
		}
	}

	// route/batch against RouteMany.
	var rb struct {
		Results []routeBatchResult `json:"results"`
	}
	code := post(t, ts.URL+"/v1/mesh/m/route/batch",
		routeBatchRequest{Pairs: reqPairs}, &rb)
	if code != http.StatusOK || len(rb.Results) != len(reqPairs) {
		t.Fatalf("route/batch = %d with %d results", code, len(rb.Results))
	}
	pairs := make([]extmesh.Pair, len(reqPairs))
	for i, p := range reqPairs {
		pairs[i] = extmesh.Pair{Src: p.Src, Dst: p.Dst}
	}
	want := direct.RouteMany(pairs, extmesh.Blocks)
	for i := range want {
		if want[i].Err != nil {
			if rb.Results[i].Error == "" {
				t.Errorf("pair %d: served ok, direct err %v", i, want[i].Err)
			}
			continue
		}
		if !reflect.DeepEqual(rb.Results[i].Path, want[i].Path) {
			t.Errorf("pair %d: served %v != direct %v", i, rb.Results[i].Path, want[i].Path)
		}
	}

	// omit_paths keeps the hop counts.
	var rbLean struct {
		Results []routeBatchResult `json:"results"`
	}
	post(t, ts.URL+"/v1/mesh/m/route/batch",
		routeBatchRequest{Pairs: reqPairs, OmitPaths: true}, &rbLean)
	for i := range want {
		if want[i].Err == nil {
			if rbLean.Results[i].Path != nil || rbLean.Results[i].Hops != len(want[i].Path)-1 {
				t.Errorf("pair %d: lean result %+v, want hops %d and no path",
					i, rbLean.Results[i], len(want[i].Path)-1)
			}
		}
	}

	// has-minimal-path/batch against HasMinimalPathAll.
	var hb struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path/batch", fanRequest{Src: src, Dests: dests}, &hb)
	if got, want := hb.Results, direct.HasMinimalPathAll(src, dests); !reflect.DeepEqual(got, want) {
		t.Errorf("existence batch %v != %v", got, want)
	}

	// ensure/batch against EnsureAll.
	var eb struct {
		Results []assuredResponse `json:"results"`
	}
	post(t, ts.URL+"/v1/mesh/m/ensure/batch", fanRequest{Src: src, Dests: dests}, &eb)
	wantA := direct.EnsureAll(src, dests, extmesh.Blocks, extmesh.DefaultStrategy())
	for i := range wantA {
		if eb.Results[i].Verdict != wantA[i].Verdict.String() {
			t.Errorf("dest %d: ensure %q != %q", i, eb.Results[i].Verdict, wantA[i].Verdict)
		}
	}

	// Oversized and empty batches are rejected.
	huge := make([]pairJSON, MaxBatch+1)
	if code := post(t, ts.URL+"/v1/mesh/m/route/batch", routeBatchRequest{Pairs: huge}, nil); code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", code)
	}
	if code := post(t, ts.URL+"/v1/mesh/m/route/batch", routeBatchRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", code)
	}
}

func TestFaultAdminReroutesLiveTraffic(t *testing.T) {
	_, ts, _ := newTestServer(t)
	src, dst := extmesh.Coord{X: 0, Y: 8}, extmesh.Coord{X: 15, Y: 8}

	var hr struct {
		Exists bool `json:"exists"`
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path", queryRequest{Src: src, Dst: dst}, &hr)
	if !hr.Exists {
		t.Fatal("row path should exist before the wall")
	}

	// Build a vertical wall through the whole mesh except... everywhere:
	// after it, no monotone (or any) path from the west half remains.
	var wall []extmesh.Coord
	for y := 0; y < 16; y++ {
		wall = append(wall, extmesh.Coord{X: 8, Y: y})
	}
	var fr faultsResponse
	code := post(t, ts.URL+"/v1/mesh/m/faults", faultsRequest{Fail: wall}, &fr)
	if code != http.StatusOK || fr.Applied != len(wall) {
		t.Fatalf("faults = %d %+v", code, fr)
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path", queryRequest{Src: src, Dst: dst}, &hr)
	if hr.Exists {
		t.Error("wall should cut the mesh")
	}

	// Recover the wall; traffic resumes.
	post(t, ts.URL+"/v1/mesh/m/faults", faultsRequest{Recover: wall}, &fr)
	if fr.Applied != len(wall) {
		t.Fatalf("recover applied %d, want %d", fr.Applied, len(wall))
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path", queryRequest{Src: src, Dst: dst}, &hr)
	if !hr.Exists {
		t.Error("recovered mesh should route again")
	}

	// Idempotent replay: recovering again skips.
	post(t, ts.URL+"/v1/mesh/m/faults", faultsRequest{Recover: wall[:3]}, &fr)
	if fr.Applied != 0 || fr.Skipped != 3 {
		t.Errorf("replayed recover = %+v, want 0 applied / 3 skipped", fr)
	}
}

func TestFaultAdminSpec(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var fr faultsResponse
	code := post(t, ts.URL+"/v1/mesh/m/faults",
		faultsRequest{Spec: "fail@0:1,1;fail@1:2,1;recover@2:1,1"}, &fr)
	if code != http.StatusOK {
		t.Fatalf("spec faults = %d %+v", code, fr)
	}
	if fr.Applied != 3 {
		t.Errorf("applied = %d, want 3 (interleaved fail/recover)", fr.Applied)
	}
	// Generated schedules work too and are deterministic per seed.
	code = post(t, ts.URL+"/v1/mesh/m/faults",
		faultsRequest{Spec: "random:rate=0.05", Cycles: 100, Seed: 42}, &fr)
	if code != http.StatusOK || fr.Applied == 0 {
		t.Fatalf("random spec = %d %+v, want some applied", code, fr)
	}
	// Bad specs are 400.
	if code := post(t, ts.URL+"/v1/mesh/m/faults", faultsRequest{Spec: "meteor:rate=1"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad spec = %d, want 400", code)
	}
	// Spec plus explicit lists is ambiguous.
	if code := post(t, ts.URL+"/v1/mesh/m/faults",
		faultsRequest{Spec: "random:rate=0.1", Fail: []extmesh.Coord{{X: 1, Y: 2}}}, nil); code != http.StatusBadRequest {
		t.Errorf("spec+fail = %d, want 400", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Warm the reach cache with repeated existence queries.
	q := queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 15, Y: 15}}
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/mesh/m/has-minimal-path", q, nil)
	}
	var st statsResponse
	if code := get(t, ts.URL+"/v1/mesh/m/stats", &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Name != "m" || st.Width != 16 || st.Faults != len(testFaults) {
		t.Errorf("stats vitals = %+v", st)
	}
	if st.ReachMisses == 0 || st.ReachHits < 4 {
		t.Errorf("reach stats = %d hits / %d misses, want 1 miss + >=4 hits", st.ReachHits, st.ReachMisses)
	}
	if st.ReachHitRate <= 0.5 {
		t.Errorf("hit rate = %v, want > 0.5", st.ReachHitRate)
	}
}

func TestOpsEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var h struct {
		Status string `json:"status"`
	}
	if code := get(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %+v", code, h)
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path",
		queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"http_requests_total_has_minimal_path", "reach_cache_", "meshes_registered 1"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	var vars struct {
		Extmesh map[string]any `json:"extmesh"`
	}
	if code := get(t, ts.URL+"/debug/vars", &vars); code != http.StatusOK || len(vars.Extmesh) == 0 {
		t.Errorf("/debug/vars = %d, extmesh map %v", code, vars.Extmesh)
	}
}

func TestRequestIDsAssigned(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Unknown mesh.
	if code := post(t, ts.URL+"/v1/mesh/ghost/route",
		queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown mesh = %d, want 404", code)
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/mesh/m/route", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	// Unknown model.
	if code := post(t, ts.URL+"/v1/mesh/m/route",
		queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}, Model: "cubes"}, nil); code != http.StatusBadRequest {
		t.Errorf("bad model = %d, want 400", code)
	}
	// Out-of-mesh endpoints route nowhere.
	if code := post(t, ts.URL+"/v1/mesh/m/route",
		queryRequest{Src: extmesh.Coord{X: -1, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-mesh route = %d, want 422", code)
	}
}

// TestAdmissionSheds saturates the execution slots and checks the
// gate's three outcomes: execute, queue-then-execute, and shed 429.
func TestAdmissionSheds(t *testing.T) {
	s := New(Options{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond})
	d, err := extmesh.NewDynamic(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Meshes().Create("m", d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only execution slot directly (internal test hook).
	s.admit.slots <- struct{}{}

	// First request queues and then sheds after QueueWait.
	start := time.Now()
	code := post(t, ts.URL+"/v1/mesh/m/has-minimal-path",
		queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("queued request = %d, want 429", code)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Errorf("shed after %v, want to wait out the %v queue window", waited, 30*time.Millisecond)
	}

	// With the queue also full, excess requests shed immediately.
	s.admit.queue.Add(1) // simulate a waiter holding the queue slot
	start = time.Now()
	resp2, err := http.Post(ts.URL+"/v1/mesh/m/has-minimal-path", "application/json",
		strings.NewReader(`{"src":{"x":0,"y":0},"dst":{"x":1,"y":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	resp2.Body.Close()
	if waited := time.Since(start); waited > 25*time.Millisecond {
		t.Errorf("overflow shed took %v, want immediate", waited)
	}
	s.admit.queue.Add(-1)

	// Release the slot; traffic flows again and ops endpoints were
	// never gated.
	<-s.admit.slots
	if code := post(t, ts.URL+"/v1/mesh/m/has-minimal-path",
		queryRequest{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 1, Y: 1}}, nil); code != http.StatusOK {
		t.Errorf("after release = %d, want 200", code)
	}
	shed := s.metrics.Counter("http_shed_total").Value()
	if shed < 2 {
		t.Errorf("http_shed_total = %d, want >= 2", shed)
	}
}

// TestHealthBypassesAdmission pins the ops exemption: a saturated
// server still answers health checks.
func TestHealthBypassesAdmission(t *testing.T) {
	s := New(Options{MaxInFlight: 1, MaxQueue: 1, QueueWait: 10 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.admit.slots <- struct{}{} // saturate
	defer func() { <-s.admit.slots }()
	if code := get(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz under saturation = %d, want 200", code)
	}
	if code := get(t, ts.URL+"/metrics", nil); code != http.StatusOK {
		t.Errorf("metrics under saturation = %d, want 200", code)
	}
}

// TestGracefulDrain starts a real server, parks a slow request in
// flight, trips the shutdown context, and requires (a) the in-flight
// request to complete with 200 and (b) new connections to be refused
// after the drain.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprintln(w, "done")
	})
	srv := &http.Server{Handler: mux}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, srv, l, 5*time.Second) }()

	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	var reqErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			reqErr = err
			return
		}
		code = resp.StatusCode
		resp.Body.Close()
	}()

	<-started // request is in flight
	cancel()  // SIGTERM equivalent
	time.Sleep(20 * time.Millisecond)
	close(release) // let the in-flight request finish

	wg.Wait()
	if reqErr != nil || code != http.StatusOK {
		t.Fatalf("in-flight request = %d, %v; want 200 during drain", code, reqErr)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// The listener is closed: new requests fail to connect.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestServedRouteMatchesAfterMutation ties it together: admin
// mutation, then parity on the post-mutation snapshot.
func TestServedRouteMatchesAfterMutation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	extra := []extmesh.Coord{{X: 8, Y: 8}, {X: 8, Y: 9}, {X: 9, Y: 8}}
	var fr faultsResponse
	if code := post(t, ts.URL+"/v1/mesh/m/faults", faultsRequest{Fail: extra}, &fr); code != http.StatusOK {
		t.Fatalf("faults = %d", code)
	}
	direct, err := extmesh.New(16, 16, append(append([]extmesh.Coord{}, testFaults...), extra...))
	if err != nil {
		t.Fatal(err)
	}
	src, dst := extmesh.Coord{X: 0, Y: 0}, extmesh.Coord{X: 15, Y: 15}
	var rr routeResponse
	code := post(t, ts.URL+"/v1/mesh/m/route", queryRequest{Src: src, Dst: dst}, &rr)
	wantPath, wantErr := direct.Route(src, dst, extmesh.Blocks)
	if wantErr != nil {
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("route = %d, want 422", code)
		}
	} else if !reflect.DeepEqual(rr.Path, wantPath) {
		t.Errorf("post-mutation path %v != direct %v", rr.Path, wantPath)
	}
}
