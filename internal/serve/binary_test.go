package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/metrics"
	"extmesh/internal/wire"
	"extmesh/meshclient"
)

// startBinary runs the server's binary listener on a loopback port and
// returns its address; shutdown (with drain) happens in cleanup.
func startBinary(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ctx, l, 2*time.Second) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
	})
	return l.Addr().String()
}

func newBinaryClient(t *testing.T, addr string) *meshclient.BinaryClient {
	t.Helper()
	bc, err := meshclient.NewBinary(meshclient.BinaryOptions{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	return bc
}

// parityPairs is the query matrix the parity suites run: axis pairs,
// blocked endpoints, cross-fault diagonals, out-of-mesh coordinates.
func parityPairs() [][2]extmesh.Coord {
	return [][2]extmesh.Coord{
		{{X: 0, Y: 0}, {X: 15, Y: 15}},
		{{X: 0, Y: 0}, {X: 0, Y: 0}},
		{{X: 2, Y: 3}, {X: 9, Y: 8}},
		{{X: 15, Y: 0}, {X: 0, Y: 15}},
		{{X: 4, Y: 4}, {X: 7, Y: 7}},   // diagonal through the fault block
		{{X: 5, Y: 5}, {X: 9, Y: 9}},   // faulty source
		{{X: 1, Y: 1}, {X: 6, Y: 5}},   // faulty destination
		{{X: 12, Y: 13}, {X: 1, Y: 2}}, // negative-direction quadrant
		{{X: -1, Y: 3}, {X: 4, Y: 4}},  // out of mesh
		{{X: 3, Y: 3}, {X: 99, Y: 2}},  // out of mesh
	}
}

// TestBinaryParitySingle pins every single-pair binary op to the JSON
// endpoint and the direct library answer for the same query.
func TestBinaryParitySingle(t *testing.T) {
	s, ts, direct := newTestServer(t)
	bc := newBinaryClient(t, startBinary(t, s))
	ctx := context.Background()

	for _, model := range []string{"blocks", "mcc"} {
		fm := extmesh.Blocks
		if model == "mcc" {
			fm = extmesh.MCC
		}
		for i, pair := range parityPairs() {
			src, dst := pair[0], pair[1]
			q := meshclient.Query{Src: src, Dst: dst, Model: model}

			// Route: identical paths or identical failure status.
			binRoute, binErr := bc.Route(ctx, "m", q)
			var jsonRoute routeResponse
			jsonCode := post(t, ts.URL+"/v1/mesh/m/route", queryRequest{Src: src, Dst: dst, Model: model}, &jsonRoute)
			libPath, libErr := direct.Route(src, dst, fm)
			if (binErr != nil) != (libErr != nil) || (jsonCode != http.StatusOK) != (libErr != nil) {
				t.Fatalf("%s pair %d: route errors diverge: bin=%v json=%d lib=%v", model, i, binErr, jsonCode, libErr)
			}
			if libErr == nil {
				if binRoute.Hops != jsonRoute.Hops || binRoute.Hops != len(libPath)-1 {
					t.Fatalf("%s pair %d: hops bin=%d json=%d lib=%d", model, i, binRoute.Hops, jsonRoute.Hops, len(libPath)-1)
				}
				if !reflect.DeepEqual(binRoute.Path, extmesh.Path(jsonRoute.Path)) || !reflect.DeepEqual(binRoute.Path, libPath) {
					t.Fatalf("%s pair %d: paths diverge:\nbin  %v\njson %v\nlib  %v", model, i, binRoute.Path, jsonRoute.Path, libPath)
				}
			} else {
				var apiErr *meshclient.APIError
				if !errors.As(binErr, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity || jsonCode != http.StatusUnprocessableEntity {
					t.Fatalf("%s pair %d: route failure statuses: bin=%v json=%d", model, i, binErr, jsonCode)
				}
			}

			// Safe.
			binSafe, err := bc.Safe(ctx, "m", q)
			if err != nil {
				t.Fatalf("%s pair %d: binary safe: %v", model, i, err)
			}
			var jsonSafe struct {
				Safe bool `json:"safe"`
			}
			post(t, ts.URL+"/v1/mesh/m/safe", queryRequest{Src: src, Dst: dst, Model: model}, &jsonSafe)
			if libSafe := direct.Safe(src, dst, fm); binSafe != libSafe || jsonSafe.Safe != libSafe {
				t.Fatalf("%s pair %d: safe bin=%v json=%v lib=%v", model, i, binSafe, jsonSafe.Safe, libSafe)
			}

			// Ensure: verdict and witness waypoints.
			binEnsure, err := bc.Ensure(ctx, "m", q)
			if err != nil {
				t.Fatalf("%s pair %d: binary ensure: %v", model, i, err)
			}
			var jsonEnsure assuredResponse
			post(t, ts.URL+"/v1/mesh/m/ensure", queryRequest{Src: src, Dst: dst, Model: model}, &jsonEnsure)
			libAssure := direct.Ensure(src, dst, fm, extmesh.DefaultStrategy())
			if binEnsure.Verdict != libAssure.Verdict.String() || jsonEnsure.Verdict != libAssure.Verdict.String() {
				t.Fatalf("%s pair %d: verdict bin=%q json=%q lib=%q", model, i, binEnsure.Verdict, jsonEnsure.Verdict, libAssure.Verdict)
			}
			if !coordsEqual(binEnsure.Via, libAssure.Via()) || !coordsEqual(jsonEnsure.Via, libAssure.Via()) {
				t.Fatalf("%s pair %d: via bin=%v json=%v lib=%v", model, i, binEnsure.Via, jsonEnsure.Via, libAssure.Via())
			}

			// HasMinimalPath (model-independent).
			binHMP, err := bc.HasMinimalPath(ctx, "m", meshclient.Query{Src: src, Dst: dst})
			if err != nil {
				t.Fatalf("pair %d: binary has-minimal-path: %v", i, err)
			}
			var jsonHMP struct {
				Exists bool `json:"exists"`
			}
			post(t, ts.URL+"/v1/mesh/m/has-minimal-path", queryRequest{Src: src, Dst: dst}, &jsonHMP)
			if libHMP := direct.HasMinimalPath(src, dst); binHMP != libHMP || jsonHMP.Exists != libHMP {
				t.Fatalf("pair %d: exists bin=%v json=%v lib=%v", i, binHMP, jsonHMP.Exists, libHMP)
			}
		}
	}
}

// coordsEqual treats nil and empty as the same waypoint list (JSON
// omitempty drops empty lists).
func coordsEqual(a, b []extmesh.Coord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBinaryParityBatch pins the three batch ops across transports.
func TestBinaryParityBatch(t *testing.T) {
	s, ts, direct := newTestServer(t)
	bc := newBinaryClient(t, startBinary(t, s))
	ctx := context.Background()

	var pairs []meshclient.Pair
	var libPairs []extmesh.Pair
	var dests []extmesh.Coord
	for y := 0; y < 16; y += 3 {
		for x := 0; x < 16; x += 3 {
			c := extmesh.Coord{X: x, Y: y}
			pairs = append(pairs, meshclient.Pair{Src: extmesh.Coord{X: 0, Y: 0}, Dst: c})
			libPairs = append(libPairs, extmesh.Pair{Src: extmesh.Coord{X: 0, Y: 0}, Dst: c})
			dests = append(dests, c)
		}
	}
	src := extmesh.Coord{X: 0, Y: 0}

	// Route batch, with and without paths.
	for _, omit := range []bool{false, true} {
		binResults, err := bc.RouteBatch(ctx, "m", pairs, "blocks", omit)
		if err != nil {
			t.Fatal(err)
		}
		var jsonOut struct {
			Results []routeBatchResult `json:"results"`
		}
		post(t, ts.URL+"/v1/mesh/m/route/batch", routeBatchRequest{
			Pairs: pairsJSON(pairs), Model: "blocks", OmitPaths: omit,
		}, &jsonOut)
		libResults := direct.RouteMany(libPairs, extmesh.Blocks)
		if len(binResults) != len(libResults) || len(jsonOut.Results) != len(libResults) {
			t.Fatalf("omit=%v: lengths bin=%d json=%d lib=%d", omit, len(binResults), len(jsonOut.Results), len(libResults))
		}
		for i := range libResults {
			libErr := libResults[i].Err
			if (binResults[i].Error != "") != (libErr != nil) || (jsonOut.Results[i].Error != "") != (libErr != nil) {
				t.Fatalf("omit=%v pair %d: error presence diverges", omit, i)
			}
			if libErr != nil {
				continue
			}
			wantHops := len(libResults[i].Path) - 1
			if binResults[i].Hops != wantHops || jsonOut.Results[i].Hops != wantHops {
				t.Fatalf("omit=%v pair %d: hops bin=%d json=%d lib=%d", omit, i, binResults[i].Hops, jsonOut.Results[i].Hops, wantHops)
			}
			wantPath := libResults[i].Path
			if omit {
				wantPath = nil
			}
			if !reflect.DeepEqual(binResults[i].Path, wantPath) || !reflect.DeepEqual(extmesh.Path(jsonOut.Results[i].Path), wantPath) {
				t.Fatalf("omit=%v pair %d: paths diverge", omit, i)
			}
		}
	}

	// Has-minimal-path batch: one sweep, bit-packed on the wire.
	binBits, err := bc.HasMinimalPathBatch(ctx, "m", src, dests)
	if err != nil {
		t.Fatal(err)
	}
	var jsonBits struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v1/mesh/m/has-minimal-path/batch", fanRequest{Src: src, Dests: dests}, &jsonBits)
	libBits := direct.HasMinimalPathAll(src, dests)
	if !reflect.DeepEqual(binBits, libBits) || !reflect.DeepEqual(jsonBits.Results, libBits) {
		t.Fatalf("existence batches diverge:\nbin  %v\njson %v\nlib  %v", binBits, jsonBits.Results, libBits)
	}

	// Ensure batch.
	binEnsures, err := bc.EnsureBatch(ctx, "m", src, dests, "blocks")
	if err != nil {
		t.Fatal(err)
	}
	var jsonEnsures struct {
		Results []assuredResponse `json:"results"`
	}
	post(t, ts.URL+"/v1/mesh/m/ensure/batch", fanRequest{Src: src, Dests: dests, Model: "blocks"}, &jsonEnsures)
	libEnsures := direct.EnsureAll(src, dests, extmesh.Blocks, extmesh.DefaultStrategy())
	for i := range libEnsures {
		want := libEnsures[i].Verdict.String()
		if binEnsures[i].Verdict != want || jsonEnsures.Results[i].Verdict != want {
			t.Fatalf("dest %d: verdict bin=%q json=%q lib=%q", i, binEnsures[i].Verdict, jsonEnsures.Results[i].Verdict, want)
		}
		if !coordsEqual(binEnsures[i].Via, libEnsures[i].Via()) {
			t.Fatalf("dest %d: via bin=%v lib=%v", i, binEnsures[i].Via, libEnsures[i].Via())
		}
	}
}

func pairsJSON(pairs []meshclient.Pair) []pairJSON {
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{Src: p.Src, Dst: p.Dst}
	}
	return out
}

// TestBinaryErrors covers the protocol's failure surface: unknown mesh,
// empty and oversized batches, strategy rejection, unknown ops.
func TestBinaryErrors(t *testing.T) {
	s, _, _ := newTestServer(t)
	bc := newBinaryClient(t, startBinary(t, s))
	ctx := context.Background()

	wantStatus := func(err error, status int) {
		t.Helper()
		var apiErr *meshclient.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("error = %v, want API status %d", err, status)
		}
	}
	_, err := bc.Route(ctx, "nope", meshclient.Query{Src: extmesh.Coord{}, Dst: extmesh.Coord{X: 1, Y: 1}})
	wantStatus(err, http.StatusNotFound)

	_, err = bc.HasMinimalPathBatch(ctx, "m", extmesh.Coord{}, nil)
	wantStatus(err, http.StatusBadRequest)

	big := make([]extmesh.Coord, MaxBatch+1)
	_, err = bc.HasMinimalPathBatch(ctx, "m", extmesh.Coord{}, big)
	wantStatus(err, http.StatusBadRequest)

	strat := extmesh.DefaultStrategy()
	if _, err := bc.Ensure(ctx, "m", meshclient.Query{Strategy: &strat}); err == nil {
		t.Fatal("explicit strategy must be rejected client-side")
	}
	if _, err := bc.Route(ctx, "m", meshclient.Query{Model: "bogus"}); err == nil {
		t.Fatal("unknown model must be rejected client-side")
	}
}

// TestBinaryPipelining writes a burst of frames before reading any
// response and checks the answers come back complete and in order.
func TestBinaryPipelining(t *testing.T) {
	s, _, direct := newTestServer(t)
	addr := startBinary(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const depth = 64
	var burst []byte
	var body []byte
	for i := 0; i < depth; i++ {
		dst := extmesh.Coord{X: i % 16, Y: (i * 7) % 16}
		body = wire.AppendRequest(body[:0], &wire.Request{
			ID: uint32(i + 1), Op: wire.OpHasMinimalPath, Mesh: "m",
			Src: extmesh.Coord{X: 0, Y: 0}, Dst: dst,
		})
		var prefix [4]byte
		binary.LittleEndian.PutUint32(prefix[:], uint32(len(body)))
		burst = append(burst, prefix[:]...)
		burst = append(burst, body...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		frame, err := wire.ReadFrame(conn, wire.MaxResponseFrame, nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		resp, err := wire.DecodeResponse(frame, wire.OpHasMinimalPath)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.ID != uint32(i+1) {
			t.Fatalf("response %d has id %d: pipelined order broken", i, resp.ID)
		}
		dst := extmesh.Coord{X: i % 16, Y: (i * 7) % 16}
		if want := direct.HasMinimalPath(extmesh.Coord{X: 0, Y: 0}, dst); resp.Bool != want {
			t.Fatalf("response %d: exists=%v, lib says %v", i, resp.Bool, want)
		}
	}
}

// TestBinaryMalformedFrames checks stream hygiene: a malformed request
// body still gets a response frame (the stream stays synchronized),
// while an oversized length prefix closes the connection.
func TestBinaryMalformedFrames(t *testing.T) {
	s, _, _ := newTestServer(t)
	addr := startBinary(t, s)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Truncated body: 4 id bytes, then nothing.
	if err := wire.WriteFrame(conn, []byte{9, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.ReadFrame(conn, wire.MaxResponseFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(frame, wire.OpRoute)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 9 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("truncated body answered id=%d status=%d", resp.ID, resp.Status)
	}

	// The connection is still usable after the error response.
	body := wire.AppendRequest(nil, &wire.Request{
		ID: 10, Op: wire.OpSafe, Mesh: "m", Src: extmesh.Coord{}, Dst: extmesh.Coord{X: 3, Y: 3},
	})
	if err := wire.WriteFrame(conn, body); err != nil {
		t.Fatal(err)
	}
	if frame, err = wire.ReadFrame(conn, wire.MaxResponseFrame, nil); err != nil {
		t.Fatal(err)
	}
	if resp, err = wire.DecodeResponse(frame, wire.OpSafe); err != nil || resp.ID != 10 || resp.Status != wire.StatusOK {
		t.Fatalf("post-error request: resp=%+v err=%v", resp, err)
	}

	// Oversized length prefix: the server must drop the connection.
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], wire.MaxRequestFrame+1)
	if _, err := conn.Write(huge[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(conn, wire.MaxResponseFrame, nil); err == nil {
		t.Fatal("oversized frame did not close the connection")
	}
}

// TestBinaryReconnect kills the client's connection server-side and
// checks the next call transparently redials.
func TestBinaryReconnect(t *testing.T) {
	s, _, direct := newTestServer(t)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeBinary(ctx, l, time.Second) }()
	bc := newBinaryClient(t, l.Addr().String())

	q := meshclient.Query{Src: extmesh.Coord{X: 0, Y: 0}, Dst: extmesh.Coord{X: 9, Y: 9}}
	first, err := bc.Route(context.Background(), "m", q)
	if err != nil {
		t.Fatal(err)
	}

	// Bounce the whole binary listener: established connections die.
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	l2, err := net.Listen("tcp", l.Addr().String())
	if err != nil {
		t.Skipf("cannot rebind %v: %v", l.Addr(), err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() { done2 <- s.ServeBinary(ctx2, l2, time.Second) }()
	t.Cleanup(func() {
		cancel2()
		<-done2
	})

	second, err := bc.Route(context.Background(), "m", q)
	if err != nil {
		t.Fatalf("post-restart route did not reconnect: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("answers diverge across reconnect: %+v vs %+v", first, second)
	}
	if want, _ := direct.Route(q.Src, q.Dst, extmesh.Blocks); !reflect.DeepEqual(second.Path, want) {
		t.Fatalf("post-reconnect path %v, lib %v", second.Path, want)
	}
}

// FuzzBinaryFrames feeds arbitrary bytes to the frame decoder and the
// full server frame handler. Nothing may panic; every handled frame
// must produce a decodable response header; hostile length fields must
// not balloon allocations (the decoder validates counts against the
// bytes actually present).
func FuzzBinaryFrames(f *testing.F) {
	seed := func(r *wire.Request) []byte { return wire.AppendRequest(nil, r) }
	f.Add(seed(&wire.Request{ID: 1, Op: wire.OpRoute, Mesh: "m", Src: extmesh.Coord{}, Dst: extmesh.Coord{X: 7, Y: 7}}))
	f.Add(seed(&wire.Request{ID: 2, Op: wire.OpHasMinimalPath, Mesh: "m", Dst: extmesh.Coord{X: 3, Y: 9}}))
	f.Add(seed(&wire.Request{ID: 3, Op: wire.OpSafe, Flags: wire.FlagMCC, Mesh: "m", Dst: extmesh.Coord{X: 2, Y: 2}}))
	f.Add(seed(&wire.Request{ID: 4, Op: wire.OpEnsure, Mesh: "m", Dst: extmesh.Coord{X: 5, Y: 1}}))
	f.Add(seed(&wire.Request{ID: 5, Op: wire.OpRouteBatch, Flags: wire.FlagOmitPaths, Mesh: "m",
		Pairs: []extmesh.Coord{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}, {X: 0, Y: 2}}}))
	f.Add(seed(&wire.Request{ID: 6, Op: wire.OpHasMinimalPathBatch, Mesh: "m",
		Dests: []extmesh.Coord{{X: 1, Y: 1}, {X: 4, Y: 4}}}))
	f.Add(seed(&wire.Request{ID: 7, Op: wire.OpEnsureBatch, Mesh: "m",
		Dests: []extmesh.Coord{{X: 1, Y: 1}}}))
	// Adversarial: truncations, absurd counts, huge name length, unknown
	// op, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 99, 0, 1, 'm'})
	f.Add([]byte{1, 0, 0, 0, wire.OpRouteBatch, 0, 1, 'm', 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0, wire.OpHasMinimalPathBatch, 0, 1, 'm', 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff})
	f.Add(append(seed(&wire.Request{ID: 8, Op: wire.OpSafe, Mesh: "m"}), 0xde, 0xad))

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > wire.MaxRequestFrame {
			t.Skip() // the framing layer rejects these before decode
		}
		// The decoder alone must be total on arbitrary bytes.
		req, _ := wire.DecodeRequest(body)

		// And the full handler must answer every frame with a response
		// the client-side decoder accepts.
		s := New(Options{Metrics: metrics.NewRegistry()})
		d, err := extmesh.NewDynamic(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Meshes().Create("m", d); err != nil {
			t.Fatal(err)
		}
		b := newBinaryServer(s)
		resp := b.handleFrame(nil, body)
		if len(resp) < 5 {
			t.Fatalf("response frame of %d bytes has no header", len(resp))
		}
		status := resp[4]
		if status > wire.StatusSaturated {
			t.Fatalf("implausible status %d", status)
		}
		if status == wire.StatusInternal {
			t.Fatalf("handler blamed itself for client bytes %q", body)
		}
		if req != nil && status == wire.StatusOK {
			if _, err := wire.DecodeResponse(resp, req.Op); err != nil {
				t.Fatalf("OK response for op %d does not decode: %v", req.Op, err)
			}
		}
	})
}
