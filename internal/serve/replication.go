package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/wire"
)

// Replication timing. Heartbeats flow primary → replica during idle
// periods; a follower that cannot absorb a write within repWriteTimeout
// is cut off (it reconnects and resumes), and a replica that sees
// nothing for repStallTimeout treats the link as dead. repAckWait
// bounds how long a mutation response waits for one follower to
// acknowledge the record before answering 503 — the window in which a
// write is applied locally but not yet confirmed replicated.
const (
	repHeartbeatEvery = 500 * time.Millisecond
	repWriteTimeout   = 2 * time.Second
	repStallTimeout   = 5 * time.Second
	repAckWait        = 2 * time.Second
	// clientNudgeMinGap floors the interval between failover re-probes
	// triggered by client-supplied X-Cluster-Epoch headers, which are
	// unauthenticated and may be fabricated.
	clientNudgeMinGap = time.Second
)

// repSub is one follower's live feed: journaled records are pushed into
// ch under the persister lock, in append order. The buffer absorbs
// bursts; overflow closes the channel, which the writer loop treats as
// an instruction to drop the connection.
type repSub struct {
	ch chan journal.Record
}

// repSnapshotPayload is the RepSnapshot frame body: the full registry
// state, keyed by mesh name.
type repSnapshotPayload struct {
	Meshes map[string]journal.SnapshotMesh `json:"meshes"`
}

// repHub is the primary side of replication: it owns the follower set
// and turns the persister's record feed into RepRecord frames.
type repHub struct {
	s *Server

	mu        sync.Mutex
	serving   bool
	followers map[*repFollower]struct{}
	// maxAcked is the highest sequence number any follower has
	// acknowledged; ackWaiters are mutation responses blocked in
	// waitAcked until it passes their record.
	maxAcked   uint64
	ackWaiters []*ackWaiter
	lastAck    time.Time

	followerGauge *metrics.Gauge
	recordsSent   *metrics.Counter
	snapshotsSent *metrics.Counter
	connects      *metrics.Counter
	drops         *metrics.Counter
	fencesSent    *metrics.Counter
	goodbyesSent  *metrics.Counter
	probesServed  *metrics.Counter
}

// repFollower is one connected replica, as the primary sees it.
type repFollower struct {
	conn  net.Conn
	addr  string
	since uint64
	acked atomic.Uint64
}

// ackWaiter is one mutation response waiting for follower confirmation.
type ackWaiter struct {
	seq  uint64
	ch   chan error
	done bool
}

// errUnconfirmed is waitAcked's verdict when the record could not be
// confirmed on any follower: the write applied locally but the client
// must not treat it as cluster-durable.
var errUnconfirmed = errors.New("serve: write not confirmed by any replica")

func newRepHub(s *Server) *repHub {
	m := s.metrics
	return &repHub{
		s:             s,
		followers:     make(map[*repFollower]struct{}),
		followerGauge: m.Gauge("replication_followers"),
		recordsSent:   m.Counter("replication_records_sent_total"),
		snapshotsSent: m.Counter("replication_snapshots_sent_total"),
		connects:      m.Counter("replication_connects_total"),
		drops:         m.Counter("replication_drops_total"),
		fencesSent:    m.Counter("replication_fences_sent_total"),
		goodbyesSent:  m.Counter("replication_goodbyes_sent_total"),
		probesServed:  m.Counter("replication_probes_served_total"),
	}
}

// ServeReplication runs the replication listener until ctx is
// canceled, then closes every follower connection — after a best-effort
// RepGoodbye to each, so followers start their failover deadline
// immediately instead of waiting out a silent-link timeout. Requires a
// journal: resume-from-offset is meaningless without one.
//
// In a failover-managed cluster every node runs ServeReplication for
// its whole life: probes are answered in any role, but hellos are only
// served a stream while the node is primary (others get RepFence).
func (s *Server) ServeReplication(ctx context.Context, l net.Listener) error {
	if s.persist.store == nil {
		return fmt.Errorf("serve: replication requires a journal (-data-dir)")
	}
	h := s.hub
	h.mu.Lock()
	h.serving = true
	h.mu.Unlock()

	var wg sync.WaitGroup
	errc := make(chan error, 1)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					errc <- nil
				} else {
					errc <- err
				}
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.serveFollower(ctx, conn)
			}()
		}
	}()
	var err error
	select {
	case err = <-errc:
	case <-ctx.Done():
		l.Close()
		<-errc
		// Bounded grace before severing connections: the follower loops
		// are delivering their goodbye frames right now, and a goodbye
		// that arrives is the difference between an immediate failover
		// and a full stall-deadline wait on the other side.
		drained := make(chan struct{})
		go func() { wg.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-time.After(time.Second):
		}
	}
	h.closeFollowers()
	wg.Wait()
	return err
}

func (h *repHub) closeFollowers() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := range h.followers {
		f.conn.Close()
	}
}

// noteAck records a follower acknowledgment and wakes every waiter
// whose record it confirms.
func (h *repHub) noteAck(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.lastAck = time.Now()
	if seq > h.maxAcked {
		h.maxAcked = seq
	}
	kept := h.ackWaiters[:0]
	for _, w := range h.ackWaiters {
		if w.seq <= h.maxAcked {
			w.done = true
			w.ch <- nil
		} else {
			kept = append(kept, w)
		}
	}
	h.ackWaiters = kept
}

// followerGone releases waiters when the follower set empties: in a
// failover-managed cluster they fail (the write is unconfirmed and a
// promotion could discard it); outside one they proceed, preserving
// the single-primary availability semantics replication had before
// failover existed.
func (h *repHub) followerGone() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.followers) > 0 {
		return
	}
	var verdict error
	if h.s.failover.Load() != nil {
		verdict = errUnconfirmed
	}
	for _, w := range h.ackWaiters {
		w.done = true
		w.ch <- verdict
	}
	h.ackWaiters = h.ackWaiters[:0]
}

// waitAcked blocks until any follower acknowledges seq, the follower
// set empties, or the timeout passes. With no followers connected it
// returns immediately: nil outside failover-managed clusters (the
// pre-failover contract), errUnconfirmed inside them (the lease rule:
// a primary that nobody replicates must not acknowledge writes).
func (h *repHub) waitAcked(seq uint64, timeout time.Duration) error {
	h.mu.Lock()
	if h.maxAcked >= seq {
		h.mu.Unlock()
		return nil
	}
	if len(h.followers) == 0 {
		managed := h.s.failover.Load() != nil
		h.mu.Unlock()
		if managed {
			return errUnconfirmed
		}
		return nil
	}
	w := &ackWaiter{seq: seq, ch: make(chan error, 1)}
	h.ackWaiters = append(h.ackWaiters, w)
	h.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-t.C:
		h.mu.Lock()
		if !w.done {
			for i, x := range h.ackWaiters {
				if x == w {
					h.ackWaiters = append(h.ackWaiters[:i], h.ackWaiters[i+1:]...)
					break
				}
			}
			h.mu.Unlock()
			return errUnconfirmed
		}
		h.mu.Unlock()
		return <-w.ch
	}
}

// lastAckAge reports the follower count and how long ago the last ack
// arrived — the failover controller's lease inputs.
func (h *repHub) lastAckAge() (followers int, age time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastAck.IsZero() {
		return len(h.followers), time.Duration(1<<62 - 1)
	}
	return len(h.followers), time.Since(h.lastAck)
}

// resetLease stamps the ack clock — called at promotion so the fresh
// primary gets a full lease window to attract followers.
func (h *repHub) resetLease() {
	h.mu.Lock()
	h.lastAck = time.Now()
	h.mu.Unlock()
}

// serveFollower speaks one replica connection: handshake, catch-up
// (incremental tail or full snapshot), then the live feed interleaved
// with heartbeats. A reader goroutine consumes RepAcks for lag
// accounting and closes the conn on any stream error. One-shot RepProbe
// connections are answered with RepState in any role; hellos reaching a
// non-primary (or carrying a newer epoch than ours — we are the stale
// one) are answered with RepFence.
func (h *repHub) serveFollower(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	h.connects.Inc()
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(repStallTimeout))
	body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, nil)
	if err != nil {
		return
	}
	hello, err := wire.DecodeRepMessage(body)
	if err != nil {
		return
	}
	send := func(m *wire.RepMessage) bool {
		m.Epoch = h.s.Epoch()
		conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
		if wire.WriteFrame(bw, wire.AppendRepMessage(nil, m)) != nil {
			return false
		}
		return bw.Flush() == nil
	}
	stateFrame := func(typ uint8) *wire.RepMessage {
		blob, _ := json.Marshal(h.s.nodeState())
		return &wire.RepMessage{Type: typ, Seq: h.s.journalSeq.Load(), Payload: blob}
	}

	switch hello.Type {
	case wire.RepProbe:
		h.probesServed.Inc()
		if hello.Epoch > h.s.Epoch() {
			h.s.nudgeFailover()
		}
		send(stateFrame(wire.RepState))
		return
	case wire.RepHello:
	default:
		return
	}

	if hello.Epoch > h.s.Epoch() {
		// The dialer has seen a newer epoch than ours: we are the stale
		// node here. Fence the stream and let the failover controller
		// re-evaluate who is primary.
		h.fencesSent.Inc()
		h.s.nudgeFailover()
		send(stateFrame(wire.RepFence))
		return
	}
	if !h.s.acceptsFollowers() {
		h.fencesSent.Inc()
		send(stateFrame(wire.RepFence))
		return
	}

	f := &repFollower{conn: conn, addr: conn.RemoteAddr().String(), since: hello.Seq}
	f.acked.Store(hello.Seq)

	// Catch-up state and subscription are computed under one hold of
	// the persister lock: nothing can be appended between the two, so
	// the tail plus the feed is gap-free and duplicate-free. An epoch
	// mismatch in the hello forces the snapshot path: a follower that
	// lived through a different epoch may hold a divergent un-acked
	// suffix at overlapping sequence numbers, which only an
	// authoritative snapshot install can truncate.
	forceSnap := hello.Epoch != h.s.Epoch()
	snap, recs, sub, err := h.s.persist.subscribe(hello.Seq, forceSnap)
	if err != nil {
		return
	}
	defer h.s.persist.unsubscribe(sub)

	h.mu.Lock()
	h.followers[f] = struct{}{}
	h.followerGauge.Set(int64(len(h.followers)))
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.followers, f)
		h.followerGauge.Set(int64(len(h.followers)))
		h.mu.Unlock()
		h.followerGone()
		h.drops.Inc()
	}()

	// Ack reader: updates the follower's applied watermark and closes
	// the conn on error, which unblocks the writer below. An ack from a
	// newer epoch means a promotion happened past us: drop the conn and
	// nudge the controller to re-probe.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := []byte(nil)
		for {
			conn.SetReadDeadline(time.Now().Add(repStallTimeout))
			body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, buf)
			if err != nil {
				conn.Close()
				return
			}
			buf = body[:0]
			m, err := wire.DecodeRepMessage(body)
			if err != nil || m.Type != wire.RepAck {
				conn.Close()
				return
			}
			if m.Epoch > h.s.Epoch() {
				h.s.nudgeFailover()
				conn.Close()
				return
			}
			f.acked.Store(m.Seq)
			h.noteAck(m.Seq)
		}
	}()

	push := func(m *wire.RepMessage) bool {
		m.Epoch = h.s.Epoch()
		conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
		return wire.WriteFrame(bw, wire.AppendRepMessage(nil, m)) == nil
	}
	if snap != nil {
		h.snapshotsSent.Inc()
		if !push(&wire.RepMessage{Type: wire.RepSnapshot, Seq: snap.seq, Payload: snap.blob}) {
			return
		}
	}
	for _, r := range recs {
		blob, err := json.Marshal(r)
		if err != nil {
			return
		}
		if !push(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
			return
		}
		h.recordsSent.Inc()
	}
	if bw.Flush() != nil {
		return
	}

	hb := time.NewTicker(h.s.opts.RepHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful drain: tell the follower we are leaving so it
			// starts failover immediately rather than timing the link
			// out. Then wait (briefly) for the follower to hang up:
			// closing our end the instant the frame is flushed can turn
			// an unread ack in our receive buffer into a connection
			// reset that destroys the goodbye before it is read.
			h.goodbyesSent.Inc()
			if send(&wire.RepMessage{Type: wire.RepGoodbye, Seq: h.s.journalSeq.Load()}) {
				select {
				case <-readerDone:
				case <-time.After(500 * time.Millisecond):
				}
			}
			return
		case r, ok := <-sub.ch:
			if !ok {
				return // overflowed: the replica resyncs on reconnect
			}
			blob, err := json.Marshal(r)
			if err != nil {
				return
			}
			if !push(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
				return
			}
			h.recordsSent.Inc()
			// Drain whatever else is already queued before flushing, so
			// a burst of mutations pays one syscall.
			for len(sub.ch) > 0 {
				r, ok := <-sub.ch
				if !ok {
					return
				}
				blob, err := json.Marshal(r)
				if err != nil {
					return
				}
				if !push(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
					return
				}
				h.recordsSent.Inc()
			}
			if bw.Flush() != nil {
				return
			}
		case <-hb.C:
			if !push(&wire.RepMessage{Type: wire.RepHeartbeat, Seq: h.s.journalSeq.Load()}) {
				return
			}
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// nodeState is this node's self-description for probes, fences and
// client rediscovery. PrimaryAgeMS carries the liveness evidence a
// candidate needs to recognize an asymmetric partition: if this node
// still hears its primary, a peer that cannot must not promote.
func (s *Server) nodeState() *wire.NodeState {
	st := &wire.NodeState{
		NodeID:       s.opts.NodeID,
		Role:         s.roleString(),
		Epoch:        s.Epoch(),
		Head:         s.journalSeq.Load(),
		Fenced:       s.fenced.Load(),
		PrimaryAgeMS: -1,
	}
	if r := s.replica.Load(); r != nil && st.Role == "replica" {
		st.PrimaryAgeMS = max(time.Since(r.LastContact()).Milliseconds(), 0)
	}
	return st
}

// nudgeFailover pokes the failover controller (if any) to re-probe the
// peer set — called when evidence of a newer epoch arrives.
func (s *Server) nudgeFailover() {
	if f := s.failover.Load(); f != nil {
		f.nudge()
	}
}

// repCatchup is a full-snapshot catch-up: the registry state at seq.
type repCatchup struct {
	seq  uint64
	blob []byte
}

// subscribe registers a follower resuming after `since` and computes
// its catch-up under one hold of the mutation lock: either the
// incremental record tail, or — when compaction folded the requested
// offset away, the follower is ahead of us (a rewind), or forceSnap is
// set (epoch mismatch: the follower may hold a divergent suffix) — a
// full snapshot at the current head. Gap-freedom follows from the
// lock: every record appended after this call lands in sub.ch.
func (p *persister) subscribe(since uint64, forceSnap bool) (snap *repCatchup, recs []journal.Record, sub *repSub, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	head := p.store.Seq()
	needSnap := forceSnap || since > head // follower ahead of us: authoritative rewind
	if !needSnap {
		var ok bool
		recs, ok, err = p.store.ReadSince(since)
		if err != nil {
			return nil, nil, nil, err
		}
		needSnap = !ok // compaction folded the offset away
	}
	if needSnap {
		recs = nil
		state, err := p.snapshotState()
		if err != nil {
			return nil, nil, nil, err
		}
		blob, err := json.Marshal(repSnapshotPayload{Meshes: state})
		if err != nil {
			return nil, nil, nil, err
		}
		snap = &repCatchup{seq: head, blob: blob}
	}
	sub = &repSub{ch: make(chan journal.Record, 1024)}
	p.subs[sub] = struct{}{}
	return snap, recs, sub, nil
}

func (p *persister) unsubscribe(sub *repSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subs[sub]; ok {
		delete(p.subs, sub)
		close(sub.ch)
	}
}

// --- status endpoint -------------------------------------------------

// FollowerStatus is one connected replica in the /replication answer.
type FollowerStatus struct {
	Addr     string `json:"addr"`
	AckedSeq uint64 `json:"acked_seq"`
	Lag      uint64 `json:"lag"`
}

// ReplicationStatus is the GET /replication body. NodeID and Epoch are
// what cluster clients use for primary rediscovery after a failover.
type ReplicationStatus struct {
	Role         string           `json:"role"` // "primary", "replica" or "single"
	NodeID       string           `json:"node_id,omitempty"`
	Epoch        uint64           `json:"epoch"`
	Seq          uint64           `json:"seq"`
	Fenced       bool             `json:"fenced,omitempty"`
	Promotions   uint64           `json:"promotions"`
	FencedWrites uint64           `json:"fenced_writes"`
	Followers    []FollowerStatus `json:"followers,omitempty"`
	Source       string           `json:"source,omitempty"`
	Connected    bool             `json:"connected,omitempty"`
	Lag          uint64           `json:"lag,omitempty"`
	LastError    string           `json:"last_error,omitempty"`
}

// ReplicationStatus reports the node's replication role and progress.
func (s *Server) ReplicationStatus() ReplicationStatus {
	st := ReplicationStatus{
		Role:         s.roleString(),
		NodeID:       s.opts.NodeID,
		Epoch:        s.Epoch(),
		Seq:          s.journalSeq.Load(),
		Fenced:       s.fenced.Load(),
		Promotions:   s.promotions.Value(),
		FencedWrites: s.fencedWrites.Value(),
	}
	if r := s.replica.Load(); r != nil && st.Role == "replica" {
		st.Source, st.Connected, st.Lag, st.LastError = r.status()
		return st
	}
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := range h.followers {
		acked := f.acked.Load()
		var lag uint64
		if st.Seq > acked {
			lag = st.Seq - acked
		}
		st.Followers = append(st.Followers, FollowerStatus{Addr: f.addr, AckedSeq: acked, Lag: lag})
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].Addr < st.Followers[j].Addr })
	return st
}

func (s *Server) handleReplicationStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ReplicationStatus())
}
