package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/wire"
)

// Replication timing. Heartbeats flow primary → replica during idle
// periods; a follower that cannot absorb a write within repWriteTimeout
// is cut off (it reconnects and resumes), and a replica that sees
// nothing for repStallTimeout treats the link as dead.
const (
	repHeartbeatEvery = 500 * time.Millisecond
	repWriteTimeout   = 2 * time.Second
	repStallTimeout   = 5 * time.Second
)

// repSub is one follower's live feed: journaled records are pushed into
// ch under the persister lock, in append order. The buffer absorbs
// bursts; overflow closes the channel, which the writer loop treats as
// an instruction to drop the connection.
type repSub struct {
	ch chan journal.Record
}

// repSnapshotPayload is the RepSnapshot frame body: the full registry
// state, keyed by mesh name.
type repSnapshotPayload struct {
	Meshes map[string]journal.SnapshotMesh `json:"meshes"`
}

// repHub is the primary side of replication: it owns the follower set
// and turns the persister's record feed into RepRecord frames.
type repHub struct {
	s *Server

	mu        sync.Mutex
	serving   bool
	followers map[*repFollower]struct{}

	followerGauge *metrics.Gauge
	recordsSent   *metrics.Counter
	snapshotsSent *metrics.Counter
	connects      *metrics.Counter
	drops         *metrics.Counter
}

// repFollower is one connected replica, as the primary sees it.
type repFollower struct {
	conn  net.Conn
	addr  string
	since uint64
	acked atomic.Uint64
}

func newRepHub(s *Server) *repHub {
	m := s.metrics
	return &repHub{
		s:             s,
		followers:     make(map[*repFollower]struct{}),
		followerGauge: m.Gauge("replication_followers"),
		recordsSent:   m.Counter("replication_records_sent_total"),
		snapshotsSent: m.Counter("replication_snapshots_sent_total"),
		connects:      m.Counter("replication_connects_total"),
		drops:         m.Counter("replication_drops_total"),
	}
}

// ServeReplication runs the replication listener until ctx is
// canceled, then closes every follower connection. Requires a journal:
// resume-from-offset is meaningless without one.
func (s *Server) ServeReplication(ctx context.Context, l net.Listener) error {
	if s.persist.store == nil {
		return fmt.Errorf("serve: replication requires a journal (-data-dir)")
	}
	h := s.hub
	h.mu.Lock()
	h.serving = true
	h.mu.Unlock()

	var wg sync.WaitGroup
	errc := make(chan error, 1)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					errc <- nil
				} else {
					errc <- err
				}
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				h.serveFollower(ctx, conn)
			}()
		}
	}()
	var err error
	select {
	case err = <-errc:
	case <-ctx.Done():
		l.Close()
		<-errc
	}
	h.closeFollowers()
	wg.Wait()
	return err
}

func (h *repHub) closeFollowers() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := range h.followers {
		f.conn.Close()
	}
}

// serveFollower speaks one replica connection: handshake, catch-up
// (incremental tail or full snapshot), then the live feed interleaved
// with heartbeats. A reader goroutine consumes RepAcks for lag
// accounting and closes the conn on any stream error.
func (h *repHub) serveFollower(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	h.connects.Inc()
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(repStallTimeout))
	body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, nil)
	if err != nil {
		return
	}
	hello, err := wire.DecodeRepMessage(body)
	if err != nil || hello.Type != wire.RepHello {
		return
	}
	f := &repFollower{conn: conn, addr: conn.RemoteAddr().String(), since: hello.Seq}
	f.acked.Store(hello.Seq)

	// Catch-up state and subscription are computed under one hold of
	// the persister lock: nothing can be appended between the two, so
	// the tail plus the feed is gap-free and duplicate-free.
	snap, recs, sub, err := h.s.persist.subscribe(hello.Seq)
	if err != nil {
		return
	}
	defer h.s.persist.unsubscribe(sub)

	h.mu.Lock()
	h.followers[f] = struct{}{}
	h.followerGauge.Set(int64(len(h.followers)))
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.followers, f)
		h.followerGauge.Set(int64(len(h.followers)))
		h.mu.Unlock()
		h.drops.Inc()
	}()

	// Ack reader: updates the follower's applied watermark and closes
	// the conn on error, which unblocks the writer below.
	go func() {
		buf := []byte(nil)
		for {
			conn.SetReadDeadline(time.Now().Add(repStallTimeout))
			body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, buf)
			if err != nil {
				conn.Close()
				return
			}
			buf = body[:0]
			m, err := wire.DecodeRepMessage(body)
			if err != nil || m.Type != wire.RepAck {
				conn.Close()
				return
			}
			f.acked.Store(m.Seq)
		}
	}()

	send := func(m *wire.RepMessage) bool {
		conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
		return wire.WriteFrame(bw, wire.AppendRepMessage(nil, m)) == nil
	}
	if snap != nil {
		h.snapshotsSent.Inc()
		if !send(&wire.RepMessage{Type: wire.RepSnapshot, Seq: snap.seq, Payload: snap.blob}) {
			return
		}
	}
	for _, r := range recs {
		blob, err := json.Marshal(r)
		if err != nil {
			return
		}
		if !send(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
			return
		}
		h.recordsSent.Inc()
	}
	if bw.Flush() != nil {
		return
	}

	hb := time.NewTicker(repHeartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case r, ok := <-sub.ch:
			if !ok {
				return // overflowed: the replica resyncs on reconnect
			}
			blob, err := json.Marshal(r)
			if err != nil {
				return
			}
			if !send(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
				return
			}
			h.recordsSent.Inc()
			// Drain whatever else is already queued before flushing, so
			// a burst of mutations pays one syscall.
			for len(sub.ch) > 0 {
				r, ok := <-sub.ch
				if !ok {
					return
				}
				blob, err := json.Marshal(r)
				if err != nil {
					return
				}
				if !send(&wire.RepMessage{Type: wire.RepRecord, Seq: r.Seq, Payload: blob}) {
					return
				}
				h.recordsSent.Inc()
			}
			if bw.Flush() != nil {
				return
			}
		case <-hb.C:
			if !send(&wire.RepMessage{Type: wire.RepHeartbeat, Seq: h.s.journalSeq.Load()}) {
				return
			}
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// repCatchup is a full-snapshot catch-up: the registry state at seq.
type repCatchup struct {
	seq  uint64
	blob []byte
}

// subscribe registers a follower resuming after `since` and computes
// its catch-up under one hold of the mutation lock: either the
// incremental record tail, or — when compaction folded the requested
// offset away, or the follower is ahead of us (a rewind) — a full
// snapshot at the current head. Gap-freedom follows from the lock:
// every record appended after this call lands in sub.ch.
func (p *persister) subscribe(since uint64) (snap *repCatchup, recs []journal.Record, sub *repSub, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	head := p.store.Seq()
	needSnap := since > head // follower ahead of us: authoritative rewind
	if !needSnap {
		var ok bool
		recs, ok, err = p.store.ReadSince(since)
		if err != nil {
			return nil, nil, nil, err
		}
		needSnap = !ok // compaction folded the offset away
	}
	if needSnap {
		recs = nil
		state, err := p.snapshotState()
		if err != nil {
			return nil, nil, nil, err
		}
		blob, err := json.Marshal(repSnapshotPayload{Meshes: state})
		if err != nil {
			return nil, nil, nil, err
		}
		snap = &repCatchup{seq: head, blob: blob}
	}
	sub = &repSub{ch: make(chan journal.Record, 1024)}
	p.subs[sub] = struct{}{}
	return snap, recs, sub, nil
}

func (p *persister) unsubscribe(sub *repSub) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.subs[sub]; ok {
		delete(p.subs, sub)
		close(sub.ch)
	}
}

// --- status endpoint -------------------------------------------------

// FollowerStatus is one connected replica in the /replication answer.
type FollowerStatus struct {
	Addr     string `json:"addr"`
	AckedSeq uint64 `json:"acked_seq"`
	Lag      uint64 `json:"lag"`
}

// ReplicationStatus is the GET /replication body.
type ReplicationStatus struct {
	Role      string           `json:"role"` // "primary", "replica" or "single"
	Seq       uint64           `json:"seq"`
	Followers []FollowerStatus `json:"followers,omitempty"`
	Source    string           `json:"source,omitempty"`
	Connected bool             `json:"connected,omitempty"`
	Lag       uint64           `json:"lag,omitempty"`
	LastError string           `json:"last_error,omitempty"`
}

// ReplicationStatus reports the node's replication role and progress.
func (s *Server) ReplicationStatus() ReplicationStatus {
	st := ReplicationStatus{Role: "single", Seq: s.journalSeq.Load()}
	if r := s.replica.Load(); r != nil {
		st.Role = "replica"
		st.Source, st.Connected, st.Lag, st.LastError = r.status()
		return st
	}
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.serving {
		st.Role = "primary"
	}
	for f := range h.followers {
		acked := f.acked.Load()
		var lag uint64
		if st.Seq > acked {
			lag = st.Seq - acked
		}
		st.Followers = append(st.Followers, FollowerStatus{Addr: f.addr, AckedSeq: acked, Lag: lag})
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].Addr < st.Followers[j].Addr })
	return st
}

func (s *Server) handleReplicationStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ReplicationStatus())
}
