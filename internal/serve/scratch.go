package serve

import (
	"sync"

	"extmesh"
)

// reqScratch is the per-request storage of the route-bound endpoints —
// the decoded pair list, the batch route arena, a single-route path
// buffer, the existence-result buffer and the JSON batch result slice
// — pooled so a warm serving plane answers route traffic with zero
// steady-state allocation in the routing layer. Handlers fully
// serialize their response before the scratch returns to the pool, so
// no buffer outlives its request.
type reqScratch struct {
	pairs []extmesh.Pair
	arena extmesh.RouteArena
	path  extmesh.Path
	bools []bool
	out   []routeBatchResult
}

var scratchPool = sync.Pool{New: func() any { return new(reqScratch) }}
