package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"extmesh"
	"extmesh/internal/metrics"
)

// FuzzServeRequests throws arbitrary bodies at every JSON-decoding
// endpoint. The server must never panic, must answer every request
// with a plausible status code, and must keep error responses as
// well-formed JSON. Batch-size and body-size caps mean even adversarial
// inputs are bounded work.
func FuzzServeRequests(f *testing.F) {
	// Well-formed seeds so the fuzzer learns the request shapes.
	f.Add("/v1/mesh/m/route", `{"src":{"x":0,"y":0},"dst":{"x":7,"y":7}}`)
	f.Add("/v1/mesh/m/route", `{"src":{"x":0,"y":0},"dst":{"x":7,"y":7},"model":"mcc","omit_path":true}`)
	f.Add("/v1/mesh/m/route-assured", `{"src":{"x":1,"y":1},"dst":{"x":6,"y":2}}`)
	f.Add("/v1/mesh/m/safe", `{"src":{"x":0,"y":0},"dst":{"x":3,"y":3}}`)
	f.Add("/v1/mesh/m/ensure", `{"src":{"x":0,"y":0},"dst":{"x":3,"y":3},"model":"blocks"}`)
	f.Add("/v1/mesh/m/has-minimal-path", `{"src":{"x":0,"y":0},"dst":{"x":7,"y":7}}`)
	f.Add("/v1/mesh/m/route/batch", `{"pairs":[{"src":{"x":0,"y":0},"dst":{"x":1,"y":1}}],"omit_paths":true}`)
	f.Add("/v1/mesh/m/ensure/batch", `{"src":{"x":0,"y":0},"dests":[{"x":1,"y":1},{"x":2,"y":2}]}`)
	f.Add("/v1/mesh/m/has-minimal-path/batch", `{"src":{"x":0,"y":0},"dests":[{"x":1,"y":1}]}`)
	f.Add("/v1/mesh/m/faults", `{"fail":[{"x":2,"y":2}]}`)
	f.Add("/v1/mesh/m/faults", `{"spec":"fail@0:1,1;recover@1:1,1","cycles":10}`)
	f.Add("/v1/mesh", `{"name":"n","width":4,"height":4}`)
	// Adversarial seeds: malformed JSON, absurd coordinates, oversized
	// counts, wrong types, trailing garbage.
	f.Add("/v1/mesh/m/route", `{"src":{"x":-999999999,"y":2147483647},"dst":{"x":0,"y":0}}`)
	f.Add("/v1/mesh/m/route", `{"src":`)
	f.Add("/v1/mesh/m/route", `{"src":{"x":0,"y":0},"dst":{"x":1,"y":1}}{"extra":1}`)
	f.Add("/v1/mesh/m/route", `[1,2,3]`)
	f.Add("/v1/mesh/m/route/batch", `{"pairs":null}`)
	f.Add("/v1/mesh", `{"name":"../../etc/passwd","width":1000000000,"height":1000000000}`)
	f.Add("/v1/mesh", `{"name":"n","width":-5,"height":3}`)
	f.Add("/v1/mesh/m/faults", `{"spec":"random:rate=0.5","fail":[{"x":1,"y":1}]}`)
	f.Add("/v1/mesh/m/faults", `{"spec":"`+strings.Repeat("fail@0:1,1;", 50)+`"}`)
	f.Add("/v1/reliability", `{"width":8,"height":8,"points":[{"k":3},{"p":0.05}],"trials":4,"pairs_per_trial":2,"seed":1}`)
	f.Add("/v1/reliability", `{"width":8,"height":8,"points":[{"k":3}],"trials":4,"pairs_per_trial":2,"target_half_width":0.5,"min_trials":2,"check_every":2}`)
	f.Add("/v1/reliability", `{"width":1000000,"height":8,"points":[{"k":1}],"trials":1,"pairs_per_trial":1}`)
	f.Add("/v1/reliability", `{"width":8,"height":8,"points":[{"p":-4}],"trials":1,"pairs_per_trial":1}`)
	f.Add("/v1/reliability", `{"width":8,"height":8,"points":[{"k":1}],"trials":99999999,"pairs_per_trial":1}`)
	f.Add("/v1/reliability", `{"points":null,"trials":-1}`)

	f.Fuzz(func(t *testing.T, path, body string) {
		// Constrain the fuzzed path to the server's own routes; free-form
		// paths only exercise the mux's 404, not our decoders.
		switch {
		case path == "/v1/mesh", path == "/v1/reliability",
			strings.HasPrefix(path, "/v1/mesh/") && !strings.Contains(path[len("/v1/mesh/"):], "//"):
		default:
			t.Skip()
		}
		// httptest.NewRequest panics on request targets that are not
		// valid HTTP/1.1 tokens; keep the fuzzing on our decoders.
		for i := 0; i < len(path); i++ {
			c := path[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
				strings.IndexByte("/._~%-", c) >= 0) {
				t.Skip()
			}
		}
		if len(body) > 1<<16 {
			t.Skip() // decoders cap body size; huge inputs just slow the fuzzer
		}

		// Fresh server per input: fault bodies mutate the mesh, and a
		// shared fixture would make failures irreproducible. Each gets
		// its own metrics registry so counters stay per-execution. The
		// tiny sweep budget keeps any accepted reliability request to
		// trivial work, so the fuzzer exercises the decoder, not the
		// Monte Carlo engine.
		s := New(Options{Metrics: metrics.NewRegistry(), ReliabilityMaxCost: 1 << 12})
		d, err := extmesh.NewDynamic(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Meshes().Create("m", d); err != nil {
			t.Fatal(err)
		}

		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req) // must not panic

		code := rec.Code
		if code < 200 || code > 599 {
			t.Fatalf("implausible status %d for %s %q", code, path, body)
		}
		// 5xx means the server blamed itself for client input — only the
		// snapshot path may do that, and a fresh valid mesh cannot fail it.
		if code >= 500 {
			t.Fatalf("server error %d for %s %q: %s", code, path, body, rec.Body.Bytes())
		}
		// Error responses from our handlers stay machine-readable (the
		// mux's own 404/405 are stdlib plain text).
		ct := rec.Header().Get("Content-Type")
		if code >= 400 && rec.Body.Len() > 0 && strings.HasPrefix(ct, "application/json") {
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("status %d body is not an error JSON: %q", code, rec.Body.Bytes())
			}
		}
	})
}
