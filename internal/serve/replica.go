package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/wire"
)

// ReplicaOptions configures a read replica's connection to its primary.
type ReplicaOptions struct {
	// Source is the primary's replication listener address.
	Source string
	// Dial overrides the TCP dialer — the chaos seam, so tests can
	// route the stream through a fault-injecting proxy. Nil selects a
	// plain net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Retry is the pause between reconnect attempts; 0 selects 200ms.
	Retry time.Duration
	// StallTimeout is how long the stream may be silent before the
	// link is declared dead; 0 selects repStallTimeout. The failover
	// controller sets it just under its promotion deadline so a dead
	// primary is noticed before candidacy starts.
	StallTimeout time.Duration
	// ForceResync makes the first hello request a full snapshot
	// (since = MaxUint64) regardless of the local watermark. A demoted
	// ex-primary must set it: its journal may hold an un-acked suffix
	// at sequence numbers the new primary reused under a newer epoch,
	// a divergence resume-from-offset cannot detect at equal seq.
	ForceResync bool
}

// errFenced marks a stream the primary refused with RepFence: this node
// (or the node it dialed) is not entitled to the stream under the
// current epoch. The fencing peer's state is retained for the failover
// controller to chase.
var errFenced = errors.New("serve: replication stream fenced")

// errGoodbye marks a graceful primary departure: the stream ended with
// RepGoodbye, so failover should begin immediately instead of waiting
// out the stall timeout.
var errGoodbye = errors.New("serve: primary said goodbye")

// errStaleFrame marks a frame carrying an epoch older than ours — a
// zombie ex-primary still streaming after a promotion it hasn't heard
// about. The frame is rejected, never applied.
var errStaleFrame = errors.New("serve: replication frame from stale epoch")

// Replica follows a primary's replication stream: it applies every
// record through the same deterministic applyRecord path crash
// recovery uses, persists the stream to its own journal (primary
// sequence numbers preserved), and keeps reconnecting with
// resume-from-offset until its context is canceled. Registering a
// Replica puts the server in read-only mode: the stream is the only
// write path, which is what makes convergence bit-identical.
type Replica struct {
	s    *Server
	opts ReplicaOptions

	mu        sync.Mutex
	connected bool
	lastErr   string
	lag       atomic.Uint64
	// lastContact is the wall-clock nanos of the last decoded frame —
	// the failover controller's liveness input.
	lastContact atomic.Int64
	// goodbye latches when the primary announced a graceful drain.
	goodbye atomic.Bool
	// fencedBy holds the state of the peer that last fenced us.
	fencedBy atomic.Pointer[wire.NodeState]
	// forceResync mirrors opts.ForceResync but clears once a snapshot
	// installs: the divergent suffix is gone after the first rewind.
	forceResync atomic.Bool

	lagGauge    *metrics.Gauge
	applied     *metrics.Counter
	resyncs     *metrics.Counter
	disconnects *metrics.Counter
	staleFrames *metrics.Counter
}

// NewReplica attaches a replica to s and flips it read-only. Call Run
// to start following.
func NewReplica(s *Server, opts ReplicaOptions) *Replica {
	if opts.Retry <= 0 {
		opts.Retry = 200 * time.Millisecond
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = repStallTimeout
	}
	m := s.metrics
	r := &Replica{
		s:           s,
		opts:        opts,
		lagGauge:    m.Gauge("replication_lag_records"),
		applied:     m.Counter("replication_records_applied_total"),
		resyncs:     m.Counter("replication_resyncs_total"),
		disconnects: m.Counter("replication_disconnects_total"),
		staleFrames: m.Counter("replication_stale_frames_total"),
	}
	r.forceResync.Store(opts.ForceResync)
	r.lastContact.Store(time.Now().UnixNano())
	s.replica.Store(r)
	s.SetReadOnly(true)
	return r
}

// LastContact reports when the stream last produced a decodable frame.
func (r *Replica) LastContact() time.Time {
	return time.Unix(0, r.lastContact.Load())
}

// SaidGoodbye reports whether the primary announced a graceful drain.
func (r *Replica) SaidGoodbye() bool { return r.goodbye.Load() }

// FencedBy returns the node state of the peer that last refused this
// replica's stream, or nil.
func (r *Replica) FencedBy() *wire.NodeState { return r.fencedBy.Load() }

func (r *Replica) setConnected(ok bool) {
	r.mu.Lock()
	r.connected = ok
	r.mu.Unlock()
}

func (r *Replica) setErr(err error) {
	if err == nil {
		return
	}
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *Replica) status() (source string, connected bool, lag uint64, lastErr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Source, r.connected, r.lag.Load(), r.lastErr
}

// Run follows the primary until ctx is canceled, reconnecting (and
// resuming from the applied watermark) after every stream failure.
func (r *Replica) Run(ctx context.Context) error {
	for {
		err := r.follow(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.setErr(err)
		r.disconnects.Inc()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.opts.Retry):
		}
	}
}

// follow speaks one connection's worth of the stream: handshake with
// the applied watermark, then apply frames until the stream errors.
// Any protocol violation — CRC mismatch, sequence gap, unknown frame,
// a frame from a stale epoch — returns an error, dropping the
// connection; the reconnect handshake is the single recovery path for
// all of them.
func (r *Replica) follow(ctx context.Context) error {
	dial := r.opts.Dial
	if dial == nil {
		d := &net.Dialer{Timeout: repWriteTimeout}
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, r.opts.Source)
	if err != nil {
		return err
	}
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	since := r.s.journalSeq.Load()
	if r.forceResync.Load() {
		// A since beyond any real head reads as "follower ahead of
		// primary" on the hub, which answers with an authoritative
		// snapshot — exactly the rewind a demoted ex-primary needs.
		since = ^uint64(0)
	}
	conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
	if err := wire.WriteFrame(bw, wire.AppendRepHello(nil, since, r.s.Epoch())); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	r.setConnected(true)
	defer r.setConnected(false)

	ack := func() error {
		conn.SetWriteDeadline(time.Now().Add(repWriteTimeout))
		body := wire.AppendRepMessage(nil, &wire.RepMessage{
			Type: wire.RepAck, Seq: r.s.journalSeq.Load(), Epoch: r.s.Epoch(),
		})
		if err := wire.WriteFrame(bw, body); err != nil {
			return err
		}
		return bw.Flush()
	}

	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(r.opts.StallTimeout))
		body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, buf)
		if err != nil {
			return err
		}
		m, err := wire.DecodeRepMessage(body)
		if err != nil {
			return err
		}
		r.lastContact.Store(time.Now().UnixNano())
		if m.Epoch < r.s.Epoch() {
			// A zombie ex-primary, still streaming under an epoch a
			// promotion has superseded. Nothing it sends may be applied.
			r.staleFrames.Inc()
			return fmt.Errorf("%w: frame epoch %d, local epoch %d", errStaleFrame, m.Epoch, r.s.Epoch())
		}
		switch m.Type {
		case wire.RepSnapshot:
			if err := r.installSnapshot(m.Payload, m.Seq, m.Epoch); err != nil {
				return err
			}
			r.forceResync.Store(false)
			r.resyncs.Inc()
			if err := ack(); err != nil {
				return err
			}
		case wire.RepRecord:
			var rec journal.Record
			if err := json.Unmarshal(m.Payload, &rec); err != nil {
				return err
			}
			if rec.Seq != m.Seq {
				return fmt.Errorf("serve: replication frame seq %d carries record seq %d", m.Seq, rec.Seq)
			}
			if err := r.applyReplicated(rec); err != nil {
				return err
			}
			r.applied.Inc()
			// Ack when the pipeline is drained, so bursts cost one ack.
			if br.Buffered() == 0 {
				if err := ack(); err != nil {
					return err
				}
			}
		case wire.RepHeartbeat:
			var lag uint64
			if have := r.s.journalSeq.Load(); m.Seq > have {
				lag = m.Seq - have
			}
			r.lag.Store(lag)
			r.lagGauge.Set(int64(lag))
			if err := ack(); err != nil {
				return err
			}
		case wire.RepFence:
			if st, err := wire.DecodeNodeState(m.Payload); err == nil {
				r.fencedBy.Store(st)
				r.s.setEpoch(st.Epoch)
			}
			return errFenced
		case wire.RepGoodbye:
			r.goodbye.Store(true)
			return errGoodbye
		default:
			return fmt.Errorf("serve: unexpected replication frame type %d", m.Type)
		}
		buf = body[:0]
	}
}

// applyReplicated applies one streamed record: duplicates (a replay
// after reconnect) are skipped, gaps abort the stream, and everything
// else goes through applyRecord + the local journal under the
// persister lock — so the replica's own compactions interleave
// consistently with stream application.
func (r *Replica) applyReplicated(rec journal.Record) error {
	p := r.s.persist
	p.mu.Lock()
	defer p.mu.Unlock()
	have := r.s.journalSeq.Load()
	if rec.Seq <= have {
		return nil // duplicate delivery: already applied
	}
	if rec.Seq != have+1 {
		return fmt.Errorf("serve: replication gap: applied %d, received %d", have, rec.Seq)
	}
	if err := r.s.applyRecord(rec); err != nil {
		return err
	}
	if p.store != nil {
		if err := p.store.AppendExact(rec); err != nil {
			// Local durability failed but the in-memory apply stands;
			// the stream continues (AppendExact tolerates the gap) and
			// the next compaction folds the state in anyway.
			r.setErr(err)
		}
		if p.store.NeedsCompaction() {
			if err := p.compactLocked(); err != nil {
				r.setErr(err)
			}
		}
	}
	p.note(rec.Seq)
	return nil
}

// installSnapshot replaces the registry and local journal with the
// primary's full state at seq — the resync path when incremental
// resume is impossible (compaction passed the watermark, this replica
// is ahead of a rolled-back primary, or an epoch mismatch made the
// local tail untrustworthy). Installing also truncates any divergent
// local journal suffix: the store rotates to a fresh generation at
// exactly (seq, epoch).
func (r *Replica) installSnapshot(payload []byte, seq, epoch uint64) error {
	var snap repSnapshotPayload
	if err := json.Unmarshal(payload, &snap); err != nil {
		return fmt.Errorf("serve: decode replication snapshot: %w", err)
	}
	p := r.s.persist
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range p.reg.Names() {
		if _, ok := snap.Meshes[name]; !ok {
			p.reg.Delete(name)
		}
	}
	for name, sm := range snap.Meshes {
		d, err := restoreMesh(name, sm.Blob, sm.Version)
		if err != nil {
			return err
		}
		if err := p.reg.Put(name, d); err != nil {
			return err
		}
	}
	if p.store != nil {
		if err := p.store.InstallSnapshot(snap.Meshes, seq, epoch); err != nil {
			return err
		}
	}
	r.s.setEpoch(epoch)
	// note() stores the watermark unconditionally, so an authoritative
	// rewind (seq below the local head: divergent suffix truncated)
	// moves it down too.
	p.note(seq)
	return nil
}
