package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"extmesh/internal/metrics"
)

func TestRetryAfterSecs(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{100 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	} {
		if got := retryAfterSecs(tc.wait); got != tc.want {
			t.Errorf("retryAfterSecs(%v) = %q, want %q", tc.wait, got, tc.want)
		}
	}
}

// blockingGate saturates an admission gate: it fills every slot with a
// handler parked on a channel and returns the release function.
func blockingGate(t *testing.T, a *admission, slots int) (h http.Handler, release func()) {
	t.Helper()
	block := make(chan struct{})
	var once sync.Once
	h = a.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
		w.WriteHeader(http.StatusOK)
	}))
	return h, func() { once.Do(func() { close(block) }) }
}

// TestAdmission429RetryAfterInteger saturates slots and queue and
// asserts every 429 carries a Retry-After that is integer seconds ≥ 1
// — the contract the resilient client's backoff relies on.
func TestAdmission429RetryAfterInteger(t *testing.T) {
	a := newAdmission(1, 1, 10*time.Millisecond, metrics.NewRegistry())
	h, release := blockingGate(t, a, 1)
	defer release()

	started := make(chan struct{})
	go func() {
		close(started)
		r := httptest.NewRequest("GET", "/x", nil)
		h.ServeHTTP(httptest.NewRecorder(), r) // occupies the single slot
	}()
	<-started
	// Wait until the slot is actually taken.
	for i := 0; i < 200 && len(a.slots) == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	// Overrun slot + queue: responses must be 429 with a valid header.
	var got429 bool
	for i := 0; i < 8; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		if rec.Code != http.StatusTooManyRequests {
			continue
		}
		got429 = true
		ra := rec.Header().Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 {
			t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
		}
	}
	if !got429 {
		t.Fatal("saturation produced no 429")
	}
}

// TestAdmissionCanceledQueuersReleaseSlots parks requests in the
// queue, cancels their contexts, and verifies the queue drains to zero
// and the gate still serves once the slot frees — a canceled waiter
// must not leak its queue slot.
func TestAdmissionCanceledQueuersReleaseSlots(t *testing.T) {
	a := newAdmission(1, 4, time.Hour, metrics.NewRegistry()) // queue would park forever
	h, release := blockingGate(t, a, 1)

	started := make(chan struct{})
	go func() {
		close(started)
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}()
	<-started
	for i := 0; i < 200 && len(a.slots) == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	// Three requests queue behind the occupied slot, then give up.
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := httptest.NewRequest("GET", "/x", nil).WithContext(ctx)
			h.ServeHTTP(httptest.NewRecorder(), r)
		}()
	}
	// Wait until all three are queued.
	for i := 0; i < 500 && a.queue.Load() != 3; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := a.queue.Load(); got != 3 {
		t.Fatalf("queue depth = %d, want 3", got)
	}
	cancel()
	wg.Wait()
	if got := a.queue.Load(); got != 0 {
		t.Fatalf("queue depth after cancellations = %d, want 0 (leaked slots)", got)
	}

	// The gate still works: release the slot and a fresh request runs.
	release()
	done := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
		done <- rec.Code
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("post-cancel request = %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gate wedged after canceled queuers")
	}
}
