package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"extmesh"
	"extmesh/internal/journal"
	"extmesh/internal/metrics"
)

// newJournaledServer opens a store over dir and returns a recovered,
// ready server wrapped in an httptest server.
func newJournaledServer(t *testing.T, dir string, jopts journal.Options) (*Server, *httptest.Server) {
	t.Helper()
	if jopts.Metrics == nil {
		jopts.Metrics = metrics.NewRegistry()
	}
	jopts.Policy = journal.SyncNever // tests need no crash durability
	store, err := journal.Open(dir, jopts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Metrics: metrics.NewRegistry(), Journal: store})
	if s.Ready() {
		t.Fatal("journaled server ready before Recover")
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Fatal("server not ready after Recover")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { store.Close() })
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestJournaledMutationsSurviveRestart is the serve-layer durability
// round trip: create, mutate and delete over HTTP, then recover a
// fresh server from the same dir and compare registry state exactly.
func TestJournaledMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newJournaledServer(t, dir, journal.Options{})

	if code, _ := postJSON(t, ts.URL+"/v1/mesh", `{"name":"m","width":16,"height":16}`); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/mesh", `{"name":"doomed","width":8,"height":8}`); code != http.StatusCreated {
		t.Fatalf("create doomed = %d", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/mesh/m/faults", `{"fail":[{"x":2,"y":2},{"x":3,"y":3}]}`); code != http.StatusOK {
		t.Fatalf("faults = %d", code)
	}
	// An inject-schedule admin event: interleaved fail/recover.
	if code, _ := postJSON(t, ts.URL+"/v1/mesh/m/faults", `{"spec":"fail@0:5,5;recover@1:5,5;fail@2:6,6","cycles":10}`); code != http.StatusOK {
		t.Fatalf("spec faults = %d", code)
	}
	// A recover of an existing fault plus a skipped duplicate.
	if code, _ := postJSON(t, ts.URL+"/v1/mesh/m/faults", `{"fail":[{"x":2,"y":2}],"recover":[{"x":3,"y":3}]}`); code != http.StatusOK {
		t.Fatalf("faults 2 = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/mesh/doomed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", resp.StatusCode)
	}

	wantFaults := []extmesh.Coord{{X: 2, Y: 2}, {X: 6, Y: 6}}
	var wantVersion uint64
	{
		live, ts2 := newJournaledServer(t, dir, journal.Options{})
		defer ts2.Close()
		d := live.Meshes().Get("m")
		if d == nil {
			t.Fatal("mesh m not recovered")
		}
		if live.Meshes().Get("doomed") != nil {
			t.Fatal("deleted mesh resurrected")
		}
		gotFaults := d.Faults()
		faultSet := map[extmesh.Coord]bool{}
		for _, c := range gotFaults {
			faultSet[c] = true
		}
		if len(gotFaults) != len(wantFaults) || !faultSet[wantFaults[0]] || !faultSet[wantFaults[1]] {
			t.Errorf("recovered faults = %v, want set %v", gotFaults, wantFaults)
		}
		// Version must match the uninterrupted history: 2 creates... the
		// mesh's own counter: 2 fails + (1 fail,1 recover,1 fail) + (1
		// skip is not counted, 1 recover) = 2+3+1 = 6 mutations.
		wantVersion = 6
		if d.Version() != wantVersion {
			t.Errorf("recovered version = %d, want %d", d.Version(), wantVersion)
		}
	}

	// Second recovery (now from the checkpoint the first recovery
	// wrote) must agree — exercises the snapshot + RestoreVersion path.
	live2, _ := newJournaledServer(t, dir, journal.Options{})
	d := live2.Meshes().Get("m")
	if d == nil || d.Version() != wantVersion || d.FaultCount() != len(wantFaults) {
		t.Fatalf("checkpoint recovery: version=%d faults=%d, want %d/%d",
			d.Version(), d.FaultCount(), wantVersion, len(wantFaults))
	}
}

// TestJournalCompactionMidStream forces a snapshot on every mutation
// (CompactEvery=1) and checks recovery still reproduces exact state —
// the RestoreVersion continuity path under maximal compaction churn.
func TestJournalCompactionMidStream(t *testing.T) {
	dir := t.TempDir()
	_, ts := newJournaledServer(t, dir, journal.Options{CompactEvery: 1})
	if code, _ := postJSON(t, ts.URL+"/v1/mesh", `{"name":"m","width":12,"height":12}`); code != http.StatusCreated {
		t.Fatal("create failed")
	}
	for i := 1; i <= 4; i++ {
		body := fmt.Sprintf(`{"fail":[{"x":%d,"y":%d}]}`, i, i)
		if code, _ := postJSON(t, ts.URL+"/v1/mesh/m/faults", body); code != http.StatusOK {
			t.Fatalf("fault %d failed", i)
		}
	}

	live, _ := newJournaledServer(t, dir, journal.Options{})
	d := live.Meshes().Get("m")
	if d == nil {
		t.Fatal("mesh not recovered")
	}
	if d.FaultCount() != 4 || d.Version() != 4 {
		t.Errorf("faults=%d version=%d, want 4/4", d.FaultCount(), d.Version())
	}
	for i := 1; i <= 4; i++ {
		if !d.IsFaulty(extmesh.Coord{X: i, Y: i}) {
			t.Errorf("fault (%d,%d) lost across compaction", i, i)
		}
	}
}

// TestReadyz pins the readiness lifecycle: journaled servers answer
// 503 with a Retry-After until recovery completes, memory-only servers
// are born ready.
func TestReadyz(t *testing.T) {
	store, err := journal.Open(t.TempDir(), journal.Options{Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := New(Options{Metrics: metrics.NewRegistry(), Journal: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 readyz missing Retry-After")
	}
	// Liveness is separate: /healthz answers 200 even while recovering.
	if hresp, err := http.Get(ts.URL + "/healthz"); err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while recovering = %v %v, want 200", hresp.StatusCode, err)
	}

	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", resp2.StatusCode)
	}

	mem := New(Options{Metrics: metrics.NewRegistry()})
	if !mem.Ready() {
		t.Error("memory-only server not born ready")
	}
}

// TestRegisterMeshJournaled checks the daemon preload path journals
// like API creations.
func TestRegisterMeshJournaled(t *testing.T) {
	dir := t.TempDir()
	s, _ := newJournaledServer(t, dir, journal.Options{})
	d, err := extmesh.NewDynamic(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddFault(extmesh.Coord{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterMesh("pre", d); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterMesh("pre", d); err == nil {
		t.Fatal("duplicate RegisterMesh accepted")
	}

	live, _ := newJournaledServer(t, dir, journal.Options{})
	got := live.Meshes().Get("pre")
	if got == nil || got.FaultCount() != 1 || !got.IsFaulty(extmesh.Coord{X: 1, Y: 1}) {
		t.Fatalf("preloaded mesh not recovered: %+v", got)
	}
}
