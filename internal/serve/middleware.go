package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"extmesh/internal/metrics"
)

// statusWriter records the response status and size for logging and
// metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// admission is the bounded-concurrency gate in front of the query
// endpoints. At most MaxInFlight requests execute at once; up to
// MaxQueue more wait up to QueueWait for a slot; everything beyond
// that is shed immediately with 429, so overload degrades into fast
// rejections instead of unbounded queueing. Operational endpoints
// (health, metrics) bypass the gate.
type admission struct {
	slots      chan struct{}
	queue      atomic.Int64
	max        int64
	wait       time.Duration
	retryAfter string

	inflight *metrics.Gauge
	depth    *metrics.Gauge
	shed     *metrics.Counter
	queued   *metrics.Counter
}

func newAdmission(maxInFlight, maxQueue int, wait time.Duration, m *metrics.Registry) *admission {
	return &admission{
		slots:      make(chan struct{}, maxInFlight),
		max:        int64(maxQueue),
		wait:       wait,
		retryAfter: retryAfterSecs(wait),
		inflight:   m.Gauge("http_inflight"),
		depth:      m.Gauge("http_queue_depth"),
		shed:       m.Counter("http_shed_total"),
		queued:     m.Counter("http_queued_total"),
	}
}

// retryAfterSecs is the hint sent with every 429: under a load spike
// the queue drains within the QueueWait horizon, so its ceiling in
// whole seconds — never below the 1 second the header grammar and
// polite clients require — is an honest "try again then".
func retryAfterSecs(wait time.Duration) string {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// errSaturated is what acquire returns when the request was shed; the
// message is the same "server saturated" text the 429 body carries, so
// both transports publish the same diagnosis.
type errSaturated struct{ msg string }

func (e *errSaturated) Error() string { return e.msg }

// acquire claims an execution slot, queueing up to the gate's policy,
// and is the transport-neutral core of the admission control: the HTTP
// wrap and the binary listener both gate each request through it. It
// returns nil when a slot is held (the caller must release), an
// *errSaturated when the request was shed, and the context error when
// the caller gave up while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}: // free slot, no queueing
	default:
		if a.queue.Add(1) > a.max {
			a.queue.Add(-1)
			a.shed.Inc()
			return &errSaturated{msg: fmt.Sprintf("server saturated: %d in flight, queue full", cap(a.slots))}
		}
		a.queued.Inc()
		a.depth.Set(a.queue.Load())
		t := time.NewTimer(a.wait)
		select {
		case a.slots <- struct{}{}:
			t.Stop()
			a.queue.Add(-1)
		case <-t.C:
			a.queue.Add(-1)
			a.shed.Inc()
			return &errSaturated{msg: fmt.Sprintf("server saturated: queued longer than %v", a.wait)}
		case <-ctx.Done():
			t.Stop()
			a.queue.Add(-1)
			a.shed.Inc()
			return ctx.Err() // caller gave up while queued
		}
		a.depth.Set(a.queue.Load())
	}
	a.inflight.Set(int64(len(a.slots)))
	return nil
}

// release returns the slot acquire claimed.
func (a *admission) release() {
	<-a.slots
	a.inflight.Set(int64(len(a.slots)))
}

func (a *admission) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := a.acquire(r.Context()); err != nil {
			var sat *errSaturated
			if errors.As(err, &sat) {
				w.Header().Set("Retry-After", a.retryAfter)
				writeError(w, http.StatusTooManyRequests, "%s", sat.msg)
			}
			return // context errors: the client is gone, nothing to write
		}
		defer a.release()
		next.ServeHTTP(w, r)
	})
}

// instrument wraps a handler with its per-endpoint request counter and
// latency histogram. The endpoint label is a stable short name, not
// the raw URL, so one mesh's traffic does not explode the metric
// namespace.
func instrument(m *metrics.Registry, endpoint string, next http.Handler) http.Handler {
	requests := m.Counter("http_requests_total_" + endpoint)
	errors := m.Counter("http_errors_total_" + endpoint)
	latency := m.Histogram("http_latency_" + endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w}
			w = sw
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		latency.Observe(time.Since(start))
		requests.Inc()
		if sw.status >= 400 {
			errors.Inc()
		}
	})
}

// reqSeq numbers requests process-wide; the request ID ties a log line
// to the X-Request-Id response header.
var reqSeq atomic.Uint64

// logging assigns the request ID and writes one access-log line per
// request. It is the outermost layer, so shed (429) and not-found
// responses are logged too.
func logging(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqSeq.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))
		start := time.Now()
		next.ServeHTTP(sw, r)
		if logger != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			logger.Printf("req=%d %s %s status=%d bytes=%d dur=%s",
				id, r.Method, r.URL.Path, status, sw.bytes, time.Since(start).Round(time.Microsecond))
		}
	})
}
