package serve

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/journal"
	"extmesh/internal/metrics"
)

// newJournaledServer builds a recovered server over its own temp data
// dir. CompactEvery is disabled unless the test overrides it.
func newRepServer(t *testing.T, compactEvery int) *Server {
	t.Helper()
	store, err := journal.Open(t.TempDir(), journal.Options{
		Policy:       journal.SyncNever,
		CompactEvery: compactEvery,
		Metrics:      metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Journal: store, Metrics: metrics.NewRegistry()})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return s
}

// startPrimary runs a replication listener for s until the test ends,
// returning its address.
func startPrimary(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeReplication(ctx, l)
	}()
	t.Cleanup(func() {
		cancel()
		l.Close()
		<-done
	})
	return l.Addr().String()
}

// startReplica attaches a replica server to the given primary address
// and runs it until the test ends.
func startReplica(t *testing.T, s *Server, source string) *Replica {
	t.Helper()
	r := NewReplica(s, ReplicaOptions{Source: source, Retry: 20 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertConverged compares two servers' full durable state byte for
// byte, plus a battery of route answers.
func assertConverged(t *testing.T, a, b *Server) {
	t.Helper()
	sa, err := a.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("states diverged:\n a=%s\n b=%s", sa, sb)
	}
	for _, name := range a.Meshes().Names() {
		da, db := a.Meshes().Get(name), b.Meshes().Get(name)
		if da == nil || db == nil {
			t.Fatalf("mesh %q missing on one side", name)
		}
		na, err := da.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		nb, err := db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]extmesh.Coord{
			{{X: 0, Y: 0}, {X: 7, Y: 7}},
			{{X: 1, Y: 6}, {X: 6, Y: 0}},
			{{X: 0, Y: 3}, {X: 7, Y: 4}},
		} {
			pa, ea := na.Route(pair[0], pair[1], extmesh.Blocks)
			pb, eb := nb.Route(pair[0], pair[1], extmesh.Blocks)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("mesh %q route %v: error mismatch %v vs %v", name, pair, ea, eb)
			}
			if len(pa) != len(pb) {
				t.Fatalf("mesh %q route %v: path %v vs %v", name, pair, pa, pb)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("mesh %q route %v: path %v vs %v", name, pair, pa, pb)
				}
			}
		}
	}
}

func mustDynamic(t *testing.T, w, h int) *extmesh.DynamicNetwork {
	t.Helper()
	d, err := extmesh.NewDynamic(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestReplicationStreaming pins the basic loop: mutations on the
// primary stream to a live replica, which converges bit-identically
// and enforces read-only mode.
func TestReplicationStreaming(t *testing.T) {
	primary := newRepServer(t, -1)
	addr := startPrimary(t, primary)
	replica := newRepServer(t, -1)
	startReplica(t, replica, addr)

	if err := primary.RegisterMesh("m", mustDynamic(t, 8, 8)); err != nil {
		t.Fatal(err)
	}
	d := primary.Meshes().Get("m")
	if _, _, err := primary.persist.apply("m", d, []extmesh.Coord{{X: 2, Y: 2}, {X: 3, Y: 3}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := primary.persist.apply("m", d, []extmesh.Coord{{X: 5, Y: 1}}, []extmesh.Coord{{X: 2, Y: 2}}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "replica catch-up", func() bool {
		return replica.JournalSeq() == primary.JournalSeq()
	})
	assertConverged(t, primary, replica)

	if !replica.ReadOnly() {
		t.Fatal("replica not read-only")
	}
	// Mutations on the replica answer 403.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/mesh", strings.NewReader(`{"name":"x","width":4,"height":4}`))
	replica.Handler().ServeHTTP(rec, req)
	if rec.Code != 403 {
		t.Fatalf("replica mutation answered %d, want 403", rec.Code)
	}

	// Roles and follower accounting.
	if st := primary.ReplicationStatus(); st.Role != "primary" || len(st.Followers) != 1 {
		t.Fatalf("primary status = %+v, want primary with one follower", st)
	}
	if st := replica.ReplicationStatus(); st.Role != "replica" || !st.Connected {
		t.Fatalf("replica status = %+v, want connected replica", st)
	}
}

// TestReplicationSeqHeader pins the staleness watermark: every /v1
// response carries X-Journal-Seq, and a mutation's response carries
// the seq of the mutation it journaled.
func TestReplicationSeqHeader(t *testing.T) {
	s := newRepServer(t, -1)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/mesh", strings.NewReader(`{"name":"m","width":4,"height":4}`))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 201 {
		t.Fatalf("create answered %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Journal-Seq"); got != "1" {
		t.Fatalf("mutation X-Journal-Seq = %q, want 1 (stamped after the journal append)", got)
	}
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/mesh", nil)
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Journal-Seq"); got != "1" {
		t.Fatalf("read X-Journal-Seq = %q, want 1", got)
	}
}

// TestReplicationSnapshotCatchUp covers the resync path: a replica
// joining after the primary compacted its journal (so the incremental
// tail is gone) receives a full snapshot and still converges.
func TestReplicationSnapshotCatchUp(t *testing.T) {
	primary := newRepServer(t, 4)
	if err := primary.RegisterMesh("m", mustDynamic(t, 8, 8)); err != nil {
		t.Fatal(err)
	}
	d := primary.Meshes().Get("m")
	for i := 0; i < 6; i++ {
		if _, _, err := primary.persist.apply("m", d, []extmesh.Coord{{X: i, Y: i}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if primary.persist.store.SnapSeq() == 0 {
		t.Fatal("test setup: primary never compacted")
	}
	addr := startPrimary(t, primary)

	replica := newRepServer(t, -1)
	r := startReplica(t, replica, addr)
	waitFor(t, "snapshot catch-up", func() bool {
		return replica.JournalSeq() == primary.JournalSeq()
	})
	assertConverged(t, primary, replica)
	if r.resyncs.Value() == 0 {
		t.Fatal("replica converged without a snapshot resync; expected the full-snapshot path")
	}
}

// TestReplicationResumeFromOffset covers reconnect-resume: a replica
// that followed, went away, and missed mutations resumes incrementally
// from its applied watermark after restart — from its own recovered
// journal, not from zero.
func TestReplicationResumeFromOffset(t *testing.T) {
	primary := newRepServer(t, -1)
	addr := startPrimary(t, primary)
	if err := primary.RegisterMesh("m", mustDynamic(t, 8, 8)); err != nil {
		t.Fatal(err)
	}
	d := primary.Meshes().Get("m")

	dir := t.TempDir()
	open := func() *Server {
		store, err := journal.Open(dir, journal.Options{Policy: journal.SyncNever, CompactEvery: -1, Metrics: metrics.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		s := New(Options{Journal: store, Metrics: metrics.NewRegistry()})
		if err := s.Recover(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	replica := open()
	ctx, cancel := context.WithCancel(context.Background())
	rep := NewReplica(replica, ReplicaOptions{Source: addr, Retry: 20 * time.Millisecond})
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	waitFor(t, "initial catch-up", func() bool { return replica.JournalSeq() == primary.JournalSeq() })
	cancel()
	<-done
	replica.persist.store.Close()

	// Mutations while the replica is down.
	for i := 0; i < 3; i++ {
		if _, _, err := primary.persist.apply("m", d, []extmesh.Coord{{X: i + 1, Y: 6}}, nil); err != nil {
			t.Fatal(err)
		}
	}

	replica2 := open()
	if replica2.JournalSeq() == 0 {
		t.Fatal("restarted replica lost its journal offset")
	}
	r2 := startReplica(t, replica2, addr)
	waitFor(t, "resumed catch-up", func() bool { return replica2.JournalSeq() == primary.JournalSeq() })
	assertConverged(t, primary, replica2)
	if r2.resyncs.Value() != 0 {
		t.Fatal("resume used a full snapshot; expected the incremental tail")
	}
	replica2.persist.store.Close()
}
