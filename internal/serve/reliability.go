package serve

import (
	"net/http"
	"runtime"

	"extmesh/internal/metrics"
	"extmesh/internal/reliability"
)

// Structural caps on one sweep request, enforced before the cost
// budget: they bound the decoded request itself, the way MaxBatch
// bounds a query batch.
const (
	// MaxSweepDim bounds the swept mesh's side length.
	MaxSweepDim = 512
	// MaxSweepPoints bounds the fault-intensity grid.
	MaxSweepPoints = 64
	// MaxSweepTrials bounds the per-point trial budget.
	MaxSweepTrials = 1 << 16
)

// sweepGate is the admission control of the reliability plane. Sweeps
// get their own tiny gate rather than sharing the query gate: one
// sweep is seconds-to-minutes of saturated CPU where a route query is
// microseconds, so a handful of sweeps must not push the query plane
// into 429s (or vice versa). There is no queue — a shed sweep is
// cheap for the client to retry, and queueing minutes of work behind
// minutes of work helps nobody.
type sweepGate struct {
	slots chan struct{}

	runs     *metrics.Counter
	trials   *metrics.Counter
	shed     *metrics.Counter
	inflight *metrics.Gauge
}

func newSweepGate(max int, m *metrics.Registry) *sweepGate {
	return &sweepGate{
		slots:    make(chan struct{}, max),
		runs:     m.Counter("reliability_sweeps_total"),
		trials:   m.Counter("reliability_trials_total"),
		shed:     m.Counter("reliability_shed_total"),
		inflight: m.Gauge("reliability_inflight"),
	}
}

// tryAcquire claims a sweep slot without queueing.
func (g *sweepGate) tryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		g.inflight.Set(int64(len(g.slots)))
		return true
	default:
		g.shed.Inc()
		return false
	}
}

func (g *sweepGate) release() {
	<-g.slots
	g.inflight.Set(int64(len(g.slots)))
}

// handleReliability is POST /v1/reliability: run a Monte Carlo
// survivability sweep and return its report. The request body is the
// JSON form of reliability.Config; the response is byte-identical to
// marshaling the library's own Sweep result for the same config, which
// the parity test pins.
func (s *Server) handleReliability(w http.ResponseWriter, r *http.Request) {
	var cfg reliability.Config
	if err := decodeBody(r, &cfg); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cfg.Width > MaxSweepDim || cfg.Height > MaxSweepDim {
		writeError(w, http.StatusBadRequest, "mesh %dx%d exceeds the %d side limit", cfg.Width, cfg.Height, MaxSweepDim)
		return
	}
	if len(cfg.Points) > MaxSweepPoints {
		writeError(w, http.StatusBadRequest, "%d sweep points exceed the %d limit", len(cfg.Points), MaxSweepPoints)
		return
	}
	if cfg.Trials > MaxSweepTrials {
		writeError(w, http.StatusBadRequest, "%d trials exceed the %d limit", cfg.Trials, MaxSweepTrials)
		return
	}
	if cfg.PairsPerTrial > MaxBatch {
		writeError(w, http.StatusBadRequest, "%d pairs per trial exceed the %d limit", cfg.PairsPerTrial, MaxBatch)
		return
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cost := cfg.Cost(); cost > s.opts.ReliabilityMaxCost {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep cost %d exceeds the server budget %d: fewer points, trials or cells", cost, s.opts.ReliabilityMaxCost)
		return
	}
	// Clamp the fan-out to this machine; the report is identical at any
	// worker count, so the clamp is invisible to the client.
	if max := runtime.GOMAXPROCS(0); cfg.Workers <= 0 || cfg.Workers > max {
		cfg.Workers = max
	}
	if !s.sweeps.tryAcquire() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "server saturated: %d sweeps in flight", cap(s.sweeps.slots))
		return
	}
	defer s.sweeps.release()
	s.sweeps.runs.Inc()

	cfg.OnRound = func(trials int) { s.sweeps.trials.Add(uint64(trials)) }
	cfg.Done = r.Context().Done()
	rep, err := reliability.Sweep(cfg)
	if err == reliability.ErrCanceled {
		return // the client is gone; nothing to write
	}
	if err != nil {
		// Validate already passed, so this is unreachable; keep the
		// blame on the request rather than claiming a server fault.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// reliabilityStats is the sweep-counter block of /stats.
type reliabilityStats struct {
	Sweeps   uint64 `json:"sweeps"`
	Trials   uint64 `json:"trials"`
	Shed     uint64 `json:"shed"`
	InFlight int64  `json:"in_flight"`
}

func (s *Server) reliabilityStats() reliabilityStats {
	return reliabilityStats{
		Sweeps:   s.sweeps.runs.Value(),
		Trials:   s.sweeps.trials.Value(),
		Shed:     s.sweeps.shed.Value(),
		InFlight: s.sweeps.inflight.Value(),
	}
}
