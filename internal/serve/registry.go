package serve

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"extmesh"
	"extmesh/internal/metrics"
)

// nameRe constrains mesh names to URL-path-safe tokens.
var nameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidName reports whether name is an acceptable mesh name: 1-64
// characters from [A-Za-z0-9._-], starting with an alphanumeric.
func ValidName(name string) bool {
	return nameRe.MatchString(name)
}

// Registry is the daemon's set of named live meshes. All methods are
// safe for concurrent use; the per-mesh query state (snapshots, reach
// caches, safety levels) lives in the DynamicNetwork itself.
type Registry struct {
	mu     sync.RWMutex
	meshes map[string]*extmesh.DynamicNetwork
	gauge  *metrics.Gauge
}

// NewRegistry returns an empty registry reporting its size to the
// given metrics registry (nil for the process default).
func NewRegistry(m *metrics.Registry) *Registry {
	if m == nil {
		m = metrics.Default()
	}
	return &Registry{
		meshes: make(map[string]*extmesh.DynamicNetwork),
		gauge:  m.Gauge("meshes_registered"),
	}
}

// Create registers a new mesh under name; it fails if the name is
// taken or invalid.
func (r *Registry) Create(name string, d *extmesh.DynamicNetwork) error {
	if !ValidName(name) {
		return fmt.Errorf("serve: invalid mesh name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.meshes[name]; ok {
		return fmt.Errorf("serve: mesh %q already exists", name)
	}
	r.meshes[name] = d
	r.gauge.Set(int64(len(r.meshes)))
	return nil
}

// Put registers or replaces the mesh under name.
func (r *Registry) Put(name string, d *extmesh.DynamicNetwork) error {
	if !ValidName(name) {
		return fmt.Errorf("serve: invalid mesh name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.meshes[name] = d
	r.gauge.Set(int64(len(r.meshes)))
	return nil
}

// Get returns the named mesh, or nil if absent.
func (r *Registry) Get(name string) *extmesh.DynamicNetwork {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.meshes[name]
}

// Delete removes the named mesh and reports whether it existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.meshes[name]
	if ok {
		delete(r.meshes, name)
		r.gauge.Set(int64(len(r.meshes)))
	}
	return ok
}

// Names returns the registered mesh names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.meshes))
	for name := range r.meshes {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
