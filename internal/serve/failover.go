// Automatic primary failover.
//
// A Failover controller turns a set of replication-capable nodes into a
// self-healing cluster: every node runs its replication listener for
// its whole life, one node holds the primary role, and the rest follow
// it. When the primary disappears — crash, partition, or graceful
// drain — a follower promotes itself by durably bumping the cluster
// epoch, and the epoch fences the old primary out of every write path:
// its frames are rejected by followers, its hellos are answered with
// RepFence by the winner, and clients that have seen the new epoch get
// stale_epoch refusals from it.
//
// The safety argument, in brief:
//
//   - Acknowledged writes survive promotion because a failover-managed
//     primary only acknowledges a mutation after a follower has acked
//     its record (confirmWrite), and candidacy yields to any reachable
//     peer that could hold — or reach — more history: it defers, for as
//     long as the peer stays reachable, to one whose journal is longer
//     (or that wins the tie-break at equal length), and it cedes
//     outright to one that still hears a live primary, which covers the
//     asymmetric partition where only the candidate's link to the
//     incumbent is down. The node that promotes therefore holds every
//     confirmed record.
//   - Split-brain cannot acknowledge on both sides: a primary whose
//     followers are gone loses its lease and fences its own writes, and
//     once partitions heal the deterministic tie-break (epoch, then
//     node ID) demotes the loser, which resyncs from an authoritative
//     snapshot — truncating any unconfirmed suffix it wrote alone.
//
// This is deliberately not quorum consensus: a total partition makes
// writes unavailable (every side is fenced) rather than electing
// minority leaders. Choosing unavailability over divergence is the
// right trade for a registry whose readers tolerate staleness but whose
// mutations must never fork.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"extmesh/internal/metrics"
	"extmesh/internal/wire"
)

// FailoverOptions configures a node's membership in a failover cluster.
type FailoverOptions struct {
	// Listener is this node's replication listener; the controller
	// serves it for the node's whole life (probes are answered in any
	// role, streams only while primary).
	Listener net.Listener
	// Peers are the replication addresses of the other cluster nodes.
	Peers []string
	// StartPrimary makes this node begin in the primary role; exactly
	// one node per fresh cluster should set it. Rejoining nodes leave
	// it false and discover the incumbent.
	StartPrimary bool
	// Source optionally seeds the first follower phase with a known
	// primary address; empty discovers one from Peers. Ignored when
	// StartPrimary is set.
	Source string
	// Timeout is the failover deadline: a follower that hears nothing
	// from its primary for this long starts candidacy, and a primary
	// whose followers stop acking for this long fences itself.
	// 0 selects 2s. Keep it at least 4x the heartbeat interval.
	Timeout time.Duration
	// Rank staggers candidacy (rank * Timeout/4) so simultaneous
	// candidates don't duel; give each node a distinct small integer.
	Rank int
	// Retry is the replica reconnect pause; 0 selects 200ms.
	Retry time.Duration
	// Dial overrides the TCP dialer for streams and probes — the chaos
	// seam for partition tests. Nil selects a plain net.Dialer.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Log receives one line per role transition; nil disables.
	Log *log.Logger
}

// Failover is the per-node controller: a state machine over
// primary ⇄ follower ⇄ candidate, driven by stream liveness and peer
// probes. Create with NewFailover, drive with Run.
type Failover struct {
	s    *Server
	opts FailoverOptions

	// nudgec wakes the control loop early when evidence of a newer
	// epoch arrives on any plane (stream, ack, probe, client header).
	nudgec chan struct{}
	// source is the primary address the next follower phase should use
	// ("" = discover); wasPrimary forces the resync handshake after a
	// demotion, whose divergence is seq-undetectable at equal offsets.
	source     string
	wasPrimary bool

	demotions  *metrics.Counter
	probesSent *metrics.Counter
}

// NewFailover attaches a failover controller to s. The server must
// have a journal: promotions are durable epoch bumps.
func NewFailover(s *Server, opts FailoverOptions) (*Failover, error) {
	if s.persist.store == nil {
		return nil, errors.New("serve: failover requires a journal (-data-dir)")
	}
	if opts.Listener == nil {
		return nil, errors.New("serve: failover requires a replication listener")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Retry <= 0 {
		opts.Retry = 200 * time.Millisecond
	}
	if opts.Dial == nil {
		d := &net.Dialer{}
		opts.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	f := &Failover{
		s:          s,
		opts:       opts,
		source:     opts.Source,
		nudgec:     make(chan struct{}, 1),
		demotions:  s.metrics.Counter("cluster_demotions_total"),
		probesSent: s.metrics.Counter("cluster_probes_sent_total"),
	}
	s.failover.Store(f)
	return f, nil
}

// nudge wakes the control loop; safe from any goroutine, never blocks.
func (f *Failover) nudge() {
	select {
	case f.nudgec <- struct{}{}:
	default:
	}
}

func (f *Failover) logf(format string, args ...any) {
	if f.opts.Log != nil {
		f.opts.Log.Printf("failover[%s]: "+format, append([]any{f.s.opts.NodeID}, args...)...)
	}
}

// Run drives the node's role until ctx is canceled. The replication
// listener serves throughout; the loop alternates between the primary
// and follower phases, with candidacy folded into the follower phase.
func (f *Failover) Run(ctx context.Context) error {
	go f.s.ServeReplication(ctx, f.opts.Listener)
	if f.opts.StartPrimary {
		f.s.role.Store(rolePrimary)
		f.s.SetReadOnly(false)
		f.s.hub.resetLease()
		f.logf("starting as primary (epoch %d)", f.s.Epoch())
	} else {
		f.s.role.Store(roleFollower)
		f.s.SetReadOnly(true)
		f.logf("starting as follower")
	}
	for ctx.Err() == nil {
		if f.s.role.Load() == rolePrimary {
			f.runPrimary(ctx)
		} else {
			f.runFollower(ctx)
		}
	}
	return ctx.Err()
}

// runPrimary holds the primary role: maintain the lease (fence writes
// when no follower is confirming us) and watch for a stronger primary —
// the healed-partition case, where the deterministic tie-break decides
// which of two claimants demotes.
func (f *Failover) runPrimary(ctx context.Context) {
	t := time.NewTicker(f.opts.Timeout / 2)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.nudgec:
		case <-t.C:
		}
		followers, age := f.s.hub.lastAckAge()
		f.s.setFenced(followers == 0 || age > f.opts.Timeout)
		mine := f.s.nodeState()
		for _, addr := range f.opts.Peers {
			st, err := f.probe(ctx, addr)
			if err != nil {
				continue
			}
			if st.Epoch > mine.Epoch || (st.Role == "primary" && st.Stronger(mine)) {
				f.logf("demoting to %s (%s, epoch %d) from epoch %d", st.NodeID, addr, st.Epoch, mine.Epoch)
				f.demote(addr, st)
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// demote steps down to follower: stop streaming (live followers are cut
// off; new hellos get RepFence), flip read-only, and mark the next
// follower phase to force a full resync — an ex-primary's journal may
// hold an unconfirmed suffix the winner never saw, at sequence numbers
// the winner has reused, which resume-from-offset cannot detect.
func (f *Failover) demote(source string, st *wire.NodeState) {
	f.demotions.Inc()
	f.wasPrimary = true
	f.source = ""
	if st.Role == "primary" {
		f.source = source
	}
	f.s.role.Store(roleFollower)
	f.s.SetReadOnly(true)
	f.s.setFenced(false)
	f.s.hub.closeFollowers()
}

// runFollower follows a primary (discovering one if needed) until the
// stream goes silent past the deadline, the primary says goodbye, or
// the primary fences us — then tears the replica down and either
// rediscovers or stands for promotion.
func (f *Failover) runFollower(ctx context.Context) {
	src := f.source
	f.source = ""
	if src == "" {
		var ok bool
		src, ok = f.discover(ctx)
		if ctx.Err() != nil {
			return
		}
		if !ok {
			f.becomeCandidate(ctx)
			return
		}
	}
	f.logf("following %s", src)
	rctx, cancel := context.WithCancel(ctx)
	r := NewReplica(f.s, ReplicaOptions{
		Source:       src,
		Dial:         f.opts.Dial,
		Retry:        f.opts.Retry,
		StallTimeout: f.opts.Timeout,
		ForceResync:  f.wasPrimary,
	})
	f.wasPrimary = false
	done := make(chan struct{})
	go func() { r.Run(rctx); close(done) }()
	stop := func() {
		cancel()
		<-done
		f.s.detachReplica(r)
	}

	t := time.NewTicker(f.opts.Timeout / 4)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			stop()
			return
		case <-f.nudgec:
		case <-t.C:
		}
		if r.SaidGoodbye() || time.Since(r.LastContact()) > f.opts.Timeout {
			f.logf("primary %s lost (goodbye=%v): standing for promotion", src, r.SaidGoodbye())
			stop()
			f.becomeCandidate(ctx)
			return
		}
		if st := r.FencedBy(); st != nil {
			// Our source refuses to stream — it demoted, or a newer
			// epoch exists. Rediscover from scratch.
			f.logf("fenced by %s (epoch %d): rediscovering", st.NodeID, st.Epoch)
			stop()
			return
		}
	}
}

// discover probes the peer set for the strongest primary claimant at
// our epoch or newer. It keeps trying for one Timeout (a rejoining node
// racing the cluster's own startup), then gives up — the caller stands
// for promotion.
func (f *Failover) discover(ctx context.Context) (string, bool) {
	deadline := time.Now().Add(f.opts.Timeout)
	for ctx.Err() == nil {
		var bestAddr string
		var best *wire.NodeState
		for _, addr := range f.opts.Peers {
			st, err := f.probe(ctx, addr)
			// A fenced primary still counts: following it is exactly
			// what restores its lease.
			if err != nil || st.Role != "primary" || st.Epoch < f.s.Epoch() {
				continue
			}
			if best == nil || st.Stronger(best) {
				best, bestAddr = st, addr
			}
		}
		if best != nil {
			return bestAddr, true
		}
		if time.Now().After(deadline) {
			return "", false
		}
		select {
		case <-ctx.Done():
		case <-time.After(f.opts.Timeout / 4):
		}
	}
	return "", false
}

// becomeCandidate stands for promotion: stagger by rank, then yield to
// any reachable peer that should win instead. Two distinct yields:
//
//   - Cede (abandon candidacy) when a peer already won — it reports a
//     newer epoch or the primary role — or when a peer at our epoch
//     still hears a live primary (fresh PrimaryAgeMS). The latter is
//     the asymmetric-partition case: only our link to the primary is
//     down, the incumbent keeps confirming writes through that peer,
//     and promoting past it would truncate acknowledged history when
//     the partition heals. We go back to rediscovery instead.
//   - Defer (re-probe and wait) while a peer holds more history, or
//     wins the node-ID tie-break at equal history. Deferral is what
//     preserves acknowledged writes — the peer that acked the last
//     confirmed record has the longer journal and must be the one to
//     promote — so it is UNBOUNDED: we stand down for as long as that
//     peer remains reachable, until it promotes (we cede and follow),
//     starts following someone (we cede on its fresh primary contact),
//     or stops answering (we promote). The (Head, NodeID) order is
//     total, so among live candidates exactly one node defers to no
//     other and promotes; a wedged outranking peer costs availability,
//     never divergence — the trade the package comment commits to.
//
// If nothing outranks us, promote.
func (f *Failover) becomeCandidate(ctx context.Context) {
	if f.opts.Rank > 0 {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Duration(f.opts.Rank) * f.opts.Timeout / 4):
		}
	}
	for deferred := 0; ctx.Err() == nil; {
		mine := f.s.nodeState()
		outranked := ""
		for _, addr := range f.opts.Peers {
			st, err := f.probe(ctx, addr)
			if err != nil {
				continue
			}
			if st.Epoch > mine.Epoch || (st.Role == "primary" && st.Epoch >= mine.Epoch) {
				// Someone already won this round (or a later one):
				// follow a primary directly, rediscover otherwise.
				f.source = ""
				if st.Role == "primary" {
					f.source = addr
				}
				f.logf("candidacy ceded to %s (epoch %d)", st.NodeID, st.Epoch)
				return
			}
			if st.Epoch >= mine.Epoch && st.PrimaryAgeMS >= 0 &&
				time.Duration(st.PrimaryAgeMS)*time.Millisecond < f.opts.Timeout {
				// The peer still hears a primary we cannot reach: the
				// incumbent is alive across an asymmetric partition.
				f.source = ""
				f.logf("candidacy ceded: %s heard its primary %dms ago", st.NodeID, st.PrimaryAgeMS)
				return
			}
			if st.Head > mine.Head || (st.Head == mine.Head && st.NodeID > mine.NodeID) {
				outranked = st.NodeID
			}
		}
		if outranked != "" {
			if deferred++; deferred == 1 {
				f.logf("deferring candidacy to %s (more history or tie-break)", outranked)
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(f.opts.Timeout / 4):
			}
			continue
		}
		if err := f.s.Promote(); err != nil {
			// The epoch bump could not be made durable; promotion
			// without it would risk split-brain, so stay down and retry
			// the whole follower cycle.
			f.logf("promotion failed: %v", err)
			return
		}
		f.logf("promoted: epoch %d at seq %d (deferred %d rounds)", f.s.Epoch(), f.s.journalSeq.Load(), deferred)
		return
	}
}

// probe asks one peer for its NodeState over a fresh replication
// connection (RepProbe → RepState) — the one-shot handshake every node
// answers in every role.
func (f *Failover) probe(ctx context.Context, addr string) (*wire.NodeState, error) {
	f.probesSent.Inc()
	dctx, cancel := context.WithTimeout(ctx, f.opts.Timeout/2)
	defer cancel()
	conn, err := f.opts.Dial(dctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(f.opts.Timeout / 2))
	bw := bufio.NewWriter(conn)
	if err := wire.WriteFrame(bw, wire.AppendRepProbe(nil, f.s.Epoch())); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	body, err := wire.ReadFrame(bufio.NewReader(conn), wire.MaxReplicationFrame, nil)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodeRepMessage(body)
	if err != nil {
		return nil, err
	}
	if m.Type != wire.RepState {
		return nil, fmt.Errorf("serve: probe answered with frame type %d", m.Type)
	}
	return wire.DecodeNodeState(m.Payload)
}

// detachReplica clears the replica registration if r still holds it —
// promotion and rediscovery both pass through here, and the CAS keeps a
// stale teardown from clobbering a newer replica.
func (s *Server) detachReplica(r *Replica) {
	s.replica.CompareAndSwap(r, nil)
}

// Promote takes the primary role: durably bump the cluster epoch (an
// OpEpoch journal record — the fencing token every subsequent frame and
// response carries), then open for writes. The bump lands in the
// journal before the role flips, so a crash mid-promotion recovers into
// the new epoch with the node still read-only — safe on both sides.
func (s *Server) Promote() error {
	if r := s.replica.Load(); r != nil {
		s.replica.CompareAndSwap(r, nil)
	}
	next := s.Epoch() + 1
	if err := s.persist.bumpEpoch(next); err != nil {
		return err
	}
	s.setEpoch(next)
	s.promotions.Inc()
	s.hub.resetLease()
	s.role.Store(rolePrimary)
	s.setFenced(false)
	s.SetReadOnly(false)
	return nil
}
