package safety

import (
	"math/rand"
	"sync"

	"extmesh/internal/mesh"
)

// AffectedRows returns the number of rows that intersect at least one
// blocked node. Nodes on affected rows (and only those) need to collect
// extended-safety-level information in the paper's extension 2.
func AffectedRows(m mesh.Mesh, blocked []bool) int {
	n := 0
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			if blocked[y*m.Width+x] {
				n++
				break
			}
		}
	}
	return n
}

// AffectedCols returns the number of columns that intersect at least
// one blocked node.
func AffectedCols(m mesh.Mesh, blocked []bool) int {
	n := 0
	for x := 0; x < m.Width; x++ {
		for y := 0; y < m.Height; y++ {
			if blocked[y*m.Width+x] {
				n++
				break
			}
		}
	}
	return n
}

// Rep is one representative safety level collected under extension 2:
// the level of a node within the source's clear region along an axis.
type Rep struct {
	C mesh.Coord
	L Level
}

// Scorer ranks candidate representatives within a segment; the node
// with the highest score is selected.
type Scorer func(Level) int

// ScoreMin is the paper's default representative choice: "the one with
// the highest safety level", read as the scalar level (the minimum of
// the four components).
func ScoreMin(l Level) int {
	return l.Min()
}

// dirScorers holds one pre-built scorer per direction so ScoreDir can
// hand out closures without allocating on the hot path.
var dirScorers = [...]Scorer{
	mesh.East:  func(l Level) int { return l.E },
	mesh.South: func(l Level) int { return l.S },
	mesh.West:  func(l Level) int { return l.W },
	mesh.North: func(l Level) int { return l.N },
}

// ScoreDir scores by a single directional component; selecting up to
// four per-direction representatives per region is the paper's second
// variation of extension 2.
func ScoreDir(d mesh.Dir) Scorer {
	return dirScorers[d]
}

// Reps returns the representatives node s collects along direction
// `along` under extension 2 with the given segment size. The clear
// region extends dist(along)-1 hops (capped at the mesh edge); it is
// partitioned into consecutive segments of segSize nodes and from each
// segment the node ranked best by score is selected. segSize <= 0
// means one segment covering the whole region (the paper's "max"
// variant); segSize == 1 yields every node of the region.
func Reps(g *Grid, s mesh.Coord, along mesh.Dir, score Scorer, segSize int) []Rep {
	return AppendReps(nil, g, s, along, score, segSize)
}

// AppendReps appends the representatives Reps would return to dst and
// returns the extended slice. Passing a reused buffer (typically
// dst[:0] of a per-worker scratch slice) keeps repeated extension-2
// evaluations allocation-free once the buffer has grown to its
// steady-state size.
func AppendReps(dst []Rep, g *Grid, s mesh.Coord, along mesh.Dir, score Scorer, segSize int) []Rep {
	limit := g.At(s).Dist(along) - 1 // farthest clear hop count
	off := along.Offset()
	// Cap at the mesh edge.
	maxHops := 0
	switch along {
	case mesh.East:
		maxHops = g.M.Width - 1 - s.X
	case mesh.West:
		maxHops = s.X
	case mesh.North:
		maxHops = g.M.Height - 1 - s.Y
	case mesh.South:
		maxHops = s.Y
	}
	if limit > maxHops {
		limit = maxHops
	}
	if limit < 1 {
		return dst
	}
	if segSize <= 0 || segSize > limit {
		segSize = limit
	}
	for start := 1; start <= limit; start += segSize {
		end := start + segSize - 1
		if end > limit {
			end = limit
		}
		best := Rep{}
		bestScore := -1
		for k := start; k <= end; k++ {
			c := mesh.Coord{X: s.X + k*off.X, Y: s.Y + k*off.Y}
			lvl := g.At(c)
			if sc := score(lvl); sc > bestScore {
				bestScore = sc
				best = Rep{C: c, L: lvl}
			}
		}
		dst = append(dst, best)
	}
	return dst
}

// PivotMode selects how extension 3 places its pivot nodes.
type PivotMode uint8

// Pivot placement modes. CenterPivots reproduces the deterministic
// recursive-center selection of Figure 11; RandomPivots reproduces the
// random per-submesh selection used for the strategies of Figure 12;
// LatinPivots implements the paper's further variation in which pivots
// are evenly distributed with no two on the same row or column.
const (
	CenterPivots PivotMode = iota + 1
	RandomPivots
	LatinPivots
)

// Pivots returns the pivot nodes produced by `levels` rounds of the
// recursive 4-way partition of region described for extension 3. Level
// 1 contributes one pivot (the region center, or a uniformly random
// node for RandomPivots); the pivot splits the region into four
// submeshes, each recursively contributing the next level. The total
// number of pivots for k levels is (4^k - 1) / 3 on regions large
// enough to keep splitting. rng is only consulted for RandomPivots.
func Pivots(region mesh.Rect, levels int, mode PivotMode, rng *rand.Rand) []mesh.Coord {
	if mode == LatinPivots {
		return latinPivots(region, levels)
	}
	var pivots []mesh.Coord
	var recurse func(r mesh.Rect, depth int)
	recurse = func(r mesh.Rect, depth int) {
		if depth <= 0 || !r.Valid() {
			return
		}
		var p mesh.Coord
		if mode == RandomPivots && rng != nil {
			p = mesh.Coord{
				X: r.MinX + rng.Intn(r.Width()),
				Y: r.MinY + rng.Intn(r.Height()),
			}
		} else {
			p = mesh.Coord{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
		}
		pivots = append(pivots, p)
		if depth == 1 {
			return
		}
		subs := [4]mesh.Rect{
			{MinX: r.MinX, MinY: r.MinY, MaxX: p.X, MaxY: p.Y},
			{MinX: p.X + 1, MinY: r.MinY, MaxX: r.MaxX, MaxY: p.Y},
			{MinX: r.MinX, MinY: p.Y + 1, MaxX: p.X, MaxY: r.MaxY},
			{MinX: p.X + 1, MinY: p.Y + 1, MaxX: r.MaxX, MaxY: r.MaxY},
		}
		for _, sub := range subs {
			recurse(sub, depth-1)
		}
	}
	recurse(region, levels)
	return pivots
}

// latinPivots places the same number of pivots as `levels` levels of
// partition would ((4^levels - 1) / 3, capped at the region's smaller
// side), evenly spread with pairwise distinct rows and columns: pivot
// i takes the i-th column slot and the (i*p mod count)-th row slot,
// where p is coprime with the count (a golden-ratio multiplier), which
// scatters the pivots across the region instead of lining them up on
// the diagonal.
func latinPivots(region mesh.Rect, levels int) []mesh.Coord {
	if levels <= 0 || !region.Valid() {
		return nil
	}
	count := 0
	for i, pow := 0, 1; i < levels; i, pow = i+1, pow*4 {
		count += pow
	}
	if side := min(region.Width(), region.Height()); count > side {
		count = side
	}
	if count <= 0 {
		return nil
	}
	p := int(float64(count)*0.618) | 1 // odd golden-ratio step
	for gcd(p, count) != 1 {
		p += 2
	}
	pivots := make([]mesh.Coord, 0, count)
	for i := 0; i < count; i++ {
		col := region.MinX + (2*i+1)*region.Width()/(2*count)
		rowSlot := (i * p) % count
		row := region.MinY + (2*rowSlot+1)*region.Height()/(2*count)
		pivots = append(pivots, mesh.Coord{X: col, Y: row})
	}
	return pivots
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// DistanceTransform returns, for every node, the L1 distance to the
// nearest blocked node (Unbounded if the grid has none): the naive
// scalar "safety radius" that predates the extended safety level. A
// source whose radius exceeds D(s,d) trivially guarantees a minimal
// path (the whole s-d rectangle is clear), but the comparison
// experiment shows how much weaker this is than the 4-tuple.
func DistanceTransform(m mesh.Mesh, blocked []bool) []int32 {
	return DistanceTransformInto(nil, m, blocked)
}

// bfsQueue pools the BFS worklist of DistanceTransformInto, which
// grows to one entry per mesh node, so repeated transforms (one per
// fault configuration in the simulation) allocate nothing in steady
// state.
var bfsQueue = sync.Pool{New: func() any { return new([]int32) }}

// DistanceTransformInto is the arena form of DistanceTransform: it
// fills dst (reusing its backing when large enough; nil allocates) and
// returns the filled slice. The BFS worklist comes from an internal
// pool, so steady-state calls are allocation-free.
func DistanceTransformInto(dst []int32, m mesh.Mesh, blocked []bool) []int32 {
	size := m.Size()
	if cap(dst) < size {
		dst = make([]int32, size)
	} else {
		dst = dst[:size]
	}
	qp := bfsQueue.Get().(*[]int32)
	queue := (*qp)[:0]
	for i := range dst {
		if blocked[i] {
			dst[i] = 0
			queue = append(queue, int32(i))
		} else {
			dst[i] = Unbounded
		}
	}
	w, h := m.Width, m.Height
	for head := 0; head < len(queue); head++ {
		i := int(queue[head])
		dc := dst[i] + 1
		x, y := i%w, i/w
		if x > 0 && dst[i-1] > dc {
			dst[i-1] = dc
			queue = append(queue, int32(i-1))
		}
		if x < w-1 && dst[i+1] > dc {
			dst[i+1] = dc
			queue = append(queue, int32(i+1))
		}
		if y > 0 && dst[i-w] > dc {
			dst[i-w] = dc
			queue = append(queue, int32(i-w))
		}
		if y < h-1 && dst[i+w] > dc {
			dst[i+w] = dc
			queue = append(queue, int32(i+w))
		}
	}
	*qp = queue[:0]
	bfsQueue.Put(qp)
	return dst
}
