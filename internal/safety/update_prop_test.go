package safety

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
)

// TestUpdateMatchesComputeAfterRandomToggles is the property guard the
// reach-cache layer leans on: after any sequence of incremental fault
// toggles, Grid.Update over just the touched rows and columns must
// produce a grid identical to a fresh Compute over the final blocked
// set. E/W components depend only on a node's row and N/S only on its
// column, so toggling cell (x, y) and resweeping row y and column x
// must be exact.
func TestUpdateMatchesComputeAfterRandomToggles(t *testing.T) {
	meshes := []mesh.Mesh{
		{Width: 1, Height: 1},
		{Width: 1, Height: 9},
		{Width: 9, Height: 1},
		{Width: 12, Height: 9},
		{Width: 17, Height: 23},
	}
	for _, m := range meshes {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			blocked := make([]bool, m.Size())
			g := Compute(m, blocked)
			for step := 0; step < 300; step++ {
				i := rng.Intn(m.Size())
				blocked[i] = !blocked[i]
				c := m.CoordOf(i)
				g.Update(blocked, []int{c.Y}, []int{c.X})
				if step%29 != 0 { // full cross-checks are O(N); sample them
					continue
				}
				fresh := Compute(m, blocked)
				for j := 0; j < m.Size(); j++ {
					n := m.CoordOf(j)
					if g.At(n) != fresh.At(n) {
						t.Fatalf("mesh %v seed %d step %d: level at %v = %v, fresh %v",
							m, seed, step, n, g.At(n), fresh.At(n))
					}
				}
			}
			// Final full check after the whole toggle sequence.
			fresh := Compute(m, blocked)
			for j := 0; j < m.Size(); j++ {
				n := m.CoordOf(j)
				if g.At(n) != fresh.At(n) {
					t.Fatalf("mesh %v seed %d final: level at %v = %v, fresh %v",
						m, seed, n, g.At(n), fresh.At(n))
				}
			}
		}
	}
}

// TestUpdateBatchedRowsCols checks the batched form used by the
// dynamic tracker: several cells toggle, then one Update covers all
// touched rows and columns at once.
func TestUpdateBatchedRowsCols(t *testing.T) {
	m := mesh.Mesh{Width: 15, Height: 11}
	rng := rand.New(rand.NewSource(42))
	blocked := make([]bool, m.Size())
	g := Compute(m, blocked)
	for round := 0; round < 60; round++ {
		batch := 1 + rng.Intn(6)
		rowSet := map[int]struct{}{}
		colSet := map[int]struct{}{}
		for b := 0; b < batch; b++ {
			i := rng.Intn(m.Size())
			blocked[i] = !blocked[i]
			c := m.CoordOf(i)
			rowSet[c.Y] = struct{}{}
			colSet[c.X] = struct{}{}
		}
		var rows, cols []int
		for y := range rowSet {
			rows = append(rows, y)
		}
		for x := range colSet {
			cols = append(cols, x)
		}
		g.Update(blocked, rows, cols)
		fresh := Compute(m, blocked)
		for j := 0; j < m.Size(); j++ {
			n := m.CoordOf(j)
			if g.At(n) != fresh.At(n) {
				t.Fatalf("round %d: level at %v = %v, fresh %v", round, n, g.At(n), fresh.At(n))
			}
		}
	}
}

// TestUpdateIgnoresOutOfRangeIndices pins the documented tolerance of
// Update for out-of-range row/column indices.
func TestUpdateIgnoresOutOfRangeIndices(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	blocked := make([]bool, m.Size())
	g := Compute(m, blocked)
	blocked[m.Index(mesh.Coord{X: 2, Y: 3})] = true
	g.Update(blocked, []int{-1, 3, 99}, []int{-5, 2, 6})
	fresh := Compute(m, blocked)
	for j := 0; j < m.Size(); j++ {
		n := m.CoordOf(j)
		if g.At(n) != fresh.At(n) {
			t.Fatalf("level at %v = %v, fresh %v", n, g.At(n), fresh.At(n))
		}
	}
}
