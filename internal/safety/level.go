// Package safety implements the paper's extended safety levels: the
// 4-tuple (E, S, W, N) of distances from a node to the closest fault
// region in each direction, plus the derived information models used by
// the extended sufficient conditions (regions, segments and pivots).
package safety

import (
	"fmt"
	"math"

	"extmesh/internal/mesh"
)

// Unbounded is the distance reported when no fault region lies in a
// direction (the paper's infinity in the default level (∞,∞,∞,∞)).
const Unbounded = math.MaxInt32

// Level is the extended safety level of one node: the number of hops to
// the nearest fault-region node towards East, South, West and North.
// A value of 1 means the adjacent node in that direction is blocked;
// Unbounded means the row/column is clear to the mesh edge.
type Level struct {
	E int
	S int
	W int
	N int
}

// String renders the level as (E,S,W,N) with "inf" for Unbounded.
func (l Level) String() string {
	f := func(v int) string {
		if v >= Unbounded {
			return "inf"
		}
		return fmt.Sprintf("%d", v)
	}
	return "(" + f(l.E) + "," + f(l.S) + "," + f(l.W) + "," + f(l.N) + ")"
}

// Min returns the smallest of the four components: the scalar "safety
// level" of the node (its distance to the nearest fault region in any
// direction).
func (l Level) Min() int {
	m := l.E
	if l.S < m {
		m = l.S
	}
	if l.W < m {
		m = l.W
	}
	if l.N < m {
		m = l.N
	}
	return m
}

// Dist returns the component of the level along direction d.
func (l Level) Dist(d mesh.Dir) int {
	switch d {
	case mesh.East:
		return l.E
	case mesh.South:
		return l.S
	case mesh.West:
		return l.W
	case mesh.North:
		return l.N
	default:
		return 0
	}
}

// Grid holds the extended safety level of every node of a mesh for one
// blocked set (faulty blocks or MCCs of one type).
type Grid struct {
	M      mesh.Mesh
	levels []Level
}

// Compute derives the safety levels of every node over a freshly
// allocated grid by four linear sweeps over the blocked grid (indexed
// by mesh.Index): East and West per row, North and South per column.
// Nodes inside the blocked set get a zero distance in every direction;
// routing never consults them.
func Compute(m mesh.Mesh, blocked []bool) *Grid {
	return ComputeInto(nil, m, blocked)
}

// ComputeInto is the arena form of Compute: it runs the same four
// linear sweeps into g, reusing g's []Level backing when it is large
// enough (a nil g allocates a fresh grid), and returns the grid it
// filled. Every entry is overwritten, so no clearing pass is needed.
//
// Aliasing rule: the returned grid is g itself, so levels previously
// read from it describe the new blocked set after the call. A caller
// that reuses one grid across fault configurations (e.g. a simulation
// worker's arena) must not let results derived from the old blocked
// set outlive the next ComputeInto on the same grid.
func ComputeInto(g *Grid, m mesh.Mesh, blocked []bool) *Grid {
	if g == nil {
		g = &Grid{}
	}
	g.M = m
	if cap(g.levels) < m.Size() {
		g.levels = make([]Level, m.Size())
	} else {
		g.levels = g.levels[:m.Size()]
	}

	// East/West sweeps per row.
	for y := 0; y < m.Height; y++ {
		dist := Unbounded
		for x := m.Width - 1; x >= 0; x-- { // East: scan right-to-left
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].E = dist
		}
		dist = Unbounded
		for x := 0; x < m.Width; x++ { // West: scan left-to-right
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].W = dist
		}
	}
	// North/South sweeps per column.
	for x := 0; x < m.Width; x++ {
		dist := Unbounded
		for y := m.Height - 1; y >= 0; y-- { // North: scan top-to-bottom
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].N = dist
		}
		dist = Unbounded
		for y := 0; y < m.Height; y++ { // South: scan bottom-to-top
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].S = dist
		}
	}
	return g
}

// At returns the safety level of node c.
func (g *Grid) At(c mesh.Coord) Level {
	return g.levels[g.M.Index(c)]
}

// SafeFor implements Definition 3 generalized to any quadrant: node s
// is safe with respect to destination d when the sections of its row
// and column towards d are clear of fault regions, i.e. when
// |xd-xs| < dist(horizontal dir) and |yd-ys| < dist(vertical dir).
// Destinations sharing a row or column only need the one relevant
// section clear.
func (g *Grid) SafeFor(s, d mesh.Coord) bool {
	lvl := g.At(s)
	dx := d.X - s.X
	dy := d.Y - s.Y
	switch {
	case dx > 0 && dx >= lvl.E:
		return false
	case dx < 0 && -dx >= lvl.W:
		return false
	}
	switch {
	case dy > 0 && dy >= lvl.N:
		return false
	case dy < 0 && -dy >= lvl.S:
		return false
	}
	return true
}

// Update recomputes the levels of the given rows and columns against
// the (updated) blocked grid. It is the incremental counterpart of
// Compute: when blocked nodes are added, only their rows and columns
// change, because E/W components depend solely on the node's row and
// N/S components solely on its column.
func (g *Grid) Update(blocked []bool, rows, cols []int) {
	m := g.M
	for _, y := range rows {
		if y < 0 || y >= m.Height {
			continue
		}
		dist := Unbounded
		for x := m.Width - 1; x >= 0; x-- {
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].E = dist
		}
		dist = Unbounded
		for x := 0; x < m.Width; x++ {
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].W = dist
		}
	}
	for _, x := range cols {
		if x < 0 || x >= m.Width {
			continue
		}
		dist := Unbounded
		for y := m.Height - 1; y >= 0; y-- {
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].N = dist
		}
		dist = Unbounded
		for y := 0; y < m.Height; y++ {
			i := y*m.Width + x
			if blocked[i] {
				dist = 0
			} else if dist < Unbounded {
				dist++
			}
			g.levels[i].S = dist
		}
	}
}
