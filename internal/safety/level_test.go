package safety

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

func blockedFrom(t *testing.T, m mesh.Mesh, faults []mesh.Coord) []bool {
	t.Helper()
	s, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	return fault.BuildBlocks(s).BlockedGrid()
}

func TestComputeNoFaults(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	g := Compute(m, make([]bool, m.Size()))
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			lvl := g.At(mesh.Coord{X: x, Y: y})
			if lvl.E != Unbounded || lvl.S != Unbounded || lvl.W != Unbounded || lvl.N != Unbounded {
				t.Fatalf("level at (%d,%d) = %v, want all Unbounded", x, y, lvl)
			}
		}
	}
}

func TestComputeSingleBlock(t *testing.T) {
	// One faulty node at (3,3) of a 7x7 mesh.
	m := mesh.Mesh{Width: 7, Height: 7}
	blocked := blockedFrom(t, m, []mesh.Coord{{X: 3, Y: 3}})
	g := Compute(m, blocked)

	tests := []struct {
		c    mesh.Coord
		want Level
	}{
		{mesh.Coord{X: 0, Y: 3}, Level{E: 3, S: Unbounded, W: Unbounded, N: Unbounded}},
		{mesh.Coord{X: 6, Y: 3}, Level{E: Unbounded, S: Unbounded, W: 3, N: Unbounded}},
		{mesh.Coord{X: 3, Y: 0}, Level{E: Unbounded, S: Unbounded, W: Unbounded, N: 3}},
		{mesh.Coord{X: 3, Y: 6}, Level{E: Unbounded, S: 3, W: Unbounded, N: Unbounded}},
		{mesh.Coord{X: 2, Y: 3}, Level{E: 1, S: Unbounded, W: Unbounded, N: Unbounded}},
		{mesh.Coord{X: 0, Y: 0}, Level{E: Unbounded, S: Unbounded, W: Unbounded, N: Unbounded}},
	}
	for _, tt := range tests {
		if got := g.At(tt.c); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
	// Blocked node reports zero distances.
	if got := g.At(mesh.Coord{X: 3, Y: 3}); got.E != 0 || got.N != 0 || got.W != 0 || got.S != 0 {
		t.Errorf("blocked node level = %v, want zeros", got)
	}
}

// TestComputeMatchesBruteForce cross-checks the sweep implementation
// against a per-node linear scan on random fault patterns.
func TestComputeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		w := 5 + rng.Intn(20)
		h := 5 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < 0.15
		}
		g := Compute(m, blocked)

		scan := func(c mesh.Coord, d mesh.Dir) int {
			off := d.Offset()
			for k := 1; ; k++ {
				n := mesh.Coord{X: c.X + k*off.X, Y: c.Y + k*off.Y}
				if !m.Contains(n) {
					return Unbounded
				}
				if blocked[m.Index(n)] {
					return k
				}
			}
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if blocked[i] {
				continue
			}
			lvl := g.At(c)
			for _, d := range mesh.Directions() {
				if got, want := lvl.Dist(d), scan(c, d); got != want {
					t.Fatalf("trial %d: dist %v at %v = %d, want %d", trial, d, c, got, want)
				}
			}
		}
	}
}

func TestSafeFor(t *testing.T) {
	// Block [2:6,3:6] from the paper example in a 12x12 mesh.
	m := mesh.Mesh{Width: 12, Height: 12}
	faults := []mesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	}
	g := Compute(m, blockedFrom(t, m, faults))

	cd := func(x, y int) mesh.Coord { return mesh.Coord{X: x, Y: y} }
	tests := []struct {
		name string
		s, d mesh.Coord
		want bool
	}{
		// Source (0,0): x-axis row 0 and y-axis column 0 are entirely
		// clear, so it is safe for every quadrant-I destination.
		{name: "origin to far NE", s: cd(0, 0), d: cd(11, 11), want: true},
		// Source (0,3): row 3 is blocked at x=2, so destinations east
		// beyond 1 hop fail; column 0 is clear.
		{name: "blocked row near", s: cd(0, 3), d: cd(1, 11), want: true},
		{name: "blocked row at block", s: cd(0, 3), d: cd(2, 11), want: false},
		{name: "blocked row far", s: cd(0, 3), d: cd(8, 11), want: false},
		// Source (3,0): column 3 blocked at y=3.
		{name: "blocked column", s: cd(3, 0), d: cd(11, 3), want: false},
		{name: "blocked column short", s: cd(3, 0), d: cd(11, 2), want: true},
		// Same row destination only needs the horizontal section.
		{name: "same row", s: cd(0, 0), d: cd(11, 0), want: true},
		{name: "same node", s: cd(0, 0), d: cd(0, 0), want: true},
		// Westward and southward destinations use W and S components.
		{name: "west clear", s: cd(11, 11), d: cd(8, 11), want: true},
		{name: "west blocked", s: cd(11, 5), d: cd(4, 5), want: false},
		{name: "south blocked", s: cd(3, 11), d: cd(3, 4), want: false},
		{name: "south clear short", s: cd(3, 11), d: cd(3, 8), want: true},
		// Quadrant III.
		{name: "southwest blocked", s: cd(5, 11), d: cd(2, 5), want: false},
		{name: "southwest clear", s: cd(11, 11), d: cd(8, 8), want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.SafeFor(tt.s, tt.d); got != tt.want {
				t.Errorf("SafeFor(%v,%v) = %v, want %v", tt.s, tt.d, got, tt.want)
			}
		})
	}
}

func TestLevelString(t *testing.T) {
	l := Level{E: 3, S: Unbounded, W: 0, N: 7}
	if got := l.String(); got != "(3,inf,0,7)" {
		t.Errorf("String() = %q", got)
	}
}

func TestLevelDistInvalid(t *testing.T) {
	l := Level{E: 1, S: 2, W: 3, N: 4}
	if got := l.Dist(mesh.Dir(0)); got != 0 {
		t.Errorf("Dist(invalid) = %d, want 0", got)
	}
}

func TestLevelMinAndScoreMin(t *testing.T) {
	tests := []struct {
		l    Level
		want int
	}{
		{Level{E: 3, S: 5, W: 7, N: 9}, 3},
		{Level{E: 9, S: 2, W: 7, N: 5}, 2},
		{Level{E: 9, S: 5, W: 1, N: 5}, 1},
		{Level{E: 9, S: 5, W: 7, N: 0}, 0},
		{Level{E: Unbounded, S: Unbounded, W: Unbounded, N: Unbounded}, Unbounded},
	}
	for _, tt := range tests {
		if got := tt.l.Min(); got != tt.want {
			t.Errorf("Min(%v) = %d, want %d", tt.l, got, tt.want)
		}
		if got := ScoreMin(tt.l); got != tt.want {
			t.Errorf("ScoreMin(%v) = %d, want %d", tt.l, got, tt.want)
		}
	}
}

// TestUpdateMatchesRecompute verifies the incremental row/column
// resweep equals a full recomputation for random block additions.
func TestUpdateMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		m := mesh.Mesh{Width: 10 + rng.Intn(15), Height: 10 + rng.Intn(15)}
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < 0.05
		}
		g := Compute(m, blocked)

		// Add a few more blocked nodes and resweep their rows/columns.
		var rows, cols []int
		for add := 0; add < 1+rng.Intn(4); add++ {
			c := mesh.Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
			blocked[m.Index(c)] = true
			rows = append(rows, c.Y)
			cols = append(cols, c.X)
		}
		g.Update(blocked, rows, cols)

		want := Compute(m, blocked)
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if g.At(c) != want.At(c) {
				t.Fatalf("trial %d: incremental level at %v = %v, want %v", trial, c, g.At(c), want.At(c))
			}
		}
		// Out-of-range rows/cols are ignored.
		g.Update(blocked, []int{-1, m.Height}, []int{-2, m.Width})
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if g.At(c) != want.At(c) {
				t.Fatalf("trial %d: out-of-range update changed %v", trial, c)
			}
		}
	}
}
