package safety

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
)

func TestAffectedRowsCols(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 5}
	blocked := make([]bool, m.Size())
	set := func(x, y int) { blocked[m.Index(mesh.Coord{X: x, Y: y})] = true }
	set(1, 1)
	set(2, 1) // same row as above
	set(4, 3)

	if got := AffectedRows(m, blocked); got != 2 {
		t.Errorf("AffectedRows = %d, want 2", got)
	}
	if got := AffectedCols(m, blocked); got != 3 {
		t.Errorf("AffectedCols = %d, want 3", got)
	}

	empty := make([]bool, m.Size())
	if AffectedRows(m, empty) != 0 || AffectedCols(m, empty) != 0 {
		t.Error("empty grid should have no affected rows/cols")
	}
}

func TestRepsSegmentation(t *testing.T) {
	// Row 0 of a 12x3 mesh is clear until a block at x=9; the region
	// east of the source (0,0) is x=1..8 (8 nodes). Column blocks at
	// (2,1) and (5,1) shape the N components so representatives are
	// distinguishable: N(x)=1 for x=2,5, Unbounded otherwise.
	m := mesh.Mesh{Width: 12, Height: 3}
	blocked := make([]bool, m.Size())
	blocked[m.Index(mesh.Coord{X: 9, Y: 0})] = true
	blocked[m.Index(mesh.Coord{X: 2, Y: 1})] = true
	blocked[m.Index(mesh.Coord{X: 5, Y: 1})] = true
	g := Compute(m, blocked)
	s := mesh.Coord{X: 0, Y: 0}

	if got := g.At(s).E; got != 9 {
		t.Fatalf("E at source = %d, want 9", got)
	}

	// Segment size 1: every node of the region is a representative.
	reps := Reps(g, s, mesh.East, ScoreDir(mesh.North), 1)
	if len(reps) != 8 {
		t.Fatalf("seg=1: %d reps, want 8", len(reps))
	}
	for i, r := range reps {
		want := mesh.Coord{X: i + 1, Y: 0}
		if r.C != want {
			t.Errorf("rep %d at %v, want %v", i, r.C, want)
		}
	}

	// Segment size 4: two segments [1..4] and [5..8]; the first picks a
	// node with N=Unbounded (not x=2), the second avoids x=5.
	reps = Reps(g, s, mesh.East, ScoreDir(mesh.North), 4)
	if len(reps) != 2 {
		t.Fatalf("seg=4: %d reps, want 2", len(reps))
	}
	for _, r := range reps {
		if r.L.N != Unbounded {
			t.Errorf("representative %v has N=%d, expected a clear-column node", r.C, r.L.N)
		}
	}

	// Max segment (segSize <= 0): single representative.
	reps = Reps(g, s, mesh.East, ScoreDir(mesh.North), 0)
	if len(reps) != 1 {
		t.Fatalf("seg=max: %d reps, want 1", len(reps))
	}

	// Oversized segment behaves like max.
	reps = Reps(g, s, mesh.East, ScoreDir(mesh.North), 100)
	if len(reps) != 1 {
		t.Fatalf("seg=100: %d reps, want 1", len(reps))
	}
}

func TestRepsEdgeCases(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	blocked := make([]bool, m.Size())
	blocked[m.Index(mesh.Coord{X: 1, Y: 0})] = true
	g := Compute(m, blocked)

	// E = 1 at (0,0): no clear region east.
	if reps := Reps(g, mesh.Coord{X: 0, Y: 0}, mesh.East, ScoreDir(mesh.North), 1); reps != nil {
		t.Errorf("no-region reps = %v, want nil", reps)
	}
	// West of (0,0) is the mesh edge: no region.
	if reps := Reps(g, mesh.Coord{X: 0, Y: 0}, mesh.West, ScoreDir(mesh.North), 1); reps != nil {
		t.Errorf("edge reps = %v, want nil", reps)
	}
	// Clear row: region capped by the mesh edge, not Unbounded.
	reps := Reps(g, mesh.Coord{X: 0, Y: 5}, mesh.East, ScoreDir(mesh.North), 1)
	if len(reps) != 5 {
		t.Errorf("clear-row reps = %d, want 5", len(reps))
	}
	// North and South along a column work symmetrically.
	reps = Reps(g, mesh.Coord{X: 3, Y: 0}, mesh.North, ScoreDir(mesh.East), 2)
	if len(reps) != 3 { // region 1..5, segments {1,2},{3,4},{5}
		t.Errorf("north reps = %d, want 3", len(reps))
	}
	reps = Reps(g, mesh.Coord{X: 3, Y: 5}, mesh.South, ScoreDir(mesh.East), 5)
	if len(reps) != 1 {
		t.Errorf("south reps = %d, want 1", len(reps))
	}
}

func TestPivotCounts(t *testing.T) {
	region := mesh.Rect{MinX: 0, MinY: 0, MaxX: 99, MaxY: 99}
	tests := []struct {
		levels int
		want   int
	}{
		{0, 0}, {1, 1}, {2, 5}, {3, 21}, {4, 85},
	}
	for _, tt := range tests {
		got := Pivots(region, tt.levels, CenterPivots, nil)
		if len(got) != tt.want {
			t.Errorf("levels=%d: %d pivots, want %d", tt.levels, len(got), tt.want)
		}
		for _, p := range got {
			if !region.Contains(p) {
				t.Errorf("levels=%d: pivot %v outside region", tt.levels, p)
			}
		}
	}
}

func TestPivotCenterDeterministic(t *testing.T) {
	region := mesh.Rect{MinX: 0, MinY: 0, MaxX: 99, MaxY: 99}
	a := Pivots(region, 3, CenterPivots, nil)
	b := Pivots(region, 3, CenterPivots, nil)
	if len(a) != len(b) {
		t.Fatal("non-deterministic pivot count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic pivots at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Level-1 pivot is the center.
	if a[0] != (mesh.Coord{X: 49, Y: 49}) {
		t.Errorf("first pivot = %v, want (49,49)", a[0])
	}
}

func TestPivotRandomInRegion(t *testing.T) {
	region := mesh.Rect{MinX: 10, MinY: 20, MaxX: 29, MaxY: 49}
	rng := rand.New(rand.NewSource(4))
	pivots := Pivots(region, 3, RandomPivots, rng)
	if len(pivots) != 21 {
		t.Fatalf("%d pivots, want 21", len(pivots))
	}
	for _, p := range pivots {
		if !region.Contains(p) {
			t.Errorf("pivot %v outside region %v", p, region)
		}
	}
}

func TestPivotTinyRegion(t *testing.T) {
	// A 1x1 region cannot be subdivided: deeper levels degrade
	// gracefully instead of looping forever.
	region := mesh.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	pivots := Pivots(region, 3, CenterPivots, nil)
	for _, p := range pivots {
		if p != (mesh.Coord{X: 5, Y: 5}) {
			t.Errorf("pivot %v outside 1x1 region", p)
		}
	}
	if len(pivots) == 0 {
		t.Error("no pivots for 1x1 region")
	}
}

func TestLatinPivots(t *testing.T) {
	region := mesh.Rect{MinX: 10, MinY: 20, MaxX: 109, MaxY: 139}
	for _, levels := range []int{1, 2, 3} {
		pivots := Pivots(region, levels, LatinPivots, nil)
		wantCount := 0
		for i, pow := 0, 1; i < levels; i, pow = i+1, pow*4 {
			wantCount += pow
		}
		if len(pivots) != wantCount {
			t.Fatalf("levels=%d: %d pivots, want %d", levels, len(pivots), wantCount)
		}
		rows := make(map[int]bool, len(pivots))
		cols := make(map[int]bool, len(pivots))
		for _, p := range pivots {
			if !region.Contains(p) {
				t.Fatalf("levels=%d: pivot %v outside region", levels, p)
			}
			if rows[p.Y] {
				t.Fatalf("levels=%d: duplicate row %d", levels, p.Y)
			}
			if cols[p.X] {
				t.Fatalf("levels=%d: duplicate column %d", levels, p.X)
			}
			rows[p.Y] = true
			cols[p.X] = true
		}
	}
	// Capped at the smaller side for tiny regions.
	tiny := mesh.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 50}
	pv := Pivots(tiny, 3, LatinPivots, nil)
	if len(pv) != 5 {
		t.Errorf("tiny region: %d pivots, want 5 (capped)", len(pv))
	}
	if got := Pivots(mesh.Rect{MinX: 2, MaxX: 1, MinY: 0, MaxY: 0}, 2, LatinPivots, nil); got != nil {
		t.Error("invalid region should yield no pivots")
	}
	if got := Pivots(tiny, 0, LatinPivots, nil); got != nil {
		t.Error("zero levels should yield no pivots")
	}
}

func TestDistanceTransform(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 5}
	blocked := make([]bool, m.Size())
	blocked[m.Index(mesh.Coord{X: 2, Y: 2})] = true
	dist := DistanceTransform(m, blocked)

	tests := []struct {
		c    mesh.Coord
		want int32
	}{
		{mesh.Coord{X: 2, Y: 2}, 0},
		{mesh.Coord{X: 3, Y: 2}, 1},
		{mesh.Coord{X: 0, Y: 0}, 4},
		{mesh.Coord{X: 5, Y: 4}, 5},
	}
	for _, tt := range tests {
		if got := dist[m.Index(tt.c)]; got != tt.want {
			t.Errorf("dist[%v] = %d, want %d", tt.c, got, tt.want)
		}
	}

	empty := DistanceTransform(m, make([]bool, m.Size()))
	for i, d := range empty {
		if d != Unbounded {
			t.Fatalf("fault-free transform at %v = %d", m.CoordOf(i), d)
		}
	}
}
