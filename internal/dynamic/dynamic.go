// Package dynamic maintains the fault-region labeling and the extended
// safety levels incrementally as faults arrive one at a time. This is
// the paper's maintenance story — "when a disturbance occurs, only
// those affected nodes update their information" — made concrete: a
// new fault triggers the Definition-1 disable cascade from the fault
// outward, and only the rows and columns touched by newly dead nodes
// resweep their safety levels.
package dynamic

import (
	"fmt"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

// Tracker holds the incrementally maintained state. The zero value is
// not usable; construct with New.
type Tracker struct {
	m      mesh.Mesh
	faulty []bool
	dead   []bool // fault-region membership (faulty or disabled)
	faults []mesh.Coord
	levels *safety.Grid

	// Statistics of the last AddFault call, exposing how local the
	// update was.
	lastCascade int // nodes newly added to the fault region
	lastRows    int // rows that resweeped their levels
	lastCols    int // columns that resweeped their levels
}

// New returns a tracker over an initially fault-free mesh.
func New(m mesh.Mesh) (*Tracker, error) {
	if m.Width <= 0 || m.Height <= 0 {
		return nil, fmt.Errorf("dynamic: invalid mesh %v", m)
	}
	return &Tracker{
		m:      m,
		faulty: make([]bool, m.Size()),
		dead:   make([]bool, m.Size()),
		levels: safety.Compute(m, make([]bool, m.Size())),
	}, nil
}

// AddFault marks c faulty, runs the disable cascade to the new
// fixpoint, and resweeps exactly the safety levels of the affected
// rows and columns. Adding a node twice or outside the mesh is an
// error; adding a node that is already disabled (but healthy) is
// allowed — it becomes faulty without further cascade.
func (t *Tracker) AddFault(c mesh.Coord) error {
	if !t.m.Contains(c) {
		return fmt.Errorf("dynamic: fault %v outside mesh %v", c, t.m)
	}
	i := t.m.Index(c)
	if t.faulty[i] {
		return fmt.Errorf("dynamic: node %v already faulty", c)
	}
	t.faulty[i] = true
	t.faults = append(t.faults, c)

	// Disable cascade from the new fault.
	var newlyDead []mesh.Coord
	var queue []mesh.Coord
	if !t.dead[i] {
		t.dead[i] = true
		newlyDead = append(newlyDead, c)
		queue = t.m.Neighbors(queue, c)
	}
	deadAt := func(n mesh.Coord) bool {
		return t.m.Contains(n) && t.dead[t.m.Index(n)]
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ui := t.m.Index(u)
		if t.dead[ui] {
			continue
		}
		badX := deadAt(mesh.Coord{X: u.X - 1, Y: u.Y}) || deadAt(mesh.Coord{X: u.X + 1, Y: u.Y})
		badY := deadAt(mesh.Coord{X: u.X, Y: u.Y - 1}) || deadAt(mesh.Coord{X: u.X, Y: u.Y + 1})
		if !badX || !badY {
			continue
		}
		t.dead[ui] = true
		newlyDead = append(newlyDead, u)
		queue = t.m.Neighbors(queue, u)
	}

	// Resweep only the rows and columns that gained dead nodes.
	rowSet := make(map[int]struct{}, len(newlyDead))
	colSet := make(map[int]struct{}, len(newlyDead))
	for _, n := range newlyDead {
		rowSet[n.Y] = struct{}{}
		colSet[n.X] = struct{}{}
	}
	rows := make([]int, 0, len(rowSet))
	for y := range rowSet {
		rows = append(rows, y)
	}
	cols := make([]int, 0, len(colSet))
	for x := range colSet {
		cols = append(cols, x)
	}
	t.levels.Update(t.dead, rows, cols)

	t.lastCascade = len(newlyDead)
	t.lastRows = len(rows)
	t.lastCols = len(cols)
	return nil
}

// LastUpdateCost reports how local the most recent AddFault was: the
// number of nodes added to fault regions and the rows/columns that
// resweeped.
func (t *Tracker) LastUpdateCost() (cascade, rows, cols int) {
	return t.lastCascade, t.lastRows, t.lastCols
}

// Faults returns a copy of the fault list in arrival order.
func (t *Tracker) Faults() []mesh.Coord {
	return append([]mesh.Coord(nil), t.faults...)
}

// FaultCount returns the current number of faulty nodes without
// copying the fault list.
func (t *Tracker) FaultCount() int {
	return len(t.faults)
}

// InRegion reports whether c currently belongs to a fault region.
func (t *Tracker) InRegion(c mesh.Coord) bool {
	return t.m.Contains(c) && t.dead[t.m.Index(c)]
}

// IsFaulty reports whether c itself is faulty (not merely disabled
// into a fault region).
func (t *Tracker) IsFaulty(c mesh.Coord) bool {
	return t.m.Contains(c) && t.faulty[t.m.Index(c)]
}

// Level returns the current extended safety level of c.
func (t *Tracker) Level(c mesh.Coord) safety.Level {
	return t.levels.At(c)
}

// Levels exposes the maintained safety grid (shared, do not mutate).
func (t *Tracker) Levels() *safety.Grid {
	return t.levels
}

// BlockedGrid returns a copy of the current fault-region grid.
func (t *Tracker) BlockedGrid() []bool {
	g := make([]bool, len(t.dead))
	copy(g, t.dead)
	return g
}

// FaultGrid returns a copy of the raw faulty-node grid (faults only,
// without the disable cascade), indexed by mesh.Index.
func (t *Tracker) FaultGrid() []bool {
	g := make([]bool, len(t.faulty))
	copy(g, t.faulty)
	return g
}

// Snapshot rebuilds the equivalent from-scratch structures (scenario
// and block set) for the current fault list; used to hand the current
// state to the batch APIs and by the equivalence tests.
func (t *Tracker) Snapshot() (*fault.Scenario, *fault.BlockSet, error) {
	sc, err := fault.NewScenario(t.m, t.faults)
	if err != nil {
		return nil, nil, err
	}
	return sc, fault.BuildBlocks(sc), nil
}

// RemoveFault repairs a faulty node. Disable labels are monotone in
// the fault set, so removal can only shrink the fault region the node
// belongs to: the tracker relabels just that connected component from
// its remaining faults and resweeps the rows and columns of every node
// whose membership changed. Other regions are untouched.
func (t *Tracker) RemoveFault(c mesh.Coord) error {
	if !t.m.Contains(c) {
		return fmt.Errorf("dynamic: node %v outside mesh %v", c, t.m)
	}
	i := t.m.Index(c)
	if !t.faulty[i] {
		return fmt.Errorf("dynamic: node %v is not faulty", c)
	}
	t.faulty[i] = false
	for fi, f := range t.faults {
		if f == c {
			t.faults = append(t.faults[:fi], t.faults[fi+1:]...)
			break
		}
	}

	// Collect the dead component containing c.
	comp := []mesh.Coord{c}
	seen := map[mesh.Coord]bool{c: true}
	var nbuf []mesh.Coord
	for head := 0; head < len(comp); head++ {
		nbuf = t.m.Neighbors(nbuf[:0], comp[head])
		for _, n := range nbuf {
			if !seen[n] && t.dead[t.m.Index(n)] {
				seen[n] = true
				comp = append(comp, n)
			}
		}
	}

	// Relabel the component from its remaining faults. Labels are
	// monotone in the fault set, so the new region is a subset of the
	// old component and nodes outside it cannot change.
	for _, n := range comp {
		t.dead[t.m.Index(n)] = false
	}
	var queue []mesh.Coord
	for _, n := range comp {
		ni := t.m.Index(n)
		if t.faulty[ni] {
			t.dead[ni] = true
			queue = t.m.Neighbors(queue, n)
		}
	}
	deadAt := func(n mesh.Coord) bool {
		return t.m.Contains(n) && t.dead[t.m.Index(n)]
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ui := t.m.Index(u)
		if t.dead[ui] {
			continue
		}
		badX := deadAt(mesh.Coord{X: u.X - 1, Y: u.Y}) || deadAt(mesh.Coord{X: u.X + 1, Y: u.Y})
		badY := deadAt(mesh.Coord{X: u.X, Y: u.Y - 1}) || deadAt(mesh.Coord{X: u.X, Y: u.Y + 1})
		if !badX || !badY {
			continue
		}
		t.dead[ui] = true
		queue = t.m.Neighbors(queue, u)
	}

	// Resweep the rows and columns of nodes whose membership changed.
	rowSet := make(map[int]struct{})
	colSet := make(map[int]struct{})
	changed := 0
	for _, n := range comp {
		// Everything in comp was dead before; count the now-free ones
		// and refresh all touched rows/columns (cheap and safe).
		if !t.dead[t.m.Index(n)] {
			changed++
		}
		rowSet[n.Y] = struct{}{}
		colSet[n.X] = struct{}{}
	}
	rows := make([]int, 0, len(rowSet))
	for y := range rowSet {
		rows = append(rows, y)
	}
	cols := make([]int, 0, len(colSet))
	for x := range colSet {
		cols = append(cols, x)
	}
	t.levels.Update(t.dead, rows, cols)

	t.lastCascade = changed
	t.lastRows = len(rows)
	t.lastCols = len(cols)
	return nil
}
