package dynamic

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(mesh.Mesh{}); err == nil {
		t.Error("empty mesh should fail")
	}
	if _, err := New(mesh.Mesh{Width: 4, Height: 4}); err != nil {
		t.Errorf("valid mesh rejected: %v", err)
	}
}

func TestAddFaultValidation(t *testing.T) {
	tr, err := New(mesh.Mesh{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AddFault(mesh.Coord{X: 6, Y: 0}); err == nil {
		t.Error("outside fault should fail")
	}
	if err := tr.AddFault(mesh.Coord{X: 2, Y: 2}); err != nil {
		t.Fatalf("AddFault: %v", err)
	}
	if err := tr.AddFault(mesh.Coord{X: 2, Y: 2}); err == nil {
		t.Error("duplicate fault should fail")
	}
	if len(tr.Faults()) != 1 {
		t.Errorf("Faults = %v", tr.Faults())
	}
}

func TestCascadeAndLevels(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	tr, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal pair merges into a 2x2 region incrementally.
	if err := tr.AddFault(mesh.Coord{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if cascade, rows, cols := tr.LastUpdateCost(); cascade != 1 || rows != 1 || cols != 1 {
		t.Errorf("first fault cost = (%d,%d,%d), want (1,1,1)", cascade, rows, cols)
	}
	if err := tr.AddFault(mesh.Coord{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	cascade, rows, cols := tr.LastUpdateCost()
	if cascade != 3 { // the new fault plus the two diagonal gap nodes
		t.Errorf("cascade = %d, want 3", cascade)
	}
	if rows != 2 || cols != 2 {
		t.Errorf("rows/cols = %d/%d, want 2/2", rows, cols)
	}
	for _, c := range []mesh.Coord{{X: 2, Y: 3}, {X: 3, Y: 2}} {
		if !tr.InRegion(c) {
			t.Errorf("gap node %v not in region", c)
		}
	}
	// Level at (0,2) now sees the block 2 hops east.
	if got := tr.Level(mesh.Coord{X: 0, Y: 2}).E; got != 2 {
		t.Errorf("E at (0,2) = %d, want 2", got)
	}
}

// TestIncrementalMatchesBatch is the defining property: after every
// single AddFault in a random arrival sequence, the incrementally
// maintained region grid and safety levels equal the from-scratch
// computation.
func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		w := 8 + rng.Intn(16)
		h := 8 + rng.Intn(16)
		m := mesh.Mesh{Width: w, Height: h}
		tr, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		nFaults := 1 + rng.Intn(m.Size()/6)
		seen := make(map[mesh.Coord]bool, nFaults)
		for f := 0; f < nFaults; f++ {
			c := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if seen[c] {
				continue
			}
			seen[c] = true
			if err := tr.AddFault(c); err != nil {
				t.Fatalf("AddFault(%v): %v", c, err)
			}

			_, bs, err := tr.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			batchGrid := bs.BlockedGrid()
			incGrid := tr.BlockedGrid()
			for i := range batchGrid {
				if batchGrid[i] != incGrid[i] {
					t.Fatalf("trial %d after %d faults: region grids differ at %v",
						trial, f+1, m.CoordOf(i))
				}
			}
			want := safety.Compute(m, batchGrid)
			for i := 0; i < m.Size(); i++ {
				c := m.CoordOf(i)
				if tr.Level(c) != want.At(c) {
					t.Fatalf("trial %d after %d faults: level at %v = %v, want %v",
						trial, f+1, c, tr.Level(c), want.At(c))
				}
			}
		}
	}
}

// TestUpdateLocality verifies the paper's maintenance claim: a new
// fault's update cost tracks its cascade, not the mesh size.
func TestUpdateLocality(t *testing.T) {
	m := mesh.Mesh{Width: 64, Height: 64}
	tr, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		c := mesh.Coord{X: rng.Intn(64), Y: rng.Intn(64)}
		if tr.InRegion(c) {
			continue
		}
		if err := tr.AddFault(c); err != nil {
			t.Fatal(err)
		}
		cascade, rows, cols := tr.LastUpdateCost()
		if rows > cascade || cols > cascade {
			t.Fatalf("update touched %d rows/%d cols for a %d-node cascade", rows, cols, cascade)
		}
		if cascade > 16 {
			t.Fatalf("suspiciously large cascade %d for scattered faults", cascade)
		}
	}
}

func TestRemoveFaultValidation(t *testing.T) {
	tr, err := New(mesh.Mesh{Width: 6, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveFault(mesh.Coord{X: 0, Y: 0}); err == nil {
		t.Error("removing a healthy node should fail")
	}
	if err := tr.RemoveFault(mesh.Coord{X: 9, Y: 0}); err == nil {
		t.Error("removing outside the mesh should fail")
	}
	if err := tr.AddFault(mesh.Coord{X: 2, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveFault(mesh.Coord{X: 2, Y: 2}); err != nil {
		t.Fatalf("RemoveFault: %v", err)
	}
	if tr.InRegion(mesh.Coord{X: 2, Y: 2}) {
		t.Error("repaired node still in region")
	}
	if len(tr.Faults()) != 0 {
		t.Errorf("faults = %v", tr.Faults())
	}
}

func TestRemoveFaultShrinksRegion(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	tr, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal pair forms a 2x2 block; removing one fault dissolves it.
	for _, c := range []mesh.Coord{{X: 2, Y: 2}, {X: 3, Y: 3}} {
		if err := tr.AddFault(c); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.InRegion(mesh.Coord{X: 2, Y: 3}) {
		t.Fatal("setup: gap node should be disabled")
	}
	if err := tr.RemoveFault(mesh.Coord{X: 3, Y: 3}); err != nil {
		t.Fatal(err)
	}
	for _, c := range []mesh.Coord{{X: 2, Y: 3}, {X: 3, Y: 2}, {X: 3, Y: 3}} {
		if tr.InRegion(c) {
			t.Errorf("node %v should be free after repair", c)
		}
	}
	if !tr.InRegion(mesh.Coord{X: 2, Y: 2}) {
		t.Error("remaining fault vanished")
	}
	if got := tr.Level(mesh.Coord{X: 0, Y: 2}).E; got != 2 {
		t.Errorf("E at (0,2) = %d, want 2", got)
	}
}

// TestAddRemoveMatchesBatch runs random interleaved add/remove
// sequences and checks the incremental state equals the from-scratch
// computation after every operation.
func TestAddRemoveMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		w := 8 + rng.Intn(12)
		h := 8 + rng.Intn(12)
		m := mesh.Mesh{Width: w, Height: h}
		tr, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		live := make(map[mesh.Coord]bool)
		for op := 0; op < 60; op++ {
			if len(live) > 0 && rng.Float64() < 0.35 {
				// Remove a random live fault.
				var victim mesh.Coord
				idx := rng.Intn(len(live))
				for c := range live {
					if idx == 0 {
						victim = c
						break
					}
					idx--
				}
				delete(live, victim)
				if err := tr.RemoveFault(victim); err != nil {
					t.Fatalf("RemoveFault(%v): %v", victim, err)
				}
			} else {
				c := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if live[c] {
					continue
				}
				live[c] = true
				if err := tr.AddFault(c); err != nil {
					t.Fatalf("AddFault(%v): %v", c, err)
				}
			}

			_, bs, err := tr.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			batch := bs.BlockedGrid()
			inc := tr.BlockedGrid()
			for i := range batch {
				if batch[i] != inc[i] {
					t.Fatalf("trial %d op %d: region grids differ at %v", trial, op, m.CoordOf(i))
				}
			}
			want := safety.Compute(m, batch)
			for i := 0; i < m.Size(); i++ {
				c := m.CoordOf(i)
				if tr.Level(c) != want.At(c) {
					t.Fatalf("trial %d op %d: level at %v = %v, want %v",
						trial, op, c, tr.Level(c), want.At(c))
				}
			}
		}
	}
}
