package reliability

import (
	"encoding/json"
	"runtime"
	"sync/atomic"
	"testing"

	"extmesh/internal/mesh"
)

func testConfig() Config {
	return Config{
		Width:         24,
		Height:        24,
		Points:        []Point{{K: 6}, {P: 0.02}},
		Trials:        48,
		PairsPerTrial: 8,
		Seed:          7,
		CheckEvery:    16,
	}
}

// TestSweepWorkerCountInvariant is the determinism acceptance test:
// the same seed must produce a byte-identical report at any worker
// count, including with early termination active.
func TestSweepWorkerCountInvariant(t *testing.T) {
	for _, early := range []bool{false, true} {
		cfg := testConfig()
		if early {
			cfg.Trials = 4096
			cfg.TargetHalfWidth = 0.08
			cfg.MinTrials = 16
		}
		var want []byte
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			cfg.Workers = workers
			rep, err := Sweep(cfg)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			got, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("early=%v workers=%d: report differs from workers=1:\n%s\nvs\n%s",
					early, workers, got, want)
			}
		}
	}
}

// TestSweepAgainstAnalytic is the Theorem 2 acceptance test: on three
// (n,k) configurations the Monte Carlo expected-affected-rows/cols
// estimates must contain the analytic prediction within their reported
// confidence intervals. The configurations keep k well below n so the
// theorem's geometric approximation bias stays well below the CI
// half-width at this trial count. (A 95% interval still misses ~5% of
// the time even unbiased; the pinned seed makes the run deterministic,
// and the chosen one passes with margin on all three configurations.)
func TestSweepAgainstAnalytic(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{32, 8}, {48, 12}, {64, 16}} {
		res, err := EstimatePoint(Config{
			Width:         tc.n,
			Height:        tc.n,
			Trials:        512,
			PairsPerTrial: 4,
			Seed:          2,
		}, Point{K: tc.k})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if res.Trials != 512 {
			t.Fatalf("n=%d k=%d: ran %d trials, want 512", tc.n, tc.k, res.Trials)
		}
		if !res.AffectedRows.Contains(res.AnalyticRows) {
			t.Errorf("n=%d k=%d: analytic rows %.3f outside MC interval [%.3f, %.3f] (mean %.3f)",
				tc.n, tc.k, res.AnalyticRows, res.AffectedRows.Lo, res.AffectedRows.Hi, res.AffectedRows.Mean)
		}
		if !res.AffectedCols.Contains(res.AnalyticCols) {
			t.Errorf("n=%d k=%d: analytic cols %.3f outside MC interval [%.3f, %.3f] (mean %.3f)",
				tc.n, tc.k, res.AnalyticCols, res.AffectedCols.Lo, res.AffectedCols.Hi, res.AffectedCols.Mean)
		}
	}
}

// TestTrialAllocationFree is the hot-path acceptance test: warm trials
// allocate nothing.
func TestTrialAllocationFree(t *testing.T) {
	cfg := testConfig()
	m := mesh.Mesh{Width: cfg.Width, Height: cfg.Height}
	w := newWorker(m)
	var acc pointAccum
	// Warm the arena and slices.
	for tr := uint64(0); tr < 4; tr++ {
		w.runTrial(&cfg, m, 0, cfg.Points[0], tr, &acc)
	}
	tr := uint64(4)
	for pi, pt := range cfg.Points {
		allocs := testing.AllocsPerRun(50, func() {
			w.runTrial(&cfg, m, pi, pt, tr, &acc)
			tr++
		})
		if allocs != 0 {
			t.Errorf("point %v: %.1f allocs per warm trial, want 0", pt, allocs)
		}
	}
}

// TestSweepFaultFree pins the degenerate point: with no faults every
// pair has a minimal path, is safe, and is assured, and no row or
// column is affected.
func TestSweepFaultFree(t *testing.T) {
	res, err := EstimatePoint(Config{
		Width: 16, Height: 16, Trials: 8, PairsPerTrial: 8, Seed: 3,
	}, Point{P: 0})
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]Estimate{
		"minimal": res.Minimal, "safe": res.Safe, "assured": res.Assured,
	} {
		if e.Fraction != 1 {
			t.Errorf("%s fraction = %v with no faults, want 1", name, e.Fraction)
		}
		if e.Samples != 64 {
			t.Errorf("%s samples = %d, want 64", name, e.Samples)
		}
	}
	if res.AffectedRows.Mean != 0 || res.AffectedCols.Mean != 0 {
		t.Errorf("affected rows/cols = %v/%v with no faults, want 0",
			res.AffectedRows.Mean, res.AffectedCols.Mean)
	}
	if res.MeanFaults != 0 {
		t.Errorf("mean faults = %v, want 0", res.MeanFaults)
	}
}

// TestSweepOrdering pins the safety-condition hierarchy: certified
// (safe or assured) pairs are a subset of pairs with a minimal path,
// and the base condition is no stronger than strategy 1.
func TestSweepOrdering(t *testing.T) {
	rep, err := Sweep(Config{
		Width: 32, Height: 32,
		Points:        []Point{{K: 8}, {K: 24}, {P: 0.05}},
		Trials:        64,
		PairsPerTrial: 8,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Points {
		if res.Safe.Successes > res.Assured.Successes {
			t.Errorf("%v: base condition certifies %d > strategy-1 %d pairs",
				res.Point, res.Safe.Successes, res.Assured.Successes)
		}
		if res.Assured.Successes > res.Minimal.Successes {
			t.Errorf("%v: assured %d exceeds existing minimal paths %d",
				res.Point, res.Assured.Successes, res.Minimal.Successes)
		}
		if res.Point.K > 0 && res.MeanFaults != float64(res.Point.K) {
			t.Errorf("%v: mean faults %v, want exactly %d", res.Point, res.MeanFaults, res.Point.K)
		}
		if res.Minimal.Lo > res.Minimal.Fraction || res.Minimal.Hi < res.Minimal.Fraction {
			t.Errorf("%v: interval [%v, %v] does not contain the estimate %v",
				res.Point, res.Minimal.Lo, res.Minimal.Hi, res.Minimal.Fraction)
		}
	}
}

// TestEarlyTermination checks that a reachable target half-width stops
// a point before the trial budget, deterministically, on a round
// boundary.
func TestEarlyTermination(t *testing.T) {
	var rounds int64
	cfg := Config{
		Width: 16, Height: 16,
		Points:          []Point{{K: 2}},
		Trials:          100000,
		PairsPerTrial:   8,
		Seed:            5,
		CheckEvery:      32,
		MinTrials:       32,
		TargetHalfWidth: 0.2,
		OnRound:         func(n int) { atomic.AddInt64(&rounds, int64(n)) },
	}
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Points[0].Trials
	if got >= cfg.Trials {
		t.Fatalf("ran the full %d-trial budget despite a loose target", got)
	}
	if got%32 != 0 {
		t.Errorf("stopped at %d trials, not a round boundary", got)
	}
	if int(atomic.LoadInt64(&rounds)) != got {
		t.Errorf("OnRound observed %d trials, report says %d", rounds, got)
	}
	if rep.Points[0].Minimal.HalfWidth() > cfg.TargetHalfWidth {
		t.Errorf("stopped with half-width %v above the %v target",
			rep.Points[0].Minimal.HalfWidth(), cfg.TargetHalfWidth)
	}
}

// TestSweepCancel checks that closing Done aborts between rounds.
func TestSweepCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	cfg := testConfig()
	cfg.Done = done
	if _, err := Sweep(cfg); err != ErrCanceled {
		t.Fatalf("Sweep with closed Done = %v, want ErrCanceled", err)
	}
}

// TestValidate covers the config guard rails.
func TestValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"tiny mesh":      func(c *Config) { c.Width = 1 },
		"no points":      func(c *Config) { c.Points = nil },
		"k too large":    func(c *Config) { c.Points = []Point{{K: c.Width*c.Height - 1}} },
		"negative k":     func(c *Config) { c.Points = []Point{{K: -1}} },
		"p too large":    func(c *Config) { c.Points = []Point{{P: 0.95}} },
		"no trials":      func(c *Config) { c.Trials = 0 },
		"no pairs":       func(c *Config) { c.PairsPerTrial = 0 },
		"negative width": func(c *Config) { c.TargetHalfWidth = -1 },
	} {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config accepted", name)
		}
		if _, err := Sweep(c); err == nil {
			t.Errorf("%s: sweep ran", name)
		}
	}
}

// TestEstimatePointMatchesSweep checks the convenience wrapper is the
// same computation as a one-point sweep.
func TestEstimatePointMatchesSweep(t *testing.T) {
	cfg := testConfig()
	pt := Point{K: 9}
	cfg.Points = []Point{pt}
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := EstimatePoint(testConfig(), pt)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep.Points[0])
	b, _ := json.Marshal(single)
	if string(a) != string(b) {
		t.Fatalf("EstimatePoint diverges from Sweep:\n%s\nvs\n%s", b, a)
	}
}

// TestCost pins the budget unit the serving plane caps against.
func TestCost(t *testing.T) {
	c := Config{Width: 10, Height: 20, Trials: 30, PairsPerTrial: 5, Points: []Point{{K: 1}, {K: 2}}}
	if got, want := c.Cost(), int64((10*20+5)*30*2); got != want {
		t.Fatalf("Cost = %d, want %d", got, want)
	}
}
