// Package reliability is the Monte Carlo survivability engine: it
// sweeps a grid of fault intensities (a probability p per node, or an
// exact fault count k), samples seeded random fault sets, classifies
// each trial with the fast routing kernels (fault-block construction,
// the bit-parallel existence sweep, the paper's safety conditions),
// and reports per-point survivability estimates with confidence
// intervals, cross-checked against the Theorem 2 analytic model.
//
// # Determinism contract
//
// A sweep is a pure function of its Config: the same seed produces a
// byte-identical Report at any worker count. Three mechanisms combine
// to give that:
//
//   - Randomness is never drawn from a stream owned by a worker. Every
//     trial derives its own sub-streams from (seed, point, trial index)
//     through inject.SubSeed, so workers are pure executors of trial
//     indices and resharding cannot change what a trial samples.
//   - Trial outcomes reduce into integer accumulators (counts, sums,
//     sums of squares) with atomic adds. Integer addition commutes, so
//     completion order cannot change a point's totals; floats are only
//     derived from the final integers.
//   - Trials run in fixed-size rounds with a barrier between rounds.
//     The early-termination check runs on round boundaries only, so
//     the number of trials executed is itself deterministic.
//
// # Hot path
//
// Each worker owns a sim.Arena plus small mark grids, all reused
// across trials, so warm trials are allocation-free (guarded by an
// AllocsPerRun test).
package reliability

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"extmesh/internal/analytic"
	"extmesh/internal/core"
	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/sim"
)

// ErrCanceled is returned by Sweep when Config.Done closes before the
// sweep finishes.
var ErrCanceled = errors.New("reliability: sweep canceled")

// Point is one fault intensity of a sweep: either an exact fault
// count K > 0, or (when K == 0) an independent per-node fault
// probability P.
type Point struct {
	P float64 `json:"p,omitempty"`
	K int     `json:"k,omitempty"`
}

// EffectiveK returns the expected fault count of the point on an
// s-node mesh: K itself, or P*s rounded for probability points. It is
// the k fed to the Theorem 2 cross-check.
func (pt Point) EffectiveK(size int) int {
	if pt.K > 0 {
		return pt.K
	}
	return int(pt.P*float64(size) + 0.5)
}

func (pt Point) String() string {
	if pt.K > 0 {
		return fmt.Sprintf("k=%d", pt.K)
	}
	return fmt.Sprintf("p=%g", pt.P)
}

// Config parameterizes one sweep.
type Config struct {
	Width  int `json:"width"`
	Height int `json:"height"`

	// Points is the grid of fault intensities to sweep.
	Points []Point `json:"points"`

	// Trials is the per-point trial budget. PairsPerTrial destinations
	// are classified against one sampled source per trial.
	Trials        int `json:"trials"`
	PairsPerTrial int `json:"pairs_per_trial"`

	Seed int64 `json:"seed"`

	// Workers caps the fan-out; 0 means GOMAXPROCS. The report is
	// byte-identical at any value.
	Workers int `json:"workers,omitempty"`

	// TargetHalfWidth, when positive, stops a point early once the
	// Wilson half-width of the minimal-path estimate falls to the
	// target (checked on round boundaries, after at least MinTrials
	// trials).
	TargetHalfWidth float64 `json:"target_half_width,omitempty"`
	MinTrials       int     `json:"min_trials,omitempty"`

	// CheckEvery is the round size in trials; 0 means 64.
	CheckEvery int `json:"check_every,omitempty"`

	// OnRound, when set, observes progress: it is called after each
	// completed round with the number of trials that round ran.
	OnRound func(trials int) `json:"-"`

	// Done, when set, cancels the sweep between rounds.
	Done <-chan struct{} `json:"-"`
}

// defaultCheckEvery is the round size when Config.CheckEvery is 0.
const defaultCheckEvery = 64

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Width < 2 || c.Height < 2 {
		return fmt.Errorf("reliability: mesh %dx%d too small", c.Width, c.Height)
	}
	if len(c.Points) == 0 {
		return fmt.Errorf("reliability: no sweep points")
	}
	size := c.Width * c.Height
	for _, pt := range c.Points {
		if pt.K < 0 || pt.K > size-2 {
			return fmt.Errorf("reliability: fault count %d out of range for %d nodes", pt.K, size)
		}
		if pt.K == 0 && (pt.P < 0 || pt.P > 0.9) {
			return fmt.Errorf("reliability: fault probability %g out of range [0, 0.9]", pt.P)
		}
	}
	if c.Trials <= 0 || c.PairsPerTrial <= 0 {
		return fmt.Errorf("reliability: trials and pairs per trial must be positive")
	}
	if c.Workers < 0 || c.TargetHalfWidth < 0 || c.MinTrials < 0 || c.CheckEvery < 0 {
		return fmt.Errorf("reliability: negative workers, target, min trials, or round size")
	}
	return nil
}

// Cost returns the sweep's work bound — total trials times the
// per-trial work (one mesh rebuild plus the pair classifications) —
// the unit the serving plane budgets against.
func (c Config) Cost() int64 {
	perTrial := int64(c.Width)*int64(c.Height) + int64(c.PairsPerTrial)
	return perTrial * int64(c.Trials) * int64(len(c.Points))
}

// Estimate is a proportion estimate with its 95% Wilson score
// interval.
type Estimate struct {
	Fraction  float64 `json:"fraction"`
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Successes int64   `json:"successes"`
	Samples   int64   `json:"samples"`
}

// HalfWidth returns half the confidence interval's width.
func (e Estimate) HalfWidth() float64 { return (e.Hi - e.Lo) / 2 }

// Contains reports whether v lies inside the interval.
func (e Estimate) Contains(v float64) bool { return v >= e.Lo && v <= e.Hi }

// MeanEstimate is a per-trial mean with its 95% normal interval.
type MeanEstimate struct {
	Mean    float64 `json:"mean"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Samples int64   `json:"samples"`
}

// HalfWidth returns half the confidence interval's width.
func (e MeanEstimate) HalfWidth() float64 { return (e.Hi - e.Lo) / 2 }

// Contains reports whether v lies inside the interval.
func (e MeanEstimate) Contains(v float64) bool { return v >= e.Lo && v <= e.Hi }

// PointResult is one sweep point's estimates.
type PointResult struct {
	Point  Point `json:"point"`
	Trials int   `json:"trials"`

	// MeanFaults is the average sampled fault count (equals Point.K
	// exactly for count points; estimates P*size for probability
	// points).
	MeanFaults float64 `json:"mean_faults"`

	// Minimal is the fraction of sampled pairs with a minimal path
	// (the exact existence DP); Safe the fraction certified by the
	// paper's base sufficient condition; Assured the fraction certified
	// minimal by strategy 1 (extensions 1+2).
	Minimal Estimate `json:"minimal"`
	Safe    Estimate `json:"safe"`
	Assured Estimate `json:"assured"`

	// AffectedRows/Cols estimate the expected number of rows/columns
	// containing at least one fault — the quantity of Theorem 2, whose
	// prediction for EffectiveK is in AnalyticRows/Cols.
	AffectedRows MeanEstimate `json:"affected_rows"`
	AffectedCols MeanEstimate `json:"affected_cols"`
	AnalyticRows float64      `json:"analytic_rows"`
	AnalyticCols float64      `json:"analytic_cols"`
}

// Report is the output of one sweep.
type Report struct {
	Width         int           `json:"width"`
	Height        int           `json:"height"`
	Seed          int64         `json:"seed"`
	Trials        int           `json:"trials"`
	PairsPerTrial int           `json:"pairs_per_trial"`
	Points        []PointResult `json:"points"`
}

// pointAccum collects one point's trial outcomes. All fields are
// integers updated with atomic adds, so the totals are independent of
// trial completion order.
type pointAccum struct {
	trials    int64
	faults    int64
	pairs     int64
	minimal   int64
	safe      int64
	assured   int64
	rows      int64
	rowsSq    int64
	cols      int64
	colsSq    int64
	srcFailed int64 // trials abandoned because no usable source exists
}

// Per-purpose sub-stream ids. Each sweep point pi draws trial faults
// from stream 2*pi+streamFaults and pairs from 2*pi+streamPairs of the
// sweep seed.
const (
	streamFaults uint64 = 1
	streamPairs  uint64 = 2
)

// worker is one goroutine's reusable trial state.
type worker struct {
	m      mesh.Mesh
	arena  *sim.Arena
	faults []mesh.Coord
	faulty []bool
	rowHit []bool
	colHit []bool
	rng    inject.Rand
}

func newWorker(m mesh.Mesh) *worker {
	return &worker{
		m:      m,
		arena:  sim.NewArena(),
		faults: make([]mesh.Coord, 0, m.Size()),
		faulty: make([]bool, m.Size()),
		rowHit: make([]bool, m.Height),
		colHit: make([]bool, m.Width),
	}
}

// strategy1 is the deterministic certification strategy evaluated per
// pair: extensions 1 and 2 at the paper's segment size. (Extension 3
// needs pivot sets, which would consume randomness; the serving and
// analytics planes use the deterministic strategy.)
var strategy1 = core.Strategy{UseExt1: true, UseExt2: true, SegSize: core.StrategySegSize}

// runTrial executes one Monte Carlo trial: sample the point's fault
// set from the trial's own sub-streams, rebuild the arena, classify
// PairsPerTrial destinations against one sampled source, and fold the
// outcome into acc. Warm calls are allocation-free.
func (w *worker) runTrial(cfg *Config, m mesh.Mesh, pi int, pt Point, trial uint64, acc *pointAccum) {
	// Sample the fault set. The undo lists (w.faults) keep the mark
	// grids clean in O(k) instead of O(n^2) per trial.
	w.rng.Seed(cfg.Seed, 2*uint64(pi)+streamFaults, trial)
	w.faults = w.faults[:0]
	size := m.Size()
	if pt.K > 0 {
		for len(w.faults) < pt.K {
			i := w.rng.Intn(size)
			if w.faulty[i] {
				continue
			}
			w.faulty[i] = true
			w.faults = append(w.faults, m.CoordOf(i))
		}
	} else {
		for i := 0; i < size; i++ {
			if w.rng.Float64() < pt.P {
				w.faulty[i] = true
				w.faults = append(w.faults, m.CoordOf(i))
			}
		}
	}

	// Theorem 2's quantity: rows/columns containing at least one
	// fault, computed on the raw fault set (not the fault blocks).
	rows, cols := 0, 0
	for _, f := range w.faults {
		if !w.rowHit[f.Y] {
			w.rowHit[f.Y] = true
			rows++
		}
		if !w.colHit[f.X] {
			w.colHit[f.X] = true
			cols++
		}
	}

	atomic.AddInt64(&acc.trials, 1)
	atomic.AddInt64(&acc.faults, int64(len(w.faults)))
	atomic.AddInt64(&acc.rows, int64(rows))
	atomic.AddInt64(&acc.rowsSq, int64(rows)*int64(rows))
	atomic.AddInt64(&acc.cols, int64(cols))
	atomic.AddInt64(&acc.colsSq, int64(cols)*int64(cols))

	// Sample the source from the pair sub-stream: uniform over
	// non-faulty nodes, by rejection with a deterministic attempt cap
	// (probability points can, rarely, fault out almost everything).
	w.rng.Seed(cfg.Seed, 2*uint64(pi)+streamPairs, trial)
	src, ok := mesh.Coord{}, false
	for attempt := 0; attempt < 4*size; attempt++ {
		i := w.rng.Intn(size)
		if !w.faulty[i] {
			src, ok = m.CoordOf(i), true
			break
		}
	}
	if !ok || len(w.faults) >= size-1 {
		atomic.AddInt64(&acc.srcFailed, 1)
		w.unmark()
		return
	}
	if err := w.arena.LoadFaults(m, src, w.faults); err != nil {
		// Unreachable for validated configs; surface as a dead trial
		// rather than a partial panic.
		atomic.AddInt64(&acc.srcFailed, 1)
		w.unmark()
		return
	}

	reach := w.arena.Reach()
	md := w.arena.BlockModel()
	var pairs, minimal, safe, assured int64
	for p := 0; p < cfg.PairsPerTrial; p++ {
		var d mesh.Coord
		found := false
		for attempt := 0; attempt < 4*size; attempt++ {
			i := w.rng.Intn(size)
			if d = m.CoordOf(i); !w.faulty[i] && d != src {
				found = true
				break
			}
		}
		if !found {
			break
		}
		pairs++
		if reach.CanReach(d) {
			minimal++
		}
		if md.Safe(src, d) {
			safe++
		}
		if md.Evaluate(src, d, strategy1).Verdict == core.Minimal {
			assured++
		}
	}
	atomic.AddInt64(&acc.pairs, pairs)
	atomic.AddInt64(&acc.minimal, minimal)
	atomic.AddInt64(&acc.safe, safe)
	atomic.AddInt64(&acc.assured, assured)
	w.unmark()
}

// unmark clears the trial's marks from the grids via the undo list.
func (w *worker) unmark() {
	for _, f := range w.faults {
		w.faulty[w.m.Index(f)] = false
		w.rowHit[f.Y] = false
		w.colHit[f.X] = false
	}
}

// Sweep runs the full Monte Carlo sweep and returns its report.
func Sweep(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := mesh.Mesh{Width: cfg.Width, Height: cfg.Height}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	checkEvery := cfg.CheckEvery
	if checkEvery <= 0 {
		checkEvery = defaultCheckEvery
	}
	minTrials := cfg.MinTrials
	if minTrials <= 0 {
		minTrials = checkEvery
	}

	rep := &Report{
		Width:         cfg.Width,
		Height:        cfg.Height,
		Seed:          cfg.Seed,
		Trials:        cfg.Trials,
		PairsPerTrial: cfg.PairsPerTrial,
		Points:        make([]PointResult, 0, len(cfg.Points)),
	}

	// Worker state persists across rounds and points, so the per-node
	// grids are allocated exactly once per sweep.
	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = newWorker(m)
	}

	for pi, pt := range cfg.Points {
		var acc pointAccum
		done := 0
		for done < cfg.Trials {
			if cfg.Done != nil {
				select {
				case <-cfg.Done:
					return nil, ErrCanceled
				default:
				}
			}
			round := checkEvery
			if left := cfg.Trials - done; round > left {
				round = left
			}
			// One round: workers drain trial indices [done, done+round)
			// from a shared cursor, then barrier. Which worker runs
			// which trial is irrelevant — a trial's draws depend only
			// on (seed, point, trial index).
			next := int64(done)
			end := int64(done + round)
			var wg sync.WaitGroup
			for _, w := range ws {
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					for {
						t := atomic.AddInt64(&next, 1) - 1
						if t >= end {
							return
						}
						w.runTrial(&cfg, m, pi, pt, uint64(t), &acc)
					}
				}(w)
			}
			wg.Wait()
			done += round
			if cfg.OnRound != nil {
				cfg.OnRound(round)
			}
			if cfg.TargetHalfWidth > 0 && done >= minTrials {
				min := wilson(atomic.LoadInt64(&acc.minimal), atomic.LoadInt64(&acc.pairs))
				if min.Samples > 0 && min.HalfWidth() <= cfg.TargetHalfWidth {
					break
				}
			}
		}
		rep.Points = append(rep.Points, finishPoint(m, pt, &acc))
	}
	return rep, nil
}

// EstimatePoint runs a single-point sweep and returns its result — the
// library convenience behind meshinfo's cross-check line.
func EstimatePoint(cfg Config, pt Point) (PointResult, error) {
	cfg.Points = []Point{pt}
	rep, err := Sweep(cfg)
	if err != nil {
		return PointResult{}, err
	}
	return rep.Points[0], nil
}

// finishPoint derives a point's float estimates from its integer
// accumulator.
func finishPoint(m mesh.Mesh, pt Point, acc *pointAccum) PointResult {
	trials := acc.trials
	res := PointResult{
		Point:        pt,
		Trials:       int(trials),
		Minimal:      wilson(acc.minimal, acc.pairs),
		Safe:         wilson(acc.safe, acc.pairs),
		Assured:      wilson(acc.assured, acc.pairs),
		AffectedRows: meanCI(acc.rows, acc.rowsSq, trials),
		AffectedCols: meanCI(acc.cols, acc.colsSq, trials),
	}
	if trials > 0 {
		res.MeanFaults = float64(acc.faults) / float64(trials)
	}
	k := pt.EffectiveK(m.Size())
	res.AnalyticRows = analytic.ExpectedAffected(m.Height, k)
	res.AnalyticCols = analytic.ExpectedAffected(m.Width, k)
	return res
}

// z95 is the two-sided 95% normal quantile used by both intervals.
const z95 = 1.959963984540054

// wilson returns the Wilson score interval of succ successes in n
// Bernoulli samples at 95% confidence.
func wilson(succ, n int64) Estimate {
	e := Estimate{Successes: succ, Samples: n}
	if n <= 0 {
		return e
	}
	p := float64(succ) / float64(n)
	e.Fraction = p
	nf := float64(n)
	z2 := z95 * z95
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z95 / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	e.Lo = math.Max(0, center-half)
	e.Hi = math.Min(1, center+half)
	return e
}

// meanCI returns the normal 95% interval of a per-trial mean from its
// integer sum and sum of squares.
func meanCI(sum, sumSq, n int64) MeanEstimate {
	e := MeanEstimate{Samples: n}
	if n <= 0 {
		return e
	}
	nf := float64(n)
	mean := float64(sum) / nf
	e.Mean = mean
	if n > 1 {
		variance := (float64(sumSq) - nf*mean*mean) / (nf - 1)
		if variance < 0 {
			variance = 0
		}
		half := z95 * math.Sqrt(variance/nf)
		e.Lo = mean - half
		e.Hi = mean + half
	} else {
		e.Lo, e.Hi = mean, mean
	}
	return e
}
