package inject

import (
	"reflect"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

func testMesh(t *testing.T) mesh.Mesh {
	t.Helper()
	return mesh.Mesh{Width: 16, Height: 16}
}

func TestScheduleValidate(t *testing.T) {
	m := testMesh(t)
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", nil, true},
		{"sorted", Schedule{{Cycle: 1, Node: mesh.Coord{X: 2, Y: 3}, Op: Fail}, {Cycle: 5, Node: mesh.Coord{X: 2, Y: 3}, Op: Recover}}, true},
		{"bad_op", Schedule{{Cycle: 1, Node: mesh.Coord{X: 2, Y: 3}, Op: 0}}, false},
		{"negative_cycle", Schedule{{Cycle: -1, Node: mesh.Coord{X: 2, Y: 3}, Op: Fail}}, false},
		{"out_of_order", Schedule{{Cycle: 5, Node: mesh.Coord{X: 2, Y: 3}, Op: Fail}, {Cycle: 1, Node: mesh.Coord{X: 4, Y: 4}, Op: Fail}}, false},
		{"outside_mesh", Schedule{{Cycle: 1, Node: mesh.Coord{X: 99, Y: 3}, Op: Fail}}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(m); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	m := testMesh(t)
	a, err := Random(m, 5000, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(m, 5000, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	if err := a.Validate(m); err != nil {
		t.Errorf("generated schedule invalid: %v", err)
	}
	// Nodes are distinct (permanent faults never repeat) and the
	// generator stops at half the mesh.
	seen := map[mesh.Coord]bool{}
	for _, e := range a {
		if e.Op != Fail {
			t.Fatalf("random schedule contains %v", e)
		}
		if seen[e.Node] {
			t.Fatalf("node %v failed twice", e.Node)
		}
		seen[e.Node] = true
	}
	if len(a) > m.Size()/2+1 {
		t.Errorf("generator failed %d nodes, want at most half of %d", len(a), m.Size())
	}
	if zero, err := Random(m, 1000, 0, 1); err != nil || len(zero) != 0 {
		t.Errorf("rate 0 gave %d events, err %v", len(zero), err)
	}
	if _, err := Random(m, 1000, 1.5, 1); err == nil {
		t.Error("rate above 1 should fail")
	}
	if _, err := Random(m, 0, 0.1, 1); err == nil {
		t.Error("zero cycles should fail")
	}
}

func TestBurstsClustered(t *testing.T) {
	m := testMesh(t)
	s, err := Bursts(m, 200, 3, 6, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(s) == 0 || len(s) > 18 {
		t.Fatalf("3 bursts of up to 6 gave %d events", len(s))
	}
	// Events at the same cycle form a spatial cluster: max pairwise
	// Chebyshev distance within a burst is bounded by 2*spread.
	byCycle := map[int][]mesh.Coord{}
	seen := map[mesh.Coord]bool{}
	for _, e := range s {
		if seen[e.Node] {
			t.Fatalf("node %v failed twice", e.Node)
		}
		seen[e.Node] = true
		byCycle[e.Cycle] = append(byCycle[e.Cycle], e.Node)
	}
	cheb := func(a, b mesh.Coord) int {
		dx, dy := a.X-b.X, a.Y-b.Y
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return max(dx, dy)
	}
	for c, nodes := range byCycle {
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				if d := cheb(nodes[i], nodes[j]); d > 4 {
					t.Errorf("burst at cycle %d spans Chebyshev distance %d > 2*spread", c, d)
				}
			}
		}
	}
}

func TestTransientPairsFailWithRecover(t *testing.T) {
	m := testMesh(t)
	s, err := Transient(m, 400, 0.3, 25, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(m); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	fails, recovers := 0, 0
	pending := map[mesh.Coord]int{} // node -> fail cycle
	for _, e := range s {
		switch e.Op {
		case Fail:
			fails++
			pending[e.Node] = e.Cycle
		case Recover:
			recovers++
			fc, ok := pending[e.Node]
			if !ok {
				t.Fatalf("recover of %v without a preceding fail", e.Node)
			}
			if e.Cycle != fc+25 {
				t.Errorf("node %v recovered after %d cycles, want 25", e.Node, e.Cycle-fc)
			}
			delete(pending, e.Node)
		}
	}
	if fails == 0 || fails != recovers {
		t.Errorf("got %d fails, %d recovers; want equal and nonzero", fails, recovers)
	}
	if _, err := Transient(m, 400, 0.1, 0, 1); err == nil {
		t.Error("non-positive repair delay should fail")
	}
}

func TestParse(t *testing.T) {
	m := testMesh(t)
	for _, spec := range []string{"", "none"} {
		s, err := Parse(m, 100, 1, spec)
		if err != nil || len(s) != 0 {
			t.Errorf("Parse(%q) = %v, %v; want empty", spec, s, err)
		}
	}
	if s, err := Parse(m, 1000, 3, "random:rate=0.5"); err != nil || len(s) == 0 {
		t.Errorf("random spec: %d events, err %v", len(s), err)
	}
	if s, err := Parse(m, 200, 3, "bursts:count=2,size=4,spread=1"); err != nil || len(s) == 0 {
		t.Errorf("bursts spec: %d events, err %v", len(s), err)
	}
	if s, err := Parse(m, 400, 3, "transient:rate=0.2,repair=10"); err != nil || len(s) == 0 {
		t.Errorf("transient spec: %d events, err %v", len(s), err)
	}
	s, err := Parse(m, 100, 1, "recover@50:3,4; fail@10:3,4")
	if err != nil {
		t.Fatalf("explicit events: %v", err)
	}
	want := Schedule{
		{Cycle: 10, Node: mesh.Coord{X: 3, Y: 4}, Op: Fail},
		{Cycle: 50, Node: mesh.Coord{X: 3, Y: 4}, Op: Recover},
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("explicit events = %v, want %v", s, want)
	}
	if got := s[0].String(); got != "fail@10:3,4" {
		t.Errorf("Event.String = %q", got)
	}
	for _, bad := range []string{
		"random",                // missing required rate
		"random:rate=abc",       // unparsable
		"random:rate=0.1,foo=1", // unknown argument
		"bursts:count=-1",       // invalid shape
		"transient:rate=0.1,repair=-5",
		"warp:rate=0.1",  // unknown kind
		"fail@abc:1,2",   // bad cycle
		"fail@10:99,2",   // outside mesh
		"explode@10:1,2", // bad op
		"fail@10:1",      // bad node
	} {
		if _, err := Parse(m, 100, 1, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestRuntimeMatchesBatch replays a generated schedule step by step and
// checks after every change that the incrementally maintained fault
// regions and safety levels match a from-scratch rebuild of the same
// fault set.
func TestRuntimeMatchesBatch(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	sched, err := Transient(m, 300, 0.2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule, pick another seed")
	}
	initial := []mesh.Coord{{X: 2, Y: 2}, {X: 2, Y: 3}}
	rt, err := NewRuntime(m, initial, sched)
	if err != nil {
		t.Fatal(err)
	}
	check := func(cycle int) {
		t.Helper()
		sc, err := fault.NewScenario(m, rt.Faults())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		wantBlocked := fault.BuildBlocks(sc).BlockedGrid()
		gotBlocked := rt.Blocked()
		if !reflect.DeepEqual(gotBlocked, wantBlocked) {
			t.Fatalf("cycle %d: blocked grid diverged from batch rebuild", cycle)
		}
		wantLevels := safety.Compute(m, wantBlocked)
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if got, want := rt.Levels().At(c), wantLevels.At(c); got != want {
				t.Fatalf("cycle %d: level at %v = %v, want %v", cycle, c, got, want)
			}
		}
	}
	check(-1)
	for cycle := 0; cycle < 330 && rt.Pending() > 0; cycle++ {
		applied, err := rt.Step(cycle)
		if err != nil {
			t.Fatalf("Step(%d): %v", cycle, err)
		}
		if applied > 0 {
			check(cycle)
		}
	}
	if rt.Pending() != 0 {
		t.Fatalf("%d events never fired", rt.Pending())
	}
	applied, skipped, added, repaired := rt.Counts()
	if applied+skipped != len(sched) {
		t.Errorf("applied %d + skipped %d != %d scheduled", applied, skipped, len(sched))
	}
	if added == 0 || repaired == 0 {
		t.Errorf("transient schedule applied %d fails, %d recovers; want both nonzero", added, repaired)
	}
}

// TestRuntimeSkipsInapplicable checks that hand-written events which
// cannot apply (failing a failed node, recovering a healthy one) are
// counted, not fatal.
func TestRuntimeSkipsInapplicable(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	n := mesh.Coord{X: 3, Y: 3}
	sched := Schedule{
		{Cycle: 0, Node: n, Op: Fail},
		{Cycle: 1, Node: n, Op: Fail}, // already faulty: skipped
		{Cycle: 2, Node: n, Op: Recover},
		{Cycle: 3, Node: n, Op: Recover}, // healthy again: skipped
	}
	rt, err := NewRuntime(m, nil, sched)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 4; c++ {
		a, err := rt.Step(c)
		if err != nil {
			t.Fatalf("Step(%d): %v", c, err)
		}
		total += a
	}
	applied, skipped, added, repaired := rt.Counts()
	if total != 2 || applied != 2 || skipped != 2 || added != 1 || repaired != 1 {
		t.Errorf("counts = applied %d skipped %d added %d repaired %d (total %d)", applied, skipped, added, repaired, total)
	}
	if len(rt.Faults()) != 0 || rt.InRegion(n) {
		t.Error("node should be healthy after the recover")
	}
}

func TestNewRuntimeRejectsBadInput(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	if _, err := NewRuntime(m, []mesh.Coord{{X: 99, Y: 0}}, nil); err == nil {
		t.Error("initial fault outside mesh should fail")
	}
	if _, err := NewRuntime(m, nil, Schedule{{Cycle: 0, Node: mesh.Coord{X: 99, Y: 0}, Op: Fail}}); err == nil {
		t.Error("schedule outside mesh should fail")
	}
}
