// Package inject generates and applies deterministic online fault
// schedules: the mid-run fault-arrival layer of the load simulators.
// A Schedule is a seeded, reproducible list of fail/recover events in
// simulation-cycle order — random arrivals at a configurable rate,
// clustered bursts, or transient faults that recover after a repair
// delay — and a Runtime replays it on top of the incremental
// dynamic.Tracker, so fault regions and extended safety levels are
// maintained with the paper's localized updates ("only those affected
// nodes update their information") instead of full recomputation.
package inject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"extmesh/internal/mesh"
)

// Op is the kind of a fault event.
type Op int

// The two event kinds: a node failing and a node being repaired.
const (
	Fail Op = iota + 1
	Recover
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case Fail:
		return "fail"
	case Recover:
		return "recover"
	default:
		return "invalid"
	}
}

// Event is one scheduled fault-state change: at the start of Cycle,
// Node fails or recovers.
type Event struct {
	Cycle int
	Node  mesh.Coord
	Op    Op
}

// String renders the event in the Parse input syntax.
func (e Event) String() string {
	return fmt.Sprintf("%s@%d:%d,%d", e.Op, e.Cycle, e.Node.X, e.Node.Y)
}

// Schedule is a list of fault events ordered by cycle. The zero value
// is the empty schedule (a static run).
type Schedule []Event

// Validate checks that the schedule is replayable on mesh m: known
// operations, non-negative cycles in non-decreasing order, and every
// node inside the mesh.
func (s Schedule) Validate(m mesh.Mesh) error {
	last := 0
	for i, e := range s {
		if e.Op != Fail && e.Op != Recover {
			return fmt.Errorf("inject: event %d has invalid op %d", i, e.Op)
		}
		if e.Cycle < 0 {
			return fmt.Errorf("inject: event %d at negative cycle %d", i, e.Cycle)
		}
		if e.Cycle < last {
			return fmt.Errorf("inject: event %d (%v) out of cycle order", i, e)
		}
		if !m.Contains(e.Node) {
			return fmt.Errorf("inject: event %d node %v outside mesh %v", i, e.Node, m)
		}
		last = e.Cycle
	}
	return nil
}

// maxFailedFraction caps how much of the mesh the generators will
// fail: random arrival streams stop once half the nodes are down, so
// a long run degrades instead of annihilating the network.
const maxFailedFraction = 2

// Random returns a schedule of permanent fault arrivals: each cycle
// one new uniformly random healthy node fails with probability rate.
// The schedule is fully determined by the seed.
func Random(m mesh.Mesh, cycles int, rate float64, seed int64) (Schedule, error) {
	if err := checkRate(m, cycles, rate); err != nil {
		return nil, err
	}
	rng := subRand(seed, streamRandom)
	alive := make([]int, m.Size())
	for i := range alive {
		alive[i] = i
	}
	var s Schedule
	for c := 0; c < cycles && len(alive) > m.Size()/maxFailedFraction; c++ {
		if rng.Float64() >= rate {
			continue
		}
		k := rng.Intn(len(alive))
		idx := alive[k]
		alive[k] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		s = append(s, Event{Cycle: c, Node: m.CoordOf(idx), Op: Fail})
	}
	return s, nil
}

// Bursts returns a schedule of clustered fault bursts: at each of
// `bursts` random cycles, up to `size` distinct nodes within Chebyshev
// distance `spread` of a random center fail together — the spatially
// correlated failure mode (a dead power domain, a cracked region) that
// uniform arrival streams cannot model.
func Bursts(m mesh.Mesh, cycles, bursts, size, spread int, seed int64) (Schedule, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("inject: bursts need a positive cycle count, got %d", cycles)
	}
	if bursts <= 0 || size <= 0 || spread < 0 {
		return nil, fmt.Errorf("inject: invalid burst shape count=%d size=%d spread=%d", bursts, size, spread)
	}
	rng := subRand(seed, streamBursts)
	when := make([]int, bursts)
	for i := range when {
		when[i] = rng.Intn(cycles)
	}
	sort.Ints(when)
	failed := make([]bool, m.Size())
	down := 0
	var s Schedule
	for _, c := range when {
		if down > m.Size()/maxFailedFraction {
			break
		}
		center := m.CoordOf(rng.Intn(m.Size()))
		var box []int
		for y := center.Y - spread; y <= center.Y+spread; y++ {
			for x := center.X - spread; x <= center.X+spread; x++ {
				n := mesh.Coord{X: x, Y: y}
				if m.Contains(n) && !failed[m.Index(n)] {
					box = append(box, m.Index(n))
				}
			}
		}
		perm := rng.Perm(len(box))
		for i := 0; i < size && i < len(box); i++ {
			idx := box[perm[i]]
			failed[idx] = true
			down++
			s = append(s, Event{Cycle: c, Node: m.CoordOf(idx), Op: Fail})
		}
	}
	return s, nil
}

// Transient returns a schedule of transient faults: arrivals like
// Random, but every failed node recovers `repair` cycles later (and
// may fail again afterwards), modeling soft errors and reconfiguration
// windows rather than permanent attrition.
func Transient(m mesh.Mesh, cycles int, rate float64, repair int, seed int64) (Schedule, error) {
	if err := checkRate(m, cycles, rate); err != nil {
		return nil, err
	}
	if repair <= 0 {
		return nil, fmt.Errorf("inject: repair delay must be positive, got %d", repair)
	}
	rng := subRand(seed, streamTransient)
	downUntil := make([]int, m.Size())
	var s Schedule
	for c := 0; c < cycles; c++ {
		if rng.Float64() >= rate {
			continue
		}
		picked := -1
		for try := 0; try < 64; try++ {
			i := rng.Intn(m.Size())
			if downUntil[i] <= c {
				picked = i
				break
			}
		}
		if picked < 0 {
			continue // mesh saturated with concurrent transients
		}
		downUntil[picked] = c + repair
		co := m.CoordOf(picked)
		s = append(s,
			Event{Cycle: c, Node: co, Op: Fail},
			Event{Cycle: c + repair, Node: co, Op: Recover})
	}
	// Stable: a recover scheduled earlier stays ahead of a same-cycle
	// re-fail of the same node.
	sort.SliceStable(s, func(i, j int) bool { return s[i].Cycle < s[j].Cycle })
	return s, nil
}

func checkRate(m mesh.Mesh, cycles int, rate float64) error {
	if m.Size() == 0 {
		return fmt.Errorf("inject: empty mesh")
	}
	if cycles <= 0 {
		return fmt.Errorf("inject: schedule needs a positive cycle count, got %d", cycles)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("inject: fault rate %v outside [0,1]", rate)
	}
	return nil
}

// Parse builds a schedule from a textual spec, the CLI surface of the
// generators. Accepted forms:
//
//	""                                  no events (static run)
//	"none"                              no events (static run)
//	"random:rate=0.01"                  Random arrivals
//	"bursts:count=3,size=8,spread=2"    clustered Bursts
//	"transient:rate=0.01,repair=50"     Transient faults with recovery
//	"fail@10:3,4;recover@50:3,4"        explicit event list
//
// Generated specs run over [0, cycles) with the given seed; explicit
// event lists are used verbatim (sorted by cycle).
func Parse(m mesh.Mesh, cycles int, seed int64, spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	if strings.Contains(spec, "@") {
		return parseEvents(m, spec)
	}
	kind, argstr, _ := strings.Cut(spec, ":")
	args, err := parseArgs(argstr)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "random":
		rate, err := floatArg(args, "rate", -1)
		if err != nil {
			return nil, err
		}
		if err := noExtraArgs(args, "rate"); err != nil {
			return nil, err
		}
		return Random(m, cycles, rate, seed)
	case "bursts":
		count, err1 := intArg(args, "count", 2)
		size, err2 := intArg(args, "size", 6)
		spread, err3 := intArg(args, "spread", 2)
		if err := firstErr(err1, err2, err3, noExtraArgs(args, "count", "size", "spread")); err != nil {
			return nil, err
		}
		return Bursts(m, cycles, count, size, spread, seed)
	case "transient":
		rate, err1 := floatArg(args, "rate", -1)
		repair, err2 := intArg(args, "repair", 50)
		if err := firstErr(err1, err2, noExtraArgs(args, "rate", "repair")); err != nil {
			return nil, err
		}
		return Transient(m, cycles, rate, repair, seed)
	default:
		return nil, fmt.Errorf("inject: unknown schedule kind %q (want random, bursts, transient, or an explicit fail@/recover@ list)", kind)
	}
}

func parseEvents(m mesh.Mesh, spec string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opStr, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("inject: bad event %q (want op@cycle:x,y)", part)
		}
		var op Op
		switch opStr {
		case "fail":
			op = Fail
		case "recover":
			op = Recover
		default:
			return nil, fmt.Errorf("inject: bad event op %q (want fail or recover)", opStr)
		}
		cycStr, coordStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("inject: bad event %q (want op@cycle:x,y)", part)
		}
		cycle, err := strconv.Atoi(cycStr)
		if err != nil {
			return nil, fmt.Errorf("inject: bad event cycle %q: %v", cycStr, err)
		}
		xs, ys, ok := strings.Cut(coordStr, ",")
		if !ok {
			return nil, fmt.Errorf("inject: bad event node %q (want x,y)", coordStr)
		}
		x, err1 := strconv.Atoi(strings.TrimSpace(xs))
		y, err2 := strconv.Atoi(strings.TrimSpace(ys))
		if err := firstErr(err1, err2); err != nil {
			return nil, fmt.Errorf("inject: bad event node %q: %v", coordStr, err)
		}
		s = append(s, Event{Cycle: cycle, Node: mesh.Coord{X: x, Y: y}, Op: op})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].Cycle < s[j].Cycle })
	if err := s.Validate(m); err != nil {
		return nil, err
	}
	return s, nil
}

func parseArgs(s string) (map[string]string, error) {
	args := make(map[string]string)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("inject: bad schedule argument %q (want key=value)", kv)
		}
		args[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return args, nil
}

// floatArg reads a float argument; def < 0 marks it required.
func floatArg(args map[string]string, key string, def float64) (float64, error) {
	v, ok := args[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("inject: schedule argument %q is required", key)
		}
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("inject: bad %s=%q: %v", key, v, err)
	}
	return f, nil
}

func intArg(args map[string]string, key string, def int) (int, error) {
	v, ok := args[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("inject: bad %s=%q: %v", key, v, err)
	}
	return n, nil
}

func noExtraArgs(args map[string]string, known ...string) error {
	for k := range args {
		found := false
		for _, want := range known {
			if k == want {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("inject: unknown schedule argument %q (known: %s)", k, strings.Join(known, ", "))
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
