package inject

import "math/rand"

// This file is the deterministic sub-stream splitter shared by the
// schedule generators and the reliability sweep engine. Both consumers
// fan work across goroutines but must stay bit-identical at any worker
// count, so randomness is never drawn from a stream owned by a worker:
// every task (a schedule kind, a Monte Carlo trial) derives its own
// sub-stream from (base seed, stream id, task index), and workers are
// pure executors of task indices. Resharding the same indices across a
// different number of workers replays exactly the same draws.

// mix64 is the splitmix64 finalizer: an invertible avalanche of all 64
// bits, the standard way to turn structured counters into independent-
// looking seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// golden is the splitmix64 stream increment (2^64 / phi), chosen so
// consecutive counters land far apart after mixing.
const golden = 0x9e3779b97f4a7c15

// SubSeed derives the seed of the (stream, index) sub-stream of seed.
// Distinct (stream, index) pairs give decorrelated sub-streams; the
// same triple always gives the same value, independent of which worker
// asks for it or in what order.
func SubSeed(seed int64, stream, index uint64) int64 {
	z := mix64(uint64(seed) + golden*(stream+1))
	return int64(mix64(z + golden*index))
}

// Stream ids of the schedule generators. Each generator kind draws
// from its own sub-stream of the user's seed, so "random" and
// "transient" schedules built from one seed are decorrelated rather
// than byte-identical prefixes of each other.
const (
	streamRandom uint64 = iota + 1
	streamBursts
	streamTransient
)

// subRand returns a math/rand generator positioned at the (stream, 0)
// sub-stream of seed — the schedule generators' entry point.
func subRand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(seed, stream, 0)))
}

// Rand is a small allocation-free PRNG over one sub-stream: splitmix64
// advanced by a fixed increment. Seed repositions the generator in
// place, so a long-lived worker re-seeds per task without allocating —
// the property the reliability engine's 0-allocs-per-trial hot loop
// needs (math/rand.New allocates per source). The zero value is the
// (0,0,0) sub-stream; call Seed before use.
type Rand struct {
	state uint64
}

// Seed positions the generator at the (stream, index) sub-stream of
// seed. Draw sequences after equal Seed calls are identical.
func (r *Rand) Seed(seed int64, stream, index uint64) {
	r.state = uint64(SubSeed(seed, stream, index))
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. Like
// math/rand it discards draws that would bias the modulus, so the
// number of draws consumed depends only on the random sequence itself.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("inject: Intn with non-positive n")
	}
	max := uint64(n)
	// Rejection zone: the largest multiple of n that fits in 64 bits.
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}
