package inject

import (
	"fmt"

	"extmesh/internal/dynamic"
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

// Runtime replays a Schedule over the incrementally maintained fault
// state of a dynamic.Tracker. The simulators call Step once per cycle;
// when events applied, they read the updated fault-region grid and
// safety levels back out. A Runtime is not safe for concurrent use.
type Runtime struct {
	m     mesh.Mesh
	tr    *dynamic.Tracker
	sched Schedule
	next  int

	applied  int
	skipped  int
	added    int
	repaired int
}

// NewRuntime builds a runtime over mesh m seeded with the initial
// (pre-run) fault list, ready to replay sched.
func NewRuntime(m mesh.Mesh, initial []mesh.Coord, sched Schedule) (*Runtime, error) {
	if err := sched.Validate(m); err != nil {
		return nil, err
	}
	tr, err := dynamic.New(m)
	if err != nil {
		return nil, err
	}
	for _, c := range initial {
		if err := tr.AddFault(c); err != nil {
			return nil, fmt.Errorf("inject: initial fault: %w", err)
		}
	}
	return &Runtime{m: m, tr: tr, sched: sched}, nil
}

// Step applies every event scheduled at or before cycle and reports
// how many changed the fault state. Events that cannot apply — failing
// an already-faulty node, recovering a healthy one — are skipped and
// counted rather than fatal: generated schedules avoid them, but
// hand-written event lists need not.
func (r *Runtime) Step(cycle int) (applied int, err error) {
	for r.next < len(r.sched) && r.sched[r.next].Cycle <= cycle {
		ev := r.sched[r.next]
		r.next++
		switch ev.Op {
		case Fail:
			if r.tr.IsFaulty(ev.Node) {
				r.skipped++
				continue
			}
			if err := r.tr.AddFault(ev.Node); err != nil {
				return applied, err
			}
			r.added++
		case Recover:
			if !r.tr.IsFaulty(ev.Node) {
				r.skipped++
				continue
			}
			if err := r.tr.RemoveFault(ev.Node); err != nil {
				return applied, err
			}
			r.repaired++
		}
		applied++
	}
	r.applied += applied
	return applied, nil
}

// Blocked returns a copy of the current fault-region grid (faulty and
// disabled nodes), indexed by mesh.Index.
func (r *Runtime) Blocked() []bool {
	return r.tr.BlockedGrid()
}

// Levels exposes the incrementally maintained extended safety levels
// (shared with the tracker; do not mutate).
func (r *Runtime) Levels() *safety.Grid {
	return r.tr.Levels()
}

// InRegion reports whether c currently belongs to a fault region.
func (r *Runtime) InRegion(c mesh.Coord) bool {
	return r.tr.InRegion(c)
}

// Faults returns the current fault list in arrival order.
func (r *Runtime) Faults() []mesh.Coord {
	return r.tr.Faults()
}

// Counts reports lifetime totals: events applied, events skipped as
// inapplicable, nodes failed and nodes repaired.
func (r *Runtime) Counts() (applied, skipped, added, repaired int) {
	return r.applied, r.skipped, r.added, r.repaired
}

// Pending reports how many scheduled events have not yet fired.
func (r *Runtime) Pending() int {
	return len(r.sched) - r.next
}
