package inject

import (
	"reflect"
	"sync"
	"testing"

	"extmesh/internal/mesh"
)

// TestSubSeedDecorrelated checks the basic splitter contract: equal
// triples agree, and perturbing any component changes the sub-seed.
func TestSubSeedDecorrelated(t *testing.T) {
	if SubSeed(7, 1, 2) != SubSeed(7, 1, 2) {
		t.Fatal("SubSeed is not a pure function")
	}
	base := SubSeed(7, 1, 2)
	for name, got := range map[string]int64{
		"seed":   SubSeed(8, 1, 2),
		"stream": SubSeed(7, 2, 2),
		"index":  SubSeed(7, 1, 3),
	} {
		if got == base {
			t.Errorf("changing %s left the sub-seed unchanged", name)
		}
	}
	// Consecutive indices must not produce near-identical generators:
	// the first draws of neighboring trials should all differ.
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		var r Rand
		r.Seed(1, 1, i)
		v := r.Uint64()
		if seen[v] {
			t.Fatalf("index %d repeats another index's first draw", i)
		}
		seen[v] = true
	}
}

// TestRandSeedRepositions checks that Seed fully resets the generator
// in place: re-seeding replays the same sequence.
func TestRandSeedRepositions(t *testing.T) {
	var r Rand
	r.Seed(42, 3, 9)
	first := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Seed(42, 3, 9)
	second := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-seeded sequence differs: %v vs %v", first, second)
	}
}

// TestRandIntnBounds checks range and rough uniformity of Intn.
func TestRandIntnBounds(t *testing.T) {
	var r Rand
	r.Seed(5, 1, 0)
	counts := make([]int, 7)
	const draws = 70000
	for i := 0; i < draws; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < draws/7-draws/70 || c > draws/7+draws/70 {
			t.Errorf("Intn(7): value %d drawn %d times, want ~%d", v, c, draws/7)
		}
	}
}

// sampleTrialFaults draws the fault set of one Monte Carlo trial the
// way the reliability engine does: a per-trial sub-stream, k distinct
// uniform nodes.
func sampleTrialFaults(m mesh.Mesh, seed int64, trial uint64, k int) []mesh.Coord {
	var r Rand
	r.Seed(seed, 100, trial)
	taken := make(map[int]bool, k)
	out := make([]mesh.Coord, 0, k)
	for len(out) < k {
		i := r.Intn(m.Size())
		if taken[i] {
			continue
		}
		taken[i] = true
		out = append(out, m.CoordOf(i))
	}
	return out
}

// TestReshardingInvariant is the determinism audit of the splitter: a
// trial's sampled fault set depends only on (seed, trial index), never
// on how trials are sharded across workers. Three shardings — serial,
// 4 workers striped, 7 workers racing over a shared counter — must
// produce identical per-trial fault sets.
func TestReshardingInvariant(t *testing.T) {
	m := mesh.Mesh{Width: 24, Height: 24}
	const trials, k = 64, 12
	const seed = 99

	run := func(workers int, stripe bool) [][]mesh.Coord {
		out := make([][]mesh.Coord, trials)
		if workers == 1 {
			for tr := 0; tr < trials; tr++ {
				out[tr] = sampleTrialFaults(m, seed, uint64(tr), k)
			}
			return out
		}
		var wg sync.WaitGroup
		if stripe {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for tr := w; tr < trials; tr += workers {
						out[tr] = sampleTrialFaults(m, seed, uint64(tr), k)
					}
				}(w)
			}
		} else {
			var next sync.Mutex
			cursor := 0
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						next.Lock()
						tr := cursor
						cursor++
						next.Unlock()
						if tr >= trials {
							return
						}
						out[tr] = sampleTrialFaults(m, seed, uint64(tr), k)
					}
				}()
			}
		}
		wg.Wait()
		return out
	}

	want := run(1, false)
	for _, cfg := range []struct {
		workers int
		stripe  bool
	}{{4, true}, {7, false}} {
		got := run(cfg.workers, cfg.stripe)
		for tr := range want {
			if !reflect.DeepEqual(got[tr], want[tr]) {
				t.Fatalf("workers=%d stripe=%v: trial %d sampled %v, serial sampled %v",
					cfg.workers, cfg.stripe, tr, got[tr], want[tr])
			}
		}
	}
}

// TestGeneratorsUseDistinctStreams checks that the schedule generators
// draw from decorrelated sub-streams of one seed: the random and
// transient arrival schedules for the same seed must not fail the same
// first node at the same first cycle by construction.
func TestGeneratorsUseDistinctStreams(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	r, err := Random(m, 2000, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Transient(m, 2000, 0.9, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) == 0 || len(tr) == 0 {
		t.Fatal("expected non-empty schedules")
	}
	if r[0].Node == tr[0].Node && r[0].Cycle == tr[0].Cycle {
		t.Errorf("random and transient schedules share their first event %v: streams correlated", r[0])
	}
}
