// Package mesh provides the 2-D mesh topology substrate used throughout
// the library: coordinates, rectangles, directions, quadrants and the
// Manhattan metric.
//
// An n x m 2-D mesh has n*m nodes addressed (x, y) with 0 <= x < n and
// 0 <= y < m. Two nodes are connected iff their addresses differ by one
// in exactly one dimension. Following the paper's convention, East is +X
// and North is +Y, so "the destination is in the first quadrant of the
// source" means xd > xs and yd > ys.
package mesh

import (
	"fmt"
	"strconv"
)

// Coord is the address of a node in a 2-D mesh.
type Coord struct {
	X int
	Y int
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string {
	return "(" + strconv.Itoa(c.X) + "," + strconv.Itoa(c.Y) + ")"
}

// Add returns the coordinate translated by d.
func (c Coord) Add(d Coord) Coord {
	return Coord{X: c.X + d.X, Y: c.Y + d.Y}
}

// Sub returns the coordinate difference c - d.
func (c Coord) Sub(d Coord) Coord {
	return Coord{X: c.X - d.X, Y: c.Y - d.Y}
}

// Distance returns the Manhattan distance |xa-xb| + |ya-yb| between two
// nodes, which is the length of every minimal path between them.
func Distance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Mesh describes the dimensions of a 2-D mesh. The zero value is an
// empty mesh containing no nodes.
type Mesh struct {
	Width  int // extent of the X dimension (number of columns)
	Height int // extent of the Y dimension (number of rows)
}

// New returns a mesh with the given dimensions. It returns an error if
// either dimension is not positive.
func New(width, height int) (Mesh, error) {
	if width <= 0 || height <= 0 {
		return Mesh{}, fmt.Errorf("mesh: dimensions must be positive, got %dx%d", width, height)
	}
	return Mesh{Width: width, Height: height}, nil
}

// String renders the mesh as "WxH".
func (m Mesh) String() string {
	return strconv.Itoa(m.Width) + "x" + strconv.Itoa(m.Height)
}

// Size returns the total number of nodes.
func (m Mesh) Size() int {
	return m.Width * m.Height
}

// Contains reports whether c addresses a node of the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// Index returns the row-major linear index of c. The caller must ensure
// c is contained in the mesh.
func (m Mesh) Index(c Coord) int {
	return c.Y*m.Width + c.X
}

// CoordOf is the inverse of Index.
func (m Mesh) CoordOf(i int) Coord {
	return Coord{X: i % m.Width, Y: i / m.Width}
}

// Neighbors appends the existing neighbors of c (in E, S, W, N order) to
// dst and returns the extended slice. Interior nodes have degree 4;
// edge and corner nodes fewer.
func (m Mesh) Neighbors(dst []Coord, c Coord) []Coord {
	for _, d := range Directions() {
		n := c.Add(d.Offset())
		if m.Contains(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// Degree returns the number of neighbors of c inside the mesh.
func (m Mesh) Degree(c Coord) int {
	deg := 0
	for _, d := range Directions() {
		if m.Contains(c.Add(d.Offset())) {
			deg++
		}
	}
	return deg
}

// Center returns the node at the center of the mesh (rounding down).
func (m Mesh) Center() Coord {
	return Coord{X: m.Width / 2, Y: m.Height / 2}
}

// Bounds returns the rectangle covering the whole mesh.
func (m Mesh) Bounds() Rect {
	return Rect{MinX: 0, MinY: 0, MaxX: m.Width - 1, MaxY: m.Height - 1}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
