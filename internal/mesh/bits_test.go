package mesh

import (
	"math/rand"
	"testing"
)

func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 63, 64, 65, 128, 130} {
		m := Mesh{Width: w, Height: 5}
		v := make([]bool, m.Size())
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		b := new(Bits).FromBools(m, v)
		for i := range v {
			if got := b.Get(m.CoordOf(i)); got != v[i] {
				t.Fatalf("w=%d: Get(%v) = %v, want %v", w, m.CoordOf(i), got, v[i])
			}
		}
		back := b.Bools(nil)
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("w=%d: Bools[%d] = %v, want %v", w, i, back[i], v[i])
			}
		}
		want := 0
		for _, set := range v {
			if set {
				want++
			}
		}
		if got := b.Count(); got != want {
			t.Fatalf("w=%d: Count = %d, want %d", w, got, want)
		}
	}
}

func TestBitsSetClearTail(t *testing.T) {
	m := Mesh{Width: 70, Height: 3}
	b := NewBits(m)
	c := Coord{X: 69, Y: 2}
	b.Set(c)
	if !b.Get(c) {
		t.Fatal("Set then Get = false")
	}
	// The tail mask must admit the last real column and nothing beyond.
	if mask := b.TailMask(1); mask != (1<<(70-64))-1 {
		t.Fatalf("TailMask(last) = %#x", mask)
	}
	if mask := b.TailMask(0); mask != ^uint64(0) {
		t.Fatalf("TailMask(full word) = %#x", mask)
	}
	b.Clear(c)
	if b.Get(c) || b.Count() != 0 {
		t.Fatal("Clear left bits behind")
	}
}

func TestBitsResizeReuseClears(t *testing.T) {
	big := Mesh{Width: 100, Height: 10}
	b := NewBits(big)
	for i := 0; i < big.Size(); i += 3 {
		b.Set(big.CoordOf(i))
	}
	small := Mesh{Width: 20, Height: 4}
	b.Resize(small)
	if b.Count() != 0 {
		t.Fatalf("Resize left %d stale bits", b.Count())
	}
	if b.Mesh() != small {
		t.Fatalf("Mesh() = %v after resize", b.Mesh())
	}
}

// TestBitsExactWidth covers the Width%64==0 tail: the mask must stay
// all-ones rather than collapsing to zero.
func TestBitsExactWidth(t *testing.T) {
	m := Mesh{Width: 128, Height: 2}
	b := NewBits(m)
	if b.WordsPerRow() != 2 {
		t.Fatalf("WordsPerRow = %d", b.WordsPerRow())
	}
	if b.TailMask(1) != ^uint64(0) {
		t.Fatalf("TailMask = %#x for exact-width row", b.TailMask(1))
	}
	c := Coord{X: 127, Y: 1}
	b.Set(c)
	if !b.Get(c) {
		t.Fatal("last column lost")
	}
}

// runEastRef counts the run of marked nodes from (x, y) eastward one
// node at a time — the reference RunEast's word stepping must match.
func runEastRef(b *Bits, m Mesh, x, y, max int) int {
	n := 0
	for n < max && x+n < m.Width && b.Get(Coord{X: x + n, Y: y}) {
		n++
	}
	return n
}

func runWestRef(b *Bits, m Mesh, x, y, max int) int {
	n := 0
	for n < max && x-n >= 0 && b.Get(Coord{X: x - n, Y: y}) {
		n++
	}
	return n
}

// TestBitsRunEastWest drives the word-level run counters against the
// per-node reference across word boundaries, exact multiples of 64,
// ragged tails, and every max cap.
func TestBitsRunEastWest(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, w := range []int{1, 5, 63, 64, 65, 127, 128, 130, 200} {
		m := Mesh{Width: w, Height: 3}
		v := make([]bool, m.Size())
		for i := range v {
			// Long runs so word boundaries are actually crossed.
			v[i] = rng.Intn(8) != 0
		}
		b := new(Bits).FromBools(m, v)
		for y := 0; y < m.Height; y++ {
			for x := 0; x < w; x++ {
				for _, max := range []int{0, 1, 2, 63, 64, 65, w, w + 9} {
					if got, want := b.RunEast(x, y, max), runEastRef(b, m, x, y, max); got != want {
						t.Fatalf("w=%d RunEast(%d,%d,max=%d) = %d, want %d", w, x, y, max, got, want)
					}
					if got, want := b.RunWest(x, y, max), runWestRef(b, m, x, y, max); got != want {
						t.Fatalf("w=%d RunWest(%d,%d,max=%d) = %d, want %d", w, x, y, max, got, want)
					}
				}
			}
		}
	}
	// All-ones rows: runs must stop at the mesh edge, not the word edge.
	m := Mesh{Width: 130, Height: 1}
	v := make([]bool, m.Size())
	for i := range v {
		v[i] = true
	}
	b := new(Bits).FromBools(m, v)
	if got := b.RunEast(0, 0, 1000); got != 130 {
		t.Fatalf("RunEast over solid row = %d, want 130", got)
	}
	if got := b.RunWest(129, 0, 1000); got != 130 {
		t.Fatalf("RunWest over solid row = %d, want 130", got)
	}
}
