package mesh

import (
	"math/rand"
	"testing"
)

func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 63, 64, 65, 128, 130} {
		m := Mesh{Width: w, Height: 5}
		v := make([]bool, m.Size())
		for i := range v {
			v[i] = rng.Intn(2) == 0
		}
		b := new(Bits).FromBools(m, v)
		for i := range v {
			if got := b.Get(m.CoordOf(i)); got != v[i] {
				t.Fatalf("w=%d: Get(%v) = %v, want %v", w, m.CoordOf(i), got, v[i])
			}
		}
		back := b.Bools(nil)
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("w=%d: Bools[%d] = %v, want %v", w, i, back[i], v[i])
			}
		}
		want := 0
		for _, set := range v {
			if set {
				want++
			}
		}
		if got := b.Count(); got != want {
			t.Fatalf("w=%d: Count = %d, want %d", w, got, want)
		}
	}
}

func TestBitsSetClearTail(t *testing.T) {
	m := Mesh{Width: 70, Height: 3}
	b := NewBits(m)
	c := Coord{X: 69, Y: 2}
	b.Set(c)
	if !b.Get(c) {
		t.Fatal("Set then Get = false")
	}
	// The tail mask must admit the last real column and nothing beyond.
	if mask := b.TailMask(1); mask != (1<<(70-64))-1 {
		t.Fatalf("TailMask(last) = %#x", mask)
	}
	if mask := b.TailMask(0); mask != ^uint64(0) {
		t.Fatalf("TailMask(full word) = %#x", mask)
	}
	b.Clear(c)
	if b.Get(c) || b.Count() != 0 {
		t.Fatal("Clear left bits behind")
	}
}

func TestBitsResizeReuseClears(t *testing.T) {
	big := Mesh{Width: 100, Height: 10}
	b := NewBits(big)
	for i := 0; i < big.Size(); i += 3 {
		b.Set(big.CoordOf(i))
	}
	small := Mesh{Width: 20, Height: 4}
	b.Resize(small)
	if b.Count() != 0 {
		t.Fatalf("Resize left %d stale bits", b.Count())
	}
	if b.Mesh() != small {
		t.Fatalf("Mesh() = %v after resize", b.Mesh())
	}
}

// TestBitsExactWidth covers the Width%64==0 tail: the mask must stay
// all-ones rather than collapsing to zero.
func TestBitsExactWidth(t *testing.T) {
	m := Mesh{Width: 128, Height: 2}
	b := NewBits(m)
	if b.WordsPerRow() != 2 {
		t.Fatalf("WordsPerRow = %d", b.WordsPerRow())
	}
	if b.TailMask(1) != ^uint64(0) {
		t.Fatalf("TailMask = %#x for exact-width row", b.TailMask(1))
	}
	c := Coord{X: 127, Y: 1}
	b.Set(c)
	if !b.Get(c) {
		t.Fatal("last column lost")
	}
}
