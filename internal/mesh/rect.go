package mesh

import "fmt"

// Rect is an inclusive axis-aligned rectangle of mesh nodes,
// [MinX:MaxX, MinY:MaxY] in the paper's notation.
type Rect struct {
	MinX int
	MinY int
	MaxX int
	MaxY int
}

// RectAround returns the 1x1 rectangle containing only c.
func RectAround(c Coord) Rect {
	return Rect{MinX: c.X, MinY: c.Y, MaxX: c.X, MaxY: c.Y}
}

// String renders the rectangle in the paper's [xmin:xmax, ymin:ymax]
// notation.
func (r Rect) String() string {
	return fmt.Sprintf("[%d:%d, %d:%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Valid reports whether the rectangle is non-empty.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the number of columns covered.
func (r Rect) Width() int {
	return r.MaxX - r.MinX + 1
}

// Height returns the number of rows covered.
func (r Rect) Height() int {
	return r.MaxY - r.MinY + 1
}

// Area returns the number of nodes covered.
func (r Rect) Area() int {
	if !r.Valid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Contains reports whether c lies inside the rectangle.
func (r Rect) Contains(c Coord) bool {
	return c.X >= r.MinX && c.X <= r.MaxX && c.Y >= r.MinY && c.Y <= r.MaxY
}

// ContainsX reports whether column x is covered by the rectangle.
func (r Rect) ContainsX(x int) bool {
	return x >= r.MinX && x <= r.MaxX
}

// ContainsY reports whether row y is covered by the rectangle.
func (r Rect) ContainsY(y int) bool {
	return y >= r.MinY && y <= r.MaxY
}

// Intersects reports whether the two rectangles share at least one node.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	if !r.Valid() {
		return o
	}
	if !o.Valid() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, o.MinX),
		MinY: min(r.MinY, o.MinY),
		MaxX: max(r.MaxX, o.MaxX),
		MaxY: max(r.MaxY, o.MaxY),
	}
}

// Expand returns the rectangle grown by delta on all four sides.
func (r Rect) Expand(delta int) Rect {
	return Rect{MinX: r.MinX - delta, MinY: r.MinY - delta, MaxX: r.MaxX + delta, MaxY: r.MaxY + delta}
}

// Clip returns the intersection with o; the result may be invalid
// (empty) if they do not intersect.
func (r Rect) Clip(o Rect) Rect {
	return Rect{
		MinX: max(r.MinX, o.MinX),
		MinY: max(r.MinY, o.MinY),
		MaxX: min(r.MaxX, o.MaxX),
		MaxY: min(r.MaxY, o.MaxY),
	}
}

// Coords appends every node of the rectangle to dst in row-major order
// and returns the extended slice.
func (r Rect) Coords(dst []Coord) []Coord {
	for y := r.MinY; y <= r.MaxY; y++ {
		for x := r.MinX; x <= r.MaxX; x++ {
			dst = append(dst, Coord{X: x, Y: y})
		}
	}
	return dst
}
