package mesh

// Dir identifies one of the four mesh directions. East is +X, North is
// +Y, matching the paper's extended-safety-level tuple order (E, S, W, N).
type Dir int

// The four mesh directions, starting at one so the zero value is invalid.
const (
	East Dir = iota + 1
	South
	West
	North
)

var _dirNames = [...]string{East: "E", South: "S", West: "W", North: "N"}

var _dirOffsets = [...]Coord{
	East:  {X: 1, Y: 0},
	South: {X: 0, Y: -1},
	West:  {X: -1, Y: 0},
	North: {X: 0, Y: 1},
}

// Directions returns the four directions in (E, S, W, N) order.
func Directions() [4]Dir {
	return [4]Dir{East, South, West, North}
}

// Valid reports whether d is one of the four directions.
func (d Dir) Valid() bool {
	return d >= East && d <= North
}

// String returns the single-letter name of the direction.
func (d Dir) String() string {
	if !d.Valid() {
		return "invalid"
	}
	return _dirNames[d]
}

// Offset returns the unit coordinate delta of one hop in direction d.
func (d Dir) Offset() Coord {
	if !d.Valid() {
		return Coord{}
	}
	return _dirOffsets[d]
}

// Opposite returns the direction pointing the other way.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	default:
		return 0
	}
}

// DirTo returns the direction of the single hop from a to an adjacent
// node b, and false if a and b are not adjacent.
func DirTo(a, b Coord) (Dir, bool) {
	switch {
	case b.X == a.X+1 && b.Y == a.Y:
		return East, true
	case b.X == a.X-1 && b.Y == a.Y:
		return West, true
	case b.X == a.X && b.Y == a.Y+1:
		return North, true
	case b.X == a.X && b.Y == a.Y-1:
		return South, true
	default:
		return 0, false
	}
}

// Quadrant returns the quadrant (1..4) of d relative to s following the
// paper's convention: quadrant I is northeast (xd >= xs, yd >= ys),
// II northwest, III southwest, IV southeast. Ties on an axis are folded
// into the quadrant that still permits monotone routing: a destination
// due east is in quadrant I territory for routing purposes. d == s maps
// to quadrant 1.
func Quadrant(s, d Coord) int {
	switch {
	case d.X >= s.X && d.Y >= s.Y:
		return 1
	case d.X < s.X && d.Y >= s.Y:
		return 2
	case d.X < s.X && d.Y < s.Y:
		return 3
	default:
		return 4
	}
}

// PreferredDirs returns the preferred directions (those that reduce the
// distance to d) at node u. It returns zero, one or two directions; two
// exactly when u and d differ in both dimensions.
func PreferredDirs(u, d Coord) []Dir {
	return AppendPreferredDirs(nil, u, d)
}

// AppendPreferredDirs appends the preferred directions at u heading
// for d to dst and returns the extended slice. Passing a slice backed
// by a stack buffer ([4]Dir) makes per-hop routing decisions
// allocation-free.
func AppendPreferredDirs(dst []Dir, u, d Coord) []Dir {
	switch {
	case d.X > u.X:
		dst = append(dst, East)
	case d.X < u.X:
		dst = append(dst, West)
	}
	switch {
	case d.Y > u.Y:
		dst = append(dst, North)
	case d.Y < u.Y:
		dst = append(dst, South)
	}
	return dst
}

// SpareDirs returns the spare directions (those that increase the
// distance to d) at node u.
func SpareDirs(u, d Coord) []Dir {
	return AppendSpareDirs(nil, u, d)
}

// AppendSpareDirs appends the spare directions at u heading for d to
// dst and returns the extended slice; the allocation-free counterpart
// of SpareDirs.
func AppendSpareDirs(dst []Dir, u, d Coord) []Dir {
	var prefBuf [2]Dir
	pref := AppendPreferredDirs(prefBuf[:0], u, d)
	for _, dir := range Directions() {
		spare := true
		for _, p := range pref {
			if p == dir {
				spare = false
				break
			}
		}
		if spare {
			dst = append(dst, dir)
		}
	}
	return dst
}
