package mesh

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 2, MinY: 3, MaxX: 6, MaxY: 6}
	if got := r.String(); got != "[2:6, 3:6]" {
		t.Errorf("String() = %q", got)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if got := r.Width(); got != 5 {
		t.Errorf("Width() = %d, want 5", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height() = %d, want 4", got)
	}
	if got := r.Area(); got != 20 {
		t.Errorf("Area() = %d, want 20", got)
	}
	if (Rect{MinX: 3, MaxX: 2, MinY: 0, MaxY: 0}).Valid() {
		t.Error("inverted rect should be invalid")
	}
	if got := (Rect{MinX: 3, MaxX: 2, MinY: 0, MaxY: 0}).Area(); got != 0 {
		t.Errorf("invalid rect Area() = %d, want 0", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 2, MinY: 3, MaxX: 6, MaxY: 6}
	tests := []struct {
		c    Coord
		want bool
	}{
		{Coord{2, 3}, true},
		{Coord{6, 6}, true},
		{Coord{4, 5}, true},
		{Coord{1, 3}, false},
		{Coord{7, 6}, false},
		{Coord{2, 2}, false},
		{Coord{2, 7}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.c); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
	if !r.ContainsX(2) || !r.ContainsX(6) || r.ContainsX(1) || r.ContainsX(7) {
		t.Error("ContainsX boundary behavior wrong")
	}
	if !r.ContainsY(3) || !r.ContainsY(6) || r.ContainsY(2) || r.ContainsY(7) {
		t.Error("ContainsY boundary behavior wrong")
	}
}

func TestRectIntersects(t *testing.T) {
	base := Rect{MinX: 2, MinY: 2, MaxX: 5, MaxY: 5}
	tests := []struct {
		name string
		o    Rect
		want bool
	}{
		{name: "identical", o: base, want: true},
		{name: "inside", o: Rect{3, 3, 4, 4}, want: true},
		{name: "corner touch", o: Rect{5, 5, 8, 8}, want: true},
		{name: "disjoint east", o: Rect{6, 2, 8, 5}, want: false},
		{name: "disjoint north", o: Rect{2, 6, 5, 8}, want: false},
		{name: "overlap edge", o: Rect{0, 0, 2, 2}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := base.Intersects(tt.o); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.o.Intersects(base); got != tt.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestRectUnionClipExpand(t *testing.T) {
	a := Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}
	b := Rect{MinX: 2, MinY: 0, MaxX: 5, MaxY: 2}
	u := a.Union(b)
	want := Rect{MinX: 1, MinY: 0, MaxX: 5, MaxY: 3}
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	c := a.Clip(b)
	wantClip := Rect{MinX: 2, MinY: 1, MaxX: 3, MaxY: 2}
	if c != wantClip {
		t.Errorf("Clip = %v, want %v", c, wantClip)
	}
	e := a.Expand(1)
	wantExp := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	if e != wantExp {
		t.Errorf("Expand = %v, want %v", e, wantExp)
	}

	var invalid Rect
	invalid.MinX = 5 // MaxX zero => invalid
	if got := invalid.Union(a); got != a {
		t.Errorf("Union with invalid = %v, want %v", got, a)
	}
	if got := a.Union(invalid); got != a {
		t.Errorf("Union with invalid (rhs) = %v, want %v", got, a)
	}
}

func TestRectCoords(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 2, MaxY: 3}
	got := r.Coords(nil)
	want := []Coord{{1, 2}, {2, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("Coords = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coords = %v, want %v", got, want)
		}
	}
}

func TestRectAround(t *testing.T) {
	c := Coord{4, 7}
	r := RectAround(c)
	if !r.Contains(c) || r.Area() != 1 {
		t.Errorf("RectAround(%v) = %v", c, r)
	}
}

func TestRectPropertyUnionContains(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{MinX: int(ax), MinY: int(ay), MaxX: int(ax) + int(aw%10), MaxY: int(ay) + int(ah%10)}
		b := Rect{MinX: int(bx), MinY: int(by), MaxX: int(bx) + int(bw%10), MaxY: int(by) + int(bh%10)}
		u := a.Union(b)
		// The union contains every corner of both rectangles.
		corners := []Coord{
			{a.MinX, a.MinY}, {a.MaxX, a.MaxY},
			{b.MinX, b.MinY}, {b.MaxX, b.MaxY},
		}
		for _, c := range corners {
			if !u.Contains(c) {
				return false
			}
		}
		// Intersection is symmetric and consistent with Clip validity.
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if a.Intersects(b) != a.Clip(b).Valid() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
