package mesh

import (
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name    string
		w, h    int
		wantErr bool
	}{
		{name: "square", w: 8, h: 8},
		{name: "wide", w: 20, h: 3},
		{name: "tall", w: 1, h: 9},
		{name: "single", w: 1, h: 1},
		{name: "zero width", w: 0, h: 5, wantErr: true},
		{name: "zero height", w: 5, h: 0, wantErr: true},
		{name: "negative", w: -3, h: 4, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := New(tt.w, tt.h)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("New(%d,%d) = %v, want error", tt.w, tt.h, m)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%d,%d): %v", tt.w, tt.h, err)
			}
			if m.Width != tt.w || m.Height != tt.h {
				t.Errorf("dims = %dx%d, want %dx%d", m.Width, m.Height, tt.w, tt.h)
			}
			if got := m.Size(); got != tt.w*tt.h {
				t.Errorf("Size() = %d, want %d", got, tt.w*tt.h)
			}
		})
	}
}

func TestMeshContains(t *testing.T) {
	m := Mesh{Width: 4, Height: 3}
	tests := []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{3, 2}, true},
		{Coord{4, 2}, false},
		{Coord{3, 3}, false},
		{Coord{-1, 0}, false},
		{Coord{0, -1}, false},
		{Coord{2, 1}, true},
	}
	for _, tt := range tests {
		if got := m.Contains(tt.c); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := Mesh{Width: 7, Height: 5}
	seen := make(map[int]bool, m.Size())
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			c := Coord{X: x, Y: y}
			i := m.Index(c)
			if i < 0 || i >= m.Size() {
				t.Fatalf("Index(%v) = %d out of range", c, i)
			}
			if seen[i] {
				t.Fatalf("Index(%v) = %d already used", c, i)
			}
			seen[i] = true
			if got := m.CoordOf(i); got != c {
				t.Fatalf("CoordOf(Index(%v)) = %v", c, got)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	m := Mesh{Width: 5, Height: 5}
	tests := []struct {
		name string
		c    Coord
		want int
	}{
		{name: "interior", c: Coord{2, 2}, want: 4},
		{name: "edge", c: Coord{0, 2}, want: 3},
		{name: "corner", c: Coord{0, 0}, want: 2},
		{name: "far corner", c: Coord{4, 4}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ns := m.Neighbors(nil, tt.c)
			if len(ns) != tt.want {
				t.Fatalf("Neighbors(%v) = %v (len %d), want %d", tt.c, ns, len(ns), tt.want)
			}
			if got := m.Degree(tt.c); got != tt.want {
				t.Errorf("Degree(%v) = %d, want %d", tt.c, got, tt.want)
			}
			for _, n := range ns {
				if !m.Contains(n) {
					t.Errorf("neighbor %v outside mesh", n)
				}
				if Distance(tt.c, n) != 1 {
					t.Errorf("neighbor %v not adjacent to %v", n, tt.c)
				}
			}
		})
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{3, 4}, Coord{0, 0}, 7},
		{Coord{2, 2}, Coord{2, 5}, 3},
		{Coord{-1, -1}, Coord{1, 1}, 4},
	}
	for _, tt := range tests {
		if got := Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		return Distance(a, b) == Distance(b, a) && Distance(a, b) >= 0
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		c := Coord{int(cx), int(cy)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
}

func TestDirections(t *testing.T) {
	for _, d := range Directions() {
		if !d.Valid() {
			t.Errorf("direction %v invalid", d)
		}
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
		off := d.Offset()
		if abs(off.X)+abs(off.Y) != 1 {
			t.Errorf("Offset(%v) = %v not unit", d, off)
		}
		opp := d.Opposite().Offset()
		if off.X != -opp.X || off.Y != -opp.Y {
			t.Errorf("Offset(%v)=%v not negated by opposite %v", d, off, opp)
		}
	}
	if Dir(0).Valid() || Dir(5).Valid() {
		t.Error("out-of-range Dir reported valid")
	}
	if got := Dir(0).String(); got != "invalid" {
		t.Errorf("Dir(0).String() = %q", got)
	}
}

func TestDirTo(t *testing.T) {
	u := Coord{3, 3}
	tests := []struct {
		b    Coord
		want Dir
		ok   bool
	}{
		{Coord{4, 3}, East, true},
		{Coord{2, 3}, West, true},
		{Coord{3, 4}, North, true},
		{Coord{3, 2}, South, true},
		{Coord{4, 4}, 0, false},
		{Coord{3, 3}, 0, false},
		{Coord{5, 3}, 0, false},
	}
	for _, tt := range tests {
		d, ok := DirTo(u, tt.b)
		if ok != tt.ok || d != tt.want {
			t.Errorf("DirTo(%v,%v) = (%v,%v), want (%v,%v)", u, tt.b, d, ok, tt.want, tt.ok)
		}
	}
}

func TestQuadrant(t *testing.T) {
	s := Coord{5, 5}
	tests := []struct {
		d    Coord
		want int
	}{
		{Coord{8, 9}, 1},
		{Coord{5, 5}, 1},
		{Coord{9, 5}, 1},
		{Coord{5, 9}, 1},
		{Coord{2, 8}, 2},
		{Coord{4, 5}, 2},
		{Coord{1, 1}, 3},
		{Coord{4, 4}, 3},
		{Coord{9, 2}, 4},
		{Coord{5, 4}, 4},
	}
	for _, tt := range tests {
		if got := Quadrant(s, tt.d); got != tt.want {
			t.Errorf("Quadrant(%v,%v) = %d, want %d", s, tt.d, got, tt.want)
		}
	}
}

func TestPreferredAndSpareDirs(t *testing.T) {
	u := Coord{5, 5}
	tests := []struct {
		name     string
		d        Coord
		wantPref []Dir
	}{
		{name: "northeast", d: Coord{8, 9}, wantPref: []Dir{East, North}},
		{name: "due east", d: Coord{9, 5}, wantPref: []Dir{East}},
		{name: "southwest", d: Coord{1, 2}, wantPref: []Dir{West, South}},
		{name: "same node", d: Coord{5, 5}, wantPref: nil},
		{name: "due south", d: Coord{5, 0}, wantPref: []Dir{South}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pref := PreferredDirs(u, tt.d)
			if len(pref) != len(tt.wantPref) {
				t.Fatalf("PreferredDirs = %v, want %v", pref, tt.wantPref)
			}
			got := make(map[Dir]bool, len(pref))
			for _, p := range pref {
				got[p] = true
			}
			for _, w := range tt.wantPref {
				if !got[w] {
					t.Fatalf("PreferredDirs = %v, want %v", pref, tt.wantPref)
				}
			}
			spare := SpareDirs(u, tt.d)
			if len(pref)+len(spare) != 4 {
				t.Fatalf("pref %v + spare %v do not partition directions", pref, spare)
			}
			for _, s := range spare {
				if got[s] {
					t.Fatalf("direction %v both preferred and spare", s)
				}
			}
		})
	}
}

func TestPreferredDirsReduceDistance(t *testing.T) {
	f := func(ux, uy, dx, dy int8) bool {
		u := Coord{int(ux), int(uy)}
		d := Coord{int(dx), int(dy)}
		for _, p := range PreferredDirs(u, d) {
			if Distance(u.Add(p.Offset()), d) != Distance(u, d)-1 {
				return false
			}
		}
		for _, s := range SpareDirs(u, d) {
			if Distance(u.Add(s.Offset()), d) != Distance(u, d)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenter(t *testing.T) {
	tests := []struct {
		m    Mesh
		want Coord
	}{
		{Mesh{Width: 200, Height: 200}, Coord{100, 100}},
		{Mesh{Width: 5, Height: 5}, Coord{2, 2}},
		{Mesh{Width: 1, Height: 1}, Coord{0, 0}},
	}
	for _, tt := range tests {
		if got := tt.m.Center(); got != tt.want {
			t.Errorf("%v.Center() = %v, want %v", tt.m, got, tt.want)
		}
	}
}

func TestStringersAndHelpers(t *testing.T) {
	if got := (Coord{X: 3, Y: -2}).String(); got != "(3,-2)" {
		t.Errorf("Coord.String = %q", got)
	}
	if got := (Coord{X: 5, Y: 7}).Sub(Coord{X: 2, Y: 3}); got != (Coord{X: 3, Y: 4}) {
		t.Errorf("Sub = %v", got)
	}
	m := Mesh{Width: 7, Height: 4}
	if got := m.String(); got != "7x4" {
		t.Errorf("Mesh.String = %q", got)
	}
	if got := m.Bounds(); got != (Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 3}) {
		t.Errorf("Bounds = %v", got)
	}
	if got := Dir(0).Offset(); got != (Coord{}) {
		t.Errorf("invalid Offset = %v", got)
	}
	if got := Dir(0).Opposite(); got != Dir(0) {
		t.Errorf("invalid Opposite = %v", got)
	}
	for _, d := range Directions() {
		if d.String() == "invalid" {
			t.Errorf("direction %d renders invalid", d)
		}
	}
}
