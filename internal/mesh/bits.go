package mesh

import "math/bits"

// wordBits is the width of one bitset word; a single AND/OR/shift
// covers this many columns at once.
const wordBits = 64

// Bits is a per-row bitset over the nodes of a mesh: each row of the
// mesh occupies a fixed span of uint64 words, with bit x of a row's
// span standing for column x. It is the bit-parallel counterpart of a
// []bool grid indexed by Mesh.Index — 64 columns per word operation —
// and backs the reachability sweeps of the wang package.
//
// The zero value is an empty grid over the zero mesh; use Resize (or
// FromBools) to shape it. Words past column Width-1 in each row's last
// word are always zero, so whole-word operations never see phantom
// columns.
type Bits struct {
	m     Mesh
	wpr   int      // words per row
	words []uint64 // len m.Height*wpr, row y at words[y*wpr:(y+1)*wpr]
}

// NewBits returns a zeroed bitset grid over m.
func NewBits(m Mesh) *Bits {
	b := &Bits{}
	b.Resize(m)
	return b
}

// Resize shapes the grid for m, reusing the word storage when it is
// large enough, and zeroes every bit.
func (b *Bits) Resize(m Mesh) {
	b.m = m
	b.wpr = (m.Width + wordBits - 1) / wordBits
	n := m.Height * b.wpr
	if cap(b.words) < n {
		b.words = make([]uint64, n)
		return
	}
	b.words = b.words[:n]
	clear(b.words)
}

// FromBools fills the grid from a []bool indexed by m.Index. It is the
// conversion boundary between the compatibility []bool form and the
// bit-parallel form; callers on a hot path should convert once and
// keep the Bits.
func (b *Bits) FromBools(m Mesh, v []bool) *Bits {
	b.Resize(m)
	for y := 0; y < m.Height; y++ {
		row := b.words[y*b.wpr : (y+1)*b.wpr]
		src := v[y*m.Width : (y+1)*m.Width]
		for w := range row {
			lo := w << 6
			hi := lo + wordBits
			if hi > len(src) {
				hi = len(src)
			}
			// Assemble the whole word in a register: the bool reads stay,
			// but the per-bit read-modify-write of the word slot goes away
			// and the conditional reduces to a flag-set.
			var word uint64
			for x := lo; x < hi; x++ {
				var bit uint64
				if src[x] {
					bit = 1
				}
				word |= bit << uint(x&63)
			}
			row[w] = word
		}
	}
	return b
}

// Mesh returns the dimensions the grid is shaped for.
func (b *Bits) Mesh() Mesh { return b.m }

// WordsPerRow returns the number of uint64 words covering one row.
func (b *Bits) WordsPerRow() int { return b.wpr }

// Row returns the word span of row y. The caller must not grow it.
func (b *Bits) Row(y int) []uint64 {
	return b.words[y*b.wpr : (y+1)*b.wpr]
}

// TailMask returns the valid-column mask of word w within a row:
// all-ones except for the phantom columns past Width-1 in the last
// word.
func (b *Bits) TailMask(w int) uint64 {
	if w != b.wpr-1 {
		return ^uint64(0)
	}
	if r := b.m.Width & 63; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// Set marks node c.
func (b *Bits) Set(c Coord) {
	b.words[c.Y*b.wpr+c.X>>6] |= 1 << uint(c.X&63)
}

// Clear unmarks node c.
func (b *Bits) Clear(c Coord) {
	b.words[c.Y*b.wpr+c.X>>6] &^= 1 << uint(c.X&63)
}

// Get reports whether node c is marked. The caller must ensure c is
// inside the mesh.
func (b *Bits) Get(c Coord) bool {
	return b.words[c.Y*b.wpr+c.X>>6]&(1<<uint(c.X&63)) != 0
}

// RunEast returns the length of the run of consecutive marked nodes
// starting at (x, y) inclusive and extending east (+X), capped at max.
// The run is counted a word at a time — one load and a trailing-ones
// count per 64 columns — rather than per node. (x, y) must be inside
// the mesh; max bounds how far east the run may be followed.
func (b *Bits) RunEast(x, y, max int) int {
	row := b.Row(y)
	total := 0
	w := x >> 6
	bit := x & 63
	for {
		word := row[w] >> uint(bit)
		ones := bits.TrailingZeros64(^word)
		avail := wordBits - bit
		if ones > avail {
			ones = avail
		}
		total += ones
		if total >= max {
			return max
		}
		if ones < avail {
			return total
		}
		w++
		bit = 0
		if w >= len(row) {
			return total // run reached the row's last word boundary
		}
	}
}

// RunWest is RunEast towards -X: the length of the run of marked nodes
// starting at (x, y) inclusive and extending west, capped at max.
func (b *Bits) RunWest(x, y, max int) int {
	row := b.Row(y)
	total := 0
	w := x >> 6
	bit := x & 63
	for {
		word := row[w] << uint(63-bit)
		ones := bits.LeadingZeros64(^word)
		avail := bit + 1
		if ones > avail {
			ones = avail
		}
		total += ones
		if total >= max {
			return max
		}
		if ones < avail {
			return total
		}
		w--
		bit = 63
		if w < 0 {
			return total
		}
	}
}

// Count returns the number of marked nodes.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bools materializes the grid into dst (indexed by Mesh.Index, resized
// as needed) and returns it — the thin compatibility view for callers
// that still speak []bool.
func (b *Bits) Bools(dst []bool) []bool {
	n := b.m.Size()
	if cap(dst) < n {
		dst = make([]bool, n)
	} else {
		dst = dst[:n]
	}
	for y := 0; y < b.m.Height; y++ {
		row := b.Row(y)
		out := dst[y*b.m.Width : (y+1)*b.m.Width]
		for x := range out {
			out[x] = row[x>>6]&(1<<uint(x&63)) != 0
		}
	}
	return dst
}
