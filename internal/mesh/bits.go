package mesh

import "math/bits"

// wordBits is the width of one bitset word; a single AND/OR/shift
// covers this many columns at once.
const wordBits = 64

// Bits is a per-row bitset over the nodes of a mesh: each row of the
// mesh occupies a fixed span of uint64 words, with bit x of a row's
// span standing for column x. It is the bit-parallel counterpart of a
// []bool grid indexed by Mesh.Index — 64 columns per word operation —
// and backs the reachability sweeps of the wang package.
//
// The zero value is an empty grid over the zero mesh; use Resize (or
// FromBools) to shape it. Words past column Width-1 in each row's last
// word are always zero, so whole-word operations never see phantom
// columns.
type Bits struct {
	m     Mesh
	wpr   int      // words per row
	words []uint64 // len m.Height*wpr, row y at words[y*wpr:(y+1)*wpr]
}

// NewBits returns a zeroed bitset grid over m.
func NewBits(m Mesh) *Bits {
	b := &Bits{}
	b.Resize(m)
	return b
}

// Resize shapes the grid for m, reusing the word storage when it is
// large enough, and zeroes every bit.
func (b *Bits) Resize(m Mesh) {
	b.m = m
	b.wpr = (m.Width + wordBits - 1) / wordBits
	n := m.Height * b.wpr
	if cap(b.words) < n {
		b.words = make([]uint64, n)
		return
	}
	b.words = b.words[:n]
	clear(b.words)
}

// FromBools fills the grid from a []bool indexed by m.Index. It is the
// conversion boundary between the compatibility []bool form and the
// bit-parallel form; callers on a hot path should convert once and
// keep the Bits.
func (b *Bits) FromBools(m Mesh, v []bool) *Bits {
	b.Resize(m)
	for y := 0; y < m.Height; y++ {
		row := b.words[y*b.wpr : (y+1)*b.wpr]
		src := v[y*m.Width : (y+1)*m.Width]
		for x, set := range src {
			if set {
				row[x>>6] |= 1 << uint(x&63)
			}
		}
	}
	return b
}

// Mesh returns the dimensions the grid is shaped for.
func (b *Bits) Mesh() Mesh { return b.m }

// WordsPerRow returns the number of uint64 words covering one row.
func (b *Bits) WordsPerRow() int { return b.wpr }

// Row returns the word span of row y. The caller must not grow it.
func (b *Bits) Row(y int) []uint64 {
	return b.words[y*b.wpr : (y+1)*b.wpr]
}

// TailMask returns the valid-column mask of word w within a row:
// all-ones except for the phantom columns past Width-1 in the last
// word.
func (b *Bits) TailMask(w int) uint64 {
	if w != b.wpr-1 {
		return ^uint64(0)
	}
	if r := b.m.Width & 63; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// Set marks node c.
func (b *Bits) Set(c Coord) {
	b.words[c.Y*b.wpr+c.X>>6] |= 1 << uint(c.X&63)
}

// Clear unmarks node c.
func (b *Bits) Clear(c Coord) {
	b.words[c.Y*b.wpr+c.X>>6] &^= 1 << uint(c.X&63)
}

// Get reports whether node c is marked. The caller must ensure c is
// inside the mesh.
func (b *Bits) Get(c Coord) bool {
	return b.words[c.Y*b.wpr+c.X>>6]&(1<<uint(c.X&63)) != 0
}

// Count returns the number of marked nodes.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bools materializes the grid into dst (indexed by Mesh.Index, resized
// as needed) and returns it — the thin compatibility view for callers
// that still speak []bool.
func (b *Bits) Bools(dst []bool) []bool {
	n := b.m.Size()
	if cap(dst) < n {
		dst = make([]bool, n)
	} else {
		dst = dst[:n]
	}
	for y := 0; y < b.m.Height; y++ {
		row := b.Row(y)
		out := dst[y*b.m.Width : (y+1)*b.m.Width]
		for x := range out {
			out[x] = row[x>>6]&(1<<uint(x&63)) != 0
		}
	}
	return dst
}
