// Package simnet is a small deterministic message-passing simulator
// for 2-D meshes. Every node runs a handler; messages travel over the
// four mesh links and are delivered in rounds (one hop per round, FIFO
// per link), which models the synchronous information-dissemination
// protocols of the paper: the FORMATION-EXTENDED-SAFETY-LEVEL flooding
// and the boundary-line distribution of faulty-block information.
//
// The simulator exists to run the published protocols as written and to
// prove (in tests) that their fixpoints equal the direct computations
// used by the Monte-Carlo harness, which are much faster.
package simnet

import (
	"fmt"

	"extmesh/internal/mesh"
)

// Message is a payload in flight on a link. Payloads are opaque to the
// network.
type Message struct {
	From    mesh.Coord
	To      mesh.Coord
	Payload any
}

// Handler reacts to a delivered message at a node. It may send further
// messages through the Node's Send method.
type Handler func(n *Node, msg Message)

// Node is one mesh node attached to the network.
type Node struct {
	C mesh.Coord

	net     *Network
	handler Handler
	// State is scratch space for the protocol running on the node.
	State any
}

// Send enqueues a message to a neighbor for delivery next round.
// Sending to a non-neighbor or off-mesh coordinate is a programming
// error of the protocol and panics, mirroring the physical reality that
// a mesh node only has four links.
func (n *Node) Send(to mesh.Coord, payload any) {
	if !n.net.m.Contains(to) || mesh.Distance(n.C, to) != 1 {
		panic(fmt.Sprintf("simnet: node %v cannot send to %v", n.C, to))
	}
	n.net.outbox = append(n.net.outbox, Message{From: n.C, To: to, Payload: payload})
}

// Network is a deterministic synchronous mesh network.
type Network struct {
	m     mesh.Mesh
	nodes []*Node

	inbox  []Message
	outbox []Message

	rounds    int
	delivered int
}

// New builds a network over the mesh with the given handler installed
// on every node.
func New(m mesh.Mesh, handler Handler) *Network {
	net := &Network{m: m, nodes: make([]*Node, m.Size())}
	for i := range net.nodes {
		net.nodes[i] = &Node{C: m.CoordOf(i), net: net, handler: handler}
	}
	return net
}

// Node returns the node at c.
func (net *Network) Node(c mesh.Coord) *Node {
	return net.nodes[net.m.Index(c)]
}

// Inject queues a message for delivery to c in the next round, as if
// it arrived from outside (From equals To). It seeds protocols.
func (net *Network) Inject(c mesh.Coord, payload any) {
	net.outbox = append(net.outbox, Message{From: c, To: c, Payload: payload})
}

// Step delivers all queued messages (one round) and returns the number
// delivered. Handlers run in deterministic order (queue order).
func (net *Network) Step() int {
	net.inbox, net.outbox = net.outbox, net.inbox[:0]
	for _, msg := range net.inbox {
		n := net.nodes[net.m.Index(msg.To)]
		if n.handler != nil {
			n.handler(n, msg)
		}
	}
	count := len(net.inbox)
	net.rounds++
	net.delivered += count
	return count
}

// Run steps until the network is quiescent (no messages in flight) or
// maxRounds is exceeded; it reports whether quiescence was reached.
func (net *Network) Run(maxRounds int) bool {
	for r := 0; r < maxRounds; r++ {
		if len(net.outbox) == 0 {
			return true
		}
		net.Step()
	}
	return len(net.outbox) == 0
}

// Rounds returns the number of delivery rounds executed.
func (net *Network) Rounds() int {
	return net.rounds
}

// Delivered returns the total number of messages delivered.
func (net *Network) Delivered() int {
	return net.delivered
}
