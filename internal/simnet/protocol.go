package simnet

import (
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/safety"
)

// levelMsg announces the sender's distance towards dir ("my nearest
// fault region towards dir is dist hops away").
type levelMsg struct {
	dir  mesh.Dir
	dist int
}

// FormationLevels runs the paper's FORMATION-EXTENDED-SAFETY-LEVEL
// protocol on the simulated network: nodes adjacent to a fault region
// initiate a wave per direction and every node that receives a level
// from its dir-side neighbor adds one hop and forwards away from the
// region. It returns the per-node levels (indexed by mesh.Index);
// fault-region nodes keep the zero level.
func FormationLevels(m mesh.Mesh, blocked []bool) []safety.Level {
	levels := make([]safety.Level, m.Size())
	for i := range levels {
		if !blocked[i] {
			levels[i] = safety.Level{E: safety.Unbounded, S: safety.Unbounded, W: safety.Unbounded, N: safety.Unbounded}
		}
	}
	setDist := func(lvl *safety.Level, d mesh.Dir, v int) {
		switch d {
		case mesh.East:
			lvl.E = v
		case mesh.South:
			lvl.S = v
		case mesh.West:
			lvl.W = v
		case mesh.North:
			lvl.N = v
		}
	}

	net := New(m, func(n *Node, msg Message) {
		i := m.Index(n.C)
		if blocked[i] {
			return // fault-region nodes do not participate
		}
		lm, ok := msg.Payload.(levelMsg)
		if !ok {
			return
		}
		setDist(&levels[i], lm.dir, lm.dist)
		// Forward away from the fault region: the neighbor on the
		// opposite side learns a one-hop-larger distance.
		next := n.C.Add(lm.dir.Opposite().Offset())
		if m.Contains(next) && !blocked[m.Index(next)] {
			n.Send(next, levelMsg{dir: lm.dir, dist: lm.dist + 1})
		}
	})

	// Seed: every free node senses its own links, so a node whose
	// dir-side neighbor is blocked knows dist 1 and starts the wave.
	for i := 0; i < m.Size(); i++ {
		if blocked[i] {
			continue
		}
		c := m.CoordOf(i)
		for _, d := range mesh.Directions() {
			nb := c.Add(d.Offset())
			if m.Contains(nb) && blocked[m.Index(nb)] {
				net.Inject(c, levelMsg{dir: d, dist: 1})
			}
		}
	}
	// Each wave travels at most the mesh diameter.
	net.Run(m.Width + m.Height + 2)
	return levels
}

// lineMsg carries faulty-block information along a boundary line.
type lineMsg struct {
	obstacle mesh.Rect
	kind     route.LineKind
}

// DistributeBoundaries floods each obstacle run's boundary information
// along its L1/L3 lines with the paper's turn/join rule, executed hop
// by hop on the simulated network: an L1 message keeps traveling west,
// sliding one node south around an intervening fault region; an L3
// message keeps traveling south, sliding west. It returns the per-node
// line information gathered, for comparison against the direct
// computation in package route.
func DistributeBoundaries(m mesh.Mesh, blocked []bool) map[mesh.Coord][]route.LineTag {
	got := make(map[mesh.Coord][]route.LineTag)
	free := func(c mesh.Coord) bool {
		return m.Contains(c) && !blocked[m.Index(c)]
	}

	net := New(m, func(n *Node, msg Message) {
		lm, ok := msg.Payload.(lineMsg)
		if !ok {
			return
		}
		got[n.C] = append(got[n.C], route.LineTag{Obstacle: lm.obstacle, Kind: lm.kind})
		switch lm.kind {
		case route.LineL1:
			west := n.C.Add(mesh.West.Offset())
			south := n.C.Add(mesh.South.Offset())
			switch {
			case free(west):
				n.Send(west, lm)
			case m.Contains(west) && free(south):
				// Turn around the encountered fault region.
				n.Send(south, lm)
			}
		case route.LineL3:
			south := n.C.Add(mesh.South.Offset())
			west := n.C.Add(mesh.West.Offset())
			switch {
			case free(south):
				n.Send(south, lm)
			case m.Contains(south) && free(west):
				n.Send(west, lm)
			}
		}
	})

	// Seed at the line start nodes (the fault region knows its own
	// extent when the block forms).
	for _, r := range route.VerticalRuns(m, blocked) {
		start := mesh.Coord{X: r.MinX, Y: r.MinY - 1}
		if free(start) {
			net.Inject(start, lineMsg{obstacle: r, kind: route.LineL1})
		}
	}
	for _, r := range route.HorizontalRuns(m, blocked) {
		start := mesh.Coord{X: r.MinX - 1, Y: r.MinY}
		if free(start) {
			net.Inject(start, lineMsg{obstacle: r, kind: route.LineL3})
		}
	}
	net.Run(4 * (m.Width + m.Height + 2))
	return got
}

// Broadcast floods a payload from origin to every free node (the pivot
// distribution of extension 3). It returns the number of nodes reached.
func Broadcast(m mesh.Mesh, blocked []bool, origin mesh.Coord) int {
	seen := make([]bool, m.Size())
	net := New(m, func(n *Node, msg Message) {
		i := m.Index(n.C)
		if blocked[i] || seen[i] {
			return
		}
		seen[i] = true
		var nbuf [4]mesh.Coord
		for _, nb := range m.Neighbors(nbuf[:0], n.C) {
			if !blocked[m.Index(nb)] && !seen[m.Index(nb)] {
				n.Send(nb, msg.Payload)
			}
		}
	})
	if !m.Contains(origin) || blocked[m.Index(origin)] {
		return 0
	}
	net.Inject(origin, struct{}{})
	net.Run(m.Size() + 2)
	count := 0
	for _, s := range seen {
		if s {
			count++
		}
	}
	return count
}

// regionMsg is a partially accumulated safety-level packet traveling
// along one row or column region (extension 2's information exchange).
type regionMsg struct {
	dir  mesh.Dir // travel direction
	reps []safety.Rep
}

// RegionKnowledge is what one node learned from the exchange: the
// safety levels of every other node in its row region and column
// region (the regions are the maximal fault-free runs through the
// node).
type RegionKnowledge struct {
	Row []safety.Rep
	Col []safety.Rep
}

// ExchangeRegions runs the paper's extension-2 information exchange on
// the simulated network: within every region of every row and column,
// two partially accumulated packets start from the region's two ends
// and push toward the other end; when both have passed, every node of
// the region knows every region member's extended safety level. The
// per-node knowledge is returned for comparison against the direct
// computation.
func ExchangeRegions(m mesh.Mesh, blocked []bool, levels *safety.Grid) map[mesh.Coord]*RegionKnowledge {
	know := make(map[mesh.Coord]*RegionKnowledge)
	at := func(c mesh.Coord) *RegionKnowledge {
		k := know[c]
		if k == nil {
			k = &RegionKnowledge{}
			know[c] = k
		}
		return k
	}
	free := func(c mesh.Coord) bool {
		return m.Contains(c) && !blocked[m.Index(c)]
	}

	net := New(m, func(n *Node, msg Message) {
		rm, ok := msg.Payload.(regionMsg)
		if !ok || !free(n.C) {
			return
		}
		k := at(n.C)
		if rm.dir == mesh.East || rm.dir == mesh.West {
			k.Row = append(k.Row, rm.reps...)
		} else {
			k.Col = append(k.Col, rm.reps...)
		}
		next := n.C.Add(rm.dir.Offset())
		if free(next) {
			n.Send(next, regionMsg{
				dir:  rm.dir,
				reps: append(append([]safety.Rep(nil), rm.reps...), safety.Rep{C: n.C, L: levels.At(n.C)}),
			})
		}
	})

	// Seed a wave at each region end: a free node whose neighbor
	// against the travel direction is blocked or off-mesh.
	for i := 0; i < m.Size(); i++ {
		c := m.CoordOf(i)
		if !free(c) {
			continue
		}
		for _, d := range mesh.Directions() {
			behind := c.Add(d.Opposite().Offset())
			if !free(behind) {
				net.Inject(c, regionMsg{dir: d})
			}
		}
	}
	net.Run(m.Width + m.Height + 2)
	return know
}
