package simnet

import (
	"math/rand"
	"sort"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/safety"
)

func TestNetworkMechanics(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	visits := make(map[mesh.Coord]int)
	net := New(m, func(n *Node, msg Message) {
		visits[n.C]++
		// Relay east once.
		next := n.C.Add(mesh.East.Offset())
		if m.Contains(next) && visits[n.C] == 1 {
			n.Send(next, msg.Payload)
		}
	})
	net.Inject(mesh.Coord{X: 0, Y: 2}, "hello")
	if !net.Run(10) {
		t.Fatal("network did not quiesce")
	}
	// The message relays along row 2: 4 deliveries.
	if net.Delivered() != 4 {
		t.Errorf("Delivered = %d, want 4", net.Delivered())
	}
	for x := 0; x < 4; x++ {
		if visits[mesh.Coord{X: x, Y: 2}] != 1 {
			t.Errorf("node (%d,2) visited %d times", x, visits[mesh.Coord{X: x, Y: 2}])
		}
	}
	if net.Rounds() == 0 {
		t.Error("rounds not counted")
	}
}

func TestNodeSendValidation(t *testing.T) {
	m := mesh.Mesh{Width: 3, Height: 3}
	net := New(m, nil)
	n := net.Node(mesh.Coord{X: 1, Y: 1})
	defer func() {
		if recover() == nil {
			t.Error("sending to a non-neighbor should panic")
		}
	}()
	n.Send(mesh.Coord{X: 2, Y: 2}, nil)
}

func TestRunNonQuiescent(t *testing.T) {
	m := mesh.Mesh{Width: 3, Height: 1}
	// Ping-pong forever between two nodes.
	net := New(m, func(n *Node, msg Message) {
		from := msg.From
		if from == n.C { // injected: pick a neighbor
			from = n.C.Add(mesh.East.Offset())
		}
		n.Send(from, msg.Payload)
	})
	net.Inject(mesh.Coord{X: 1, Y: 0}, 1)
	if net.Run(5) {
		t.Error("ping-pong protocol should not quiesce")
	}
}

// TestFormationMatchesDirect verifies the paper's distributed
// safety-level formation protocol computes exactly the levels the
// direct sweep produces, over random fault patterns and both fault
// models.
func TestFormationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		w := 6 + rng.Intn(20)
		h := 6 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		grids := [][]bool{
			fault.BuildBlocks(sc).BlockedGrid(),
			fault.BuildMCC(sc, fault.TypeOne).BlockedGrid(),
		}
		for gi, blocked := range grids {
			want := safety.Compute(m, blocked)
			got := FormationLevels(m, blocked)
			for i := 0; i < m.Size(); i++ {
				c := m.CoordOf(i)
				if blocked[i] {
					continue
				}
				if got[i] != want.At(c) {
					t.Fatalf("trial %d grid %d: level at %v = %v, want %v",
						trial, gi, c, got[i], want.At(c))
				}
			}
		}
	}
}

// TestDistributeMatchesDirect verifies the hop-by-hop boundary-line
// dissemination reaches exactly the nodes the direct contour
// computation assigns, with the same line tags.
func TestDistributeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		w := 6 + rng.Intn(20)
		h := 6 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		blocked := fault.BuildBlocks(sc).BlockedGrid()

		want := route.Lines(m, blocked)
		got := DistributeBoundaries(m, blocked)

		norm := func(tags []route.LineTag) []route.LineTag {
			out := append([]route.LineTag(nil), tags...)
			sort.Slice(out, func(i, j int) bool {
				a, b := out[i], out[j]
				if a.Kind != b.Kind {
					return a.Kind < b.Kind
				}
				if a.Obstacle.MinX != b.Obstacle.MinX {
					return a.Obstacle.MinX < b.Obstacle.MinX
				}
				if a.Obstacle.MinY != b.Obstacle.MinY {
					return a.Obstacle.MinY < b.Obstacle.MinY
				}
				if a.Obstacle.MaxX != b.Obstacle.MaxX {
					return a.Obstacle.MaxX < b.Obstacle.MaxX
				}
				return a.Obstacle.MaxY < b.Obstacle.MaxY
			})
			return out
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d nodes got info, want %d", trial, len(got), len(want))
		}
		for c, wtags := range want {
			gtags := norm(got[c])
			wn := norm(wtags)
			if len(gtags) != len(wn) {
				t.Fatalf("trial %d: node %v has %d tags, want %d", trial, c, len(gtags), len(wn))
			}
			for i := range wn {
				if gtags[i] != wn[i] {
					t.Fatalf("trial %d: node %v tag %d = %+v, want %+v", trial, c, i, gtags[i], wn[i])
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	blocked := make([]bool, m.Size())
	// Wall splitting the mesh into two halves.
	for y := 0; y < m.Height; y++ {
		blocked[m.Index(mesh.Coord{X: 4, Y: y})] = true
	}
	left := Broadcast(m, blocked, mesh.Coord{X: 0, Y: 0})
	if left != 4*8 {
		t.Errorf("left broadcast reached %d nodes, want 32", left)
	}
	right := Broadcast(m, blocked, mesh.Coord{X: 6, Y: 3})
	if right != 3*8 {
		t.Errorf("right broadcast reached %d nodes, want 24", right)
	}
	if got := Broadcast(m, blocked, mesh.Coord{X: 4, Y: 4}); got != 0 {
		t.Errorf("broadcast from blocked origin reached %d nodes, want 0", got)
	}
	if got := Broadcast(m, blocked, mesh.Coord{X: -1, Y: 0}); got != 0 {
		t.Errorf("broadcast from outside reached %d nodes, want 0", got)
	}
}

// TestExchangeRegionsComplete verifies extension 2's two-end exchange:
// after the protocol runs, every free node knows the extended safety
// level of every other node in its row region and column region, and
// nothing else.
func TestExchangeRegionsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		w := 6 + rng.Intn(14)
		h := 6 + rng.Intn(14)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		blocked := fault.BuildBlocks(sc).BlockedGrid()
		levels := safety.Compute(m, blocked)
		know := ExchangeRegions(m, blocked, levels)

		regionOf := func(c mesh.Coord, horizontal bool) []mesh.Coord {
			var run []mesh.Coord
			step := mesh.Coord{X: 1}
			if !horizontal {
				step = mesh.Coord{Y: 1}
			}
			// Walk back to the region start.
			start := c
			for {
				prev := mesh.Coord{X: start.X - step.X, Y: start.Y - step.Y}
				if !m.Contains(prev) || blocked[m.Index(prev)] {
					break
				}
				start = prev
			}
			for cur := start; m.Contains(cur) && !blocked[m.Index(cur)]; cur = cur.Add(step) {
				if cur != c {
					run = append(run, cur)
				}
			}
			return run
		}

		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if blocked[i] {
				if know[c] != nil {
					t.Fatalf("trial %d: blocked node %v received knowledge", trial, c)
				}
				continue
			}
			k := know[c]
			var rowGot, colGot []safety.Rep
			if k != nil {
				rowGot, colGot = k.Row, k.Col
			}
			for _, tc := range []struct {
				name string
				got  []safety.Rep
				want []mesh.Coord
			}{
				{"row", rowGot, regionOf(c, true)},
				{"col", colGot, regionOf(c, false)},
			} {
				if len(tc.got) != len(tc.want) {
					t.Fatalf("trial %d: %v %s knowledge has %d entries, want %d",
						trial, c, tc.name, len(tc.got), len(tc.want))
				}
				seen := make(map[mesh.Coord]safety.Level, len(tc.got))
				for _, r := range tc.got {
					seen[r.C] = r.L
				}
				for _, wc := range tc.want {
					lvl, ok := seen[wc]
					if !ok {
						t.Fatalf("trial %d: %v missing %s knowledge of %v", trial, c, tc.name, wc)
					}
					if lvl != levels.At(wc) {
						t.Fatalf("trial %d: %v has stale level for %v", trial, c, wc)
					}
				}
			}
		}
	}
}
