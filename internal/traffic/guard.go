package traffic

import "fmt"

// Invariant identifies one of the simulators' always-on self-checks.
// A violated invariant means the simulation itself is broken — its
// statistics are nonsense — so the run aborts with a *SimError instead
// of returning numbers.
type Invariant int

const (
	// InvariantConservation is packet conservation: every packet that
	// entered the system must be accounted for at the end —
	// injected = delivered + stuck + dropped + in-flight, counted over
	// all packets (warmup and preload included).
	InvariantConservation Invariant = iota + 1
	// InvariantLivelock is the hop budget: no packet may traverse more
	// links than the configured budget. Static minimal routing can
	// never exceed it, so a violation flags a circulating packet.
	// (Online degrade runs drop the offending packet with a reason
	// code instead — degradation livelock is an expected outcome
	// there, not a simulator bug.)
	InvariantLivelock
	// InvariantStall is the stalled-queue deadlock detector firing in
	// a configuration that provably cannot deadlock (per-quadrant
	// class channels with minimal routing): the stall must be a
	// simulator bug. Deadlocks in configurations where they are a
	// legitimate outcome keep being reported through Stats.Deadlocked.
	InvariantStall
)

// String names the invariant.
func (i Invariant) String() string {
	switch i {
	case InvariantConservation:
		return "packet conservation"
	case InvariantLivelock:
		return "hop budget (livelock)"
	case InvariantStall:
		return "deadlock freedom"
	default:
		return "invalid"
	}
}

// SimError is a structured invariant-violation report from a simulator
// run. The statistics accumulated up to the violation are not returned:
// a run that trips an invariant has produced garbage.
type SimError struct {
	Sim    string // "traffic" or "wormhole"
	Kind   Invariant
	Cycle  int
	Detail string
}

// Error implements the error interface.
func (e *SimError) Error() string {
	return fmt.Sprintf("%s: %v invariant violated at cycle %d: %s", e.Sim, e.Kind, e.Cycle, e.Detail)
}
