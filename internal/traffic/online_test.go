package traffic

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
)

// goldenFaults replicates the fault list behind goldenGrid so the
// online runtime can replay it as InitialFaults.
func goldenFaults(t *testing.T) (mesh.Mesh, []mesh.Coord, []bool) {
	t.Helper()
	m := mesh.Mesh{Width: 16, Height: 16}
	faults, err := fault.RandomFaults(m, 12, rand.New(rand.NewSource(9)), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	return m, faults, fault.BuildBlocks(sc).BlockedGrid()
}

// TestRunOnlineEmptyScheduleMatchesStatic is the bit-for-bit guard: an
// online run with no scheduled events must reproduce the static run
// exactly under PolicyReroute and PolicyDrop, for every golden
// configuration, because the online machinery may not perturb the RNG
// stream or the scheduling order. PolicyDegrade keeps the identical
// injection stream but rescues packets the static run strands on the
// initial faults, so it must deliver at least as many.
func TestRunOnlineEmptyScheduleMatchesStatic(t *testing.T) {
	m, faults, blocked := goldenFaults(t)
	wu := WuRouting(route.NewRouter(m, blocked))
	var free []mesh.Coord
	for i := 0; i < m.Size(); i++ {
		if !blocked[i] {
			free = append(free, m.CoordOf(i))
		}
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"wu_unbounded", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.05, Cycles: 120, Warmup: 30, Seed: 1}},
		{"wu_capacity2", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.10, Cycles: 120, Warmup: 30, Seed: 2, QueueCapacity: 2}},
		{"wu_class_cap1", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.10, Cycles: 120, Warmup: 30, Seed: 3, QueueCapacity: 1, ClassChannels: true}},
		{"wu_hotspot", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 4, HotspotFraction: 0.3, Hotspot: mesh.Coord{X: 1, Y: 1}}},
		{"wu_guaranteed", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 5, GuaranteedOnly: true}},
		{"oracle", Config{M: m, Blocked: blocked, Route: OracleRouting(m, blocked), InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 6}},
		{"xy", Config{M: m, Blocked: blocked, Route: XYRouting(m, blocked), InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 7}},
		{"preload", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.02, Cycles: 80, Warmup: 0, Seed: 8,
			Preload: []Flow{
				{Src: free[0], Dst: free[len(free)-1]},
				{Src: free[len(free)-1], Dst: free[1]},
			}}},
	}
	for _, c := range configs {
		want, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: static run: %v", c.name, err)
		}
		for _, p := range []Policy{PolicyReroute, PolicyDegrade, PolicyDrop} {
			got, ost, err := RunOnline(c.cfg, &Online{InitialFaults: faults, Policy: p})
			if err != nil {
				t.Fatalf("%s/%v: online run: %v", c.name, p, err)
			}
			if p == PolicyDegrade {
				// Same injection stream (rescued packets occupy
				// different queues, so the accepted/rejected split may
				// shift, but the attempts are identical), and strictly
				// better delivery.
				if got.Injected+got.Rejected != want.Injected+want.Rejected {
					t.Errorf("%s/%v: injection stream perturbed: %d attempts, static %d",
						c.name, p, got.Injected+got.Rejected, want.Injected+want.Rejected)
				}
				if got.Delivered < want.Delivered || got.Undeliverable > want.Undeliverable {
					t.Errorf("%s/%v: degrade delivered %d (stranded %d), static %d (%d); degrade must not do worse",
						c.name, p, got.Delivered, got.Undeliverable, want.Delivered, want.Undeliverable)
				}
				if want.Undeliverable > 0 && ost.Degraded == 0 {
					t.Errorf("%s/%v: static run strands %d packets but degrade took no detours", c.name, p, want.Undeliverable)
				}
			} else if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%v: online stats diverged from static run\n got: %+v\nwant: %+v", c.name, p, got, want)
			}
			if ost.Events != 0 || ost.Rebuilds != 0 || ost.Rerouted != 0 {
				t.Errorf("%s/%v: zero-event run reported fault activity: %+v", c.name, p, ost)
			}
			if p != PolicyDegrade && (ost.Dropped() != 0 || ost.Degraded != 0) {
				t.Errorf("%s/%v: minimal policy dropped or degraded packets with no events: %+v", c.name, p, ost)
			}
			if ost.DeliveredTotal < got.Delivered {
				t.Errorf("%s/%v: total ledger delivered %d < measured %d", c.name, p, ost.DeliveredTotal, got.Delivered)
			}
		}
	}
}

// TestRunOnlinePolicies pins the three policies against a surgically
// placed fault. A single packet is preloaded from (0,0) to (7,0) on a
// fault-free 8x8 mesh; at the start of cycle 2 it sits queued on the
// link (2,0)->(3,0), and exactly then (3,0) dies. The only minimal
// path runs along row 0, so minimal rerouting is stuck: reroute drops
// the packet with a reason code, degrade detours through (2,1) and
// delivers it in D+2 hops, drop discards it.
func TestRunOnlinePolicies(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 7, Y: 0}
	base := Config{
		M:       m,
		Blocked: make([]bool, m.Size()),
		Route:   WuRouting(route.NewRouter(m, make([]bool, m.Size()))),
		Cycles:  40,
		Seed:    1,
		Preload: []Flow{{Src: src, Dst: dst}},
	}
	sched, err := inject.Parse(m, 40, 1, "fail@2:3,0")
	if err != nil {
		t.Fatal(err)
	}
	online := func(p Policy) *Online {
		return &Online{
			Schedule: sched,
			Policy:   p,
			Rebuild: func(b []bool) RoutingFunc {
				return WuRouting(route.NewRouter(m, b))
			},
		}
	}

	t.Run("reroute", func(t *testing.T) {
		st, ost, err := RunOnline(base, online(PolicyReroute))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 0 || ost.DroppedNoRoute != 1 || ost.Dropped() != 1 {
			t.Errorf("reroute: delivered %d, stats %+v; want the packet dropped with no route", st.Delivered, ost)
		}
	})
	t.Run("degrade", func(t *testing.T) {
		cfg := base
		var hops, detours int
		cfg.OnDeliver = func(s, d mesh.Coord, h, k int) {
			if s != src || d != dst {
				t.Errorf("delivered unexpected packet %v->%v", s, d)
			}
			hops, detours = h, k
		}
		st, ost, err := RunOnline(cfg, online(PolicyDegrade))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 1 || ost.Dropped() != 0 {
			t.Fatalf("degrade: delivered %d, stats %+v; want the packet delivered", st.Delivered, ost)
		}
		// Theorem 1a: each Extension-1 detour costs exactly two hops.
		if detours != 1 || hops != mesh.Distance(src, dst)+2*detours {
			t.Errorf("degrade: %d hops with %d detours, want D+2k = %d", hops, detours, mesh.Distance(src, dst)+2)
		}
		if ost.Rerouted != 1 || ost.Degraded != 1 || ost.DetourHops != 1 {
			t.Errorf("degrade: counters %+v; want 1 reroute, 1 degraded packet, 1 detour hop", ost)
		}
		// One detour lands in the second stretch bucket: 9/7 ~ 1.29.
		if ost.StretchHist[1] != 1 {
			t.Errorf("degrade: stretch histogram %v; want the packet in bucket 1", ost.StretchHist)
		}
	})
	t.Run("drop", func(t *testing.T) {
		st, ost, err := RunOnline(base, online(PolicyDrop))
		if err != nil {
			t.Fatal(err)
		}
		if st.Delivered != 0 || ost.DroppedPolicy != 1 || ost.Dropped() != 1 {
			t.Errorf("drop: delivered %d, stats %+v; want the packet discarded by policy", st.Delivered, ost)
		}
	})
}

// TestRunOnlinePathStretchProperty checks the path-length invariant on
// a busy online run: every delivered packet's hop count equals its
// Manhattan distance plus exactly two hops per detour, and minimal
// policies take no detours at all.
func TestRunOnlinePathStretchProperty(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	faults := []mesh.Coord{{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 8, Y: 8}}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	sched, err := inject.Transient(m, 300, 0.05, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule, pick another seed")
	}
	for _, p := range []Policy{PolicyReroute, PolicyDegrade} {
		delivered := 0
		cfg := Config{
			M:              m,
			Blocked:        blocked,
			Route:          WuRouting(route.NewRouter(m, blocked)),
			InjectionRate:  0.08,
			Cycles:         250,
			Warmup:         50,
			Seed:           2,
			GuaranteedOnly: true,
			OnDeliver: func(src, dst mesh.Coord, hops, detours int) {
				delivered++
				if want := mesh.Distance(src, dst) + 2*detours; hops != want {
					t.Errorf("%v: packet %v->%v took %d hops with %d detours, want %d", p, src, dst, hops, detours, want)
				}
				if p == PolicyReroute && detours != 0 {
					t.Errorf("reroute: packet %v->%v took %d detours under a minimal-only policy", src, dst, detours)
				}
			},
		}
		st, ost, err := RunOnline(cfg, &Online{
			InitialFaults: faults,
			Schedule:      sched,
			Policy:        p,
			Rebuild: func(b []bool) RoutingFunc {
				return WuRouting(route.NewRouter(m, b))
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if ost.Events == 0 {
			t.Fatalf("%v: no fault events fired", p)
		}
		if delivered == 0 || delivered != ost.DeliveredTotal {
			t.Errorf("%v: OnDeliver saw %d packets, ledger says %d", p, delivered, ost.DeliveredTotal)
		}
		// Re-check conservation externally against the same ledger the
		// simulator enforces internally.
		if got := ost.DeliveredTotal + ost.StuckTotal + ost.Dropped() + st.InFlight; got != ost.Spawned {
			t.Errorf("%v: conservation: %d spawned, %d accounted (%+v)", p, ost.Spawned, got, ost)
		}
	}
}

// pingPongRoute bounces any packet between (0,0) and (1,0) forever — a
// deliberately broken routing function for exercising the guards.
func pingPongRoute(u, d mesh.Coord) (mesh.Coord, error) {
	if u == (mesh.Coord{X: 0, Y: 0}) {
		return mesh.Coord{X: 1, Y: 0}, nil
	}
	return mesh.Coord{X: 0, Y: 0}, nil
}

func TestRunLivelockGuard(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	cfg := Config{
		M:         m,
		Blocked:   make([]bool, m.Size()),
		Route:     pingPongRoute,
		Cycles:    100,
		Seed:      1,
		HopBudget: 10,
		Preload:   []Flow{{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 3, Y: 3}}},
	}

	// Static run: a circulating packet is a simulator (or routing) bug
	// and aborts the run.
	_, err := Run(cfg)
	var se *SimError
	if !errors.As(err, &se) || se.Kind != InvariantLivelock {
		t.Fatalf("static livelock: got %v, want a %v SimError", err, InvariantLivelock)
	}
	if se.Sim != "traffic" || se.Error() == "" {
		t.Errorf("malformed SimError: %+v", se)
	}

	// Online run: livelock is a legal degradation outcome; the packet
	// is dropped and the ledger still balances.
	st, ost, err := RunOnline(cfg, &Online{})
	if err != nil {
		t.Fatalf("online livelock: %v", err)
	}
	if ost.DroppedLivelock != 1 || st.Delivered != 0 {
		t.Errorf("online livelock: %+v; want one livelock drop", ost)
	}
	if got := ost.DeliveredTotal + ost.StuckTotal + ost.Dropped() + st.InFlight; got != ost.Spawned {
		t.Errorf("conservation after livelock drop: %d spawned, %d accounted", ost.Spawned, got)
	}
}

func TestRunStallGuard(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	dst := mesh.Coord{X: 3, Y: 3}
	cfg := Config{
		M:             m,
		Blocked:       make([]bool, m.Size()),
		Route:         pingPongRoute,
		Cycles:        50,
		Seed:          1,
		QueueCapacity: 1,
		ClassChannels: true,
		// Two same-class packets each hold the capacity-1 channel the
		// other needs: instant mutual backpressure. Class channels
		// with minimal routing cannot do this, so the guard must call
		// it a simulator bug, not a deadlock.
		Preload: []Flow{
			{Src: mesh.Coord{X: 0, Y: 0}, Dst: dst},
			{Src: mesh.Coord{X: 1, Y: 0}, Dst: dst},
		},
	}
	_, err := Run(cfg)
	var se *SimError
	if !errors.As(err, &se) || se.Kind != InvariantStall {
		t.Fatalf("stall guard: got %v, want a %v SimError", err, InvariantStall)
	}

	// The same pattern without class channels is an honest deadlock
	// report, not an invariant violation.
	cfg.ClassChannels = false
	st, err := Run(cfg)
	if err != nil || !st.Deadlocked {
		t.Errorf("plain finite-buffer stall: err %v, deadlocked %v; want a Deadlocked report", err, st.Deadlocked)
	}
}

// TestRunOnlineErrors covers the online-specific configuration errors.
func TestRunOnlineErrors(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	blocked := make([]bool, m.Size())
	cfg := Config{M: m, Blocked: blocked, Route: pingPongRoute, InjectionRate: 0.01, Cycles: 10, Seed: 1}

	if _, _, err := RunOnline(cfg, &Online{Policy: Policy(9)}); err == nil {
		t.Error("invalid policy should fail")
	}
	sched := inject.Schedule{{Cycle: 1, Node: mesh.Coord{X: 2, Y: 2}, Op: inject.Fail}}
	if _, _, err := RunOnline(cfg, &Online{Schedule: sched}); err == nil {
		t.Error("schedule without Rebuild should fail")
	}
	if _, _, err := RunOnline(cfg, &Online{InitialFaults: []mesh.Coord{{X: 2, Y: 2}}}); err == nil {
		t.Error("initial faults that do not reproduce the blocked grid should fail")
	}
	if cfg.HopBudget = -1; true {
		if _, _, err := RunOnline(cfg, nil); err == nil {
			t.Error("negative hop budget should fail")
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{
		{PolicyReroute, "reroute"}, {PolicyDegrade, "degrade"}, {PolicyDrop, "drop"}, {Policy(0), "invalid"},
	} {
		if got := c.p.String(); got != c.want {
			t.Errorf("Policy(%d).String() = %q, want %q", c.p, got, c.want)
		}
		if c.want == "invalid" {
			continue
		}
		p, err := ParsePolicy(c.want)
		if err != nil || p != c.p {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.want, p, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("unknown policy name should fail")
	}
	_ = fmt.Sprintf("%v", PolicyReroute)
}
