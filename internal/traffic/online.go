// Online fault injection: the simulators can consume a fault schedule
// mid-run, updating fault regions and safety levels incrementally
// through the dynamic tracker and handling in-flight packets whose
// next hop just died with a configurable policy.
package traffic

import (
	"fmt"

	"extmesh/internal/mesh"
	"extmesh/internal/metrics"

	"extmesh/internal/inject"
)

// Policy selects what happens to an in-flight packet whose next hop
// just died.
type Policy int

const (
	// PolicyReroute recomputes the route from the packet's current
	// node against the post-fault information (the Wu protocol, the
	// oracle or the XY baseline, whichever the run uses); a packet
	// with no surviving minimal next hop is dropped with a reason
	// code.
	PolicyReroute Policy = iota + 1
	// PolicyDegrade reroutes, and when no minimal hop survives falls
	// back to the paper's Extension-1 sub-minimal detour through a
	// spare neighbor (safe spares first), adding exactly two hops per
	// detour: a delivered packet's path has length D(s,d)+2k for k
	// detours.
	PolicyDegrade
	// PolicyDrop discards any packet whose next hop died — the
	// fail-stop baseline the other policies are measured against.
	PolicyDrop
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyReroute:
		return "reroute"
	case PolicyDegrade:
		return "degrade"
	case PolicyDrop:
		return "drop"
	default:
		return "invalid"
	}
}

func (p Policy) valid() bool {
	return p >= PolicyReroute && p <= PolicyDrop
}

// ParsePolicy resolves a policy name ("reroute", "degrade", "drop").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reroute":
		return PolicyReroute, nil
	case "degrade":
		return PolicyDegrade, nil
	case "drop":
		return PolicyDrop, nil
	default:
		return 0, fmt.Errorf("traffic: unknown fault policy %q (want reroute, degrade or drop)", s)
	}
}

// Online configures mid-run fault injection for a simulation run.
type Online struct {
	// InitialFaults is the pre-run fault list; replaying it through
	// the dynamic tracker must reproduce Config.Blocked exactly (the
	// run errors out otherwise). Online injection therefore works on
	// the block fault model, whose regions the tracker maintains.
	InitialFaults []mesh.Coord

	// Schedule is the fault arrival/recovery timeline, applied at the
	// start of each event's cycle (before injection). An empty
	// schedule reproduces the static run bit for bit, except that
	// PolicyDegrade also rescues packets stuck on the initial faults.
	Schedule inject.Schedule

	// Policy handles in-flight packets whose next hop died; the zero
	// value means PolicyReroute.
	Policy Policy

	// Rebuild returns the routing function for an updated fault-region
	// grid. It is called once per cycle that changed the fault state
	// (the grids passed in are fresh copies the callee may retain).
	// Required when Schedule is non-empty.
	Rebuild func(blocked []bool) RoutingFunc
}

// OnlineStats reports the fault-injection side of a run. Unlike Stats,
// whose packet counters cover only the measured window, these counters
// cover every packet (warmup and preload included) so that packet
// conservation — Spawned = DeliveredTotal + StuckTotal + Dropped() +
// Stats.InFlight — holds exactly; the run aborts with a *SimError if
// it does not.
type OnlineStats struct {
	Events   int // schedule events applied
	Skipped  int // schedule events skipped as inapplicable
	Rebuilds int // cycles whose events changed the fault state

	Spawned        int // packets that entered the system
	DeliveredTotal int // packets delivered
	StuckTotal     int // packets abandoned because routing got stuck

	Rerouted   int // packets pulled off a dead link and re-enqueued
	Degraded   int // packets that took at least one spare-neighbor detour
	DetourHops int // total distance-increasing hops taken

	DroppedNodeFailed int // packet's current node (or worm's source/chain) died
	DroppedDestFailed int // packet's destination died
	DroppedNoRoute    int // policy found no surviving move off a dead link
	DroppedPolicy     int // PolicyDrop discards
	DroppedLivelock   int // hop budget exceeded under degradation

	// StretchHist buckets delivered packets by path stretch
	// hops/D(s,d): bucket i counts stretches in [1+i/4, 1+(i+1)/4),
	// with the last bucket open-ended. Minimal paths land in bucket 0;
	// each Extension-1 detour pushes a packet right.
	StretchHist [8]int
}

// Dropped sums the per-reason drop counters.
func (o *OnlineStats) Dropped() int {
	return o.DroppedNodeFailed + o.DroppedDestFailed + o.DroppedNoRoute +
		o.DroppedPolicy + o.DroppedLivelock
}

// Publish adds the run's counters to the process-wide metrics registry
// under online_* names, so the same instruments that back a CLI run's
// printed ledger feed a daemon's /metrics exposition. Both simulators
// call it once per completed online run; counters accumulate across
// runs, as counters do.
func (o *OnlineStats) Publish() {
	r := metrics.Default()
	add := func(name string, v int) {
		if v > 0 {
			r.Counter(name).Add(uint64(v))
		}
	}
	add("online_events_applied_total", o.Events)
	add("online_events_skipped_total", o.Skipped)
	add("online_rebuilds_total", o.Rebuilds)
	add("online_spawned_total", o.Spawned)
	add("online_delivered_total", o.DeliveredTotal)
	add("online_stuck_total", o.StuckTotal)
	add("online_rerouted_total", o.Rerouted)
	add("online_degraded_total", o.Degraded)
	add("online_detour_hops_total", o.DetourHops)
	add("online_dropped_node_failed_total", o.DroppedNodeFailed)
	add("online_dropped_dest_failed_total", o.DroppedDestFailed)
	add("online_dropped_no_route_total", o.DroppedNoRoute)
	add("online_dropped_policy_total", o.DroppedPolicy)
	add("online_dropped_livelock_total", o.DroppedLivelock)
}

// RecordDelivery counts one delivered packet in the total ledger and
// its stretch histogram; shared by the store-and-forward and wormhole
// simulators.
func (o *OnlineStats) RecordDelivery(hops, dist int) {
	o.DeliveredTotal++
	o.StretchHist[stretchBucket(hops, dist)]++
}

// stretchBucket maps a delivered packet's hop count to its StretchHist
// bucket.
func stretchBucket(hops, dist int) int {
	s := float64(hops)/float64(max(1, dist)) - 1
	b := int(s * 4)
	if b < 0 {
		b = 0
	}
	if b > 7 {
		b = 7
	}
	return b
}

// DefaultHopBudget is the per-packet link-traversal budget when the
// configuration does not set one: generous enough for any minimal
// route (at most W+H-2 hops) plus a long tail of Extension-1 detours,
// tight enough to flag a circulating packet quickly.
func DefaultHopBudget(m mesh.Mesh) int {
	return 4 * (m.Width + m.Height)
}
