package traffic

import (
	"math"
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
)

func faultFreeConfig(m mesh.Mesh) Config {
	blocked := make([]bool, m.Size())
	return Config{
		M:             m,
		Blocked:       blocked,
		Route:         WuRouting(route.NewRouter(m, blocked)),
		InjectionRate: 0.02,
		Cycles:        200,
		Warmup:        50,
		Seed:          1,
	}
}

func TestConfigValidate(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	base := faultFreeConfig(m)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny mesh", func(c *Config) { c.M = mesh.Mesh{Width: 1, Height: 8} }},
		{"grid mismatch", func(c *Config) { c.Blocked = make([]bool, 3) }},
		{"nil route", func(c *Config) { c.Route = nil }},
		{"negative rate", func(c *Config) { c.InjectionRate = -0.1 }},
		{"huge rate", func(c *Config) { c.InjectionRate = 1.5 }},
		{"zero cycles", func(c *Config) { c.Cycles = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
			if _, err := Run(cfg); err == nil {
				t.Error("Run should reject invalid config")
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunFaultFree(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	cfg := faultFreeConfig(m)
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Injected == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.Undeliverable != 0 {
		t.Errorf("fault-free mesh dropped %d packets", st.Undeliverable)
	}
	// Monotone routing is always minimal: stretch exactly 1.
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("AvgStretch = %v, want 1.0", st.AvgStretch)
	}
	// One cycle per hop is a lower bound on latency.
	if st.AvgLatency < st.AvgHops {
		t.Errorf("latency %v below hop count %v", st.AvgLatency, st.AvgHops)
	}
	if st.Delivered+st.InFlight+st.Undeliverable < st.Injected {
		t.Errorf("packet accounting broken: %+v", st)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput = %v", st.Throughput)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	cfg := faultFreeConfig(m)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seed produced identical stats")
	}
}

func TestCongestionIncreasesLatency(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	low := faultFreeConfig(m)
	low.InjectionRate = 0.01
	high := faultFreeConfig(m)
	high.InjectionRate = 0.6
	high.Cycles = 200

	ls, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	if hs.AvgLatency <= ls.AvgLatency {
		t.Errorf("congested latency %v not above light-load latency %v", hs.AvgLatency, ls.AvgLatency)
	}
	if hs.MaxQueue <= ls.MaxQueue {
		t.Errorf("congested max queue %d not above light-load %d", hs.MaxQueue, ls.MaxQueue)
	}
}

func TestRunWithFaultsGuaranteedOracle(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	rng := rand.New(rand.NewSource(4))
	faults, err := fault.RandomFaults(m, 20, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	cfg := Config{
		M:              m,
		Blocked:        blocked,
		Route:          OracleRouting(m, blocked),
		InjectionRate:  0.02,
		Cycles:         300,
		Warmup:         50,
		Seed:           9,
		GuaranteedOnly: true,
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if st.Undeliverable != 0 {
		t.Errorf("oracle dropped %d guaranteed packets", st.Undeliverable)
	}
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("oracle stretch = %v, want 1.0", st.AvgStretch)
	}
}

func TestRunWithFaultsWuRouting(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	rng := rand.New(rand.NewSource(8))
	faults, err := fault.RandomFaults(m, 18, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	blocked := fault.BuildBlocks(sc).BlockedGrid()
	cfg := Config{
		M:             m,
		Blocked:       blocked,
		Route:         WuRouting(route.NewRouter(m, blocked)),
		InjectionRate: 0.02,
		Cycles:        300,
		Warmup:        50,
		Seed:          9,
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// Everything Wu's protocol delivers is minimal.
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("Wu stretch = %v, want 1.0", st.AvgStretch)
	}
	// Some pairs may legitimately be unreachable or unguaranteed; the
	// sum must still account for every measured packet.
	if st.Delivered+st.Undeliverable+st.InFlight < st.Injected {
		t.Errorf("packet accounting broken: %+v", st)
	}
}

func TestZeroInjection(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	cfg := faultFreeConfig(m)
	cfg.InjectionRate = 0
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected != 0 || st.Delivered != 0 {
		t.Errorf("zero-rate run produced traffic: %+v", st)
	}
}

func TestFullyBlockedMesh(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	blocked := make([]bool, m.Size())
	for i := range blocked {
		blocked[i] = true
	}
	blocked[0] = false // a single free node cannot form a pair
	cfg := faultFreeConfig(m)
	cfg.Blocked = blocked
	if _, err := Run(cfg); err == nil {
		t.Error("run with fewer than two usable nodes should fail")
	}
}

func TestXYRouting(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	blocked := make([]bool, m.Size())
	cfg := faultFreeConfig(m)
	cfg.Route = XYRouting(m, blocked)
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Undeliverable != 0 || math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("fault-free XY routing should be perfect: %+v", st)
	}

	// With faults XY routing strands packets Wu's protocol delivers.
	rng := rand.New(rand.NewSource(6))
	faults, err := fault.RandomFaults(m, 14, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	fb := fault.BuildBlocks(sc).BlockedGrid()

	xy := cfg
	xy.Blocked = fb
	xy.Route = XYRouting(m, fb)
	xy.GuaranteedOnly = true
	xy.InjectionRate = 0.03
	xys, err := Run(xy)
	if err != nil {
		t.Fatal(err)
	}
	wu := xy
	wu.Route = WuRouting(route.NewRouter(m, fb))
	wus, err := Run(wu)
	if err != nil {
		t.Fatal(err)
	}
	if xys.Undeliverable == 0 {
		t.Error("XY routing should strand some packets among faults")
	}
	if wus.Undeliverable >= xys.Undeliverable {
		t.Errorf("Wu (%d stranded) should beat XY (%d stranded)", wus.Undeliverable, xys.Undeliverable)
	}
}

func TestFiniteBuffersBackpressure(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	cfg := faultFreeConfig(m)
	cfg.QueueCapacity = 2
	cfg.InjectionRate = 0.4
	cfg.Cycles = 150
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxQueue > cfg.QueueCapacity {
		t.Errorf("queue grew to %d beyond capacity %d", st.MaxQueue, cfg.QueueCapacity)
	}
	if st.Delivered == 0 {
		t.Error("no packets delivered under backpressure")
	}
	if st.Rejected == 0 {
		t.Error("heavy load with tiny buffers should reject some injections")
	}
	if math.Abs(st.AvgStretch-1.0) > 1e-9 {
		t.Errorf("stretch = %v, want 1.0", st.AvgStretch)
	}
	if st.Deadlocked {
		// Monotone quadrant routing can deadlock across opposing
		// flows; with capacity 2 at rate 0.4 it may or may not. Either
		// outcome is legal, but a deadlocked run must stop with queued
		// packets.
		if st.InFlight == 0 {
			t.Error("deadlock reported with empty queues")
		}
	}
	if err := (Config{QueueCapacity: -1}).Validate(); err == nil {
		t.Error("negative capacity should fail validation")
	}
}

// deadlockSquare preloads four packets around the unit square
// (0,0)-(1,1), one per quadrant class. With class-rotating routing
// each packet's first output channel is exactly the channel the next
// packet needs: (0,0)E -> (1,0)N -> (1,1)W -> (0,1)S -> (0,0)E.
func deadlockSquare() []Flow {
	return []Flow{
		{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 1, Y: 1}}, // NE: east then north
		{Src: mesh.Coord{X: 1, Y: 0}, Dst: mesh.Coord{X: 0, Y: 1}}, // NW: north then west
		{Src: mesh.Coord{X: 1, Y: 1}, Dst: mesh.Coord{X: 0, Y: 0}}, // SW: west then south
		{Src: mesh.Coord{X: 0, Y: 1}, Dst: mesh.Coord{X: 1, Y: 0}}, // SE: south then east
	}
}

// rotatingRoute prefers a different first direction per quadrant (E
// for NE, N for NW, W for SW, S for SE) — the turn pattern that closes
// the four-channel cycle around the unit square.
func rotatingRoute(m mesh.Mesh) RoutingFunc {
	return func(u, d mesh.Coord) (mesh.Coord, error) {
		if u == d {
			return d, nil
		}
		var first, second mesh.Dir
		switch mesh.Quadrant(u, d) {
		case 1:
			first, second = mesh.East, mesh.North
		case 2:
			first, second = mesh.North, mesh.West
		case 3:
			first, second = mesh.West, mesh.South
		default:
			first, second = mesh.South, mesh.East
		}
		for _, dir := range []mesh.Dir{first, second} {
			n := u.Add(dir.Offset())
			if m.Contains(n) && mesh.Distance(n, d) < mesh.Distance(u, d) {
				return n, nil
			}
		}
		return mesh.Coord{}, &route.StuckError{At: u, To: d}
	}
}

// TestTurnCycleDeadlock constructs the canonical four-packet turn
// cycle with capacity-1 shared channels and verifies it deadlocks;
// enabling per-quadrant class channels dissolves the cycle and all
// four packets deliver.
func TestTurnCycleDeadlock(t *testing.T) {
	m := mesh.Mesh{Width: 3, Height: 3}
	blocked := make([]bool, m.Size())
	base := Config{
		M:             m,
		Blocked:       blocked,
		Route:         rotatingRoute(m),
		InjectionRate: 0,
		Cycles:        50,
		Warmup:        0,
		Seed:          1,
		QueueCapacity: 1,
		Preload:       deadlockSquare(),
	}

	st, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatalf("shared channels should deadlock: %+v", st)
	}
	if st.Delivered != 0 {
		t.Fatalf("deadlocked run delivered %d packets", st.Delivered)
	}
	if st.InFlight != 4 {
		t.Fatalf("deadlocked run should strand all 4 packets: %+v", st)
	}

	vc := base
	vc.ClassChannels = true
	st, err = Run(vc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("class channels should not deadlock: %+v", st)
	}
	if st.Delivered != 4 {
		t.Fatalf("class channels delivered %d/4", st.Delivered)
	}
	if st.AvgStretch != 1.0 {
		t.Fatalf("class-channel delivery not minimal: %+v", st)
	}
}

// TestClassChannelsNeverDeadlock hammers small meshes with capacity-1
// buffers under heavy uniform load: with per-quadrant class channels
// the run never deadlocks (the per-class dependency graphs are
// acyclic).
func TestClassChannelsNeverDeadlock(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		m := mesh.Mesh{Width: 6, Height: 6}
		blocked := make([]bool, m.Size())
		cfg := Config{
			M:             m,
			Blocked:       blocked,
			Route:         WuRouting(route.NewRouter(m, blocked)),
			InjectionRate: 0.8,
			Cycles:        150,
			Warmup:        0,
			Seed:          seed,
			QueueCapacity: 1,
			ClassChannels: true,
		}
		st, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("seed %d: class channels deadlocked: %+v", seed, st)
		}
		if st.Delivered == 0 {
			t.Fatalf("seed %d: nothing delivered", seed)
		}
	}
}

func TestPreloadValidation(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	cfg := faultFreeConfig(m)
	cfg.Preload = []Flow{{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 0, Y: 0}}}
	if _, err := Run(cfg); err == nil {
		t.Error("self-flow preload should fail")
	}
	cfg.Preload = []Flow{{Src: mesh.Coord{X: 9, Y: 0}, Dst: mesh.Coord{X: 0, Y: 0}}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-mesh preload should fail")
	}
}

func TestHotspotTraffic(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	uniform := faultFreeConfig(m)
	uniform.InjectionRate = 0.05
	uniform.Cycles = 250

	hot := uniform
	hot.HotspotFraction = 0.5
	hot.Hotspot = m.Center()

	us, err := Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Delivered == 0 {
		t.Fatal("hotspot run delivered nothing")
	}
	// Concentrating half the traffic on one ejection point congests
	// the center: queues grow beyond the uniform case.
	if hs.MaxQueue <= us.MaxQueue {
		t.Errorf("hotspot max queue %d not above uniform %d", hs.MaxQueue, us.MaxQueue)
	}

	bad := uniform
	bad.HotspotFraction = 1.5
	if _, err := Run(bad); err == nil {
		t.Error("bad fraction should fail")
	}
	bad = uniform
	bad.HotspotFraction = 0.5
	bad.Hotspot = mesh.Coord{X: -1, Y: 0}
	if _, err := Run(bad); err == nil {
		t.Error("bad hotspot should fail")
	}
}
