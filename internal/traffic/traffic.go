// Package traffic is a discrete-time store-and-forward network
// simulator for faulty 2-D meshes: the communication-subsystem
// evaluation layer the paper's introduction motivates. Packets are
// injected under uniform random traffic, forwarded one link per cycle
// through per-link FIFO queues, and routed by a pluggable per-hop
// routing function (Wu's limited-information protocol or the
// full-information oracle), yielding latency and throughput under
// increasing load and fault pressure.
package traffic

import (
	"fmt"
	"math/rand"
	"slices"

	"extmesh/internal/inject"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/wang"
)

// RoutingFunc returns the next hop for a packet at u heading for d.
// It must return an error when no usable move exists.
type RoutingFunc func(u, d mesh.Coord) (mesh.Coord, error)

// WuRouting adapts a route.Router to the simulator.
func WuRouting(r *route.Router) RoutingFunc {
	return r.NextHop
}

// XYRouting returns the classic dimension-ordered routing function: X
// first, then Y, with no fault information at all. It is the
// fault-intolerant baseline — deterministic and minimal in fault-free
// meshes, but stuck at the first fault region in its fixed path.
func XYRouting(m mesh.Mesh, blocked []bool) RoutingFunc {
	return func(u, d mesh.Coord) (mesh.Coord, error) {
		if u == d {
			return d, nil
		}
		var n mesh.Coord
		switch {
		case d.X > u.X:
			n = mesh.Coord{X: u.X + 1, Y: u.Y}
		case d.X < u.X:
			n = mesh.Coord{X: u.X - 1, Y: u.Y}
		case d.Y > u.Y:
			n = mesh.Coord{X: u.X, Y: u.Y + 1}
		default:
			n = mesh.Coord{X: u.X, Y: u.Y - 1}
		}
		if !m.Contains(n) || blocked[m.Index(n)] {
			return mesh.Coord{}, &route.StuckError{At: u, To: d}
		}
		return n, nil
	}
}

// OracleRouting returns a full-information routing function over the
// blocked grid. Reachability DP grids are memoized per destination in
// a shared, concurrency-safe wang.ReachCache.
func OracleRouting(m mesh.Mesh, blocked []bool) RoutingFunc {
	cache := wang.NewReachCache(m, blocked, 0)
	return func(u, d mesh.Coord) (mesh.Coord, error) {
		if u == d {
			return d, nil
		}
		reach := cache.Reach(d)
		var dirBuf [2]mesh.Dir
		for _, dir := range mesh.AppendPreferredDirs(dirBuf[:0], u, d) {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && reach.CanReach(n) {
				return n, nil
			}
		}
		return mesh.Coord{}, &route.StuckError{At: u, To: d}
	}
}

// Config parameterizes one traffic simulation.
type Config struct {
	M       mesh.Mesh
	Blocked []bool      // fault-region grid: these nodes neither inject nor forward
	Route   RoutingFunc // per-hop routing decision

	// InjectionRate is the probability per free node per cycle of
	// injecting one packet to a uniformly random free destination.
	InjectionRate float64
	Cycles        int // measured cycles (after warmup)
	Warmup        int // cycles before measurement starts
	Seed          int64

	// GuaranteedOnly restricts generated packets to pairs for which a
	// minimal path exists (so delivery failures measure the routing
	// function, not the topology).
	GuaranteedOnly bool

	// QueueCapacity bounds each per-link FIFO; 0 means unbounded. With
	// finite buffers a packet whose next queue is full stalls on its
	// link (backpressure), which can deadlock — the run then stops and
	// reports Stats.Deadlocked.
	QueueCapacity int

	// ClassChannels gives each link one virtual channel per quadrant
	// class (NE, NW, SW, SE, fixed per packet at injection). Because a
	// class only ever uses two directions and every hop strictly
	// advances toward the destination corner, the channel dependency
	// graph of each class is acyclic: minimal routing with class
	// channels is deadlock-free even with capacity-1 buffers. A stall
	// in a static class-channel run is therefore a simulator bug and
	// aborts the run with a *SimError instead of reporting Deadlocked.
	ClassChannels bool

	// Preload places packets in the network at cycle zero (before any
	// injection); used to construct specific contention patterns.
	Preload []Flow

	// HotspotFraction routes this fraction of injected packets to the
	// Hotspot node instead of a uniform destination, modeling the
	// classic hotspot workload. Zero keeps pure uniform traffic.
	HotspotFraction float64
	Hotspot         mesh.Coord

	// HopBudget bounds the links any one packet may traverse; 0 means
	// 4*(Width+Height). Minimal routing can never come close (a
	// minimal path has at most Width+Height-2 hops), so exceeding the
	// budget in a static run flags a circulating packet — a simulator
	// bug — and aborts with a *SimError. Online runs under the degrade
	// policy can legitimately livelock; there the packet is dropped
	// and counted in OnlineStats.DroppedLivelock instead.
	HopBudget int

	// OnDeliver, if set, observes every delivered packet — warmup and
	// preload included — with its source, destination, total links
	// traversed and distance-increasing (detour) hops. Analysis and
	// test hook; leave nil in production runs.
	OnDeliver func(src, dst mesh.Coord, hops, detours int)
}

// Flow is one preloaded packet: a source and a destination.
type Flow struct {
	Src mesh.Coord
	Dst mesh.Coord
}

// guaranteedMemoNodes bounds the mesh size for which GuaranteedFilter
// memoizes full per-source reachability sweeps. Above it a full memo
// would cost O(Size^2) memory while the cyclic injection pattern of
// the simulators would thrash any bounded cache, so the per-query
// rectangle DP is the better trade there.
const guaranteedMemoNodes = 1 << 12

// GuaranteedFilter returns a predicate reporting whether a minimal
// path between a pair exists in the blocked grid — the GuaranteedOnly
// admission check. On meshes small enough for the memo to pay for
// itself it amortizes one reachability sweep per source across every
// packet that source ever injects, instead of re-running the
// existence DP per packet.
func GuaranteedFilter(m mesh.Mesh, blocked []bool) func(s, d mesh.Coord) bool {
	if m.Size() <= guaranteedMemoNodes {
		return wang.NewReachCache(m, blocked, 0).CanReach
	}
	return func(s, d mesh.Coord) bool {
		return wang.MinimalPathExists(m, s, d, blocked)
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.M.Width <= 1 || c.M.Height <= 1 {
		return fmt.Errorf("traffic: mesh %v too small", c.M)
	}
	if len(c.Blocked) != c.M.Size() {
		return fmt.Errorf("traffic: blocked grid size %d != mesh size %d", len(c.Blocked), c.M.Size())
	}
	if c.Route == nil {
		return fmt.Errorf("traffic: no routing function")
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("traffic: injection rate %v outside [0,1]", c.InjectionRate)
	}
	if c.Cycles <= 0 || c.Warmup < 0 {
		return fmt.Errorf("traffic: cycles must be positive and warmup non-negative")
	}
	if c.QueueCapacity < 0 {
		return fmt.Errorf("traffic: negative queue capacity")
	}
	if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
		return fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", c.HotspotFraction)
	}
	if c.HotspotFraction > 0 {
		if !c.M.Contains(c.Hotspot) || c.Blocked[c.M.Index(c.Hotspot)] {
			return fmt.Errorf("traffic: hotspot %v unusable", c.Hotspot)
		}
	}
	if c.HopBudget < 0 {
		return fmt.Errorf("traffic: negative hop budget")
	}
	return nil
}

// Stats aggregates the outcome of a simulation run.
type Stats struct {
	Injected      int // packets injected during measurement
	Delivered     int // packets delivered (measured packets only)
	Undeliverable int // packets abandoned because routing got stuck
	InFlight      int // packets still queued when the run ended
	Rejected      int // injections refused because the source queue was full

	// Deadlocked reports that finite buffers reached a state where no
	// packet could move; the run stopped early.
	Deadlocked bool

	AvgLatency float64 // cycles from injection to delivery
	AvgHops    float64 // links traversed by delivered packets
	AvgStretch float64 // hops / Manhattan distance (1.0 = all minimal)
	MaxQueue   int     // largest per-link queue observed
	Throughput float64 // delivered packets per free node per cycle
}

// packet is one in-flight message.
type packet struct {
	src, dst mesh.Coord
	at       mesh.Coord
	born     int
	hops     int
	detours  int // distance-increasing hops taken (online runs only)
	class    int // quadrant class, fixed at injection
	measured bool
}

// quadrantClass maps a source/destination pair to its channel class.
func quadrantClass(src, dst mesh.Coord) int {
	return mesh.Quadrant(src, dst) - 1
}

// Run executes the simulation and returns the measured statistics.
func Run(cfg Config) (Stats, error) {
	st, _, err := run(cfg, nil)
	return st, err
}

// RunOnline executes the simulation with mid-run fault injection: the
// schedule's fail/recover events are applied at the start of their
// cycle through an incrementally maintained dynamic tracker, the
// routing function is rebuilt for the new fault regions, and in-flight
// packets whose link just died are handled by on.Policy. A nil online
// configuration or an empty schedule reproduces Run bit for bit under
// PolicyReroute and PolicyDrop; PolicyDegrade additionally rescues
// packets stuck on the initial (static) faults with Extension-1
// detours, so it delivers at least as many packets as the static run
// on the same, unperturbed injection stream.
func RunOnline(cfg Config, on *Online) (Stats, OnlineStats, error) {
	if on == nil {
		on = &Online{}
	}
	st, ost, err := run(cfg, on)
	if err == nil {
		ost.Publish()
	}
	return st, ost, err
}

func run(cfg Config, on *Online) (Stats, OnlineStats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, OnlineStats{}, err
	}
	m := cfg.M
	rng := rand.New(rand.NewSource(cfg.Seed))

	// blocked and routeFn start from the configuration and are swapped
	// for rebuilt versions when online events change the fault state;
	// every closure below reads these locals so rebuilds propagate.
	blocked := cfg.Blocked
	routeFn := cfg.Route

	var ost OnlineStats
	policy := PolicyReroute
	var rt *inject.Runtime
	if on != nil {
		if on.Policy != 0 {
			if !on.Policy.valid() {
				return Stats{}, OnlineStats{}, fmt.Errorf("traffic: invalid fault policy %d", on.Policy)
			}
			policy = on.Policy
		}
		if len(on.Schedule) > 0 && on.Rebuild == nil {
			return Stats{}, OnlineStats{}, fmt.Errorf("traffic: online schedule without a Rebuild function")
		}
		var err error
		rt, err = inject.NewRuntime(m, on.InitialFaults, on.Schedule)
		if err != nil {
			return Stats{}, OnlineStats{}, err
		}
		if !slices.Equal(rt.Blocked(), blocked) {
			return Stats{}, OnlineStats{}, fmt.Errorf("traffic: initial faults do not reproduce the blocked grid")
		}
	}
	hopBudget := cfg.HopBudget
	if hopBudget == 0 {
		hopBudget = DefaultHopBudget(m)
	}

	var guaranteed func(s, d mesh.Coord) bool
	if cfg.GuaranteedOnly {
		guaranteed = GuaranteedFilter(m, blocked)
	}

	// Free nodes are the injectors and possible destinations.
	var free []mesh.Coord
	for i := 0; i < m.Size(); i++ {
		if !blocked[i] {
			free = append(free, m.CoordOf(i))
		}
	}
	if len(free) < 2 {
		return Stats{}, OnlineStats{}, fmt.Errorf("traffic: fewer than two usable nodes")
	}
	// Throughput is normalized by the pre-run free-node count so the
	// metric stays comparable when online faults shrink the node set.
	baseFree := len(free)

	// queues[channelIndex] is the FIFO of packets waiting to cross a
	// directed link. Channels are indexed by (from, dir) and, when
	// class channels are enabled, by the packet's quadrant class.
	classes := 1
	if cfg.ClassChannels {
		classes = 4
	}
	queueIndex := func(from mesh.Coord, d mesh.Dir, class int) int {
		return (m.Index(from)*4+int(d)-1)*classes + class
	}
	queues := make([][]*packet, m.Size()*4*classes)

	// Active-link scheduling: instead of scanning every directed link
	// each cycle, only links whose queue is nonempty are visited. The
	// active list is sorted ascending before each transmission phase, so
	// links move in exactly the order of the original full scan and the
	// simulation stays bit-for-bit reproducible.
	active := make([]int, 0, 64)
	inActive := make([]bool, len(queues))
	markActive := func(qi int) {
		if !inActive[qi] {
			inActive[qi] = true
			active = append(active, qi)
		}
	}

	var st Stats
	var totalLatency, totalHops, totalStretch float64
	var fatal *SimError

	hasRoom := func(qi int) bool {
		return cfg.QueueCapacity == 0 || len(queues[qi]) < cfg.QueueCapacity
	}

	classOf := func(p *packet) int {
		if cfg.ClassChannels {
			return p.class
		}
		return 0
	}

	// nextQueue resolves the output channel a packet at `at` heading
	// for its destination would join; ok=false means delivery or drop.
	// Under the online degrade policy a stuck packet falls back to the
	// paper's Extension-1 spare-neighbor detour (safe spares first)
	// instead of being abandoned.
	nextQueue := func(p *packet) (int, bool) {
		next, err := routeFn(p.at, p.dst)
		if err != nil {
			if rt != nil && policy == PolicyDegrade {
				if n, ok := route.SpareHop(m, blocked, rt.Levels(), p.at, p.dst); ok {
					if dir, dok := mesh.DirTo(p.at, n); dok {
						return queueIndex(p.at, dir, classOf(p)), true
					}
				}
			}
			return 0, false
		}
		dir, ok := mesh.DirTo(p.at, next)
		if !ok {
			return 0, false
		}
		return queueIndex(p.at, dir, classOf(p)), true
	}

	deliver := func(p *packet, cycle int) {
		ost.RecordDelivery(p.hops, mesh.Distance(p.src, p.dst))
		if cfg.OnDeliver != nil {
			cfg.OnDeliver(p.src, p.dst, p.hops, p.detours)
		}
		if !p.measured {
			return
		}
		st.Delivered++
		totalLatency += float64(cycle - p.born)
		totalHops += float64(p.hops)
		totalStretch += float64(p.hops) / float64(max(1, mesh.Distance(p.src, p.dst)))
	}

	// enqueue routes p out of its current node; it reports true when
	// the packet left the system (delivered, undeliverable or dropped).
	enqueue := func(p *packet, cycle int) bool {
		if p.at == p.dst {
			deliver(p, cycle)
			return true
		}
		if p.hops > hopBudget {
			if rt != nil {
				ost.DroppedLivelock++
				return true
			}
			if fatal == nil {
				fatal = &SimError{Sim: "traffic", Kind: InvariantLivelock, Cycle: cycle,
					Detail: fmt.Sprintf("packet %v->%v at %v traversed %d links (budget %d)",
						p.src, p.dst, p.at, p.hops, hopBudget)}
			}
			return true
		}
		qi, ok := nextQueue(p)
		if !ok {
			ost.StuckTotal++
			if p.measured {
				st.Undeliverable++
			}
			return true
		}
		queues[qi] = append(queues[qi], p)
		markActive(qi)
		if len(queues[qi]) > st.MaxQueue {
			st.MaxQueue = len(queues[qi])
		}
		return false
	}

	// sweep clears the wreckage after a fault-state change: packets at
	// a node that died are lost with it, packets to a destination that
	// died are dropped, and packets waiting on a link whose far end
	// died are handled by the configured policy — rerouted from their
	// current node (with the degrade fallback inside nextQueue), or
	// dropped. Queues are visited in ascending index order so the
	// outcome is deterministic.
	sweep := func() {
		slices.Sort(active)
		for _, qi := range active {
			q := queues[qi]
			if len(q) == 0 {
				continue
			}
			fromIdx := qi / classes / 4
			from := m.CoordOf(fromIdx)
			d := mesh.Dir(qi/classes%4 + 1)
			to := from.Add(d.Offset())
			fromDead := blocked[fromIdx]
			linkDead := fromDead || !m.Contains(to) || blocked[m.Index(to)]
			if !linkDead {
				keep := q[:0]
				for _, p := range q {
					if blocked[m.Index(p.dst)] {
						ost.DroppedDestFailed++
					} else {
						keep = append(keep, p)
					}
				}
				queues[qi] = keep
				continue
			}
			queues[qi] = q[:0]
			for _, p := range q {
				switch {
				case fromDead:
					ost.DroppedNodeFailed++
				case blocked[m.Index(p.dst)]:
					ost.DroppedDestFailed++
				case policy == PolicyDrop:
					ost.DroppedPolicy++
				default:
					nqi, ok := nextQueue(p)
					if !ok {
						ost.DroppedNoRoute++
						continue
					}
					// A rerouted packet may transiently overfill a
					// bounded queue; backpressure re-asserts next cycle.
					queues[nqi] = append(queues[nqi], p)
					markActive(nqi)
					if len(queues[nqi]) > st.MaxQueue {
						st.MaxQueue = len(queues[nqi])
					}
					ost.Rerouted++
				}
			}
		}
	}

	// Preloaded packets enter before the first cycle and are always
	// measured.
	for _, fl := range cfg.Preload {
		if !m.Contains(fl.Src) || !m.Contains(fl.Dst) ||
			blocked[m.Index(fl.Src)] || blocked[m.Index(fl.Dst)] || fl.Src == fl.Dst {
			return Stats{}, OnlineStats{}, fmt.Errorf("traffic: invalid preloaded flow %v -> %v", fl.Src, fl.Dst)
		}
		p := &packet{src: fl.Src, dst: fl.Dst, at: fl.Src, class: quadrantClass(fl.Src, fl.Dst), measured: true}
		st.Injected++
		ost.Spawned++
		enqueue(p, 0)
	}
	if fatal != nil {
		return Stats{}, OnlineStats{}, fatal
	}

	totalCycles := cfg.Warmup + cfg.Cycles
	idleCycles := 0
	// Per-cycle scratch, hoisted out of the loop and reused.
	var arrivals []*packet
	var incoming map[int]int
	if cfg.QueueCapacity > 0 {
		incoming = make(map[int]int)
	}
	for cycle := 0; cycle < totalCycles; cycle++ {
		// Fault-event phase: apply scheduled fail/recover events, then
		// rebuild the routing state and sweep the queues if anything
		// changed. Zero-event cycles touch nothing, keeping the run
		// identical to the static simulation.
		if rt != nil && rt.Pending() > 0 {
			applied, err := rt.Step(cycle)
			if err != nil {
				return Stats{}, OnlineStats{}, err
			}
			ost.Events += applied
			if applied > 0 {
				ost.Rebuilds++
				blocked = rt.Blocked()
				routeFn = on.Rebuild(blocked)
				if cfg.GuaranteedOnly {
					guaranteed = GuaranteedFilter(m, blocked)
				}
				free = free[:0]
				for i := 0; i < m.Size(); i++ {
					if !blocked[i] {
						free = append(free, m.CoordOf(i))
					}
				}
				sweep()
			}
		}
		measuring := cycle >= cfg.Warmup

		// Injection phase. Online faults can shrink the free set below
		// two nodes, leaving nowhere to send; injection pauses until a
		// recovery grows it back.
		if len(free) >= 2 {
			for _, src := range free {
				if cfg.InjectionRate == 0 || rng.Float64() >= cfg.InjectionRate {
					continue
				}
				var dst mesh.Coord
				if cfg.HotspotFraction > 0 && rng.Float64() < cfg.HotspotFraction &&
					src != cfg.Hotspot && !blocked[m.Index(cfg.Hotspot)] {
					dst = cfg.Hotspot
				} else {
					dst = free[rng.Intn(len(free))]
					for dst == src {
						dst = free[rng.Intn(len(free))]
					}
				}
				if cfg.GuaranteedOnly && !guaranteed(src, dst) {
					continue
				}
				p := &packet{src: src, dst: dst, at: src, born: cycle, class: quadrantClass(src, dst), measured: measuring}
				if qi, ok := nextQueue(p); ok && !hasRoom(qi) {
					if measuring {
						st.Rejected++
					}
					continue
				}
				if measuring {
					st.Injected++
				}
				ost.Spawned++
				enqueue(p, cycle)
			}
		}

		// Transmission phase: every active directed link moves its head
		// packet unless the downstream queue is full (backpressure).
		// Links are visited in ascending queue-index order — the order
		// of the original full scan — and the active set is fixed for
		// the phase because arrivals are applied afterwards.
		arrivals = arrivals[:0]
		moved := 0
		queued := 0
		// incoming reserves downstream capacity for moves already
		// granted this cycle, so simultaneous arrivals cannot overfill
		// a bounded queue.
		if cfg.QueueCapacity > 0 {
			clear(incoming)
		}
		slices.Sort(active)
		for _, qi := range active {
			queued += len(queues[qi])
			if len(queues[qi]) == 0 {
				continue
			}
			from := m.CoordOf(qi / classes / 4)
			d := mesh.Dir(qi/classes%4 + 1)
			to := from.Add(d.Offset())
			if !m.Contains(to) {
				// Defensive: routing never sends off-mesh.
				queues[qi] = queues[qi][1:]
				continue
			}
			p := queues[qi][0]
			if cfg.QueueCapacity > 0 && to != p.dst {
				// Peek the downstream queue before moving.
				probe := *p
				probe.at = to
				if nqi, ok := nextQueue(&probe); ok {
					if len(queues[nqi])+incoming[nqi] >= cfg.QueueCapacity {
						continue // stall on the link
					}
					incoming[nqi]++
				}
			}
			queues[qi] = queues[qi][1:]
			if rt != nil && mesh.Distance(to, p.dst) > mesh.Distance(from, p.dst) {
				// Every hop changes the Manhattan distance by exactly
				// one, so distance-increasing hops count the detours: a
				// delivered packet's path has length D(src,dst) + 2k.
				if p.detours == 0 {
					ost.Degraded++
				}
				p.detours++
				ost.DetourHops++
			}
			p.at = to
			p.hops++
			moved++
			arrivals = append(arrivals, p)
		}
		// Drop drained links from the active set before arrivals re-add
		// any of them.
		live := active[:0]
		for _, qi := range active {
			if len(queues[qi]) > 0 {
				live = append(live, qi)
			} else {
				inActive[qi] = false
			}
		}
		active = live
		for _, p := range arrivals {
			enqueue(p, cycle+1)
		}
		if fatal != nil {
			return Stats{}, OnlineStats{}, fatal
		}
		if cfg.QueueCapacity > 0 {
			if queued > 0 && moved == 0 {
				idleCycles++
				if idleCycles >= 3 {
					if cfg.ClassChannels && ost.Events == 0 {
						// Class channels with minimal routing cannot
						// deadlock while the fault state is unchanged;
						// a stall here is a simulator bug.
						return Stats{}, OnlineStats{}, &SimError{Sim: "traffic", Kind: InvariantStall, Cycle: cycle,
							Detail: fmt.Sprintf("%d packets queued, none moved for 3 cycles under class channels", queued)}
					}
					st.Deadlocked = true
					break
				}
			} else {
				idleCycles = 0
			}
		}
	}

	for _, q := range queues {
		st.InFlight += len(q)
	}
	if rt != nil {
		_, ost.Skipped, _, _ = rt.Counts()
	}
	// Packet conservation: every packet that entered the system must be
	// accounted for, over all packets (warmup and preload included).
	if got := ost.DeliveredTotal + ost.StuckTotal + ost.Dropped() + st.InFlight; got != ost.Spawned {
		return Stats{}, OnlineStats{}, &SimError{Sim: "traffic", Kind: InvariantConservation, Cycle: totalCycles,
			Detail: fmt.Sprintf("%d packets spawned but %d accounted for (%d delivered, %d stuck, %d dropped, %d in flight)",
				ost.Spawned, got, ost.DeliveredTotal, ost.StuckTotal, ost.Dropped(), st.InFlight)}
	}
	if st.Delivered > 0 {
		st.AvgLatency = totalLatency / float64(st.Delivered)
		st.AvgHops = totalHops / float64(st.Delivered)
		st.AvgStretch = totalStretch / float64(st.Delivered)
	}
	st.Throughput = float64(st.Delivered) / float64(baseFree) / float64(cfg.Cycles)
	return st, ost, nil
}
