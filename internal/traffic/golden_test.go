package traffic

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/route"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output diverged from pre-optimization golden %s\n got: %s\nwant: %s", name, got, want)
	}
}

// goldenGrid builds a deterministic faulty 16x16 mesh shared by the
// golden configurations.
func goldenGrid(t *testing.T) (mesh.Mesh, []bool) {
	t.Helper()
	m := mesh.Mesh{Width: 16, Height: 16}
	faults, err := fault.RandomFaults(m, 12, rand.New(rand.NewSource(9)), nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	return m, fault.BuildBlocks(sc).BlockedGrid()
}

// TestRunGolden pins the store-and-forward simulator's statistics for
// fixed seeds across the feature matrix (unbounded, bounded queues,
// class channels, hotspot, preload, guaranteed-only, every router).
// The goldens predate active-link scheduling, so a match certifies the
// scheduler visits links in an order indistinguishable from the
// original full scan.
func TestRunGolden(t *testing.T) {
	m, blocked := goldenGrid(t)
	wu := WuRouting(route.NewRouter(m, blocked))
	var free []mesh.Coord
	for i := 0; i < m.Size(); i++ {
		if !blocked[i] {
			free = append(free, m.CoordOf(i))
		}
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"wu_unbounded", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.05, Cycles: 120, Warmup: 30, Seed: 1}},
		{"wu_capacity2", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.10, Cycles: 120, Warmup: 30, Seed: 2, QueueCapacity: 2}},
		{"wu_class_cap1", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.10, Cycles: 120, Warmup: 30, Seed: 3, QueueCapacity: 1, ClassChannels: true}},
		{"wu_hotspot", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 4, HotspotFraction: 0.3, Hotspot: mesh.Coord{X: 1, Y: 1}}},
		{"wu_guaranteed", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 5, GuaranteedOnly: true}},
		{"oracle", Config{M: m, Blocked: blocked, Route: OracleRouting(m, blocked), InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 6}},
		{"xy", Config{M: m, Blocked: blocked, Route: XYRouting(m, blocked), InjectionRate: 0.08, Cycles: 120, Warmup: 30, Seed: 7}},
		{"preload", Config{M: m, Blocked: blocked, Route: wu, InjectionRate: 0.02, Cycles: 80, Warmup: 0, Seed: 8,
			Preload: []Flow{
				{Src: free[0], Dst: free[len(free)-1]},
				{Src: free[len(free)-1], Dst: free[1]},
			}}},
	}
	var sb strings.Builder
	for _, c := range configs {
		st, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fmt.Fprintf(&sb, "%s: %+v\n", c.name, st)
	}
	checkGolden(t, "run_stats.golden", sb.String())
}
