package mesh3

import (
	"fmt"
	"math"
)

// Unbounded is the distance reported when no fault region lies in a
// direction.
const Unbounded = math.MaxInt32

// Level is a 3-D extended safety level: the hops to the nearest
// fault-region node in each of the six directions.
type Level struct {
	E, W, N, S, U, D int
}

// Dist returns the component along direction d.
func (l Level) Dist(d Dir) int {
	switch d {
	case East:
		return l.E
	case West:
		return l.W
	case North:
		return l.N
	case South:
		return l.S
	case Up:
		return l.U
	case Down:
		return l.D
	default:
		return 0
	}
}

// String renders the level as (E,W,N,S,U,D) with "inf" for Unbounded.
func (l Level) String() string {
	f := func(v int) string {
		if v >= Unbounded {
			return "inf"
		}
		return fmt.Sprintf("%d", v)
	}
	return "(" + f(l.E) + "," + f(l.W) + "," + f(l.N) + "," + f(l.S) + "," + f(l.U) + "," + f(l.D) + ")"
}

// Grid holds the safety level of every node for one blocked grid.
type Grid struct {
	M      Mesh
	levels []Level
}

// Compute derives the 6-tuple levels by six linear sweeps.
func Compute(m Mesh, blocked []bool) *Grid {
	g := &Grid{M: m, levels: make([]Level, m.Size())}
	sweep := func(set func(*Level, int), outer1, outer2 int, at func(o1, o2, k int) int, length int, reverse bool) {
		for a := 0; a < outer1; a++ {
			for b := 0; b < outer2; b++ {
				dist := Unbounded
				if reverse {
					for k := length - 1; k >= 0; k-- {
						i := at(a, b, k)
						if blocked[i] {
							dist = 0
						} else if dist < Unbounded {
							dist++
						}
						set(&g.levels[i], dist)
					}
				} else {
					for k := 0; k < length; k++ {
						i := at(a, b, k)
						if blocked[i] {
							dist = 0
						} else if dist < Unbounded {
							dist++
						}
						set(&g.levels[i], dist)
					}
				}
			}
		}
	}
	atX := func(y, z, x int) int { return (z*m.Height+y)*m.Width + x }
	atY := func(x, z, y int) int { return (z*m.Height+y)*m.Width + x }
	atZ := func(x, y, z int) int { return (z*m.Height+y)*m.Width + x }

	sweep(func(l *Level, v int) { l.E = v }, m.Height, m.Depth, atX, m.Width, true)
	sweep(func(l *Level, v int) { l.W = v }, m.Height, m.Depth, atX, m.Width, false)
	sweep(func(l *Level, v int) { l.N = v }, m.Width, m.Depth, atY, m.Height, true)
	sweep(func(l *Level, v int) { l.S = v }, m.Width, m.Depth, atY, m.Height, false)
	sweep(func(l *Level, v int) { l.U = v }, m.Width, m.Height, atZ, m.Depth, true)
	sweep(func(l *Level, v int) { l.D = v }, m.Width, m.Height, atZ, m.Depth, false)
	return g
}

// At returns the level of node c.
func (g *Grid) At(c Coord) Level {
	return g.levels[g.M.Index(c)]
}

// SafeFor is the 3-D generalization of Definition 3: the three axis
// sections from s towards d must be clear of fault regions. It is a
// sufficient condition for the existence of a minimal path (verified
// against the exact DP in this package's tests).
func (g *Grid) SafeFor(s, d Coord) bool {
	lvl := g.At(s)
	if dx := d.X - s.X; dx > 0 && dx >= lvl.E || dx < 0 && -dx >= lvl.W {
		return false
	}
	if dy := d.Y - s.Y; dy > 0 && dy >= lvl.N || dy < 0 && -dy >= lvl.S {
		return false
	}
	if dz := d.Z - s.Z; dz > 0 && dz >= lvl.U || dz < 0 && -dz >= lvl.D {
		return false
	}
	return true
}

// Model couples a blocked grid with its levels and provides the
// conditions.
type Model struct {
	M       Mesh
	Blocked []bool
	Levels  *Grid
}

// NewModel computes the safety levels for the blocked grid.
func NewModel(m Mesh, blocked []bool) (*Model, error) {
	if len(blocked) != m.Size() {
		return nil, fmt.Errorf("mesh3: blocked grid has %d entries, mesh needs %d", len(blocked), m.Size())
	}
	return &Model{M: m, Blocked: blocked, Levels: Compute(m, blocked)}, nil
}

func (md *Model) isBlocked(c Coord) bool {
	return !md.M.Contains(c) || md.Blocked[md.M.Index(c)]
}

// Safe is the base sufficient safe condition in 3-D.
func (md *Model) Safe(s, d Coord) bool {
	return !md.isBlocked(s) && !md.isBlocked(d) && md.Levels.SafeFor(s, d)
}

// Extension1 is the 3-D analog of Theorem 1a: minimal routing is
// ensured when the source or one of its preferred neighbors is safe
// with respect to d.
func (md *Model) Extension1(s, d Coord) bool {
	if md.isBlocked(s) || md.isBlocked(d) {
		return false
	}
	if md.Levels.SafeFor(s, d) {
		return true
	}
	for _, dir := range PreferredDirs(s, d) {
		n := s.Add(dir.Offset())
		if !md.isBlocked(n) && md.Levels.SafeFor(n, d) {
			return true
		}
	}
	return false
}

// MinimalPathExists is the exact ground truth: a monotone DP over the
// s-d cuboid avoiding blocked nodes.
func MinimalPathExists(m Mesh, s, d Coord, blocked []bool) bool {
	if !m.Contains(s) || !m.Contains(d) {
		return false
	}
	if blocked[m.Index(s)] || blocked[m.Index(d)] {
		return false
	}
	sx, sy, sz := step(d.X-s.X), step(d.Y-s.Y), step(d.Z-s.Z)
	nx, ny, nz := abs(d.X-s.X)+1, abs(d.Y-s.Y)+1, abs(d.Z-s.Z)+1
	reach := make([]bool, nx*ny*nz)
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				c := Coord{X: s.X + sx*i, Y: s.Y + sy*j, Z: s.Z + sz*k}
				if blocked[m.Index(c)] {
					continue
				}
				if i == 0 && j == 0 && k == 0 {
					reach[idx(i, j, k)] = true
					continue
				}
				ok := i > 0 && reach[idx(i-1, j, k)] ||
					j > 0 && reach[idx(i, j-1, k)] ||
					k > 0 && reach[idx(i, j, k-1)]
				reach[idx(i, j, k)] = ok
			}
		}
	}
	return reach[idx(nx-1, ny-1, nz-1)]
}

// step returns the unit sign of v (1 when v is zero, so degenerate
// axes still iterate once).
func step(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Path is the node sequence of a 3-D route, endpoints included.
type Path []Coord

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Minimal reports whether the path length equals the Manhattan
// distance between its endpoints.
func (p Path) Minimal() bool {
	if len(p) == 0 {
		return false
	}
	return p.Hops() == Distance(p[0], p[len(p)-1])
}

// Validate checks adjacency and that no blocked node is used.
func (p Path) Validate(m Mesh, blocked []bool) error {
	if len(p) == 0 {
		return fmt.Errorf("mesh3: empty path")
	}
	for i, c := range p {
		if !m.Contains(c) {
			return fmt.Errorf("mesh3: node %v outside mesh", c)
		}
		if blocked[m.Index(c)] {
			return fmt.Errorf("mesh3: node %v is blocked", c)
		}
		if i > 0 && Distance(p[i-1], c) != 1 {
			return fmt.Errorf("mesh3: nodes %v and %v not adjacent", p[i-1], c)
		}
	}
	return nil
}

// Oracle routes with full global information in 3-D: it walks
// preferred directions guided by a reverse reachability DP, finding a
// minimal path exactly when one exists.
func Oracle(m Mesh, blocked []bool, s, d Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("mesh3: endpoints %v -> %v outside mesh", s, d)
	}
	if !MinimalPathExists(m, s, d, blocked) {
		return nil, fmt.Errorf("mesh3: no minimal path %v -> %v", s, d)
	}
	path := make(Path, 0, Distance(s, d)+1)
	path = append(path, s)
	u := s
	for u != d {
		advanced := false
		for _, dir := range PreferredDirs(u, d) {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && MinimalPathExists(m, n, d, blocked) {
				u = n
				path = append(path, u)
				advanced = true
				break
			}
		}
		if !advanced {
			return nil, fmt.Errorf("mesh3: stuck at %v heading for %v", u, d)
		}
	}
	return path, nil
}

// Pivots3 places pivot nodes by recursive 8-way (octant) partition of
// a cuboid region, the 3-D analog of extension 3's submesh partition:
// level 1 contributes the region center; the center splits the region
// into eight octants, each recursively contributing the next level.
func Pivots3(region Box, levels int) []Coord {
	var pivots []Coord
	var recurse func(b Box, depth int)
	recurse = func(b Box, depth int) {
		if depth <= 0 || b.MinX > b.MaxX || b.MinY > b.MaxY || b.MinZ > b.MaxZ {
			return
		}
		p := Coord{
			X: (b.MinX + b.MaxX) / 2,
			Y: (b.MinY + b.MaxY) / 2,
			Z: (b.MinZ + b.MaxZ) / 2,
		}
		pivots = append(pivots, p)
		if depth == 1 {
			return
		}
		xs := [2][2]int{{b.MinX, p.X}, {p.X + 1, b.MaxX}}
		ys := [2][2]int{{b.MinY, p.Y}, {p.Y + 1, b.MaxY}}
		zs := [2][2]int{{b.MinZ, p.Z}, {p.Z + 1, b.MaxZ}}
		for _, xr := range xs {
			for _, yr := range ys {
				for _, zr := range zs {
					recurse(Box{
						MinX: xr[0], MaxX: xr[1],
						MinY: yr[0], MaxY: yr[1],
						MinZ: zr[0], MaxZ: zr[1],
					}, depth-1)
				}
			}
		}
	}
	recurse(region, levels)
	return pivots
}

// Extension3 is the 3-D analog of Theorem 1c: minimal routing is
// ensured when a pivot inside the s-d cuboid has both legs axis-clear.
func (md *Model) Extension3(s, d Coord, pivots []Coord) bool {
	if md.isBlocked(s) || md.isBlocked(d) {
		return false
	}
	if md.Levels.SafeFor(s, d) {
		return true
	}
	box := Box{
		MinX: min(s.X, d.X), MaxX: max(s.X, d.X),
		MinY: min(s.Y, d.Y), MaxY: max(s.Y, d.Y),
		MinZ: min(s.Z, d.Z), MaxZ: max(s.Z, d.Z),
	}
	for _, p := range pivots {
		if !box.Contains(p) || md.isBlocked(p) {
			continue
		}
		if md.Levels.SafeFor(s, p) && md.Levels.SafeFor(p, d) {
			return true
		}
	}
	return false
}

// Extension2 is the 3-D analog of Theorem 1b: when an axis section
// from s towards d is clear of fault regions, the source consults the
// safety levels of the nodes along that section; a node safe with
// respect to d yields a two-phase minimal route.
func (md *Model) Extension2(s, d Coord) bool {
	if md.isBlocked(s) || md.isBlocked(d) {
		return false
	}
	if md.Levels.SafeFor(s, d) {
		return true
	}
	lvl := md.Levels.At(s)
	axes := [3]struct {
		delta int
		dir   Dir
	}{
		{d.X - s.X, East},
		{d.Y - s.Y, North},
		{d.Z - s.Z, Up},
	}
	for _, ax := range axes {
		delta, dir := ax.delta, ax.dir
		if delta < 0 {
			delta = -delta
			dir = dir.Opposite()
		}
		if delta == 0 || delta >= lvl.Dist(dir) {
			continue // no section, or section not clear
		}
		off := dir.Offset()
		for k := 1; k <= delta; k++ {
			p := Coord{X: s.X + k*off.X, Y: s.Y + k*off.Y, Z: s.Z + k*off.Z}
			if md.Levels.SafeFor(p, d) {
				return true
			}
		}
	}
	return false
}
