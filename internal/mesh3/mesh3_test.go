package mesh3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	if _, err := New(4, 5, 6); err != nil {
		t.Errorf("New(4,5,6): %v", err)
	}
	for _, dims := range [][3]int{{0, 5, 6}, {4, 0, 6}, {4, 5, 0}, {-1, 5, 6}} {
		if _, err := New(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("New(%v) should fail", dims)
		}
	}
	m, _ := New(4, 5, 6)
	if m.Size() != 120 {
		t.Errorf("Size = %d, want 120", m.Size())
	}
	if m.String() != "4x5x6" {
		t.Errorf("String = %q", m.String())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := Mesh{Width: 4, Height: 5, Depth: 3}
	seen := make(map[int]bool)
	for z := 0; z < m.Depth; z++ {
		for y := 0; y < m.Height; y++ {
			for x := 0; x < m.Width; x++ {
				c := Coord{X: x, Y: y, Z: z}
				i := m.Index(c)
				if i < 0 || i >= m.Size() || seen[i] {
					t.Fatalf("bad index %d for %v", i, c)
				}
				seen[i] = true
				if m.CoordOf(i) != c {
					t.Fatalf("CoordOf(Index(%v)) = %v", c, m.CoordOf(i))
				}
			}
		}
	}
}

func TestDirections(t *testing.T) {
	for _, d := range Directions() {
		if !d.Valid() {
			t.Errorf("%v invalid", d)
		}
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
		off := d.Offset()
		if abs(off.X)+abs(off.Y)+abs(off.Z) != 1 {
			t.Errorf("Offset(%v) not unit", d)
		}
		if d.Axis() != d.Opposite().Axis() {
			t.Errorf("Axis mismatch for %v", d)
		}
	}
	if Dir(0).Valid() || Dir(7).Valid() {
		t.Error("out-of-range Dir valid")
	}
	if Dir(0).String() != "invalid" {
		t.Error("invalid name wrong")
	}
}

func TestNeighborsAndPreferred(t *testing.T) {
	m := Mesh{Width: 4, Height: 4, Depth: 4}
	if got := len(m.Neighbors(nil, Coord{X: 2, Y: 2, Z: 2})); got != 6 {
		t.Errorf("interior degree = %d, want 6", got)
	}
	if got := len(m.Neighbors(nil, Coord{X: 0, Y: 0, Z: 0})); got != 3 {
		t.Errorf("corner degree = %d, want 3", got)
	}
	u := Coord{X: 1, Y: 1, Z: 1}
	d := Coord{X: 3, Y: 0, Z: 1}
	dirs := PreferredDirs(u, d)
	if len(dirs) != 2 {
		t.Fatalf("PreferredDirs = %v", dirs)
	}
	for _, dir := range dirs {
		if Distance(u.Add(dir.Offset()), d) != Distance(u, d)-1 {
			t.Errorf("dir %v not preferred", dir)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int8) bool {
		a := Coord{int(ax), int(ay), int(az)}
		b := Coord{int(bx), int(by), int(bz)}
		return Distance(a, b) == Distance(b, a) && Distance(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScenarioValidation(t *testing.T) {
	m := Mesh{Width: 4, Height: 4, Depth: 4}
	if _, err := NewScenario(m, []Coord{{X: 4, Y: 0, Z: 0}}); err == nil {
		t.Error("outside fault should fail")
	}
	if _, err := NewScenario(m, []Coord{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}}); err == nil {
		t.Error("duplicate fault should fail")
	}
	s, err := NewScenario(m, []Coord{{X: 1, Y: 2, Z: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsFaulty(Coord{X: 1, Y: 2, Z: 3}) || s.IsFaulty(Coord{X: 0, Y: 0, Z: 0}) {
		t.Error("IsFaulty wrong")
	}
}

func TestBuildBlocksSingleFault(t *testing.T) {
	m := Mesh{Width: 6, Height: 6, Depth: 6}
	s, err := NewScenario(m, []Coord{{X: 3, Y: 3, Z: 3}})
	if err != nil {
		t.Fatal(err)
	}
	bs := BuildBlocks(s)
	if len(bs.Boxes) != 1 || bs.Boxes[0].Volume() != 1 {
		t.Errorf("Boxes = %v", bs.Boxes)
	}
	if bs.DisabledCount() != 0 {
		t.Error("lone fault disabled neighbors")
	}
}

func TestBuildBlocksDiagonalPair(t *testing.T) {
	// Faults at (0,0,0) and (1,1,0): the 2-D merge logic applies in
	// the XY plane: (1,0,0) has a dead X-neighbor and dead Y-neighbor.
	m := Mesh{Width: 5, Height: 5, Depth: 5}
	s, err := NewScenario(m, []Coord{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 0}})
	if err != nil {
		t.Fatal(err)
	}
	bs := BuildBlocks(s)
	if len(bs.Boxes) != 1 {
		t.Fatalf("Boxes = %v, want one merged region", bs.Boxes)
	}
	if !bs.InRegion(Coord{X: 1, Y: 0, Z: 0}) || !bs.InRegion(Coord{X: 0, Y: 1, Z: 0}) {
		t.Error("gap nodes not disabled")
	}
	if bs.DisabledCount() != 2 {
		t.Errorf("DisabledCount = %d, want 2", bs.DisabledCount())
	}
}

func TestMinimalPathExistsBasic(t *testing.T) {
	m := Mesh{Width: 5, Height: 5, Depth: 5}
	blocked := make([]bool, m.Size())
	s := Coord{X: 0, Y: 0, Z: 0}
	d := Coord{X: 4, Y: 4, Z: 4}
	if !MinimalPathExists(m, s, d, blocked) {
		t.Error("fault-free path missing")
	}
	// A full wall across one plane blocks everything crossing it.
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			blocked[m.Index(Coord{X: x, Y: y, Z: 2})] = true
		}
	}
	if MinimalPathExists(m, s, d, blocked) {
		t.Error("wall should block the path")
	}
	if !MinimalPathExists(m, s, Coord{X: 4, Y: 4, Z: 1}, blocked) {
		t.Error("path below the wall should exist")
	}
	// Open one hole in the wall.
	blocked[m.Index(Coord{X: 3, Y: 3, Z: 2})] = false
	if !MinimalPathExists(m, s, d, blocked) {
		t.Error("hole in the wall should admit a path")
	}
	if MinimalPathExists(m, s, Coord{X: 1, Y: 1, Z: 4}, blocked) {
		t.Error("monotone path to (1,1,4) cannot detour to the hole at (3,3,2)")
	}
}

func TestComputeMatchesBruteForce3D(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		m := Mesh{Width: 4 + rng.Intn(6), Height: 4 + rng.Intn(6), Depth: 4 + rng.Intn(6)}
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < 0.1
		}
		g := Compute(m, blocked)
		scan := func(c Coord, d Dir) int {
			off := d.Offset()
			for k := 1; ; k++ {
				n := Coord{X: c.X + k*off.X, Y: c.Y + k*off.Y, Z: c.Z + k*off.Z}
				if !m.Contains(n) {
					return Unbounded
				}
				if blocked[m.Index(n)] {
					return k
				}
			}
		}
		for i := 0; i < m.Size(); i++ {
			c := m.CoordOf(i)
			if blocked[i] {
				continue
			}
			lvl := g.At(c)
			for _, d := range Directions() {
				if got, want := lvl.Dist(d), scan(c, d); got != want {
					t.Fatalf("trial %d: %v at %v = %d, want %d", trial, d, c, got, want)
				}
			}
		}
	}
}

// TestSafe3DSoundness is the central 3-D property: whenever the
// axis-clear condition (or its neighbor extension) holds, a minimal
// path exists. This empirically validates the generalization the paper
// leaves as future work.
func TestSafe3DSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 150; trial++ {
		m := Mesh{
			Width:  5 + rng.Intn(9),
			Height: 5 + rng.Intn(9),
			Depth:  5 + rng.Intn(9),
		}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		bs := BuildBlocks(sc)
		md, err := NewModel(m, bs.BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 60; pair++ {
			s := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			d := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			if md.Safe(s, d) && !MinimalPathExists(m, s, d, md.Blocked) {
				t.Fatalf("trial %d: safe source %v -> %v has no minimal path (faults %v)", trial, s, d, faults)
			}
			if md.Extension1(s, d) && !MinimalPathExists(m, s, d, md.Blocked) {
				t.Fatalf("trial %d: ext1 %v -> %v has no minimal path (faults %v)", trial, s, d, faults)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	l := Level{E: 3, W: Unbounded, N: 0, S: 1, U: 2, D: 5}
	if got := l.String(); got != "(3,inf,0,1,2,5)" {
		t.Errorf("String = %q", got)
	}
	if l.Dist(Dir(0)) != 0 {
		t.Error("invalid Dist wrong")
	}
}

func TestNewModelValidation(t *testing.T) {
	m := Mesh{Width: 3, Height: 3, Depth: 3}
	if _, err := NewModel(m, make([]bool, 5)); err == nil {
		t.Error("short grid should fail")
	}
}

func TestRandomFaults3D(t *testing.T) {
	m := Mesh{Width: 6, Height: 6, Depth: 6}
	rng := rand.New(rand.NewSource(2))
	faults, err := RandomFaults(m, 30, rng, nil)
	if err != nil || len(faults) != 30 {
		t.Fatalf("RandomFaults: %v, %d", err, len(faults))
	}
	seen := make(map[Coord]bool)
	for _, f := range faults {
		if !m.Contains(f) || seen[f] {
			t.Fatalf("bad fault %v", f)
		}
		seen[f] = true
	}
	if _, err := RandomFaults(m, -1, rng, nil); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := RandomFaults(m, 5, rng, func(Coord) bool { return true }); err == nil {
		t.Error("full exclusion should fail")
	}
}

func TestOracle3D(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		m := Mesh{Width: 5 + rng.Intn(6), Height: 5 + rng.Intn(6), Depth: 5 + rng.Intn(6)}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		blocked := BuildBlocks(sc).BlockedGrid()
		for pair := 0; pair < 20; pair++ {
			s := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			d := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			if blocked[m.Index(s)] || blocked[m.Index(d)] {
				continue
			}
			want := MinimalPathExists(m, s, d, blocked)
			p, err := Oracle(m, blocked, s, d)
			if want != (err == nil) {
				t.Fatalf("trial %d: oracle err=%v, existence=%v for %v->%v", trial, err, want, s, d)
			}
			if err != nil {
				continue
			}
			if !p.Minimal() {
				t.Fatalf("trial %d: oracle path not minimal for %v->%v", trial, s, d)
			}
			if err := p.Validate(m, blocked); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if p[0] != s || p[len(p)-1] != d {
				t.Fatalf("trial %d: endpoints wrong", trial)
			}
		}
	}
}

func TestPath3Basics(t *testing.T) {
	m := Mesh{Width: 4, Height: 4, Depth: 4}
	blocked := make([]bool, m.Size())
	var empty Path
	if empty.Minimal() || empty.Hops() != 0 {
		t.Error("empty path misbehaves")
	}
	if err := empty.Validate(m, blocked); err == nil {
		t.Error("empty path should not validate")
	}
	p := Path{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 0}}
	if !p.Minimal() || p.Hops() != 2 {
		t.Errorf("path stats wrong: hops=%d", p.Hops())
	}
	if err := p.Validate(m, blocked); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	bad := Path{{X: 0, Y: 0, Z: 0}, {X: 2, Y: 0, Z: 0}}
	if err := bad.Validate(m, blocked); err == nil {
		t.Error("non-adjacent path should fail")
	}
	blocked[m.Index(Coord{X: 1, Y: 0, Z: 0})] = true
	if err := p.Validate(m, blocked); err == nil {
		t.Error("blocked path should fail")
	}
}

// TestSafe3DSoundnessLong is the heavyweight randomized validation of
// the 3-D axis-clear condition; skipped with -short.
func TestSafe3DSoundnessLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized soundness run")
	}
	rng := rand.New(rand.NewSource(9191))
	for trial := 0; trial < 800; trial++ {
		m := Mesh{
			Width:  5 + rng.Intn(9),
			Height: 5 + rng.Intn(9),
			Depth:  5 + rng.Intn(9),
		}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		md, err := NewModel(m, BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 40; pair++ {
			s := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			d := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			if md.Safe(s, d) && !MinimalPathExists(m, s, d, md.Blocked) {
				t.Fatalf("trial %d: safe %v->%v without path", trial, s, d)
			}
		}
	}
}

func TestPivots3Counts(t *testing.T) {
	region := Box{MinX: 0, MinY: 0, MinZ: 0, MaxX: 63, MaxY: 63, MaxZ: 63}
	tests := []struct {
		levels, want int
	}{
		{0, 0}, {1, 1}, {2, 9}, {3, 73}, // 1 + 8 + 64
	}
	for _, tt := range tests {
		got := Pivots3(region, tt.levels)
		if len(got) != tt.want {
			t.Errorf("levels=%d: %d pivots, want %d", tt.levels, len(got), tt.want)
		}
		for _, p := range got {
			if !region.Contains(p) {
				t.Errorf("pivot %v outside region", p)
			}
		}
	}
}

// TestExtension3_3DSoundness: the 3-D pivot condition implies a
// minimal path, and it dominates the base condition.
func TestExtension3_3DSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		m := Mesh{Width: 6 + rng.Intn(7), Height: 6 + rng.Intn(7), Depth: 6 + rng.Intn(7)}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		md, err := NewModel(m, BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		region := Box{MinX: 0, MinY: 0, MinZ: 0, MaxX: m.Width - 1, MaxY: m.Height - 1, MaxZ: m.Depth - 1}
		pivots := Pivots3(region, 2)
		for pair := 0; pair < 40; pair++ {
			s := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			d := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			if md.Safe(s, d) && !md.Extension3(s, d, pivots) {
				t.Fatalf("trial %d: ext3 must subsume base at %v->%v", trial, s, d)
			}
			if md.Extension3(s, d, pivots) && !MinimalPathExists(m, s, d, md.Blocked) {
				t.Fatalf("trial %d: ext3 %v->%v without path", trial, s, d)
			}
		}
	}
}

// TestExtension2_3DSoundness: the 3-D on-axis condition implies a
// minimal path and dominates the base condition.
func TestExtension2_3DSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 80; trial++ {
		m := Mesh{Width: 6 + rng.Intn(7), Height: 6 + rng.Intn(7), Depth: 6 + rng.Intn(7)}
		faults, err := RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		md, err := NewModel(m, BuildBlocks(sc).BlockedGrid())
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 40; pair++ {
			s := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			d := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
			if md.isBlocked(s) || md.isBlocked(d) {
				continue
			}
			if md.Safe(s, d) && !md.Extension2(s, d) {
				t.Fatalf("trial %d: ext2 must subsume base at %v->%v", trial, s, d)
			}
			if md.Extension2(s, d) && !MinimalPathExists(m, s, d, md.Blocked) {
				t.Fatalf("trial %d: ext2 %v->%v without path", trial, s, d)
			}
		}
	}
}
