// Package mesh3 extends the paper's machinery to 3-D meshes, the
// direction named in its concluding future work: the topology
// substrate, the fault-block labeling, 6-tuple extended safety levels,
// the axis-clear sufficient safe condition with its neighbor extension,
// and the exact monotone-DP existence baseline the conditions are
// verified against.
package mesh3

import (
	"fmt"
	"strconv"
)

// Coord is the address of a node in a 3-D mesh.
type Coord struct {
	X int
	Y int
	Z int
}

// String renders the coordinate as "(x,y,z)".
func (c Coord) String() string {
	return "(" + strconv.Itoa(c.X) + "," + strconv.Itoa(c.Y) + "," + strconv.Itoa(c.Z) + ")"
}

// Add returns the coordinate translated by d.
func (c Coord) Add(d Coord) Coord {
	return Coord{X: c.X + d.X, Y: c.Y + d.Y, Z: c.Z + d.Z}
}

// Distance returns the Manhattan distance between two nodes, the
// length of every minimal path.
func Distance(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y) + abs(a.Z-b.Z)
}

// Dir identifies one of the six mesh directions.
type Dir int

// The six directions: East/West along X, North/South along Y, Up/Down
// along Z.
const (
	East Dir = iota + 1
	West
	North
	South
	Up
	Down
)

var _dirNames = [...]string{East: "E", West: "W", North: "N", South: "S", Up: "U", Down: "D"}

var _dirOffsets = [...]Coord{
	East:  {X: 1},
	West:  {X: -1},
	North: {Y: 1},
	South: {Y: -1},
	Up:    {Z: 1},
	Down:  {Z: -1},
}

// Directions returns all six directions.
func Directions() [6]Dir {
	return [6]Dir{East, West, North, South, Up, Down}
}

// Valid reports whether d is one of the six directions.
func (d Dir) Valid() bool {
	return d >= East && d <= Down
}

// String returns the single-letter name of the direction.
func (d Dir) String() string {
	if !d.Valid() {
		return "invalid"
	}
	return _dirNames[d]
}

// Offset returns the unit coordinate delta of one hop in direction d.
func (d Dir) Offset() Coord {
	if !d.Valid() {
		return Coord{}
	}
	return _dirOffsets[d]
}

// Opposite returns the direction pointing the other way.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	case Up:
		return Down
	case Down:
		return Up
	default:
		return 0
	}
}

// Axis returns 0, 1 or 2 for X, Y, Z.
func (d Dir) Axis() int {
	switch d {
	case East, West:
		return 0
	case North, South:
		return 1
	default:
		return 2
	}
}

// Mesh describes the dimensions of a 3-D mesh.
type Mesh struct {
	Width  int // X extent
	Height int // Y extent
	Depth  int // Z extent
}

// New returns a mesh with the given dimensions; all must be positive.
func New(width, height, depth int) (Mesh, error) {
	if width <= 0 || height <= 0 || depth <= 0 {
		return Mesh{}, fmt.Errorf("mesh3: dimensions must be positive, got %dx%dx%d", width, height, depth)
	}
	return Mesh{Width: width, Height: height, Depth: depth}, nil
}

// String renders the mesh as "WxHxD".
func (m Mesh) String() string {
	return strconv.Itoa(m.Width) + "x" + strconv.Itoa(m.Height) + "x" + strconv.Itoa(m.Depth)
}

// Size returns the total number of nodes.
func (m Mesh) Size() int {
	return m.Width * m.Height * m.Depth
}

// Contains reports whether c addresses a node of the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width &&
		c.Y >= 0 && c.Y < m.Height &&
		c.Z >= 0 && c.Z < m.Depth
}

// Index returns the linear index of c (X fastest).
func (m Mesh) Index(c Coord) int {
	return (c.Z*m.Height+c.Y)*m.Width + c.X
}

// CoordOf is the inverse of Index.
func (m Mesh) CoordOf(i int) Coord {
	x := i % m.Width
	i /= m.Width
	return Coord{X: x, Y: i % m.Height, Z: i / m.Height}
}

// Neighbors appends the existing neighbors of c to dst.
func (m Mesh) Neighbors(dst []Coord, c Coord) []Coord {
	for _, d := range Directions() {
		n := c.Add(d.Offset())
		if m.Contains(n) {
			dst = append(dst, n)
		}
	}
	return dst
}

// PreferredDirs returns the directions that reduce the distance from u
// to d (up to three).
func PreferredDirs(u, d Coord) []Dir {
	var dirs []Dir
	switch {
	case d.X > u.X:
		dirs = append(dirs, East)
	case d.X < u.X:
		dirs = append(dirs, West)
	}
	switch {
	case d.Y > u.Y:
		dirs = append(dirs, North)
	case d.Y < u.Y:
		dirs = append(dirs, South)
	}
	switch {
	case d.Z > u.Z:
		dirs = append(dirs, Up)
	case d.Z < u.Z:
		dirs = append(dirs, Down)
	}
	return dirs
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
