package mesh3

import (
	"fmt"
	"math/rand"
)

// Box is an inclusive axis-aligned cuboid of nodes.
type Box struct {
	MinX, MinY, MinZ int
	MaxX, MaxY, MaxZ int
}

// BoxAround returns the 1x1x1 box containing only c.
func BoxAround(c Coord) Box {
	return Box{MinX: c.X, MinY: c.Y, MinZ: c.Z, MaxX: c.X, MaxY: c.Y, MaxZ: c.Z}
}

// Contains reports whether c lies inside the box.
func (b Box) Contains(c Coord) bool {
	return c.X >= b.MinX && c.X <= b.MaxX &&
		c.Y >= b.MinY && c.Y <= b.MaxY &&
		c.Z >= b.MinZ && c.Z <= b.MaxZ
}

// Volume returns the number of nodes covered.
func (b Box) Volume() int {
	return (b.MaxX - b.MinX + 1) * (b.MaxY - b.MinY + 1) * (b.MaxZ - b.MinZ + 1)
}

// Union returns the smallest box covering both.
func (b Box) Union(o Box) Box {
	return Box{
		MinX: min(b.MinX, o.MinX), MinY: min(b.MinY, o.MinY), MinZ: min(b.MinZ, o.MinZ),
		MaxX: max(b.MaxX, o.MaxX), MaxY: max(b.MaxY, o.MaxY), MaxZ: max(b.MaxZ, o.MaxZ),
	}
}

// Scenario couples a 3-D mesh with a set of faulty nodes.
type Scenario struct {
	M      Mesh
	Faults []Coord

	faulty []bool
}

// NewScenario validates the fault set and returns a scenario.
func NewScenario(m Mesh, faults []Coord) (*Scenario, error) {
	if m.Size() <= 0 {
		return nil, fmt.Errorf("mesh3: invalid mesh %v", m)
	}
	s := &Scenario{M: m, Faults: append([]Coord(nil), faults...), faulty: make([]bool, m.Size())}
	for _, f := range faults {
		if !m.Contains(f) {
			return nil, fmt.Errorf("mesh3: fault %v outside mesh %v", f, m)
		}
		i := m.Index(f)
		if s.faulty[i] {
			return nil, fmt.Errorf("mesh3: duplicate fault %v", f)
		}
		s.faulty[i] = true
	}
	return s, nil
}

// IsFaulty reports whether c is faulty.
func (s *Scenario) IsFaulty(c Coord) bool {
	return s.M.Contains(c) && s.faulty[s.M.Index(c)]
}

// RandomFaults draws k distinct faulty nodes uniformly, skipping nodes
// for which exclude returns true.
func RandomFaults(m Mesh, k int, rng *rand.Rand, exclude func(Coord) bool) ([]Coord, error) {
	if k < 0 || k > m.Size() {
		return nil, fmt.Errorf("mesh3: fault count %d out of range", k)
	}
	taken := make(map[Coord]bool, k)
	out := make([]Coord, 0, k)
	for attempts := 0; len(out) < k; attempts++ {
		if attempts > 1000*(k+1) {
			return nil, fmt.Errorf("mesh3: could not place %d faults", k)
		}
		c := Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height), Z: rng.Intn(m.Depth)}
		if taken[c] || (exclude != nil && exclude(c)) {
			continue
		}
		taken[c] = true
		out = append(out, c)
	}
	return out, nil
}

// BlockSet is the 3-D fault-block construction: the natural
// generalization of Definition 1 deactivates a healthy node when it
// has faulty-or-disabled neighbors in at least two different
// dimensions, iterated to fixpoint; connected dead nodes form fault
// regions whose bounding boxes are reported. Unlike the 2-D case the
// regions need not fill their bounding boxes, so all routing-facing
// computations use the member grid, not the boxes.
type BlockSet struct {
	M     Mesh
	Boxes []Box

	dead    []bool
	faulty  []bool
	blockID []int32
}

// BuildBlocks runs the labeling to fixpoint and collects components.
func BuildBlocks(s *Scenario) *BlockSet {
	m := s.M
	bs := &BlockSet{
		M:       m,
		dead:    make([]bool, m.Size()),
		faulty:  make([]bool, m.Size()),
		blockID: make([]int32, m.Size()),
	}
	for i := range bs.blockID {
		bs.blockID[i] = -1
	}
	var queue []Coord
	for _, f := range s.Faults {
		i := m.Index(f)
		bs.dead[i] = true
		bs.faulty[i] = true
		queue = m.Neighbors(queue, f)
	}
	deadAt := func(c Coord) bool {
		return m.Contains(c) && bs.dead[m.Index(c)]
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		i := m.Index(c)
		if bs.dead[i] {
			continue
		}
		axes := 0
		for a, pair := range [3][2]Dir{{East, West}, {North, South}, {Up, Down}} {
			_ = a
			if deadAt(c.Add(pair[0].Offset())) || deadAt(c.Add(pair[1].Offset())) {
				axes++
			}
		}
		if axes < 2 {
			continue
		}
		bs.dead[i] = true
		queue = m.Neighbors(queue, c)
	}

	// Components and bounding boxes.
	var stack, nbuf []Coord
	for start := 0; start < m.Size(); start++ {
		if !bs.dead[start] || bs.blockID[start] >= 0 {
			continue
		}
		id := int32(len(bs.Boxes))
		box := BoxAround(m.CoordOf(start))
		stack = append(stack[:0], m.CoordOf(start))
		bs.blockID[start] = id
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			box = box.Union(BoxAround(c))
			nbuf = m.Neighbors(nbuf[:0], c)
			for _, n := range nbuf {
				ni := m.Index(n)
				if bs.dead[ni] && bs.blockID[ni] < 0 {
					bs.blockID[ni] = id
					stack = append(stack, n)
				}
			}
		}
		bs.Boxes = append(bs.Boxes, box)
	}
	return bs
}

// InRegion reports whether c belongs to a fault region.
func (bs *BlockSet) InRegion(c Coord) bool {
	return bs.M.Contains(c) && bs.dead[bs.M.Index(c)]
}

// DisabledCount returns the number of healthy nodes deactivated by the
// labeling.
func (bs *BlockSet) DisabledCount() int {
	n := 0
	for i, d := range bs.dead {
		if d && !bs.faulty[i] {
			n++
		}
	}
	return n
}

// BlockedGrid returns a fresh boolean grid of fault-region membership.
func (bs *BlockSet) BlockedGrid() []bool {
	g := make([]bool, len(bs.dead))
	copy(g, bs.dead)
	return g
}
