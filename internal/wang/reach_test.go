package wang

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

func grid(m mesh.Mesh, coords ...mesh.Coord) []bool {
	g := make([]bool, m.Size())
	for _, c := range coords {
		g[m.Index(c)] = true
	}
	return g
}

func TestMinimalPathExistsEmpty(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	blocked := make([]bool, m.Size())
	pairs := []struct{ s, d mesh.Coord }{
		{mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 9, Y: 9}},
		{mesh.Coord{X: 9, Y: 9}, mesh.Coord{X: 0, Y: 0}},
		{mesh.Coord{X: 0, Y: 9}, mesh.Coord{X: 9, Y: 0}},
		{mesh.Coord{X: 5, Y: 5}, mesh.Coord{X: 5, Y: 5}},
		{mesh.Coord{X: 0, Y: 3}, mesh.Coord{X: 9, Y: 3}},
	}
	for _, p := range pairs {
		if !MinimalPathExists(m, p.s, p.d, blocked) {
			t.Errorf("no path %v -> %v in fault-free mesh", p.s, p.d)
		}
	}
}

func TestMinimalPathExistsWall(t *testing.T) {
	// A horizontal wall across the full width blocks every monotone
	// path that must cross it.
	m := mesh.Mesh{Width: 6, Height: 6}
	var wall []mesh.Coord
	for x := 0; x < m.Width; x++ {
		wall = append(wall, mesh.Coord{X: x, Y: 3})
	}
	blocked := grid(m, wall...)

	if MinimalPathExists(m, mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 5, Y: 5}, blocked) {
		t.Error("path should be blocked by full wall")
	}
	if !MinimalPathExists(m, mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 5, Y: 2}, blocked) {
		t.Error("path below the wall should exist")
	}
	if !MinimalPathExists(m, mesh.Coord{X: 0, Y: 4}, mesh.Coord{X: 5, Y: 5}, blocked) {
		t.Error("path above the wall should exist")
	}
}

func TestMinimalPathExistsGap(t *testing.T) {
	// Wall with one gap at x=4: monotone paths must pass through the
	// gap, possible only if the destination is at or beyond it.
	m := mesh.Mesh{Width: 6, Height: 6}
	var wall []mesh.Coord
	for x := 0; x < m.Width; x++ {
		if x != 4 {
			wall = append(wall, mesh.Coord{X: x, Y: 3})
		}
	}
	blocked := grid(m, wall...)
	s := mesh.Coord{X: 0, Y: 0}
	if !MinimalPathExists(m, s, mesh.Coord{X: 5, Y: 5}, blocked) {
		t.Error("path through gap should exist")
	}
	if !MinimalPathExists(m, s, mesh.Coord{X: 4, Y: 5}, blocked) {
		t.Error("path ending at gap column should exist")
	}
	if MinimalPathExists(m, s, mesh.Coord{X: 3, Y: 5}, blocked) {
		t.Error("monotone path cannot come back west of the gap")
	}
}

func TestMinimalPathExistsEndpointsBlocked(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	c := mesh.Coord{X: 1, Y: 1}
	blocked := grid(m, c)
	if MinimalPathExists(m, c, mesh.Coord{X: 3, Y: 3}, blocked) {
		t.Error("blocked source should have no path")
	}
	if MinimalPathExists(m, mesh.Coord{X: 0, Y: 0}, c, blocked) {
		t.Error("blocked destination should have no path")
	}
	if MinimalPathExists(m, mesh.Coord{X: -1, Y: 0}, c, blocked) {
		t.Error("out-of-mesh source should have no path")
	}
}

// TestReachMatchesDP cross-checks the all-destination reach grid
// against the one-shot DP for random configurations and all quadrants.
func TestReachMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		w := 5 + rng.Intn(15)
		h := 5 + rng.Intn(15)
		m := mesh.Mesh{Width: w, Height: h}
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < 0.2
		}
		s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		blocked[m.Index(s)] = false
		r := ReachFrom(m, s, blocked)
		for i := 0; i < m.Size(); i++ {
			d := m.CoordOf(i)
			if got, want := r.CanReach(d), MinimalPathExists(m, s, d, blocked); got != want {
				t.Fatalf("trial %d: reach(%v->%v) = %v, DP = %v", trial, s, d, got, want)
			}
		}
	}
}

func TestReachBlockedSource(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	s := mesh.Coord{X: 2, Y: 2}
	r := ReachFrom(m, s, grid(m, s))
	for i := 0; i < m.Size(); i++ {
		if r.CanReach(m.CoordOf(i)) {
			t.Fatalf("blocked source reaches %v", m.CoordOf(i))
		}
	}
}

// TestMCCEquivalence verifies the defining property of MCCs: for
// quadrant-I source/destination pairs whose endpoints have fault-free
// MCC status, a minimal path avoiding only the faulty nodes exists iff
// one avoiding every type-one MCC node exists. (And symmetrically for
// type-two MCCs with quadrant-II pairs.)
func TestMCCEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		w := 8 + rng.Intn(15)
		h := 8 + rng.Intn(15)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/6), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		faultGrid := make([]bool, m.Size())
		for _, f := range faults {
			faultGrid[m.Index(f)] = true
		}

		for _, typ := range []fault.MCCType{fault.TypeOne, fault.TypeTwo} {
			ms := fault.BuildMCC(sc, typ)
			mccGrid := ms.BlockedGrid()
			for pair := 0; pair < 40; pair++ {
				s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				// Orient the pair to the quadrant served by typ.
				if typ == fault.TypeOne { // quadrant I/III: same sign deltas
					if (d.X-s.X)*(d.Y-s.Y) < 0 {
						s.Y, d.Y = d.Y, s.Y
					}
				} else { // quadrant II/IV: opposite sign deltas
					if (d.X-s.X)*(d.Y-s.Y) > 0 {
						s.Y, d.Y = d.Y, s.Y
					}
				}
				if ms.InMCC(s) || ms.InMCC(d) {
					continue
				}
				got := MinimalPathExists(m, s, d, mccGrid)
				want := MinimalPathExists(m, s, d, faultGrid)
				if got != want {
					t.Fatalf("trial %d: %v MCC equivalence broken for %v->%v: mcc=%v faults=%v",
						trial, typ, s, d, got, want)
				}
			}
		}
	}
}
