package wang

import (
	"sync"
	"sync/atomic"

	"extmesh/internal/mesh"
	"extmesh/internal/metrics"
)

// Process-wide mirrors of the per-cache hit/miss counters, resolved
// once so the hot path pays a single extra atomic add. They aggregate
// over every ReachCache in the process and feed the /metrics and
// /debug/vars expositions of the serving layer; per-cache figures stay
// available through Stats.
var (
	metricHits   = metrics.Default().Counter("reach_cache_hits_total")
	metricMisses = metrics.Default().Counter("reach_cache_misses_total")
)

// DefaultCacheCapacity is the entry bound a ReachCache falls back to
// when the caller passes a negative capacity.
const DefaultCacheCapacity = 1024

// ReachCache memoizes per-root reachability grids (ReachFrom sweeps)
// for one immutable blocked grid, so that repeated minimal-path
// queries against a fixed fault configuration cost an amortized O(1)
// lookup instead of a fresh O(N^2) dynamic-programming sweep per
// query. The root of a grid is the coordinate the sweep starts from —
// a source for existence queries, a destination for the oracle router.
//
// The cache is safe for concurrent use. Entries are built at most once
// (concurrent requests for the same root share one sweep) and, when a
// positive capacity is configured, the least-recently-used entry is
// evicted to admit a new root.
type ReachCache struct {
	m       mesh.Mesh
	blocked *mesh.Bits // bit-packed; every sweep runs the word-parallel kernel
	cap     int

	mu      sync.RWMutex
	entries map[int]*cacheEntry

	tick   atomic.Uint64 // recency clock
	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is one memoized sweep. The once gate makes concurrent
// requests for the same root share a single ReachFrom computation.
type cacheEntry struct {
	once sync.Once
	r    *Reach
	used atomic.Uint64
}

// NewReachCache returns a cache over the blocked grid (indexed by
// mesh.Index). The grid is bit-packed once at construction, so later
// mutations of the slice are not observed and every memoized sweep
// runs word-parallel. capacity bounds the number of memoized roots:
// zero means unbounded (a plain per-root memo, at most m.Size()
// entries) and a negative value selects DefaultCacheCapacity.
func NewReachCache(m mesh.Mesh, blocked []bool, capacity int) *ReachCache {
	return NewReachCacheBits(m, new(mesh.Bits).FromBools(m, blocked), capacity)
}

// NewReachCacheBits is NewReachCache over an already bit-packed
// blocked grid (shaped for m, not copied; the caller must not mutate
// it afterwards), skipping the conversion for callers that keep the
// bitset form around.
func NewReachCacheBits(m mesh.Mesh, blocked *mesh.Bits, capacity int) *ReachCache {
	if capacity < 0 {
		capacity = DefaultCacheCapacity
	}
	return &ReachCache{
		m:       m,
		blocked: blocked,
		cap:     capacity,
		entries: make(map[int]*cacheEntry),
	}
}

// Reach returns the memoized reachability grid rooted at c, computing
// it on first use. The caller must ensure c is inside the mesh. The
// returned grid stays valid even if the entry is later evicted.
func (c *ReachCache) Reach(root mesh.Coord) *Reach {
	idx := c.m.Index(root)
	c.mu.RLock()
	e := c.entries[idx]
	c.mu.RUnlock()
	if e == nil {
		c.mu.Lock()
		e = c.entries[idx]
		if e == nil {
			if c.cap > 0 && len(c.entries) >= c.cap {
				c.evictLocked()
			}
			e = &cacheEntry{}
			c.entries[idx] = e
			c.misses.Add(1)
			metricMisses.Inc()
		} else {
			c.hits.Add(1)
			metricHits.Inc()
		}
		c.mu.Unlock()
	} else {
		c.hits.Add(1)
		metricHits.Inc()
	}
	e.used.Store(c.tick.Add(1))
	e.once.Do(func() { e.r = ReachFromBits(c.m, root, c.blocked) })
	return e.r
}

// CanReach reports whether a minimal path exists between s and d
// avoiding the blocked nodes. It is equivalent to MinimalPathExists
// over the same grid, but amortizes one full-mesh sweep per source
// across every query sharing that source.
func (c *ReachCache) CanReach(s, d mesh.Coord) bool {
	if !c.m.Contains(s) || !c.m.Contains(d) {
		return false
	}
	return c.Reach(s).CanReach(d)
}

// evictLocked removes the least-recently-used entry; the caller holds
// the write lock.
func (c *ReachCache) evictLocked() {
	var (
		victim   int
		oldest   uint64
		haveBest bool
	)
	for idx, e := range c.entries {
		if u := e.used.Load(); !haveBest || u < oldest {
			victim, oldest, haveBest = idx, u, true
		}
	}
	if haveBest {
		delete(c.entries, victim)
	}
}

// Len returns the number of memoized roots.
func (c *ReachCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Capacity returns the configured entry bound (zero means unbounded).
func (c *ReachCache) Capacity() int { return c.cap }

// Stats reports how many Reach lookups hit a memoized sweep and how
// many had to compute one.
func (c *ReachCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
