package wang

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
)

// boolSweepReach is the pre-bitset reference implementation of
// ReachFrom: one bool per node, the four quadrant cones swept cell by
// cell with the monotone recurrence. The bit-parallel kernel is pinned
// against it property-style below; if the kernels ever disagree, this
// is the specification.
func boolSweepReach(m mesh.Mesh, s mesh.Coord, blocked []bool) []bool {
	ok := make([]bool, m.Size())
	if blocked[m.Index(s)] {
		return ok
	}
	for _, sx := range []int{1, -1} {
		for _, sy := range []int{1, -1} {
			xEnd := m.Width
			yEnd := m.Height
			if sx < 0 {
				xEnd = -1
			}
			if sy < 0 {
				yEnd = -1
			}
			for y := s.Y; y != yEnd; y += sy {
				for x := s.X; x != xEnd; x += sx {
					i := y*m.Width + x
					if blocked[i] {
						ok[i] = false
						continue
					}
					if x == s.X && y == s.Y {
						ok[i] = true
						continue
					}
					reach := false
					if x != s.X {
						reach = ok[y*m.Width+(x-sx)]
					}
					if !reach && y != s.Y {
						reach = ok[(y-sy)*m.Width+x]
					}
					ok[i] = reach
				}
			}
		}
	}
	return ok
}

// TestReachBitsetMatchesBoolSweep pins the word-parallel kernel to the
// bool-sweep reference across random meshes, fault densities and
// sources — including widths straddling the 64-column word boundary,
// where the cross-word carries live.
func TestReachBitsetMatchesBoolSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	widths := []int{1, 2, 7, 63, 64, 65, 100, 127, 128, 129, 200}
	for trial := 0; trial < 300; trial++ {
		w := widths[rng.Intn(len(widths))]
		h := 1 + rng.Intn(40)
		m := mesh.Mesh{Width: w, Height: h}
		density := []float64{0, 0.05, 0.2, 0.5, 0.9}[rng.Intn(5)]
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < density
		}
		s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		if trial%5 != 0 {
			blocked[m.Index(s)] = false // mostly-free sources, some blocked
		}

		want := boolSweepReach(m, s, blocked)
		r := ReachFrom(m, s, blocked)
		for i := 0; i < m.Size(); i++ {
			d := m.CoordOf(i)
			if got := r.CanReach(d); got != want[i] {
				t.Fatalf("trial %d (%dx%d, density %.2f): reach(%v->%v) = %v, bool sweep = %v",
					trial, w, h, density, s, d, got, want[i])
			}
		}
		// The compatibility view must materialize the same grid.
		if got := r.Bools(nil); len(got) != len(want) {
			t.Fatalf("Bools length %d, want %d", len(got), len(want))
		} else {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Bools[%d] = %v, want %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReachIntoReuse verifies the arena form stays correct when one
// Reach is cycled across differently shaped meshes and sources — stale
// bits from a larger previous grid must never leak through.
func TestReachIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var r *Reach
	for trial := 0; trial < 100; trial++ {
		w := 1 + rng.Intn(130)
		h := 1 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		blocked := make([]bool, m.Size())
		for i := range blocked {
			blocked[i] = rng.Float64() < 0.3
		}
		s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		r = ReachFromInto(r, m, s, blocked)
		want := boolSweepReach(m, s, blocked)
		for i := 0; i < m.Size(); i++ {
			if got := r.CanReach(m.CoordOf(i)); got != want[i] {
				t.Fatalf("trial %d (%dx%d): reused reach(%v->%v) = %v, want %v",
					trial, w, h, s, m.CoordOf(i), got, want[i])
			}
		}
	}
}

// TestReachCacheBitsMatchesBools verifies the two cache constructors
// answer identically (the []bool form converts to the bitset form).
func TestReachCacheBitsMatchesBools(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := mesh.Mesh{Width: 70, Height: 30}
	blocked := make([]bool, m.Size())
	for i := range blocked {
		blocked[i] = rng.Float64() < 0.15
	}
	cb := NewReachCache(m, blocked, 0)
	bits := new(mesh.Bits).FromBools(m, blocked)
	cc := NewReachCacheBits(m, bits, 0)
	for q := 0; q < 500; q++ {
		s := mesh.Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
		d := mesh.Coord{X: rng.Intn(m.Width), Y: rng.Intn(m.Height)}
		if cb.CanReach(s, d) != cc.CanReach(s, d) {
			t.Fatalf("cache forms disagree on %v->%v", s, d)
		}
	}
}
