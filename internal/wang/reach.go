// Package wang provides the global-information baselines of the paper:
// the exact existence of a minimal path (computed by dynamic
// programming over the monotone routing DAG) and Wang's necessary and
// sufficient coverage condition over fault blocks.
package wang

import (
	"sync"

	"extmesh/internal/mesh"
)

// Reach holds, for one source, the set of nodes reachable by a minimal
// (monotone) path in every quadrant. Because every minimal path from s
// to d moves only in the two directions towards d, reachability is a
// simple prefix DP per quadrant.
type Reach struct {
	M mesh.Mesh
	S mesh.Coord

	ok []bool
}

// ReachFrom computes minimal-path reachability from s to every node of
// the mesh, avoiding nodes for which blocked is true. blocked is
// indexed by mesh.Index. If s itself is blocked nothing is reachable.
func ReachFrom(m mesh.Mesh, s mesh.Coord, blocked []bool) *Reach {
	return ReachFromInto(nil, m, s, blocked)
}

// ReachFromInto is the arena form of ReachFrom: it runs the same
// per-quadrant sweeps into r, reusing r's reachability grid when it is
// large enough (a nil r allocates a fresh one), and returns the filled
// Reach. Results previously read from r describe the new source and
// blocked set after the call.
func ReachFromInto(r *Reach, m mesh.Mesh, s mesh.Coord, blocked []bool) *Reach {
	if r == nil {
		r = &Reach{}
	}
	r.M = m
	r.S = s
	if cap(r.ok) < m.Size() {
		r.ok = make([]bool, m.Size())
	} else {
		r.ok = r.ok[:m.Size()]
	}
	if blocked[m.Index(s)] {
		// The sweeps below never run, so stale entries from a previous
		// use of r must be cleared explicitly.
		clear(r.ok)
		return r
	}
	// Sweep each quadrant cone independently; the axes shared between
	// two cones compute the same value, so overwriting is harmless. The
	// four cones jointly write every node, so no clearing is needed.
	for _, sx := range []int{1, -1} {
		for _, sy := range []int{1, -1} {
			r.sweep(blocked, sx, sy)
		}
	}
	return r
}

// sweep fills the cone of nodes with sign(x-sx)=sx, sign(y-sy)=sy using
// the monotone recurrence reach(c) = !blocked(c) && (reach(pred_x) ||
// reach(pred_y)).
func (r *Reach) sweep(blocked []bool, sx, sy int) {
	m := r.M
	xEnd := m.Width
	yEnd := m.Height
	if sx < 0 {
		xEnd = -1
	}
	if sy < 0 {
		yEnd = -1
	}
	for y := r.S.Y; y != yEnd; y += sy {
		for x := r.S.X; x != xEnd; x += sx {
			i := y*m.Width + x
			if blocked[i] {
				r.ok[i] = false
				continue
			}
			if x == r.S.X && y == r.S.Y {
				r.ok[i] = true
				continue
			}
			ok := false
			if x != r.S.X {
				ok = r.ok[y*m.Width+(x-sx)]
			}
			if !ok && y != r.S.Y {
				ok = r.ok[(y-sy)*m.Width+x]
			}
			r.ok[i] = ok
		}
	}
}

// CanReach reports whether a minimal path exists from the source to d.
func (r *Reach) CanReach(d mesh.Coord) bool {
	return r.ok[r.M.Index(d)]
}

// dpScratch pools the two DP rows of MinimalPathExists so the
// per-packet existence checks of the simulators allocate nothing in
// steady state.
var dpScratch = sync.Pool{New: func() any { return new([]bool) }}

// MinimalPathExists reports whether a minimal path from s to d exists
// avoiding the blocked nodes. It is a one-shot convenience around
// ReachFrom restricted to the s-d rectangle; for repeated queries
// against one blocked grid use a ReachCache instead.
func MinimalPathExists(m mesh.Mesh, s, d mesh.Coord, blocked []bool) bool {
	if !m.Contains(s) || !m.Contains(d) {
		return false
	}
	if blocked[m.Index(s)] || blocked[m.Index(d)] {
		return false
	}
	sx, sy := 1, 1
	if d.X < s.X {
		sx = -1
	}
	if d.Y < s.Y {
		sy = -1
	}
	w := abs(d.X-s.X) + 1
	h := abs(d.Y-s.Y) + 1
	// Local DP over the s-d rectangle in relative coordinates, on
	// pooled row buffers.
	rows := dpScratch.Get().(*[]bool)
	if cap(*rows) < 2*w {
		*rows = make([]bool, 2*w)
	}
	buf := (*rows)[:2*w]
	for i := range buf {
		buf[i] = false
	}
	prev, cur := buf[:w], buf[w:]
	for ry := 0; ry < h; ry++ {
		for rx := 0; rx < w; rx++ {
			c := mesh.Coord{X: s.X + sx*rx, Y: s.Y + sy*ry}
			if blocked[m.Index(c)] {
				cur[rx] = false
				continue
			}
			switch {
			case rx == 0 && ry == 0:
				cur[rx] = true
			case rx == 0:
				cur[rx] = prev[rx]
			case ry == 0:
				cur[rx] = cur[rx-1]
			default:
				cur[rx] = cur[rx-1] || prev[rx]
			}
		}
		prev, cur = cur, prev
	}
	ok := prev[w-1]
	dpScratch.Put(rows)
	return ok
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
