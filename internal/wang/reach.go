// Package wang provides the global-information baselines of the paper:
// the exact existence of a minimal path (computed by dynamic
// programming over the monotone routing DAG) and Wang's necessary and
// sufficient coverage condition over fault blocks.
package wang

import (
	"sync"

	"extmesh/internal/mesh"
)

// Reach holds, for one source, the set of nodes reachable by a minimal
// (monotone) path in every quadrant. Because every minimal path from s
// to d moves only in the two directions towards d, reachability is a
// simple prefix DP per quadrant.
//
// The grid is stored as uint64 bitset rows (mesh.Bits), so each
// quadrant cone sweep computes a whole 64-column span per word
// operation instead of one node per iteration; Bools exposes the
// []bool view for compatibility.
type Reach struct {
	M mesh.Mesh
	S mesh.Coord

	bits    mesh.Bits // reachability, bit x of row y set iff reachable
	scratch mesh.Bits // []bool blocked conversion buffer (Into form)
	cur     []uint64  // per-cone running row of the sweep
}

// ReachFrom computes minimal-path reachability from s to every node of
// the mesh, avoiding nodes for which blocked is true. blocked is
// indexed by mesh.Index. If s itself is blocked nothing is reachable.
func ReachFrom(m mesh.Mesh, s mesh.Coord, blocked []bool) *Reach {
	return ReachFromInto(nil, m, s, blocked)
}

// ReachFromInto is the arena form of ReachFrom: it runs the same
// per-quadrant sweeps into r, reusing r's grids when they are large
// enough (a nil r allocates fresh ones), and returns the filled Reach.
// Results previously read from r describe the new source and blocked
// set after the call. The []bool blocked grid is converted to bitset
// rows on entry; callers sweeping repeatedly over one fault set should
// convert once and use ReachFromBitsInto.
func ReachFromInto(r *Reach, m mesh.Mesh, s mesh.Coord, blocked []bool) *Reach {
	if r == nil {
		r = &Reach{}
	}
	r.scratch.FromBools(m, blocked)
	return ReachFromBitsInto(r, m, s, &r.scratch)
}

// ReachFromBits is ReachFrom over an already bit-packed blocked grid —
// the hot-path form used by ReachCache.
func ReachFromBits(m mesh.Mesh, s mesh.Coord, blocked *mesh.Bits) *Reach {
	return ReachFromBitsInto(nil, m, s, blocked)
}

// ReachFromBitsInto is the arena form of ReachFromBits. blocked must be
// shaped for m; it may alias r.scratch (ReachFromInto does) but not
// r's result grid.
func ReachFromBitsInto(r *Reach, m mesh.Mesh, s mesh.Coord, blocked *mesh.Bits) *Reach {
	if r == nil {
		r = &Reach{}
	}
	r.M = m
	r.S = s
	r.bits.Resize(m) // zeroed; the cone sweeps OR into it
	wpr := r.bits.WordsPerRow()
	if cap(r.cur) < wpr {
		r.cur = make([]uint64, wpr)
	} else {
		r.cur = r.cur[:wpr]
	}
	if blocked.Get(s) {
		return r
	}
	// Sweep each quadrant cone independently; the axes shared between
	// two cones compute the same value, so OR-merging is harmless. Each
	// cone carries its own running row (r.cur), because a monotone path
	// never re-enters another cone's half-plane.
	for _, sx := range []int{1, -1} {
		for _, sy := range []int{1, -1} {
			clear(r.cur)
			r.sweep(blocked, sx, sy)
		}
	}
	return r
}

// smearUp propagates seed bits toward higher bit indices through the
// free mask f (Kogge-Stone occluded fill): the result is every bit of
// f reachable from seed&f by repeated +1 steps that never leave f.
func smearUp(seed, f uint64) uint64 {
	seed &= f
	seed |= f & (seed << 1)
	f &= f << 1
	seed |= f & (seed << 2)
	f &= f << 2
	seed |= f & (seed << 4)
	f &= f << 4
	seed |= f & (seed << 8)
	f &= f << 8
	seed |= f & (seed << 16)
	f &= f << 16
	seed |= f & (seed << 32)
	return seed
}

// smearDown is smearUp towards lower bit indices.
func smearDown(seed, f uint64) uint64 {
	seed &= f
	seed |= f & (seed >> 1)
	f &= f >> 1
	seed |= f & (seed >> 2)
	f &= f >> 2
	seed |= f & (seed >> 4)
	f &= f >> 4
	seed |= f & (seed >> 8)
	f &= f >> 8
	seed |= f & (seed >> 16)
	f &= f >> 16
	seed |= f & (seed >> 32)
	return seed
}

// sweep fills the cone of nodes with sign(x-sx)=sx, sign(y-sy)=sy using
// the monotone recurrence reach(c) = !blocked(c) && (reach(pred_x) ||
// reach(pred_y)), one whole word span per operation: the vertical term
// seeds each row from the cone's previous row, and the horizontal
// closure is a bit-parallel smear through the row's free mask, with a
// one-bit carry linking adjacent words in the propagation direction.
// r.cur must be zeroed by the caller and holds the cone's previous-row
// reach between iterations.
func (r *Reach) sweep(blocked *mesh.Bits, sx, sy int) {
	wpr := r.bits.WordsPerRow()
	srcWord, srcBit := r.S.X>>6, uint(r.S.X&63)
	yEnd := r.M.Height
	if sy < 0 {
		yEnd = -1
	}
	cur := r.cur
	for y := r.S.Y; y != yEnd; y += sy {
		brow := blocked.Row(y)
		rrow := r.bits.Row(y)
		if sx > 0 {
			var carry uint64 // bit 0: column 64w-1 of the previous word reached
			for w := 0; w < wpr; w++ {
				f := ^brow[w] & blocked.TailMask(w)
				seed := (cur[w] | carry) & f
				if y == r.S.Y && w == srcWord {
					seed |= 1 << srcBit // source row seeds itself
				}
				v := smearUp(seed, f)
				cur[w] = v
				carry = v >> 63
				rrow[w] |= v
			}
		} else {
			var carry uint64 // bit 63: column 64w of the previous word reached
			for w := wpr - 1; w >= 0; w-- {
				f := ^brow[w] & blocked.TailMask(w)
				seed := (cur[w] | carry) & f
				if y == r.S.Y && w == srcWord {
					seed |= 1 << srcBit
				}
				v := smearDown(seed, f)
				cur[w] = v
				carry = v << 63
				rrow[w] |= v
			}
		}
	}
}

// CanReach reports whether a minimal path exists from the source to d.
func (r *Reach) CanReach(d mesh.Coord) bool {
	return r.bits.Get(d)
}

// Bits exposes the bitset reachability grid. The caller must not
// mutate it.
func (r *Reach) Bits() *mesh.Bits { return &r.bits }

// Bools materializes the reachability grid into dst (indexed by
// mesh.Index, reallocated as needed) — the compatibility view for
// callers that still consume []bool grids.
func (r *Reach) Bools(dst []bool) []bool {
	return r.bits.Bools(dst)
}

// dpScratch pools the two DP rows of MinimalPathExists so the
// per-packet existence checks of the simulators allocate nothing in
// steady state.
var dpScratch = sync.Pool{New: func() any { return new([]bool) }}

// MinimalPathExists reports whether a minimal path from s to d exists
// avoiding the blocked nodes. It is a one-shot convenience around
// ReachFrom restricted to the s-d rectangle; for repeated queries
// against one blocked grid use a ReachCache instead.
func MinimalPathExists(m mesh.Mesh, s, d mesh.Coord, blocked []bool) bool {
	if !m.Contains(s) || !m.Contains(d) {
		return false
	}
	if blocked[m.Index(s)] || blocked[m.Index(d)] {
		return false
	}
	sx, sy := 1, 1
	if d.X < s.X {
		sx = -1
	}
	if d.Y < s.Y {
		sy = -1
	}
	w := abs(d.X-s.X) + 1
	h := abs(d.Y-s.Y) + 1
	// Local DP over the s-d rectangle in relative coordinates, on
	// pooled row buffers.
	rows := dpScratch.Get().(*[]bool)
	if cap(*rows) < 2*w {
		*rows = make([]bool, 2*w)
	}
	buf := (*rows)[:2*w]
	for i := range buf {
		buf[i] = false
	}
	prev, cur := buf[:w], buf[w:]
	for ry := 0; ry < h; ry++ {
		for rx := 0; rx < w; rx++ {
			c := mesh.Coord{X: s.X + sx*rx, Y: s.Y + sy*ry}
			if blocked[m.Index(c)] {
				cur[rx] = false
				continue
			}
			switch {
			case rx == 0 && ry == 0:
				cur[rx] = true
			case rx == 0:
				cur[rx] = prev[rx]
			case ry == 0:
				cur[rx] = cur[rx-1]
			default:
				cur[rx] = cur[rx-1] || prev[rx]
			}
		}
		prev, cur = cur, prev
	}
	ok := prev[w-1]
	dpScratch.Put(rows)
	return ok
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
