package wang

import (
	"extmesh/internal/mesh"
)

// HasMinimalPathBlocks is Wang's necessary and sufficient condition: a
// minimal path from s to d that avoids every node of every block exists
// iff no sequence of blocks covers s and d on x and none covers them on
// y. The blocks must be pairwise disjoint, non-touching rectangles (as
// produced by the faulty-block labeling) and s and d must lie outside
// all of them.
//
// Our cover relation refines the paper's statement so that it is exact
// against the dynamic-programming ground truth: block j covers block i
// on y iff y(j)min > y(i)max and x(j)min <= x(i)max+1 <= x(j)max — the
// +1 accounts for the first free column east of block i, which is the
// column any monotone path is forced into after passing i.
func HasMinimalPathBlocks(blocks []mesh.Rect, s, d mesh.Coord) bool {
	// Normalize so the destination is in (weak) quadrant I of the
	// source at the origin.
	dx := d.X - s.X
	dy := d.Y - s.Y
	fx, fy := 1, 1
	if dx < 0 {
		fx = -1
		dx = -dx
	}
	if dy < 0 {
		fy = -1
		dy = -dy
	}
	norm := make([]mesh.Rect, 0, len(blocks))
	for _, b := range blocks {
		x1 := fx * (b.MinX - s.X)
		x2 := fx * (b.MaxX - s.X)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		y1 := fy * (b.MinY - s.Y)
		y2 := fy * (b.MaxY - s.Y)
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		norm = append(norm, mesh.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2})
	}
	return !coveredOnY(norm, dx, dy) && !coveredOnX(norm, dx, dy)
}

// coveredOnY detects a barrier of blocks climbing from the source
// column (x=0) to at least the destination column, each band strictly
// above the previous, that every monotone path must fail to cross.
// Coordinates are normalized: source (0,0), destination (dx,dy) with
// dx,dy >= 0.
func coveredOnY(blocks []mesh.Rect, dx, dy int) bool {
	isStart := func(b mesh.Rect) bool {
		return b.MinX <= 0 && b.MaxX >= 0 && b.MinY >= 1
	}
	accepts := func(b mesh.Rect) bool {
		return b.MaxX >= dx && b.MinY <= dy
	}
	covers := func(i, j mesh.Rect) bool { // j covers i on y
		forced := i.MaxX + 1
		return j.MinY > i.MaxY && j.MinX <= forced && forced <= j.MaxX
	}
	return barrierExists(blocks, isStart, accepts, covers)
}

// coveredOnX is coveredOnY with the roles of x and y exchanged.
func coveredOnX(blocks []mesh.Rect, dx, dy int) bool {
	isStart := func(b mesh.Rect) bool {
		return b.MinY <= 0 && b.MaxY >= 0 && b.MinX >= 1
	}
	accepts := func(b mesh.Rect) bool {
		return b.MaxY >= dy && b.MinX <= dx
	}
	covers := func(i, j mesh.Rect) bool { // j covers i on x
		forced := i.MaxY + 1
		return j.MinX > i.MaxX && j.MinY <= forced && forced <= j.MaxY
	}
	return barrierExists(blocks, isStart, accepts, covers)
}

// barrierExists runs a BFS over the cover relation from all start
// blocks and reports whether an accepting block is reachable.
func barrierExists(blocks []mesh.Rect, isStart, accepts func(mesh.Rect) bool, covers func(i, j mesh.Rect) bool) bool {
	n := len(blocks)
	visited := make([]bool, n)
	var queue []int
	for i, b := range blocks {
		if isStart(b) {
			if accepts(b) {
				return true
			}
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := 0; j < n; j++ {
			if visited[j] || !covers(blocks[i], blocks[j]) {
				continue
			}
			if accepts(blocks[j]) {
				return true
			}
			visited[j] = true
			queue = append(queue, j)
		}
	}
	return false
}
