package wang

import (
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

// FuzzCoverageAgainstDP feeds arbitrary fault patterns and endpoint
// pairs into both the coverage condition and the monotone DP and
// requires exact agreement (the necessary-and-sufficient property).
func FuzzCoverageAgainstDP(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(0), uint8(99))
	f.Add([]byte{}, uint8(0), uint8(80))
	f.Add([]byte{11, 12, 21, 33, 44, 55, 66}, uint8(90), uint8(9))

	f.Fuzz(func(t *testing.T, data []byte, rawS, rawD uint8) {
		m := mesh.Mesh{Width: 10, Height: 10}
		seen := make(map[mesh.Coord]bool)
		var faults []mesh.Coord
		for _, b := range data {
			c := m.CoordOf(int(b) % m.Size())
			if !seen[c] {
				seen[c] = true
				faults = append(faults, c)
			}
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)
		s := m.CoordOf(int(rawS) % m.Size())
		d := m.CoordOf(int(rawD) % m.Size())
		if bs.InBlock(s) || bs.InBlock(d) {
			return
		}
		got := HasMinimalPathBlocks(bs.Blocks, s, d)
		want := MinimalPathExists(m, s, d, bs.BlockedGrid())
		if got != want {
			t.Fatalf("coverage %v != DP %v for %v->%v faults %v", got, want, s, d, faults)
		}
	})
}
