package wang

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

func TestHasMinimalPathBlocksSimple(t *testing.T) {
	// Single block between source and a destination in its east shadow:
	// the path routes south of the block, so a minimal path exists.
	blocks := []mesh.Rect{{MinX: 3, MinY: 3, MaxX: 5, MaxY: 5}}
	s := mesh.Coord{X: 0, Y: 0}
	if !HasMinimalPathBlocks(blocks, s, mesh.Coord{X: 8, Y: 4}) {
		t.Error("single block should not cover a reachable destination")
	}
	// Destination northeast beyond the block: also fine (go around).
	if !HasMinimalPathBlocks(blocks, s, mesh.Coord{X: 8, Y: 8}) {
		t.Error("single block never blocks an interior-quadrant destination")
	}
}

func TestHasMinimalPathBlocksBarrier(t *testing.T) {
	// Two blocks forming a staircase barrier on y (cf. Figure 4(a)):
	// block 1 spans the source column, block 2 continues east exactly
	// at the forced column and spans the destination column.
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 8, Y: 9}
	blocks := []mesh.Rect{
		{MinX: -2, MinY: 2, MaxX: 4, MaxY: 3},
		{MinX: 5, MinY: 6, MaxX: 9, MaxY: 7},
	}
	if HasMinimalPathBlocks(blocks, s, d) {
		t.Error("staircase barrier should cover s and d on y")
	}
	// Pulling block 2 one column east opens a corridor at x=5.
	open := []mesh.Rect{blocks[0], {MinX: 6, MinY: 6, MaxX: 9, MaxY: 7}}
	if !HasMinimalPathBlocks(open, s, d) {
		t.Error("corridor at the forced column should admit a minimal path")
	}
}

func TestHasMinimalPathBlocksAxisAligned(t *testing.T) {
	s := mesh.Coord{X: 0, Y: 0}
	// Destination due east with a block sitting on the row.
	blocks := []mesh.Rect{{MinX: 3, MinY: 0, MaxX: 4, MaxY: 1}}
	if HasMinimalPathBlocks(blocks, s, mesh.Coord{X: 8, Y: 0}) {
		t.Error("block on the only row should block a same-row destination")
	}
	if !HasMinimalPathBlocks(blocks, s, mesh.Coord{X: 2, Y: 0}) {
		t.Error("destination before the block should be reachable")
	}
	// Destination due north with a clear column.
	if !HasMinimalPathBlocks(blocks, s, mesh.Coord{X: 0, Y: 9}) {
		t.Error("clear column to a same-column destination should be open")
	}
}

func TestHasMinimalPathBlocksQuadrants(t *testing.T) {
	// Symmetric scenario reflected into each quadrant: block adjacent
	// to the source row covering the source column.
	for _, q := range []struct {
		name string
		d    mesh.Coord
		b    mesh.Rect
	}{
		{name: "QI", d: mesh.Coord{X: 5, Y: 5}, b: mesh.Rect{MinX: -1, MinY: 2, MaxX: 6, MaxY: 3}},
		{name: "QII", d: mesh.Coord{X: -5, Y: 5}, b: mesh.Rect{MinX: -6, MinY: 2, MaxX: 1, MaxY: 3}},
		{name: "QIII", d: mesh.Coord{X: -5, Y: -5}, b: mesh.Rect{MinX: -6, MinY: -3, MaxX: 1, MaxY: -2}},
		{name: "QIV", d: mesh.Coord{X: 5, Y: -5}, b: mesh.Rect{MinX: -1, MinY: -3, MaxX: 6, MaxY: -2}},
	} {
		t.Run(q.name, func(t *testing.T) {
			s := mesh.Coord{X: 0, Y: 0}
			if HasMinimalPathBlocks([]mesh.Rect{q.b}, s, q.d) {
				t.Errorf("block %v should cover %v -> %v", q.b, s, q.d)
			}
		})
	}
}

// TestCoverageMatchesDP is the central equivalence property: for block
// sets produced by the faulty-block labeling, Wang's coverage condition
// agrees exactly with the monotone DP over the blocked grid, for random
// source/destination pairs in all quadrants.
func TestCoverageMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		w := 8 + rng.Intn(20)
		h := 8 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/5), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)
		blocked := bs.BlockedGrid()

		for pair := 0; pair < 60; pair++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if bs.InBlock(s) || bs.InBlock(d) {
				continue
			}
			got := HasMinimalPathBlocks(bs.Blocks, s, d)
			want := MinimalPathExists(m, s, d, blocked)
			if got != want {
				t.Fatalf("trial %d: coverage(%v->%v) = %v, DP = %v (blocks %v)",
					trial, s, d, got, want, bs.Blocks)
			}
		}
	}
}

func TestHasMinimalPathBlocksNoBlocks(t *testing.T) {
	if !HasMinimalPathBlocks(nil, mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 5, Y: 7}) {
		t.Error("no blocks should always admit a minimal path")
	}
}
