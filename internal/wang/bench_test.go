package wang

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
)

// benchGrid builds a 200x200 blocked grid at the paper's peak fault
// density (200 faults).
func benchGrid(b *testing.B) (mesh.Mesh, []bool) {
	b.Helper()
	m := mesh.Mesh{Width: 200, Height: 200}
	rng := rand.New(rand.NewSource(11))
	blocked := make([]bool, m.Size())
	placed := 0
	for placed < 200 {
		i := rng.Intn(m.Size())
		if !blocked[i] {
			blocked[i] = true
			placed++
		}
	}
	return m, blocked
}

// BenchmarkMinimalPathExists is the uncached per-query baseline: one
// rectangle DP per call.
func BenchmarkMinimalPathExists(b *testing.B) {
	m, blocked := benchGrid(b)
	s := m.Center()
	d := mesh.Coord{X: m.Width - 5, Y: m.Height - 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MinimalPathExists(m, s, d, blocked)
	}
}

// BenchmarkReachCacheHit measures the amortized cached query: after
// the first sweep every query is a lookup.
func BenchmarkReachCacheHit(b *testing.B) {
	m, blocked := benchGrid(b)
	s := m.Center()
	c := NewReachCache(m, blocked, 0)
	dests := make([]mesh.Coord, 64)
	for i := range dests {
		dests[i] = mesh.Coord{X: (s.X + 3 + i) % m.Width, Y: (s.Y + 5 + 2*i) % m.Height}
	}
	c.CanReach(s, dests[0]) // pay the sweep outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.CanReach(s, dests[i%len(dests)])
	}
}

// BenchmarkReachFromBits measures one full-mesh word-parallel sweep on
// the 200x200 scenario — the cost a ReachCache miss pays.
func BenchmarkReachFromBits(b *testing.B) {
	m, blocked := benchGrid(b)
	bits := new(mesh.Bits).FromBools(m, blocked)
	s := m.Center()
	var r *Reach
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = ReachFromBitsInto(r, m, s, bits)
	}
}

// BenchmarkReachFromBoolSweep is the retired per-cell sweep on the same
// scenario, kept as the before-side of the bitset speedup.
func BenchmarkReachFromBoolSweep(b *testing.B) {
	m, blocked := benchGrid(b)
	s := m.Center()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = boolSweepReach(m, s, blocked)
	}
}

// BenchmarkReachCacheMiss measures the worst case: every query evicts
// and re-sweeps (capacity 1, alternating sources).
func BenchmarkReachCacheMiss(b *testing.B) {
	m, blocked := benchGrid(b)
	c := NewReachCache(m, blocked, 1)
	a := mesh.Coord{X: 1, Y: 1}
	z := mesh.Coord{X: m.Width - 2, Y: m.Height - 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_ = c.CanReach(a, z)
		} else {
			_ = c.CanReach(z, a)
		}
	}
}
