package wang

import (
	"math/rand"
	"sync"
	"testing"

	"extmesh/internal/mesh"
)

// randomBlocked returns a blocked grid with roughly density*Size
// blocked nodes.
func randomBlocked(m mesh.Mesh, density float64, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	blocked := make([]bool, m.Size())
	for i := range blocked {
		blocked[i] = rng.Float64() < density
	}
	return blocked
}

// TestReachCacheMatchesMinimalPathExists checks that the cached answer
// agrees with the one-shot DP for every pair of a small mesh,
// including blocked endpoints and repeated (hit-path) queries.
func TestReachCacheMatchesMinimalPathExists(t *testing.T) {
	m := mesh.Mesh{Width: 11, Height: 9}
	for seed := int64(0); seed < 4; seed++ {
		blocked := randomBlocked(m, 0.18, seed)
		c := NewReachCache(m, blocked, 0)
		for pass := 0; pass < 2; pass++ { // second pass hits the cache
			for si := 0; si < m.Size(); si++ {
				for di := 0; di < m.Size(); di++ {
					s, d := m.CoordOf(si), m.CoordOf(di)
					got := c.CanReach(s, d)
					want := MinimalPathExists(m, s, d, blocked)
					if got != want {
						t.Fatalf("seed %d: CanReach(%v,%v) = %v, want %v", seed, s, d, got, want)
					}
				}
			}
		}
	}
}

// TestReachCacheOutsideMesh checks the bounds guards.
func TestReachCacheOutsideMesh(t *testing.T) {
	m := mesh.Mesh{Width: 5, Height: 5}
	c := NewReachCache(m, make([]bool, m.Size()), 0)
	in := mesh.Coord{X: 2, Y: 2}
	for _, out := range []mesh.Coord{{X: -1, Y: 0}, {X: 5, Y: 0}, {X: 0, Y: -1}, {X: 0, Y: 5}} {
		if c.CanReach(out, in) || c.CanReach(in, out) {
			t.Fatalf("CanReach accepted out-of-mesh coordinate %v", out)
		}
	}
}

// TestReachCacheEviction checks that a bounded cache never exceeds its
// capacity and keeps answering correctly through evictions.
func TestReachCacheEviction(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	blocked := randomBlocked(m, 0.15, 7)
	c := NewReachCache(m, blocked, 4)
	for si := 0; si < m.Size(); si++ {
		s := m.CoordOf(si)
		d := m.CoordOf((si*31 + 17) % m.Size())
		if got, want := c.CanReach(s, d), MinimalPathExists(m, s, d, blocked); got != want {
			t.Fatalf("CanReach(%v,%v) = %v, want %v", s, d, got, want)
		}
		if c.Len() > 4 {
			t.Fatalf("cache grew to %d entries, capacity 4", c.Len())
		}
	}
	hits, misses := c.Stats()
	if misses == 0 {
		t.Fatal("expected misses while cycling through 100 sources")
	}
	_ = hits
}

// TestReachCacheLRUKeepsHotRoot checks that the recency policy keeps a
// continuously re-queried root cached while cold roots cycle through.
func TestReachCacheLRUKeepsHotRoot(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	blocked := make([]bool, m.Size())
	c := NewReachCache(m, blocked, 3)
	hot := mesh.Coord{X: 0, Y: 0}
	c.Reach(hot)
	for i := 1; i < 30; i++ {
		c.Reach(m.CoordOf(i))
		c.Reach(hot) // touch the hot root after every cold insert
	}
	hits, _ := c.Stats()
	if hits < 29 {
		t.Fatalf("hot root was evicted: only %d hits", hits)
	}
}

// TestReachCacheDefaultCapacity checks the negative-capacity fallback.
func TestReachCacheDefaultCapacity(t *testing.T) {
	m := mesh.Mesh{Width: 4, Height: 4}
	c := NewReachCache(m, make([]bool, m.Size()), -1)
	if c.Capacity() != DefaultCacheCapacity {
		t.Fatalf("Capacity() = %d, want %d", c.Capacity(), DefaultCacheCapacity)
	}
}

// TestReachCacheConcurrent hammers one cache from many goroutines; run
// with -race. Answers must stay consistent with the one-shot DP.
func TestReachCacheConcurrent(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	blocked := randomBlocked(m, 0.12, 3)
	c := NewReachCache(m, blocked, 8) // small capacity: force evictions
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				s := m.CoordOf(rng.Intn(m.Size()))
				d := m.CoordOf(rng.Intn(m.Size()))
				if got, want := c.CanReach(s, d), MinimalPathExists(m, s, d, blocked); got != want {
					t.Errorf("CanReach(%v,%v) = %v, want %v", s, d, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
