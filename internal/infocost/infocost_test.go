package infocost

import (
	"math/rand"
	"testing"

	"extmesh/internal/fault"
	"extmesh/internal/mesh"
)

func measureRandom(t *testing.T, n, k int, seed int64) Report {
	t.Helper()
	m := mesh.Mesh{Width: n, Height: n}
	rng := rand.New(rand.NewSource(seed))
	faults, err := fault.RandomFaults(m, k, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatal(err)
	}
	bs := fault.BuildBlocks(sc)
	return Measure(m, bs.BlockedGrid(), bs.Blocks)
}

func TestMeasureEmpty(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	rep := Measure(m, make([]bool, m.Size()), nil)
	if rep.GlobalInts != 0 || rep.LimitedInts() != 0 {
		t.Errorf("fault-free storage should be zero: %+v", rep)
	}
	if rep.Ratio() != 0 || rep.PerNodeGlobal() != 0 || rep.PerNodeLimited() != 0 {
		t.Errorf("zero-case accessors wrong: %+v", rep)
	}
}

func TestMeasureSingleBlock(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	blocked := make([]bool, m.Size())
	blocked[m.Index(mesh.Coord{X: 4, Y: 5})] = true
	rep := Measure(m, blocked, []mesh.Rect{{MinX: 4, MinY: 5, MaxX: 4, MaxY: 5}})

	if rep.GlobalInts != 100*4 {
		t.Errorf("GlobalInts = %d, want 400", rep.GlobalInts)
	}
	// Affected row 5 (9 free nodes) + column 4 (9 free nodes) carry
	// levels.
	if rep.LevelInts != 4*18 {
		t.Errorf("LevelInts = %d, want 72", rep.LevelInts)
	}
	// L1 covers (4,4) plus the westward row 4 (x=0..3): 5 nodes; L3
	// covers (3,5) plus the southward column 3 (y=0..4): 6 nodes.
	if rep.LineInts != 4*11 {
		t.Errorf("LineInts = %d, want 44", rep.LineInts)
	}
	if rep.Ratio() <= 1 {
		t.Errorf("limited model should already win: ratio %v", rep.Ratio())
	}
}

// TestSavingsGrowWithMeshSize checks the paper's scalability claim: at
// fixed fault density the savings factor grows with the mesh.
func TestSavingsGrowWithMeshSize(t *testing.T) {
	small := measureRandom(t, 40, 16, 1)
	large := measureRandom(t, 120, 144, 1)
	if small.Ratio() <= 1 || large.Ratio() <= 1 {
		t.Fatalf("limited model should win at both sizes: %v, %v", small.Ratio(), large.Ratio())
	}
	if large.Ratio() <= small.Ratio() {
		t.Errorf("savings should grow with mesh size: small %v, large %v", small.Ratio(), large.Ratio())
	}
	// The limited model stays near-constant per node while the global
	// model grows linearly with the block count.
	if large.PerNodeGlobal() <= small.PerNodeGlobal() {
		t.Errorf("global per-node cost should grow: %v vs %v", small.PerNodeGlobal(), large.PerNodeGlobal())
	}
}
