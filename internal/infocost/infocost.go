// Package infocost quantifies the paper's memory argument: limited
// global information (extended safety levels plus boundary-line
// descriptors) is far cheaper to store than a global fault map at
// every node, and the gap widens with mesh size. Costs are counted in
// integers stored per node, the unit the paper's O(n^2)-per-node
// comparison uses.
package infocost

import (
	"extmesh/internal/mesh"
	"extmesh/internal/route"
	"extmesh/internal/safety"
)

// Report is the measured storage of the two information models on one
// fault configuration.
type Report struct {
	Nodes  int // total mesh nodes
	Blocks int // fault regions

	// GlobalInts is the total storage of the global-information model:
	// every node keeps every block descriptor (4 integers per block).
	GlobalInts int

	// LevelInts is the storage of the extended safety levels: 4
	// integers at each node that carries a non-default level (nodes on
	// affected rows or columns; everyone else keeps the implicit
	// (inf,inf,inf,inf)).
	LevelInts int

	// LineInts is the storage of the boundary-line information: 4
	// integers (one block descriptor) per line membership at each node
	// on a boundary line.
	LineInts int
}

// LimitedInts is the total storage of the paper's limited model.
func (r Report) LimitedInts() int {
	return r.LevelInts + r.LineInts
}

// PerNodeGlobal is the average integers per node under the global
// model.
func (r Report) PerNodeGlobal() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return float64(r.GlobalInts) / float64(r.Nodes)
}

// PerNodeLimited is the average integers per node under the limited
// model.
func (r Report) PerNodeLimited() float64 {
	if r.Nodes == 0 {
		return 0
	}
	return float64(r.LimitedInts()) / float64(r.Nodes)
}

// Ratio is global divided by limited storage (the savings factor); 0
// when the limited model stores nothing.
func (r Report) Ratio() float64 {
	if r.LimitedInts() == 0 {
		return 0
	}
	return float64(r.GlobalInts) / float64(r.LimitedInts())
}

// Measure computes the storage of both information models for one
// blocked grid and its block list.
func Measure(m mesh.Mesh, blocked []bool, blocks []mesh.Rect) Report {
	rep := Report{Nodes: m.Size(), Blocks: len(blocks)}
	rep.GlobalInts = m.Size() * 4 * len(blocks)

	levels := safety.Compute(m, blocked)
	for i := 0; i < m.Size(); i++ {
		if blocked[i] {
			continue
		}
		lvl := levels.At(m.CoordOf(i))
		if lvl.E < safety.Unbounded || lvl.W < safety.Unbounded ||
			lvl.N < safety.Unbounded || lvl.S < safety.Unbounded {
			rep.LevelInts += 4
		}
	}
	for _, tags := range route.Lines(m, blocked) {
		rep.LineInts += 4 * len(tags)
	}
	return rep
}
