// Package route implements the paper's routing machinery: the
// faulty-block-information model (boundary lines L1..L4 with the
// turn/join rule when a line meets another block), Wu's protocol for
// minimal routing using only node-local boundary information, the
// two-phase routing used by the extensions, and a full-information
// oracle router that serves as the ground-truth baseline.
package route

import (
	"errors"
	"fmt"

	"extmesh/internal/mesh"
)

// Path is the sequence of nodes a packet visits, including both
// endpoints.
type Path []mesh.Coord

// Hops returns the number of links traversed.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Minimal reports whether the path length equals the Manhattan
// distance between its endpoints.
func (p Path) Minimal() bool {
	if len(p) == 0 {
		return false
	}
	return p.Hops() == mesh.Distance(p[0], p[len(p)-1])
}

// Validate checks that the path is non-empty, stays inside the mesh,
// advances one hop at a time and never enters a blocked node.
func (p Path) Validate(m mesh.Mesh, blocked []bool) error {
	if len(p) == 0 {
		return errors.New("route: empty path")
	}
	for i, c := range p {
		if !m.Contains(c) {
			return fmt.Errorf("route: node %v at position %d outside mesh", c, i)
		}
		if blocked[m.Index(c)] {
			return fmt.Errorf("route: node %v at position %d is blocked", c, i)
		}
		if i > 0 && mesh.Distance(p[i-1], c) != 1 {
			return fmt.Errorf("route: nodes %v and %v at positions %d-%d not adjacent", p[i-1], c, i-1, i)
		}
	}
	return nil
}

// StuckError reports a routing failure: the protocol had no usable
// move at node At while heading for To.
type StuckError struct {
	At mesh.Coord
	To mesh.Coord
}

// Error implements the error interface.
func (e *StuckError) Error() string {
	return fmt.Sprintf("route: stuck at %v heading for %v", e.At, e.To)
}
