package route

import "sync"

// ViewCache shares the orientation views Routers build — the reflected
// blocked grid plus its boundary-line contours, an O(mesh) construction
// — across Routers created for the same fault state. It mirrors the
// reach cache's version discipline: entries are keyed by the caller's
// generation stamp and model slot, and the first request carrying a
// newer generation drops every older entry, so a view can never be
// served against a blocked grid it was not built from. A straggler
// Router still holding an older generation builds its views privately
// without publishing them.
//
// The zero value is not usable; create with NewViewCache. All methods
// are safe for concurrent use.
type ViewCache struct {
	mu    sync.Mutex
	gen   uint64
	has   bool
	views map[viewKey]*view
}

// viewKey addresses one orientation view of one blocked-grid model
// (block vs MCC labelings of the same fault set build different grids).
type viewKey struct {
	model  int
	fx, fy bool
}

// NewViewCache returns an empty cache.
func NewViewCache() *ViewCache {
	return &ViewCache{views: make(map[viewKey]*view)}
}

// getOrBuild returns the view for (gen, model, fx, fy), building it
// with build on a miss. The build runs outside the lock — it is the
// expensive part — and the first finished build for a key wins, so two
// racing Routers end up sharing one view.
func (vc *ViewCache) getOrBuild(gen uint64, model int, fx, fy bool, build func() *view) *view {
	key := viewKey{model: model, fx: fx, fy: fy}
	vc.mu.Lock()
	if !vc.has || gen > vc.gen {
		clear(vc.views)
		vc.gen, vc.has = gen, true
	}
	current := gen == vc.gen
	if current {
		if v := vc.views[key]; v != nil {
			vc.mu.Unlock()
			return v
		}
	}
	vc.mu.Unlock()

	v := build()

	if current {
		vc.mu.Lock()
		if vc.has && gen == vc.gen {
			if w := vc.views[key]; w != nil {
				v = w // a concurrent build published first; share it
			} else {
				vc.views[key] = v
			}
		}
		vc.mu.Unlock()
	}
	return v
}

// Len reports how many views are currently cached (test hook).
func (vc *ViewCache) Len() int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.views)
}

// Generation reports the generation the cached views belong to (test
// hook; 0 with ok=false when nothing has been cached yet).
func (vc *ViewCache) Generation() (uint64, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.gen, vc.has
}
