package route

import (
	"errors"
	"math/rand"
	"testing"

	"extmesh/internal/core"
	"extmesh/internal/fault"
	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

func routerFrom(t *testing.T, m mesh.Mesh, faults []mesh.Coord) (*Router, *fault.BlockSet) {
	t.Helper()
	sc, err := fault.NewScenario(m, faults)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	bs := fault.BuildBlocks(sc)
	return NewRouter(m, bs.BlockedGrid()), bs
}

func TestRouteFaultFree(t *testing.T) {
	m := mesh.Mesh{Width: 10, Height: 10}
	r, _ := routerFrom(t, m, nil)
	pairs := []struct{ s, d mesh.Coord }{
		{mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 9, Y: 9}},
		{mesh.Coord{X: 9, Y: 9}, mesh.Coord{X: 0, Y: 0}},
		{mesh.Coord{X: 0, Y: 9}, mesh.Coord{X: 9, Y: 0}},
		{mesh.Coord{X: 9, Y: 0}, mesh.Coord{X: 0, Y: 9}},
		{mesh.Coord{X: 3, Y: 3}, mesh.Coord{X: 3, Y: 3}},
		{mesh.Coord{X: 0, Y: 4}, mesh.Coord{X: 9, Y: 4}},
		{mesh.Coord{X: 4, Y: 9}, mesh.Coord{X: 4, Y: 0}},
	}
	for _, p := range pairs {
		path, err := r.Route(p.s, p.d)
		if err != nil {
			t.Fatalf("Route(%v,%v): %v", p.s, p.d, err)
		}
		if !path.Minimal() {
			t.Fatalf("Route(%v,%v) not minimal: %v", p.s, p.d, path)
		}
		if path[0] != p.s || path[len(path)-1] != p.d {
			t.Fatalf("Route(%v,%v) endpoints wrong: %v", p.s, p.d, path)
		}
		if err := path.Validate(m, make([]bool, m.Size())); err != nil {
			t.Fatalf("Route(%v,%v) invalid: %v", p.s, p.d, err)
		}
	}
}

func TestRouteAroundSingleBlock(t *testing.T) {
	// Paper example block [2:6, 3:6]; source at the origin is safe for
	// every first-quadrant destination, so the protocol must always
	// produce a minimal path.
	m := mesh.Mesh{Width: 12, Height: 12}
	faults := []mesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	}
	r, bs := routerFrom(t, m, faults)
	s := mesh.Coord{X: 0, Y: 0}
	blocked := bs.BlockedGrid()
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			d := mesh.Coord{X: x, Y: y}
			if bs.InBlock(d) {
				continue
			}
			path, err := r.Route(s, d)
			if err != nil {
				t.Fatalf("Route(%v,%v): %v", s, d, err)
			}
			if !path.Minimal() {
				t.Fatalf("Route(%v,%v) length %d, want %d", s, d, path.Hops(), mesh.Distance(s, d))
			}
			if err := path.Validate(m, blocked); err != nil {
				t.Fatalf("Route(%v,%v): %v", s, d, err)
			}
		}
	}
}

func TestRouteEastShadow(t *testing.T) {
	// Destination in the east shadow (region R6) of the block: the
	// packet must stay below the block; a naive greedy router that
	// climbs early would get trapped against the block's west side.
	m := mesh.Mesh{Width: 14, Height: 14}
	var faults []mesh.Coord
	for x := 4; x <= 8; x++ {
		for y := 5; y <= 9; y++ {
			faults = append(faults, mesh.Coord{X: x, Y: y})
		}
	}
	r, bs := routerFrom(t, m, faults)
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 11, Y: 7} // east shadow: y inside block rows

	path, err := r.Route(s, d)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if !path.Minimal() {
		t.Fatalf("path not minimal: %d hops for distance %d", path.Hops(), mesh.Distance(s, d))
	}
	if err := path.Validate(m, bs.BlockedGrid()); err != nil {
		t.Fatal(err)
	}
	// The path must pass below the block (y <= 4 while 4 <= x <= 8).
	for _, c := range path {
		if c.X >= 4 && c.X <= 8 && c.Y > 4 {
			t.Fatalf("path climbed into the blocked band at %v: %v", c, path)
		}
	}
}

func TestRouteNorthShadow(t *testing.T) {
	// Mirror case: destination in the north shadow (region R4).
	m := mesh.Mesh{Width: 14, Height: 14}
	var faults []mesh.Coord
	for x := 5; x <= 9; x++ {
		for y := 4; y <= 8; y++ {
			faults = append(faults, mesh.Coord{X: x, Y: y})
		}
	}
	r, bs := routerFrom(t, m, faults)
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 7, Y: 11}

	path, err := r.Route(s, d)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if !path.Minimal() {
		t.Fatalf("path not minimal: %d hops for distance %d", path.Hops(), mesh.Distance(s, d))
	}
	if err := path.Validate(m, bs.BlockedGrid()); err != nil {
		t.Fatal(err)
	}
	for _, c := range path {
		if c.Y >= 4 && c.Y <= 8 && c.X > 4 {
			t.Fatalf("path drifted into the blocked band at %v: %v", c, path)
		}
	}
}

func TestRouteMergedBoundary(t *testing.T) {
	// Two blocks arranged so that L1 of the eastern block turns around
	// the western block (Figure 3(b)): the packet must already stay low
	// on the joined section west of the first block.
	m := mesh.Mesh{Width: 20, Height: 20}
	var faults []mesh.Coord
	// Western block [5:7, 2:8].
	for x := 5; x <= 7; x++ {
		for y := 2; y <= 8; y++ {
			faults = append(faults, mesh.Coord{X: x, Y: y})
		}
	}
	// Eastern block [10:13, 6:10]; its L1 row (y=5) is blocked by the
	// western block, so L1 turns south around it.
	for x := 10; x <= 13; x++ {
		for y := 6; y <= 10; y++ {
			faults = append(faults, mesh.Coord{X: x, Y: y})
		}
	}
	r, bs := routerFrom(t, m, faults)
	s := mesh.Coord{X: 0, Y: 1}  // on the joined L1 section (row 1 = MinY-1 of western block)
	d := mesh.Coord{X: 16, Y: 8} // east shadow of the eastern block

	if !wang.MinimalPathExists(m, s, d, bs.BlockedGrid()) {
		t.Fatal("scenario broken: no minimal path at all")
	}
	path, err := r.Route(s, d)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if !path.Minimal() {
		t.Fatalf("path not minimal: %d hops for distance %d: %v", path.Hops(), mesh.Distance(s, d), path)
	}
	if err := path.Validate(m, bs.BlockedGrid()); err != nil {
		t.Fatal(err)
	}
}

func TestRouteEndpointErrors(t *testing.T) {
	m := mesh.Mesh{Width: 8, Height: 8}
	r, _ := routerFrom(t, m, []mesh.Coord{{X: 4, Y: 4}})
	if _, err := r.Route(mesh.Coord{X: -1, Y: 0}, mesh.Coord{X: 1, Y: 1}); err == nil {
		t.Error("out-of-mesh source should fail")
	}
	if _, err := r.Route(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 4, Y: 4}); err == nil {
		t.Error("blocked destination should fail")
	}
	if _, err := r.Route(mesh.Coord{X: 4, Y: 4}, mesh.Coord{X: 0, Y: 0}); err == nil {
		t.Error("blocked source should fail")
	}
}

func TestRouteVia(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	r, bs := routerFrom(t, m, []mesh.Coord{
		{X: 4, Y: 2}, {X: 5, Y: 2}, {X: 6, Y: 2},
		{X: 4, Y: 3}, {X: 5, Y: 3}, {X: 6, Y: 3},
	})
	s := mesh.Coord{X: 0, Y: 2}
	d := mesh.Coord{X: 8, Y: 10}
	w := mesh.Coord{X: 0, Y: 6}
	path, err := r.RouteVia(s, d, w)
	if err != nil {
		t.Fatalf("RouteVia: %v", err)
	}
	if path.Hops() != mesh.Distance(s, w)+mesh.Distance(w, d) {
		t.Fatalf("two-phase length %d, want %d", path.Hops(), mesh.Distance(s, w)+mesh.Distance(w, d))
	}
	if err := path.Validate(m, bs.BlockedGrid()); err != nil {
		t.Fatal(err)
	}
	// The waypoint must be on the path exactly once.
	seen := 0
	for _, c := range path {
		if c == w {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("waypoint appears %d times", seen)
	}

	// A failing leg propagates the error.
	if _, err := r.RouteVia(s, d, mesh.Coord{X: 4, Y: 2}); err == nil {
		t.Error("blocked waypoint should fail")
	}
}

func TestOracle(t *testing.T) {
	m := mesh.Mesh{Width: 12, Height: 12}
	_, bs := routerFrom(t, m, []mesh.Coord{
		{X: 3, Y: 3}, {X: 3, Y: 4}, {X: 4, Y: 4}, {X: 5, Y: 4},
		{X: 6, Y: 4}, {X: 2, Y: 5}, {X: 5, Y: 5}, {X: 3, Y: 6},
	})
	blocked := bs.BlockedGrid()
	s := mesh.Coord{X: 0, Y: 0}
	for y := 0; y < m.Height; y++ {
		for x := 0; x < m.Width; x++ {
			d := mesh.Coord{X: x, Y: y}
			want := wang.MinimalPathExists(m, s, d, blocked)
			path, err := Oracle(m, blocked, s, d)
			if want != (err == nil) {
				t.Fatalf("Oracle(%v->%v) err=%v, existence=%v", s, d, err, want)
			}
			if err != nil {
				var stuck *StuckError
				if !errors.As(err, &stuck) {
					t.Fatalf("Oracle error type: %v", err)
				}
				continue
			}
			if !path.Minimal() {
				t.Fatalf("Oracle path not minimal for %v->%v", s, d)
			}
			if err := path.Validate(m, blocked); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestRouterSoundness is the end-to-end guarantee of the paper: for
// random fault configurations under both fault models, whenever the
// base condition or an extension ensures a path, Wu's protocol (with
// two-phase routing through the witness waypoints) delivers a path of
// exactly the promised length.
func TestRouterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 50; trial++ {
		w := 12 + rng.Intn(20)
		h := 12 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/8), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)

		type modelCase struct {
			name    string
			blocked []bool
			quadOne bool // restrict pairs to quadrants I/III
		}
		mcc := fault.BuildMCC(sc, fault.TypeOne)
		cases := []modelCase{
			{name: "blocks", blocked: bs.BlockedGrid()},
			{name: "mcc", blocked: mcc.BlockedGrid(), quadOne: true},
		}
		for _, mc := range cases {
			md, err := core.NewModel(m, mc.blocked)
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			r := NewRouter(m, mc.blocked)
			for pair := 0; pair < 40; pair++ {
				s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if mc.quadOne && (d.X-s.X)*(d.Y-s.Y) < 0 {
					s.Y, d.Y = d.Y, s.Y
				}
				if mc.blocked[m.Index(s)] || mc.blocked[m.Index(d)] {
					continue
				}

				verify := func(name string, a core.Assurance) {
					t.Helper()
					if a.Verdict == core.Unknown {
						return
					}
					path, err := r.RouteVia(s, d, a.Via()...)
					if err != nil {
						t.Fatalf("trial %d %s %s: mesh %v route %v->%v via %v: %v\nfaults: %v",
							trial, mc.name, name, m, s, d, a.Via(), err, faults)
					}
					want := mesh.Distance(s, d)
					if a.Verdict == core.SubMinimal {
						want += 2
					}
					if path.Hops() != want {
						t.Fatalf("trial %d %s %s: %v->%v length %d, want %d",
							trial, mc.name, name, s, d, path.Hops(), want)
					}
					if err := path.Validate(m, mc.blocked); err != nil {
						t.Fatalf("trial %d %s %s: %v", trial, mc.name, name, err)
					}
				}

				if md.Safe(s, d) {
					verify("base", core.Assurance{Verdict: core.Minimal})
				}
				verify("ext1", md.Extension1(s, d))
				verify("ext2", md.Extension2(s, d, 1))
			}
		}
	}
}

func TestLineKindString(t *testing.T) {
	if LineL1.String() != "L1" || LineL3.String() != "L3" || LineKind(7).String() != "?" {
		t.Error("LineKind names wrong")
	}
}

// TestNextHopMatchesRoute verifies the protocol is memoryless: walking
// NextHop one hop at a time reproduces Route's trajectory exactly.
func TestNextHopMatchesRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		w := 10 + rng.Intn(15)
		h := 10 + rng.Intn(15)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/8), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)
		r := NewRouter(m, bs.BlockedGrid())
		for pair := 0; pair < 30; pair++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if bs.InBlock(s) || bs.InBlock(d) {
				continue
			}
			path, perr := r.Route(s, d)
			u := s
			var walked Path
			walked = append(walked, u)
			var werr error
			for u != d {
				next, err := r.NextHop(u, d)
				if err != nil {
					werr = err
					break
				}
				u = next
				walked = append(walked, u)
			}
			if (perr == nil) != (werr == nil) {
				t.Fatalf("trial %d: Route err=%v, NextHop walk err=%v for %v->%v", trial, perr, werr, s, d)
			}
			if perr != nil {
				continue
			}
			if len(path) != len(walked) {
				t.Fatalf("trial %d: trajectory lengths differ for %v->%v:\n%v\n%v", trial, s, d, path, walked)
			}
			for i := range path {
				if path[i] != walked[i] {
					t.Fatalf("trial %d: trajectories diverge at %d for %v->%v", trial, i, s, d)
				}
			}
		}
	}
}

func TestNextHopEdgeCases(t *testing.T) {
	m := mesh.Mesh{Width: 6, Height: 6}
	r := NewRouter(m, make([]bool, m.Size()))
	c := mesh.Coord{X: 2, Y: 2}
	if got, err := r.NextHop(c, c); err != nil || got != c {
		t.Errorf("NextHop to self = %v, %v", got, err)
	}
	if _, err := r.NextHop(mesh.Coord{X: -1, Y: 0}, c); err == nil {
		t.Error("out-of-mesh NextHop should fail")
	}
}

// TestRoutePathsAlwaysValid checks the universal contract: for ANY
// endpoint pair outside fault regions, Route either fails or returns a
// valid minimal path (the protocol never delivers a detour or an
// illegal hop).
func TestRoutePathsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		w := 8 + rng.Intn(20)
		h := 8 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/5), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)
		blocked := bs.BlockedGrid()
		r := NewRouter(m, blocked)
		for pair := 0; pair < 50; pair++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if bs.InBlock(s) || bs.InBlock(d) {
				continue
			}
			path, err := r.Route(s, d)
			if err != nil {
				continue // allowed: no guarantee was claimed
			}
			if !path.Minimal() {
				t.Fatalf("trial %d: non-minimal path %v->%v: %d hops", trial, s, d, path.Hops())
			}
			if err := path.Validate(m, blocked); err != nil {
				t.Fatalf("trial %d: invalid path %v->%v: %v", trial, s, d, err)
			}
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("trial %d: endpoints wrong", trial)
			}
		}
	}
}

// TestDFSRoute verifies the header-information baseline: it delivers
// exactly when the endpoints are connected (any path, not only
// minimal), every hop is legal, and the walk never exceeds the trivial
// bound of two hops per mesh node.
func TestDFSRoute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		w := 8 + rng.Intn(15)
		h := 8 + rng.Intn(15)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/4), rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatal(err)
		}
		bs := fault.BuildBlocks(sc)
		blocked := bs.BlockedGrid()

		// Connectivity ground truth by BFS.
		connected := func(s, d mesh.Coord) bool {
			if blocked[m.Index(s)] || blocked[m.Index(d)] {
				return false
			}
			seen := make([]bool, m.Size())
			seen[m.Index(s)] = true
			queue := []mesh.Coord{s}
			var nbuf [4]mesh.Coord
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				if u == d {
					return true
				}
				for _, n := range m.Neighbors(nbuf[:0], u) {
					ni := m.Index(n)
					if !seen[ni] && !blocked[ni] {
						seen[ni] = true
						queue = append(queue, n)
					}
				}
			}
			return false
		}

		for pair := 0; pair < 25; pair++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if blocked[m.Index(s)] || blocked[m.Index(d)] {
				continue
			}
			path, err := DFSRoute(m, blocked, s, d)
			if connected(s, d) != (err == nil) {
				t.Fatalf("trial %d: DFS err=%v but connected=%v for %v->%v", trial, err, connected(s, d), s, d)
			}
			if err != nil {
				continue
			}
			if err := path.Validate(m, blocked); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if path[0] != s || path[len(path)-1] != d {
				t.Fatalf("trial %d: endpoints wrong", trial)
			}
			if path.Hops() > 2*m.Size() {
				t.Fatalf("trial %d: DFS walk of %d hops exceeds bound", trial, path.Hops())
			}
			if path.Hops() < mesh.Distance(s, d) {
				t.Fatalf("trial %d: impossible path length", trial)
			}
		}
	}
}

func TestDFSRouteErrors(t *testing.T) {
	m := mesh.Mesh{Width: 5, Height: 5}
	blocked := make([]bool, m.Size())
	blocked[m.Index(mesh.Coord{X: 2, Y: 2})] = true
	if _, err := DFSRoute(m, blocked, mesh.Coord{X: -1, Y: 0}, mesh.Coord{X: 1, Y: 1}); err == nil {
		t.Error("outside endpoint should fail")
	}
	if _, err := DFSRoute(m, blocked, mesh.Coord{X: 2, Y: 2}, mesh.Coord{X: 0, Y: 0}); err == nil {
		t.Error("blocked source should fail")
	}
	p, err := DFSRoute(m, blocked, mesh.Coord{X: 1, Y: 1}, mesh.Coord{X: 1, Y: 1})
	if err != nil || p.Hops() != 0 {
		t.Errorf("self route = %v, %v", p, err)
	}
}

// TestRouterSoundnessLong is the heavyweight randomized soundness run
// (hundreds of configurations across both models and all quadrants);
// skipped with -short.
func TestRouterSoundnessLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized soundness run")
	}
	rng := rand.New(rand.NewSource(5151))
	for trial := 0; trial < 400; trial++ {
		w := 12 + rng.Intn(20)
		h := 12 + rng.Intn(20)
		m := mesh.Mesh{Width: w, Height: h}
		faults, err := fault.RandomFaults(m, rng.Intn(m.Size()/8), rng, nil)
		if err != nil {
			t.Fatalf("RandomFaults: %v", err)
		}
		sc, err := fault.NewScenario(m, faults)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		bs := fault.BuildBlocks(sc)
		mcc := fault.BuildMCC(sc, fault.TypeOne)
		for gi, blocked := range [][]bool{bs.BlockedGrid(), mcc.BlockedGrid()} {
			md, err := core.NewModel(m, blocked)
			if err != nil {
				t.Fatal(err)
			}
			r := NewRouter(m, blocked)
			for pair := 0; pair < 25; pair++ {
				s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if gi == 1 && (d.X-s.X)*(d.Y-s.Y) < 0 {
					s.Y, d.Y = d.Y, s.Y
				}
				if blocked[m.Index(s)] || blocked[m.Index(d)] {
					continue
				}
				for _, a := range []core.Assurance{md.Extension1(s, d), md.Extension2(s, d, 1)} {
					if a.Verdict == core.Unknown {
						continue
					}
					p, err := r.RouteVia(s, d, a.Via()...)
					if err != nil {
						t.Fatalf("trial %d grid %d: %v->%v via %v: %v", trial, gi, s, d, a.Via(), err)
					}
					want := mesh.Distance(s, d)
					if a.Verdict == core.SubMinimal {
						want += 2
					}
					if p.Hops() != want {
						t.Fatalf("trial %d grid %d: wrong length", trial, gi)
					}
				}
			}
		}
	}
}
