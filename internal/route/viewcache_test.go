package route

import (
	"sync"
	"testing"

	"extmesh/internal/mesh"
)

func twoGrids(m mesh.Mesh) (a, b []bool) {
	a = make([]bool, m.Size())
	b = make([]bool, m.Size())
	a[m.Index(mesh.Coord{X: 4, Y: 4})] = true
	a[m.Index(mesh.Coord{X: 4, Y: 5})] = true
	b[m.Index(mesh.Coord{X: 9, Y: 2})] = true
	b[m.Index(mesh.Coord{X: 10, Y: 2})] = true
	return a, b
}

// TestViewCacheSharesWithinGeneration pins the cache's point: two
// Routers created for the same generation resolve the same *view, and
// all four orientations land in the cache.
func TestViewCacheSharesWithinGeneration(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	grid, _ := twoGrids(m)
	vc := NewViewCache()
	r1 := NewRouterCached(m, grid, vc, 7, 0)
	r2 := NewRouterCached(m, grid, vc, 7, 0)
	for _, pair := range [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: 15, Y: 15}},
		{{X: 15, Y: 0}, {X: 0, Y: 15}},
		{{X: 0, Y: 15}, {X: 15, Y: 0}},
		{{X: 15, Y: 15}, {X: 0, Y: 0}},
	} {
		v1 := r1.viewFor(pair[0], pair[1])
		v2 := r2.viewFor(pair[0], pair[1])
		if v1 != v2 {
			t.Fatalf("routers at the same generation built distinct views for %v->%v", pair[0], pair[1])
		}
	}
	if got := vc.Len(); got != 4 {
		t.Fatalf("cache holds %d views after all four orientations, want 4", got)
	}
	if gen, ok := vc.Generation(); !ok || gen != 7 {
		t.Fatalf("cache generation = %d/%v, want 7/true", gen, ok)
	}
}

// TestViewCacheInvalidatesAcrossGenerations pins the safety property:
// a Router carrying a newer generation (a mutated blocked grid) must
// never be served a view built from the older grid, and its routes
// must reflect its own grid.
func TestViewCacheInvalidatesAcrossGenerations(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	gridA, gridB := twoGrids(m)
	vc := NewViewCache()
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 15, Y: 15}

	rA := NewRouterCached(m, gridA, vc, 1, 0)
	vA := rA.viewFor(s, d)
	pA, errA := rA.Route(s, d)

	rB := NewRouterCached(m, gridB, vc, 2, 0)
	vB := rB.viewFor(s, d)
	if vA == vB {
		t.Fatal("newer-generation router was served the older generation's view")
	}
	if gen, _ := vc.Generation(); gen != 2 {
		t.Fatalf("cache generation = %d after newer request, want 2", gen)
	}

	// Both routes must match uncached routers over the same grids.
	pWantA, errWantA := NewRouter(m, gridA).Route(s, d)
	pB, errB := rB.Route(s, d)
	pWantB, errWantB := NewRouter(m, gridB).Route(s, d)
	if (errA == nil) != (errWantA == nil) || (errA == nil && !samePath(pA, pWantA)) {
		t.Fatalf("cached route over grid A diverged: %v (%v) vs %v (%v)", pA, errA, pWantA, errWantA)
	}
	if (errB == nil) != (errWantB == nil) || (errB == nil && !samePath(pB, pWantB)) {
		t.Fatalf("cached route over grid B diverged: %v (%v) vs %v (%v)", pB, errB, pWantB, errWantB)
	}
}

// TestViewCacheStragglerBuildsPrivately pins the straggler rule: after
// the cache has moved to a newer generation, a Router still holding an
// older one builds privately and must not publish into — or read from —
// the newer generation's entries.
func TestViewCacheStragglerBuildsPrivately(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	gridOld, gridNew := twoGrids(m)
	vc := NewViewCache()
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 15, Y: 15}

	rNew := NewRouterCached(m, gridNew, vc, 5, 0)
	vNew := rNew.viewFor(s, d)

	rOld := NewRouterCached(m, gridOld, vc, 3, 0) // straggler
	vOld := rOld.viewFor(s, d)
	if vOld == vNew {
		t.Fatal("straggler was served the newer generation's view")
	}
	if gen, _ := vc.Generation(); gen != 5 {
		t.Fatalf("straggler moved the cache generation to %d, want 5 unchanged", gen)
	}
	if got := vc.Len(); got != 1 {
		t.Fatalf("straggler published into the cache: %d views, want 1", got)
	}
	// The straggler's private view still routes over its own grid.
	p, err := rOld.Route(s, d)
	pWant, errWant := NewRouter(m, gridOld).Route(s, d)
	if (err == nil) != (errWant == nil) || (err == nil && !samePath(p, pWant)) {
		t.Fatalf("straggler route diverged: %v (%v) vs %v (%v)", p, err, pWant, errWant)
	}
}

// TestViewCacheModelSlotsAreDistinct pins that the two MCC labelings
// (distinct model slots over distinct blocked grids) never collide in
// the cache even at the same generation.
func TestViewCacheModelSlotsAreDistinct(t *testing.T) {
	m := mesh.Mesh{Width: 16, Height: 16}
	gridA, gridB := twoGrids(m)
	vc := NewViewCache()
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 15, Y: 15}
	v0 := NewRouterCached(m, gridA, vc, 1, 0).viewFor(s, d)
	v1 := NewRouterCached(m, gridB, vc, 1, 1).viewFor(s, d)
	if v0 == v1 {
		t.Fatal("distinct model slots shared one view")
	}
	if got := vc.Len(); got != 2 {
		t.Fatalf("cache holds %d views, want 2 (one per model slot)", got)
	}
}

// TestViewCacheConcurrentFirstBuild races many Routers at one
// generation through a cold cache: everyone must converge on a single
// published view per orientation.
func TestViewCacheConcurrentFirstBuild(t *testing.T) {
	m := mesh.Mesh{Width: 24, Height: 24}
	grid, _ := twoGrids(m)
	vc := NewViewCache()
	s := mesh.Coord{X: 0, Y: 0}
	d := mesh.Coord{X: 23, Y: 23}

	const racers = 16
	views := make([]*view, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = NewRouterCached(m, grid, vc, 9, 0).viewFor(s, d)
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if views[i] != views[0] {
			t.Fatalf("racer %d resolved a different view than racer 0", i)
		}
	}
	if got := vc.Len(); got != 1 {
		t.Fatalf("cache holds %d views after the race, want 1", got)
	}
}
