package route

import (
	"extmesh/internal/mesh"
	"extmesh/internal/safety"
)

// SpareHop returns the spare-neighbor detour hop of the paper's
// Extension 1 at u heading for d: a usable neighbor in a spare
// direction (one that increases the distance to d), preferring a
// neighbor that is safe with respect to d under the supplied safety
// levels — from a safe spare neighbor minimal routing is guaranteed
// (Theorem 1a), so the detour costs exactly two extra hops and the
// delivered path has length D(u,d)+2. levels may be nil, in which case
// the first usable spare neighbor is returned; an unsafe spare is a
// best-effort escape with no delivery guarantee. The second result is
// false when no usable spare neighbor exists.
func SpareHop(m mesh.Mesh, blocked []bool, levels *safety.Grid, u, d mesh.Coord) (mesh.Coord, bool) {
	var buf [4]mesh.Dir
	var fallback mesh.Coord
	ok := false
	for _, dir := range mesh.AppendSpareDirs(buf[:0], u, d) {
		n := u.Add(dir.Offset())
		if !m.Contains(n) || blocked[m.Index(n)] {
			continue
		}
		if levels != nil && levels.SafeFor(n, d) {
			return n, true
		}
		if !ok {
			fallback, ok = n, true
		}
	}
	return fallback, ok
}
