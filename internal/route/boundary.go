package route

import (
	"extmesh/internal/mesh"
)

// LineKind identifies the boundary line a node belongs to, in the
// normalized orientation where the destination lies northeast of the
// source. L1 is the horizontal line below an obstacle (carrying the
// rule "stay below the line until east of the obstacle" for east-shadow
// destinations); L3 is the vertical line west of an obstacle (carrying
// the matching rule for north-shadow destinations).
type LineKind uint8

// Boundary line kinds relevant to northeast routing.
const (
	LineL1 LineKind = iota + 1
	LineL3
)

// String names the line kind.
func (k LineKind) String() string {
	switch k {
	case LineL1:
		return "L1"
	case LineL3:
		return "L3"
	}
	return "?"
}

// Successor directions of a boundary line at a node, denormalized at
// build time so the per-hop decision never resolves a coordinate.
const (
	succNoneDir  uint8 = iota // the line ends here
	succEastDir               // the next line node is the east neighbor
	succNorthDir              // the next line node is the north neighbor
)

// cellRef is one piece of boundary information during construction:
// the node it is stored at, the obstacle run the line belongs to, the
// line kind, and the next node of the line toward the obstacle (-1
// when the line ends here). The build walks emit cellRefs in line
// order; the counting sort below regroups them by node.
type cellRef struct {
	cell int32
	run  int32
	kind LineKind
	succ int32
}

// boundarySet holds, for one mesh orientation, the boundary-line
// information of every node: exactly the limited information the
// paper's distribution protocol installs along the lines, including the
// merged (turned/joined) sections around intervening fault regions.
//
// Obstacle geometry is kept as maximal runs of blocked nodes rather
// than whole rectangles: vertical runs carry L1 lines and horizontal
// runs carry L3 lines. For the rectangular blocks of the block fault
// model the union of per-run rules is equivalent to the per-block rules
// of the paper; for the rectilinear-monotone MCCs the runs follow the
// staircase contour exactly, where a bounding rectangle would
// over-constrain the packet.
//
// Storage is a CSR-style flat layout: node i's refs occupy positions
// off[i]..off[i+1] of the packed parallel arrays, so the per-hop
// lookup in view.step is two adjacent int32 loads (almost always
// finding an empty span) instead of a hash probe, and iterating a
// node's refs walks contiguous memory. The fire-condition rectangle
// bounds are denormalized per ref into minX/minY/maxX/maxY so firing
// never chases the run table.
type boundarySet struct {
	m     mesh.Mesh
	hRuns []mesh.Rect // maximal horizontal runs (height 1)
	vRuns []mesh.Rect // maximal vertical runs (width 1)

	off []int32 // len m.Size()+1; node i's refs at [off[i], off[i+1])

	// Parallel per-ref arrays, indexed by the off spans.
	run                    []int32 // obstacle run (into hRuns or vRuns by kind)
	kind                   []LineKind
	succDir                []uint8 // succNone, succEast or succNorth
	minX, minY, maxX, maxY []int32 // the run's rectangle, inlined
}

// buildBoundaries derives the runs of the blocked grid and lays out the
// merged L1/L3 polylines.
func buildBoundaries(m mesh.Mesh, blocked []bool) *boundarySet {
	bs := &boundarySet{m: m}
	bs.hRuns = HorizontalRuns(m, blocked)
	bs.vRuns = VerticalRuns(m, blocked)
	var refs []cellRef
	for i, r := range bs.vRuns {
		refs = bs.walkL1(refs, int32(i), r, blocked)
	}
	for i, r := range bs.hRuns {
		refs = bs.walkL3(refs, int32(i), r, blocked)
	}
	bs.pack(refs)
	return bs
}

// pack lays the collected refs out in CSR form: a stable counting sort
// by node, then the per-ref fields split into parallel arrays with the
// owning run's rectangle bounds inlined.
func (bs *boundarySet) pack(refs []cellRef) {
	n := bs.m.Size()
	bs.off = make([]int32, n+1)
	for _, r := range refs {
		bs.off[r.cell+1]++
	}
	for i := 0; i < n; i++ {
		bs.off[i+1] += bs.off[i]
	}
	k := len(refs)
	bs.run = make([]int32, k)
	bs.kind = make([]LineKind, k)
	bs.succDir = make([]uint8, k)
	bs.minX = make([]int32, k)
	bs.minY = make([]int32, k)
	bs.maxX = make([]int32, k)
	bs.maxY = make([]int32, k)
	next := make([]int32, n)
	copy(next, bs.off[:n])
	w := int32(bs.m.Width)
	for _, r := range refs {
		j := next[r.cell]
		next[r.cell]++
		bs.run[j] = r.run
		bs.kind[j] = r.kind
		switch r.succ {
		case -1:
			bs.succDir[j] = succNoneDir
		case r.cell + 1:
			bs.succDir[j] = succEastDir
		case r.cell + w:
			bs.succDir[j] = succNorthDir
		default:
			// The walks only ever hand a line to the east or north
			// neighbor; anything else would be a construction bug.
			panic("route: boundary successor is not an east/north neighbor")
		}
		rect := bs.rectOf(r.kind, r.run)
		bs.minX[j] = int32(rect.MinX)
		bs.minY[j] = int32(rect.MinY)
		bs.maxX[j] = int32(rect.MaxX)
		bs.maxY[j] = int32(rect.MaxY)
	}
}

// rectOf resolves a (kind, run) pair to its obstacle run rectangle.
func (bs *boundarySet) rectOf(kind LineKind, run int32) mesh.Rect {
	if kind == LineL1 {
		return bs.vRuns[run]
	}
	return bs.hRuns[run]
}

// HorizontalRuns returns the maximal horizontal runs of blocked nodes
// (height-1 rectangles). They carry the L3 boundary lines.
func HorizontalRuns(m mesh.Mesh, blocked []bool) []mesh.Rect {
	var runs []mesh.Rect
	for y := 0; y < m.Height; y++ {
		x := 0
		for x < m.Width {
			if !blocked[y*m.Width+x] {
				x++
				continue
			}
			start := x
			for x < m.Width && blocked[y*m.Width+x] {
				x++
			}
			runs = append(runs, mesh.Rect{MinX: start, MinY: y, MaxX: x - 1, MaxY: y})
		}
	}
	return runs
}

// VerticalRuns returns the maximal vertical runs of blocked nodes
// (width-1 rectangles). They carry the L1 boundary lines.
func VerticalRuns(m mesh.Mesh, blocked []bool) []mesh.Rect {
	var runs []mesh.Rect
	for x := 0; x < m.Width; x++ {
		y := 0
		for y < m.Height {
			if !blocked[y*m.Width+x] {
				y++
				continue
			}
			start := y
			for y < m.Height && blocked[y*m.Width+x] {
				y++
			}
			runs = append(runs, mesh.Rect{MinX: x, MinY: start, MaxX: x, MaxY: y - 1})
		}
	}
	return runs
}

// add records that node c carries info for the line (run, kind) whose
// next node toward the obstacle is succ.
func (bs *boundarySet) add(refs []cellRef, c mesh.Coord, run int32, kind LineKind, succ mesh.Coord) []cellRef {
	i := int32(bs.m.Index(c))
	s := int32(-1)
	if bs.m.Contains(succ) {
		s = int32(bs.m.Index(succ))
	}
	return append(refs, cellRef{cell: i, run: run, kind: kind, succ: s})
}

// walkL1 lays out the L1 line of the vertical run r: the node just
// below the run, then the contour extending west. When the line meets
// another fault region it turns south along its east side down to that
// region's own L1 level and continues west, joining the other line
// (the paper's turn/join rule), which the contour walk performs one
// step at a time: go west when the node is free, otherwise slide one
// node south and retry.
func (bs *boundarySet) walkL1(refs []cellRef, run int32, r mesh.Rect, blocked []bool) []cellRef {
	cur := mesh.Coord{X: r.MinX, Y: r.MinY - 1}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return refs // run touches the south edge or sits in a pocket
	}
	first := mesh.Coord{X: r.MinX + 1, Y: r.MinY - 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	refs = bs.add(refs, cur, run, LineL1, first)
	for {
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 {
			return refs
		}
		if !blocked[bs.m.Index(west)] {
			refs = bs.add(refs, west, run, LineL1, cur)
			cur = west
			continue
		}
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 || blocked[bs.m.Index(south)] {
			return refs // mesh edge or pocket: the line ends
		}
		refs = bs.add(refs, south, run, LineL1, cur)
		cur = south
	}
}

// walkL3 lays out the L3 line of the horizontal run r: the node just
// west of the run, then the contour extending south, turning west
// around intervening fault regions: go south when the node is free,
// otherwise slide one node west and retry.
func (bs *boundarySet) walkL3(refs []cellRef, run int32, r mesh.Rect, blocked []bool) []cellRef {
	cur := mesh.Coord{X: r.MinX - 1, Y: r.MinY}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return refs // run touches the west edge or sits in a pocket
	}
	first := mesh.Coord{X: r.MinX - 1, Y: r.MinY + 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	refs = bs.add(refs, cur, run, LineL3, first)
	for {
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 {
			return refs
		}
		if !blocked[bs.m.Index(south)] {
			refs = bs.add(refs, south, run, LineL3, cur)
			cur = south
			continue
		}
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 || blocked[bs.m.Index(west)] {
			return refs
		}
		refs = bs.add(refs, west, run, LineL3, cur)
		cur = west
	}
}

// LineTag is the exported form of one piece of boundary information
// stored at a node: the obstacle run the line belongs to and the line
// kind. It is used to cross-check the distributed information
// dissemination against this package's direct computation.
type LineTag struct {
	Obstacle mesh.Rect
	Kind     LineKind
}

// Lines computes the complete boundary-line information of the grid in
// the native (unreflected) orientation: for every node, the tags of the
// L1/L3 lines passing through it.
func Lines(m mesh.Mesh, blocked []bool) map[mesh.Coord][]LineTag {
	bs := buildBoundaries(m, blocked)
	out := make(map[mesh.Coord][]LineTag)
	for i := 0; i < m.Size(); i++ {
		start, end := bs.off[i], bs.off[i+1]
		if start == end {
			continue
		}
		tags := make([]LineTag, 0, end-start)
		for j := start; j < end; j++ {
			tags = append(tags, LineTag{Obstacle: bs.rectOf(bs.kind[j], bs.run[j]), Kind: bs.kind[j]})
		}
		out[m.CoordOf(i)] = tags
	}
	return out
}
