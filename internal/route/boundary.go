package route

import (
	"extmesh/internal/mesh"
)

// LineKind identifies the boundary line a node belongs to, in the
// normalized orientation where the destination lies northeast of the
// source. L1 is the horizontal line below an obstacle (carrying the
// rule "stay below the line until east of the obstacle" for east-shadow
// destinations); L3 is the vertical line west of an obstacle (carrying
// the matching rule for north-shadow destinations).
type LineKind uint8

// Boundary line kinds relevant to northeast routing.
const (
	LineL1 LineKind = iota + 1
	LineL3
)

// String names the line kind.
func (k LineKind) String() string {
	switch k {
	case LineL1:
		return "L1"
	case LineL3:
		return "L3"
	}
	return "?"
}

// lineRef is one piece of boundary information stored at a node: the
// obstacle run the line belongs to, the line kind, and the next node of
// the line toward the obstacle (the direction a constrained packet
// follows; -1 when the line ends here).
type lineRef struct {
	run  int32
	kind LineKind
	succ int32
}

// boundarySet holds, for one mesh orientation, the boundary-line
// information of every node: exactly the limited information the
// paper's distribution protocol installs along the lines, including the
// merged (turned/joined) sections around intervening fault regions.
//
// Obstacle geometry is kept as maximal runs of blocked nodes rather
// than whole rectangles: vertical runs carry L1 lines and horizontal
// runs carry L3 lines. For the rectangular blocks of the block fault
// model the union of per-run rules is equivalent to the per-block rules
// of the paper; for the rectilinear-monotone MCCs the runs follow the
// staircase contour exactly, where a bounding rectangle would
// over-constrain the packet.
type boundarySet struct {
	m     mesh.Mesh
	hRuns []mesh.Rect // maximal horizontal runs (height 1)
	vRuns []mesh.Rect // maximal vertical runs (width 1)
	info  map[int32][]lineRef
}

// buildBoundaries derives the runs of the blocked grid and lays out the
// merged L1/L3 polylines.
func buildBoundaries(m mesh.Mesh, blocked []bool) *boundarySet {
	bs := &boundarySet{m: m, info: make(map[int32][]lineRef)}
	bs.hRuns = HorizontalRuns(m, blocked)
	bs.vRuns = VerticalRuns(m, blocked)
	for i, r := range bs.vRuns {
		bs.walkL1(int32(i), r, blocked)
	}
	for i, r := range bs.hRuns {
		bs.walkL3(int32(i), r, blocked)
	}
	return bs
}

// HorizontalRuns returns the maximal horizontal runs of blocked nodes
// (height-1 rectangles). They carry the L3 boundary lines.
func HorizontalRuns(m mesh.Mesh, blocked []bool) []mesh.Rect {
	var runs []mesh.Rect
	for y := 0; y < m.Height; y++ {
		x := 0
		for x < m.Width {
			if !blocked[y*m.Width+x] {
				x++
				continue
			}
			start := x
			for x < m.Width && blocked[y*m.Width+x] {
				x++
			}
			runs = append(runs, mesh.Rect{MinX: start, MinY: y, MaxX: x - 1, MaxY: y})
		}
	}
	return runs
}

// VerticalRuns returns the maximal vertical runs of blocked nodes
// (width-1 rectangles). They carry the L1 boundary lines.
func VerticalRuns(m mesh.Mesh, blocked []bool) []mesh.Rect {
	var runs []mesh.Rect
	for x := 0; x < m.Width; x++ {
		y := 0
		for y < m.Height {
			if !blocked[y*m.Width+x] {
				y++
				continue
			}
			start := y
			for y < m.Height && blocked[y*m.Width+x] {
				y++
			}
			runs = append(runs, mesh.Rect{MinX: x, MinY: start, MaxX: x, MaxY: y - 1})
		}
	}
	return runs
}

// add records that node c carries info for the line (run, kind) whose
// next node toward the obstacle is succ.
func (bs *boundarySet) add(c mesh.Coord, run int32, kind LineKind, succ mesh.Coord) {
	i := int32(bs.m.Index(c))
	s := int32(-1)
	if bs.m.Contains(succ) {
		s = int32(bs.m.Index(succ))
	}
	bs.info[i] = append(bs.info[i], lineRef{run: run, kind: kind, succ: s})
}

// at returns the boundary info stored at c.
func (bs *boundarySet) at(c mesh.Coord) []lineRef {
	return bs.info[int32(bs.m.Index(c))]
}

// rect resolves a lineRef to its obstacle run rectangle.
func (bs *boundarySet) rect(ref lineRef) mesh.Rect {
	if ref.kind == LineL1 {
		return bs.vRuns[ref.run]
	}
	return bs.hRuns[ref.run]
}

// walkL1 lays out the L1 line of the vertical run r: the node just
// below the run, then the contour extending west. When the line meets
// another fault region it turns south along its east side down to that
// region's own L1 level and continues west, joining the other line
// (the paper's turn/join rule), which the contour walk performs one
// step at a time: go west when the node is free, otherwise slide one
// node south and retry.
func (bs *boundarySet) walkL1(run int32, r mesh.Rect, blocked []bool) {
	cur := mesh.Coord{X: r.MinX, Y: r.MinY - 1}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return // run touches the south edge or sits in a pocket
	}
	first := mesh.Coord{X: r.MinX + 1, Y: r.MinY - 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	bs.add(cur, run, LineL1, first)
	for {
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 {
			return
		}
		if !blocked[bs.m.Index(west)] {
			bs.add(west, run, LineL1, cur)
			cur = west
			continue
		}
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 || blocked[bs.m.Index(south)] {
			return // mesh edge or pocket: the line ends
		}
		bs.add(south, run, LineL1, cur)
		cur = south
	}
}

// walkL3 lays out the L3 line of the horizontal run r: the node just
// west of the run, then the contour extending south, turning west
// around intervening fault regions: go south when the node is free,
// otherwise slide one node west and retry.
func (bs *boundarySet) walkL3(run int32, r mesh.Rect, blocked []bool) {
	cur := mesh.Coord{X: r.MinX - 1, Y: r.MinY}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return // run touches the west edge or sits in a pocket
	}
	first := mesh.Coord{X: r.MinX - 1, Y: r.MinY + 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	bs.add(cur, run, LineL3, first)
	for {
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 {
			return
		}
		if !blocked[bs.m.Index(south)] {
			bs.add(south, run, LineL3, cur)
			cur = south
			continue
		}
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 || blocked[bs.m.Index(west)] {
			return
		}
		bs.add(west, run, LineL3, cur)
		cur = west
	}
}

// LineTag is the exported form of one piece of boundary information
// stored at a node: the obstacle run the line belongs to and the line
// kind. It is used to cross-check the distributed information
// dissemination against this package's direct computation.
type LineTag struct {
	Obstacle mesh.Rect
	Kind     LineKind
}

// Lines computes the complete boundary-line information of the grid in
// the native (unreflected) orientation: for every node, the tags of the
// L1/L3 lines passing through it.
func Lines(m mesh.Mesh, blocked []bool) map[mesh.Coord][]LineTag {
	bs := buildBoundaries(m, blocked)
	out := make(map[mesh.Coord][]LineTag, len(bs.info))
	for i, refs := range bs.info {
		c := m.CoordOf(int(i))
		tags := make([]LineTag, len(refs))
		for j, ref := range refs {
			tags[j] = LineTag{Obstacle: bs.rect(ref), Kind: ref.kind}
		}
		out[c] = tags
	}
	return out
}
