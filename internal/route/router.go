package route

import (
	"fmt"
	"sync"

	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// Router routes packets with Wu's protocol: adaptive minimal routing
// that consults only the boundary-line information stored at the
// current node. One Router serves all four quadrants by lazily building
// a reflected view per orientation.
type Router struct {
	m       mesh.Mesh
	blocked []bool

	// Optional shared view store (NewRouterCached): orientation views
	// are published there under (gen, model) so successive Routers over
	// the same fault generation skip the O(mesh) boundary rebuild.
	cache *ViewCache
	gen   uint64
	model int

	views [2][2]*view
	once  [2][2]sync.Once
}

// view is the router's state for one mesh orientation: coordinates are
// reflected so the destination always lies (weakly) northeast of the
// source, which is the orientation the L1/L3 rules are stated in.
type view struct {
	m       mesh.Mesh
	flipX   bool
	flipY   bool
	blocked []bool
	bounds  *boundarySet
}

// NewRouter builds a router over the fault-region grid (faulty blocks
// or MCCs). blocked is indexed by mesh.Index and is not copied.
func NewRouter(m mesh.Mesh, blocked []bool) *Router {
	return &Router{m: m, blocked: blocked}
}

// NewRouterCached is NewRouter sharing orientation views through vc:
// views built by this Router are published under (gen, model), and
// views another Router already published there are reused instead of
// rebuilt. gen must change whenever the fault set does (callers stamp
// it with their mutation version) and model distinguishes blocked
// grids built from the same fault set (block vs MCC labelings).
func NewRouterCached(m mesh.Mesh, blocked []bool, vc *ViewCache, gen uint64, model int) *Router {
	return &Router{m: m, blocked: blocked, cache: vc, gen: gen, model: model}
}

// Route routes a packet from s to d with Wu's protocol and returns the
// path taken. The route is minimal whenever the protocol succeeds; a
// *StuckError is returned when the limited information was insufficient
// (which Theorem 1 rules out for safe sources).
func (r *Router) Route(s, d mesh.Coord) (Path, error) {
	out, err := r.RouteInto(nil, s, d)
	if err != nil {
		return nil, err
	}
	return Path(out), nil
}

// RouteInto is the append-style Route: the routed path is appended to
// dst — which may be nil, or carry capacity retained from earlier
// routes — and the extended slice is returned, the new path occupying
// out[len(dst):]. On error the returned slice has dst's length (though
// possibly grown capacity). Batch drivers route into per-worker slabs
// so warm batches assemble every path without allocating.
func (r *Router) RouteInto(dst []mesh.Coord, s, d mesh.Coord) ([]mesh.Coord, error) {
	if !r.m.Contains(s) || !r.m.Contains(d) {
		return dst, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, r.m)
	}
	if r.blocked[r.m.Index(s)] || r.blocked[r.m.Index(d)] {
		return dst, fmt.Errorf("route: endpoints %v -> %v inside a fault region", s, d)
	}
	v := r.viewFor(s, d)
	start := len(dst)
	out, err := v.routeInto(dst, v.to(s), v.to(d))
	if err != nil {
		return out, err
	}
	// Reflect back to mesh coordinates in place: the route was written
	// into the caller's buffer, so no second path slice is needed.
	for i := start; i < len(out); i++ {
		out[i] = v.from(out[i])
	}
	return out, nil
}

// NextHop returns the single next hop Wu's protocol takes at u heading
// for d. The protocol is memoryless — the decision depends only on the
// current node, the destination and the boundary information stored at
// u — so per-hop use (e.g. by a network simulator) and Route produce
// identical trajectories.
func (r *Router) NextHop(u, d mesh.Coord) (mesh.Coord, error) {
	if !r.m.Contains(u) || !r.m.Contains(d) {
		return mesh.Coord{}, fmt.Errorf("route: nodes %v -> %v outside mesh %v", u, d, r.m)
	}
	if u == d {
		return d, nil
	}
	v := r.viewFor(u, d)
	n, err := v.step(v.to(u), v.to(d))
	if err != nil {
		return mesh.Coord{}, err
	}
	return v.from(n), nil
}

// RouteVia routes through the given waypoints in order (the two-phase
// routing of the paper's extensions), concatenating one Wu-protocol
// route per leg.
func (r *Router) RouteVia(s, d mesh.Coord, via ...mesh.Coord) (Path, error) {
	stops := make([]mesh.Coord, 0, len(via)+2)
	stops = append(stops, s)
	stops = append(stops, via...)
	stops = append(stops, d)
	var path Path
	for i := 0; i+1 < len(stops); i++ {
		leg, err := r.Route(stops[i], stops[i+1])
		if err != nil {
			return nil, fmt.Errorf("leg %v -> %v: %w", stops[i], stops[i+1], err)
		}
		if i == 0 {
			path = append(path, leg...)
		} else {
			path = append(path, leg[1:]...)
		}
	}
	return path, nil
}

// viewFor returns the (lazily built) view whose orientation puts d
// weakly northeast of s.
func (r *Router) viewFor(s, d mesh.Coord) *view {
	fx, fy := 0, 0
	if d.X < s.X {
		fx = 1
	}
	if d.Y < s.Y {
		fy = 1
	}
	r.once[fx][fy].Do(func() {
		if r.cache != nil {
			r.views[fx][fy] = r.cache.getOrBuild(r.gen, r.model, fx == 1, fy == 1,
				func() *view { return r.buildView(fx == 1, fy == 1) })
		} else {
			r.views[fx][fy] = r.buildView(fx == 1, fy == 1)
		}
	})
	return r.views[fx][fy]
}

// buildView reflects the blocked grid into the requested orientation
// and computes the boundary lines there.
func (r *Router) buildView(flipX, flipY bool) *view {
	v := &view{m: r.m, flipX: flipX, flipY: flipY}
	v.blocked = make([]bool, len(r.blocked))
	for i, b := range r.blocked {
		if b {
			v.blocked[v.m.Index(v.to(r.m.CoordOf(i)))] = true
		}
	}
	v.bounds = buildBoundaries(v.m, v.blocked)
	return v
}

// to maps a mesh coordinate into view coordinates.
func (v *view) to(c mesh.Coord) mesh.Coord {
	if v.flipX {
		c.X = v.m.Width - 1 - c.X
	}
	if v.flipY {
		c.Y = v.m.Height - 1 - c.Y
	}
	return c
}

// from maps a view coordinate back to mesh coordinates; the reflection
// is an involution.
func (v *view) from(c mesh.Coord) mesh.Coord {
	return v.to(c)
}

// routeInto runs Wu's protocol in view space, where d is weakly
// northeast of s, appending the path onto buf: at every hop pick a
// preferred direction (east or north), except that boundary-line rules
// force the packet to stay on a line while the destination lies in the
// corresponding shadow region of the block. A successful route is
// monotone, so its length is exactly Distance(s,d)+1 and the buffer is
// grown at most once, up front.
func (v *view) routeInto(buf []mesh.Coord, s, d mesh.Coord) ([]mesh.Coord, error) {
	start := len(buf)
	buf = growCoords(buf, mesh.Distance(s, d)+1)
	buf = append(buf, s)
	u := s
	for u != d {
		next, err := v.step(u, d)
		if err != nil {
			return buf[:start], err
		}
		u = next
		buf = append(buf, u)
	}
	return buf, nil
}

// growCoords ensures buf has capacity for need more elements beyond
// its length, reallocating at most once. A warm buffer (the arena
// steady state) never grows; a cold one grows with at least doubling,
// so packing many paths back to back into one fresh slab copies O(n)
// total, not O(n²).
func growCoords(buf []mesh.Coord, need int) []mesh.Coord {
	want := len(buf) + need
	if cap(buf) >= want {
		return buf
	}
	if c := 2 * cap(buf); want < c {
		want = c
	}
	grown := make([]mesh.Coord, len(buf), want)
	copy(grown, buf)
	return grown
}

// step picks the next hop at u.
//
// Critical-path rules: a node on (a merged section of) an obstacle's L1
// whose destination lies in the obstacle's east shadow (region R6) must
// stay on L1 until its intersection with L4; a node on an obstacle's L3
// whose destination lies in the north shadow (region R4) must stay on
// L3 until its intersection with L2. The line successor stored with the
// boundary info encodes the merged (turned/joined) sections, so
// following it carries the packet around intervening fault regions.
//
// Several lines can fire at the same node; their advice composes as
// follows. The next hop must (a) be the successor of at least one fired
// line — stepping off every fired line can strand the packet in a
// pocket the merged sections detour around — and (b) respect the shadow
// constraint of every fired line: while a destination sits in an
// obstacle's east shadow the packet may not climb into the obstacle's
// row range before passing its column range (and symmetrically for
// north shadows). Among hops satisfying both, the adaptive preference
// (larger remaining offset first) decides.
//
// The boundary info is read straight off the CSR arrays: two adjacent
// offset loads find the node's (almost always empty) ref span, and the
// fire tests touch only the denormalized bound arrays.
func (v *view) step(u, d mesh.Coord) (mesh.Coord, error) {
	bs := v.bounds
	w := v.m.Width
	ui := u.Y*w + u.X
	var (
		// Nodes rarely sit on more than a couple of lines at once; the
		// stack-backed buffer keeps the per-hop decision allocation-free.
		firedBuf  [4]int32
		fired     = firedBuf[:0]
		succEast  bool
		succNorth bool
	)
	for j, end := bs.off[ui], bs.off[ui+1]; j < end; j++ {
		var fire bool
		if bs.kind[j] == LineL1 {
			fire = int32(d.X) > bs.maxX[j] && int32(d.Y) >= bs.minY[j] && int32(d.Y) <= bs.maxY[j]
		} else {
			fire = int32(d.Y) > bs.maxY[j] && int32(d.X) >= bs.minX[j] && int32(d.X) <= bs.maxX[j]
		}
		if !fire {
			continue
		}
		fired = append(fired, j)
		switch bs.succDir[j] {
		case succEastDir:
			succEast = true
		case succNorthDir:
			succNorth = true
		}
	}

	east := mesh.Coord{X: u.X + 1, Y: u.Y}
	north := mesh.Coord{X: u.X, Y: u.Y + 1}
	usable := func(n mesh.Coord) bool {
		if n.X > d.X || n.Y > d.Y || !v.m.Contains(n) || v.blocked[n.Y*w+n.X] {
			return false
		}
		for _, j := range fired {
			if bs.kind[j] == LineL1 {
				if int32(n.Y) >= bs.minY[j] && int32(n.X) <= bs.maxX[j] {
					return false
				}
			} else {
				if int32(n.X) >= bs.minX[j] && int32(n.Y) <= bs.maxY[j] {
					return false
				}
			}
		}
		return true
	}

	okEast := usable(east)
	okNorth := usable(north)
	if len(fired) > 0 {
		// Constrained: only fired-line successors are candidates.
		okEast = okEast && succEast
		okNorth = okNorth && succNorth
	}

	// Adaptive preference: larger remaining offset first.
	if d.Y-u.Y > d.X-u.X {
		if okNorth {
			return north, nil
		}
		if okEast {
			return east, nil
		}
	} else {
		if okEast {
			return east, nil
		}
		if okNorth {
			return north, nil
		}
	}
	return mesh.Coord{}, &StuckError{At: u, To: d}
}

// oracleScratch pools the full-mesh reachability grid a one-shot
// Oracle call sweeps, so repeated uncached oracle routes reuse the
// bitset rows instead of allocating a fresh O(N) grid per call.
var oracleScratch = sync.Pool{New: func() any { return new(wang.Reach) }}

// Oracle routes with full global information: it walks preferred
// directions guided by the exact reachability DP, so it finds a minimal
// path whenever one exists. It is the baseline the limited-information
// protocol is compared against. Each call pays one full-mesh sweep;
// callers issuing many queries against one blocked grid should memoize
// the sweep in a wang.ReachCache and use OracleFrom.
func Oracle(m mesh.Mesh, blocked []bool, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	r := oracleScratch.Get().(*wang.Reach)
	p, err := OracleFrom(m, blocked, wang.ReachFromInto(r, m, d, blocked), s, d)
	oracleScratch.Put(r)
	return p, err
}

// OracleFrom is Oracle with the destination-rooted reachability sweep
// supplied by the caller (typically from a wang.ReachCache), so that
// repeated oracle routes to one destination cost O(path) instead of
// O(N^2) each. reach must be rooted at d over the same blocked grid.
func OracleFrom(m mesh.Mesh, blocked []bool, reach *wang.Reach, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	out, err := OracleFromInto(nil, m, reach, s, d)
	if err != nil {
		return nil, err
	}
	return Path(out), nil
}

// OracleFromInto is the append-style OracleFrom, stepping on the reach
// grid's bitset words directly: horizontal progress is consumed one
// whole run of set bits at a time (word loads plus a trailing-ones
// count, instead of a per-cell lookup), and vertical probes read the
// next row's word once. reach must be rooted at d over the blocked
// grid the caller routes against; a node's reach bit being set already
// implies the node is not blocked, so the walk consults only the
// bitset. The contract matches RouteInto: the path is appended to dst
// and the extended slice returned, out[len(dst):] being the new path;
// on error the returned slice keeps dst's length.
func OracleFromInto(dst []mesh.Coord, m mesh.Mesh, reach *wang.Reach, s, d mesh.Coord) ([]mesh.Coord, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return dst, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	if !reach.CanReach(s) {
		return dst, &StuckError{At: s, To: d}
	}
	start := len(dst)
	dst = growCoords(dst, mesh.Distance(s, d)+1)
	dst = append(dst, s)
	bits := reach.Bits()
	sx, sy := 0, 0
	if d.X > s.X {
		sx = 1
	} else if d.X < s.X {
		sx = -1
	}
	if d.Y > s.Y {
		sy = 1
	} else if d.Y < s.Y {
		sy = -1
	}
	u := s
	for u != d {
		// Preferred-direction order matches mesh.AppendPreferredDirs:
		// the horizontal move is probed first, then the vertical one —
		// so consuming the whole horizontal run of reachable nodes at
		// once reproduces the per-hop walk exactly.
		if u.X != d.X {
			var run int
			if sx > 0 {
				run = bits.RunEast(u.X+1, u.Y, d.X-u.X)
			} else {
				run = bits.RunWest(u.X-1, u.Y, u.X-d.X)
			}
			if run > 0 {
				for i := 0; i < run; i++ {
					u.X += sx
					dst = append(dst, u)
				}
				continue
			}
		}
		if u.Y != d.Y {
			if n := (mesh.Coord{X: u.X, Y: u.Y + sy}); bits.Get(n) {
				u = n
				dst = append(dst, u)
				continue
			}
		}
		return dst[:start], &StuckError{At: u, To: d} // unreachable given the reach check
	}
	return dst, nil
}

// DFSRoute is the header-information baseline the paper contrasts its
// information model against (Chen and Shin's depth-first-search
// routing): the packet header carries the set of visited nodes, moves
// are tried preferred-first, and the packet backtracks out of dead
// ends. It delivers whenever source and destination are connected at
// all, but the route need not be minimal; the returned path includes
// backtracking hops, as the physical packet would travel them.
func DFSRoute(m mesh.Mesh, blocked []bool, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	if blocked[m.Index(s)] || blocked[m.Index(d)] {
		return nil, fmt.Errorf("route: endpoints %v -> %v inside a fault region", s, d)
	}
	visited := make([]bool, m.Size())
	visited[m.Index(s)] = true
	path := Path{s}
	stack := []mesh.Coord{s}

	// firstCandidate returns the best unvisited usable neighbor of u:
	// preferred directions first, then spares.
	var dirBuf [4]mesh.Dir
	firstCandidate := func(u mesh.Coord) (mesh.Coord, bool) {
		dirs := mesh.AppendPreferredDirs(dirBuf[:0], u, d)
		dirs = mesh.AppendSpareDirs(dirs, u, d)
		for _, dir := range dirs {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && !visited[m.Index(n)] {
				return n, true
			}
		}
		return mesh.Coord{}, false
	}

	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if u == d {
			return path, nil
		}
		moved := false
		if n, ok := firstCandidate(u); ok {
			visited[m.Index(n)] = true
			stack = append(stack, n)
			path = append(path, n)
			moved = true
		}
		if !moved {
			// Backtrack: physically retrace to the previous node.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				path = append(path, stack[len(stack)-1])
			}
		}
	}
	return nil, &StuckError{At: s, To: d}
}
