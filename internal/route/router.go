package route

import (
	"fmt"
	"sync"

	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// Router routes packets with Wu's protocol: adaptive minimal routing
// that consults only the boundary-line information stored at the
// current node. One Router serves all four quadrants by lazily building
// a reflected view per orientation.
type Router struct {
	m       mesh.Mesh
	blocked []bool

	views [2][2]*view
	once  [2][2]sync.Once
}

// view is the router's state for one mesh orientation: coordinates are
// reflected so the destination always lies (weakly) northeast of the
// source, which is the orientation the L1/L3 rules are stated in.
type view struct {
	m       mesh.Mesh
	flipX   bool
	flipY   bool
	blocked []bool
	bounds  *boundarySet
}

// NewRouter builds a router over the fault-region grid (faulty blocks
// or MCCs). blocked is indexed by mesh.Index and is not copied.
func NewRouter(m mesh.Mesh, blocked []bool) *Router {
	return &Router{m: m, blocked: blocked}
}

// Route routes a packet from s to d with Wu's protocol and returns the
// path taken. The route is minimal whenever the protocol succeeds; a
// *StuckError is returned when the limited information was insufficient
// (which Theorem 1 rules out for safe sources).
func (r *Router) Route(s, d mesh.Coord) (Path, error) {
	if !r.m.Contains(s) || !r.m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, r.m)
	}
	if r.blocked[r.m.Index(s)] || r.blocked[r.m.Index(d)] {
		return nil, fmt.Errorf("route: endpoints %v -> %v inside a fault region", s, d)
	}
	v := r.viewFor(s, d)
	np, err := v.route(v.to(s), v.to(d))
	if err != nil {
		return nil, err
	}
	// Reflect back to mesh coordinates in place: the route buffer was
	// allocated for this call, so no second path slice is needed.
	for i := range np {
		np[i] = v.from(np[i])
	}
	return Path(np), nil
}

// NextHop returns the single next hop Wu's protocol takes at u heading
// for d. The protocol is memoryless — the decision depends only on the
// current node, the destination and the boundary information stored at
// u — so per-hop use (e.g. by a network simulator) and Route produce
// identical trajectories.
func (r *Router) NextHop(u, d mesh.Coord) (mesh.Coord, error) {
	if !r.m.Contains(u) || !r.m.Contains(d) {
		return mesh.Coord{}, fmt.Errorf("route: nodes %v -> %v outside mesh %v", u, d, r.m)
	}
	if u == d {
		return d, nil
	}
	v := r.viewFor(u, d)
	n, err := v.step(v.to(u), v.to(d))
	if err != nil {
		return mesh.Coord{}, err
	}
	return v.from(n), nil
}

// RouteVia routes through the given waypoints in order (the two-phase
// routing of the paper's extensions), concatenating one Wu-protocol
// route per leg.
func (r *Router) RouteVia(s, d mesh.Coord, via ...mesh.Coord) (Path, error) {
	stops := make([]mesh.Coord, 0, len(via)+2)
	stops = append(stops, s)
	stops = append(stops, via...)
	stops = append(stops, d)
	var path Path
	for i := 0; i+1 < len(stops); i++ {
		leg, err := r.Route(stops[i], stops[i+1])
		if err != nil {
			return nil, fmt.Errorf("leg %v -> %v: %w", stops[i], stops[i+1], err)
		}
		if i == 0 {
			path = append(path, leg...)
		} else {
			path = append(path, leg[1:]...)
		}
	}
	return path, nil
}

// viewFor returns the (lazily built) view whose orientation puts d
// weakly northeast of s.
func (r *Router) viewFor(s, d mesh.Coord) *view {
	fx, fy := 0, 0
	if d.X < s.X {
		fx = 1
	}
	if d.Y < s.Y {
		fy = 1
	}
	r.once[fx][fy].Do(func() {
		r.views[fx][fy] = r.buildView(fx == 1, fy == 1)
	})
	return r.views[fx][fy]
}

// buildView reflects the blocked grid into the requested orientation
// and computes the boundary lines there.
func (r *Router) buildView(flipX, flipY bool) *view {
	v := &view{m: r.m, flipX: flipX, flipY: flipY}
	v.blocked = make([]bool, len(r.blocked))
	for i, b := range r.blocked {
		if b {
			v.blocked[v.m.Index(v.to(r.m.CoordOf(i)))] = true
		}
	}
	v.bounds = buildBoundaries(v.m, v.blocked)
	return v
}

// to maps a mesh coordinate into view coordinates.
func (v *view) to(c mesh.Coord) mesh.Coord {
	if v.flipX {
		c.X = v.m.Width - 1 - c.X
	}
	if v.flipY {
		c.Y = v.m.Height - 1 - c.Y
	}
	return c
}

// from maps a view coordinate back to mesh coordinates; the reflection
// is an involution.
func (v *view) from(c mesh.Coord) mesh.Coord {
	return v.to(c)
}

// route runs Wu's protocol in view space, where d is weakly northeast
// of s: at every hop pick a preferred direction (east or north), except
// that boundary-line rules force the packet to stay on a line while the
// destination lies in the corresponding shadow region of the block.
func (v *view) route(s, d mesh.Coord) ([]mesh.Coord, error) {
	path := make([]mesh.Coord, 0, mesh.Distance(s, d)+1)
	path = append(path, s)
	u := s
	for u != d {
		next, err := v.step(u, d)
		if err != nil {
			return nil, err
		}
		u = next
		path = append(path, u)
	}
	return path, nil
}

// step picks the next hop at u.
//
// Critical-path rules: a node on (a merged section of) an obstacle's L1
// whose destination lies in the obstacle's east shadow (region R6) must
// stay on L1 until its intersection with L4; a node on an obstacle's L3
// whose destination lies in the north shadow (region R4) must stay on
// L3 until its intersection with L2. The line successor stored with the
// boundary info encodes the merged (turned/joined) sections, so
// following it carries the packet around intervening fault regions.
//
// Several lines can fire at the same node; their advice composes as
// follows. The next hop must (a) be the successor of at least one fired
// line — stepping off every fired line can strand the packet in a
// pocket the merged sections detour around — and (b) respect the shadow
// constraint of every fired line: while a destination sits in an
// obstacle's east shadow the packet may not climb into the obstacle's
// row range before passing its column range (and symmetrically for
// north shadows). Among hops satisfying both, the adaptive preference
// (larger remaining offset first) decides.
func (v *view) step(u, d mesh.Coord) (mesh.Coord, error) {
	type constraint struct {
		rect mesh.Rect
		kind LineKind
	}
	// Nodes rarely sit on more than a couple of lines at once; the
	// stack-backed buffer keeps the per-hop decision allocation-free.
	var (
		firedBuf  [4]constraint
		fired     = firedBuf[:0]
		succEast  bool
		succNorth bool
	)
	for _, ref := range v.bounds.at(u) {
		b := v.bounds.rect(ref)
		var fire bool
		switch ref.kind {
		case LineL1:
			fire = d.X > b.MaxX && d.Y >= b.MinY && d.Y <= b.MaxY
		case LineL3:
			fire = d.Y > b.MaxY && d.X >= b.MinX && d.X <= b.MaxX
		}
		if !fire {
			continue
		}
		fired = append(fired, constraint{rect: b, kind: ref.kind})
		if ref.succ >= 0 {
			sc := v.m.CoordOf(int(ref.succ))
			if sc.Y == u.Y {
				succEast = true
			} else {
				succNorth = true
			}
		}
	}

	east := mesh.Coord{X: u.X + 1, Y: u.Y}
	north := mesh.Coord{X: u.X, Y: u.Y + 1}
	usable := func(n mesh.Coord) bool {
		if n.X > d.X || n.Y > d.Y || !v.m.Contains(n) || v.blocked[v.m.Index(n)] {
			return false
		}
		for _, c := range fired {
			switch c.kind {
			case LineL1:
				if n.Y >= c.rect.MinY && n.X <= c.rect.MaxX {
					return false
				}
			case LineL3:
				if n.X >= c.rect.MinX && n.Y <= c.rect.MaxY {
					return false
				}
			}
		}
		return true
	}

	okEast := usable(east)
	okNorth := usable(north)
	if len(fired) > 0 {
		// Constrained: only fired-line successors are candidates.
		okEast = okEast && succEast
		okNorth = okNorth && succNorth
	}

	// Adaptive preference: larger remaining offset first.
	if d.Y-u.Y > d.X-u.X {
		if okNorth {
			return north, nil
		}
		if okEast {
			return east, nil
		}
	} else {
		if okEast {
			return east, nil
		}
		if okNorth {
			return north, nil
		}
	}
	return mesh.Coord{}, &StuckError{At: u, To: d}
}

// Oracle routes with full global information: it walks preferred
// directions guided by the exact reachability DP, so it finds a minimal
// path whenever one exists. It is the baseline the limited-information
// protocol is compared against. Each call pays one full-mesh sweep;
// callers issuing many queries against one blocked grid should memoize
// the sweep in a wang.ReachCache and use OracleFrom.
func Oracle(m mesh.Mesh, blocked []bool, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	return OracleFrom(m, blocked, wang.ReachFrom(m, d, blocked), s, d)
}

// OracleFrom is Oracle with the destination-rooted reachability sweep
// supplied by the caller (typically from a wang.ReachCache), so that
// repeated oracle routes to one destination cost O(path) instead of
// O(N^2) each. reach must be rooted at d over the same blocked grid.
func OracleFrom(m mesh.Mesh, blocked []bool, reach *wang.Reach, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	if !reach.CanReach(s) {
		return nil, &StuckError{At: s, To: d}
	}
	path := make(Path, 0, mesh.Distance(s, d)+1)
	path = append(path, s)
	u := s
	var dirBuf [2]mesh.Dir
	for u != d {
		advanced := false
		for _, dir := range mesh.AppendPreferredDirs(dirBuf[:0], u, d) {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && reach.CanReach(n) {
				u = n
				path = append(path, u)
				advanced = true
				break
			}
		}
		if !advanced {
			return nil, &StuckError{At: u, To: d} // unreachable given the reach check
		}
	}
	return path, nil
}

// DFSRoute is the header-information baseline the paper contrasts its
// information model against (Chen and Shin's depth-first-search
// routing): the packet header carries the set of visited nodes, moves
// are tried preferred-first, and the packet backtracks out of dead
// ends. It delivers whenever source and destination are connected at
// all, but the route need not be minimal; the returned path includes
// backtracking hops, as the physical packet would travel them.
func DFSRoute(m mesh.Mesh, blocked []bool, s, d mesh.Coord) (Path, error) {
	if !m.Contains(s) || !m.Contains(d) {
		return nil, fmt.Errorf("route: endpoints %v -> %v outside mesh %v", s, d, m)
	}
	if blocked[m.Index(s)] || blocked[m.Index(d)] {
		return nil, fmt.Errorf("route: endpoints %v -> %v inside a fault region", s, d)
	}
	visited := make([]bool, m.Size())
	visited[m.Index(s)] = true
	path := Path{s}
	stack := []mesh.Coord{s}

	// firstCandidate returns the best unvisited usable neighbor of u:
	// preferred directions first, then spares.
	var dirBuf [4]mesh.Dir
	firstCandidate := func(u mesh.Coord) (mesh.Coord, bool) {
		dirs := mesh.AppendPreferredDirs(dirBuf[:0], u, d)
		dirs = mesh.AppendSpareDirs(dirs, u, d)
		for _, dir := range dirs {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && !visited[m.Index(n)] {
				return n, true
			}
		}
		return mesh.Coord{}, false
	}

	for len(stack) > 0 {
		u := stack[len(stack)-1]
		if u == d {
			return path, nil
		}
		moved := false
		if n, ok := firstCandidate(u); ok {
			visited[m.Index(n)] = true
			stack = append(stack, n)
			path = append(path, n)
			moved = true
		}
		if !moved {
			// Backtrack: physically retrace to the previous node.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				path = append(path, stack[len(stack)-1])
			}
		}
	}
	return nil, &StuckError{At: s, To: d}
}
