package route

import (
	"math/rand"
	"testing"

	"extmesh/internal/mesh"
	"extmesh/internal/wang"
)

// This file pins the refit route kernel (CSR boundary index, append-
// style path assembly, word-stepping oracle) to the pre-refit
// implementation, which is reproduced below verbatim as the golden
// reference: map-backed boundary info, per-call path allocation and a
// per-cell oracle walk. The property test drives both over random
// blocked grids — not just valid block/MCC scenarios, since the kernel
// is defined over arbitrary grids — and demands bit-identical paths.

// refLineRef is the pre-refit lineRef.
type refLineRef struct {
	run  int32
	kind LineKind
	succ int32
}

// refBoundarySet is the pre-refit map-backed boundarySet.
type refBoundarySet struct {
	m     mesh.Mesh
	hRuns []mesh.Rect
	vRuns []mesh.Rect
	info  map[int32][]refLineRef
}

func refBuildBoundaries(m mesh.Mesh, blocked []bool) *refBoundarySet {
	bs := &refBoundarySet{m: m, info: make(map[int32][]refLineRef)}
	bs.hRuns = HorizontalRuns(m, blocked)
	bs.vRuns = VerticalRuns(m, blocked)
	for i, r := range bs.vRuns {
		bs.refWalkL1(int32(i), r, blocked)
	}
	for i, r := range bs.hRuns {
		bs.refWalkL3(int32(i), r, blocked)
	}
	return bs
}

func (bs *refBoundarySet) add(c mesh.Coord, run int32, kind LineKind, succ mesh.Coord) {
	i := int32(bs.m.Index(c))
	s := int32(-1)
	if bs.m.Contains(succ) {
		s = int32(bs.m.Index(succ))
	}
	bs.info[i] = append(bs.info[i], refLineRef{run: run, kind: kind, succ: s})
}

func (bs *refBoundarySet) at(c mesh.Coord) []refLineRef {
	return bs.info[int32(bs.m.Index(c))]
}

func (bs *refBoundarySet) rect(ref refLineRef) mesh.Rect {
	if ref.kind == LineL1 {
		return bs.vRuns[ref.run]
	}
	return bs.hRuns[ref.run]
}

func (bs *refBoundarySet) refWalkL1(run int32, r mesh.Rect, blocked []bool) {
	cur := mesh.Coord{X: r.MinX, Y: r.MinY - 1}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return
	}
	first := mesh.Coord{X: r.MinX + 1, Y: r.MinY - 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	bs.add(cur, run, LineL1, first)
	for {
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 {
			return
		}
		if !blocked[bs.m.Index(west)] {
			bs.add(west, run, LineL1, cur)
			cur = west
			continue
		}
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 || blocked[bs.m.Index(south)] {
			return
		}
		bs.add(south, run, LineL1, cur)
		cur = south
	}
}

func (bs *refBoundarySet) refWalkL3(run int32, r mesh.Rect, blocked []bool) {
	cur := mesh.Coord{X: r.MinX - 1, Y: r.MinY}
	if !bs.m.Contains(cur) || blocked[bs.m.Index(cur)] {
		return
	}
	first := mesh.Coord{X: r.MinX - 1, Y: r.MinY + 1}
	if !bs.m.Contains(first) || blocked[bs.m.Index(first)] {
		first = mesh.Coord{X: -1, Y: -1}
	}
	bs.add(cur, run, LineL3, first)
	for {
		south := mesh.Coord{X: cur.X, Y: cur.Y - 1}
		if south.Y < 0 {
			return
		}
		if !blocked[bs.m.Index(south)] {
			bs.add(south, run, LineL3, cur)
			cur = south
			continue
		}
		west := mesh.Coord{X: cur.X - 1, Y: cur.Y}
		if west.X < 0 || blocked[bs.m.Index(west)] {
			return
		}
		bs.add(west, run, LineL3, cur)
		cur = west
	}
}

// refView is the pre-refit view with the pre-refit step and route.
type refView struct {
	m       mesh.Mesh
	flipX   bool
	flipY   bool
	blocked []bool
	bounds  *refBoundarySet
}

func (v *refView) to(c mesh.Coord) mesh.Coord {
	if v.flipX {
		c.X = v.m.Width - 1 - c.X
	}
	if v.flipY {
		c.Y = v.m.Height - 1 - c.Y
	}
	return c
}

func (v *refView) from(c mesh.Coord) mesh.Coord { return v.to(c) }

func (v *refView) step(u, d mesh.Coord) (mesh.Coord, error) {
	type constraint struct {
		rect mesh.Rect
		kind LineKind
	}
	var (
		firedBuf  [4]constraint
		fired     = firedBuf[:0]
		succEast  bool
		succNorth bool
	)
	for _, ref := range v.bounds.at(u) {
		b := v.bounds.rect(ref)
		var fire bool
		switch ref.kind {
		case LineL1:
			fire = d.X > b.MaxX && d.Y >= b.MinY && d.Y <= b.MaxY
		case LineL3:
			fire = d.Y > b.MaxY && d.X >= b.MinX && d.X <= b.MaxX
		}
		if !fire {
			continue
		}
		fired = append(fired, constraint{rect: b, kind: ref.kind})
		if ref.succ >= 0 {
			sc := v.m.CoordOf(int(ref.succ))
			if sc.Y == u.Y {
				succEast = true
			} else {
				succNorth = true
			}
		}
	}

	east := mesh.Coord{X: u.X + 1, Y: u.Y}
	north := mesh.Coord{X: u.X, Y: u.Y + 1}
	usable := func(n mesh.Coord) bool {
		if n.X > d.X || n.Y > d.Y || !v.m.Contains(n) || v.blocked[v.m.Index(n)] {
			return false
		}
		for _, c := range fired {
			switch c.kind {
			case LineL1:
				if n.Y >= c.rect.MinY && n.X <= c.rect.MaxX {
					return false
				}
			case LineL3:
				if n.X >= c.rect.MinX && n.Y <= c.rect.MaxY {
					return false
				}
			}
		}
		return true
	}

	okEast := usable(east)
	okNorth := usable(north)
	if len(fired) > 0 {
		okEast = okEast && succEast
		okNorth = okNorth && succNorth
	}
	if d.Y-u.Y > d.X-u.X {
		if okNorth {
			return north, nil
		}
		if okEast {
			return east, nil
		}
	} else {
		if okEast {
			return east, nil
		}
		if okNorth {
			return north, nil
		}
	}
	return mesh.Coord{}, &StuckError{At: u, To: d}
}

func (v *refView) route(s, d mesh.Coord) ([]mesh.Coord, error) {
	path := make([]mesh.Coord, 0, mesh.Distance(s, d)+1)
	path = append(path, s)
	u := s
	for u != d {
		next, err := v.step(u, d)
		if err != nil {
			return nil, err
		}
		u = next
		path = append(path, u)
	}
	return path, nil
}

// refRouter is the pre-refit Router: four eagerly built views.
type refRouter struct {
	m       mesh.Mesh
	blocked []bool
	views   [2][2]*refView
}

func newRefRouter(m mesh.Mesh, blocked []bool) *refRouter {
	r := &refRouter{m: m, blocked: blocked}
	for fx := 0; fx < 2; fx++ {
		for fy := 0; fy < 2; fy++ {
			v := &refView{m: m, flipX: fx == 1, flipY: fy == 1}
			v.blocked = make([]bool, len(blocked))
			for i, b := range blocked {
				if b {
					v.blocked[v.m.Index(v.to(m.CoordOf(i)))] = true
				}
			}
			v.bounds = refBuildBoundaries(v.m, v.blocked)
			r.views[fx][fy] = v
		}
	}
	return r
}

func (r *refRouter) route(s, d mesh.Coord) (Path, error) {
	if !r.m.Contains(s) || !r.m.Contains(d) ||
		r.blocked[r.m.Index(s)] || r.blocked[r.m.Index(d)] {
		return nil, &StuckError{At: s, To: d} // parity test never routes these
	}
	fx, fy := 0, 0
	if d.X < s.X {
		fx = 1
	}
	if d.Y < s.Y {
		fy = 1
	}
	v := r.views[fx][fy]
	np, err := v.route(v.to(s), v.to(d))
	if err != nil {
		return nil, err
	}
	for i := range np {
		np[i] = v.from(np[i])
	}
	return Path(np), nil
}

// refOracleFrom is the pre-refit per-cell oracle walk.
func refOracleFrom(m mesh.Mesh, blocked []bool, reach *wang.Reach, s, d mesh.Coord) (Path, error) {
	if !reach.CanReach(s) {
		return nil, &StuckError{At: s, To: d}
	}
	path := make(Path, 0, mesh.Distance(s, d)+1)
	path = append(path, s)
	u := s
	var dirBuf [2]mesh.Dir
	for u != d {
		advanced := false
		for _, dir := range mesh.AppendPreferredDirs(dirBuf[:0], u, d) {
			n := u.Add(dir.Offset())
			if m.Contains(n) && !blocked[m.Index(n)] && reach.CanReach(n) {
				u = n
				path = append(path, u)
				advanced = true
				break
			}
		}
		if !advanced {
			return nil, &StuckError{At: u, To: d}
		}
	}
	return path, nil
}

// randomGrid fills a fresh blocked grid with the given fault density.
func randomGrid(m mesh.Mesh, density float64, rng *rand.Rand) []bool {
	blocked := make([]bool, m.Size())
	for i := range blocked {
		blocked[i] = rng.Float64() < density
	}
	return blocked
}

func samePath(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelParity property-tests the refit kernel against the golden
// reference over ~300 random meshes: Wu routes and oracle routes must
// be bit-identical (same success/failure, same node sequence), the
// append-style variants must agree with their allocating forms under a
// dirty prefix, and every path either router delivers must be minimal
// whenever the oracle succeeds.
func TestKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const meshes = 300
	const pairsPerMesh = 24
	routesChecked, oraclesChecked := 0, 0
	for mi := 0; mi < meshes; mi++ {
		w := 4 + rng.Intn(37) // up to 40: crosses the 64-column word only rarely, so mix in wide meshes below
		h := 4 + rng.Intn(37)
		if mi%5 == 0 {
			w = 60 + rng.Intn(80) // exercise multi-word rows in the oracle's run stepping
		}
		m := mesh.Mesh{Width: w, Height: h}
		blocked := randomGrid(m, rng.Float64()*0.15, rng)

		newRouter := NewRouter(m, blocked)
		oldRouter := newRefRouter(m, blocked)
		prefix := []mesh.Coord{{X: -7, Y: -9}} // dirty dst prefix for the Into forms

		for pi := 0; pi < pairsPerMesh; pi++ {
			s := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			d := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
			if blocked[m.Index(s)] || blocked[m.Index(d)] {
				continue
			}

			wantP, wantErr := oldRouter.route(s, d)
			gotP, gotErr := newRouter.Route(s, d)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("mesh %dx%d route %v->%v: ref err=%v, new err=%v", w, h, s, d, wantErr, gotErr)
			}
			if wantErr == nil && !samePath(wantP, gotP) {
				t.Fatalf("mesh %dx%d route %v->%v: ref path %v, new path %v", w, h, s, d, wantP, gotP)
			}
			out, intoErr := newRouter.RouteInto(prefix, s, d)
			if (intoErr == nil) != (gotErr == nil) {
				t.Fatalf("RouteInto %v->%v: err=%v, Route err=%v", s, d, intoErr, gotErr)
			}
			if len(out) < 1 || out[0] != prefix[0] {
				t.Fatalf("RouteInto %v->%v clobbered the dst prefix: %v", s, d, out)
			}
			if intoErr == nil && !samePath(Path(out[1:]), gotP) {
				t.Fatalf("RouteInto %v->%v: %v, want %v", s, d, out[1:], gotP)
			}
			if intoErr != nil && len(out) != len(prefix) {
				t.Fatalf("RouteInto %v->%v error left dst at length %d, want %d", s, d, len(out), len(prefix))
			}
			routesChecked++

			reach := wang.ReachFrom(m, d, blocked)
			wantOP, wantOErr := refOracleFrom(m, blocked, reach, s, d)
			gotOP, gotOErr := OracleFrom(m, blocked, reach, s, d)
			if (wantOErr == nil) != (gotOErr == nil) {
				t.Fatalf("mesh %dx%d oracle %v->%v: ref err=%v, new err=%v", w, h, s, d, wantOErr, gotOErr)
			}
			if wantOErr == nil && !samePath(wantOP, gotOP) {
				t.Fatalf("mesh %dx%d oracle %v->%v: ref path %v, new path %v", w, h, s, d, wantOP, gotOP)
			}
			oraclesChecked++

			// Minimality: whenever the oracle delivers, a delivered Wu
			// route must be minimal too (it always is when it succeeds),
			// and the oracle's own path must be minimal by construction.
			if gotOErr == nil {
				if !gotOP.Minimal() {
					t.Fatalf("oracle path %v->%v not minimal: %v", s, d, gotOP)
				}
				if gotErr == nil && !gotP.Minimal() {
					t.Fatalf("delivered Wu path %v->%v not minimal: %v", s, d, gotP)
				}
			}
		}
	}
	if routesChecked < meshes*pairsPerMesh/2 || oraclesChecked < meshes*pairsPerMesh/2 {
		t.Fatalf("too few pairs exercised: %d routes, %d oracles", routesChecked, oraclesChecked)
	}
}
