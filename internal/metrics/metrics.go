// Package metrics is the instrumentation layer shared by the CLIs and
// the meshserved daemon: lock-free counters and gauges, fixed-bucket
// latency histograms with quantile estimation, and two expositions —
// a plain-text dump for /metrics and an expvar mirror for /debug/vars.
// Everything is stdlib-only and cheap enough to sit on query hot paths
// (one atomic add per event).
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways (queue
// depths, in-flight requests, registry sizes).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the latency histogram upper bounds: powers of two
// from 1µs to ~4.2s plus a catch-all, so three decades of request
// latencies land with ≤2x relative error — enough for p50/p99 load
// reporting without per-observation allocation.
var histBuckets = func() []time.Duration {
	var b []time.Duration
	for d := time.Microsecond; d <= 4*time.Second; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// Histogram tracks a latency distribution in fixed exponential
// buckets. All methods are safe for concurrent use.
type Histogram struct {
	counts []atomic.Uint64 // one per bucket, plus overflow at the end
	sum    atomic.Int64    // total nanoseconds observed
	n      atomic.Uint64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, len(histBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(histBuckets), func(i int) bool { return d <= histBuckets[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns how many durations have been observed.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observed duration (zero when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q-th observation — an overestimate by at most
// one bucket width (2x). It returns zero when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(histBuckets) {
				return histBuckets[i]
			}
			return 2 * histBuckets[len(histBuckets)-1] // overflow bucket
		}
	}
	return 2 * histBuckets[len(histBuckets)-1]
}

// Registry is a named set of instruments. Instruments are created on
// first use and live for the registry's lifetime; lookups take a
// read lock, updates on the returned instrument are lock-free. Callers
// on hot paths should resolve their instrument once and keep the
// pointer.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry the library hot paths
// (reach cache, online fault stats) and the daemon share.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// snapshot returns every instrument's value keyed by name, with
// histograms flattened to count/mean/p50/p99 sub-keys.
func (r *Registry) snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+4*len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+"_count"] = h.Count()
		out[name+"_mean_us"] = h.Mean().Microseconds()
		out[name+"_p50_us"] = h.Quantile(0.50).Microseconds()
		out[name+"_p99_us"] = h.Quantile(0.99).Microseconds()
	}
	return out
}

// WriteText renders every instrument as "name value" lines in sorted
// order — the /metrics exposition.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %v\n", name, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on duplicate names, and tests may build many servers per
// process.
var expvarOnce sync.Once

// PublishExpvar mirrors the registry under one expvar name, so
// /debug/vars shows a live "extmesh" map next to the runtime's
// memstats. Safe to call repeatedly; only the first call publishes.
func (r *Registry) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("extmesh", expvar.Func(func() any { return r.snapshot() }))
	})
}
