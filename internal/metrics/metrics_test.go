package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Fatal("second lookup should return the same counter")
	}
	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency")
	// 99 observations at ~100µs, one at ~100ms: p50 must land in the
	// 100µs decade and p99 reach no further than one bucket above the
	// outlier's.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 100*time.Microsecond || p50 > 256*time.Microsecond {
		t.Errorf("p50 = %v, want within one bucket of 100µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 100*time.Microsecond || p99 > 256*time.Microsecond {
		t.Errorf("p99 = %v, want the 99th of 100 observations (~100µs), got %v", p99, p99)
	}
	p100 := h.Quantile(1)
	if p100 < 100*time.Millisecond || p100 > 256*time.Millisecond {
		t.Errorf("p100 = %v, want within one bucket of 100ms", p100)
	}
	if h.Mean() < 1000*time.Microsecond {
		t.Errorf("mean = %v, want pulled up by the outlier", h.Mean())
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-time.Second) // clamped, not a panic
	if h.Count() != 1 {
		t.Fatal("negative observation should be clamped and counted")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("depth").Set(7)
	r.Histogram("lat").Observe(time.Millisecond)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a_total 1\n", "b_total 2\n", "depth 7\n", "lat_count 1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted: a_total before b_total before depth.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("exposition not sorted:\n%s", out)
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one process-wide registry")
	}
	Default().PublishExpvar()
	Default().PublishExpvar() // second call must not panic
}
