package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/metrics"
)

func testOptions() Options {
	return Options{Policy: SyncNever, Metrics: metrics.NewRegistry()}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func sampleRecords() []Record {
	return []Record{
		{Op: OpPut, Name: "m", Blob: json.RawMessage(`{"width":8,"height":8,"faults":[]}`), Version: 0},
		{Op: OpApply, Name: "m", Fail: []extmesh.Coord{{X: 1, Y: 1}, {X: 2, Y: 2}}},
		{Op: OpEvents, Name: "m", Spec: "fail@0:3,3;recover@1:3,3", Events: []FaultEvent{
			{Op: "fail", Node: extmesh.Coord{X: 3, Y: 3}},
			{Op: "recover", Node: extmesh.Coord{X: 3, Y: 3}},
		}},
		{Op: OpDelete, Name: "gone"},
	}
}

// TestAppendRecoverRoundTrip pins the core durability contract: what
// was appended is what recovery returns, in order, with sequence
// numbers assigned contiguously.
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, testOptions())
	if len(rec.Meshes) != 0 || len(rec.Records) != 0 || rec.Truncated != 0 {
		t.Fatalf("fresh dir recovery = %+v, want empty", rec)
	}
	want := sampleRecords()
	for i, r := range want {
		seq, err := s.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Errorf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for i, got := range rec2.Records {
		exp := want[i]
		exp.Seq = uint64(i + 1)
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("record %d = %+v, want %+v", i, got, exp)
		}
	}
	if s2.Seq() != uint64(len(want)) {
		t.Errorf("Seq = %d, want %d", s2.Seq(), len(want))
	}
	// Appends after recovery continue the sequence.
	seq, err := s2.Append(Record{Op: OpDelete, Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)+1) {
		t.Errorf("post-recovery seq = %d, want %d", seq, len(want)+1)
	}
}

// TestTailCorruptionTolerated crashes mid-append by hand: garbage after
// the last full frame must be dropped, the valid prefix preserved, and
// the file truncated so future appends extend a clean log.
func TestTailCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	walPath := filepath.Join(dir, walName(0))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x37, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'h', 'a', 'l', 'f'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	if len(rec.Records) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(sampleRecords()))
	}
	if rec.Truncated != len(torn) {
		t.Errorf("Truncated = %d, want %d", rec.Truncated, len(torn))
	}
	// The log was physically truncated: appending and recovering again
	// must yield old records plus the new one, no corruption residue.
	if _, err := s2.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, rec3 := mustOpen(t, dir, testOptions())
	if n := len(rec3.Records); n != len(sampleRecords())+1 || rec3.Truncated != 0 {
		t.Errorf("after truncate+append: %d records truncated=%d, want %d records truncated=0",
			n, rec3.Truncated, len(sampleRecords())+1)
	}
}

// TestBitFlippedCRCStopsReplay flips one payload byte of a middle
// frame: replay must stop before it, keeping only the earlier records.
func TestBitFlippedCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	var offsets []int
	off := 0
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
		fi, _ := os.Stat(filepath.Join(dir, walName(0)))
		off = int(fi.Size())
	}
	s.Close()

	walPath := filepath.Join(dir, walName(0))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+frameHeader+3] ^= 0x40 // corrupt record 1's payload
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records past a bit flip, want 1", len(rec.Records))
	}
	if rec.Truncated == 0 {
		t.Error("bit-flipped tail not reported as truncated")
	}
}

// TestCompaction folds state into a snapshot, rotates the log, removes
// the old generation, and recovers from the snapshot alone.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	state := map[string]SnapshotMesh{
		"m": {Blob: json.RawMessage(`{"width":8,"height":8,"faults":[{"x":1,"y":1}]}`), Version: 7},
	}
	if err := s.Compact(state); err != nil {
		t.Fatal(err)
	}
	// Old generation gone, new snapshot + empty log present.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Errorf("wal-0 still present after compaction (err=%v)", err)
	}
	// A post-compaction append lands in the new log.
	if _, err := s.Append(Record{Op: OpApply, Name: "m", Fail: []extmesh.Coord{{X: 5, Y: 5}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	got, ok := rec.Meshes["m"]
	if !ok || got.Version != 7 || string(got.Blob) != string(state["m"].Blob) {
		t.Errorf("snapshot mesh = %+v ok=%v, want version 7 and original blob", got, ok)
	}
	if len(rec.Records) != 1 || rec.Records[0].Op != OpApply {
		t.Errorf("post-snapshot records = %+v, want the single apply", rec.Records)
	}
	if s2.Seq() != uint64(len(sampleRecords()))+1 {
		t.Errorf("Seq = %d, want %d (continuity across compaction)", s2.Seq(), len(sampleRecords())+1)
	}
}

// TestNeedsCompaction pins the hint threshold and its reset.
func TestNeedsCompaction(t *testing.T) {
	opts := testOptions()
	opts.CompactEvery = 3
	s, _ := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
			t.Fatal(err)
		}
		if s.NeedsCompaction() {
			t.Fatalf("NeedsCompaction true after %d of 3 records", i+1)
		}
	}
	if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if !s.NeedsCompaction() {
		t.Fatal("NeedsCompaction false at threshold")
	}
	if err := s.Compact(map[string]SnapshotMesh{}); err != nil {
		t.Fatal(err)
	}
	if s.NeedsCompaction() {
		t.Error("NeedsCompaction true right after Compact")
	}
}

// TestSyncPolicies exercises the three flush policies; correctness of
// the recovered content is identical, so the test pins metrics-visible
// behavior (fsync counts, lag).
func TestSyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		m := metrics.NewRegistry()
		s, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncAlways, Metrics: m})
		defer s.Close()
		for i := 0; i < 3; i++ {
			if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.Counter("journal_fsyncs_total").Value(); got != 3 {
			t.Errorf("fsyncs = %d, want 3", got)
		}
		if s.Pending() != 0 {
			t.Errorf("Pending = %d, want 0", s.Pending())
		}
	})
	t.Run("never", func(t *testing.T) {
		m := metrics.NewRegistry()
		s, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever, Metrics: m})
		defer s.Close()
		for i := 0; i < 3; i++ {
			if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
				t.Fatal(err)
			}
		}
		if got := m.Counter("journal_fsyncs_total").Value(); got != 0 {
			t.Errorf("fsyncs = %d, want 0", got)
		}
		if s.Pending() != 3 {
			t.Errorf("Pending = %d, want 3", s.Pending())
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		if s.Pending() != 0 {
			t.Errorf("Pending after Sync = %d, want 0", s.Pending())
		}
	})
	t.Run("interval", func(t *testing.T) {
		m := metrics.NewRegistry()
		s, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncInterval, Interval: time.Hour, Metrics: m})
		defer s.Close()
		for i := 0; i < 3; i++ {
			if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
				t.Fatal(err)
			}
		}
		// A one-hour horizon means no flush happened yet.
		if got := m.Counter("journal_fsyncs_total").Value(); got != 0 {
			t.Errorf("fsyncs = %d, want 0 inside the interval", got)
		}
	})
}

// TestAppendBeforeRecover pins the misuse guard.
func TestAppendBeforeRecover(t *testing.T) {
	s, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err == nil {
		t.Fatal("Append before Recover accepted")
	}
	if err := s.Compact(nil); err == nil {
		t.Fatal("Compact before Recover accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in string
		p  SyncPolicy
		ok bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		p, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && p != tc.p) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, p, err)
		}
		if tc.ok && p.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", p, p.String(), tc.in)
		}
	}
}
