// Package journal is the durability layer of the serving plane: a
// CRC-framed append-only log of registry mutations plus atomic
// snapshot compaction, so a crashed daemon recovers its registered
// meshes and every fault that was acknowledged before the crash.
//
// The design follows the classic snapshot+WAL shape. A generation is
// one snapshot file (the full registry state, written atomically via
// rename) plus one write-ahead log of the mutations applied since that
// snapshot. Recovery loads the newest valid snapshot, replays its log
// up to the first corrupt frame (a torn tail from a crash mid-append
// is expected, not fatal), and truncates the garbage so appends resume
// on a clean prefix. Compaction writes a fresh snapshot, rotates to an
// empty log, and deletes the previous generation.
//
// Records journal *intent* (the attempted fail/recover lists, the
// uploaded blob), not outcomes: replaying a record re-executes the
// same deterministic mutation against the same state, so skip counts,
// partial applications, and version increments reproduce exactly.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"extmesh"
)

// Record operation kinds.
const (
	// OpPut registers or replaces a named mesh from a network blob.
	OpPut = "put"
	// OpDelete removes a named mesh.
	OpDelete = "delete"
	// OpApply applies a fail list then a recover list to a mesh
	// (DynamicNetwork.Apply order).
	OpApply = "apply"
	// OpEvents applies an ordered fail/recover event sequence one
	// event at a time — the admin inject-schedule form, which can
	// interleave failures and recoveries in ways a two-list batch
	// cannot express.
	OpEvents = "events"
	// OpEpoch bumps the cluster epoch (failover fencing). The record
	// mutates no mesh state; journaling it makes a promotion durable
	// across crash recovery and ships it to followers through the
	// ordinary replication stream.
	OpEpoch = "epoch"
)

// FaultEvent is one step of an OpEvents record.
type FaultEvent struct {
	Op   string        `json:"op"` // "fail" or "recover"
	Node extmesh.Coord `json:"node"`
}

// Record is one journaled registry mutation. Seq is assigned by the
// store on append and is strictly increasing within a data dir.
type Record struct {
	Seq     uint64          `json:"seq"`
	Op      string          `json:"op"`
	Name    string          `json:"name"`
	Blob    json.RawMessage `json:"blob,omitempty"`    // OpPut: network blob
	Version uint64          `json:"version,omitempty"` // OpPut: mesh version at save time
	Fail    []extmesh.Coord `json:"fail,omitempty"`    // OpApply
	Recover []extmesh.Coord `json:"recover,omitempty"` // OpApply
	Events  []FaultEvent    `json:"events,omitempty"`  // OpEvents
	Spec    string          `json:"spec,omitempty"`    // OpEvents: provenance (inject spec)
	Epoch   uint64          `json:"epoch,omitempty"`   // OpEpoch: new cluster epoch
}

// Frame layout: a fixed 8-byte header — payload length then IEEE
// CRC32 of the payload, both little-endian uint32 — followed by the
// JSON-encoded record. The CRC covers only the payload; a corrupt
// length lands on a CRC mismatch or an out-of-range length, either of
// which ends replay at the last good frame.
const frameHeader = 8

// MaxFrameBytes bounds a single frame so a corrupt length field cannot
// make replay allocate absurd buffers. The largest legitimate payload
// is a put record carrying a network blob, bounded like the HTTP
// layer's request cap.
const MaxFrameBytes = 16 << 20

// encodeFrame appends the framed record to dst.
func encodeFrame(dst []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return dst, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return dst, fmt.Errorf("journal: record of %d bytes exceeds frame cap %d", len(payload), MaxFrameBytes)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadFrames decodes consecutive frames from data. It never fails on
// corrupt input: decoding stops at the first frame whose length is
// implausible, whose CRC does not match, or whose payload is not a
// valid record — the torn-tail cases a crash mid-append produces — and
// valid reports the byte length of the good prefix. Every returned
// record passed its CRC.
func ReadFrames(data []byte) (recs []Record, valid int) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > MaxFrameBytes || len(data)-off-frameHeader < n {
			return recs, off
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, off
		}
		recs = append(recs, r)
		off += frameHeader + n
	}
}
