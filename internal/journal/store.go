package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"extmesh/internal/metrics"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: nothing acknowledged is
	// ever lost, at one disk flush per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the
	// last flush (checked on append) and on Sync/Compact/Close — the
	// bounded-loss middle ground.
	SyncInterval
	// SyncNever leaves flushing to the OS page cache (and Close). A
	// crash can lose the unsynced tail; replay still recovers the
	// synced prefix thanks to frame CRCs.
	SyncNever
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// String names the policy in ParseSyncPolicy's spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "invalid"
	}
}

// Options configures a Store. The zero value fsyncs on every append
// and compacts every 4096 records.
type Options struct {
	Policy SyncPolicy
	// Interval is the SyncInterval flush horizon; 0 selects 100ms.
	Interval time.Duration
	// CompactEvery makes NeedsCompaction report true once this many
	// records accumulated in the current log generation; 0 selects
	// 4096, negative disables the hint.
	CompactEvery int
	// Metrics is the instrument registry; nil selects the process-wide
	// default.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	if o.Metrics == nil {
		o.Metrics = metrics.Default()
	}
	return o
}

// SnapshotMesh is one mesh's durable state inside a snapshot: the
// network blob (DynamicNetwork.MarshalJSON format) and the mutation
// version it carried when saved, so recovery can restore version
// continuity across the blob round-trip.
type SnapshotMesh struct {
	Blob    json.RawMessage `json:"blob"`
	Version uint64          `json:"version"`
}

// snapshotFile is the on-disk snapshot format.
type snapshotFile struct {
	Gen    uint64                  `json:"gen"`
	Seq    uint64                  `json:"seq"`             // last record folded into this snapshot
	Epoch  uint64                  `json:"epoch,omitempty"` // cluster epoch at snapshot time
	Meshes map[string]SnapshotMesh `json:"meshes"`
}

// Recovery is what Store.Recover reconstructed: the snapshot state,
// the log records appended after it (in order), and how many bytes of
// corrupt log tail were discarded.
type Recovery struct {
	Meshes    map[string]SnapshotMesh
	Records   []Record
	Truncated int
	// Epoch is the cluster epoch reconstructed from the snapshot and
	// any OpEpoch records in the replayed log — a torn epoch-bump at
	// the tail is truncated like any other record, recovering the
	// prior epoch with no sequence gap.
	Epoch uint64
}

// Store manages one data directory: the current snapshot generation
// and its append-only log. All methods are safe for concurrent use;
// Recover must be called once, before the first Append.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	recovered bool
	w         *os.File // current generation's log, opened for append
	gen       uint64
	seq       uint64
	epoch     uint64 // cluster epoch: max of snapshot epoch and replayed/appended OpEpoch records
	snapSeq   uint64 // last record folded into the current snapshot
	pending   int    // records appended since the last fsync
	walCount  int    // records in the current log generation
	lastSync  time.Time

	appends   *metrics.Counter
	fsyncs    *metrics.Counter
	snapshots *metrics.Counter
	replayed  *metrics.Counter
	truncated *metrics.Counter
	lag       *metrics.Gauge
	walGauge  *metrics.Gauge
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.json", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016d.log", gen) }

// Open prepares a store over dir, creating it if needed, and locates
// the newest valid snapshot generation. Call Recover next.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	m := opts.Metrics
	s := &Store{
		dir:       dir,
		opts:      opts,
		appends:   m.Counter("journal_appends_total"),
		fsyncs:    m.Counter("journal_fsyncs_total"),
		snapshots: m.Counter("journal_snapshots_total"),
		replayed:  m.Counter("journal_replayed_records_total"),
		truncated: m.Counter("journal_truncated_bytes_total"),
		lag:       m.Gauge("journal_unsynced_records"),
		walGauge:  m.Gauge("journal_wal_records"),
	}
	gens, err := s.generations()
	if err != nil {
		return nil, err
	}
	// Walk newest-first until a snapshot parses; generation 0 (no
	// snapshot, possibly a bare wal-0 log) is always valid.
	s.gen = 0
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i] == 0 {
			break
		}
		if _, err := s.loadSnapshot(gens[i]); err == nil {
			s.gen = gens[i]
			break
		}
	}
	return s, nil
}

// generations lists the snapshot/log generation numbers present in the
// dir, sorted ascending (0 is implied and always included).
func (s *Store) generations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	seen := map[uint64]bool{0: true}
	for _, e := range entries {
		name := e.Name()
		var numPart string
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json"):
			numPart = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json")
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			numPart = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		default:
			continue
		}
		if g, err := strconv.ParseUint(numPart, 10, 64); err == nil {
			seen[g] = true
		}
	}
	gens := make([]uint64, 0, len(seen))
	for g := range seen {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func (s *Store) loadSnapshot(gen uint64) (*snapshotFile, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName(gen)))
	if err != nil {
		return nil, err
	}
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("journal: snapshot %s: %w", snapName(gen), err)
	}
	return &sf, nil
}

// Recover loads the current generation's snapshot and replays its log,
// truncating any corrupt tail so subsequent appends extend a clean
// prefix, then opens the log for appending.
func (s *Store) Recover() (*Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recovered {
		return nil, fmt.Errorf("journal: Recover called twice")
	}
	rec := &Recovery{Meshes: map[string]SnapshotMesh{}}
	if s.gen > 0 {
		sf, err := s.loadSnapshot(s.gen)
		if err != nil {
			return nil, err
		}
		rec.Meshes = sf.Meshes
		if rec.Meshes == nil {
			rec.Meshes = map[string]SnapshotMesh{}
		}
		s.seq = sf.Seq
		s.snapSeq = sf.Seq
		s.epoch = sf.Epoch
	}

	walPath := filepath.Join(s.dir, walName(s.gen))
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	recs, valid := ReadFrames(data)
	rec.Records = recs
	rec.Truncated = len(data) - valid
	if rec.Truncated > 0 {
		if err := os.Truncate(walPath, int64(valid)); err != nil {
			return nil, fmt.Errorf("journal: truncate corrupt tail: %w", err)
		}
		s.truncated.Add(uint64(rec.Truncated))
	}
	for _, r := range recs {
		if r.Seq > s.seq {
			s.seq = r.Seq
		}
		if r.Op == OpEpoch && r.Epoch > s.epoch {
			s.epoch = r.Epoch
		}
	}
	rec.Epoch = s.epoch
	s.replayed.Add(uint64(len(recs)))
	s.walCount = len(recs)
	s.walGauge.Set(int64(s.walCount))

	w, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	s.w = w
	s.lastSync = time.Now()
	s.recovered = true
	return rec, nil
}

// Append assigns the record its sequence number, frames it, writes it
// to the log and applies the fsync policy. It returns the sequence
// number for observability.
func (s *Store) Append(r Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return 0, fmt.Errorf("journal: Append before Recover")
	}
	r.Seq = s.seq + 1
	return r.Seq, s.appendLocked(r)
}

// AppendExact appends a record preserving the sequence number it
// already carries — the replica path, where sequence numbers were
// assigned by the primary and local continuity with the replicated
// stream matters more than local density. The record's Seq must exceed
// the store's current seq (gaps are tolerated: a replica that failed
// one local append keeps following the stream).
func (s *Store) AppendExact(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return fmt.Errorf("journal: AppendExact before Recover")
	}
	if r.Seq <= s.seq {
		return fmt.Errorf("journal: AppendExact seq %d not beyond current %d", r.Seq, s.seq)
	}
	return s.appendLocked(r)
}

// appendLocked frames r (whose Seq is already final), writes it to the
// log and applies the fsync policy. Callers hold s.mu.
func (s *Store) appendLocked(r Record) error {
	frame, err := encodeFrame(nil, r)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	s.seq = r.Seq
	if r.Op == OpEpoch && r.Epoch > s.epoch {
		s.epoch = r.Epoch
	}
	s.pending++
	s.walCount++
	s.appends.Inc()
	s.walGauge.Set(int64(s.walCount))

	switch s.opts.Policy {
	case SyncAlways:
		if err := s.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(s.lastSync) >= s.opts.Interval {
			if err := s.syncLocked(); err != nil {
				return err
			}
		}
	}
	s.lag.Set(int64(s.pending))
	return nil
}

func (s *Store) syncLocked() error {
	if err := s.w.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	s.pending = 0
	s.lastSync = time.Now()
	s.fsyncs.Inc()
	s.lag.Set(0)
	return nil
}

// Sync flushes any unsynced records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return nil
	}
	return s.syncLocked()
}

// NeedsCompaction reports whether the current log generation has
// accumulated Options.CompactEvery records — the hint for the owner
// (who holds the full state) to call Compact.
func (s *Store) NeedsCompaction() bool {
	if s.opts.CompactEvery <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walCount >= s.opts.CompactEvery
}

// Compact folds the given full state into a new snapshot generation:
// the snapshot is written atomically (temp file, fsync, rename), the
// log rotates to empty, and the previous generation's files are
// removed. After Compact, recovery needs only the new snapshot.
func (s *Store) Compact(meshes map[string]SnapshotMesh) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return fmt.Errorf("journal: Compact before Recover")
	}
	return s.compactLocked(meshes, s.seq, s.epoch)
}

// InstallSnapshot replaces the store's contents with a full snapshot
// received from a primary: a new snapshot generation at the given
// sequence number and epoch, an empty log. Any local records — even
// ones beyond seq — are discarded; the primary's state is
// authoritative. This is also the path that truncates a demoted
// ex-primary's divergent un-acked suffix when it resubscribes.
func (s *Store) InstallSnapshot(meshes map[string]SnapshotMesh, seq, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return fmt.Errorf("journal: InstallSnapshot before Recover")
	}
	return s.compactLocked(meshes, seq, epoch)
}

// compactLocked writes a new snapshot generation carrying the given
// state, sequence number and epoch, and rotates the log. Callers hold
// s.mu.
func (s *Store) compactLocked(meshes map[string]SnapshotMesh, seq, epoch uint64) error {
	newGen := s.gen + 1
	sf := snapshotFile{Gen: newGen, Seq: seq, Epoch: epoch, Meshes: meshes}
	blob, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("journal: encode snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapName(newGen)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(newGen))); err != nil {
		return fmt.Errorf("journal: publish snapshot: %w", err)
	}
	s.syncDir()

	// Rotate the log. The old generation's files are garbage once the
	// new snapshot is durable; removal failures are non-fatal (the
	// next Open simply prefers the newest valid snapshot).
	w, err := os.OpenFile(filepath.Join(s.dir, walName(newGen)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate log: %w", err)
	}
	old, oldGen := s.w, s.gen
	s.w, s.gen = w, newGen
	s.seq, s.snapSeq = seq, seq
	s.epoch = epoch
	s.pending, s.walCount = 0, 0
	s.walGauge.Set(0)
	s.lag.Set(0)
	s.lastSync = time.Now()
	s.snapshots.Inc()
	if old != nil {
		old.Close()
	}
	os.Remove(filepath.Join(s.dir, walName(oldGen)))
	if oldGen > 0 {
		os.Remove(filepath.Join(s.dir, snapName(oldGen)))
	}
	return nil
}

// syncDir best-effort fsyncs the directory so renames and creates are
// durable; not all platforms support it, and a failure only widens the
// crash window rather than corrupting state.
func (s *Store) syncDir() {
	if df, err := os.Open(s.dir); err == nil {
		df.Sync()
		df.Close()
	}
}

// Close flushes and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Sync()
	if cerr := s.w.Close(); err == nil {
		err = cerr
	}
	s.w = nil
	return err
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Seq returns the last assigned record sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Epoch returns the cluster epoch as recovered from the snapshot and
// raised by appended/replayed OpEpoch records.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Pending returns how many appended records are not yet fsynced — the
// journal lag a crash right now would lose under SyncInterval/SyncNever.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// SnapSeq returns the sequence number of the last record folded into
// the current snapshot generation. Records with Seq <= SnapSeq are no
// longer individually readable — they exist only folded into state.
func (s *Store) SnapSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// ReadSince returns the records with Seq > since that are still
// present in the current log generation, in order. ok is false when
// since predates the current snapshot — compaction folded some of the
// requested records away, so the caller must fall back to shipping a
// full snapshot instead of an incremental tail.
func (s *Store) ReadSince(since uint64) (recs []Record, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered {
		return nil, false, fmt.Errorf("journal: ReadSince before Recover")
	}
	if since < s.snapSeq {
		return nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.dir, walName(s.gen)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, true, nil
		}
		return nil, false, fmt.Errorf("journal: %w", err)
	}
	all, _ := ReadFrames(data)
	for _, r := range all {
		if r.Seq > since {
			recs = append(recs, r)
		}
	}
	return recs, true, nil
}
