package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"extmesh"
)

// tearTail appends a plausible-looking but incomplete frame to the
// given generation's log, simulating a crash mid-append.
func tearTail(t *testing.T, dir string, gen uint64) int {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, walName(gen)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return len(torn)
}

// TestRecoverTornFrameAfterCompaction covers the crash window the
// single-generation tests miss: a compaction has already rotated to a
// new generation, records landed in the new log, and the final frame is
// torn. Recovery must keep the snapshot, replay the valid post-snapshot
// prefix, and truncate only the torn bytes.
func TestRecoverTornFrameAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	state := map[string]SnapshotMesh{
		"m": {Blob: json.RawMessage(`{"width":8,"height":8,"faults":[]}`), Version: 4},
	}
	if err := s.Compact(state); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: OpApply, Name: "m", Fail: []extmesh.Coord{{X: 2, Y: 3}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	torn := tearTail(t, dir, 1)

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if got := rec.Meshes["m"]; got.Version != 4 {
		t.Errorf("snapshot mesh version = %d, want 4", got.Version)
	}
	if len(rec.Records) != 1 || rec.Records[0].Op != OpApply {
		t.Fatalf("post-snapshot records = %+v, want the single apply", rec.Records)
	}
	if rec.Truncated != torn {
		t.Errorf("Truncated = %d, want %d", rec.Truncated, torn)
	}
	if want := uint64(len(sampleRecords()) + 1); s2.Seq() != want {
		t.Errorf("Seq = %d, want %d", s2.Seq(), want)
	}
	if want := uint64(len(sampleRecords())); s2.SnapSeq() != want {
		t.Errorf("SnapSeq = %d, want %d", s2.SnapSeq(), want)
	}
}

// TestRecoverStaleTmpSnapshot models a crash inside Compact before the
// rename published the new snapshot: a snap-N.tmp file lingers. The
// .tmp must be invisible to recovery (old generation wins) and a torn
// tail in the old log is still handled.
func TestRecoverStaleTmpSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// A fully-written but never-renamed snapshot at the would-be next gen.
	tmp := filepath.Join(dir, snapName(1)+".tmp")
	blob, _ := json.Marshal(snapshotFile{Gen: 1, Seq: 99, Meshes: nil})
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	torn := tearTail(t, dir, 0)

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if len(rec.Records) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(sampleRecords()))
	}
	if rec.Truncated != torn {
		t.Errorf("Truncated = %d, want %d", rec.Truncated, torn)
	}
	if s2.Seq() != uint64(len(sampleRecords())) {
		t.Errorf("Seq = %d, want %d (tmp snapshot must not contribute)", s2.Seq(), len(sampleRecords()))
	}
}

// TestRecoverSnapshotRenamedLogNotRotated models a crash between
// publishing snap-1 and creating wal-1: the new snapshot exists, the
// new log does not, and the old generation's files are still on disk.
// Recovery must prefer the new snapshot; the old log's records are
// already folded in, so none replay.
func TestRecoverSnapshotRenamedLogNotRotated(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Hand-publish the snapshot Compact would have written, leaving
	// wal-0 in place and wal-1 missing.
	state := map[string]SnapshotMesh{
		"m": {Blob: json.RawMessage(`{"width":8,"height":8,"faults":[{"x":1,"y":1}]}`), Version: 9},
	}
	blob, _ := json.Marshal(snapshotFile{Gen: 1, Seq: uint64(len(sampleRecords())), Meshes: state})
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, testOptions())
	if got := rec.Meshes["m"]; got.Version != 9 {
		t.Errorf("snapshot mesh version = %d, want 9", got.Version)
	}
	if len(rec.Records) != 0 {
		t.Errorf("replayed %d records from the pre-snapshot log, want 0", len(rec.Records))
	}
	if want := uint64(len(sampleRecords())); s2.Seq() != want || s2.SnapSeq() != want {
		t.Errorf("Seq/SnapSeq = %d/%d, want %d/%d", s2.Seq(), s2.SnapSeq(), want, want)
	}
	// Appends continue the sequence into the (new) wal-1.
	if _, err := s2.Append(Record{Op: OpDelete, Name: "m"}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, rec3 := mustOpen(t, dir, testOptions())
	if len(rec3.Records) != 1 || rec3.Records[0].Seq != uint64(len(sampleRecords())+1) {
		t.Errorf("post-crash append lost: records = %+v", rec3.Records)
	}
}

// TestRecoverBothGenerationsPresent models a crash after the new
// generation was fully written but before the old files were removed:
// recovery must pick the newest generation and ignore the stale one.
func TestRecoverBothGenerationsPresent(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(map[string]SnapshotMesh{
		"m": {Blob: json.RawMessage(`{"width":8,"height":8,"faults":[]}`), Version: 4},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Resurrect the old generation's log as if removal never happened.
	old, err := os.Create(filepath.Join(dir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := encodeFrame(nil, Record{Seq: 1, Op: OpDelete, Name: "stale"})
	old.Write(frame)
	old.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if got := rec.Meshes["m"]; got.Version != 4 {
		t.Errorf("snapshot mesh version = %d, want 4", got.Version)
	}
	if len(rec.Records) != 0 {
		t.Errorf("stale generation leaked %d records into recovery", len(rec.Records))
	}
}

// TestRecoverCorruptNewestSnapshotWalksBack corrupts the newest
// snapshot: Open must fall back to the previous valid generation (here
// generation 0's bare log) rather than fail or lose everything.
func TestRecoverCorruptNewestSnapshotWalksBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// A garbage snap-1 alongside the intact wal-0.
	if err := os.WriteFile(filepath.Join(dir, snapName(1)), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if len(rec.Records) != len(sampleRecords()) {
		t.Fatalf("recovered %d records via walk-back, want %d", len(rec.Records), len(sampleRecords()))
	}
}

// TestReadSince pins the incremental-tail contract the replication
// stream depends on.
func TestReadSince(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	defer s.Close()
	want := sampleRecords()
	for _, r := range want {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	recs, ok, err := s.ReadSince(0)
	if err != nil || !ok {
		t.Fatalf("ReadSince(0) ok=%v err=%v, want full tail", ok, err)
	}
	if len(recs) != len(want) {
		t.Fatalf("ReadSince(0) returned %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		exp := want[i]
		exp.Seq = uint64(i + 1)
		if !reflect.DeepEqual(r, exp) {
			t.Errorf("record %d = %+v, want %+v", i, r, exp)
		}
	}

	recs, ok, err = s.ReadSince(2)
	if err != nil || !ok || len(recs) != len(want)-2 || recs[0].Seq != 3 {
		t.Fatalf("ReadSince(2) = %d records ok=%v err=%v, want %d starting at seq 3",
			len(recs), ok, err, len(want)-2)
	}

	// Caught-up follower: empty tail, still ok.
	recs, ok, err = s.ReadSince(s.Seq())
	if err != nil || !ok || len(recs) != 0 {
		t.Fatalf("ReadSince(head) = %d records ok=%v err=%v, want empty ok", len(recs), ok, err)
	}

	// Compaction folds records 1..4 away; a follower behind the
	// snapshot cannot be served incrementally.
	if err := s.Compact(map[string]SnapshotMesh{}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.ReadSince(2); err != nil || ok {
		t.Fatalf("ReadSince(2) after compaction ok=%v err=%v, want ok=false", ok, err)
	}
	// At or past the snapshot boundary, incremental service resumes.
	if _, err := s.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	recs, ok, err = s.ReadSince(s.SnapSeq())
	if err != nil || !ok || len(recs) != 1 || recs[0].Seq != s.Seq() {
		t.Fatalf("ReadSince(snapSeq) = %+v ok=%v err=%v, want the one post-snapshot record", recs, ok, err)
	}
}

// TestAppendExact pins the replica-side append path: primary-assigned
// sequence numbers are preserved (including gaps), regressions are
// rejected, and recovery sees the exact stream.
func TestAppendExact(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	if err := s.AppendExact(Record{Seq: 3, Op: OpDelete, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendExact(Record{Seq: 7, Op: OpDelete, Name: "b"}); err != nil {
		t.Fatalf("gap-tolerant append rejected: %v", err)
	}
	if err := s.AppendExact(Record{Seq: 7, Op: OpDelete, Name: "dup"}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	if err := s.AppendExact(Record{Seq: 2, Op: OpDelete, Name: "old"}); err == nil {
		t.Fatal("regressing seq accepted")
	}
	if s.Seq() != 7 {
		t.Errorf("Seq = %d, want 7", s.Seq())
	}
	// Plain Append continues from the exact high-water mark.
	seq, err := s.Append(Record{Op: OpDelete, Name: "c"})
	if err != nil || seq != 8 {
		t.Fatalf("Append after AppendExact = seq %d err %v, want 8", seq, err)
	}
	s.Close()

	_, rec := mustOpen(t, dir, testOptions())
	gotSeqs := make([]uint64, 0, len(rec.Records))
	for _, r := range rec.Records {
		gotSeqs = append(gotSeqs, r.Seq)
	}
	if !reflect.DeepEqual(gotSeqs, []uint64{3, 7, 8}) {
		t.Errorf("recovered seqs = %v, want [3 7 8]", gotSeqs)
	}
}

// TestInstallSnapshot pins the full-resync path: a replica's local
// state — even one ahead of the incoming snapshot — is replaced
// wholesale, and recovery starts from the installed state.
func TestInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	for _, r := range sampleRecords() {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	state := map[string]SnapshotMesh{
		"fresh": {Blob: json.RawMessage(`{"width":4,"height":4,"faults":[]}`), Version: 2},
	}
	// Install at a seq below the local head: authoritative rewind. The
	// primary's epoch rides along and must survive recovery.
	if err := s.InstallSnapshot(state, 2, 5); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != 2 || s.SnapSeq() != 2 {
		t.Errorf("Seq/SnapSeq = %d/%d after install, want 2/2", s.Seq(), s.SnapSeq())
	}
	if s.Epoch() != 5 {
		t.Errorf("Epoch = %d after install, want 5", s.Epoch())
	}
	// The stream continues with primary seqs after the snapshot point.
	if err := s.AppendExact(Record{Seq: 3, Op: OpDelete, Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if len(rec.Meshes) != 1 || rec.Meshes["fresh"].Version != 2 {
		t.Errorf("recovered meshes = %+v, want only the installed state", rec.Meshes)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 3 {
		t.Errorf("recovered records = %+v, want the single seq-3 record", rec.Records)
	}
	if s2.Seq() != 3 {
		t.Errorf("Seq = %d, want 3", s2.Seq())
	}
	if s2.Epoch() != 5 {
		t.Errorf("Epoch = %d after reopen, want 5", s2.Epoch())
	}
}

// TestRecoverTornEpochBumpTail pins the failover crash window: a node
// crashes mid-append of the epoch-bump record itself. The torn frame
// must be truncated like any other, recovering the prior epoch with no
// sequence gap — the next append reuses the seq the torn bump would
// have taken, so the replicated stream stays dense.
func TestRecoverTornEpochBumpTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	if _, err := s.Append(Record{Op: OpEpoch, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Record{Op: OpDelete, Name: "m"}); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("Epoch = %d after bump, want 1", s.Epoch())
	}
	// Write a complete epoch-bump frame for epoch 2, then tear it by
	// chopping bytes off the end — the crash landed mid-write.
	frame, err := encodeFrame(nil, Record{Seq: 3, Op: OpEpoch, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, walName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := frame[:len(frame)-3]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if rec.Epoch != 1 || s2.Epoch() != 1 {
		t.Errorf("recovered epoch = %d/%d, want the prior epoch 1", rec.Epoch, s2.Epoch())
	}
	if rec.Truncated != len(torn) {
		t.Errorf("Truncated = %d, want %d", rec.Truncated, len(torn))
	}
	if s2.Seq() != 2 {
		t.Errorf("Seq = %d, want 2 (torn bump must not advance the head)", s2.Seq())
	}
	// No sequence gap: the next append takes the seq the torn bump
	// would have occupied.
	seq, err := s2.Append(Record{Op: OpEpoch, Epoch: 2})
	if err != nil || seq != 3 {
		t.Fatalf("re-append after torn bump = seq %d err %v, want 3", seq, err)
	}
	if s2.Epoch() != 2 {
		t.Errorf("Epoch = %d after re-bump, want 2", s2.Epoch())
	}
}

// TestEpochSurvivesCompaction pins that compaction folds the current
// epoch into the snapshot so a recovery that never replays the OpEpoch
// record still lands on the right epoch.
func TestEpochSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOptions())
	if _, err := s.Append(Record{Op: OpEpoch, Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(map[string]SnapshotMesh{}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec := mustOpen(t, dir, testOptions())
	defer s2.Close()
	if rec.Epoch != 7 || s2.Epoch() != 7 {
		t.Errorf("epoch after compaction+reopen = %d/%d, want 7", rec.Epoch, s2.Epoch())
	}
	if len(rec.Records) != 0 {
		t.Errorf("replayed %d records, want 0 (bump folded into snapshot)", len(rec.Records))
	}
}
