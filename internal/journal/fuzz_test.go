package journal

import (
	"encoding/json"
	"reflect"
	"testing"

	"extmesh"
)

// fuzzSeedFrames builds the well-formed seed stream: an interleaved
// snapshot-style put, apply batches, and an events record — the shapes
// replay actually sees.
func fuzzSeedFrames(t testing.TB) []byte {
	var data []byte
	var err error
	for i, r := range []Record{
		{Seq: 1, Op: OpPut, Name: "m", Blob: json.RawMessage(`{"width":8,"height":8,"faults":[]}`)},
		{Seq: 2, Op: OpApply, Name: "m", Fail: []extmesh.Coord{{X: 1, Y: 1}}},
		{Seq: 3, Op: OpPut, Name: "n", Blob: json.RawMessage(`{"width":4,"height":4,"faults":[{"x":0,"y":0}]}`), Version: 5},
		{Seq: 4, Op: OpEvents, Name: "m", Events: []FaultEvent{{Op: "fail", Node: extmesh.Coord{X: 2, Y: 2}}}},
		{Seq: 5, Op: OpDelete, Name: "n"},
	} {
		data, err = encodeFrame(data, r)
		if err != nil {
			t.Fatalf("seed frame %d: %v", i, err)
		}
	}
	return data
}

// FuzzJournalReplay throws arbitrary bytes at the frame decoder. The
// replay path must never panic, must only ever accept a prefix of the
// input, and every accepted record must survive a re-encode/re-decode
// round trip (CRC-validated frames are canonical).
func FuzzJournalReplay(f *testing.F) {
	full := fuzzSeedFrames(f)
	f.Add(full)
	// Truncated tail: a frame cut mid-payload, the crash-mid-append shape.
	f.Add(full[:len(full)-7])
	f.Add(full[:frameHeader+3])
	// Bit-flipped CRC byte and bit-flipped payload byte.
	flipped := append([]byte(nil), full...)
	flipped[4] ^= 0x01
	f.Add(flipped)
	flipped2 := append([]byte(nil), full...)
	flipped2[frameHeader+2] ^= 0x80
	f.Add(flipped2)
	// Valid prefix followed by garbage, and pure garbage.
	f.Add(append(append([]byte(nil), full[:len(full)/2]...), 0xff, 0xfe, 0xfd))
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})
	// Absurd length field: header claiming a frame far past the cap.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := ReadFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d outside [0,%d]", valid, len(data))
		}
		// The accepted prefix must re-read to the same records: framing
		// is self-delimiting, so re-decoding the valid bytes cannot
		// change the answer.
		again, validAgain := ReadFrames(data[:valid])
		if validAgain != valid || !reflect.DeepEqual(recs, again) {
			t.Fatalf("replay of the valid prefix diverged: %d/%d records, %d/%d bytes",
				len(again), len(recs), validAgain, valid)
		}
		// And re-encoding the records yields a stream that decodes to
		// the same records (possibly different bytes: JSON field order
		// is canonical but the original frames may hold extra fields).
		var reenc []byte
		var err error
		for _, r := range recs {
			if reenc, err = encodeFrame(reenc, r); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		recs2, valid2 := ReadFrames(reenc)
		if valid2 != len(reenc) {
			t.Fatalf("re-encoded stream has corrupt tail: %d of %d bytes valid", valid2, len(reenc))
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("re-encoded records diverged")
		}
	})
}
