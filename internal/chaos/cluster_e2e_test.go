package chaos_test

import (
	"bytes"
	"context"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/chaos"
	"extmesh/internal/journal"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
	"extmesh/meshclient"
)

// clusterNode is one journaled meshserved instance under test: server,
// its journal store (kept so tests can close/reopen it for kill/restart
// cycles), its metrics registry, and an HTTP frontend.
type clusterNode struct {
	s     *serve.Server
	store *journal.Store
	reg   *metrics.Registry
	http  *httptest.Server
}

// newClusterNode boots a recovered node over dir. The caller owns the
// store (no t.Cleanup): kill/restart tests close and reopen it.
func newClusterNode(t *testing.T, dir string, compactEvery int) *clusterNode {
	t.Helper()
	reg := metrics.NewRegistry()
	store, err := journal.Open(dir, journal.Options{
		Policy:       journal.SyncNever,
		CompactEvery: compactEvery,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{Journal: store, Metrics: reg})
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	n := &clusterNode{s: s, store: store, reg: reg}
	n.http = httptest.NewServer(s.Handler())
	return n
}

func (n *clusterNode) close() {
	n.http.Close()
	n.store.Close()
}

// followPrimary attaches node as a read-only replica of source and runs
// it until the returned cancel fires.
func followPrimary(t *testing.T, n *clusterNode, source string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	rep := serve.NewReplica(n.s, serve.ReplicaOptions{Source: source, Retry: 20 * time.Millisecond})
	done := make(chan struct{})
	go func() { defer close(done); rep.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return cancel
}

// servePrimary runs a replication listener for n, returning its address
// and a stop function that fully tears it down (so the test can kill
// and later restart the primary on the same address).
func servePrimary(t *testing.T, n *clusterNode, addr string) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		n.s.ServeReplication(ctx, l)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			l.Close()
			<-done
		})
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

func clusterMeshClient(t *testing.T, url string) *meshclient.Client {
	t.Helper()
	c, err := meshclient.New(meshclient.Options{
		BaseURL:          url,
		MaxRetries:       8,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// clusterQuerySet is the fixed query battery every convergence check
// answers on every node.
var clusterQuerySet = [][2]extmesh.Coord{
	{{X: 0, Y: 0}, {X: 15, Y: 15}},
	{{X: 15, Y: 0}, {X: 0, Y: 15}},
	{{X: 0, Y: 7}, {X: 15, Y: 8}},
	{{X: 7, Y: 0}, {X: 8, Y: 15}},
	{{X: 2, Y: 13}, {X: 13, Y: 2}},
}

// assertBitIdentical requires every node to export byte-identical
// registry state AND give identical answers over the fixed query set.
func assertBitIdentical(t *testing.T, nodes ...*serve.Server) {
	t.Helper()
	base, err := nodes[0].ExportState()
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes[1:] {
		st, err := n.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, st) {
			t.Fatalf("node %d state diverged:\n base=%s\n node=%s", i+1, base, st)
		}
	}
	for _, name := range nodes[0].Meshes().Names() {
		var wantPaths []extmesh.Path
		var wantErrs []bool
		for ni, node := range nodes {
			d := node.Meshes().Get(name)
			if d == nil {
				t.Fatalf("node %d missing mesh %q", ni, name)
			}
			net, err := d.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range clusterQuerySet {
				p, rerr := net.Route(q[0], q[1], extmesh.Blocks)
				if ni == 0 {
					wantPaths = append(wantPaths, p)
					wantErrs = append(wantErrs, rerr != nil)
					continue
				}
				if (rerr != nil) != wantErrs[qi] {
					t.Fatalf("mesh %q query %d: node %d error %v, node 0 error %v", name, qi, ni, rerr, wantErrs[qi])
				}
				if len(p) != len(wantPaths[qi]) {
					t.Fatalf("mesh %q query %d: node %d path %v, node 0 path %v", name, qi, ni, p, wantPaths[qi])
				}
				for k := range p {
					if p[k] != wantPaths[qi][k] {
						t.Fatalf("mesh %q query %d: node %d path %v, node 0 path %v", name, qi, ni, p, wantPaths[qi])
					}
				}
			}
		}
	}
}

func waitConverged(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterPrimaryKillMidStreamConvergence is the headline chaos
// test: a primary streaming to two replicas is killed mid-stream (no
// checkpoint, listeners cut, journal closed), restarted from its own
// journal, and mutated further. All three nodes must converge to
// byte-identical registry state and identical route answers.
func TestClusterPrimaryKillMidStreamConvergence(t *testing.T) {
	pDir := t.TempDir()
	primary := newClusterNode(t, pDir, -1)
	repAddr, stopPrimary := servePrimary(t, primary, "127.0.0.1:0")

	// r1 streams live; r2 goes through a partitionable proxy so the test
	// can guarantee it is genuinely mid-stream — cut off and behind —
	// when the primary dies.
	r1 := newClusterNode(t, t.TempDir(), -1)
	r2 := newClusterNode(t, t.TempDir(), -1)
	defer r1.close()
	defer r2.close()
	followPrimary(t, r1, repAddr)
	proxy, err := chaos.NewFrameProxy(repAddr, chaos.FramePlan{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	followPrimary(t, r2, proxy.Addr())

	ctx := context.Background()
	client := clusterMeshClient(t, primary.http.URL)
	if _, err := client.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "pre-burst catch-up", 5*time.Second, func() bool {
		return r2.s.JournalSeq() == primary.s.JournalSeq()
	})
	proxy.Partition(true)
	// A burst of mutations, then an immediate kill: r2 is cut off and
	// behind, r1 may be anywhere in the catch-up.
	for i := 0; i < 20; i++ {
		f := extmesh.Coord{X: 1 + i%14, Y: 1 + 2*(i/14)}
		if _, err := client.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{f}}); err != nil {
			t.Fatal(err)
		}
	}
	killedAt := primary.s.JournalSeq()
	primary.http.Close()
	stopPrimary()
	primary.store.Close()
	if r2.s.JournalSeq() >= killedAt {
		t.Fatalf("test setup: r2 at seq %d was not behind the kill point %d", r2.s.JournalSeq(), killedAt)
	}
	t.Logf("primary killed at seq %d (replicas at %d and %d)", killedAt, r1.s.JournalSeq(), r2.s.JournalSeq())
	proxy.Partition(false)

	// Restart the primary from its journal on the same address. The
	// replicas' reconnect loops have been dialing it the whole time.
	restarted := newClusterNode(t, pDir, -1)
	defer restarted.close()
	if restarted.s.JournalSeq() != killedAt {
		t.Fatalf("restart recovered seq %d, want %d — the journal lost acknowledged records", restarted.s.JournalSeq(), killedAt)
	}
	servePrimary(t, restarted, repAddr)

	// More mutations after the restart prove the stream keeps flowing.
	client2 := clusterMeshClient(t, restarted.http.URL)
	for i := 0; i < 5; i++ {
		f := extmesh.Coord{X: 1 + i, Y: 9}
		if _, err := client2.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{f}}); err != nil {
			t.Fatal(err)
		}
	}

	head := restarted.s.JournalSeq()
	waitConverged(t, "replicas to converge past the kill", 10*time.Second, func() bool {
		return r1.s.JournalSeq() == head && r2.s.JournalSeq() == head
	})
	assertBitIdentical(t, restarted.s, r1.s, r2.s)
}

// TestClusterPartitionCompactionResync partitions a replica, compacts
// the primary past the replica's offset while it is cut off, then heals
// the partition: incremental resume is impossible, so the replica must
// take the full-snapshot path and still converge bit-identically.
func TestClusterPartitionCompactionResync(t *testing.T) {
	primary := newClusterNode(t, t.TempDir(), 4)
	defer primary.close()
	repAddr, _ := servePrimary(t, primary, "127.0.0.1:0")

	proxy, err := chaos.NewFrameProxy(repAddr, chaos.FramePlan{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	replica := newClusterNode(t, t.TempDir(), -1)
	defer replica.close()
	followPrimary(t, replica, proxy.Addr())

	ctx := context.Background()
	client := clusterMeshClient(t, primary.http.URL)
	if _, err := client.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "initial catch-up", 5*time.Second, func() bool {
		return replica.s.JournalSeq() == primary.s.JournalSeq()
	})
	partitionSeq := replica.s.JournalSeq()

	proxy.Partition(true)
	for i := 0; i < 9; i++ {
		f := extmesh.Coord{X: 1 + i, Y: 5}
		if _, err := client.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{f}}); err != nil {
			t.Fatal(err)
		}
	}
	if primary.store.SnapSeq() <= partitionSeq {
		t.Fatalf("test setup: primary snapshot horizon %d has not passed the replica offset %d", primary.store.SnapSeq(), partitionSeq)
	}
	waitConverged(t, "partition to refuse dials", 5*time.Second, func() bool {
		return proxy.Refusals() > 0
	})
	proxy.Partition(false)

	waitConverged(t, "post-partition resync", 10*time.Second, func() bool {
		return replica.s.JournalSeq() == primary.s.JournalSeq()
	})
	assertBitIdentical(t, primary.s, replica.s)
	if resyncs := replica.reg.Counter("replication_resyncs_total").Value(); resyncs == 0 {
		t.Fatal("replica converged without a snapshot resync — compaction should have forced one")
	}
}

// TestClusterStreamChaosConvergence pushes the replication stream
// through a frame proxy that tears frames mid-body, duplicates them,
// and flips bits — the replica must reject every damaged frame,
// reconnect, resume, and converge bit-identically anyway.
func TestClusterStreamChaosConvergence(t *testing.T) {
	primary := newClusterNode(t, t.TempDir(), -1)
	defer primary.close()
	repAddr, _ := servePrimary(t, primary, "127.0.0.1:0")

	proxy, err := chaos.NewFrameProxy(repAddr, chaos.FramePlan{
		TearEvery:      4,
		DuplicateEvery: 3,
		CorruptEvery:   5,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	replica := newClusterNode(t, t.TempDir(), -1)
	defer replica.close()
	followPrimary(t, replica, proxy.Addr())

	ctx := context.Background()
	client := clusterMeshClient(t, primary.http.URL)
	if _, err := client.CreateMesh(ctx, "m", 16, 16, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		f := extmesh.Coord{X: 1 + i%14, Y: 1 + 2*(i/14)}
		if _, err := client.ApplyFaults(ctx, "m", meshclient.FaultsRequest{Fail: []extmesh.Coord{f}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	waitConverged(t, "convergence through stream chaos", 30*time.Second, func() bool {
		return replica.s.JournalSeq() == primary.s.JournalSeq()
	})
	assertBitIdentical(t, primary.s, replica.s)
	if proxy.Tears() == 0 || proxy.Duplicates() == 0 || proxy.Corruptions() == 0 {
		t.Fatalf("chaos injected nothing (tears=%d dups=%d corrupts=%d) — the test proved nothing",
			proxy.Tears(), proxy.Duplicates(), proxy.Corruptions())
	}
	t.Logf("converged through %d tears, %d duplicates, %d corruptions",
		proxy.Tears(), proxy.Duplicates(), proxy.Corruptions())
}

// TestClusterClientZeroWrongAnswersAcrossReplicaKill drives a
// meshstress-style read load through the cluster client while one
// replica is killed mid-run. Errors and retries are tolerated; a wrong
// answer — stale or diverged — is not.
func TestClusterClientZeroWrongAnswersAcrossReplicaKill(t *testing.T) {
	primary := newClusterNode(t, t.TempDir(), -1)
	defer primary.close()
	repAddr, _ := servePrimary(t, primary, "127.0.0.1:0")

	r1 := newClusterNode(t, t.TempDir(), -1)
	r2 := newClusterNode(t, t.TempDir(), -1)
	defer r1.close()
	defer r2.close()
	followPrimary(t, r1, repAddr)
	followPrimary(t, r2, repAddr)

	ctx := context.Background()
	setup := clusterMeshClient(t, primary.http.URL)
	faults := []extmesh.Coord{{X: 3, Y: 3}, {X: 4, Y: 3}, {X: 3, Y: 4}, {X: 10, Y: 10}, {X: 11, Y: 10}}
	if _, err := setup.CreateMesh(ctx, "m", 16, 16, faults); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, "replicas to catch up before the run", 5*time.Second, func() bool {
		head := primary.s.JournalSeq()
		return r1.s.JournalSeq() == head && r2.s.JournalSeq() == head
	})

	// Oracle answers from the primary's own registry.
	n, err := primary.s.Meshes().Get("m").Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantHops := make([]int, len(clusterQuerySet))
	for i, q := range clusterQuerySet {
		p, err := n.Route(q[0], q[1], extmesh.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		wantHops[i] = len(p) - 1
	}

	cluster, err := meshclient.NewCluster(meshclient.ClusterOptions{
		Primary:  primary.http.URL,
		Replicas: []string{r1.http.URL, r2.http.URL},
		Node: meshclient.Options{
			MaxRetries:       4,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       5 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 120
	var wrong, errored, okAfterKill atomic.Uint64
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qi := (w + i) % len(clusterQuerySet)
				q := clusterQuerySet[qi]
				rr, err := cluster.Route(ctx, "m", meshclient.Query{Src: q[0], Dst: q[1]})
				if err != nil {
					errored.Add(1) // allowed: the kill window is violent
					continue
				}
				if rr.Hops != wantHops[qi] {
					wrong.Add(1)
					t.Errorf("worker %d query %d: hops %d, want %d", w, qi, rr.Hops, wantHops[qi])
				}
				select {
				case <-killed:
					okAfterKill.Add(1)
				default:
				}
			}
		}(w)
	}
	// Kill replica 1 mid-run: hard-close its client connections and
	// its listener.
	time.Sleep(20 * time.Millisecond)
	r1.http.CloseClientConnections()
	r1.http.Close()
	close(killed)
	wg.Wait()

	if wrong.Load() != 0 {
		t.Fatalf("%d wrong answers through the kill", wrong.Load())
	}
	if okAfterKill.Load() == 0 {
		t.Fatal("no successful reads after the replica kill — the run proved nothing")
	}
	counts := cluster.Counts()
	if counts.Failovers == 0 && counts.BreakerSkips == 0 {
		t.Fatalf("kill never triggered failover or breaker skip: %+v", counts)
	}
	t.Logf("run: %d errors, %d ok after kill, cluster counts %+v", errored.Load(), okAfterKill.Load(), counts)
}
