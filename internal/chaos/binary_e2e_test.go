package chaos_test

import (
	"context"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
	"extmesh/meshclient"
)

// flakyProxy is the binary transport's chaos vector: a TCP relay that
// kills each connection after a seeded-random byte budget, simulating
// mid-stream resets and half-written frames. The HTTP chaos transport
// cannot cover this surface — the binary protocol lives below HTTP.
type flakyProxy struct {
	l       net.Listener
	backend string

	mu  sync.Mutex
	rng *rand.Rand

	kills atomic.Uint64
	wg    sync.WaitGroup
}

func newFlakyProxy(t *testing.T, backend string, seed int64) *flakyProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{l: l, backend: backend, rng: rand.New(rand.NewSource(seed))}
	go p.accept()
	t.Cleanup(func() {
		l.Close()
		p.wg.Wait()
	})
	return p
}

func (p *flakyProxy) addr() string { return p.l.Addr().String() }

func (p *flakyProxy) budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return 64 + p.rng.Int63n(2048)
}

func (p *flakyProxy) accept() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(client)
		}()
	}
}

// relay shuttles bytes between client and backend until the drawn
// budget is spent, then cuts both sides mid-stream.
func (p *flakyProxy) relay(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()

	var moved atomic.Int64
	budget := p.budget()
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		buf := make([]byte, 512)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if moved.Add(int64(n)) > budget {
					p.kills.Add(1)
					break
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		// Cut both directions so the victim sees a hard reset, not a
		// half-open connection.
		client.Close()
		server.Close()
		done <- struct{}{}
	}
	go pipe(server, client)
	pipe(client, server)
	<-done
}

// TestBinaryQueriesThroughChaosBitIdentical drives the binary client
// through a connection-killing proxy and asserts every answer equals
// the direct-library result: reconnect-plus-replay must make the chaos
// invisible, because every binary op is an idempotent query.
func TestBinaryQueriesThroughChaosBitIdentical(t *testing.T) {
	s := serve.New(serve.Options{Metrics: metrics.NewRegistry()})
	faults := []extmesh.Coord{{X: 3, Y: 3}, {X: 4, Y: 3}, {X: 3, Y: 4}, {X: 10, Y: 10}, {X: 11, Y: 10}}
	d, err := extmesh.NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		if err := d.AddFault(f); err != nil {
			t.Fatal(err)
		}
	}
	s.Meshes().Put("m", d)
	n, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ServeBinary(ctx, bl, time.Second) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("ServeBinary: %v", err)
		}
	})

	proxy := newFlakyProxy(t, bl.Addr().String(), 1729)
	bc, err := meshclient.NewBinary(meshclient.BinaryOptions{
		Addr:        proxy.addr(),
		MaxRetries:  64, // the proxy kills aggressively; queries replay freely
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	qctx := context.Background()

	for i := 0; i < 24; i++ {
		src := extmesh.Coord{X: (i * 5) % 16, Y: (i * 3) % 16}
		dst := extmesh.Coord{X: (i*7 + 2) % 16, Y: (i*11 + 5) % 16}
		q := meshclient.Query{Src: src, Dst: dst}

		gotRoute, rerr := bc.Route(qctx, "m", q)
		wantPath, werr := n.Route(src, dst, extmesh.Blocks)
		if (rerr == nil) != (werr == nil) {
			t.Fatalf("pair %d %v->%v: route errors diverge: client=%v lib=%v", i, src, dst, rerr, werr)
		}
		if werr == nil && (!reflect.DeepEqual(gotRoute.Path, wantPath) || gotRoute.Hops != len(wantPath)-1) {
			t.Fatalf("pair %d: route through chaos = %v (hops %d), want %v", i, gotRoute.Path, gotRoute.Hops, wantPath)
		}

		gotSafe, err := bc.Safe(qctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: Safe failed through chaos: %v", i, err)
		}
		if want := n.Safe(src, dst, extmesh.Blocks); gotSafe != want {
			t.Fatalf("pair %d: Safe = %v, want %v", i, gotSafe, want)
		}

		gotExists, err := bc.HasMinimalPath(qctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: HasMinimalPath failed: %v", i, err)
		}
		if want := n.HasMinimalPath(src, dst); gotExists != want {
			t.Fatalf("pair %d: HasMinimalPath = %v, want %v", i, gotExists, want)
		}

		gotEns, err := bc.Ensure(qctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: Ensure failed: %v", i, err)
		}
		wantEns := n.Ensure(src, dst, extmesh.Blocks, extmesh.DefaultStrategy())
		if gotEns.Verdict != wantEns.Verdict.String() || len(gotEns.Via) != len(wantEns.Via()) {
			t.Fatalf("pair %d: Ensure = %+v, want %v via %v", i, gotEns, wantEns.Verdict, wantEns.Via())
		}
	}

	// Batches through the same noise.
	src := extmesh.Coord{X: 0, Y: 0}
	dests := []extmesh.Coord{{X: 15, Y: 15}, {X: 3, Y: 3}, {X: 8, Y: 1}, {X: 1, Y: 8}}
	gotHB, err := bc.HasMinimalPathBatch(qctx, "m", src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if want := n.HasMinimalPathAll(src, dests); !reflect.DeepEqual(gotHB, want) {
		t.Fatalf("HasMinimalPathBatch = %v, want %v", gotHB, want)
	}
	var pairs []meshclient.Pair
	for _, c := range dests {
		pairs = append(pairs, meshclient.Pair{Src: src, Dst: c})
	}
	gotRB, err := bc.RouteBatch(qctx, "m", pairs, "blocks", false)
	if err != nil {
		t.Fatal(err)
	}
	libRB := n.RouteMany([]extmesh.Pair{
		{Src: src, Dst: dests[0]}, {Src: src, Dst: dests[1]},
		{Src: src, Dst: dests[2]}, {Src: src, Dst: dests[3]},
	}, extmesh.Blocks)
	for i := range libRB {
		if (gotRB[i].Error != "") != (libRB[i].Err != nil) {
			t.Fatalf("batch pair %d: error presence diverges", i)
		}
		if libRB[i].Err == nil && !reflect.DeepEqual(extmesh.Path(gotRB[i].Path), libRB[i].Path) {
			t.Fatalf("batch pair %d: path %v, want %v", i, gotRB[i].Path, libRB[i].Path)
		}
	}

	if proxy.kills.Load() == 0 {
		t.Fatal("proxy killed nothing — the test proved nothing")
	}
	t.Logf("chaos: %d connections killed mid-stream", proxy.kills.Load())
}
