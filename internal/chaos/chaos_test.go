package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, data, err
}

func TestZeroPlanIsTransparent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("payload"))
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{})
	client := &http.Client{Transport: tr}
	for i := 0; i < 50; i++ {
		resp, body, err := get(t, client, ts.URL)
		if err != nil || resp.StatusCode != 200 || string(body) != "payload" {
			t.Fatalf("zero plan altered exchange: %v %v %q", err, resp, body)
		}
	}
	if c := tr.Counts(); c.Total() != 0 || c.Requests != 50 {
		t.Fatalf("zero plan counts = %+v", c)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	run := func(seed int64) []string {
		tr := NewTransport(nil, Plan{Seed: seed, DropRequest: 0.3, Spurious500: 0.2, Spurious429: 0.2})
		client := &http.Client{Transport: tr}
		var outcomes []string
		for i := 0; i < 40; i++ {
			resp, _, err := get(t, client, ts.URL)
			switch {
			case err != nil:
				outcomes = append(outcomes, "drop")
			case resp.StatusCode == 429:
				outcomes = append(outcomes, "429")
			case resp.StatusCode == 500:
				outcomes = append(outcomes, "500")
			default:
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}

	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at request %d: %s vs %s", i, a[i], b[i])
		}
	}
	if strings.Join(a, ",") == strings.Join(run(43), ",") {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
	// The schedule actually injects something at these rates.
	joined := strings.Join(a, ",")
	if !strings.Contains(joined, "drop") || !strings.Contains(joined, "429") || !strings.Contains(joined, "500") {
		t.Errorf("schedule missing fault kinds: %s", joined)
	}
}

func TestDropRequest(t *testing.T) {
	var reached atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{Seed: 1, DropRequest: 1})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("DropRequest=1 delivered the request")
	}
	if reached.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	if tr.Counts().Dropped != 1 {
		t.Fatalf("counts = %+v", tr.Counts())
	}
}

func TestSpurious429NeverReachesServer(t *testing.T) {
	var reached atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(nil, Plan{Seed: 1, Spurious429: 1})}
	resp, _, err := get(t, client, ts.URL)
	if err != nil || resp.StatusCode != 429 {
		t.Fatalf("want synthesized 429, got %v %v", resp, err)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	if reached.Load() != 0 {
		t.Error("synthesized shed still reached the server")
	}
}

func TestSpurious500ReachesServerFirst(t *testing.T) {
	var reached atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		w.Write([]byte("real answer"))
	}))
	defer ts.Close()
	client := &http.Client{Transport: NewTransport(nil, Plan{Seed: 1, Spurious500: 1})}
	resp, body, err := get(t, client, ts.URL)
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("want synthesized 500, got %v %v", resp, err)
	}
	if strings.Contains(string(body), "real answer") {
		t.Error("synthesized 500 leaked the real body")
	}
	if reached.Load() != 1 {
		t.Errorf("server reached %d times, want 1 (500 models a lost response)", reached.Load())
	}
}

func TestResetBodyCutsMidStream(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{Seed: 1, ResetBody: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("mid-body reset produced a clean read")
	}
	if len(data) >= len(payload) {
		t.Fatalf("read %d bytes of %d despite reset", len(data), len(payload))
	}
	if tr.Counts().BodyResets != 1 {
		t.Fatalf("counts = %+v", tr.Counts())
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	var reached atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		reached.Add(1)
		w.Write(body) // echo, so we can check the caller sees a real answer
	}))
	defer ts.Close()
	tr := NewTransport(nil, Plan{Seed: 1, Duplicate: 1})
	client := &http.Client{Transport: tr}
	resp, err := client.Post(ts.URL, "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("echo = %q, want %q", body, "hello")
	}
	if reached.Load() != 2 {
		t.Fatalf("server reached %d times, want 2", reached.Load())
	}
	if tr.Counts().Duplicates != 1 {
		t.Fatalf("counts = %+v", tr.Counts())
	}
}

func TestProxyInjectsFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	proxy, tr, err := NewProxy(ts.URL, Plan{Seed: 5, DropRequest: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ps := httptest.NewServer(proxy)
	defer ps.Close()

	var drops, oks int
	for i := 0; i < 40; i++ {
		resp, _, err := get(t, http.DefaultClient, ps.URL)
		if err != nil {
			t.Fatal(err) // proxy converts drops to 502, never transport errors
		}
		switch resp.StatusCode {
		case http.StatusBadGateway:
			drops++
		case http.StatusOK:
			oks++
		}
	}
	if drops == 0 || oks == 0 {
		t.Fatalf("drops=%d oks=%d, want both nonzero", drops, oks)
	}
	if tr.Counts().Dropped == 0 {
		t.Fatalf("transport counts = %+v", tr.Counts())
	}
}
