package chaos_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"extmesh"
	"extmesh/internal/chaos"
	"extmesh/internal/metrics"
	"extmesh/internal/serve"
	"extmesh/meshclient"
)

// chaosClient assembles a meshclient over a fault-injecting transport:
// generous retries, tiny backoffs, breaker off — resilience without
// slow tests.
func chaosClient(t *testing.T, url string, plan chaos.Plan) (*meshclient.Client, *chaos.Transport) {
	t.Helper()
	tr := chaos.NewTransport(nil, plan)
	c, err := meshclient.New(meshclient.Options{
		BaseURL:          url,
		Transport:        tr,
		MaxRetries:       16,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       5 * time.Millisecond,
		RetryAfterCap:    5 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, tr
}

// TestQueriesThroughChaosBitIdentical routes a battery of queries
// through a noisy transport and asserts every answer equals the
// direct-library result — the resilient client must make chaos
// invisible, not merely survivable.
func TestQueriesThroughChaosBitIdentical(t *testing.T) {
	s := serve.New(serve.Options{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults := []extmesh.Coord{{X: 3, Y: 3}, {X: 4, Y: 3}, {X: 3, Y: 4}, {X: 10, Y: 10}, {X: 11, Y: 10}}
	d, err := extmesh.NewDynamic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		if err := d.AddFault(f); err != nil {
			t.Fatal(err)
		}
	}
	s.Meshes().Put("m", d)
	n, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{
		Seed:        1729,
		DropRequest: 0.15,
		Spurious500: 0.10,
		Spurious429: 0.10,
		ResetBody:   0.10,
		LatencyProb: 0.20,
		Latency:     time.Millisecond,
	}
	c, tr := chaosClient(t, ts.URL, plan)
	ctx := context.Background()

	// A deterministic battery spanning the mesh, including unreachable
	// and faulty endpoints.
	var pairs []meshclient.Pair
	for i := 0; i < 24; i++ {
		src := extmesh.Coord{X: (i * 5) % 16, Y: (i * 3) % 16}
		dst := extmesh.Coord{X: (i*7 + 2) % 16, Y: (i*11 + 5) % 16}
		pairs = append(pairs, meshclient.Pair{Src: src, Dst: dst})
	}

	for i, p := range pairs {
		q := meshclient.Query{Src: p.Src, Dst: p.Dst}

		gotRoute, rerr := c.Route(ctx, "m", q)
		wantPath, werr := n.Route(p.Src, p.Dst, extmesh.Blocks)
		if (rerr == nil) != (werr == nil) {
			t.Fatalf("pair %d %v->%v: route errors diverge: client=%v lib=%v", i, p.Src, p.Dst, rerr, werr)
		}
		if werr == nil {
			want, _ := json.Marshal(wantPath)
			got, _ := json.Marshal(gotRoute.Path)
			if string(got) != string(want) || gotRoute.Hops != len(wantPath)-1 {
				t.Fatalf("pair %d: route through chaos = %s (hops %d), want %s", i, got, gotRoute.Hops, want)
			}
		}

		gotSafe, err := c.Safe(ctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: Safe failed through chaos: %v", i, err)
		}
		if want := n.Safe(p.Src, p.Dst, extmesh.Blocks); gotSafe != want {
			t.Fatalf("pair %d: Safe = %v, want %v", i, gotSafe, want)
		}

		gotExists, err := c.HasMinimalPath(ctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: HasMinimalPath failed: %v", i, err)
		}
		if want := n.HasMinimalPath(p.Src, p.Dst); gotExists != want {
			t.Fatalf("pair %d: HasMinimalPath = %v, want %v", i, gotExists, want)
		}

		gotEns, err := c.Ensure(ctx, "m", q)
		if err != nil {
			t.Fatalf("pair %d: Ensure failed: %v", i, err)
		}
		wantEns := n.Ensure(p.Src, p.Dst, extmesh.Blocks, extmesh.DefaultStrategy())
		if gotEns.Verdict != wantEns.Verdict.String() || len(gotEns.Via) != len(wantEns.Via()) {
			t.Fatalf("pair %d: Ensure = %+v, want %v via %v", i, gotEns, wantEns.Verdict, wantEns.Via())
		}
		for vi, v := range wantEns.Via() {
			if gotEns.Via[vi] != v {
				t.Fatalf("pair %d: Ensure via = %v, want %v", i, gotEns.Via, wantEns.Via())
			}
		}
	}

	// Batches through the same noise.
	src := extmesh.Coord{X: 0, Y: 0}
	dests := []extmesh.Coord{{X: 15, Y: 15}, {X: 3, Y: 3}, {X: 8, Y: 1}, {X: 1, Y: 8}}
	gotHB, err := c.HasMinimalPathBatch(ctx, "m", src, dests)
	if err != nil {
		t.Fatal(err)
	}
	if want := n.HasMinimalPathAll(src, dests); !reflect.DeepEqual(gotHB, want) {
		t.Fatalf("HasMinimalPathBatch = %v, want %v", gotHB, want)
	}

	counts := tr.Counts()
	if counts.Total() == 0 {
		t.Fatal("chaos plan injected nothing — the test proved nothing")
	}
	cc := c.Counts()
	if cc.Retries == 0 {
		t.Error("client never retried despite chaos")
	}
	t.Logf("chaos: %+v; client: %+v", counts, cc)
}

// TestDuplicateMutationsConverge pushes fault mutations through a
// transport that duplicates deliveries and checks the final mesh state
// matches an uninterrupted run: DynamicNetwork mutations are
// idempotent per node, so duplicate delivery must not corrupt state.
func TestDuplicateMutationsConverge(t *testing.T) {
	s := serve.New(serve.Options{Metrics: metrics.NewRegistry()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, err := extmesh.NewDynamic(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	s.Meshes().Put("m", d)

	c, tr := chaosClient(t, ts.URL, chaos.Plan{Seed: 7, Duplicate: 0.5})
	ctx := context.Background()

	muts := []meshclient.FaultsRequest{
		{Fail: []extmesh.Coord{{X: 2, Y: 2}}},
		{Fail: []extmesh.Coord{{X: 3, Y: 3}, {X: 4, Y: 4}}},
		{Recover: []extmesh.Coord{{X: 3, Y: 3}}},
		{Fail: []extmesh.Coord{{X: 5, Y: 5}}},
	}
	for i, m := range muts {
		if _, err := c.ApplyFaults(ctx, "m", m); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if tr.Counts().Duplicates == 0 {
		t.Fatal("no duplicates injected — the test proved nothing")
	}

	// Final state must equal the uninterrupted run's: {2,2},{4,4},{5,5}.
	want := map[extmesh.Coord]bool{{X: 2, Y: 2}: true, {X: 4, Y: 4}: true, {X: 5, Y: 5}: true}
	got := d.Faults()
	if len(got) != len(want) {
		t.Fatalf("faults after duplicated mutations = %v, want %v", got, want)
	}
	for _, f := range got {
		if !want[f] {
			t.Fatalf("unexpected fault %v (got %v)", f, got)
		}
	}
}
