package chaos

import (
	"bufio"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"extmesh/internal/wire"
)

// FramePlan schedules chaos on a replication stream, per
// primary→replica frame. Every knob is an every-Nth counter (0
// disables it), so a given plan injects the same faults at the same
// frame offsets on every run.
type FramePlan struct {
	// TearEvery: every Nth frame is truncated mid-body and the
	// connection cut — the torn-write crash the replica must survive by
	// reconnecting and resuming.
	TearEvery int
	// DuplicateEvery: every Nth frame is delivered twice. The replica's
	// applied watermark must make redelivery idempotent.
	DuplicateEvery int
	// CorruptEvery: every Nth frame has one body byte flipped. The CRC
	// (or the decoder's structural checks) must reject it and the
	// replica must resync rather than apply garbage.
	CorruptEvery int
	// Seed drives which byte of a corrupted frame is flipped and where
	// a torn frame is cut.
	Seed int64
}

// FrameProxy relays the replication protocol between a replica and its
// primary, injecting frame-level faults on the primary→replica
// direction per a FramePlan, with a partition toggle that cuts and
// refuses connections until healed. The replica dials the proxy's
// Addr() instead of the primary.
//
// The replica→primary direction (hello, acks) passes through verbatim:
// the interesting failure surface is the record stream.
type FrameProxy struct {
	l       net.Listener
	backend string
	plan    FramePlan

	mu    sync.Mutex
	rng   *rand.Rand
	conns map[net.Conn]struct{}
	frame int // frames relayed, across all connections

	partitioned atomic.Bool
	wg          sync.WaitGroup

	tears, duplicates, corruptions, refusals atomic.Uint64
}

// NewFrameProxy starts a frame proxy in front of backend (a replication
// listener address).
func NewFrameProxy(backend string, plan FramePlan) (*FrameProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FrameProxy{
		l:       l,
		backend: backend,
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		conns:   make(map[net.Conn]struct{}),
	}
	go p.accept()
	return p, nil
}

// Addr is the address the replica should dial.
func (p *FrameProxy) Addr() string { return p.l.Addr().String() }

// Tears, Duplicates and Corruptions report how many faults were
// actually injected; Refusals counts connections rejected while
// partitioned. A chaos test that asserts convergence should also
// assert these are nonzero — otherwise it proved nothing.
func (p *FrameProxy) Tears() uint64       { return p.tears.Load() }
func (p *FrameProxy) Duplicates() uint64  { return p.duplicates.Load() }
func (p *FrameProxy) Corruptions() uint64 { return p.corruptions.Load() }
func (p *FrameProxy) Refusals() uint64    { return p.refusals.Load() }

// Partition cuts every live connection and, while on, refuses new
// ones — the replica sees a dead link until the partition heals.
func (p *FrameProxy) Partition(on bool) {
	p.partitioned.Store(on)
	if on {
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
	}
}

// Close stops the proxy and waits for its relays to exit.
func (p *FrameProxy) Close() {
	p.l.Close()
	p.Partition(true)
	p.wg.Wait()
}

func (p *FrameProxy) accept() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			p.refusals.Add(1)
			client.Close()
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.relay(client)
		}()
	}
}

func (p *FrameProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *FrameProxy) untrack(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// decide draws the fault for the next primary→replica frame. The frame
// counter is global across reconnects, so a plan keeps injecting even
// though every fault forces a fresh connection.
type frameFault int

const (
	faultNone frameFault = iota
	faultTear
	faultDuplicate
	faultCorrupt
)

func (p *FrameProxy) decide() (frameFault, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frame++
	draw := p.rng.Int63()
	switch {
	case p.plan.TearEvery > 0 && p.frame%p.plan.TearEvery == 0:
		return faultTear, draw
	case p.plan.CorruptEvery > 0 && p.frame%p.plan.CorruptEvery == 0:
		return faultCorrupt, draw
	case p.plan.DuplicateEvery > 0 && p.frame%p.plan.DuplicateEvery == 0:
		return faultDuplicate, draw
	}
	return faultNone, draw
}

func (p *FrameProxy) relay(client net.Conn) {
	defer p.untrack(client)
	p.track(client)
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer p.untrack(server)
	p.track(server)

	done := make(chan struct{})
	// Replica → primary: verbatim byte relay.
	go func() {
		defer close(done)
		buf := make([]byte, 4<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		client.Close()
		server.Close()
	}()

	// Primary → replica: frame-aware, fault-injecting relay.
	br := bufio.NewReaderSize(server, 64<<10)
	var buf []byte
	for {
		body, err := wire.ReadFrame(br, wire.MaxReplicationFrame, buf)
		if err != nil {
			break
		}
		buf = body[:0]
		fault, draw := p.decide()
		switch fault {
		case faultTear:
			p.tears.Add(1)
			cut := 0
			if len(body) > 0 {
				cut = int(draw % int64(len(body)))
			}
			// Full length prefix, partial body, then a hard cut: the
			// replica's next read blocks on bytes that never come and
			// its stall/read error path must recover.
			prefix := wire.AppendU32(nil, uint32(len(body)))
			client.Write(append(prefix, body[:cut]...))
			client.Close()
			server.Close()
			<-done
			return
		case faultCorrupt:
			p.corruptions.Add(1)
			if len(body) > 0 {
				body[int(draw%int64(len(body)))] ^= 0x40
			}
			if wire.WriteFrame(client, body) != nil {
				break
			}
		case faultDuplicate:
			p.duplicates.Add(1)
			if wire.WriteFrame(client, body) != nil || wire.WriteFrame(client, body) != nil {
				break
			}
		default:
			if wire.WriteFrame(client, body) != nil {
				break
			}
		}
	}
	client.Close()
	server.Close()
	<-done
}
