// Package chaos injects deterministic transport faults between a
// client and a mesh service: dropped requests, spurious 429/500
// responses, mid-body connection resets, duplicate deliveries and
// added latency. Every decision is drawn in a fixed order from a
// seeded PRNG, so a chaos run is reproducible bit for bit — the same
// seed yields the same fault schedule, which is what lets the e2e
// suite assert that a resilient client extracts identical answers
// through the noise.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is a chaos schedule: per-request fault probabilities, all drawn
// from one seeded stream. Probabilities are independent; a request can
// be delayed and then dropped. The zero value injects nothing.
type Plan struct {
	// Seed fixes the decision stream; the same seed replays the same
	// faults in the same order.
	Seed int64

	// DropRequest is the probability an exchange fails with a transport
	// error before reaching the server.
	DropRequest float64
	// Spurious500 is the probability the server's answer is replaced by
	// a synthesized 500 (the request still reached the server —
	// exactly the ambiguity that makes non-idempotent retries unsafe).
	Spurious500 float64
	// Spurious429 is the probability of a synthesized shed: a 429 with
	// Retry-After returned without the request reaching the server.
	Spurious429 float64
	// ResetBody is the probability the response body is cut off partway
	// through with a connection-reset error.
	ResetBody float64
	// Duplicate is the probability the request is delivered twice; the
	// caller sees only the second response.
	Duplicate float64

	// LatencyProb is the probability of sleeping Latency before the
	// exchange.
	LatencyProb float64
	// Latency is the injected delay; 0 selects 2ms.
	Latency time.Duration
}

// Counts reports how many of each fault the transport injected.
type Counts struct {
	Requests    uint64 // exchanges attempted through the transport
	Dropped     uint64
	Spurious500 uint64
	Spurious429 uint64
	BodyResets  uint64
	Duplicates  uint64
	Delayed     uint64
}

// Total is the number of injected faults of any kind.
func (c Counts) Total() uint64 {
	return c.Dropped + c.Spurious500 + c.Spurious429 + c.BodyResets + c.Duplicates + c.Delayed
}

// Transport is a fault-injecting http.RoundTripper. Decisions come
// from the Plan's seeded PRNG in request order; the mutex serializes
// draws so concurrent use is safe (at the cost of decision order then
// depending on request arrival order — single-flight tests stay fully
// deterministic).
type Transport struct {
	inner http.RoundTripper
	plan  Plan

	mu  sync.Mutex
	rng *rand.Rand

	requests, dropped, s500, s429 atomic.Uint64
	resets, duplicates, delayed   atomic.Uint64
}

// NewTransport wraps inner (nil selects http.DefaultTransport) with
// the plan's fault schedule.
func NewTransport(inner http.RoundTripper, plan Plan) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if plan.Latency <= 0 {
		plan.Latency = 2 * time.Millisecond
	}
	return &Transport{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Counts returns the faults injected so far.
func (t *Transport) Counts() Counts {
	return Counts{
		Requests:    t.requests.Load(),
		Dropped:     t.dropped.Load(),
		Spurious500: t.s500.Load(),
		Spurious429: t.s429.Load(),
		BodyResets:  t.resets.Load(),
		Duplicates:  t.duplicates.Load(),
		Delayed:     t.delayed.Load(),
	}
}

// decisions is one request's fault draw. Drawing every probability in
// a fixed order — regardless of which faults are enabled — keeps the
// stream alignment stable when a plan toggles one fault on or off.
type decisions struct {
	delay, drop, dup, s429, s500, reset bool
	resetAfter                          int64
}

func (t *Transport) draw() decisions {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decisions
	d.delay = t.rng.Float64() < t.plan.LatencyProb
	d.drop = t.rng.Float64() < t.plan.DropRequest
	d.dup = t.rng.Float64() < t.plan.Duplicate
	d.s429 = t.rng.Float64() < t.plan.Spurious429
	d.s500 = t.rng.Float64() < t.plan.Spurious500
	d.reset = t.rng.Float64() < t.plan.ResetBody
	d.resetAfter = t.rng.Int63n(64)
	return d
}

// chaosError is the opaque transport failure injected for drops and
// body resets.
type chaosError struct{ kind string }

func (e *chaosError) Error() string { return "chaos: injected " + e.kind }

// RoundTrip applies the drawn faults around one exchange.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	d := t.draw()

	if d.delay {
		t.delayed.Add(1)
		select {
		case <-time.After(t.plan.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.s429 {
		// Shed before reaching the server, like the admission gate.
		t.s429.Add(1)
		return synthesize(req, http.StatusTooManyRequests,
			`{"error":"chaos: synthesized shed"}`, "Retry-After", "1"), nil
	}
	if d.drop {
		t.dropped.Add(1)
		return nil, &chaosError{kind: "request drop"}
	}
	if d.dup {
		// Deliver twice; the first response is discarded, the caller
		// sees the second. Requires a replayable body (GetBody), which
		// bytes.Reader-bodied requests always have.
		if req.Body == nil || req.GetBody != nil {
			first, err := t.send(req)
			if err == nil {
				t.duplicates.Add(1)
				io.Copy(io.Discard, first.Body)
				first.Body.Close()
			}
			// A failed first delivery still falls through to the
			// "second" attempt — duplication, not amplified failure.
		}
	}
	resp, err := t.send(req)
	if err != nil {
		return nil, err
	}
	if d.s500 {
		t.s500.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return synthesize(req, http.StatusInternalServerError,
			`{"error":"chaos: synthesized failure"}`), nil
	}
	if d.reset {
		t.resets.Add(1)
		resp.Body = &resetBody{inner: resp.Body, remaining: d.resetAfter}
		resp.ContentLength = -1
	}
	return resp, nil
}

// send performs one delivery, rewinding the body via GetBody when this
// is a repeat.
func (t *Transport) send(req *http.Request) (*http.Response, error) {
	r := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		r.Body = body
	}
	return t.inner.RoundTrip(r)
}

// synthesize fabricates a response that never touched the server.
func synthesize(req *http.Request, status int, body string, headerPairs ...string) *http.Response {
	h := http.Header{"Content-Type": []string{"application/json"}}
	for i := 0; i+1 < len(headerPairs); i += 2 {
		h.Set(headerPairs[i], headerPairs[i+1])
	}
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// resetBody yields remaining bytes of the real body, then fails like a
// torn connection.
type resetBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &chaosError{kind: "connection reset mid-body"}
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		return n, err // body ended before the cut point; no fault felt
	}
	if err == nil && b.remaining <= 0 {
		err = &chaosError{kind: "connection reset mid-body"}
	}
	return n, err
}

func (b *resetBody) Close() error { return b.inner.Close() }

// NewProxy returns a reverse proxy to target whose outbound transport
// injects the plan's faults — chaos as a standalone network hop for
// black-box clients that cannot swap their RoundTripper.
func NewProxy(target string, plan Plan) (*httputil.ReverseProxy, *Transport, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: bad proxy target %q: %v", target, err)
	}
	tr := NewTransport(nil, plan)
	p := httputil.NewSingleHostReverseProxy(u)
	p.Transport = tr
	p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		// Injected drops surface to the proxy's client as 502s.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
	return p, tr, nil
}
